// Quickstart: characterise one instruction at RTL level, then inject the
// resulting syndromes into a matrix multiplication and compare against the
// naive single bit-flip model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpufi"
	"gpufi/internal/isa"
)

func main() {
	log.SetFlags(0)

	// Step 1 — RTL characterisation (reduced scale: one opcode, the
	// medium input range is implied by the workload's operand values).
	fmt.Println("characterising FFMA at RTL level (FlexGripPlus analog)...")
	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{
		FaultsPerCampaign: 1000,
		Ops:               []isa.Opcode{isa.OpFFMA, isa.OpFADD},
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for key, e := range char.DB.Entries {
		if e.Fit == nil {
			continue
		}
		fmt.Printf("  %-22s SDCs=%4d  power law alpha=%.2f xmin=%.2g\n",
			key, e.Tally.SDCs(), e.Fit.Alpha, e.Fit.Xmin)
	}

	// Step 2 — software injection on a 64x64 matrix multiplication.
	w := gpufi.NewMxM(64)
	for _, model := range []gpufi.FaultModel{gpufi.ModelBitFlip, gpufi.ModelSyndrome} {
		res, err := gpufi.RunCampaign(gpufi.Campaign{
			Workload: w, Model: model, DB: char.DB,
			Injections: 200, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := res.PVFCI()
		fmt.Printf("MxM under %-26s PVF = %.3f [%.3f, %.3f]\n", model, res.PVF(), lo, hi)
	}
}
