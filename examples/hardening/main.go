// Hardening-priority analysis: rank GPU modules by their size-weighted
// AVF, the paper's guidance for where hardening effort pays off (§V-B:
// functional units drive SDCs, pipeline control registers drive DUEs,
// and the small control structures corrupt many threads at once).
//
//	go run ./examples/hardening
package main

import (
	"fmt"
	"log"

	"gpufi"
)

func main() {
	log.SetFlags(0)
	fmt.Println("characterising all modules (this runs the full RTL phase)...")
	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{
		FaultsPerCampaign: 1500, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %8s %10s %10s %14s %14s\n",
		"module", "FFs", "AVF(SDC)", "AVF(DUE)", "weighted SDC", "weighted DUE")
	for _, mc := range char.RankModules() {
		fmt.Printf("%-10s %8d %9.3f%% %9.3f%% %14.1f %14.1f\n",
			mc.Module, mc.Size, 100*mc.AVFSDC, 100*mc.AVFDUE, mc.WeightedSDC, mc.WeightedDUE)
	}

	// Multi-thread corruption is the second hardening criterion: small
	// control structures with modest AVF still wreck whole warps.
	fmt.Printf("\n%-10s %22s %18s\n", "module", "avg corrupted threads", "multi-SDC share")
	agg := map[string][3]float64{}
	for _, row := range char.AVFTable() {
		cur := agg[row.Module.String()]
		cur[0] += row.AvgThreads
		cur[1] += row.SDCMulti
		cur[2]++
		agg[row.Module.String()] = cur
	}
	for _, mc := range char.RankModules() {
		if v, ok := agg[mc.Module.String()]; ok && v[2] > 0 {
			fmt.Printf("%-10s %22.1f %17.2f%%\n", mc.Module, v[0]/v[2], 100*v[1]/v[2])
		}
	}
	fmt.Println("\npaper (§VI): control structures (scheduler, pipeline control, SFU control) are the")
	fmt.Println("primary sources of multi-thread corruptions and should be the hardening targets.")
}
