// CNN resilience study: reproduce the §VI analysis — LeNET-class and
// YOLO-class networks under single bit-flips, RTL syndromes, and the
// multi-thread t-MxM tile corruption, separating tolerable from critical
// SDCs (misclassifications / misdetections).
//
//	go run ./examples/cnn-resilience [-n injections]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpufi"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 200, "injections per model")
	flag.Parse()

	fmt.Println("building the syndrome database (incl. t-MxM characterisation)...")
	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{
		FaultsPerCampaign: 1500, TMXMFaults: 2500, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	lenet, err := gpufi.EvaluateCNN(char.DB, "LeNetLite", gpufi.NewLeNetLite(),
		gpufi.LeNetInput(0), gpufi.LeNetCritical, gpufi.EvalConfig{Injections: *n, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	yolo, err := gpufi.EvaluateCNN(char.DB, "YoloLite", gpufi.NewYoloLite(),
		gpufi.YoloInput(0), gpufi.YoloCritical, gpufi.EvalConfig{Injections: *n / 2, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []*gpufi.CNNEvaluation{lenet, yolo} {
		fmt.Printf("\n%s:\n", c.Name)
		fmt.Printf("  %-28s PVF=%.3f  critical SDC share %.1f%%\n",
			"single bit-flip", c.BitFlip.PVF(), 100*c.BitFlip.CriticalShare())
		fmt.Printf("  %-28s PVF=%.3f  critical SDC share %.1f%%\n",
			"RTL syndrome (single thread)", c.Syndrome.PVF(), 100*c.Syndrome.CriticalShare())
		fmt.Printf("  %-28s PVF=%.3f  critical SDC share %.1f%%\n",
			"t-MxM tile (multi thread)", c.Tile.PVF(), 100*c.Tile.CriticalShare())
	}
	fmt.Println("\npaper (§VI): only the multi-thread t-MxM model produces substantial misclassifications")
	fmt.Println("(20% critical for LeNET, 15% for YOLO); single-thread models produce (almost) none.")
}
