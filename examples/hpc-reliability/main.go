// HPC reliability study: reproduce the Fig. 10 / Table III comparison —
// the PVF of six HPC applications under the naive single bit-flip model
// and under RTL-derived fault syndromes.
//
//	go run ./examples/hpc-reliability [-n injections]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpufi"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 300, "injections per application per model")
	flag.Parse()

	fmt.Println("building the syndrome database (full RTL characterisation)...")
	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{
		FaultsPerCampaign: 1500, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injecting %d faults per application per model...\n", *n)
	evals, err := gpufi.EvaluateHPC(char.DB, gpufi.HPCSuite(), gpufi.EvalConfig{
		Injections: *n, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %-12s %-20s %10s %10s %8s\n",
		"app", "size", "domain", "bit-flip", "syndrome", "under%")
	for _, e := range evals {
		fmt.Printf("%-10s %-12s %-20s %10.3f %10.3f %7.0f%%\n",
			e.Name, e.Size, e.Domain,
			e.BitFlip.PVF(), e.Syndrome.PVF(), 100*e.Underestimation())
	}
	fmt.Println("\npaper (Table III): the single bit-flip model underestimates PVF by up to 48% (18% avg).")
}
