// Benchmark harness: one target per table and figure of the paper's
// evaluation (§V, §VI). Each benchmark regenerates its table/series and
// prints it alongside the paper's reference values, so `go test -bench=.`
// reproduces the full experimental section at a reduced default scale.
// Set GPUFI_FULL=1 for paper-scale campaigns (12k RTL faults per campaign,
// 6k software injections per application — minutes to hours of runtime).
//
// The RTL characterisation and the software campaigns are computed once
// and shared across benchmarks; absolute ns/op figures of the Figure/Table
// benchmarks therefore measure reporting, not simulation. Simulation
// throughput is measured by the dedicated Benchmark*Throughput targets in
// the internal packages.
package gpufi

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/mxm"
	"gpufi/internal/rtl"
	"gpufi/internal/rtlfi"
	"gpufi/internal/stats"
	"gpufi/internal/swfi"
	"gpufi/internal/syndrome"
)

// ---------------------------------------------------------------------------
// Scale configuration
// ---------------------------------------------------------------------------

type benchScale struct {
	rtlFaults  int
	tmxmFaults int
	hpcInj     int
	cnnInj     int
	yoloInj    int
}

func scale() benchScale {
	if os.Getenv("GPUFI_FULL") != "" {
		return benchScale{rtlFaults: 12000, tmxmFaults: 12000, hpcInj: 6000, cnnInj: 6000, yoloInj: 1500}
	}
	return benchScale{rtlFaults: 1500, tmxmFaults: 1500, hpcInj: 300, cnnInj: 300, yoloInj: 100}
}

// benchSuite is the HPC application set used by the PVF benchmarks, sized
// so default-scale campaigns finish in tens of seconds.
func benchSuite() []*Workload {
	return []*Workload{
		apps.NewMxM(64),
		apps.NewLava(2, 64),
		apps.NewQuicksort(256),
		apps.NewHotspot(16, 12),
		apps.NewLUD(32),
		apps.NewGaussian(32),
	}
}

// ---------------------------------------------------------------------------
// Shared cached stages
// ---------------------------------------------------------------------------

var (
	charOnce sync.Once
	charVal  *Characterization
	charErr  error

	hpcOnce sync.Once
	hpcVal  []*AppEvaluation
	hpcErr  error

	lenetOnce sync.Once
	lenetVal  *CNNEvaluation
	lenetErr  error

	yoloOnce sync.Once
	yoloVal  *CNNEvaluation
	yoloErr  error
)

func benchChar(b *testing.B) *Characterization {
	b.Helper()
	charOnce.Do(func() {
		s := scale()
		charVal, charErr = Characterize(CharacterizeConfig{
			FaultsPerCampaign: s.rtlFaults,
			TMXMFaults:        s.tmxmFaults,
			Seed:              2021,
		})
	})
	if charErr != nil {
		b.Fatal(charErr)
	}
	return charVal
}

func benchHPC(b *testing.B) []*AppEvaluation {
	b.Helper()
	c := benchChar(b)
	hpcOnce.Do(func() {
		hpcVal, hpcErr = EvaluateHPC(c.DB, benchSuite(), EvalConfig{
			Injections: scale().hpcInj, Seed: 7,
		})
	})
	if hpcErr != nil {
		b.Fatal(hpcErr)
	}
	return hpcVal
}

func benchLeNet(b *testing.B) *CNNEvaluation {
	b.Helper()
	c := benchChar(b)
	lenetOnce.Do(func() {
		lenetVal, lenetErr = EvaluateCNN(c.DB, "LeNetLite", cnn.NewLeNetLite(),
			cnn.LeNetInput(0), swfi.LeNetCritical,
			EvalConfig{Injections: scale().cnnInj, Seed: 13})
	})
	if lenetErr != nil {
		b.Fatal(lenetErr)
	}
	return lenetVal
}

func benchYolo(b *testing.B) *CNNEvaluation {
	b.Helper()
	c := benchChar(b)
	yoloOnce.Do(func() {
		yoloVal, yoloErr = EvaluateCNN(c.DB, "YoloLite", cnn.NewYoloLite(),
			cnn.YoloInput(0), swfi.YoloCritical,
			EvalConfig{Injections: scale().yoloInj, Seed: 17})
	})
	if yoloErr != nil {
		b.Fatal(yoloErr)
	}
	return yoloVal
}

// once guards so each benchmark prints its table exactly once per process.
var printed sync.Map

func printOnce(key string, f func()) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		f()
	}
}

// ---------------------------------------------------------------------------
// Fig. 3 — application instruction profiles
// ---------------------------------------------------------------------------

func BenchmarkFig3_InstructionProfile(b *testing.B) {
	type row struct {
		name   string
		counts swfi.Counts
	}
	var rows []row
	for _, w := range benchSuite() {
		counts, err := swfi.Profile(w)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{w.Name, counts})
	}
	for _, net := range []struct {
		name  string
		nw    *cnn.Network
		input []float32
	}{
		{"LeNetLite", cnn.NewLeNetLite(), cnn.LeNetInput(0)},
		{"YoloLite", cnn.NewYoloLite(), cnn.YoloInput(0)},
	} {
		var counts swfi.Counts
		if _, err := net.nw.Run(net.input, emu.Hooks{Post: func(ev *emu.Event) {
			counts[ev.Instr.Op] += uint64(ev.ActiveCount())
		}}, nil); err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{net.name, counts})
	}
	printOnce("fig3", func() {
		fmt.Println("\n=== Fig. 3: application instruction profiles (shares of executed instructions) ===")
		fmt.Println("paper: the 12 characterised opcodes cover >70% of executed instructions in common GPU codes")
		for _, r := range rows {
			sh := r.counts.CategoryShares()
			characterised := 1 - sh[isa.CatOther]
			fmt.Printf("  %-10s FP32=%5.1f%% INT32=%5.1f%% SFU=%5.1f%% Control=%5.1f%% Others=%5.1f%%  (characterised %.0f%%)\n",
				r.name, 100*sh[isa.CatFP32], 100*sh[isa.CatINT32], 100*sh[isa.CatSFU],
				100*sh[isa.CatControl], 100*sh[isa.CatOther], 100*characterised)
		}
	})
	b.ReportMetric(float64(len(rows)), "apps")
	for i := 0; i < b.N; i++ {
		_ = rows
	}
}

// ---------------------------------------------------------------------------
// Table I — module inventory
// ---------------------------------------------------------------------------

func BenchmarkTable1_ModuleSizes(b *testing.B) {
	printOnce("table1", func() {
		fmt.Println("\n=== Table I: evaluated modules, sizes and instructions (paper values matched by construction) ===")
		rows := []struct {
			mod   faults.Module
			typ   string
			instr string
		}{
			{faults.ModFP32, "Execution/Data", "FADD, FMUL, FFMA"},
			{faults.ModINT, "Execution/Data", "IADD, IMUL, IMAD"},
			{faults.ModSFU, "Execution/Data", "FSIN, FEXP"},
			{faults.ModSFUCtl, "Control", "FSIN, FEXP"},
			{faults.ModSched, "Control", "ALL"},
			{faults.ModPipe, "Control/Data", "ALL"},
		}
		for _, r := range rows {
			fmt.Printf("  %-22s %6d FFs  %-15s %s\n", r.mod, rtl.ModuleBits(r.mod), r.typ, r.instr)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = rtl.ModuleBits(faults.ModPipe)
	}
}

// ---------------------------------------------------------------------------
// Fig. 4 — micro-benchmark AVF per module and instruction
// ---------------------------------------------------------------------------

func BenchmarkFig4_MicrobenchAVF(b *testing.B) {
	c := benchChar(b)
	printOnce("fig4", func() {
		fmt.Println("\n=== Fig. 4: AVF of RTL injections per module and instruction (avg over S/M/L) ===")
		fmt.Println("paper shapes: FU SDCs >> FU DUEs; INT AVF > FP32 AVF (area dilution); pipeline DUE-heavy;")
		fmt.Println("              scheduler AVF low with mostly multi-thread SDCs")
		rows := c.AVFTable()
		last := faults.Module(255)
		for _, r := range rows {
			if r.Module != last {
				fmt.Printf("  --- %s ---\n", r.Module)
				last = r.Module
			}
			fmt.Printf("    %-5s SDC-single=%6.3f%% SDC-multi=%6.3f%% DUE=%6.3f%% (avg corrupted threads %.1f)\n",
				r.Op, 100*r.SDCSingle, 100*r.SDCMulti, 100*r.DUE, r.AvgThreads)
		}
	})
	var sim, skipped uint64
	for _, res := range c.Micro {
		sim += res.SimCycles
		skipped += res.SkippedCycles
	}
	b.ReportMetric(replaySpeedup(sim, skipped), "ff-speedup")
	for i := 0; i < b.N; i++ {
		_ = c.AVFTable()
	}
}

// replaySpeedup is the effective simulation speedup of the checkpoint
// fast-forward: cycles a full replay would have simulated over cycles
// actually simulated.
func replaySpeedup(sim, skipped uint64) float64 {
	if sim == 0 {
		return 1
	}
	return float64(sim+skipped) / float64(sim)
}

// ---------------------------------------------------------------------------
// Figs. 5 and 6 — fault syndrome distributions
// ---------------------------------------------------------------------------

func printSyndromeFig(key, title string, ops []isa.Opcode, db *syndrome.DB) {
	printOnce(key, func() {
		fmt.Printf("\n=== %s ===\n", title)
		fmt.Println("paper shape: non-Gaussian, narrow, power-law distributions with a clear input/site-dependent peak")
		for _, op := range ops {
			for _, mod := range faults.AllModules() {
				for _, rng := range faults.AllRanges() {
					e, ok := db.Lookup(op, rng, mod)
					if !ok || e.Hist == nil || e.Hist.N == 0 {
						continue
					}
					fmt.Printf("  %-4s/%s/%-9s n=%4d mode=%-6s inf-share=%.2f  %s\n",
						op, rng, mod, int(e.Hist.N), e.Hist.Mode(), e.InfShare, e.Hist)
				}
			}
		}
	})
}

func BenchmarkFig5_FPSyndromes(b *testing.B) {
	c := benchChar(b)
	printSyndromeFig("fig5",
		"Fig. 5: relative-error syndrome distributions, floating-point instructions",
		[]isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA}, c.DB)
	for i := 0; i < b.N; i++ {
		_ = c.DB
	}
}

func BenchmarkFig6_IntSyndromes(b *testing.B) {
	c := benchChar(b)
	printSyndromeFig("fig6",
		"Fig. 6: relative-error syndrome distributions, integer instructions",
		[]isa.Opcode{isa.OpIADD, isa.OpIMUL, isa.OpIMAD}, c.DB)
	for i := 0; i < b.N; i++ {
		_ = c.DB
	}
}

// ---------------------------------------------------------------------------
// §V-B — corrupted-thread multiplicity
// ---------------------------------------------------------------------------

func BenchmarkSec5B_Multiplicity(b *testing.B) {
	c := benchChar(b)
	printOnce("sec5b", func() {
		fmt.Println("\n=== §V-B: average corrupted threads per warp, by injected module ===")
		fmt.Println("paper: 1 (INT/FP32 FUs), 8 (SFU), 28 (scheduler), 18 (pipeline); >60% multi-thread scheduler SDCs")
		agg := map[faults.Module]*faults.Tally{}
		for _, res := range c.Micro {
			if agg[res.Spec.Module] == nil {
				agg[res.Spec.Module] = &faults.Tally{}
			}
			agg[res.Spec.Module].Merge(res.Tally)
		}
		for _, mod := range faults.AllModules() {
			t, ok := agg[mod]
			if !ok || t.SDCs() == 0 {
				continue
			}
			fmt.Printf("  %-10s avg corrupted threads %5.1f   multi-thread SDC share %5.1f%%\n",
				mod, t.AvgThreads(), 100*t.MultiShare())
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.Micro
	}
}

// ---------------------------------------------------------------------------
// §V-C — power-law fits, normality rejection, input dependence
// ---------------------------------------------------------------------------

func BenchmarkSec5C_PowerLawFit(b *testing.B) {
	c := benchChar(b)
	printOnce("sec5c", func() {
		fmt.Println("\n=== §V-C: syndrome statistics ===")
		fmt.Println("paper: Shapiro-Wilk p < 0.05 everywhere (not Gaussian); power law (Eq. 1);")
		fmt.Println("       ~24 corrupted bits randomly distributed; median varies with input mainly for MUL/FMA")
		rejected, tested := 0, 0
		for _, op := range isa.CharacterizedOpcodes() {
			for _, rng := range faults.AllRanges() {
				for _, mod := range faults.AllModules() {
					e, ok := c.DB.Lookup(op, rng, mod)
					if !ok || len(e.Samples) < 20 {
						continue
					}
					if _, p, err := stats.ShapiroWilk(e.Samples); err == nil {
						tested++
						if p < 0.05 {
							rejected++
						}
					}
				}
			}
		}
		fmt.Printf("  Shapiro-Wilk: normality rejected for %d/%d pools (p < 0.05)\n", rejected, tested)
		for _, op := range []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpIADD, isa.OpIMUL, isa.OpIMAD} {
			var medians [3]float64
			var bitsAvg float64
			var n int
			for ri, rng := range faults.AllRanges() {
				if e, ok := c.DB.Lookup(op, rng, unitModule(op)); ok {
					medians[ri] = e.Median
					bitsAvg += e.AvgBits
					n++
				}
			}
			if n == 0 {
				continue
			}
			fit := "n/a"
			if e, ok := c.DB.Lookup(op, faults.RangeMedium, unitModule(op)); ok && e.Fit != nil {
				fit = fmt.Sprintf("alpha=%.2f xmin=%.2g KS=%.3f", e.Fit.Alpha, e.Fit.Xmin, e.Fit.KS)
			}
			fmt.Printf("  %-5s median(S/M/L)=%.3g/%.3g/%.3g  avg corrupted bits %.1f  powerlaw{%s}\n",
				op, medians[0], medians[1], medians[2], bitsAvg/float64(n), fit)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.DB
	}
}

func unitModule(op isa.Opcode) faults.Module {
	switch op.Unit() {
	case isa.UnitINT:
		return faults.ModINT
	case isa.UnitSFU:
		return faults.ModSFU
	default:
		return faults.ModFP32
	}
}

// ---------------------------------------------------------------------------
// Fig. 7 — t-MxM AVF
// ---------------------------------------------------------------------------

func BenchmarkFig7_TMxMAVF(b *testing.B) {
	c := benchChar(b)
	printOnce("fig7", func() {
		fmt.Println("\n=== Fig. 7: t-MxM AVF (scheduler and pipeline) per tile input ===")
		fmt.Println("paper shapes: scheduler AVF rises above pipeline for t-MxM; >=70%/50% multi-element SDC share;")
		fmt.Println("              pipeline SDC AVF lowest for the Zero tile (downstream masking)")
		for _, res := range c.TMXM {
			t := res.Tally
			fmt.Printf("  %-10s %-6s SDC-single=%6.3f%% SDC-multi=%6.3f%% DUE=%6.3f%% (multi share %4.1f%%)\n",
				res.Spec.Module, res.Spec.Kind,
				100*float64(t.SDCSingle)/float64(t.Injections),
				100*float64(t.SDCMulti)/float64(t.Injections),
				100*t.AVFDUE(), 100*t.MultiShare())
		}
	})
	var sim, skipped uint64
	for _, res := range c.TMXM {
		sim += res.SimCycles
		skipped += res.SkippedCycles
	}
	b.ReportMetric(replaySpeedup(sim, skipped), "ff-speedup")
	for i := 0; i < b.N; i++ {
		_ = c.TMXM
	}
}

// rtlfiBenchModes are the five engine configurations the RTL-FI
// campaign benchmarks compare: FullReplay is the pre-optimisation path
// (every faulty run re-simulates the golden prefix from cycle 0),
// FastForward adds the checkpoint restore, Pruned additionally
// classifies provably-dead faults from golden-run liveness without
// simulating them, Collapsed further tallies fault-equivalence class
// members from their representative's memo, and BitParallel (the engine
// default) additionally simulates the remaining live faults as lanes of
// shared golden-replay marches. Results are bit-identical across all
// five (internal/rtlfi/fastforward_test.go, prune_test.go,
// collapse_test.go, vec_test.go).
var rtlfiBenchModes = []struct {
	name          string
	noBitParallel bool
	noFF          bool
	noPrune       bool
	noCollapse    bool
}{
	{"BitParallel", false, false, false, false},
	{"Collapsed", true, false, false, false},
	{"Pruned", true, false, false, true},
	{"FastForward", true, false, true, true},
	{"FullReplay", true, true, true, true},
}

// BenchmarkRTLFI_TMxMCampaign measures the wall-clock of one t-MxM
// campaign under the three engine modes — the §VI cost argument in
// miniature.
func BenchmarkRTLFI_TMxMCampaign(b *testing.B) {
	for _, mode := range rtlfiBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rtlfi.RunTMXM(rtlfi.TMXMSpec{
					Module: faults.ModPipe, Kind: mxm.TileRandom,
					NumFaults: 400, Seed: 99,
					NoBitParallel: mode.noBitParallel,
					NoFastForward: mode.noFF, NoPrune: mode.noPrune, NoCollapse: mode.noCollapse,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ReplaySpeedup(), "replay-speedup")
					b.ReportMetric(res.PruneRate(), "prune-rate")
					b.ReportMetric(res.CollapseRate(), "collapse-rate")
				}
			}
		})
	}
}

// swfiBenchModes are the four engine configurations the software-campaign
// benchmarks compare, mirroring rtlfiBenchModes: FullReplay is the plain
// path (every injection run re-simulates from dynamic instruction zero
// with hooks armed throughout), FastForward adds golden-prefix checkpoint
// restore and reconvergence, Pruned additionally classifies faults on
// provably-dead sites from the golden-run liveness index without
// simulating them, and Collapsed (the engine default) further tallies
// fault-equivalence class members from their representative's memo.
// Results are bit-identical across all four
// (internal/swfi/fastforward_test.go, prunecollapse_test.go).
var swfiBenchModes = []struct {
	name       string
	noFF       bool
	noPrune    bool
	noCollapse bool
}{
	{"Collapsed", false, false, false},
	{"Pruned", false, false, true},
	{"FastForward", false, true, true},
	{"FullReplay", true, true, true},
}

// BenchmarkSWFI_HPCCampaign measures the wall-clock of one software
// injection campaign under the four engine modes.
func BenchmarkSWFI_HPCCampaign(b *testing.B) {
	for _, mode := range swfiBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunCampaign(Campaign{
					Workload: apps.NewHotspot(16, 8), Model: ModelBitFlip,
					Injections: 200, Seed: 97, NoFastForward: mode.noFF,
					NoPrune: mode.noPrune, NoCollapse: mode.noCollapse,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(replaySpeedup(res.SimInstrs, res.SkippedInstrs), "ff-speedup")
					b.ReportMetric(res.PruneRate(), "prune-rate")
					b.ReportMetric(res.CollapseRate(), "collapse-rate")
					b.ReportMetric(res.EmuMIPS(), "emu-mips")
				}
			}
		})
	}
}

// BenchmarkSWFI_CNNCampaign is the CNN counterpart (instruction-level
// bit-flip model on LeNetLite).
func BenchmarkSWFI_CNNCampaign(b *testing.B) {
	for _, mode := range swfiBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunCNNCampaign(CNNCampaign{
					Net: cnn.NewLeNetLite(), Input: cnn.LeNetInput(0),
					Model: swfi.CNNBitFlip, Injections: 200, Seed: 96,
					Critical: swfi.LeNetCritical, NoFastForward: mode.noFF,
					NoPrune: mode.noPrune, NoCollapse: mode.noCollapse,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(replaySpeedup(res.SimInstrs, res.SkippedInstrs), "ff-speedup")
					b.ReportMetric(res.PruneRate(), "prune-rate")
					b.ReportMetric(res.CollapseRate(), "collapse-rate")
					b.ReportMetric(res.EmuMIPS(), "emu-mips")
				}
			}
		})
	}
}

// BenchmarkRTLFI_MicroCampaign is the micro-benchmark counterpart, over
// two campaign specs: a pipeline campaign (faults land in state that is
// live almost every cycle, so pruning is modest) and an FP32
// functional-unit campaign (the unit idles for most of the block's
// schedule, so most fault sites are provably dead and pruning dominates).
func BenchmarkRTLFI_MicroCampaign(b *testing.B) {
	specs := []struct {
		name string
		mod  faults.Module
	}{
		{"Pipe", faults.ModPipe},
		{"FP32", faults.ModFP32},
	}
	for _, spec := range specs {
		for _, mode := range rtlfiBenchModes {
			b.Run(spec.name+"/"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := rtlfi.RunMicro(rtlfi.Spec{
						Op: isa.OpFFMA, Range: faults.RangeMedium, Module: spec.mod,
						NumFaults: 1000, Seed: 98,
						NoBitParallel: mode.noBitParallel,
						NoFastForward: mode.noFF, NoPrune: mode.noPrune, NoCollapse: mode.noCollapse,
					})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(res.ReplaySpeedup(), "replay-speedup")
						b.ReportMetric(res.PruneRate(), "prune-rate")
						b.ReportMetric(res.CollapseRate(), "collapse-rate")
					}
				}
			})
		}
	}
}

// BenchmarkRTLFI_MicroCampaignPipeDense is the collapse-friendly spec:
// a long-running SFU op holds the pipeline registers live across its
// whole iteration loop, and at this fault density the (draw, bit, read
// gap) equivalence classes saturate, so a meaningful share of live
// faults is tallied from memos instead of simulated. Only the modes
// that finish in reasonable time at this density run; the cheap modes'
// absolute comparison lives in BenchmarkRTLFI_MicroCampaign.
func BenchmarkRTLFI_MicroCampaignPipeDense(b *testing.B) {
	for _, mode := range rtlfiBenchModes[:3] {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rtlfi.RunMicro(rtlfi.Spec{
					Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe,
					NumFaults: 1_000_000, Seed: 98,
					NoBitParallel: mode.noBitParallel,
					NoFastForward: mode.noFF, NoPrune: mode.noPrune, NoCollapse: mode.noCollapse,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ReplaySpeedup(), "replay-speedup")
					b.ReportMetric(res.PruneRate(), "prune-rate")
					b.ReportMetric(res.CollapseRate(), "collapse-rate")
					b.ReportMetric(res.VectorRate(), "vector-rate")
					b.ReportMetric(res.LaneOccupancy(), "lane-occupancy")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table II / Fig. 8 — t-MxM spatial corruption patterns
// ---------------------------------------------------------------------------

func BenchmarkTable2_TMxMPatterns(b *testing.B) {
	c := benchChar(b)
	printOnce("table2", func() {
		fmt.Println("\n=== Table II: multi-element pattern distribution at the t-MxM output ===")
		fmt.Println("paper:  site       row    col   row+col block  rand   all")
		fmt.Println("        scheduler  0.96%  0.07%  0.45%  5.77%  0.69%  54.6%   (rest: other multi)")
		fmt.Println("        pipeline   45.4%  1.36%  1.04%  7.29%  0.42%  4.17%")
		agg := map[faults.Module]*[faults.NumPatterns]int{}
		for _, res := range c.TMXM {
			if agg[res.Spec.Module] == nil {
				agg[res.Spec.Module] = &[faults.NumPatterns]int{}
			}
			for p, n := range res.Patterns {
				agg[res.Spec.Module][p] += n
			}
		}
		for _, mod := range []faults.Module{faults.ModSched, faults.ModPipe} {
			pats, ok := agg[mod]
			if !ok {
				continue
			}
			multi := 0
			for p, n := range pats {
				if faults.Pattern(p) != faults.PatSingle {
					multi += n
				}
			}
			fmt.Printf("  measured %-10s", mod)
			for p := faults.PatRow; p < faults.NumPatterns; p++ {
				share := 0.0
				if multi > 0 {
					share = float64(pats[p]) / float64(multi)
				}
				fmt.Printf(" %s=%.1f%%", p, 100*share)
			}
			fmt.Printf("  (multi SDCs: %d)\n", multi)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.TMXM
	}
}

// ---------------------------------------------------------------------------
// Fig. 9 — per-pattern relative-error spread
// ---------------------------------------------------------------------------

func BenchmarkFig9_PatternErrorSpread(b *testing.B) {
	c := benchChar(b)
	printOnce("fig9", func() {
		fmt.Println("\n=== Fig. 9: relative-error spread across corrupted elements (row and block patterns) ===")
		fmt.Println("paper shape: the per-element relative error varies within one corruption event (power-law range)")
		for _, res := range c.TMXM {
			for _, pat := range []faults.Pattern{faults.PatRow, faults.PatBlock} {
				errs := res.PatternErrs[pat]
				if len(errs) < 4 {
					continue
				}
				s := stats.Summarize(errs)
				fmt.Printf("  %-10s %-6s %-5s n=%4d median=%.3g p10=%.3g p90=%.3g var=%.3g\n",
					res.Spec.Module, res.Spec.Kind, pat, s.N, s.Median, s.P10, s.P90, s.Var)
			}
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.TMXM
	}
}

// ---------------------------------------------------------------------------
// Fig. 10 / Table III — application PVF under both fault models
// ---------------------------------------------------------------------------

// paperPVF holds Table III's reference values (single bit-flip, relative
// error).
var paperPVF = map[string][2]float64{
	"MxM":       {1.0, 1.0},
	"Lava":      {0.69, 0.91},
	"Quicksort": {0.94, 0.95},
	"Hotspot":   {0.25, 0.37},
	"LUD":       {0.82, 0.99},
	"Gaussian":  {0.95, 0.99},
	"LeNetLite": {0.03, 0.04},
	"YoloLite":  {0.17, 0.27},
}

func BenchmarkTable3_PVF(b *testing.B) {
	evals := benchHPC(b)
	lenet := benchLeNet(b)
	yolo := benchYolo(b)
	printOnce("table3", func() {
		fmt.Println("\n=== Table III / Fig. 10: SDC PVF per application, single bit-flip vs RTL relative-error syndrome ===")
		fmt.Printf("  %-10s %-12s %-20s %23s %23s\n", "app", "size", "domain", "bit-flip PVF (paper)", "syndrome PVF (paper)")
		for _, e := range evals {
			ref := paperPVF[e.Name]
			fmt.Printf("  %-10s %-12s %-20s %8.2f (%4.2f)%9s %8.2f (%4.2f)\n",
				e.Name, e.Size, e.Domain, e.BitFlip.PVF(), ref[0], "", e.Syndrome.PVF(), ref[1])
		}
		for _, c := range []struct {
			name string
			ev   *CNNEvaluation
		}{{"LeNetLite", lenet}, {"YoloLite", yolo}} {
			ref := paperPVF[c.name]
			fmt.Printf("  %-10s %-12s %-20s %8.2f (%4.2f)%9s %8.2f (%4.2f)\n",
				c.name, "synthetic", "CNN", c.ev.BitFlip.PVF(), ref[0], "", c.ev.Syndrome.PVF(), ref[1])
		}
	})
	for i := 0; i < b.N; i++ {
		_ = evals
	}
}

func BenchmarkFig10_PVF(b *testing.B) {
	evals := benchHPC(b)
	printOnce("fig10", func() {
		fmt.Println("\n=== Fig. 10: PVF series and bit-flip underestimation ===")
		fmt.Println("paper: single bit-flip underestimates the syndrome PVF by up to 48% (18% on average)")
		var sumUnder, maxUnder float64
		for _, e := range evals {
			u := e.Underestimation()
			sumUnder += u
			if u > maxUnder {
				maxUnder = u
			}
			fmt.Printf("  %-10s bitflip=%.3f syndrome=%.3f underestimation=%5.1f%%\n",
				e.Name, e.BitFlip.PVF(), e.Syndrome.PVF(), 100*u)
		}
		fmt.Printf("  underestimation: max %.0f%%, mean %.0f%%\n",
			100*maxUnder, 100*sumUnder/float64(len(evals)))
	})
	for i := 0; i < b.N; i++ {
		_ = evals
	}
}

// ---------------------------------------------------------------------------
// §VI — CNN criticality and t-MxM injection
// ---------------------------------------------------------------------------

func BenchmarkSec6_CNNCritical(b *testing.B) {
	lenet := benchLeNet(b)
	yolo := benchYolo(b)
	printOnce("sec6cnn", func() {
		fmt.Println("\n=== §VI: CNN fault models and critical SDCs ===")
		fmt.Println("paper: LeNET t-MxM PVF ~12x the relative-error PVF; critical SDCs 20% (LeNET) / 15% (YOLO)")
		fmt.Println("       under t-MxM; single-thread models cause (almost) no misclassifications")
		for _, c := range []struct {
			name string
			ev   *CNNEvaluation
		}{{"LeNetLite", lenet}, {"YoloLite", yolo}} {
			ratio := 0.0
			if c.ev.Syndrome.PVF() > 0 {
				ratio = c.ev.Tile.PVF() / c.ev.Syndrome.PVF()
			}
			fmt.Printf("  %-10s PVF: bitflip=%.3f syndrome=%.3f tile=%.3f (tile/syndrome %.1fx)\n",
				c.name, c.ev.BitFlip.PVF(), c.ev.Syndrome.PVF(), c.ev.Tile.PVF(), ratio)
			fmt.Printf("             critical SDC share: bitflip=%4.1f%% syndrome=%4.1f%% tile=%4.1f%%\n",
				100*c.ev.BitFlip.CriticalShare(), 100*c.ev.Syndrome.CriticalShare(),
				100*c.ev.Tile.CriticalShare())
		}
	})
	for i := 0; i < b.N; i++ {
		_ = lenet
	}
}

// ---------------------------------------------------------------------------
// §VI — time savings of the two-level framework
// ---------------------------------------------------------------------------

func BenchmarkSec6_TimeSavings(b *testing.B) {
	cm, err := MeasureCost(apps.NewMxM(64))
	if err != nil {
		b.Fatal(err)
	}
	// Measure the campaign engine's replay speedup (checkpoint fast-forward
	// plus dead-site pruning) on a small FU campaign to credit the RTL side
	// of the comparison with its realistic per-injection cost.
	eng, err := rtlfi.RunMicro(rtlfi.Spec{
		Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32,
		NumFaults: 200, Seed: 98,
	})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("sec6time", func() {
		fmt.Println("\n=== §VI: RTL vs two-level injection cost ===")
		fmt.Println("paper: one RTL injection into one application > 10 hours on a 12-CPU server;")
		fmt.Println("       48,000 injections would take ~54 years vs ~350 GPU-hours with the framework")
		fmt.Printf("  measured: %s\n", cm.Compare(48000))
		fmt.Printf("  measured: %s\n", cm.CompareWith(48000, eng.ReplaySpeedup()))
	})
	for i := 0; i < b.N; i++ {
		_ = cm.RTLAppInjectionSeconds()
	}
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md §6
// ---------------------------------------------------------------------------

// BenchmarkAblation_SamplerMode compares PVF under the fitted power-law
// sampler (Eq. 1) and the empirical reservoir sampler.
func BenchmarkAblation_SamplerMode(b *testing.B) {
	c := benchChar(b)
	w := apps.NewMxM(64)
	inj := scale().hpcInj / 2
	if inj < 50 {
		inj = 50
	}
	pl, err := RunCampaign(Campaign{Workload: w, Model: ModelSyndrome, DB: c.DB, Injections: inj, Seed: 61})
	if err != nil {
		b.Fatal(err)
	}
	emp, err := RunCampaign(Campaign{Workload: w, Model: ModelSyndromeEmp, DB: c.DB, Injections: inj, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("ablation_sampler", func() {
		fmt.Println("\n=== Ablation: Eq. 1 power-law sampler vs empirical reservoir sampler ===")
		fmt.Printf("  MxM PVF: powerlaw=%.3f empirical=%.3f (should agree closely)\n", pl.PVF(), emp.PVF())
	})
	for i := 0; i < b.N; i++ {
		_ = pl
	}
}

// BenchmarkAblation_DoubleBitFlip contrasts the double-bit-flip model, the
// other naive baseline NVBitFI offers.
func BenchmarkAblation_DoubleBitFlip(b *testing.B) {
	w := apps.NewHotspot(16, 12)
	inj := scale().hpcInj
	single, err := RunCampaign(Campaign{Workload: w, Model: ModelBitFlip, Injections: inj, Seed: 63})
	if err != nil {
		b.Fatal(err)
	}
	double, err := RunCampaign(Campaign{Workload: w, Model: ModelDoubleBitFlip, Injections: inj, Seed: 64})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("ablation_double", func() {
		fmt.Println("\n=== Ablation: single vs double bit-flip on Hotspot ===")
		fmt.Printf("  PVF: single=%.3f double=%.3f\n", single.PVF(), double.PVF())
	})
	for i := 0; i < b.N; i++ {
		_ = single
	}
}

// BenchmarkAblation_TileKinds shows the Max/Zero/Random tile dependence of
// the t-MxM characterisation (the §V-D masking argument).
func BenchmarkAblation_TileKinds(b *testing.B) {
	c := benchChar(b)
	printOnce("ablation_tiles", func() {
		fmt.Println("\n=== Ablation: t-MxM pipeline SDC AVF by tile kind (paper: Zero tile masks most) ===")
		for _, res := range c.TMXM {
			if res.Spec.Module != faults.ModPipe {
				continue
			}
			fmt.Printf("  pipeline/%-6s SDC AVF %.3f%%\n", res.Spec.Kind, 100*res.Tally.AVFSDC())
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.TMXM
	}
}

// BenchmarkThroughput_RTLvsEmulator reports the raw simulation speed gap
// that motivates the two-level framework.
func BenchmarkThroughput_RTLvsEmulator(b *testing.B) {
	prog, err := mxm.Build(mxm.Tile)
	if err != nil {
		b.Fatal(err)
	}
	a, bb := mxm.TileInputs(mxm.TileRandom, 1)
	b.Run("RTL", func(b *testing.B) {
		m := rtl.New()
		for i := 0; i < b.N; i++ {
			g := mxm.Pack(a, bb, mxm.Tile)
			if err := m.Run(prog, 1, mxm.BlockThreads, g, mxm.SharedWords, 10_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Emulator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := mxm.Pack(a, bb, mxm.Tile)
			if _, err := emu.Run(&emu.Launch{
				Prog: prog, Grid: 1, Block: mxm.BlockThreads,
				Global: g, SharedWords: mxm.SharedWords,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Fig. 8 — example corruption-pattern geometries
// ---------------------------------------------------------------------------

// BenchmarkFig8_PatternExamples renders one sampled 8x8 corruption mask per
// observed pattern class, the pictorial content of Fig. 8.
func BenchmarkFig8_PatternExamples(b *testing.B) {
	c := benchChar(b)
	printOnce("fig8", func() {
		fmt.Println("\n=== Fig. 8: example spatial patterns of multi-element t-MxM corruptions ===")
		seen := map[faults.Pattern]bool{}
		r := stats.NewRNG(88)
		for tries := 0; tries < 4000 && len(seen) < int(faults.NumPatterns); tries++ {
			tc, ok := c.DB.SampleTile(r)
			if !ok {
				break
			}
			if seen[tc.Pattern] {
				continue
			}
			seen[tc.Pattern] = true
			fmt.Printf("  pattern %q:\n", tc.Pattern)
			for row := 0; row < mxm.Tile; row++ {
				fmt.Print("    ")
				for col := 0; col < mxm.Tile; col++ {
					if tc.Mask[row*mxm.Tile+col] {
						fmt.Print("X")
					} else {
						fmt.Print(".")
					}
				}
				fmt.Println()
			}
		}
	})
	for i := 0; i < b.N; i++ {
		_ = c.DB
	}
}

// ---------------------------------------------------------------------------
// Extensions (§VII): module-focused injection, extra SFU opcodes, FIT
// ---------------------------------------------------------------------------

// BenchmarkAblation_ModuleFocus compares the module cocktail against
// single-module syndrome sources (§VI's "focus the software fault
// injection in just one module").
func BenchmarkAblation_ModuleFocus(b *testing.B) {
	c := benchChar(b)
	w := apps.NewMxM(64)
	inj := scale().hpcInj / 2
	if inj < 50 {
		inj = 50
	}
	type row struct {
		name string
		pvf  float64
	}
	var rows []row
	cocktail, err := RunCampaign(Campaign{Workload: w, Model: ModelSyndrome, DB: c.DB, Injections: inj, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	rows = append(rows, row{"cocktail", cocktail.PVF()})
	for _, mod := range []faults.Module{faults.ModFP32, faults.ModSched, faults.ModPipe} {
		mod := mod
		res, err := RunCampaign(Campaign{
			Workload: w, Model: ModelSyndrome, DB: c.DB,
			Injections: inj, Seed: 72 + uint64(mod), ModuleFocus: &mod,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{mod.String(), res.PVF()})
	}
	printOnce("ablation_focus", func() {
		fmt.Println("\n=== Ablation: syndrome source focus (MxM PVF per assumed fault origin) ===")
		for _, r := range rows {
			fmt.Printf("  %-10s PVF=%.3f\n", r.name, r.pvf)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = rows
	}
}

// BenchmarkExtension_SFUReciprocal characterises FRCP/FRSQRT, the §VII
// "extended instructions evaluation" path beyond the paper's 12 opcodes.
func BenchmarkExtension_SFUReciprocal(b *testing.B) {
	var lines []string
	for _, op := range rtlfi.ExtendedOpcodes() {
		res, err := rtlfi.RunMicro(rtlfi.Spec{
			Op: op, Range: faults.RangeMedium, Module: faults.ModSFU,
			NumFaults: scale().rtlFaults, Seed: 90 + uint64(op),
		})
		if err != nil {
			b.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("  %-7s SDC AVF %.3f%%  multi share %.0f%%  avg threads %.1f",
			op, 100*res.Tally.AVFSDC(), 100*res.Tally.MultiShare(), res.Tally.AvgThreads()))
	}
	printOnce("ext_sfu", func() {
		fmt.Println("\n=== Extension (§VII): RTL characterisation of FRCP/FRSQRT ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = lines
	}
}

// BenchmarkExtension_FITRanking folds a nominal raw fault rate into the
// size-weighted AVF, the evaluation the paper leaves to future work.
func BenchmarkExtension_FITRanking(b *testing.B) {
	c := benchChar(b)
	const rawFITPerBit = 1e-4 // nominal SRAM-class FIT per bit
	ests := c.EstimateFIT(rawFITPerBit)
	printOnce("ext_fit", func() {
		fmt.Println("\n=== Extension (§VII): module FIT contributions (nominal 1e-4 FIT/bit) ===")
		fmt.Println("paper expectation: FUs dominate SDC FIT (size x AVF); pipeline dominates DUE FIT")
		for _, e := range ests {
			fmt.Printf("  %-10s %6d FFs  SDC FIT %.4f  DUE FIT %.4f\n", e.Module, e.FFs, e.SDCFIT, e.DUEFIT)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = ests
	}
}

// BenchmarkAblation_SDCCriterion compares the exact (bitwise) golden
// comparison against tolerance-based comparisons (DESIGN.md §6): looser
// criteria absorb the low-magnitude corruptions that dominate the
// bit-flip model, widening the gap to the syndrome model.
func BenchmarkAblation_SDCCriterion(b *testing.B) {
	c := benchChar(b)
	w := apps.NewMxM(64)
	inj := scale().hpcInj
	type row struct {
		tol       float64
		flip, syn float64
	}
	var rows []row
	for _, tol := range []float64{0, 1e-6, 1e-3} {
		flip, err := RunCampaign(Campaign{Workload: w, Model: ModelBitFlip, Injections: inj, Seed: 81, Tolerance: tol})
		if err != nil {
			b.Fatal(err)
		}
		syn, err := RunCampaign(Campaign{Workload: w, Model: ModelSyndrome, DB: c.DB, Injections: inj, Seed: 82, Tolerance: tol})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{tol, flip.PVF(), syn.PVF()})
	}
	printOnce("ablation_tol", func() {
		fmt.Println("\n=== Ablation: SDC criterion (MxM PVF, bitwise vs tolerance compare) ===")
		for _, r := range rows {
			fmt.Printf("  tol=%-6g bitflip=%.3f syndrome=%.3f (gap %+.3f)\n", r.tol, r.flip, r.syn, r.syn-r.flip)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = rows
	}
}

// ---------------------------------------------------------------------------
// Emulator interpreter microbenchmarks (tiered fast path)
// ---------------------------------------------------------------------------

// emuBenchTiers runs a kernel under both interpreter tiers: the default
// pre-decoded fast path and the reference Tier 0 interpreter forced via
// Launch.NoFastPath. The emu-mips metric is millions of thread-level
// instructions interpreted per wall-clock second.
var emuBenchTiers = []struct {
	name       string
	noFastPath bool
}{
	{"Fast", false},
	{"Reference", true},
}

func emuBenchLoop(b *testing.B, mk func() *emu.Launch) {
	b.Helper()
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := emu.Run(mk())
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.DynThreadInstrs
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instrs)*float64(b.N)/sec/1e6, "emu-mips")
	}
}

// emuDenseFFMAProg is the fast path's best case: every lane of every warp
// stays active, so the interpreter takes the dense full-mask row loops
// for the whole run. ~1.4M thread-instructions per launch.
func emuDenseFFMAProg(b *testing.B) *kasm.Program {
	b.Helper()
	tid, acc, x, y, cnt := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	bb := kasm.New("bench-dense-ffma")
	bb.S2R(tid, isa.SRTid)
	bb.I2F(x, tid)
	bb.MovF(y, 1.0000001)
	bb.MovF(acc, 0)
	bb.MovI(cnt, 256)
	bb.Loop(func() {
		for i := 0; i < 8; i++ {
			bb.FFma(acc, x, y, acc)
		}
		bb.IAddI(cnt, cnt, -1)
	}, func() isa.Pred {
		bb.ISetPI(isa.P(1), isa.CmpGT, cnt, 0)
		return isa.P(1)
	})
	bb.Gst(tid, 0, acc)
	prog, err := bb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// emuDivergentProg is the fast path's worst case: per-lane trip counts
// plus a parity-predicated region keep the active mask sparse, so nearly
// every warp instruction goes through the guarded per-lane loops and the
// reconvergence stack churns continuously.
func emuDivergentProg(b *testing.B) *kasm.Program {
	b.Helper()
	tid, acc, x, par, cnt := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	bb := kasm.New("bench-divergent")
	bb.S2R(tid, isa.SRTid)
	bb.I2F(x, tid)
	bb.MovF(acc, 0)
	bb.AndI(cnt, tid, 63)
	bb.IAddI(cnt, cnt, 1) // 1..64 iterations, unique per lane group
	bb.AndI(par, tid, 1)
	bb.ISetPI(isa.P(2), isa.CmpNE, par, 0)
	bb.Loop(func() {
		bb.FFma(acc, x, x, acc)
		bb.If(isa.P(2), func() {
			bb.FMul(acc, acc, x)
			bb.FAdd(acc, acc, x)
		})
		bb.IAddI(cnt, cnt, -1)
	}, func() isa.Pred {
		bb.ISetPI(isa.P(1), isa.CmpGT, cnt, 0)
		return isa.P(1)
	})
	bb.Gst(tid, 0, acc)
	prog, err := bb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkEmu_DenseFFMA(b *testing.B) {
	prog := emuDenseFFMAProg(b)
	for _, tier := range emuBenchTiers {
		b.Run(tier.name, func(b *testing.B) {
			emuBenchLoop(b, func() *emu.Launch {
				return &emu.Launch{
					Prog: prog, Grid: 2, Block: 256,
					Global: make([]uint32, 512), NoFastPath: tier.noFastPath,
				}
			})
		})
	}
}

func BenchmarkEmu_Divergent(b *testing.B) {
	prog := emuDivergentProg(b)
	for _, tier := range emuBenchTiers {
		b.Run(tier.name, func(b *testing.B) {
			emuBenchLoop(b, func() *emu.Launch {
				return &emu.Launch{
					Prog: prog, Grid: 2, Block: 256,
					Global: make([]uint32, 512), NoFastPath: tier.noFastPath,
				}
			})
		})
	}
}

// BenchmarkEmu_Hooks prices the tier-selection rule itself: the same
// dense kernel with no hooks (Tier 1), with an armed Post observation
// hook (falls back to Tier 0 plus per-instruction event preparation),
// and with Tier 0 forced but no hooks (isolating the event-prep cost
// from the interpreter-tier cost).
func BenchmarkEmu_Hooks(b *testing.B) {
	prog := emuDenseFFMAProg(b)
	cases := []struct {
		name string
		mk   func() *emu.Launch
	}{
		{"Unhooked", func() *emu.Launch {
			return &emu.Launch{Prog: prog, Grid: 2, Block: 256, Global: make([]uint32, 512)}
		}},
		{"UnhookedTier0", func() *emu.Launch {
			return &emu.Launch{Prog: prog, Grid: 2, Block: 256, Global: make([]uint32, 512), NoFastPath: true}
		}},
		{"PostHook", func() *emu.Launch {
			n := uint64(0)
			return &emu.Launch{
				Prog: prog, Grid: 2, Block: 256, Global: make([]uint32, 512),
				Hooks: emu.Hooks{Post: func(ev *emu.Event) { n += uint64(ev.ActiveCount()) }},
			}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) { emuBenchLoop(b, tc.mk) })
	}
}
