module gpufi

go 1.22
