// Command gpufi-serve exposes the campaign job service over HTTP: submit
// RTL-characterisation, HPC-injection and CNN-injection campaigns as
// queued jobs, watch their progress, cancel them, and let interrupted
// jobs resume deterministically from their checkpoint journal after a
// restart.
//
// Usage:
//
//	gpufi-serve [-addr :8080] [-dir data/jobs] [-jobs N]
//	            [-engine-workers N] [-checkpoint 2s]
//	            [-fabric] [-lease 30s] [-local-units]
//	gpufi-serve -worker -coordinator URL [-worker-name NAME]
//	            [-worker-parallel N] [-engine-workers N]
//
// API:
//
//	POST   /jobs             submit a campaign (see internal/jobs.Request)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        status + result
//	GET    /jobs/{id}/events server-sent progress events
//	DELETE /jobs/{id}        cancel
//	GET    /healthz          liveness
//	POST   /fabric/v1/...    worker protocol (with -fabric; see internal/fabric)
//	GET    /fabric/v1/status fabric worker/lease state (with -fabric)
//
// With -fabric the server becomes a campaign coordinator: characterize
// jobs' units are leased to registered workers (remote gpufi-serve
// processes started with -worker) and merged back bit-identically to a
// single-node run. An in-process worker keeps campaigns progressing even
// with zero remote workers (disable with -local-units=false).
//
// With -worker the process runs no HTTP server and no job queue: it
// registers with the coordinator at -coordinator, leases units, executes
// them with the local engines, and streams results back until killed.
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs checkpoint and are
// re-queued on the next start, resuming bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"gpufi/internal/fabric"
	"gpufi/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-serve: ")

	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		dir           = flag.String("dir", "data/jobs", "checkpoint journal directory (empty disables persistence)")
		nJobs         = flag.Int("jobs", runtime.NumCPU(), "concurrent job slots")
		engineWorkers = flag.Int("engine-workers", 1, "workers per campaign engine")
		checkpoint    = flag.Duration("checkpoint", 2*time.Second, "progress checkpoint interval")

		fabricMode = flag.Bool("fabric", false, "run as campaign coordinator: distribute characterize units to fabric workers")
		lease      = flag.Duration("lease", 30*time.Second, "fabric lease timeout before a unit is re-leased (with -fabric)")
		localUnits = flag.Bool("local-units", true, "with -fabric, also execute units in-process so campaigns progress without remote workers")

		workerMode     = flag.Bool("worker", false, "run as a fabric worker instead of a server")
		coordinator    = flag.String("coordinator", "", "coordinator base URL, e.g. http://host:8080 (with -worker)")
		workerName     = flag.String("worker-name", "", "worker display name shown in coordinator status (default: hostname)")
		workerParallel = flag.Int("worker-parallel", runtime.NumCPU(), "units executed concurrently by this worker (with -worker)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		runWorker(ctx, *coordinator, *workerName, *workerParallel, *engineWorkers)
		return
	}

	var coord *fabric.Coordinator
	if *fabricMode {
		coord = fabric.NewCoordinator(fabric.CoordinatorConfig{
			LeaseTimeout: *lease,
			Logf:         log.Printf,
		})
	}

	svc, err := jobs.New(jobs.Config{
		Dir:             *dir,
		Workers:         *nJobs,
		EngineWorkers:   *engineWorkers,
		CheckpointEvery: *checkpoint,
		Fabric:          coord,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())

	var localWG sync.WaitGroup
	localCtx, stopLocal := context.WithCancel(context.Background())
	defer stopLocal()
	if coord != nil {
		mux.Handle("/fabric/v1/", coord.Handler())
		if *localUnits {
			localWG.Add(1)
			go func() {
				defer localWG.Done()
				err := fabric.RunWorker(localCtx, coord, fabric.WorkerConfig{
					Name:          "local",
					EngineWorkers: *engineWorkers,
					Parallel:      *nJobs,
					Logf:          log.Printf,
				})
				if err != nil && localCtx.Err() == nil {
					log.Printf("in-process fabric worker: %v", err)
				}
			}()
		}
		log.Printf("fabric coordinator enabled (lease %s, in-process units: %v)", *lease, *localUnits)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d job slots, journal %q)", *addr, *nJobs, *dir)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining connections and checkpointing jobs...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	// Order matters: stop the job service first so running jobs observe
	// cancellation and re-queue, then the in-process worker, then the
	// coordinator (so Await never sees ErrClosed with a live job context).
	svc.Close()
	stopLocal()
	localWG.Wait()
	if coord != nil {
		coord.Close()
	}
	log.Printf("stopped; unfinished jobs will resume on the next start")
}

// runWorker runs the process as a fabric worker until the context ends.
func runWorker(ctx context.Context, coordinator, name string, parallel, engineWorkers int) {
	if coordinator == "" {
		log.Fatal("-worker requires -coordinator URL")
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	tr := fabric.NewHTTPTransport(coordinator)
	log.Printf("worker %q connecting to %s (%d parallel units)", name, coordinator, parallel)
	err := fabric.RunWorker(ctx, tr, fabric.WorkerConfig{
		Name:          name,
		EngineWorkers: engineWorkers,
		Parallel:      parallel,
		Logf:          log.Printf,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	log.Printf("worker stopped")
}
