// Command gpufi-serve exposes the campaign job service over HTTP: submit
// RTL-characterisation, HPC-injection and CNN-injection campaigns as
// queued jobs, watch their progress, cancel them, and let interrupted
// jobs resume deterministically from their checkpoint journal after a
// restart.
//
// Usage:
//
//	gpufi-serve [-addr :8080] [-dir data/jobs] [-jobs N]
//	            [-engine-workers N] [-checkpoint 2s]
//
// API:
//
//	POST   /jobs             submit a campaign (see internal/jobs.Request)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        status + result
//	GET    /jobs/{id}/events server-sent progress events
//	DELETE /jobs/{id}        cancel
//	GET    /healthz          liveness
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs checkpoint and are
// re-queued on the next start, resuming bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gpufi/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-serve: ")

	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		dir           = flag.String("dir", "data/jobs", "checkpoint journal directory (empty disables persistence)")
		nJobs         = flag.Int("jobs", runtime.NumCPU(), "concurrent job slots")
		engineWorkers = flag.Int("engine-workers", 1, "workers per campaign engine")
		checkpoint    = flag.Duration("checkpoint", 2*time.Second, "progress checkpoint interval")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc, err := jobs.New(jobs.Config{
		Dir:             *dir,
		Workers:         *nJobs,
		EngineWorkers:   *engineWorkers,
		CheckpointEvery: *checkpoint,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d job slots, journal %q)", *addr, *nJobs, *dir)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining connections and checkpointing jobs...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	svc.Close()
	log.Printf("stopped; unfinished jobs will resume on the next start")
}
