// Command gpufi-experiments regenerates the paper's full evaluation
// section — every table and figure — and prints it as text. It is the CLI
// equivalent of `go test -bench=.` at the repository root, with
// adjustable scale.
//
// Usage:
//
//	gpufi-experiments [-rtl 2000] [-tmxm 2000] [-hpc 500] [-cnn 500] [-yolo 150] [-seed 2021]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpufi"
	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/faults"
	"gpufi/internal/rtl"
	"gpufi/internal/swfi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-experiments: ")
	var (
		rtlFaults = flag.Int("rtl", 2000, "RTL faults per campaign")
		tmxm      = flag.Int("tmxm", 2000, "t-MxM faults per campaign")
		hpcInj    = flag.Int("hpc", 500, "software injections per HPC app per model")
		cnnInj    = flag.Int("cnn", 500, "software injections per CNN model (LeNet)")
		yoloInj   = flag.Int("yolo", 150, "software injections per CNN model (Yolo)")
		seed      = flag.Uint64("seed", 2021, "seed")
	)
	flag.Parse()

	fmt.Println("== Table I: module inventory ==")
	for _, mod := range faults.AllModules() {
		fmt.Printf("  %-10s %6d flip-flops\n", mod, rtl.ModuleBits(mod))
	}

	log.Printf("RTL characterisation (%d faults per campaign)...", *rtlFaults)
	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{
		FaultsPerCampaign: *rtlFaults, TMXMFaults: *tmxm, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Fig. 4: AVF per module and instruction ==")
	for _, r := range char.AVFTable() {
		fmt.Printf("  %-10s %-5s SDC-single=%6.3f%% SDC-multi=%6.3f%% DUE=%6.3f%%\n",
			r.Module, r.Op, 100*r.SDCSingle, 100*r.SDCMulti, 100*r.DUE)
	}

	fmt.Println("\n== §V-C: syndrome power laws ==")
	for key, e := range char.DB.Entries {
		if e.Fit == nil || key.Range != faults.RangeMedium {
			continue
		}
		fmt.Printf("  %-22s alpha=%.2f xmin=%.3g median=%.3g bits=%.1f\n",
			key, e.Fit.Alpha, e.Fit.Xmin, e.Median, e.AvgBits)
	}

	fmt.Println("\n== Fig. 7 / Table II: t-MxM ==")
	for _, res := range char.TMXM {
		fmt.Printf("  %-10s %-6s AVF(SDC)=%.3f%% AVF(DUE)=%.3f%% multi-share=%.0f%% patterns=%v\n",
			res.Spec.Module, res.Spec.Kind,
			100*res.Tally.AVFSDC(), 100*res.Tally.AVFDUE(),
			100*res.Tally.MultiShare(), res.Patterns)
	}

	log.Printf("software campaigns (%d injections per HPC app per model)...", *hpcInj)
	evals, err := gpufi.EvaluateHPC(char.DB, gpufi.HPCSuite(), gpufi.EvalConfig{
		Injections: *hpcInj, Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Fig. 10 / Table III: PVF ==")
	for _, e := range evals {
		fmt.Printf("  %-10s bitflip=%.3f syndrome=%.3f (underestimation %.0f%%)\n",
			e.Name, e.BitFlip.PVF(), e.Syndrome.PVF(), 100*e.Underestimation())
	}

	fmt.Println("\n== Campaign engine accounting (pruned/collapsed faults, replay speedup) ==")
	for _, e := range evals {
		printEngineRow(e.Name,
			e.BitFlip.PrunedFaults+e.Syndrome.PrunedFaults,
			e.BitFlip.CollapsedFaults+e.Syndrome.CollapsedFaults,
			e.BitFlip.Tally.Injections+e.Syndrome.Tally.Injections,
			e.BitFlip.SimInstrs+e.Syndrome.SimInstrs,
			e.BitFlip.SkippedInstrs+e.Syndrome.SkippedInstrs)
		if reason := e.BitFlip.NoReconvergeReason; reason != "" {
			fmt.Printf("             note: %s\n", reason)
		}
	}

	log.Print("CNN campaigns...")
	lenet, err := gpufi.EvaluateCNN(char.DB, "LeNetLite", cnn.NewLeNetLite(),
		cnn.LeNetInput(0), swfi.LeNetCritical, gpufi.EvalConfig{Injections: *cnnInj, Seed: *seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	yolo, err := gpufi.EvaluateCNN(char.DB, "YoloLite", cnn.NewYoloLite(),
		cnn.YoloInput(0), swfi.YoloCritical, gpufi.EvalConfig{Injections: *yoloInj, Seed: *seed + 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== §VI: CNN criticality ==")
	for _, c := range []*gpufi.CNNEvaluation{lenet, yolo} {
		fmt.Printf("  %-10s PVF flip/syn/tile = %.3f/%.3f/%.3f  critical share %.0f%%/%.0f%%/%.0f%%\n",
			c.Name, c.BitFlip.PVF(), c.Syndrome.PVF(), c.Tile.PVF(),
			100*c.BitFlip.CriticalShare(), 100*c.Syndrome.CriticalShare(), 100*c.Tile.CriticalShare())
		printEngineRow(c.Name,
			c.BitFlip.PrunedFaults+c.Syndrome.PrunedFaults+c.Tile.PrunedFaults,
			c.BitFlip.CollapsedFaults+c.Syndrome.CollapsedFaults+c.Tile.CollapsedFaults,
			c.BitFlip.Tally.Injections+c.Syndrome.Tally.Injections+c.Tile.Tally.Injections,
			c.BitFlip.SimInstrs+c.Syndrome.SimInstrs+c.Tile.SimInstrs,
			c.BitFlip.SkippedInstrs+c.Syndrome.SkippedInstrs+c.Tile.SkippedInstrs)
	}

	cm, err := gpufi.MeasureCost(apps.NewMxM(64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== §VI: time savings ==")
	fmt.Printf("  %s\n", cm.Compare(48000))
}

// printEngineRow renders one campaign-engine accounting row: the share of
// injections resolved by dead-site pruning and equivalence collapsing,
// and the effective replay speedup of the rest.
func printEngineRow(name string, pruned, collapsed uint64, injections int, sim, skipped uint64) {
	speedup := float64(0)
	if sim > 0 {
		speedup = float64(sim+skipped) / float64(sim)
	}
	var pruneRate, collapseRate float64
	if injections > 0 {
		pruneRate = float64(pruned) / float64(injections)
		collapseRate = float64(collapsed) / float64(injections)
	}
	fmt.Printf("  %-10s pruned=%d (%.1f%%) collapsed=%d (%.1f%%) replay speedup %.2fx\n",
		name, pruned, 100*pruneRate, collapsed, 100*collapseRate, speedup)
}
