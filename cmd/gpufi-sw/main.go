// Command gpufi-sw runs software fault-injection campaigns (the NVBitFI
// analog, §IV-B/§VI) on the HPC applications and CNNs, reporting PVF under
// the selected fault model.
//
// Usage:
//
//	gpufi-sw [-app MxM|Lava|Quicksort|Hotspot|LUD|Gaussian|LeNet|Yolo]
//	         [-model bitflip|bitflip2|syndrome|tile] [-db syndromes.json]
//	         [-n 1000] [-seed S] [-no-fast-forward] [-no-prune] [-no-collapse]
//	         [-no-fast-path] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Without -app, all six HPC applications run under the chosen model.
// -no-fast-forward disables the golden-prefix checkpoint optimisation and
// re-simulates every injection run from instruction zero; -no-prune
// disables dead-site liveness pruning and -no-collapse disables
// fault-equivalence collapsing; -no-fast-path forces the reference
// (Tier 0) interpreter instead of the pre-decoded fast path. Results are
// bit-identical under every combination; the flags exist for regression
// comparison and for benchmarking the accelerator layers themselves.
//
// SIGINT cancels the campaign at the next injection boundary and prints
// how many injections completed before the interrupt.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"

	"gpufi"
	"gpufi/internal/swfi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-sw: ")

	var (
		appName    = flag.String("app", "", "application (default: all six HPC apps)")
		model      = flag.String("model", "bitflip", "fault model: bitflip, bitflip2, syndrome, tile")
		dbPath     = flag.String("db", "", "syndrome database (required for syndrome/tile)")
		n          = flag.Int("n", 1000, "injections per campaign")
		seed       = flag.Uint64("seed", 7, "campaign seed")
		noFF       = flag.Bool("no-fast-forward", false, "replay every injection run in full instead of restoring golden-prefix checkpoints")
		noPrune    = flag.Bool("no-prune", false, "disable dead-site liveness pruning (results are bit-identical)")
		noCollapse = flag.Bool("no-collapse", false, "disable fault-equivalence collapsing (results are bit-identical)")
		noFastPath = flag.Bool("no-fast-path", false, "force the reference (Tier 0) interpreter instead of the pre-decoded fast path (results are bit-identical)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var db *gpufi.DB
	if *dbPath != "" {
		var err error
		if db, err = gpufi.LoadDB(*dbPath); err != nil {
			log.Fatal(err)
		}
	}

	switch *appName {
	case "LeNet", "Yolo":
		runCNN(ctx, *appName, *model, db, *n, *seed, *noFF, *noPrune, *noCollapse, *noFastPath)
		return
	}

	fm, ok := parseModel(*model)
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}
	if fm.NeedsDB() && db == nil {
		log.Fatal("-db is required for the syndrome model")
	}

	var workloads []*gpufi.Workload
	if *appName == "" {
		workloads = gpufi.HPCSuite()
	} else {
		w := findApp(*appName)
		if w == nil {
			log.Fatalf("unknown application %q", *appName)
		}
		workloads = []*gpufi.Workload{w}
	}

	for _, w := range workloads {
		var done atomic.Int64
		res, err := gpufi.RunCampaignCtx(ctx, gpufi.Campaign{
			Workload: w, Model: fm, DB: db, Injections: *n, Seed: *seed,
			NoFastForward: *noFF, NoPrune: *noPrune, NoCollapse: *noCollapse,
			NoFastPath: *noFastPath,
			Progress:   func(d, t int) { progressMax(&done, int64(d)) },
		})
		if err != nil {
			if ctx.Err() != nil {
				log.Fatalf("%s: interrupted after %d/%d injections (campaigns are deterministic, re-run to reproduce)",
					w.Name, done.Load(), *n)
			}
			log.Fatal(err)
		}
		if res.NoReconvergeReason != "" {
			log.Printf("%s: %s", w.Name, res.NoReconvergeReason)
		}
		logEngine(w.Name, res.SimInstrs, res.SkippedInstrs,
			res.PrunedFaults, res.CollapsedFaults, res.PruneRate(), res.CollapseRate(),
			res.EmuMIPS(), res.EffectiveMIPS())
		lo, hi := res.PVFCI()
		t := res.Tally
		fmt.Printf("%-10s %-26s PVF=%.3f [%.3f, %.3f]  (masked %d, SDC %d, DUE %d)\n",
			w.Name, fm, res.PVF(), lo, hi, t.Maskeds, t.SDCs(), t.DUEs)
	}
}

// logEngine reports the campaign accelerator accounting: how many faults
// the liveness index pruned, how many the equivalence classes collapsed,
// the effective replay speedup of what remained, and the interpreter
// throughput (emulated MIPS over interpreted instructions; effective
// MIPS also credits the fast-forward-skipped ones).
func logEngine(name string, sim, skipped, pruned, collapsed uint64, pruneRate, collapseRate, emuMIPS, effMIPS float64) {
	if sim == 0 && skipped == 0 {
		return // NoFastForward: the engine ran plainly, nothing to report
	}
	speedup := float64(0)
	if sim > 0 {
		speedup = float64(sim+skipped) / float64(sim)
	}
	log.Printf("%s: engine pruned %d (%.1f%%), collapsed %d (%.1f%%), replay speedup %.2fx (%d sim / %d skipped instrs), %.1f emu MIPS (%.1f effective)",
		name, pruned, 100*pruneRate, collapsed, 100*collapseRate, speedup, sim, skipped, emuMIPS, effMIPS)
}

// startProfiles starts CPU profiling and arranges a heap profile, both
// optional; the returned stop function must run before the process exits.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}
	}, nil
}

// progressMax raises *v to at least n (progress callbacks may arrive out
// of order across engine workers).
func progressMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

func runCNN(ctx context.Context, name, model string, db *gpufi.DB, n int, seed uint64, noFF, noPrune, noCollapse, noFastPath bool) {
	var (
		net      *gpufi.Network
		input    []float32
		critical func(a, b []float32) bool
	)
	if name == "LeNet" {
		net, input, critical = gpufi.NewLeNetLite(), gpufi.LeNetInput(0), gpufi.LeNetCritical
	} else {
		net, input, critical = gpufi.NewYoloLite(), gpufi.YoloInput(0), gpufi.YoloCritical
	}
	var cm swfi.CNNModel
	switch model {
	case "bitflip":
		cm = swfi.CNNBitFlip
	case "syndrome":
		cm = swfi.CNNSyndrome
	case "tile":
		cm = swfi.CNNTile
	default:
		log.Fatalf("CNN model must be bitflip, syndrome or tile (got %q)", model)
	}
	if cm != swfi.CNNBitFlip && db == nil {
		log.Fatal("-db is required for syndrome/tile CNN models")
	}
	var done atomic.Int64
	res, err := gpufi.RunCNNCampaignCtx(ctx, gpufi.CNNCampaign{
		Net: net, Input: input, Model: cm, DB: db,
		Injections: n, Seed: seed, Critical: critical,
		NoFastForward: noFF, NoPrune: noPrune, NoCollapse: noCollapse,
		NoFastPath: noFastPath,
		Progress:   func(d, t int) { progressMax(&done, int64(d)) },
	})
	if err != nil {
		if ctx.Err() != nil {
			log.Fatalf("%s: interrupted after %d/%d injections (campaigns are deterministic, re-run to reproduce)",
				name, done.Load(), n)
		}
		log.Fatal(err)
	}
	logEngine(name, res.SimInstrs, res.SkippedInstrs,
		res.PrunedFaults, res.CollapsedFaults, res.PruneRate(), res.CollapseRate(),
		res.EmuMIPS(), res.EffectiveMIPS())
	t := res.Tally
	fmt.Printf("%-10s %-26s PVF=%.3f  critical SDCs %d/%d (%.1f%%)  (masked %d, DUE %d)\n",
		name, cm, res.PVF(), res.CriticalSDC, t.SDCs(), 100*res.CriticalShare(), t.Maskeds, t.DUEs)
}

func parseModel(s string) (gpufi.FaultModel, bool) {
	switch s {
	case "bitflip":
		return gpufi.ModelBitFlip, true
	case "bitflip2":
		return gpufi.ModelDoubleBitFlip, true
	case "syndrome":
		return gpufi.ModelSyndrome, true
	case "syndrome-emp":
		return gpufi.ModelSyndromeEmp, true
	default:
		return 0, false
	}
}

func findApp(name string) *gpufi.Workload {
	for _, w := range gpufi.HPCSuite() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
