// Command gpufi-profile prints the dynamic instruction profiles of the
// evaluated applications — the data behind Fig. 3 of the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"gpufi"
	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/swfi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-profile: ")
	perOp := flag.Bool("ops", false, "print per-opcode counts instead of category shares")
	flag.Parse()

	for _, w := range gpufi.HPCSuite() {
		counts, err := gpufi.Profile(w)
		if err != nil {
			log.Fatal(err)
		}
		report(w.Name, counts, *perOp)
	}
	for _, c := range []struct {
		name  string
		net   *gpufi.Network
		input []float32
	}{
		{"LeNetLite", gpufi.NewLeNetLite(), gpufi.LeNetInput(0)},
		{"YoloLite", gpufi.NewYoloLite(), gpufi.YoloInput(0)},
	} {
		var counts swfi.Counts
		if _, err := c.net.Run(c.input, emu.Hooks{Post: func(ev *emu.Event) {
			counts[ev.Instr.Op] += uint64(ev.ActiveCount())
		}}, nil); err != nil {
			log.Fatal(err)
		}
		report(c.name, counts, *perOp)
	}
}

func report(name string, counts swfi.Counts, perOp bool) {
	if !perOp {
		fmt.Println(swfi.FigureProfile(name, counts))
		return
	}
	fmt.Printf("%s (total %d thread-instructions):\n", name, counts.Total())
	type oc struct {
		op isa.Opcode
		n  uint64
	}
	var rows []oc
	for op, n := range counts {
		if n > 0 {
			rows = append(rows, oc{isa.Opcode(op), n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  %-8s %10d (%5.1f%%)\n", r.op, r.n, 100*float64(r.n)/float64(counts.Total()))
	}
}
