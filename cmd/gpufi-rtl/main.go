// Command gpufi-rtl runs RTL fault-injection campaigns on the FlexGripPlus
// analog and writes the resulting fault-syndrome database, the framework's
// publishable artefact (§V of the paper).
//
// Usage:
//
//	gpufi-rtl [-faults N] [-tmxm N] [-seed S] [-out db.json]
//	          [-op FADD] [-range M] [-module FP32] [-v]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Without -op the full characterisation runs: every characterised opcode x
// input range x exercised module, plus the t-MxM campaigns.
//
// SIGINT cancels the campaign at the next fault boundary and prints how
// far it got; no partial database is written.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"

	"gpufi"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtlfi"
	"gpufi/internal/syndrome"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-rtl: ")

	var (
		nFaults    = flag.Int("faults", 2000, "faults per campaign")
		nTMXM      = flag.Int("tmxm", 0, "faults per t-MxM campaign (default: -faults)")
		seed       = flag.Uint64("seed", 2021, "campaign seed")
		out        = flag.String("out", "syndromes.json", "output database path")
		opName     = flag.String("op", "", "single opcode to characterise (e.g. FFMA)")
		rngName    = flag.String("range", "M", "input range for -op (S, M, L)")
		modName    = flag.String("module", "FP32", "module for -op (FP32, INT, SFU, SFUctl, Scheduler, Pipeline)")
		verbose    = flag.Bool("v", false, "print per-campaign summaries")
		noPrune    = flag.Bool("no-prune", false, "disable dead-site fault pruning (results are bit-identical either way)")
		noCollapse = flag.Bool("no-collapse", false, "disable fault-equivalence collapsing (results are bit-identical either way)")
		noBitPar   = flag.Bool("no-bit-parallel", false, "disable bit-parallel fault marching (results are bit-identical either way)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	detailedPath = flag.String("detailed", "", "write the single-campaign detailed report (CSV) to this path")
	flag.Parse()

	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *opName != "" {
		runSingle(ctx, *opName, *rngName, *modName, *nFaults, *seed, *noPrune, *noCollapse, *noBitPar)
		return
	}

	var done, total atomic.Int64
	cfg := gpufi.CharacterizeConfig{
		FaultsPerCampaign: *nFaults,
		TMXMFaults:        *nTMXM,
		Seed:              *seed,
		NoPrune:           *noPrune,
		NoCollapse:        *noCollapse,
		NoBitParallel:     *noBitPar,
		Progress: func(d, t int) {
			progressMax(&done, int64(d))
			total.Store(int64(t))
		},
	}
	log.Printf("running full RTL characterisation (%d faults/campaign)...", *nFaults)
	char, err := gpufi.CharacterizeCtx(ctx, cfg)
	if err != nil {
		if ctx.Err() != nil {
			log.Fatalf("interrupted after %d/%d faults; nothing written (campaigns are deterministic, re-run to reproduce)",
				done.Load(), total.Load())
		}
		log.Fatal(err)
	}
	if *verbose {
		for _, row := range char.AVFTable() {
			fmt.Printf("%-10s %-5s SDC=%6.3f%% (multi %6.3f%%) DUE=%6.3f%%\n",
				row.Module, row.Op, 100*(row.SDCSingle+row.SDCMulti), 100*row.SDCMulti, 100*row.DUE)
		}
		for _, mc := range char.RankModules() {
			fmt.Printf("hardening rank: %-10s size=%5d AVF(SDC)=%.3f%% weighted=%.1f\n",
				mc.Module, mc.Size, 100*mc.AVFSDC, mc.WeightedSDC)
		}
	}
	tel := char.Telemetry()
	log.Printf("engine: %d injections, %d cycles simulated, %d skipped, %d dead-pruned, %d collapsed, %d marched in %d marches (prune rate %.1f%%, collapse rate %.1f%%, vector rate %.1f%%, lane occupancy %.1f%%, replay speedup %.1fx)",
		tel.Injections, tel.SimCycles, tel.SkippedCycles, tel.PrunedFaults, tel.CollapsedFaults,
		tel.VectorFaults, tel.Marches,
		100*tel.PruneRate(), 100*tel.CollapseRate(), 100*tel.VectorRate(), 100*tel.LaneOccupancy(), tel.ReplaySpeedup())
	if err := gpufi.SaveDB(char.DB, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d entries, %d t-MxM pools)", *out, len(char.DB.Entries), len(char.DB.TMXM))
}

// progressMax raises *v to at least n (progress callbacks may arrive out
// of order across engine workers).
func progressMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// runSingle characterises one (op, range, module) pool and prints its
// detailed statistics.
func runSingle(ctx context.Context, opName, rngName, modName string, nFaults int, seed uint64, noPrune, noCollapse, noBitPar bool) {
	op, ok := parseOp(opName)
	if !ok {
		log.Fatalf("unknown opcode %q", opName)
	}
	rng, ok := parseRange(rngName)
	if !ok {
		log.Fatalf("unknown range %q (want S, M or L)", rngName)
	}
	mod, ok := parseModule(modName)
	if !ok {
		log.Fatalf("unknown module %q", modName)
	}
	var done atomic.Int64
	res, err := rtlfi.RunMicroCtx(ctx, rtlfi.Spec{
		Op: op, Range: rng, Module: mod, NumFaults: nFaults, Seed: seed,
		NoPrune: noPrune, NoCollapse: noCollapse, NoBitParallel: noBitPar,
		Progress: func(d, t int) { progressMax(&done, int64(d)) },
	})
	if err != nil {
		if ctx.Err() != nil {
			log.Fatalf("interrupted after %d/%d faults; nothing written", done.Load(), nFaults)
		}
		log.Fatal(err)
	}
	if err := res.WriteGeneralReport(os.Stderr); err != nil {
		log.Fatal(err)
	}
	db := syndrome.New()
	e := db.AddMicro(res)
	t := res.Tally
	fmt.Printf("%s/%s/%s: %d injections\n", op, rng, mod, t.Injections)
	fmt.Printf("  masked %d  SDC %d (single %d, multi %d)  DUE %d\n",
		t.Maskeds, t.SDCs(), t.SDCSingle, t.SDCMulti, t.DUEs)
	fmt.Printf("  AVF: SDC %.3f%%  DUE %.3f%%  avg corrupted threads %.1f\n",
		100*t.AVFSDC(), 100*t.AVFDUE(), t.AvgThreads())
	fmt.Printf("  engine: %d cycles simulated, %d skipped, %d dead-pruned, %d collapsed, %d marched in %d marches (prune rate %.1f%%, collapse rate %.1f%%, vector rate %.1f%%, lane occupancy %.1f%%, replay speedup %.1fx)\n",
		res.SimCycles, res.SkippedCycles, res.PrunedFaults, res.CollapsedFaults,
		res.VectorFaults, res.Marches,
		100*res.PruneRate(), 100*res.CollapseRate(), 100*res.VectorRate(), 100*res.LaneOccupancy(), res.ReplaySpeedup())
	if e.Fit != nil {
		fmt.Printf("  syndrome power law: alpha=%.3f xmin=%.3g KS=%.3f (median %.3g, avg bits %.1f)\n",
			e.Fit.Alpha, e.Fit.Xmin, e.Fit.KS, e.Median, e.AvgBits)
	}
	fmt.Printf("  histogram: %s\n", e.Hist)
	if *detailedPath != "" {
		f, err := os.Create(*detailedPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteDetailedReport(f); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote detailed report to %s (%d SDC records)", *detailedPath, len(res.Details))
	}
}

var detailedPath *string

// startProfiles starts a CPU profile and/or schedules a heap profile; the
// returned stop function finalises both and must run before exit.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}
	}, nil
}

func parseOp(s string) (isa.Opcode, bool) {
	for _, op := range isa.CharacterizedOpcodes() {
		if op.String() == s {
			return op, true
		}
	}
	return 0, false
}

func parseRange(s string) (faults.InputRange, bool) {
	for _, r := range faults.AllRanges() {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

func parseModule(s string) (faults.Module, bool) {
	for _, m := range faults.AllModules() {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}
