// Command gpufi-benchguard is the CI bench-regression gate: it parses
// `go test -bench` output and compares every RTLFI_/SWFI_/Emu_ benchmark
// against the committed BENCH_*.json baselines, failing (exit 1) when any
// benchmark's ns/op regresses beyond the allowed factor.
//
// Usage:
//
//	go test -run '^$' -bench 'RTLFI_|SWFI_|Emu_' -benchtime 1x . | tee bench.out
//	gpufi-benchguard [-max-ratio 2.5] [-baselines BENCH_rtlfi.json,BENCH_swfi.json,BENCH_emu.json] bench.out
//
// With no file argument the bench output is read from stdin.
//
// The factor is deliberately loose (default 2.5x): CI runners are slower
// and noisier than the machine that recorded the baselines, and a
// single-iteration -benchtime 1x run jitters. The gate exists to catch
// order-of-magnitude engine regressions — an accidentally disabled
// fast-forward, pruning or collapsing path multiplies wall-clock several
// times over and clears the threshold on any hardware.
//
// All regressions are reported in one run, not just the first. Measured
// benchmarks without a baseline (a freshly added mode) are skipped, but a
// guarded baseline entry missing from the measured set is an error — a
// renamed or deleted benchmark would otherwise silently stop being
// guarded. Pass -allow-missing when intentionally running a narrower
// bench filter than the baselines cover.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the subset of the gpufi-bench/v1 schema the guard
// needs: benchmark names and their recorded ns/op.
type baselineFile struct {
	Schema     string `json:"schema"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkRTLFI_MicroCampaign/Pipe/Pruned-4    3    9653715 ns/op    79.77 replay-speedup
//
// The trailing -N is GOMAXPROCS, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-benchguard: ")

	maxRatio := flag.Float64("max-ratio", 2.5, "fail when measured ns/op exceeds baseline by more than this factor")
	baselines := flag.String("baselines", "BENCH_rtlfi.json,BENCH_swfi.json,BENCH_emu.json", "comma-separated baseline files (gpufi-bench/v1)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate guarded baseline entries absent from the measured set")
	flag.Parse()

	base, err := loadBaselines(strings.Split(*baselines, ","))
	if err != nil {
		log.Fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(measured) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	rep := gate(measured, base, *maxRatio)
	for _, line := range rep.failures {
		log.Print(line)
	}
	if len(rep.missing) > 0 && !*allowMissing {
		log.Printf("ERROR: %d guarded baseline entries were not measured (renamed/deleted benchmark, or the bench filter is too narrow — pass -allow-missing if intentional):", len(rep.missing))
		for _, name := range rep.missing {
			log.Printf("  missing from measured set: %s", name)
		}
	}
	switch {
	case rep.checked == 0:
		log.Fatal("no guarded benchmarks matched a baseline; check -baselines and the bench filter")
	case len(rep.failures) > 0 && len(rep.missing) > 0 && !*allowMissing:
		log.Fatalf("%d of %d guarded benchmarks regressed beyond %.2fx and %d baseline entries were not measured",
			len(rep.failures), rep.checked, *maxRatio, len(rep.missing))
	case len(rep.failures) > 0:
		log.Fatalf("%d of %d guarded benchmarks regressed beyond %.2fx", len(rep.failures), rep.checked, *maxRatio)
	case len(rep.missing) > 0 && !*allowMissing:
		log.Fatalf("%d guarded baseline entries were not measured", len(rep.missing))
	}
	fmt.Printf("gpufi-benchguard: %d guarded benchmarks within %.2fx of baseline\n", rep.checked, *maxRatio)
}

// report is the outcome of one gate evaluation.
type report struct {
	checked  int      // guarded benchmarks compared against a baseline
	failures []string // one formatted line per regression, name-sorted
	missing  []string // guarded baseline names absent from the measured set
}

// gate compares every guarded measured benchmark against the baselines
// and collects ALL regressions plus every guarded baseline entry that was
// never measured. It never fails fast: CI gets the complete picture in
// one run.
func gate(measured, base map[string]float64, maxRatio float64) report {
	var rep report
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !guarded(name) {
			continue
		}
		baseNs, ok := base[name]
		if !ok {
			continue // not baselined yet (e.g. a freshly added mode)
		}
		rep.checked++
		ratio := measured[name] / baseNs
		if ratio > maxRatio {
			rep.failures = append(rep.failures, fmt.Sprintf("FAIL %s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx allowed)",
				name, measured[name], baseNs, ratio, maxRatio))
		}
	}
	for name := range base {
		if !guarded(name) {
			continue
		}
		if _, ok := measured[name]; !ok {
			rep.missing = append(rep.missing, name)
		}
	}
	sort.Strings(rep.missing)
	return rep
}

// guarded reports whether the gate applies to a benchmark: the RTL and
// software fault-injection engine families, plus the interpreter
// microbenchmarks (a Tier-1 fast-path regression would otherwise hide
// inside campaign noise).
func guarded(name string) bool {
	return strings.HasPrefix(name, "BenchmarkRTLFI_") ||
		strings.HasPrefix(name, "BenchmarkSWFI_") ||
		strings.HasPrefix(name, "BenchmarkEmu_")
}

func loadBaselines(paths []string) (map[string]float64, error) {
	base := make(map[string]float64)
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if !strings.HasPrefix(bf.Schema, "gpufi-bench/") {
			return nil, fmt.Errorf("%s: unexpected schema %q", p, bf.Schema)
		}
		for _, b := range bf.Benchmarks {
			if b.NsPerOp > 0 {
				base[b.Name] = b.NsPerOp
			}
		}
	}
	return base, nil
}

func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		// go test repeats a benchmark under -count; keep the fastest run,
		// the least noisy estimate of the achievable cost.
		if old, ok := out[m[1]]; !ok || ns < old {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}
