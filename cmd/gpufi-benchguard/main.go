// Command gpufi-benchguard is the CI bench-regression gate: it parses
// `go test -bench` output and compares every RTLFI_/SWFI_ benchmark
// against the committed BENCH_*.json baselines, failing (exit 1) when any
// benchmark's ns/op regresses beyond the allowed factor.
//
// Usage:
//
//	go test -run '^$' -bench 'RTLFI_|SWFI_' -benchtime 1x . | tee bench.out
//	gpufi-benchguard [-max-ratio 2.5] [-baselines BENCH_rtlfi.json,BENCH_swfi.json] bench.out
//
// With no file argument the bench output is read from stdin.
//
// The factor is deliberately loose (default 2.5x): CI runners are slower
// and noisier than the machine that recorded the baselines, and a
// single-iteration -benchtime 1x run jitters. The gate exists to catch
// order-of-magnitude engine regressions — an accidentally disabled
// fast-forward, pruning or collapsing path multiplies wall-clock several
// times over and clears the threshold on any hardware. Benchmarks present
// in only one side (new rows not yet baselined, baselines not exercised
// by the CI filter) are skipped, never failed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile is the subset of the gpufi-bench/v1 schema the guard
// needs: benchmark names and their recorded ns/op.
type baselineFile struct {
	Schema     string `json:"schema"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkRTLFI_MicroCampaign/Pipe/Pruned-4    3    9653715 ns/op    79.77 replay-speedup
//
// The trailing -N is GOMAXPROCS, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpufi-benchguard: ")

	maxRatio := flag.Float64("max-ratio", 2.5, "fail when measured ns/op exceeds baseline by more than this factor")
	baselines := flag.String("baselines", "BENCH_rtlfi.json,BENCH_swfi.json", "comma-separated baseline files (gpufi-bench/v1)")
	flag.Parse()

	base, err := loadBaselines(strings.Split(*baselines, ","))
	if err != nil {
		log.Fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(measured) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	failed := 0
	checked := 0
	for name, ns := range measured {
		if !guarded(name) {
			continue
		}
		baseNs, ok := base[name]
		if !ok {
			continue // not baselined yet (e.g. a freshly added mode)
		}
		checked++
		ratio := ns / baseNs
		if ratio > *maxRatio {
			failed++
			log.Printf("FAIL %s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx allowed)",
				name, ns, baseNs, ratio, *maxRatio)
		}
	}
	if checked == 0 {
		log.Fatal("no guarded benchmarks matched a baseline; check -baselines and the bench filter")
	}
	if failed > 0 {
		log.Fatalf("%d of %d guarded benchmarks regressed beyond %.2fx", failed, checked, *maxRatio)
	}
	fmt.Printf("gpufi-benchguard: %d guarded benchmarks within %.2fx of baseline\n", checked, *maxRatio)
}

// guarded reports whether the gate applies to a benchmark: the RTL and
// software fault-injection engine families.
func guarded(name string) bool {
	return strings.HasPrefix(name, "BenchmarkRTLFI_") || strings.HasPrefix(name, "BenchmarkSWFI_")
}

func loadBaselines(paths []string) (map[string]float64, error) {
	base := make(map[string]float64)
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if !strings.HasPrefix(bf.Schema, "gpufi-bench/") {
			return nil, fmt.Errorf("%s: unexpected schema %q", p, bf.Schema)
		}
		for _, b := range bf.Benchmarks {
			if b.NsPerOp > 0 {
				base[b.Name] = b.NsPerOp
			}
		}
	}
	return base, nil
}

func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		// go test repeats a benchmark under -count; keep the fastest run,
		// the least noisy estimate of the achievable cost.
		if old, ok := out[m[1]]; !ok || ns < old {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}
