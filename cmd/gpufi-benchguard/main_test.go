package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
BenchmarkRTLFI_MicroCampaign/Pipe/Pruned-4    3    9653715 ns/op    79.77 replay-speedup
BenchmarkRTLFI_MicroCampaign/Pipe/Pruned-4    3    9000000 ns/op
BenchmarkSWFI_HPC/Jacobi-8                    1    12345678 ns/op
not a bench line
PASS`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	// Repeated runs keep the fastest measurement.
	if ns := got["BenchmarkRTLFI_MicroCampaign/Pipe/Pruned"]; ns != 9000000 {
		t.Fatalf("RTLFI ns/op = %v, want 9000000 (fastest of repeats)", ns)
	}
	if ns := got["BenchmarkSWFI_HPC/Jacobi"]; ns != 12345678 {
		t.Fatalf("SWFI ns/op = %v, want 12345678", ns)
	}
}

func TestGateReportsAllRegressions(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkRTLFI_A": 1000, // 10x regression
		"BenchmarkRTLFI_B": 500,  // 5x regression
		"BenchmarkSWFI_C":  100,  // fine
		"BenchmarkOther_D": 9999, // not guarded
	}
	base := map[string]float64{
		"BenchmarkRTLFI_A": 100,
		"BenchmarkRTLFI_B": 100,
		"BenchmarkSWFI_C":  100,
		"BenchmarkOther_D": 1,
	}
	rep := gate(measured, base, 2.5)
	if rep.checked != 3 {
		t.Fatalf("checked = %d, want 3 (guarded only)", rep.checked)
	}
	if len(rep.failures) != 2 {
		t.Fatalf("failures = %v, want both regressions reported in one run", rep.failures)
	}
	if !strings.Contains(rep.failures[0], "BenchmarkRTLFI_A") || !strings.Contains(rep.failures[1], "BenchmarkRTLFI_B") {
		t.Fatalf("failures missing a regression: %v", rep.failures)
	}
	if len(rep.missing) != 0 {
		t.Fatalf("missing = %v, want none", rep.missing)
	}
}

func TestGateFlagsMissingBaselineEntries(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkRTLFI_A": 100,
	}
	base := map[string]float64{
		"BenchmarkRTLFI_A":   100,
		"BenchmarkRTLFI_Old": 100, // guarded baseline no longer measured
		"BenchmarkSWFI_Gone": 100, // likewise
		"BenchmarkOther_X":   100, // unguarded: never an error
	}
	rep := gate(measured, base, 2.5)
	if len(rep.failures) != 0 {
		t.Fatalf("failures = %v, want none", rep.failures)
	}
	want := []string{"BenchmarkRTLFI_Old", "BenchmarkSWFI_Gone"}
	if len(rep.missing) != len(want) {
		t.Fatalf("missing = %v, want %v", rep.missing, want)
	}
	for i, name := range want {
		if rep.missing[i] != name {
			t.Fatalf("missing = %v, want %v", rep.missing, want)
		}
	}
}

func TestGateGuardsSWFIModeMatrix(t *testing.T) {
	// The software-campaign Pruned/Collapsed engine modes are guarded
	// baselines: a bench run that stops measuring them (renamed mode,
	// narrowed filter) must fail rather than silently lose coverage.
	base := map[string]float64{
		"BenchmarkSWFI_HPCCampaign/Collapsed":   100,
		"BenchmarkSWFI_HPCCampaign/Pruned":      100,
		"BenchmarkSWFI_HPCCampaign/FastForward": 100,
		"BenchmarkSWFI_HPCCampaign/FullReplay":  100,
	}
	measured := map[string]float64{
		"BenchmarkSWFI_HPCCampaign/FastForward": 100,
		"BenchmarkSWFI_HPCCampaign/FullReplay":  100,
	}
	rep := gate(measured, base, 2.5)
	want := []string{"BenchmarkSWFI_HPCCampaign/Collapsed", "BenchmarkSWFI_HPCCampaign/Pruned"}
	if len(rep.missing) != len(want) {
		t.Fatalf("missing = %v, want %v", rep.missing, want)
	}
	for i, name := range want {
		if rep.missing[i] != name {
			t.Fatalf("missing = %v, want %v", rep.missing, want)
		}
	}
}

func TestGateSkipsUnbaselinedMeasurements(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkRTLFI_New": 1e12, // huge but unbaselined: skipped, not failed
		"BenchmarkRTLFI_A":   100,
	}
	base := map[string]float64{"BenchmarkRTLFI_A": 100}
	rep := gate(measured, base, 2.5)
	if rep.checked != 1 || len(rep.failures) != 0 || len(rep.missing) != 0 {
		t.Fatalf("rep = %+v, want exactly one clean check", rep)
	}
}
