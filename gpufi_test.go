package gpufi

import (
	"path/filepath"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
)

func tinyCharacterization(t *testing.T) *Characterization {
	t.Helper()
	c, err := Characterize(CharacterizeConfig{
		FaultsPerCampaign: 200,
		TMXMFaults:        300,
		Seed:              1,
		Ops:               []isa.Opcode{isa.OpFFMA, isa.OpIADD},
		Ranges:            []faults.InputRange{faults.RangeMedium},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFacadeEndToEnd(t *testing.T) {
	c := tinyCharacterization(t)
	evals, err := EvaluateHPC(c.DB, []*Workload{NewMxM(16)}, EvalConfig{Injections: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 1 || evals[0].BitFlip.Tally.Injections != 40 {
		t.Fatalf("unexpected evaluation %+v", evals)
	}
}

func TestFacadeDBRoundTrip(t *testing.T) {
	c := tinyCharacterization(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := SaveDB(c.DB, path); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != len(c.DB.Entries) || len(db.TMXM) != len(c.DB.TMXM) {
		t.Errorf("round trip lost entries")
	}
	// The loaded DB drives a syndrome campaign.
	res, err := RunCampaign(Campaign{
		Workload: NewMxM(16), Model: ModelSyndrome, DB: db,
		Injections: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Injections != 20 {
		t.Errorf("injections = %d", res.Tally.Injections)
	}
}

func TestFacadeSuiteAndProfiles(t *testing.T) {
	suite := HPCSuite()
	if len(suite) != 6 {
		t.Fatalf("suite = %d apps", len(suite))
	}
	counts, err := Profile(NewLava(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() == 0 {
		t.Error("empty profile")
	}
}

func TestFacadeCNNHelpers(t *testing.T) {
	net := NewLeNetLite()
	res, err := RunCNNCampaign(CNNCampaign{
		Net: net, Input: LeNetInput(0), Model: 0, /* bit-flip */
		Injections: 20, Seed: 4, Critical: LeNetCritical,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Injections != 20 {
		t.Errorf("injections = %d", res.Tally.Injections)
	}
}
