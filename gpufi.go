// Package gpufi reproduces the two-level GPU fault-injection framework of
// "Revealing GPUs Vulnerabilities by Combining Register-Transfer and
// Software-Level Fault Injection" (dos Santos, Rodriguez Condia, Carro,
// Sonza Reorda, Rech — DSN 2021) as a self-contained Go library.
//
// The framework combines two abstraction levels:
//
//   - An RTL model of a G80-class streaming multiprocessor (the
//     FlexGripPlus analog) whose scheduler, pipeline registers, functional
//     units and SFUs are explicit flip-flop vectors. Single-transient
//     fault-injection campaigns over micro-benchmarks of the 12 most
//     common SASS instructions, plus the tiled-MxM mini-app, produce a
//     database of fault syndromes: the statistical distribution of
//     relative errors a low-level fault imprints on an instruction's
//     output, per opcode, operand range and corrupted module.
//
//   - A software-level injector (the NVBitFI analog) that runs complete
//     applications on a fast functional SIMT emulator and corrupts the
//     output of one dynamic instruction per run — with the naive
//     single-bit-flip model, or with a syndrome drawn from the database,
//     or (for CNNs) with the multi-thread t-MxM tile corruption.
//
// Basic usage:
//
//	char, err := gpufi.Characterize(gpufi.CharacterizeConfig{FaultsPerCampaign: 2000})
//	...
//	evals, err := gpufi.EvaluateHPC(char.DB, gpufi.HPCSuite(), gpufi.EvalConfig{Injections: 1000})
//	for _, e := range evals {
//		fmt.Printf("%-10s bit-flip PVF %.2f  syndrome PVF %.2f\n",
//			e.Name, e.BitFlip.PVF(), e.Syndrome.PVF())
//	}
//
// Everything is deterministic: campaigns are seeded and re-running any
// configuration reproduces its numbers exactly.
package gpufi

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/core"
	"gpufi/internal/faults"
	"gpufi/internal/swfi"
	"gpufi/internal/syndrome"
)

// Re-exported configuration and result types of the two-level framework.
type (
	// CharacterizeConfig controls the RTL characterisation phase.
	CharacterizeConfig = core.CharacterizeConfig
	// Characterization holds the syndrome DB and raw RTL campaign data.
	Characterization = core.Characterization
	// EvalConfig controls the software injection phase.
	EvalConfig = core.EvalConfig
	// AppEvaluation is one Table III row.
	AppEvaluation = core.AppEvaluation
	// CNNEvaluation is one CNN evaluation with all three fault models.
	CNNEvaluation = core.CNNEvaluation
	// AVFRow is one Fig. 4 cell.
	AVFRow = core.AVFRow
	// ModuleCriticality is a hardening-priority entry.
	ModuleCriticality = core.ModuleCriticality
	// CostModel quantifies RTL-vs-software injection cost (§VI).
	CostModel = core.CostModel

	// DB is the fault-syndrome database (the paper's public artefact).
	DB = syndrome.DB

	// Workload is an injectable application.
	Workload = apps.Workload
	// Network is a runnable CNN.
	Network = cnn.Network
	// Campaign is a software injection campaign on an HPC workload.
	Campaign = swfi.Campaign
	// CampaignResult is its outcome.
	CampaignResult = swfi.Result
	// CNNCampaign is a CNN injection campaign.
	CNNCampaign = swfi.CNNCampaign
	// CNNResult is its outcome.
	CNNResult = swfi.CNNResult
	// FaultModel selects the software corruption model.
	FaultModel = swfi.FaultModel
	// Outcome is the Masked/SDC/DUE classification.
	Outcome = faults.Outcome
	// Counts is a per-opcode dynamic-instruction profile (Fig. 3).
	Counts = swfi.Counts
)

// Software fault models.
const (
	ModelBitFlip       = swfi.ModelBitFlip
	ModelDoubleBitFlip = swfi.ModelDoubleBitFlip
	ModelSyndrome      = swfi.ModelSyndrome
	ModelSyndromeEmp   = swfi.ModelSyndromeEmp
)

// Characterize runs the RTL phase: micro-benchmark campaigns over the 12
// characterised SASS instructions and t-MxM campaigns, building the
// syndrome database (§V).
func Characterize(cfg CharacterizeConfig) (*Characterization, error) {
	return core.Characterize(cfg)
}

// CharacterizeCtx is Characterize with cancellation and fault-level
// progress reporting via cfg.Progress. Campaign unit seeds are derived at
// planning time, so a cancelled characterisation re-run with the same
// configuration reproduces its campaigns bit-identically.
func CharacterizeCtx(ctx context.Context, cfg CharacterizeConfig) (*Characterization, error) {
	return core.CharacterizeCtx(ctx, cfg)
}

// EvaluateHPC measures the PVF of the workloads under both the bit-flip
// and the syndrome fault model (Fig. 10 / Table III).
func EvaluateHPC(db *DB, workloads []*Workload, cfg EvalConfig) ([]*AppEvaluation, error) {
	return core.EvaluateHPC(db, workloads, cfg)
}

// EvaluateHPCCtx is EvaluateHPC with cancellation and injection-level
// progress reporting via cfg.Progress.
func EvaluateHPCCtx(ctx context.Context, db *DB, workloads []*Workload, cfg EvalConfig) ([]*AppEvaluation, error) {
	return core.EvaluateHPCCtx(ctx, db, workloads, cfg)
}

// EvaluateCNN measures a network's PVF under bit-flip, syndrome and t-MxM
// tile models, with critical-SDC classification (§VI).
func EvaluateCNN(db *DB, name string, net *Network, input []float32,
	critical func(a, b []float32) bool, cfg EvalConfig) (*CNNEvaluation, error) {
	return core.EvaluateCNN(db, name, net, input, critical, cfg)
}

// EvaluateCNNCtx is EvaluateCNN with cancellation and injection-level
// progress reporting via cfg.Progress.
func EvaluateCNNCtx(ctx context.Context, db *DB, name string, net *Network, input []float32,
	critical func(a, b []float32) bool, cfg EvalConfig) (*CNNEvaluation, error) {
	return core.EvaluateCNNCtx(ctx, db, name, net, input, critical, cfg)
}

// RunCampaign executes one software injection campaign.
func RunCampaign(c Campaign) (*CampaignResult, error) { return swfi.Run(c) }

// RunCampaignCtx is RunCampaign with cancellation at injection boundaries
// and progress reporting via c.Progress.
func RunCampaignCtx(ctx context.Context, c Campaign) (*CampaignResult, error) {
	return swfi.RunCtx(ctx, c)
}

// RunCNNCampaign executes one CNN injection campaign.
func RunCNNCampaign(c CNNCampaign) (*CNNResult, error) { return swfi.RunCNN(c) }

// RunCNNCampaignCtx is RunCNNCampaign with cancellation at injection
// boundaries and progress reporting via c.Progress.
func RunCNNCampaignCtx(ctx context.Context, c CNNCampaign) (*CNNResult, error) {
	return swfi.RunCNNCtx(ctx, c)
}

// Profile returns a workload's dynamic instruction histogram (Fig. 3).
func Profile(w *Workload) (Counts, error) { return swfi.Profile(w) }

// MeasureCost benchmarks RTL vs software injection cost on a workload.
func MeasureCost(w *Workload) (*CostModel, error) { return core.MeasureCost(w) }

// HPCSuite returns the paper's six HPC applications (Table III) at scaled
// sizes suitable for injection campaigns.
func HPCSuite() []*Workload { return apps.Suite() }

// NewMxM, NewLUD, NewQuicksort, NewLava, NewGaussian and NewHotspot build
// individual applications at custom sizes.
var (
	NewMxM       = apps.NewMxM
	NewLUD       = apps.NewLUD
	NewQuicksort = apps.NewQuicksort
	NewLava      = apps.NewLava
	NewGaussian  = apps.NewGaussian
	NewHotspot   = apps.NewHotspot
)

// NewLeNetLite and NewYoloLite build the evaluation CNNs; LeNetInput and
// YoloInput synthesise deterministic inputs; LeNetCritical and
// YoloCritical are the §VI criticality criteria.
var (
	NewLeNetLite  = cnn.NewLeNetLite
	NewYoloLite   = cnn.NewYoloLite
	LeNetInput    = cnn.LeNetInput
	YoloInput     = cnn.YoloInput
	LeNetCritical = swfi.LeNetCritical
	YoloCritical  = swfi.YoloCritical
)

// SaveDB writes a syndrome database to a JSON file, the framework's
// publishable artefact (the paper's repository [23]). The write is
// atomic — the blob lands in a temp file in the target directory and is
// renamed over the destination — so a crashed or cancelled campaign can
// never leave a torn database behind.
func SaveDB(db *DB, path string) error {
	blob, err := json.MarshalIndent(db, "", " ")
	if err != nil {
		return err
	}
	return atomicWriteFile(path, blob, 0o644)
}

// atomicWriteFile writes data to a temp file in path's directory and
// renames it over path.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // disarm cleanup; only the rename below can fail now
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Fsync the directory so the rename itself is durable. Some
	// filesystems reject directory fsync; tolerate that — the data file
	// is already synced and renamed.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadDB reads a syndrome database from a JSON file.
func LoadDB(path string) (*DB, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob) == 0 {
		return nil, fmt.Errorf("gpufi: syndrome database %s is empty (truncated write? re-run the RTL characterisation)", path)
	}
	db := syndrome.New()
	if err := json.Unmarshal(blob, db); err != nil {
		return nil, fmt.Errorf("gpufi: syndrome database %s is truncated or corrupt: %w", path, err)
	}
	return db, nil
}
