package gpufi

import (
	"math"
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/replay"
	"gpufi/internal/swfi"
)

// execution runs one of the 8 paper workloads (6 HPC apps + 2 CNNs) on an
// arbitrary replay.Runner, normalising the CNN float outputs to words so
// all workloads compare the same way.
type execution func(rt replay.Runner) ([]uint32, error)

func hpcExecution(w *apps.Workload) execution {
	return func(rt replay.Runner) ([]uint32, error) { return w.ExecuteWith(rt) }
}

func cnnExecution(net *cnn.Network, input []float32) execution {
	return func(rt replay.Runner) ([]uint32, error) {
		out, err := net.RunWith(rt, input, nil)
		if err != nil {
			return nil, err
		}
		words := make([]uint32, len(out))
		for i, v := range out {
			words[i] = math.Float32bits(v)
		}
		return words, nil
	}
}

// TestExecutionModesAgree is the emulator determinism property test over
// all 8 paper workloads: the uninstrumented run, the hook-armed run (inert
// Post hook on every instruction, plus a countdown-armed variant) and a
// snapshot/restore-resumed run from every recorded checkpoint must produce
// identical outputs and Result counters.
func TestExecutionModesAgree(t *testing.T) {
	cases := []struct {
		name string
		exec execution
	}{
		{"MxM", hpcExecution(apps.NewMxM(16))},
		{"LavaMD", hpcExecution(apps.NewLava(2, 32))},
		{"Quicksort", hpcExecution(apps.NewQuicksort(128))},
		{"Hotspot", hpcExecution(apps.NewHotspot(16, 4))},
		{"LUD", hpcExecution(apps.NewLUD(16))},
		{"Gaussian", hpcExecution(apps.NewGaussian(16))},
		{"LeNetLite", cnnExecution(cnn.NewLeNetLite(), cnn.LeNetInput(0))},
		{"YoloLite", cnnExecution(cnn.NewYoloLite(), cnn.YoloInput(0))},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Uninstrumented reference run.
			plain := &replay.Plain{}
			want, err := tc.exec(plain)
			if err != nil {
				t.Fatal(err)
			}
			total := plain.Res.DynThreadInstrs

			// Hook-armed run: an inert Post hook must change nothing and
			// must observe exactly the reference per-opcode counts.
			var hooked swfi.Counts
			armed := &replay.Plain{Hooks: emu.Hooks{Post: func(ev *emu.Event) {
				hooked[ev.Instr.Op] += uint64(ev.ActiveCount())
			}}}
			out, err := tc.exec(armed)
			if err != nil {
				t.Fatal(err)
			}
			assertWordsEqual(t, "hook-armed", want, out)
			if armed.Res != plain.Res {
				t.Fatalf("hook-armed Result = %+v, want %+v", armed.Res, plain.Res)
			}
			if hooked != swfi.Counts(plain.Res.PerOpcode) {
				t.Fatal("hooked per-opcode counts diverge from emulator counters")
			}

			// Recorded run: checkpoints plus write-sets, still identical.
			rec := replay.NewRecorder(total/7+1, func(op isa.Opcode) bool { return swfi.Injectable(op) })
			out, err = tc.exec(rec)
			if err != nil {
				t.Fatal(err)
			}
			assertWordsEqual(t, "recorded", want, out)
			tr := rec.Finish()
			if tr.Instrs != total {
				t.Fatalf("trace counts %d instructions, reference %d", tr.Instrs, total)
			}
			if len(tr.Ckpts) == 0 {
				t.Fatal("no checkpoints recorded")
			}

			// Snapshot/restore: resuming from every checkpoint reproduces
			// the run, and skipped+live always covers the whole execution.
			pool := &replay.Pool{}
			for ck := range tr.Ckpts {
				p := replay.NewPlayerAt(tr, ck, pool)
				out, err = tc.exec(p)
				if err != nil {
					t.Fatalf("checkpoint %d: %v", ck, err)
				}
				assertWordsEqual(t, "resumed", want, out)
				if p.Skipped+p.Live.DynThreadInstrs != total {
					t.Fatalf("checkpoint %d: skipped %d + live %d != total %d",
						ck, p.Skipped, p.Live.DynThreadInstrs, total)
				}
				if p.Skipped == 0 {
					t.Fatalf("checkpoint %d skipped nothing", ck)
				}
			}

			// Countdown-armed replay: the player keeps hooks inert until
			// just before a mid-run target, then an inert counting hook
			// fires; output must still match and the primed counter must
			// hand over exactly where the hook picks up.
			half := tr.Count / 2
			var primed uint64
			fired := false
			pl := replay.NewPlayer(tr, half, emu.Hooks{Post: func(ev *emu.Event) {
				if !fired && swfi.Injectable(ev.Instr.Op) {
					primed += uint64(ev.ActiveCount())
					if primed > half {
						fired = true
					}
				}
			}}, func(done uint64) { primed = done }, func() bool { return fired }, pool)
			out, err = tc.exec(pl)
			if err != nil {
				t.Fatal(err)
			}
			assertWordsEqual(t, "countdown", want, out)
			if !fired {
				t.Fatal("countdown player never reached its target instruction")
			}
		})
	}
}

// TestCampaignModeLatticeDeterministic is the campaign-level determinism
// property over all 8 paper workloads: the default engine (dead-site
// pruning + equivalence collapsing + fast-forward) yields byte-identical
// tallies and injection records across worker counts, with each
// accelerator disabled, against the plain full-replay path, and with the
// pre-decoded interpreter fast path forced off (Tier 0 only).
func TestCampaignModeLatticeDeterministic(t *testing.T) {
	type arm struct {
		name                                  string
		workers                               int
		noPrune, noCollapse, noFF, noFastPath bool
	}
	arms := []arm{
		{"default/w1", 1, false, false, false, false},
		{"default/w4", 4, false, false, false, false},
		{"no-prune", 4, true, false, false, false},
		{"no-collapse", 4, false, true, false, false},
		{"full-replay", 4, true, true, true, false},
		{"no-fast-path", 4, false, false, false, true},
	}
	type outcome struct {
		tally             faults.Tally
		records           []swfi.InjectionRecord
		crit              int
		pruned, collapsed uint64
	}

	hpcCase := func(w *apps.Workload, n int) func(t *testing.T, a arm) outcome {
		return func(t *testing.T, a arm) outcome {
			res, err := RunCampaign(Campaign{
				Workload: w, Model: ModelBitFlip, Injections: n, Seed: 53,
				Workers: a.workers, RecordInjections: true,
				NoPrune: a.noPrune, NoCollapse: a.noCollapse, NoFastForward: a.noFF,
				NoFastPath: a.noFastPath,
			})
			if err != nil {
				t.Fatal(err)
			}
			return outcome{res.Tally, res.Records, 0, res.PrunedFaults, res.CollapsedFaults}
		}
	}
	cnnCase := func(net *cnn.Network, input []float32, critical func(a, b []float32) bool, n int) func(t *testing.T, a arm) outcome {
		return func(t *testing.T, a arm) outcome {
			res, err := RunCNNCampaign(CNNCampaign{
				Net: net, Input: input, Model: swfi.CNNBitFlip,
				Injections: n, Seed: 53, Workers: a.workers, Critical: critical,
				NoPrune: a.noPrune, NoCollapse: a.noCollapse, NoFastForward: a.noFF,
				NoFastPath: a.noFastPath,
			})
			if err != nil {
				t.Fatal(err)
			}
			return outcome{res.Tally, nil, res.CriticalSDC, res.PrunedFaults, res.CollapsedFaults}
		}
	}

	cases := []struct {
		name string
		run  func(t *testing.T, a arm) outcome
	}{
		{"MxM", hpcCase(apps.NewMxM(16), 60)},
		{"LavaMD", hpcCase(apps.NewLava(2, 32), 60)},
		{"Quicksort", hpcCase(apps.NewQuicksort(128), 60)},
		{"Hotspot", hpcCase(apps.NewHotspot(16, 4), 60)},
		{"LUD", hpcCase(apps.NewLUD(16), 60)},
		{"Gaussian", hpcCase(apps.NewGaussian(16), 60)},
		{"LeNetLite", cnnCase(cnn.NewLeNetLite(), cnn.LeNetInput(0), swfi.LeNetCritical, 30)},
		{"YoloLite", cnnCase(cnn.NewYoloLite(), cnn.YoloInput(0), swfi.YoloCritical, 12)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := tc.run(t, arms[0])
			for _, a := range arms[1:] {
				got := tc.run(t, a)
				if got.tally != base.tally {
					t.Errorf("%s: tally %+v, baseline %+v", a.name, got.tally, base.tally)
				}
				if got.crit != base.crit {
					t.Errorf("%s: critical SDCs %d, baseline %d", a.name, got.crit, base.crit)
				}
				for i := range base.records {
					if got.records[i] != base.records[i] {
						t.Fatalf("%s: record %d = %+v, baseline %+v", a.name, i, got.records[i], base.records[i])
					}
				}
				// Accelerator accounting is schedule-deterministic: worker
				// count must not change what is pruned or collapsed.
				if a.name == "default/w4" && (got.pruned != base.pruned || got.collapsed != base.collapsed) {
					t.Errorf("%s: pruned/collapsed %d/%d, baseline %d/%d",
						a.name, got.pruned, got.collapsed, base.pruned, base.collapsed)
				}
			}
		})
	}
}

func assertWordsEqual(t *testing.T, mode string, want, got []uint32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: output %d words, want %d", mode, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: output word %d = %#x, want %#x", mode, i, got[i], want[i])
		}
	}
}
