package apps

import (
	"fmt"

	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Quicksort registers.
const (
	qTid   = isa.Reg(1)
	qLo    = isa.Reg(2)
	qLen   = isa.Reg(3)
	qPiv   = isa.Reg(4)
	qX     = isa.Reg(5)
	qFlag  = isa.Reg(6)
	qOff   = isa.Reg(7)
	qV     = isa.Reg(8)
	qIncl  = isa.Reg(9)
	qExcl  = isa.Reg(10)
	qTotal = isa.Reg(11)
	qDest  = isa.Reg(12)
	qTmp   = isa.Reg(13)
	qIdx   = isa.Reg(14)
	qA     = isa.Reg(15)
	qB     = isa.Reg(16)
	qPass  = isa.Reg(17)
	qNtid  = isa.Reg(18)
)

// Parameter block offsets appended after the key array.
const (
	qpLo = iota
	qpLen
	qpPivot
	qpTotal
	qpParity
	qpWords
)

// buildPartition assembles the single-block stable-partition kernel of the
// GPU quicksort: each thread classifies one key of the segment against the
// pivot (strictly-less when le is false, less-or-equal when le is true),
// the block scans the flags in shared memory (Hillis–Steele), and keys
// scatter in place. The left-part size is written to the parameter block
// for the host's recursion. Layout: [a(n) | lo | len | pivot | total].
func buildPartition(n, block int, le bool, lo, length int, pivotBits uint32) *kasm.Program {
	cmp := isa.CmpLT
	name := "part_lt"
	if le {
		cmp = isa.CmpLE
		name = "part_le"
	}
	b := kasm.New(name)
	b.S2R(qTid, isa.SRTid)
	b.S2R(qNtid, isa.SRNtid)
	b.MovI(qLo, int32(lo))
	b.MovI(qLen, int32(length))
	b.MovI(qPiv, int32(pivotBits))
	b.ISetPI(isa.P(0), isa.CmpLT, qTid, int32(length)) // active
	// flag = active && (x cmp pivot)
	b.MovI(qFlag, 0)
	b.If(isa.P(0), func() {
		b.IAdd(qIdx, qLo, qTid)
		b.Gld(qX, qIdx, 0)
		b.Emit(isa.Instr{Op: isa.OpFSETP, Guard: isa.PredTrue, PDst: isa.P(1), SrcA: qX, SrcB: qPiv, Cmp: cmp})
		b.If(isa.P(1), func() { b.MovI(qFlag, 1) })
	})
	b.Sst(qTid, 0, qFlag)
	b.Bar()
	// Inclusive Hillis–Steele scan over the block.
	b.MovI(qOff, 1)
	b.Label("scan")
	{
		b.MovI(qV, 0)
		b.ISetP(isa.P(2), isa.CmpGE, qTid, qOff)
		b.If(isa.P(2), func() {
			b.Mov(qTmp, qTid)
			b.IMadI(qTmp, qOff, -1, qTmp) // tid - off
			b.Sld(qV, qTmp, 0)
		})
		b.Bar()
		b.Sld(qTmp, qTid, 0)
		b.IAdd(qTmp, qTmp, qV)
		b.Sst(qTid, 0, qTmp)
		b.Bar()
		b.Shl(qOff, qOff, 1)
		b.ISetP(isa.P(2), isa.CmpLT, qOff, qNtid)
		b.BraIf(isa.P(2), "scan")
	}
	b.Sld(qIncl, qTid, 0)
	b.Mov(qExcl, qIncl)
	b.IMadI(qExcl, qFlag, -1, qExcl) // excl = incl - flag
	// total = shared[len-1]
	b.IAddI(qTmp, qLen, -1)
	b.Sld(qTotal, qTmp, 0)
	// Thread 0 reports the left-part size to the host.
	b.ISetPI(isa.P(3), isa.CmpEQ, qTid, 0)
	b.If(isa.P(3), func() {
		b.MovI(qTmp, int32(n))
		b.Gst(qTmp, qpTotal, qTotal)
	})
	// Scatter: dest = flag ? lo+excl : lo+total+(tid-excl).
	b.If(isa.P(0), func() {
		b.IAdd(qDest, qLo, qTotal)
		b.IAdd(qDest, qDest, qTid)
		b.IMadI(qDest, qExcl, -1, qDest) // lo + total + tid - excl
		b.IAdd(qTmp, qLo, qExcl)
		b.ISetPI(isa.P(1), isa.CmpEQ, qFlag, 1)
		b.Sel(qDest, qTmp, qDest, isa.P(1))
		b.Gst(qDest, 0, qX)
	})
	return kasm.MustFinalize(b)
}

// buildLeafPass assembles one odd-even transposition pass over a segment:
// a straight-line kernel (no loop, no barrier) whose instruction mix is
// dominated by key loads and stores — the value-dominated profile of real
// GPU sorting kernels, where a corrupted key persists to the output (the
// structure behind quicksort's near-1 PVF in Table III). Segment
// parameters are baked as immediates, modelling CUDA's constant-bank
// kernel arguments (which are not injectable register writes).
func buildLeafPass(lo, length, parity int) *kasm.Program {
	b := kasm.New("leafpass")
	b.S2R(qTid, isa.SRTid)
	// base = lo + 2*tid + parity; pair valid when 2*tid+parity+1 < len.
	b.IMadI(qIdx, qTid, 2, isa.RZ)
	b.ISetPI(isa.P(1), isa.CmpLT, qIdx, int32(length-parity-1))
	b.If(isa.P(1), func() {
		b.IAddI(qIdx, qIdx, int32(lo+parity))
		b.Gld(qA, qIdx, 0)
		b.Gld(qB, qIdx, 1)
		// Unconditional compare-exchange writeback, as sorting networks
		// do: a corrupted key always reaches memory.
		b.FMin(qV, qA, qB)
		b.FMax(qTmp, qA, qB)
		b.Gst(qIdx, 0, qV)
		b.Gst(qIdx, 1, qTmp)
	})
	return kasm.MustFinalize(b)
}

// leafCutoff is the segment size below which the leaf sorter takes over.
const leafCutoff = 64

// NewQuicksort builds the sorting application (Table III: "Quicksort, 4MB
// array, Sorting" — scaled to n float32 keys, n <= 512 so a segment fits
// one block). The host performs the classic quicksort recursion with
// median-of-three pivots; partitioning and leaf sorting run on the device.
func NewQuicksort(n int) *Workload {
	if n > 512 {
		n = 512 // single-block partition bound
	}
	block := 1
	for block < n {
		block <<= 1
	}
	words := n + qpWords
	return &Workload{
		// PureHost stays false: the host recursion stack is driven by
		// median-of-three pivots and partition totals read back from the
		// arena mid-run, so a corrupted run's host state can diverge from
		// the golden run's even after the arena reconverges.
		Name:   "Quicksort",
		Domain: "Sorting",
		Size:   fmt.Sprintf("%d keys", n),
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, words)
			fillMatrix(g[:n], n, 0xF001, -1000, 1000)
			type seg struct{ lo, len int }
			stack := []seg{{0, n}}
			// The host recursion depth is bounded; a corrupted run that
			// fails to make progress is cut off as a hang (DUE).
			for steps := 0; len(stack) > 0; steps++ {
				if steps > 64*n {
					return nil, fmt.Errorf("quicksort: %w", emu.ErrWatchdog)
				}
				s := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if s.len <= 1 {
					continue
				}
				if s.len <= leafCutoff {
					lb := pow2ceil((s.len + 1) / 2)
					leafPass := [2]*kasm.Program{
						buildLeafPass(s.lo, s.len, 0),
						buildLeafPass(s.lo, s.len, 1),
					}
					for pass := 0; pass < s.len; pass++ {
						if err := rt.Launch(&emu.Launch{
							Prog: leafPass[pass&1], Grid: 1, Block: lb,
							Global: g,
						}); err != nil {
							return nil, err
						}
					}
					continue
				}
				// Median-of-three pivot (host-side reads, as a cudaMemcpy
				// of three words would do).
				a := fromBits(g[s.lo])
				b := fromBits(g[s.lo+s.len/2])
				c := fromBits(g[s.lo+s.len-1])
				pivot := medianOf3(a, b, c)
				pb := pow2ceil(s.len)
				partLT := buildPartition(n, pb, false, s.lo, s.len, f32(pivot))
				if err := rt.Launch(&emu.Launch{
					Prog: partLT, Grid: 1, Block: pb,
					Global: g, SharedWords: pb,
				}); err != nil {
					return nil, err
				}
				totalL := int(int32(g[n+qpTotal]))
				if totalL < 0 || totalL > s.len {
					// A corrupted partition count would index out of the
					// segment; real code would fault or misbehave — treat
					// as data corruption and stop recursing this segment.
					continue
				}
				if totalL == 0 {
					// Pivot is the minimum: peel off the equal class.
					partLE := buildPartition(n, pb, true, s.lo, s.len, f32(pivot))
					if err := rt.Launch(&emu.Launch{
						Prog: partLE, Grid: 1, Block: pb,
						Global: g, SharedWords: pb,
					}); err != nil {
						return nil, err
					}
					eq := int(int32(g[n+qpTotal]))
					if eq <= 0 || eq > s.len {
						continue
					}
					if eq < s.len {
						stack = append(stack, seg{s.lo + eq, s.len - eq})
					}
					continue
				}
				stack = append(stack, seg{s.lo, totalL}, seg{s.lo + totalL, s.len - totalL})
			}
			return copyOut(g, 0, n), nil
		},
	}
}

func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func medianOf3(a, b, c float32) float32 {
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	default:
		return c
	}
}
