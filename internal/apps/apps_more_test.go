package apps

import (
	"math"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/fp32"
)

// TestGaussianSolvesSystem back-substitutes the triangularised system on
// the host and verifies A·x ≈ b against the original inputs.
func TestGaussianSolvesSystem(t *testing.T) {
	const n = 16
	w := NewGaussian(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	u := make([][]float64, n) // triangularised matrix
	for i := range u {
		u[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			u[i][j] = float64(fromBits(out[i*n+j]))
		}
	}
	bv := make([]float64, n)
	for i := range bv {
		bv[i] = float64(fromBits(out[n*n+i]))
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := bv[i]
		for j := i + 1; j < n; j++ {
			s -= u[i][j] * x[j]
		}
		x[i] = s / u[i][i]
	}
	// Original system.
	a0 := make([]uint32, n*n)
	fillMatrix(a0, n*n, 0xC001, 1, 4)
	for i := 0; i < n; i++ {
		a0[i*n+i] = f32(fromBits(a0[i*n+i]) + float32(n))
	}
	b0 := make([]uint32, n)
	fillMatrix(b0, n, 0xC002, -1, 1)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += float64(fromBits(a0[i*n+j])) * x[j]
		}
		if math.Abs(s-float64(fromBits(b0[i]))) > 1e-3 {
			t.Fatalf("row %d: A·x = %v, b = %v", i, s, fromBits(b0[i]))
		}
	}
}

// TestHotspotPyramidMatchesHostReference reproduces one pyramid launch
// (two stencil steps) on the host with identical fp32 semantics.
func TestHotspotPyramidMatchesHostReference(t *testing.T) {
	const n = 16
	w := NewHotspot(n, 1)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}

	temp := make([]float32, n*n)
	power := make([]float32, n*n)
	tw := make([]uint32, n*n)
	pw := make([]uint32, n*n)
	fillMatrix(tw, n*n, 0xB001, 20, 80)
	fillMatrix(pw, n*n, 0xB002, 0, 0.5)
	for i := range temp {
		temp[i] = fromBits(tw[i])
		power[i] = fromBits(pw[i])
	}

	step := func(in []float32) []float32 {
		out := make([]float32, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := y*n + x
				tv := in[i]
				if x == 0 || x == n-1 || y == 0 || y == n-1 {
					out[i] = tv
					continue
				}
				nb := fp32.Add(in[i-n], in[i+n])
				nb = fp32.Add(nb, in[i-1])
				nb = fp32.Add(nb, in[i+1])
				nb = fp32.Fma(tv, -4, nb)
				o := fp32.Fma(power[i], 0.1, tv)
				o = fp32.Fma(nb, 0.125, o)
				amb := fp32.Fma(tv, -1, hotspotAmbient)
				out[i] = fp32.Fma(amb, 0.08, o)
			}
		}
		return out
	}
	want := step(step(temp))
	for i := range want {
		if got := fromBits(out[i]); math.Float32bits(got) != math.Float32bits(want[i]) {
			t.Fatalf("cell %d = %v, want %v (bitwise)", i, got, want[i])
		}
	}
}

// TestLUDMatchesUnblockedDoolittle checks that blocked LUD produces the
// same factors as a host Doolittle elimination within float tolerance.
func TestLUDMatchesUnblockedDoolittle(t *testing.T) {
	const n = 16
	w := NewLUD(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Host Doolittle in float64 on the same input.
	a := make([][]float64, n)
	init := make([]uint32, n*n)
	fillMatrix(init, n*n, 0xD001, -1, 1)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := float64(fromBits(init[i*n+j]))
			if i == j {
				v += n
			}
			a[i][j] = v
		}
	}
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			a[i][k] /= a[k][k]
			for j := k + 1; j < n; j++ {
				a[i][j] -= a[i][k] * a[k][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := float64(fromBits(out[i*n+j]))
			want := a[i][j]
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("LU[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestPresetSuiteConstructs ensures the paper-size presets assemble (they
// are not executed here; a 2048x2048 LUD run is hours of interpretation).
func TestPresetSuiteConstructs(t *testing.T) {
	suite := PresetSuite()
	if len(suite) != 6 {
		t.Fatalf("preset suite = %d apps", len(suite))
	}
	for _, w := range suite {
		if w.run == nil {
			t.Errorf("%s has no executor", w.Name)
		}
	}
}

// TestLavaCutoffMasks verifies the LavaMD cutoff semantics: pairs beyond
// the radius contribute nothing.
func TestLavaCutoffMasks(t *testing.T) {
	// With the deterministic inputs, at least one particle pair must be
	// beyond the cutoff and at least one within (otherwise the test
	// inputs are degenerate).
	const boxes, per = 2, 16
	const n = boxes * per
	mk := func(seed uint64, lo, hi float64) []float32 {
		words := make([]uint32, n)
		fillMatrix(words, n, seed, lo, hi)
		vals := make([]float32, n)
		for i, b := range words {
			vals[i] = fromBits(b)
		}
		return vals
	}
	x, y, z := mk(0xE001, -1.5, 1.5), mk(0xE002, -1.5, 1.5), mk(0xE003, -1.5, 1.5)
	within, beyond := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx := float64(x[i] - x[j])
			dy := float64(y[i] - y[j])
			dz := float64(z[i] - z[j])
			if dx*dx+dy*dy+dz*dz < lavaCutoff {
				within++
			} else {
				beyond++
			}
		}
	}
	if within == 0 || beyond == 0 {
		t.Fatalf("degenerate cutoff exercise: within=%d beyond=%d", within, beyond)
	}
}
