// Package apps implements the six HPC applications the paper evaluates
// with software fault injection (Table III): matrix multiplication, LU
// decomposition, quicksort, the LavaMD particle kernel, Gaussian
// elimination and the Hotspot thermal stencil — all written as kernels for
// the gpufi ISA and executed on the functional emulator.
//
// Application sizes are scaled down from the paper's (which targeted a
// physical Volta GPU) so that software injection campaigns with thousands
// of runs complete in minutes; the Preset* constructors use the paper's
// nominal sizes. PVF depends on each code's dataflow structure — what is
// preserved by scaling — not on absolute size.
package apps

import (
	"fmt"
	"math"

	"gpufi/internal/emu"
	"gpufi/internal/stats"
)

// Workload is one injectable application.
type Workload struct {
	Name   string
	Domain string
	Size   string

	// Execute runs the complete application with the hooks installed on
	// every kernel launch and returns the words of the output region the
	// golden comparison covers.
	Execute func(hooks emu.Hooks) ([]uint32, error)
}

// Suite returns the paper's six HPC applications (Table III order) at the
// default scaled sizes.
func Suite() []*Workload {
	return []*Workload{
		NewMxM(64),
		NewLava(2, 64),
		NewQuicksort(1024),
		NewHotspot(32, 16),
		NewLUD(32),
		NewGaussian(32),
	}
}

// PresetSuite returns the applications at the paper's nominal sizes
// (Table III). These runs are slow under an interpreter and are meant for
// one-off validation, not injection campaigns.
func PresetSuite() []*Workload {
	return []*Workload{
		NewMxM(512),
		NewLava(2, 128),
		NewQuicksort(1 << 20 / 4), // 4 MB of 32-bit keys... capped to one block width segments
		NewHotspot(1024, 32),
		NewLUD(2048),
		NewGaussian(256),
	}
}

// ArenaSlack pads every application's global-memory allocation, modelling
// the large virtual address space of a real GPU: a corrupted address whose
// flipped bit stays within the arena reads stale data or writes outside
// the live footprint (a silent corruption), instead of trapping — only
// larger derailments fault, as on hardware.
const ArenaSlack = 1 << 16

// arena allocates a padded global-memory image.
func arena(words int) []uint32 { return make([]uint32, words+ArenaSlack) }

// f32 packs a float32 into a memory word.
func f32(v float32) uint32 { return math.Float32bits(v) }

// fromBits unpacks a memory word into a float32.
func fromBits(b uint32) float32 { return math.Float32frombits(b) }

// fillMatrix writes a deterministic pseudo-random matrix into words.
func fillMatrix(dst []uint32, n int, seed uint64, lo, hi float64) {
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		dst[i] = f32(float32(r.Float64Range(lo, hi)))
	}
}

// copyOut extracts a word region.
func copyOut(g []uint32, off, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, g[off:off+n])
	return out
}

// launch wraps emu.Run discarding the result counters.
func launch(l *emu.Launch) error {
	_, err := emu.Run(l)
	return err
}

// sizeStr formats an n x n size.
func sizeStr(n int) string { return fmt.Sprintf("%dx%d", n, n) }
