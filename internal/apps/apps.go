// Package apps implements the six HPC applications the paper evaluates
// with software fault injection (Table III): matrix multiplication, LU
// decomposition, quicksort, the LavaMD particle kernel, Gaussian
// elimination and the Hotspot thermal stencil — all written as kernels for
// the gpufi ISA and executed on the functional emulator.
//
// Application sizes are scaled down from the paper's (which targeted a
// physical Volta GPU) so that software injection campaigns with thousands
// of runs complete in minutes; the Preset* constructors use the paper's
// nominal sizes. PVF depends on each code's dataflow structure — what is
// preserved by scaling — not on absolute size.
package apps

import (
	"fmt"
	"math"

	"gpufi/internal/emu"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
)

// Runner executes a workload's launches; see replay.Runner. Applications
// are written against it so the same host code runs directly, records a
// fast-forward trace, or replays from checkpoints.
type Runner = replay.Runner

// Workload is one injectable application.
type Workload struct {
	Name   string
	Domain string
	Size   string

	// PureHost declares that the host code between kernel launches is a
	// pure function of (arena contents, launch ordinal) — no host state
	// derived from mid-run arena reads survives across launches. The
	// fault injector's replay layer only attempts golden-reconvergence
	// skipping on workloads that declare it; leaving it false is always
	// safe, merely slower.
	PureHost bool

	// run executes the complete application on a Runner and returns the
	// words of the output region the golden comparison covers.
	run func(rt Runner) ([]uint32, error)
}

// Execute runs the complete application with the hooks installed on every
// kernel launch and returns the words of the output region the golden
// comparison covers.
func (w *Workload) Execute(hooks emu.Hooks) ([]uint32, error) {
	return w.run(&replay.Plain{Hooks: hooks})
}

// ExecuteWith runs the application on an explicit Runner — a
// replay.Recorder to capture a fast-forward trace, or a replay.Player to
// fast-forward an injection run.
func (w *Workload) ExecuteWith(rt Runner) ([]uint32, error) {
	return w.run(rt)
}

// Suite returns the paper's six HPC applications (Table III order) at the
// default scaled sizes.
func Suite() []*Workload {
	return []*Workload{
		NewMxM(64),
		NewLava(2, 64),
		NewQuicksort(1024),
		NewHotspot(32, 16),
		NewLUD(32),
		NewGaussian(32),
	}
}

// PresetSuite returns the applications at the paper's nominal sizes
// (Table III). These runs are slow under an interpreter and are meant for
// one-off validation, not injection campaigns.
func PresetSuite() []*Workload {
	return []*Workload{
		NewMxM(512),
		NewLava(2, 128),
		NewQuicksort(1 << 20 / 4), // 4 MB of 32-bit keys... capped to one block width segments
		NewHotspot(1024, 32),
		NewLUD(2048),
		NewGaussian(256),
	}
}

// ArenaSlack pads every application's global-memory allocation, modelling
// the large virtual address space of a real GPU: a corrupted address whose
// flipped bit stays within the arena reads stale data or writes outside
// the live footprint (a silent corruption), instead of trapping — only
// larger derailments fault, as on hardware.
const ArenaSlack = 1 << 16

// arena allocates a padded global-memory image through the Runner.
func arena(rt Runner, words int) []uint32 { return rt.Arena(words + ArenaSlack) }

// f32 packs a float32 into a memory word.
func f32(v float32) uint32 { return math.Float32bits(v) }

// fromBits unpacks a memory word into a float32.
func fromBits(b uint32) float32 { return math.Float32frombits(b) }

// fillMatrix writes a deterministic pseudo-random matrix into words.
func fillMatrix(dst []uint32, n int, seed uint64, lo, hi float64) {
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		dst[i] = f32(float32(r.Float64Range(lo, hi)))
	}
}

// copyOut extracts a word region.
func copyOut(g []uint32, off, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, g[off:off+n])
	return out
}

// sizeStr formats an n x n size.
func sizeStr(n int) string { return fmt.Sprintf("%dx%d", n, n) }
