package apps

import (
	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Blocked LU decomposition (Doolittle, no pivoting) following Rodinia's
// lud_cuda structure: per block-step kb, a diagonal kernel factors the
// pivot block, perimeter kernels solve the row and column strips, and the
// internal kernel — the FFMA-dense bulk of the computation — applies the
// rank-8 update to the trailing submatrix through shared-memory staging.
// Block indices are baked as immediates, modelling CUDA's constant-bank
// kernel arguments.

// ludBS is the blocking factor (8x8 blocks, 64-thread blocks — the same
// tile geometry as t-MxM).
const ludBS = 8

// LUD registers.
const (
	uTid  = isa.Reg(1)
	uTx   = isa.Reg(2)
	uTy   = isa.Reg(3)
	uAddr = isa.Reg(4)
	uVal  = isa.Reg(5)
	uAcc  = isa.Reg(6)
	uL    = isa.Reg(7)
	uU    = isa.Reg(8)
	uTmp  = isa.Reg(9)
	uRcp  = isa.Reg(10)
	uNeg  = isa.Reg(11)
)

// ludThreadCoords emits tx = tid&7, ty = tid>>3.
func ludThreadCoords(b *kasm.Builder) {
	b.S2R(uTid, isa.SRTid)
	b.AndI(uTx, uTid, ludBS-1)
	b.Shr(uTy, uTid, 3)
}

// ludStage loads the 8x8 block at matrix block coordinates (blockRow,
// blockCol) into shared memory at sharedOff, one element per thread,
// optionally negated.
func ludStage(b *kasm.Builder, n, blockRow, blockCol int, sharedOff int32, negate bool) {
	base := int32((blockRow*ludBS)*n + blockCol*ludBS)
	b.IMadI(uAddr, uTy, int32(n), uTx)
	b.Gld(uVal, uAddr, base)
	if negate {
		b.MovF(uTmp, -1)
		b.FMul(uVal, uVal, uTmp)
	}
	b.IMadI(uTmp, uTy, ludBS, uTx)
	b.Sst(uTmp, sharedOff, uVal)
}

// buildLUDDiagonal factors the pivot block A[kb][kb] in place.
func buildLUDDiagonal(n, kb int) *kasm.Program {
	b := kasm.New("lud_diagonal")
	ludThreadCoords(b)
	ludStage(b, n, kb, kb, 0, false)
	b.Bar()
	for k := 0; k < ludBS-1; k++ {
		// Column k below the diagonal: s[ty][k] *= 1/s[k][k].
		b.ISetPI(isa.P(0), isa.CmpGT, uTy, int32(k))
		b.ISetPI(isa.P(1), isa.CmpEQ, uTx, int32(k))
		b.If(isa.P(0), func() {
			b.If(isa.P(1), func() {
				b.MovI(uTmp, int32(k*ludBS+k))
				b.Sld(uRcp, uTmp, 0)
				b.FRcp(uRcp, uRcp)
				b.IMadI(uAddr, uTy, ludBS, uTx)
				b.Sld(uVal, uAddr, 0)
				b.FMul(uVal, uVal, uRcp)
				b.Sst(uAddr, 0, uVal)
			})
		})
		b.Bar()
		// Trailing update: s[ty][tx] -= s[ty][k] * s[k][tx].
		b.ISetPI(isa.P(1), isa.CmpGT, uTx, int32(k))
		b.If(isa.P(0), func() {
			b.If(isa.P(1), func() {
				b.IMadI(uAddr, uTy, ludBS, isa.RZ)
				b.Sld(uL, uAddr, int32(k))
				b.MovI(uTmp, int32(k*ludBS))
				b.IAdd(uTmp, uTmp, uTx)
				b.Sld(uU, uTmp, 0)
				b.MovF(uNeg, -1)
				b.FMul(uL, uL, uNeg)
				b.IMadI(uAddr, uTy, ludBS, uTx)
				b.Sld(uAcc, uAddr, 0)
				b.FFma(uAcc, uL, uU, uAcc)
				b.Sst(uAddr, 0, uAcc)
			})
		})
		b.Bar()
	}
	// Write the factored block back.
	b.IMadI(uTmp, uTy, ludBS, uTx)
	b.Sld(uVal, uTmp, 0)
	b.IMadI(uAddr, uTy, int32(n), uTx)
	b.Gst(uAddr, int32((kb*ludBS)*n+kb*ludBS), uVal)
	return kasm.MustFinalize(b)
}

// buildLUDRowStrip solves L_kk * U = A[kb][jb] (unit lower triangular
// forward substitution), in place.
func buildLUDRowStrip(n, kb, jb int) *kasm.Program {
	b := kasm.New("lud_rowstrip")
	ludThreadCoords(b)
	ludStage(b, n, kb, kb, 0, false)           // L block
	ludStage(b, n, kb, jb, ludBS*ludBS, false) // strip
	b.Bar()
	for r := 1; r < ludBS; r++ {
		// Row r: s[r][tx] -= sum_{t<r} L[r][t] * s[t][tx].
		b.ISetPI(isa.P(0), isa.CmpEQ, uTy, int32(r))
		b.If(isa.P(0), func() {
			b.IMadI(uAddr, uTy, ludBS, uTx)
			b.Sld(uAcc, uAddr, ludBS*ludBS)
			b.MovF(uNeg, -1)
			for t := 0; t < r; t++ {
				b.MovI(uTmp, int32(r*ludBS+t))
				b.Sld(uL, uTmp, 0)
				b.FMul(uL, uL, uNeg)
				b.MovI(uTmp, int32(t*ludBS))
				b.IAdd(uTmp, uTmp, uTx)
				b.Sld(uU, uTmp, ludBS*ludBS)
				b.FFma(uAcc, uL, uU, uAcc)
			}
			b.Sst(uAddr, ludBS*ludBS, uAcc)
		})
		b.Bar()
	}
	b.IMadI(uTmp, uTy, ludBS, uTx)
	b.Sld(uVal, uTmp, ludBS*ludBS)
	b.IMadI(uAddr, uTy, int32(n), uTx)
	b.Gst(uAddr, int32((kb*ludBS)*n+jb*ludBS), uVal)
	return kasm.MustFinalize(b)
}

// buildLUDColStrip solves L * U_kk = A[ib][kb] for L (back substitution
// against the upper-triangular pivot block), in place.
func buildLUDColStrip(n, kb, ib int) *kasm.Program {
	b := kasm.New("lud_colstrip")
	ludThreadCoords(b)
	ludStage(b, n, kb, kb, 0, false)           // U block
	ludStage(b, n, ib, kb, ludBS*ludBS, false) // strip
	b.Bar()
	for c := 0; c < ludBS; c++ {
		// Column c: s[ty][c] = (s[ty][c] - sum_{t<c} s[ty][t]*U[t][c]) / U[c][c].
		b.ISetPI(isa.P(0), isa.CmpEQ, uTx, int32(c))
		b.If(isa.P(0), func() {
			b.IMadI(uAddr, uTy, ludBS, uTx)
			b.Sld(uAcc, uAddr, ludBS*ludBS)
			b.MovF(uNeg, -1)
			for t := 0; t < c; t++ {
				b.IMadI(uTmp, uTy, ludBS, isa.RZ)
				b.Sld(uL, uTmp, int32(ludBS*ludBS+t))
				b.FMul(uL, uL, uNeg)
				b.MovI(uTmp, int32(t*ludBS+c))
				b.Sld(uU, uTmp, 0)
				b.FFma(uAcc, uL, uU, uAcc)
			}
			b.MovI(uTmp, int32(c*ludBS+c))
			b.Sld(uRcp, uTmp, 0)
			b.FRcp(uRcp, uRcp)
			b.FMul(uAcc, uAcc, uRcp)
			b.Sst(uAddr, ludBS*ludBS, uAcc)
		})
		b.Bar()
	}
	b.IMadI(uTmp, uTy, ludBS, uTx)
	b.Sld(uVal, uTmp, ludBS*ludBS)
	b.IMadI(uAddr, uTy, int32(n), uTx)
	b.Gst(uAddr, int32((ib*ludBS)*n+kb*ludBS), uVal)
	return kasm.MustFinalize(b)
}

// buildLUDInternal applies the trailing update A[ib][jb] -= L_strip *
// U_strip — the t-MxM-shaped, FFMA-dense bulk of blocked LUD.
func buildLUDInternal(n, kb, ib, jb int) *kasm.Program {
	b := kasm.New("lud_internal")
	ludThreadCoords(b)
	ludStage(b, n, ib, kb, 0, true)            // -L strip (negated)
	ludStage(b, n, kb, jb, ludBS*ludBS, false) // U strip
	b.Bar()
	base := int32((ib*ludBS)*n + jb*ludBS)
	b.IMadI(uAddr, uTy, int32(n), uTx)
	b.Gld(uAcc, uAddr, base)
	b.IMadI(uTmp, uTy, ludBS, isa.RZ) // shared row base
	for t := int32(0); t < ludBS; t++ {
		b.Sld(uL, uTmp, t)
		b.Sld(uU, uTx, ludBS*ludBS+t*ludBS)
		b.FFma(uAcc, uL, uU, uAcc)
	}
	b.Gst(uAddr, base, uAcc)
	return kasm.MustFinalize(b)
}

// NewLUD builds the LU-decomposition application (Table III: "LUD,
// 2048x2048, Linear algebra"): Rodinia-style blocked factorisation on a
// diagonally dominant matrix. n must be a power-of-two multiple of 8.
func NewLUD(n int) *Workload {
	nb := n / ludBS
	return &Workload{
		Name:     "LUD",
		Domain:   "Linear algebra",
		Size:     sizeStr(n),
		PureHost: true, // launch schedule is a fixed function of n; arena reads only at init
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, n*n)
			fillMatrix(g[:n*n], n*n, 0xD001, -1, 1)
			for i := 0; i < n; i++ {
				g[i*n+i] = f32(fromBits(g[i*n+i]) + float32(n)) // diagonal dominance
			}
			run := func(p *kasm.Program) error {
				return rt.Launch(&emu.Launch{
					Prog: p, Grid: 1, Block: ludBS * ludBS,
					Global: g, SharedWords: 2 * ludBS * ludBS,
				})
			}
			for kb := 0; kb < nb; kb++ {
				if err := run(buildLUDDiagonal(n, kb)); err != nil {
					return nil, err
				}
				for ob := kb + 1; ob < nb; ob++ {
					if err := run(buildLUDRowStrip(n, kb, ob)); err != nil {
						return nil, err
					}
					if err := run(buildLUDColStrip(n, kb, ob)); err != nil {
						return nil, err
					}
				}
				for ib := kb + 1; ib < nb; ib++ {
					for jb := kb + 1; jb < nb; jb++ {
						if err := run(buildLUDInternal(n, kb, ib, jb)); err != nil {
							return nil, err
						}
					}
				}
			}
			return copyOut(g, 0, n*n), nil
		},
	}
}
