package apps

import (
	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Hotspot registers.
const (
	hTid  = isa.Reg(1)
	hLx   = isa.Reg(2)  // x within the 16x16 block tile
	hLy   = isa.Reg(3)  // y within the tile
	hGx   = isa.Reg(4)  // global x
	hGy   = isa.Reg(5)  // global y
	hT    = isa.Reg(6)  // centre temperature
	hP    = isa.Reg(7)  // power
	hN    = isa.Reg(8)  // neighbour accumulator
	hOut  = isa.Reg(9)  // updated value
	hAddr = isa.Reg(10)
	hTmp  = isa.Reg(11)
	hCta  = isa.Reg(12)
	hSIdx = isa.Reg(13) // shared index
	hBx   = isa.Reg(14)
	hBy   = isa.Reg(15)
)

// hotspotAmbient is the ambient temperature of the leak term.
const hotspotAmbient = 45.0

// Pyramid-kernel geometry (Rodinia hotspot): each 16x16 thread block
// computes two stencil steps over its tile but commits only the inner 8x8
// core; the halo work is redundant and its corruption is discarded — the
// structural masking that gives hotspot the lowest PVF in Table III.
const (
	hsTile  = 16
	hsCore  = 8
	hsHalo  = (hsTile - hsCore) / 2 // 4
	hsBlock = hsTile * hsTile
)

// buildHotspot assembles the two-step pyramid kernel. Global layout:
// [tempIn(n*n) | power(n*n) | tempOut(n*n)]. Step update:
//
//	out = t + 0.1*p + 0.125*(up+down+left+right-4t) + 0.08*(amb-t)
//
// with border cells copied through (Dirichlet boundary). The ambient leak
// is Rodinia's coupling term; it makes transient perturbations decay.
func buildHotspot(n int) *kasm.Program {
	log := int32(0)
	for 1<<uint(log) != n {
		log++
	}
	logTiles := int32(0)
	for 1<<uint(logTiles) != n/hsCore {
		logTiles++
	}
	b := kasm.New("hotspot_pyramid")
	b.S2R(hTid, isa.SRTid)
	b.AndI(hLx, hTid, hsTile-1)
	b.Shr(hLy, hTid, 4)
	b.S2R(hCta, isa.SRCtaid)
	b.AndI(hBx, hCta, int32(n/hsCore-1))
	b.Shr(hBy, hCta, logTiles)
	// gx = bx*8 - 4 + lx, gy = by*8 - 4 + ly
	b.IMulI(hGx, hBx, hsCore)
	b.IAdd(hGx, hGx, hLx)
	b.IAddI(hGx, hGx, -hsHalo)
	b.IMulI(hGy, hBy, hsCore)
	b.IAdd(hGy, hGy, hLy)
	b.IAddI(hGy, hGy, -hsHalo)

	// In-domain predicate P0 and interior predicate P1 for step 1.
	inDomain := func(dst isa.Pred, scratch isa.Pred) {
		// dst = 0<=gx<n && 0<=gy<n, computed by narrowing an integer flag.
		b.ISetPI(dst, isa.CmpGE, hGx, 0)
		b.MovI(hTmp, 0)
		b.If(dst, func() {
			b.ISetPI(scratch, isa.CmpLT, hGx, int32(n))
			b.If(scratch, func() {
				b.ISetPI(scratch, isa.CmpGE, hGy, 0)
				b.If(scratch, func() {
					b.ISetPI(scratch, isa.CmpLT, hGy, int32(n))
					b.If(scratch, func() { b.MovI(hTmp, 1) })
				})
			})
		})
		b.ISetPI(dst, isa.CmpEQ, hTmp, 1)
	}
	interior := func(dst isa.Pred, scratch isa.Pred) {
		b.ISetPI(dst, isa.CmpGT, hGx, 0)
		b.MovI(hTmp, 0)
		b.If(dst, func() {
			b.ISetPI(scratch, isa.CmpLT, hGx, int32(n-1))
			b.If(scratch, func() {
				b.ISetPI(scratch, isa.CmpGT, hGy, 0)
				b.If(scratch, func() {
					b.ISetPI(scratch, isa.CmpLT, hGy, int32(n-1))
					b.If(scratch, func() { b.MovI(hTmp, 1) })
				})
			})
		})
		b.ISetPI(dst, isa.CmpEQ, hTmp, 1)
	}

	inDomain(isa.P(0), isa.P(5))
	interior(isa.P(1), isa.P(5))

	// Load own temperature and power (0 outside the domain).
	b.IMadI(hAddr, hGy, int32(n), hGx)
	b.MovI(hT, 0)
	b.GldIf(isa.P(0), hT, hAddr, 0)
	b.MovI(hP, 0)
	b.GldIf(isa.P(0), hP, hAddr, int32(n*n))

	stencil := func(load func(dx, dy int32)) {
		// hN accumulates the four neighbours via load(dx,dy) into hTmp.
		b.MovI(hN, 0)
		for _, d := range [][2]int32{{0, -1}, {0, 1}, {-1, 0}, {1, 0}} {
			load(d[0], d[1])
			b.FAdd(hN, hN, hTmp)
		}
		// n - 4t
		b.MovF(hTmp, -4)
		b.FFma(hN, hT, hTmp, hN)
		// out = t + 0.1p + 0.125(n-4t) + 0.08(amb - t)
		b.MovF(hTmp, 0.1)
		b.FFma(hOut, hP, hTmp, hT)
		b.MovF(hTmp, 0.125)
		b.FFma(hOut, hN, hTmp, hOut)
		b.MovF(hTmp, -1)
		b.MovF(hN, hotspotAmbient)
		b.FFma(hN, hT, hTmp, hN)
		b.MovF(hTmp, 0.08)
		b.FFma(hOut, hN, hTmp, hOut)
	}

	// --- Step 1: global neighbours -> shared tile ---
	b.Mov(hOut, hT) // border/outside default: copy through
	b.If(isa.P(1), func() {
		stencil(func(dx, dy int32) {
			b.Gld(hTmp, hAddr, dy*int32(n)+dx)
		})
	})
	b.IMadI(hSIdx, hLy, hsTile, hLx)
	b.Sst(hSIdx, 0, hOut)
	b.Bar()

	// --- Step 2: shared neighbours; only tile-interior threads have all
	// neighbours staged ---
	b.Mov(hT, hOut) // step-1 value becomes the centre
	b.Mov(hOut, hT)
	// Tile-interior predicate P2: 0 < lx,ly < 15.
	b.ISetPI(isa.P(2), isa.CmpGT, hLx, 0)
	b.MovI(hTmp, 0)
	b.If(isa.P(2), func() {
		b.ISetPI(isa.P(5), isa.CmpLT, hLx, hsTile-1)
		b.If(isa.P(5), func() {
			b.ISetPI(isa.P(5), isa.CmpGT, hLy, 0)
			b.If(isa.P(5), func() {
				b.ISetPI(isa.P(5), isa.CmpLT, hLy, hsTile-1)
				b.If(isa.P(5), func() { b.MovI(hTmp, 1) })
			})
		})
	})
	b.ISetPI(isa.P(2), isa.CmpEQ, hTmp, 1)
	// Recompute the domain-interior predicate (P1 survives in registers).
	b.If(isa.P(2), func() {
		b.If(isa.P(1), func() {
			stencil(func(dx, dy int32) {
				b.Sld(hTmp, hSIdx, dy*hsTile+dx)
			})
		})
	})

	// --- Commit: only the inner 8x8 core writes back ---
	b.ISetPI(isa.P(3), isa.CmpGE, hLx, hsHalo)
	b.MovI(hTmp, 0)
	b.If(isa.P(3), func() {
		b.ISetPI(isa.P(5), isa.CmpLT, hLx, hsTile-hsHalo)
		b.If(isa.P(5), func() {
			b.ISetPI(isa.P(5), isa.CmpGE, hLy, hsHalo)
			b.If(isa.P(5), func() {
				b.ISetPI(isa.P(5), isa.CmpLT, hLy, hsTile-hsHalo)
				b.If(isa.P(5), func() { b.MovI(hTmp, 1) })
			})
		})
	})
	b.ISetPI(isa.P(3), isa.CmpEQ, hTmp, 1)
	b.If(isa.P(3), func() {
		b.If(isa.P(0), func() {
			b.IMadI(hAddr, hGy, int32(n), hGx)
			b.Gst(hAddr, int32(2*n*n), hOut)
		})
	})
	return kasm.MustFinalize(b)
}

// NewHotspot builds the Hotspot application (Table III: "Hotspot,
// 1024x1024, Physics simulation"): `iters` pyramid launches (two stencil
// steps each) on an n x n grid with ping-pong buffers. n must be a power
// of two, n >= 16.
func NewHotspot(n, iters int) *Workload {
	prog := buildHotspot(n)
	grid := (n / hsCore) * (n / hsCore)
	return &Workload{
		Name:     "Hotspot",
		Domain:   "Physics simulation",
		Size:     sizeStr(n),
		PureHost: true, // inter-iteration ping-pong copy is arena-to-arena, no host state
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, 3 * n * n)
			fillMatrix(g[:n*n], n*n, 0xB001, 20, 80)      // temperatures
			fillMatrix(g[n*n:2*n*n], n*n, 0xB002, 0, 0.5) // power map
			for it := 0; it < iters; it++ {
				if err := rt.Launch(&emu.Launch{
					Prog: prog, Grid: grid, Block: hsBlock,
					Global: g, SharedWords: hsBlock,
				}); err != nil {
					return nil, err
				}
				copy(g[:n*n], g[2*n*n:3*n*n])
			}
			return copyOut(g, 0, n*n), nil
		},
	}
}
