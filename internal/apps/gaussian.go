package apps

import (
	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Gaussian elimination registers.
const (
	gTid  = isa.Reg(1)
	gI    = isa.Reg(2)
	gJ    = isa.Reg(3)
	gM    = isa.Reg(4)
	gPiv  = isa.Reg(5)
	gAddr = isa.Reg(6)
	gTmp  = isa.Reg(7)
	gVal  = isa.Reg(8)
	gCta  = isa.Reg(9)
	gNtid = isa.Reg(10)
)

// buildFan1 computes the multiplier column for step k (Rodinia's Fan1):
// m[i] = A[i][k] / A[k][k] for i in (k, n). Global layout:
// [A(n*n) | b(n) | m(n)]. The step k is baked into the kernel immediates
// via the kp register loaded from grid constants — here passed as
// ctaid-independent immediates per launch, so one program per k is
// assembled; for realism across sizes the step index is instead read from
// the last global word.
func buildFan1(n int) *kasm.Program {
	b := kasm.New("fan1")
	b.S2R(gTid, isa.SRTid)
	b.S2R(gCta, isa.SRCtaid)
	b.S2R(gNtid, isa.SRNtid)
	b.IMad(gTid, gCta, gNtid, gTid)
	b.MovI(gAddr, int32(n*n+2*n)) // k slot
	b.Gld(gJ, gAddr, 0)           // k
	// i = tid + k + 1
	b.IAdd(gI, gTid, gJ)
	b.IAddI(gI, gI, 1)
	b.ISetPI(isa.P(0), isa.CmpLT, gI, int32(n))
	b.If(isa.P(0), func() {
		// pivot = A[k][k]
		b.IMadI(gAddr, gJ, int32(n), gJ)
		b.Gld(gPiv, gAddr, 0)
		b.FRcp(gPiv, gPiv)
		// m[i] = A[i][k] * (1/pivot)
		b.IMadI(gAddr, gI, int32(n), gJ)
		b.Gld(gVal, gAddr, 0)
		b.FMul(gM, gVal, gPiv)
		b.IAddI(gAddr, gI, int32(n*n+n))
		b.Gst(gAddr, 0, gM)
	})
	return kasm.MustFinalize(b)
}

// buildFan2 applies the elimination step (Rodinia's Fan2):
// A[i][j] -= m[i]*A[k][j] for i in (k, n), j in [k, n); b[i] -= m[i]*b[k].
func buildFan2(n int) *kasm.Program {
	b := kasm.New("fan2")
	b.S2R(gTid, isa.SRTid)
	b.S2R(gCta, isa.SRCtaid)
	b.S2R(gNtid, isa.SRNtid)
	b.IMad(gTid, gCta, gNtid, gTid)
	b.MovI(gAddr, int32(n*n+2*n))
	b.Gld(gVal, gAddr, 0) // k
	// Thread handles element (i, j): i = k+1 + tid/n... to keep the
	// index math power-of-two friendly, tid covers the full matrix and
	// guards select the active region.
	log := int32(0)
	for 1<<uint(log) != n {
		log++
	}
	// Row-offset mapping, as Rodinia shrinks Fan2's grid per step: the
	// launch covers only rows (k, n), so i = k+1 + tid/n.
	b.Shr(gI, gTid, log)
	b.IAdd(gI, gI, gVal)
	b.IAddI(gI, gI, 1)
	b.AndI(gJ, gTid, int32(n-1))
	b.ISetPI(isa.P(0), isa.CmpLT, gI, int32(n)) // row in range
	b.ISetP(isa.P(1), isa.CmpGE, gJ, gVal)      // j >= k
	b.If(isa.P(0), func() {
		// m[i]
		b.IAddI(gAddr, gI, int32(n*n+n))
		b.Gld(gM, gAddr, 0)
		b.If(isa.P(1), func() {
			// A[i][j] -= m[i] * A[k][j]
			b.IMadI(gAddr, gVal, int32(n), gJ)
			b.Gld(gTmp, gAddr, 0) // A[k][j]
			b.FMul(gTmp, gM, gTmp)
			b.MovF(gPiv, -1)
			b.IMadI(gAddr, gI, int32(n), gJ)
			b.Gld(gVal, gAddr, 0) // reuse gVal: A[i][j]
			b.FFma(gVal, gTmp, gPiv, gVal)
			b.Gst(gAddr, 0, gVal)
		})
		// b[i] -= m[i]*b[k], done by the j==0 thread of each row.
		b.ISetPI(isa.P(2), isa.CmpEQ, gJ, 0)
		b.If(isa.P(2), func() {
			b.MovI(gAddr, int32(n*n+2*n))
			b.Gld(gVal, gAddr, 0) // reload k (gVal was clobbered)
			b.IAddI(gAddr, gVal, int32(n*n))
			b.Gld(gTmp, gAddr, 0) // b[k]
			b.FMul(gTmp, gM, gTmp)
			b.MovF(gPiv, -1)
			b.IAddI(gAddr, gI, int32(n*n))
			b.Gld(gVal, gAddr, 0) // b[i]
			b.FFma(gVal, gTmp, gPiv, gVal)
			b.Gst(gAddr, 0, gVal)
		})
	})
	return kasm.MustFinalize(b)
}

// NewGaussian builds the Gaussian-elimination application (Table III:
// "Gaussian, 256x256, Linear algebra"): n-1 Fan1/Fan2 step pairs reduce
// A|b to upper-triangular form. n must be a power of two.
func NewGaussian(n int) *Workload {
	fan1 := buildFan1(n)
	fan2 := buildFan2(n)
	block := 256
	if n*n < block {
		block = n * n
	}
	words := n*n + 2*n + 1
	return &Workload{
		Name:     "Gaussian",
		Domain:   "Linear algebra",
		Size:     sizeStr(n),
		PureHost: true, // host only writes the step counter slot between launches
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, words)
			fillMatrix(g[:n*n], n*n, 0xC001, 1, 4) // diagonally-safe random system
			// Strengthen the diagonal so elimination is well-conditioned.
			for i := 0; i < n; i++ {
				g[i*n+i] = f32(fromBits(g[i*n+i]) + float32(n))
			}
			fillMatrix(g[n*n:n*n+n], n, 0xC002, -1, 1) // b vector
			for k := 0; k < n-1; k++ {
				g[n*n+2*n] = uint32(k)
				// Shrinking grids per step, as Rodinia's host code sizes
				// Fan1/Fan2 to the remaining submatrix.
				rows := n - k - 1
				if err := rt.Launch(&emu.Launch{
					Prog: fan1, Grid: (rows + block - 1) / block, Block: block,
					Global: g,
				}); err != nil {
					return nil, err
				}
				if err := rt.Launch(&emu.Launch{
					Prog: fan2, Grid: (rows*n + block - 1) / block, Block: block,
					Global: g,
				}); err != nil {
					return nil, err
				}
			}
			return copyOut(g, 0, n*n+n), nil
		},
	}
}
