package apps

import (
	"math"
	"sort"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/fp32"
	"gpufi/internal/isa"
)

func TestSuiteRunsClean(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			out, err := w.Execute(emu.Hooks{})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s: empty output", w.Name)
			}
			nonZero := 0
			for _, v := range out {
				if v != 0 {
					nonZero++
				}
			}
			if nonZero == 0 {
				t.Fatalf("%s: output all zeros", w.Name)
			}
		})
	}
}

func TestSuiteDeterministic(t *testing.T) {
	for _, w := range Suite() {
		a, err := w.Execute(emu.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.Execute(emu.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", w.Name, i)
			}
		}
	}
}

func TestMxMAgainstHostReference(t *testing.T) {
	const n = 16
	w := NewMxM(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute on the host with identical inputs and semantics.
	a := make([]uint32, n*n)
	b := make([]uint32, n*n)
	fillMatrix(a, n*n, 0xA001, -2, 2)
	fillMatrix(b, n*n, 0xA002, -2, 2)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			acc := float32(0)
			for k := 0; k < n; k++ {
				acc = fp32.Fma(fromBits(a[r*n+k]), fromBits(b[k*n+c]), acc)
			}
			if got := fromBits(out[r*n+c]); got != acc {
				t.Fatalf("C[%d][%d] = %v, want %v", r, c, got, acc)
			}
		}
	}
}

func TestQuicksortSortsOutput(t *testing.T) {
	const n = 256
	w := NewQuicksort(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, n)
	for i, b := range out {
		vals[i] = fromBits(b)
	}
	for i := 1; i < n; i++ {
		if vals[i-1] > vals[i] {
			t.Fatalf("not sorted at %d: %v > %v", i, vals[i-1], vals[i])
		}
	}
	// Same multiset as the input.
	in := make([]uint32, n)
	fillMatrix(in, n, 0xF001, -1000, 1000)
	want := make([]float32, n)
	for i, b := range in {
		want[i] = fromBits(b)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestLUDReconstructsMatrix(t *testing.T) {
	const n = 16
	w := NewLUD(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Original matrix.
	orig := make([]uint32, n*n)
	fillMatrix(orig, n*n, 0xD001, -1, 1)
	for i := 0; i < n; i++ {
		orig[i*n+i] = f32(fromBits(orig[i*n+i]) + float32(n))
	}
	// L*U must approximate the original (float32 arithmetic).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= i && k <= j; k++ {
				l := float64(fromBits(out[i*n+k]))
				if k == i {
					l = 1
				}
				u := float64(fromBits(out[k*n+j]))
				sum += l * u
			}
			want := float64(fromBits(orig[i*n+j]))
			if math.Abs(sum-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("LU[%d][%d] = %v, want %v", i, j, sum, want)
			}
		}
	}
}

func TestGaussianTriangularizes(t *testing.T) {
	const n = 16
	w := NewGaussian(n)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Below-diagonal entries must be (numerically) eliminated.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			v := math.Abs(float64(fromBits(out[i*n+j])))
			if v > 1e-3 {
				t.Fatalf("A[%d][%d] = %v not eliminated", i, j, v)
			}
		}
	}
	// Diagonal stays strong (diagonally dominant input).
	for i := 0; i < n; i++ {
		if math.Abs(float64(fromBits(out[i*n+i]))) < 1 {
			t.Fatalf("diagonal %d collapsed", i)
		}
	}
}

func TestHotspotConvergesTowardsEquilibrium(t *testing.T) {
	w := NewHotspot(16, 8)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Temperatures stay bounded within a physical range.
	for i, b := range out {
		v := float64(fromBits(b))
		if v < 0 || v > 200 || math.IsNaN(v) {
			t.Fatalf("cell %d = %v out of physical range", i, v)
		}
	}
	// The interior must have evolved away from the initial condition.
	init := make([]uint32, 16*16)
	fillMatrix(init, 16*16, 0xB001, 20, 80)
	changed := 0
	for i := range out {
		if out[i] != init[i] {
			changed++
		}
	}
	if changed < 16*16/2 {
		t.Errorf("only %d cells changed", changed)
	}
}

func TestLavaForcesMatchHostReference(t *testing.T) {
	const boxes, per = 2, 16
	const n = boxes * per
	w := NewLava(boxes, per)
	out, err := w.Execute(emu.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Host reference with identical fp32 semantics.
	mk := func(seed uint64, lo, hi float64) []float32 {
		words := make([]uint32, n)
		fillMatrix(words, n, seed, lo, hi)
		vals := make([]float32, n)
		for i, b := range words {
			vals[i] = fromBits(b)
		}
		return vals
	}
	x, y, z := mk(0xE001, -1.5, 1.5), mk(0xE002, -1.5, 1.5), mk(0xE003, -1.5, 1.5)
	q := mk(0xE004, 0.1, 1)
	for i := 0; i < n; i++ {
		var fx, fy, fz, e float32
		for j := 0; j < n; j++ {
			dx := fp32.Fma(x[j], -1, x[i])
			dy := fp32.Fma(y[j], -1, y[i])
			dz := fp32.Fma(z[j], -1, z[i])
			r2 := fp32.Mul(dx, dx)
			r2 = fp32.Fma(dy, dy, r2)
			r2 = fp32.Fma(dz, dz, r2)
			if r2 >= 5.0 {
				continue // cutoff
			}
			u := fp32.Exp(fp32.Mul(r2, -1))
			fx = fp32.Fma(u, dx, fx)
			fy = fp32.Fma(u, dy, fy)
			fz = fp32.Fma(u, dz, fz)
			e = fp32.Fma(u, q[j], e)
		}
		if got := fromBits(out[i]); got != fx {
			t.Fatalf("fx[%d] = %v, want %v", i, got, fx)
		}
		if got := fromBits(out[3*n+i]); got != e {
			t.Fatalf("e[%d] = %v, want %v", i, got, e)
		}
		_ = fy
		_ = fz
	}
}

func TestWorkloadMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Suite() {
		if w.Name == "" || w.Domain == "" || w.Size == "" {
			t.Errorf("incomplete metadata: %+v", w)
		}
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
	}
	want := []string{"MxM", "Lava", "Quicksort", "Hotspot", "LUD", "Gaussian"}
	for _, n := range want {
		if !names[n] {
			t.Errorf("missing workload %s (Table III)", n)
		}
	}
}

func TestHooksObserveAllLaunches(t *testing.T) {
	// Instruction profiling must see FFMA in MxM and FEXP in Lava.
	counts := map[isa.Opcode]uint64{}
	hooks := emu.Hooks{Post: func(ev *emu.Event) {
		counts[ev.Instr.Op] += uint64(ev.ActiveCount())
	}}
	if _, err := NewMxM(16).Execute(hooks); err != nil {
		t.Fatal(err)
	}
	if counts[isa.OpFFMA] == 0 {
		t.Error("MxM profile has no FFMA")
	}
	counts = map[isa.Opcode]uint64{}
	if _, err := NewLava(2, 16).Execute(hooks); err != nil {
		t.Fatal(err)
	}
	if counts[isa.OpFEXP] == 0 {
		t.Error("Lava profile has no FEXP")
	}
}

func TestMedianOf3(t *testing.T) {
	cases := [][4]float32{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2}, {2, 3, 1, 2},
		{1, 1, 2, 1}, {5, 5, 5, 5},
	}
	for _, c := range cases {
		if got := medianOf3(c[0], c[1], c[2]); got != c[3] {
			t.Errorf("median(%v,%v,%v) = %v, want %v", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestQuicksortAdversarialInputs(t *testing.T) {
	// Exercise the equal-class fallback path: all-equal and few-distinct
	// arrays. Build a custom workload by pre-sorting crafted arrays
	// through the same kernels: easiest is to check a constant array
	// stays stable through a small n run with a tweaked fill.
	const n = 64
	w := NewQuicksort(n)
	// The standard workload uses random values; run it to make sure the
	// partition recursion terminates fast (steps bound not hit).
	if _, err := w.Execute(emu.Hooks{}); err != nil {
		t.Fatal(err)
	}
}
