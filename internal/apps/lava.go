package apps

import (
	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Lava registers.
const (
	lTid  = isa.Reg(1)
	lXi   = isa.Reg(2)
	lYi   = isa.Reg(3)
	lZi   = isa.Reg(4)
	lFx   = isa.Reg(5)
	lFy   = isa.Reg(6)
	lFz   = isa.Reg(7)
	lE    = isa.Reg(8)
	lJ    = isa.Reg(9)
	lDx   = isa.Reg(10)
	lDy   = isa.Reg(11)
	lDz   = isa.Reg(12)
	lR2   = isa.Reg(13)
	lU    = isa.Reg(14)
	lTmp  = isa.Reg(15)
	lCta  = isa.Reg(16)
	lNtid = isa.Reg(17)
)

// lavaCutoff is the squared interaction radius.
const lavaCutoff = 5.0

// buildLava assembles the particle-interaction kernel (LavaMD-style): each
// thread owns particle i and accumulates the exponentially screened force
// and potential from every particle j in the two boxes:
//
//	u = exp(-r2), fx += u*dx, fy += u*dy, fz += u*dz, e += u*qj
//
// Layout: [x(n) | y(n) | z(n) | q(n) | fx | fy | fz | e], n = total
// particles.
func buildLava(n int) *kasm.Program {
	b := kasm.New("lava")
	b.S2R(lTid, isa.SRTid)
	b.S2R(lCta, isa.SRCtaid)
	b.S2R(lNtid, isa.SRNtid)
	b.IMad(lTid, lCta, lNtid, lTid)
	b.Gld(lXi, lTid, 0)
	b.Gld(lYi, lTid, int32(n))
	b.Gld(lZi, lTid, int32(2*n))
	b.MovF(lFx, 0)
	b.MovF(lFy, 0)
	b.MovF(lFz, 0)
	b.MovF(lE, 0)
	b.MovI(lJ, 0)
	b.Label("jloop")
	{
		// dx = xi - x[j] (via FFMA with -1)
		b.MovF(lTmp, -1)
		b.Gld(lDx, lJ, 0)
		b.FFma(lDx, lDx, lTmp, lXi)
		b.Gld(lDy, lJ, int32(n))
		b.FFma(lDy, lDy, lTmp, lYi)
		b.Gld(lDz, lJ, int32(2*n))
		b.FFma(lDz, lDz, lTmp, lZi)
		// r2 = dx*dx + dy*dy + dz*dz
		b.FMul(lR2, lDx, lDx)
		b.FFma(lR2, lDy, lDy, lR2)
		b.FFma(lR2, lDz, lDz, lR2)
		// Cutoff test, as in LavaMD: pairs beyond the interaction radius
		// contribute nothing — corrupted distances that cross the cutoff
		// are silently dropped, a masking path of the real kernel.
		b.MovF(lTmp, lavaCutoff)
		b.FSetP(isa.P(1), isa.CmpLT, lR2, lTmp)
		b.If(isa.P(1), func() {
			// u = exp(-r2)
			b.MovF(lTmp, -1)
			b.FMul(lR2, lR2, lTmp)
			b.FExp(lU, lR2)
			// accumulate
			b.FFma(lFx, lU, lDx, lFx)
			b.FFma(lFy, lU, lDy, lFy)
			b.FFma(lFz, lU, lDz, lFz)
			b.Gld(lTmp, lJ, int32(3*n)) // qj
			b.FFma(lE, lU, lTmp, lE)
		})
		b.IAddI(lJ, lJ, 1)
		b.ISetPI(isa.P(0), isa.CmpLT, lJ, int32(n))
		b.BraIf(isa.P(0), "jloop")
	}
	b.Gst(lTid, int32(4*n), lFx)
	b.Gst(lTid, int32(5*n), lFy)
	b.Gst(lTid, int32(6*n), lFz)
	b.Gst(lTid, int32(7*n), lE)
	return kasm.MustFinalize(b)
}

// NewLava builds the particle-simulation application (Table III: "Lava,
// 2 3D boxes, Particle simulation") with boxes*perBox particles.
func NewLava(boxes, perBox int) *Workload {
	n := boxes * perBox
	prog := buildLava(n)
	block := 128
	if n < block {
		block = n
	}
	return &Workload{
		Name:     "Lava",
		Domain:   "Particle simulation",
		Size:     "2 3D boxes",
		PureHost: true, // single launch; host only fills inputs up front
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, 8*n)
			fillMatrix(g[:n], n, 0xE001, -1.5, 1.5)      // x
			fillMatrix(g[n:2*n], n, 0xE002, -1.5, 1.5)   // y
			fillMatrix(g[2*n:3*n], n, 0xE003, -1.5, 1.5) // z
			fillMatrix(g[3*n:4*n], n, 0xE004, 0.1, 1)    // q
			if err := rt.Launch(&emu.Launch{
				Prog: prog, Grid: (n + block - 1) / block, Block: block,
				Global: g,
			}); err != nil {
				return nil, err
			}
			return copyOut(g, 4*n, 4*n), nil
		},
	}
}
