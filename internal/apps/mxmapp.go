package apps

import (
	"gpufi/internal/emu"
	"gpufi/internal/mxm"
)

// NewMxM builds the tiled matrix-multiplication application (Table III:
// "MxM, 512x512, Linear algebra") for n x n inputs.
func NewMxM(n int) *Workload {
	prog, err := mxm.Build(n)
	if err != nil {
		panic(err) // n is a compile-time choice in the suite
	}
	return &Workload{
		Name:     "MxM",
		Domain:   "Linear algebra",
		Size:     sizeStr(n),
		PureHost: true, // single launch; host only fills inputs up front
		run: func(rt Runner) ([]uint32, error) {
			g := arena(rt, mxm.GlobalWords(n))
			fillMatrix(g[:n*n], n*n, 0xA001, -2, 2)
			fillMatrix(g[n*n:2*n*n], n*n, 0xA002, -2, 2)
			err := rt.Launch(&emu.Launch{
				Prog: prog, Grid: mxm.Grid(n), Block: mxm.BlockThreads,
				Global: g, SharedWords: mxm.SharedWords,
			})
			if err != nil {
				return nil, err
			}
			return copyOut(g, int(mxm.COffset(n)), n*n), nil
		},
	}
}
