package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newHTTPService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJob(t *testing.T, base string, req Request) Status {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs = %d, want 201", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d, want 200", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHTTPEndToEnd is the acceptance test: a campaign job submitted over
// HTTP reports monotonically increasing progress and finishes with its
// deterministic result.
func TestHTTPEndToEnd(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 2})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}

	st := postJob(t, srv.URL, smallHPC())
	var progress []int64
	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s at %d/%d", st.State, st.Done, st.Total)
		}
		st = getJob(t, srv.URL, st.ID)
		progress = append(progress, st.Done)
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress regressed over HTTP: %d then %d (sample %d)", progress[i-1], progress[i], i)
		}
	}
	if st.Done != st.Total || st.Total == 0 {
		t.Errorf("final progress %d/%d, want full", st.Done, st.Total)
	}
	if len(st.Result) == 0 || !json.Valid(st.Result) {
		t.Error("finished job exposes no valid result over HTTP")
	}

	// The job list includes it.
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("GET /jobs = %+v, %v; want the one finished job", list, err)
	}
}

// TestHTTPEvents streams the SSE endpoint and checks every event carries
// monotonically non-decreasing progress, ending in a terminal state.
func TestHTTPEvents(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 1})
	st := postJob(t, srv.URL, smallHPC())

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var (
		events []Status
		sc     = bufio.NewScanner(resp.Body)
	)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.State.Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("stream ended in %s (error %q)", last.State, last.Error)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Done < events[i-1].Done {
			t.Fatalf("SSE progress regressed: %d then %d", events[i-1].Done, events[i].Done)
		}
	}
}

// TestHTTPEventsKeepAlive checks that an idle SSE stream carries periodic
// comment lines, so proxies and load balancers with read timeouts do not
// sever long-lived streams between progress events.
func TestHTTPEventsKeepAlive(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 1, SSEKeepAlive: 20 * time.Millisecond})
	slow := smallHPC()
	slow.Injections = 100000
	postJob(t, srv.URL, slow) // occupies the only job slot...
	st := postJob(t, srv.URL, smallHPC())
	// ...so this job stays queued and its event stream is idle.

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", resp.StatusCode)
	}
	var dataLines, keepAlives int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			dataLines++
		case strings.HasPrefix(line, ":"):
			keepAlives++
		}
		if keepAlives >= 3 {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if dataLines < 1 {
		t.Errorf("idle stream sent %d data events, want the initial snapshot", dataLines)
	}
	if keepAlives < 3 {
		t.Fatalf("idle stream sent %d keep-alive comments, want at least 3", keepAlives)
	}
}

// TestHTTPCancelMidRun is the acceptance test's cancellation half: DELETE
// on a running job cancels it without corrupting its checkpoint.
func TestHTTPCancelMidRun(t *testing.T) {
	dir := t.TempDir()
	_, srv := newHTTPService(t, Config{Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond})
	req := smallHPC()
	req.Injections = 100000
	st := postJob(t, srv.URL, req)
	waitFor(t, 60*time.Second, "progress over HTTP", func() bool {
		st = getJob(t, srv.URL, st.ID)
		return st.State == StateRunning && st.Done > 0
	})

	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job = %d, want 200", resp.StatusCode)
	}
	waitFor(t, 60*time.Second, "cancelled over HTTP", func() bool {
		st = getJob(t, srv.URL, st.ID)
		return st.State.Terminal()
	})
	if st.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", st.State)
	}

	blob, err := os.ReadFile(filepath.Join(dir, "job-000001.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		t.Fatalf("checkpoint corrupt after mid-run cancel: %v", err)
	}
	if ck.State != StateCancelled {
		t.Errorf("checkpoint state %s, want cancelled", ck.State)
	}

	// A second DELETE conflicts: the job is already terminal.
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal job = %d, want 409", resp.StatusCode)
	}
}

// TestHTTPResumeBitIdentical is the acceptance test's resume half: a job
// interrupted by a service restart finishes with a result bit-identical
// to an uninterrupted run, observed entirely over HTTP.
func TestHTTPResumeBitIdentical(t *testing.T) {
	req := multiUnitHPC()

	// Uninterrupted reference run.
	_, ref := newHTTPService(t, Config{Workers: 1})
	st := postJob(t, ref.URL, req)
	waitFor(t, 120*time.Second, "reference job", func() bool {
		st = getJob(t, ref.URL, st.ID)
		return st.State.Terminal()
	})
	if st.State != StateDone {
		t.Fatalf("reference job ended %s (error %q)", st.State, st.Error)
	}
	want := st.Result

	// Interrupted run: kill the service after the first unit checkpoints.
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	st2 := postJob(t, srv.URL, req)
	waitFor(t, 120*time.Second, "first unit checkpoint", func() bool {
		st2 = getJob(t, srv.URL, st2.ID)
		return st2.UnitsDone >= 1
	})
	srv.Close()
	s.Close()

	// Restart on the same journal; the job resumes and finishes.
	_, srv2 := newHTTPService(t, Config{Workers: 1, Dir: dir})
	waitFor(t, 120*time.Second, "resumed job", func() bool {
		st2 = getJob(t, srv2.URL, st2.ID)
		return st2.State.Terminal()
	})
	if st2.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q)", st2.State, st2.Error)
	}
	if !bytes.Equal(want, st2.Result) {
		t.Fatalf("resumed result differs from uninterrupted run:\nuninterrupted: %s\nresumed:       %s", want, st2.Result)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 1})
	check := func(method, path, body string, want int) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s %s = %d, want %d", method, path, resp.StatusCode, want)
			return
		}
		if want >= 400 {
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Errorf("%s %s: error body missing (%v)", method, path, err)
			}
		}
	}
	check(http.MethodGet, "/jobs/j-999999", "", http.StatusNotFound)
	check(http.MethodDelete, "/jobs/j-999999", "", http.StatusNotFound)
	check(http.MethodGet, "/jobs/j-999999/events", "", http.StatusNotFound)
	check(http.MethodPost, "/jobs", "{not json", http.StatusBadRequest)
	check(http.MethodPost, "/jobs", `{"kind":"hpc","bogus_field":1}`, http.StatusBadRequest)
	check(http.MethodPost, "/jobs", `{"kind":"warp-drive"}`, http.StatusBadRequest)
}

func TestHTTPHealthzAfterClose(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	s.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after Close = %d, want 503", resp.StatusCode)
	}
	if _, err := s.Submit(smallHPC()); err == nil {
		t.Fatal("Submit after Close must fail")
	}
}
