package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs             submit a campaign (Request JSON) -> 201 + Status
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status (+ result when done)
//	GET    /jobs/{id}/events stream status snapshots as server-sent events
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /healthz          liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	return mux
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": n})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errQueueFull) || errors.Is(err, errClosed) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		if st.ID == "" {
			writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// eventsPollInterval is how often the SSE stream re-samples job status.
const eventsPollInterval = 100 * time.Millisecond

// handleEvents streams status snapshots as server-sent events. An event
// is emitted whenever progress or state changes, and a final one when the
// job reaches a terminal state, after which the stream ends. Idle streams
// carry periodic SSE comments (": keep-alive") every Config.SSEKeepAlive
// so proxies and load balancers with read timeouts keep them open.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(st Status) {
		blob, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", blob)
		flusher.Flush()
	}
	emit(st)
	last := st
	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	keepAlive := time.NewTicker(s.cfg.SSEKeepAlive)
	defer keepAlive.Stop()
	for !last.State.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case <-keepAlive.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
			continue
		case <-ticker.C:
		}
		st, ok := s.Get(r.PathValue("id"))
		if !ok {
			return
		}
		if st.State != last.State || st.Done != last.Done || st.UnitsDone != last.UnitsDone {
			emit(st)
			last = st
		}
	}
}
