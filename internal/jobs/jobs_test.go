package jobs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// smallHPC is a fast two-unit HPC request (~0.1s of engine work).
func smallHPC() Request {
	return Request{
		Kind: KindHPC, Seed: 11,
		Apps:       []AppSpec{{Name: "MxM", N: 16}},
		Models:     []string{"bitflip", "bitflip2"},
		Injections: 120,
	}
}

// multiUnitHPC is a four-unit request, long enough to interrupt mid-run.
func multiUnitHPC() Request {
	return Request{
		Kind: KindHPC, Seed: 23,
		Apps:       []AppSpec{{Name: "MxM", N: 16}, {Name: "Quicksort", N: 256}},
		Models:     []string{"bitflip", "bitflip2"},
		Injections: 150,
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSubmitValidation(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	bad := []struct {
		name string
		req  Request
	}{
		{"unknown kind", Request{Kind: "frobnicate"}},
		{"unknown app", Request{Kind: KindHPC, Apps: []AppSpec{{Name: "Nope"}}}},
		{"bad app size", Request{Kind: KindHPC, Apps: []AppSpec{{Name: "MxM", N: 24}}, Models: []string{"bitflip"}}},
		{"unknown HPC model", Request{Kind: KindHPC, Models: []string{"cosmic-ray"}}},
		{"syndrome model without db", Request{Kind: KindHPC, Models: []string{"syndrome"}}},
		{"unknown network", Request{Kind: KindCNN, Network: "AlexNet"}},
		{"unknown CNN model", Request{Kind: KindCNN, Models: []string{"bitflip2"}}},
		{"tile model without db", Request{Kind: KindCNN, Models: []string{"tile"}}},
		{"unknown opcode", Request{Kind: KindCharacterize, Ops: []string{"HCF"}}},
		{"unknown range", Request{Kind: KindCharacterize, Ranges: []string{"XL"}}},
	}
	for _, tc := range bad {
		if _, err := s.Submit(tc.req); err == nil {
			t.Errorf("%s: Submit accepted %+v", tc.name, tc.req)
		}
	}
	if _, ok := s.Get("j-000001"); ok {
		t.Error("rejected submissions must not register jobs")
	}
}

func TestJobLifecycle(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	st, err := s.Submit(smallHPC())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != 240 || st.UnitsTotal != 2 {
		t.Fatalf("unexpected submit status %+v", st)
	}
	waitFor(t, 30*time.Second, "job done", func() bool {
		st, _ = s.Get(st.ID)
		return st.State.Terminal()
	})
	if st.State != StateDone {
		t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
	}
	if st.Done != st.Total || st.UnitsDone != 2 {
		t.Errorf("finished job reports done=%d/%d units=%d/2", st.Done, st.Total, st.UnitsDone)
	}
	var res Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("result is not valid JSON: %v", err)
	}
	if res.Kind != KindHPC || len(res.Units) != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	var first HPCUnitResult
	if err := json.Unmarshal(res.Units[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.App != "MxM" || first.Model != "bitflip" || first.Tally.Injections != 120 {
		t.Errorf("units are not in plan order: first = %+v", first)
	}
}

func TestCancelRunning(t *testing.T) {
	dir := t.TempDir()
	s := newService(t, Config{Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond})
	req := smallHPC()
	req.Injections = 100000 // far longer than the test will wait
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "progress", func() bool {
		st, _ = s.Get(st.ID)
		return st.State == StateRunning && st.Done > 0
	})
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "cancelled state", func() bool {
		st, _ = s.Get(st.ID)
		return st.State.Terminal()
	})
	if st.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", st.State)
	}
	if _, err := s.Cancel(st.ID); err == nil {
		t.Error("cancelling a terminal job must fail")
	}
	// The checkpoint must be intact, valid JSON recording the cancellation.
	blob, err := os.ReadFile(filepath.Join(dir, "job-000001.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		t.Fatalf("checkpoint corrupt after cancel: %v", err)
	}
	if ck.State != StateCancelled || ck.ID != st.ID {
		t.Errorf("checkpoint records %s/%s, want %s/cancelled", ck.ID, ck.State, st.ID)
	}
}

func TestCancelQueued(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	blocker := smallHPC()
	blocker.Injections = 100000
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(smallHPC())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("second job is %s, want queued behind the blocker", st.State)
	}
	st, err = s.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job cancel left state %s", st.State)
	}
}

// runToCompletion submits req on a fresh single-worker service and returns
// the finished job's result bytes.
func runToCompletion(t *testing.T, req Request) []byte {
	t.Helper()
	s := newService(t, Config{Workers: 1})
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "uninterrupted job", func() bool {
		st, _ = s.Get(st.ID)
		return st.State.Terminal()
	})
	if st.State != StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	return st.Result
}

// interruptAndResume submits req, shuts the service down once at least one
// unit has checkpointed, restarts on the same journal directory, and
// returns the resumed job's final result bytes.
func interruptAndResume(t *testing.T, req Request) []byte {
	t.Helper()
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(req)
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "first unit checkpoint", func() bool {
		st, _ = s.Get(st.ID)
		return st.UnitsDone >= 1
	})
	s.Close() // interrupt: unfinished work re-journals as queued

	s2 := newService(t, Config{Workers: 1, Dir: dir})
	st2, ok := s2.Get(st.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", st.ID)
	}
	if st2.UnitsDone < 1 {
		t.Fatalf("resumed job forgot its completed units: %+v", st2)
	}
	waitFor(t, 120*time.Second, "resumed job", func() bool {
		st2, _ = s2.Get(st.ID)
		return st2.State.Terminal()
	})
	if st2.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q)", st2.State, st2.Error)
	}
	return st2.Result
}

func TestResumeBitIdenticalHPC(t *testing.T) {
	req := multiUnitHPC()
	want := runToCompletion(t, req)
	got := interruptAndResume(t, req)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed result differs from uninterrupted run:\nuninterrupted: %s\nresumed:       %s", want, got)
	}
}

func TestResumeBitIdenticalCharacterize(t *testing.T) {
	req := Request{
		Kind: KindCharacterize, Seed: 5,
		Ops: []string{"FADD", "FMUL"}, Ranges: []string{"M"},
		Faults: 300, SkipTMXM: true,
	}
	want := runToCompletion(t, req)
	got := interruptAndResume(t, req)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed characterisation differs from uninterrupted run (len %d vs %d)", len(want), len(got))
	}
	var res Result
	if err := json.Unmarshal(want, &res); err != nil {
		t.Fatal(err)
	}
	if res.DB == nil || len(res.DB.Entries) == 0 {
		t.Fatal("characterize result carries no syndrome DB")
	}
}

// TestCharacterizeStatusTelemetry: a characterize job's status must carry
// the aggregated engine counters (cycles simulated/skipped, dead-pruned
// faults, derived ratios) once units complete — the HTTP payload used to
// expose unit counts only.
func TestCharacterizeStatusTelemetry(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	st, err := s.Submit(Request{
		Kind: KindCharacterize, Seed: 9,
		Ops: []string{"FADD"}, Ranges: []string{"M"},
		Faults: 300, SkipTMXM: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "characterize job", func() bool {
		st, _ = s.Get(st.ID)
		return st.State.Terminal()
	})
	if st.State != StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	if st.RTL == nil {
		t.Fatal("characterize status carries no RTL telemetry")
	}
	if st.RTL.Injections != int(st.Total) {
		t.Errorf("telemetry injections = %d, want %d", st.RTL.Injections, st.Total)
	}
	if st.RTL.SimCycles == 0 || st.RTL.SkippedCycles == 0 {
		t.Errorf("telemetry cycles not populated: %+v", st.RTL)
	}
	if st.RTL.PrunedFaults == 0 || st.RTL.PruneRate <= 0 {
		t.Errorf("telemetry records no dead-pruned faults: %+v", st.RTL)
	}
	if st.RTL.ReplaySpeedup <= 1 {
		t.Errorf("replay speedup %.2f, want > 1", st.RTL.ReplaySpeedup)
	}
	if st.RTL.CollapseRate < 0 || st.RTL.CollapseRate > 1 {
		t.Errorf("collapse rate %.3f outside [0, 1]", st.RTL.CollapseRate)
	}
	if st.SW != nil {
		t.Errorf("characterize status carries a software telemetry block: %+v", st.SW)
	}
}

// TestSWStatusTelemetry: hpc and cnn job statuses must carry the
// aggregated software-campaign instruction counters and the derived
// fast-forward speedup, mirroring the characterize jobs' rtl block.
func TestSWStatusTelemetry(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	st, err := s.Submit(smallHPC())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "hpc job", func() bool {
		st, _ = s.Get(st.ID)
		return st.State.Terminal()
	})
	if st.State != StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	if st.SW == nil {
		t.Fatal("hpc status carries no software telemetry")
	}
	if st.SW.Injections != int(st.Total) {
		t.Errorf("telemetry injections = %d, want %d", st.SW.Injections, st.Total)
	}
	if st.SW.SimInstrs == 0 {
		t.Errorf("telemetry instruction counters not populated: %+v", st.SW)
	}
	if st.SW.SkippedInstrs == 0 {
		t.Errorf("fast-forward skipped no instructions: %+v", st.SW)
	}
	if st.SW.FFSpeedup <= 1 {
		t.Errorf("ff speedup %.2f, want > 1", st.SW.FFSpeedup)
	}
	if st.RTL != nil {
		t.Errorf("hpc status carries an RTL telemetry block: %+v", st.RTL)
	}
}

func TestWorkerPoolSaturation(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	const n = 6
	req := smallHPC()
	req.Models = []string{"bitflip"}
	req.Injections = 400
	for i := 0; i < n; i++ {
		if _, err := s.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	maxRunning := 0
	waitFor(t, 120*time.Second, "all jobs done", func() bool {
		running, terminal := 0, 0
		for _, st := range s.List() {
			switch {
			case st.State == StateRunning:
				running++
			case st.State.Terminal():
				terminal++
			}
		}
		if running > maxRunning {
			maxRunning = running
		}
		return terminal == n
	})
	if maxRunning > 2 {
		t.Fatalf("pool ran %d jobs at once with Workers=2", maxRunning)
	}
	if maxRunning < 2 {
		t.Errorf("pool never saturated: max concurrent running = %d", maxRunning)
	}
	for _, st := range s.List() {
		if st.State != StateDone {
			t.Errorf("job %s ended %s (error %q)", st.ID, st.State, st.Error)
		}
	}
}

func TestQueueFull(t *testing.T) {
	s := newService(t, Config{Workers: 1, QueueDepth: 1})
	blocker := smallHPC()
	blocker.Injections = 100000
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	// The single worker may or may not have dequeued the blocker yet; fill
	// whatever queue space remains, then expect errQueueFull.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = s.Submit(smallHPC()); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("queue of depth 1 accepted 4 submissions")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000001.json"), []byte("{\"id\": \"j-0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Workers: 1, Dir: dir}); err == nil {
		t.Fatal("New accepted a truncated checkpoint journal")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := deriveSeed(42, "MxM/bitflip")
	if b := deriveSeed(42, "MxM/bitflip"); a != b {
		t.Fatal("deriveSeed is not deterministic")
	}
	if deriveSeed(42, "MxM/bitflip2") == a || deriveSeed(43, "MxM/bitflip") == a {
		t.Fatal("deriveSeed ignores its inputs")
	}
}
