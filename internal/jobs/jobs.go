// Package jobs turns the fire-and-forget campaign engines into a
// long-running job service. Submitted campaigns (RTL characterisation,
// HPC software injection, CNN injection) are queued on a bounded worker
// pool, report fault-level progress, can be cancelled mid-run, and
// journal their completed work units to a JSON checkpoint directory so a
// restarted service resumes them where they stopped.
//
// Resumption is deterministic: every work unit's engine seed is derived
// from the job seed and the unit's stable name (or fixed at planning time
// for RTL units), never handed out sequentially at run time, and the
// per-injection RNG streams inside the engines are themselves derived
// from (seed, injection index). A resumed job therefore produces a final
// result bit-identical to the same job run uninterrupted.
package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/core"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/stats"
	"gpufi/internal/swfi"
	"gpufi/internal/syndrome"
)

// Kind selects the campaign family a job runs.
type Kind string

// Job kinds.
const (
	KindCharacterize Kind = "characterize" // RTL phase: build a syndrome DB
	KindHPC          Kind = "hpc"          // software injection into HPC workloads
	KindCNN          Kind = "cnn"          // software injection into a CNN
)

// AppSpec names one HPC workload and optionally overrides its size; zero
// sizes use the suite defaults (the scaled Table III sizes).
type AppSpec struct {
	Name string `json:"name"`
	N    int    `json:"n,omitempty"` // primary size (matrix dim, elements, boxes)
	M    int    `json:"m,omitempty"` // secondary size (Lava per-box, Hotspot iterations)
}

// Request describes a campaign job. It is the POST /jobs payload and is
// stored verbatim in the checkpoint journal, so a resumed job re-plans
// exactly the work the original submission asked for.
type Request struct {
	Kind Kind   `json:"kind"`
	Seed uint64 `json:"seed"`

	// All job kinds: accelerator escape hatches. NoPrune disables
	// dead-site pruning (RTL and software), NoCollapse disables
	// fault-equivalence collapsing (RTL and software); results are
	// bit-identical either way.
	NoPrune    bool `json:"no_prune,omitempty"`
	NoCollapse bool `json:"no_collapse,omitempty"`

	// Software jobs: force the reference (Tier 0) interpreter for every
	// emulator run instead of the pre-decoded fast path; results are
	// bit-identical either way.
	NoFastPath bool `json:"no_fast_path,omitempty"`

	// Characterize jobs.
	Faults        int      `json:"faults,omitempty"`      // per micro campaign; default 2000
	TMXMFaults    int      `json:"tmxm_faults,omitempty"` // per t-MxM campaign; default Faults
	SkipTMXM      bool     `json:"skip_tmxm,omitempty"`
	NoBitParallel bool     `json:"no_bit_parallel,omitempty"` // disable bit-parallel marching (bit-identical results)
	Ops           []string `json:"ops,omitempty"`             // opcode subset; default all 12
	Ranges        []string `json:"ranges,omitempty"`          // input-range subset; default S, M, L

	// HPC and CNN jobs.
	Injections int       `json:"injections,omitempty"` // per unit; default 500
	Apps       []AppSpec `json:"apps,omitempty"`       // HPC: default all six suite apps
	Models     []string  `json:"models,omitempty"`     // HPC: bitflip|bitflip2|syndrome|syndrome-emp; CNN: bitflip|syndrome|tile
	Network    string    `json:"network,omitempty"`    // CNN: LeNet or Yolo
	DBPath     string    `json:"db,omitempty"`         // syndrome DB file, required by syndrome/tile models
}

// CharUnitResult summarises one completed characterisation unit; the
// syndromes themselves accumulate in the job's database. The cycle
// counters mirror core.Telemetry and feed the job status aggregate.
type CharUnitResult struct {
	Unit            string       `json:"unit"`
	Seed            uint64       `json:"seed"`
	Tally           faults.Tally `json:"tally"`
	SimCycles       uint64       `json:"sim_cycles"`
	SkippedCycles   uint64       `json:"skipped_cycles"`
	PrunedFaults    uint64       `json:"pruned_faults"`
	CollapsedFaults uint64       `json:"collapsed_faults"`
	VectorFaults    uint64       `json:"vector_faults"`
	Marches         uint64       `json:"marches"`
}

// HPCUnitResult is one completed (application, fault model) campaign.
// The instruction counters mirror swfi.Result and feed the job status
// aggregate's sw telemetry block.
type HPCUnitResult struct {
	App             string       `json:"app"`
	Model           string       `json:"model"`
	Seed            uint64       `json:"seed"`
	Tally           faults.Tally `json:"tally"`
	PVF             float64      `json:"pvf"`
	CILo            float64      `json:"ci_lo"`
	CIHi            float64      `json:"ci_hi"`
	SimInstrs       uint64       `json:"sim_instrs"`
	SkippedInstrs   uint64       `json:"skipped_instrs"`
	PrunedFaults    uint64       `json:"pruned_faults"`
	CollapsedFaults uint64       `json:"collapsed_faults"`
}

// CNNUnitResult is one completed (network, fault model) campaign. The
// instruction counters mirror swfi.CNNResult; see HPCUnitResult.
type CNNUnitResult struct {
	Network       string       `json:"network"`
	Model         string       `json:"model"`
	Seed          uint64       `json:"seed"`
	Tally         faults.Tally `json:"tally"`
	PVF           float64      `json:"pvf"`
	CriticalSDC   int          `json:"critical_sdc"`
	CriticalShare float64      `json:"critical_share"`

	SimInstrs       uint64 `json:"sim_instrs"`
	SkippedInstrs   uint64 `json:"skipped_instrs"`
	PrunedFaults    uint64 `json:"pruned_faults"`
	CollapsedFaults uint64 `json:"collapsed_faults"`
}

// Result is a finished job's deliverable: the per-unit results in plan
// order, plus the syndrome database for characterize jobs.
type Result struct {
	Kind  Kind              `json:"kind"`
	Units []json.RawMessage `json:"units"`
	DB    *syndrome.DB      `json:"db,omitempty"`
}

// unit is one schedulable, checkpointable slice of a job.
type unit struct {
	name  string
	total int // progress weight: faults or injections
	run   func(ctx context.Context, env *runEnv, progress func(done, total int)) (json.RawMessage, error)
}

// runEnv carries the per-job-run state shared by a job's units.
type runEnv struct {
	workers int          // engine workers per campaign
	db      *syndrome.DB // loaded syndrome DB for syndrome/tile models
	char    *syndrome.DB // accumulating DB of a characterize job
	mu      *sync.Mutex  // guards char against concurrent checkpoint marshal
	sw      *swLive      // live software-campaign throughput, or nil
}

// swLive accumulates the wall-clock throughput of software-campaign
// units run in this process. It deliberately lives outside the
// checkpoint journal: unit results must stay bit-identical across
// restarts and fabric merges, and wall time is not. The status block's
// MIPS rates therefore cover live work only — units restored from a
// journal contribute their instruction counters but no duration.
type swLive struct {
	sim, skipped, elapsedNS atomic.Uint64
}

func (l *swLive) note(sim, skipped, elapsedNS uint64) {
	if l == nil {
		return
	}
	l.sim.Add(sim)
	l.skipped.Add(skipped)
	l.elapsedNS.Add(elapsedNS)
}

// program is a compiled job: its ordered units plus whether running them
// needs a syndrome database loaded from Request.DBPath. For characterize
// jobs, charUnits holds the underlying core plan units (index-aligned
// with units) so the distributed fabric can ship them to workers.
type program struct {
	units     []unit
	charUnits []core.Unit
	needsDB   bool
}

// deriveSeed maps (jobSeed, unitName) to an independent engine seed via
// an FNV-1a hash fed through the splitmix64 generator. Unit seeds thus
// depend only on the request, never on execution order, which is what
// makes interrupted jobs resume bit-identically.
func deriveSeed(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return stats.NewRNG(seed ^ h).Uint64()
}

// compile validates a request and expands it into its execution program.
// It performs no I/O, so it doubles as submission-time validation.
func compile(req Request) (*program, error) {
	var (
		prog *program
		err  error
	)
	switch req.Kind {
	case KindCharacterize:
		prog, err = compileCharacterize(req)
	case KindHPC:
		prog, err = compileHPC(req)
	case KindCNN:
		prog, err = compileCNN(req)
	default:
		return nil, fmt.Errorf("jobs: unknown kind %q (want characterize, hpc or cnn)", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	if len(prog.units) == 0 {
		return nil, fmt.Errorf("jobs: %s request plans no work units", req.Kind)
	}
	if prog.needsDB && req.DBPath == "" {
		return nil, fmt.Errorf("jobs: %s job uses a syndrome fault model; set \"db\" to a syndrome database path", req.Kind)
	}
	return prog, nil
}

func compileCharacterize(req Request) (*program, error) {
	cfg := core.CharacterizeConfig{
		FaultsPerCampaign: req.Faults,
		TMXMFaults:        req.TMXMFaults,
		Seed:              req.Seed,
		SkipTMXM:          req.SkipTMXM,
		NoPrune:           req.NoPrune,
		NoCollapse:        req.NoCollapse,
		NoBitParallel:     req.NoBitParallel,
	}
	for _, name := range req.Ops {
		op, ok := parseOp(name)
		if !ok {
			return nil, fmt.Errorf("jobs: unknown opcode %q", name)
		}
		cfg.Ops = append(cfg.Ops, op)
	}
	for _, name := range req.Ranges {
		rng, ok := parseRange(name)
		if !ok {
			return nil, fmt.Errorf("jobs: unknown input range %q (want S, M or L)", name)
		}
		cfg.Ranges = append(cfg.Ranges, rng)
	}
	prog := &program{}
	for _, cu := range core.Plan(cfg) {
		prog.charUnits = append(prog.charUnits, cu)
		prog.units = append(prog.units, unit{
			name:  cu.Name(),
			total: cu.Faults,
			run: func(ctx context.Context, env *runEnv, progress func(done, total int)) (json.RawMessage, error) {
				res, err := core.RunUnit(ctx, cu, env.workers, progress)
				if err != nil {
					return nil, err
				}
				return ingestCharUnit(env, cu, res)
			},
		})
	}
	return prog, nil
}

// ingestCharUnit folds one executed characterisation unit into the job's
// accumulating syndrome database and returns its journal record. It is
// the single ingestion point shared by the local path (the unit ran in
// this process) and the distributed fabric path (the result arrived from
// a worker node), which is what keeps the two bit-identical.
func ingestCharUnit(env *runEnv, cu core.Unit, res *core.UnitResult) (json.RawMessage, error) {
	env.mu.Lock()
	if res.Micro != nil {
		env.char.AddMicro(res.Micro)
	} else {
		env.char.AddTMXM(res.TMXM)
	}
	env.mu.Unlock()
	tel := res.Telemetry()
	return json.Marshal(CharUnitResult{
		Unit: cu.Name(), Seed: cu.Seed, Tally: res.Tally(),
		SimCycles:       tel.SimCycles,
		SkippedCycles:   tel.SkippedCycles,
		PrunedFaults:    tel.PrunedFaults,
		CollapsedFaults: tel.CollapsedFaults,
		VectorFaults:    tel.VectorFaults,
		Marches:         tel.Marches,
	})
}

func compileHPC(req Request) (*program, error) {
	specs := req.Apps
	if len(specs) == 0 {
		for _, w := range apps.Suite() {
			specs = append(specs, AppSpec{Name: w.Name})
		}
	}
	models := req.Models
	if len(models) == 0 {
		models = []string{"bitflip", "syndrome"}
	}
	injections := req.Injections
	if injections == 0 {
		injections = 500
	}
	prog := &program{}
	for _, spec := range specs {
		if _, err := buildApp(spec); err != nil {
			return nil, err
		}
		for _, mname := range models {
			model, ok := parseHPCModel(mname)
			if !ok {
				return nil, fmt.Errorf("jobs: unknown HPC fault model %q (want bitflip, bitflip2, syndrome or syndrome-emp)", mname)
			}
			if model.NeedsDB() {
				prog.needsDB = true
			}
			name := spec.Name + "/" + mname
			seed := deriveSeed(req.Seed, name)
			prog.units = append(prog.units, unit{
				name:  name,
				total: injections,
				run: func(ctx context.Context, env *runEnv, progress func(done, total int)) (json.RawMessage, error) {
					w, err := buildApp(spec)
					if err != nil {
						return nil, err
					}
					res, err := swfi.RunCtx(ctx, swfi.Campaign{
						Workload: w, Model: model, DB: env.db,
						Injections: injections, Seed: seed, Workers: env.workers,
						NoPrune: req.NoPrune, NoCollapse: req.NoCollapse,
						NoFastPath: req.NoFastPath,
						Progress:   progress,
					})
					if err != nil {
						return nil, err
					}
					env.sw.note(res.SimInstrs, res.SkippedInstrs, uint64(res.Elapsed))
					lo, hi := res.PVFCI()
					return json.Marshal(HPCUnitResult{
						App: spec.Name, Model: mname, Seed: seed,
						Tally: res.Tally, PVF: res.PVF(), CILo: lo, CIHi: hi,
						SimInstrs:       res.SimInstrs,
						SkippedInstrs:   res.SkippedInstrs,
						PrunedFaults:    res.PrunedFaults,
						CollapsedFaults: res.CollapsedFaults,
					})
				},
			})
		}
	}
	return prog, nil
}

func compileCNN(req Request) (*program, error) {
	network := req.Network
	if network == "" {
		network = "LeNet"
	}
	if network != "LeNet" && network != "Yolo" {
		return nil, fmt.Errorf("jobs: unknown network %q (want LeNet or Yolo)", network)
	}
	models := req.Models
	if len(models) == 0 {
		models = []string{"bitflip", "syndrome", "tile"}
	}
	injections := req.Injections
	if injections == 0 {
		injections = 500
	}
	prog := &program{}
	for _, mname := range models {
		model, ok := parseCNNModel(mname)
		if !ok {
			return nil, fmt.Errorf("jobs: unknown CNN fault model %q (want bitflip, syndrome or tile)", mname)
		}
		if model != swfi.CNNBitFlip {
			prog.needsDB = true
		}
		name := network + "/" + mname
		seed := deriveSeed(req.Seed, name)
		prog.units = append(prog.units, unit{
			name:  name,
			total: injections,
			run: func(ctx context.Context, env *runEnv, progress func(done, total int)) (json.RawMessage, error) {
				net, input, critical := buildNetwork(network)
				res, err := swfi.RunCNNCtx(ctx, swfi.CNNCampaign{
					Net: net, Input: input, Model: model, DB: env.db,
					Injections: injections, Seed: seed, Workers: env.workers,
					NoPrune: req.NoPrune, NoCollapse: req.NoCollapse,
					NoFastPath: req.NoFastPath,
					Critical:   critical, Progress: progress,
				})
				if err != nil {
					return nil, err
				}
				env.sw.note(res.SimInstrs, res.SkippedInstrs, uint64(res.Elapsed))
				return json.Marshal(CNNUnitResult{
					Network: network, Model: mname, Seed: seed,
					Tally: res.Tally, PVF: res.PVF(),
					CriticalSDC: res.CriticalSDC, CriticalShare: res.CriticalShare(),
					SimInstrs:       res.SimInstrs,
					SkippedInstrs:   res.SkippedInstrs,
					PrunedFaults:    res.PrunedFaults,
					CollapsedFaults: res.CollapsedFaults,
				})
			},
		})
	}
	return prog, nil
}

// buildApp constructs a fresh workload for a spec; fresh per run so
// concurrent jobs never share emulator-visible state. Constructor panics
// (the app builders reject unusable sizes that way) become validation
// errors so a bad size in a request cannot take down a handler.
func buildApp(spec AppSpec) (w *apps.Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			w, err = nil, fmt.Errorf("jobs: bad %s size: %v", spec.Name, r)
		}
	}()
	n, m := spec.N, spec.M
	or := func(v, d int) int {
		if v > 0 {
			return v
		}
		return d
	}
	switch spec.Name {
	case "MxM":
		return apps.NewMxM(or(n, 64)), nil
	case "Lava":
		return apps.NewLava(or(n, 2), or(m, 64)), nil
	case "Quicksort":
		return apps.NewQuicksort(or(n, 1024)), nil
	case "Hotspot":
		return apps.NewHotspot(or(n, 32), or(m, 16)), nil
	case "LUD":
		return apps.NewLUD(or(n, 32)), nil
	case "Gaussian":
		return apps.NewGaussian(or(n, 32)), nil
	default:
		return nil, fmt.Errorf("jobs: unknown application %q (want MxM, Lava, Quicksort, Hotspot, LUD or Gaussian)", spec.Name)
	}
}

func buildNetwork(name string) (*cnn.Network, []float32, func(a, b []float32) bool) {
	if name == "Yolo" {
		return cnn.NewYoloLite(), cnn.YoloInput(0), swfi.YoloCritical
	}
	return cnn.NewLeNetLite(), cnn.LeNetInput(0), swfi.LeNetCritical
}

func parseOp(s string) (isa.Opcode, bool) {
	for _, op := range isa.CharacterizedOpcodes() {
		if op.String() == s {
			return op, true
		}
	}
	return 0, false
}

func parseRange(s string) (faults.InputRange, bool) {
	for _, r := range faults.AllRanges() {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

func parseHPCModel(s string) (swfi.FaultModel, bool) {
	switch s {
	case "bitflip":
		return swfi.ModelBitFlip, true
	case "bitflip2":
		return swfi.ModelDoubleBitFlip, true
	case "syndrome":
		return swfi.ModelSyndrome, true
	case "syndrome-emp":
		return swfi.ModelSyndromeEmp, true
	default:
		return 0, false
	}
}

func parseCNNModel(s string) (swfi.CNNModel, bool) {
	switch s {
	case "bitflip":
		return swfi.CNNBitFlip, true
	case "syndrome":
		return swfi.CNNSyndrome, true
	case "tile":
		return swfi.CNNTile, true
	default:
		return 0, false
	}
}
