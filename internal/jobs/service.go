package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gpufi/internal/faults"
	"time"

	"gpufi/internal/core"
	"gpufi/internal/fabric"
	"gpufi/internal/syndrome"
)

// State is a job's lifecycle stage.
type State string

// Job states. Queued and running jobs survive a service restart (they are
// re-queued and resume from their last checkpointed unit); the other
// states are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config tunes a Service. The zero value is usable: no persistence, one
// job slot per CPU, single-threaded engines.
type Config struct {
	// Dir is the checkpoint journal directory; empty disables
	// persistence (jobs then live only as long as the service).
	Dir string

	// Workers bounds how many jobs run concurrently; default
	// runtime.NumCPU().
	Workers int

	// EngineWorkers is the per-campaign worker count handed to the
	// injection engines; default 1, so total parallelism stays near
	// Workers even when the pool is saturated.
	EngineWorkers int

	// CheckpointEvery is the progress-journal cadence while a unit is in
	// flight; completed units checkpoint immediately. Default 2s.
	CheckpointEvery time.Duration

	// QueueDepth bounds the submission queue; Submit fails once it is
	// full. Default 1024.
	QueueDepth int

	// SSEKeepAlive is the idle keep-alive cadence of the /jobs/{id}/events
	// stream: an SSE comment line is written whenever the stream would
	// otherwise stay silent, so proxies and idle-timeout middleboxes do
	// not sever long-running campaign streams. Default 15s.
	SSEKeepAlive time.Duration

	// Fabric, when non-nil, distributes characterize jobs' plan units
	// across the coordinator's registered workers instead of running them
	// in-process. Results are merged back in plan order, so a distributed
	// job's journal, syndrome database and final result are bit-identical
	// to a local run. HPC and CNN jobs always run locally.
	Fabric *fabric.Coordinator

	// Logf, when non-nil, receives service diagnostics (checkpoint write
	// failures and the like).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SSEKeepAlive <= 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Job is one submitted campaign. All mutable fields are guarded by mu
// except the done/total counters, which are atomics so engine progress
// callbacks never contend with status reads.
type Job struct {
	id  string
	req Request

	done  atomic.Int64
	total atomic.Int64

	swLive swLive // live software-unit throughput; not journalled

	mu            sync.Mutex
	state         State
	errMsg        string
	unitsTotal    int
	completed     map[string]json.RawMessage
	db            *syndrome.DB // partial DB of a characterize job
	result        json.RawMessage
	cancel        context.CancelFunc // non-nil while running
	userCancelled bool
}

// Status is a point-in-time, JSON-ready view of a job.
type Status struct {
	ID         string            `json:"id"`
	Kind       Kind              `json:"kind"`
	State      State             `json:"state"`
	Done       int64             `json:"done"`
	Total      int64             `json:"total"`
	UnitsDone  int               `json:"units_done"`
	UnitsTotal int               `json:"units_total"`
	Error      string            `json:"error,omitempty"`
	RTL        *RTLTelemetry     `json:"rtl,omitempty"`    // characterize jobs, once a unit completed
	SW         *SWTelemetry      `json:"sw,omitempty"`     // hpc/cnn jobs, once a unit completed
	Fabric     *fabric.JobStatus `json:"fabric,omitempty"` // distributed jobs: worker/lease state
	Result     json.RawMessage   `json:"result,omitempty"`
}

// RTLTelemetry is the status view of a characterize job's engine
// counters, aggregated over its completed units, with the derived ratios
// precomputed for JSON consumers. Because the counters live in the
// journalled unit results, the aggregate survives service restarts and
// job resumption.
type RTLTelemetry struct {
	core.Telemetry
	ReplaySpeedup float64 `json:"replay_speedup,omitempty"`
	PruneRate     float64 `json:"prune_rate"`
	CollapseRate  float64 `json:"collapse_rate"`
	VectorRate    float64 `json:"vector_rate"`
	LaneOccupancy float64 `json:"lane_occupancy"`
}

// SWTelemetry is the status view of a software-level (HPC or CNN) job's
// instruction counters, aggregated over its completed units: instructions
// actually interpreted, instructions provably skipped by checkpoint
// fast-forward, and the derived fast-forward speedup. It mirrors the rtl
// block, including restart survival via the journalled unit results.
// EmuMIPS is millions of interpreted instructions per wall-clock second
// over the summed durations of units run in this process (restored units
// carry counters but no duration); EffectiveMIPS counts the
// fast-forward-skipped instructions too.
type SWTelemetry struct {
	Injections      int     `json:"injections"`
	SimInstrs       uint64  `json:"sim_instrs"`
	SkippedInstrs   uint64  `json:"skipped_instrs"`
	PrunedFaults    uint64  `json:"pruned_faults"`
	CollapsedFaults uint64  `json:"collapsed_faults"`
	ElapsedNS       uint64  `json:"elapsed_ns,omitempty"`
	FFSpeedup       float64 `json:"ff_speedup,omitempty"`
	EmuMIPS         float64 `json:"emu_mips,omitempty"`
	EffectiveMIPS   float64 `json:"effective_mips,omitempty"`
	PruneRate       float64 `json:"prune_rate"`
	CollapseRate    float64 `json:"collapse_rate"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:         j.id,
		Kind:       j.req.Kind,
		State:      j.state,
		Done:       j.done.Load(),
		Total:      j.total.Load(),
		UnitsDone:  len(j.completed),
		UnitsTotal: j.unitsTotal,
		Error:      j.errMsg,
		RTL:        j.rtlTelemetry(),
		SW:         j.swTelemetry(),
		Result:     j.result,
	}
}

// rtlTelemetry sums the completed characterisation units' engine
// counters. Caller holds j.mu. Units journalled by older service versions
// unmarshal their missing counters as zero, which only understates the
// aggregate.
func (j *Job) rtlTelemetry() *RTLTelemetry {
	if j.req.Kind != KindCharacterize || len(j.completed) == 0 {
		return nil
	}
	agg := &RTLTelemetry{}
	for _, raw := range j.completed {
		var u CharUnitResult
		if json.Unmarshal(raw, &u) != nil {
			continue
		}
		agg.Merge(core.Telemetry{
			Injections:      u.Tally.Injections,
			SimCycles:       u.SimCycles,
			SkippedCycles:   u.SkippedCycles,
			PrunedFaults:    u.PrunedFaults,
			CollapsedFaults: u.CollapsedFaults,
			VectorFaults:    u.VectorFaults,
			Marches:         u.Marches,
		})
	}
	// A fully pruned aggregate has an infinite speedup, which JSON cannot
	// carry; the field is omitted (0) in that corner.
	if rs := agg.Telemetry.ReplaySpeedup(); !math.IsInf(rs, 1) {
		agg.ReplaySpeedup = rs
	}
	agg.PruneRate = agg.Telemetry.PruneRate()
	agg.CollapseRate = agg.Telemetry.CollapseRate()
	agg.VectorRate = agg.Telemetry.VectorRate()
	agg.LaneOccupancy = agg.Telemetry.LaneOccupancy()
	return agg
}

// swTelemetry sums the completed software-campaign units' instruction
// counters. Caller holds j.mu. HPC and CNN unit results share the two
// counter fields, so one probe struct decodes both; older journal records
// without them unmarshal as zero, which only understates the aggregate.
func (j *Job) swTelemetry() *SWTelemetry {
	if (j.req.Kind != KindHPC && j.req.Kind != KindCNN) || len(j.completed) == 0 {
		return nil
	}
	agg := &SWTelemetry{}
	for _, raw := range j.completed {
		var u struct {
			Tally           faults.Tally `json:"tally"`
			SimInstrs       uint64       `json:"sim_instrs"`
			SkippedInstrs   uint64       `json:"skipped_instrs"`
			PrunedFaults    uint64       `json:"pruned_faults"`
			CollapsedFaults uint64       `json:"collapsed_faults"`
		}
		if json.Unmarshal(raw, &u) != nil {
			continue
		}
		agg.Injections += u.Tally.Injections
		agg.SimInstrs += u.SimInstrs
		agg.SkippedInstrs += u.SkippedInstrs
		agg.PrunedFaults += u.PrunedFaults
		agg.CollapsedFaults += u.CollapsedFaults
	}
	// Mirror the rtl block's corner case: an all-skipped aggregate has an
	// infinite speedup, which JSON cannot carry; the field is omitted (0).
	if agg.SimInstrs > 0 {
		agg.FFSpeedup = float64(agg.SimInstrs+agg.SkippedInstrs) / float64(agg.SimInstrs)
	}
	// Throughput comes from the live counters, not the journal: wall time
	// is nondeterministic and must stay out of the bit-identical unit
	// results, so units restored after a restart carry no duration and
	// the rates cover work done in this process only.
	if el := j.swLive.elapsedNS.Load(); el > 0 {
		sec := float64(el) / 1e9
		sim := j.swLive.sim.Load()
		agg.ElapsedNS = el
		agg.EmuMIPS = float64(sim) / sec / 1e6
		agg.EffectiveMIPS = float64(sim+j.swLive.skipped.Load()) / sec / 1e6
	}
	if agg.Injections > 0 {
		agg.PruneRate = float64(agg.PrunedFaults) / float64(agg.Injections)
		agg.CollapseRate = float64(agg.CollapsedFaults) / float64(agg.Injections)
	}
	return agg
}

// bumpDone raises the progress counter to v if v is larger, keeping the
// externally visible count monotonic even though engine workers report
// out of order.
func (j *Job) bumpDone(v int64) {
	for {
		cur := j.done.Load()
		if v <= cur || j.done.CompareAndSwap(cur, v) {
			return
		}
	}
}

// checkpoint is the journal record of one job, written atomically to
// Dir/job-<id>.json after every completed unit and on the periodic tick.
type checkpoint struct {
	ID         string                     `json:"id"`
	Request    Request                    `json:"request"`
	State      State                      `json:"state"`
	Done       int64                      `json:"done"`
	Total      int64                      `json:"total"`
	UnitsTotal int                        `json:"units_total"`
	Error      string                     `json:"error,omitempty"`
	Completed  map[string]json.RawMessage `json:"completed,omitempty"`
	DB         *syndrome.DB               `json:"db,omitempty"`
	Result     json.RawMessage            `json:"result,omitempty"`
}

// Submission errors that map to 503 rather than 400 over HTTP.
var (
	errClosed    = fmt.Errorf("jobs: service is shut down")
	errQueueFull = fmt.Errorf("jobs: submission queue full")
)

// Service is the campaign job registry and worker pool.
type Service struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool

	queue chan *Job
	wg    sync.WaitGroup
}

// New builds a service, reloads any checkpointed jobs from cfg.Dir
// (re-queuing the unfinished ones), and starts the worker pool.
func New(cfg Config) (*Service, error) {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		if err := s.loadCheckpoints(); err != nil {
			cancel()
			return nil, err
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// loadCheckpoints restores jobs from the journal directory. Unfinished
// jobs (queued or running at the time of the previous shutdown) are
// re-queued in ID order so the oldest submission resumes first.
func (s *Service) loadCheckpoints() error {
	paths, err := filepath.Glob(filepath.Join(s.cfg.Dir, "job-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	var resume []*Job
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var ck checkpoint
		if err := json.Unmarshal(blob, &ck); err != nil {
			return fmt.Errorf("jobs: checkpoint %s is truncated or corrupt: %w", path, err)
		}
		j := &Job{
			id:         ck.ID,
			req:        ck.Request,
			state:      ck.State,
			errMsg:     ck.Error,
			unitsTotal: ck.UnitsTotal,
			completed:  ck.Completed,
			db:         ck.DB,
			result:     ck.Result,
		}
		if j.completed == nil {
			j.completed = make(map[string]json.RawMessage)
		}
		j.done.Store(ck.Done)
		j.total.Store(ck.Total)
		if !j.state.Terminal() {
			j.state = StateQueued
			resume = append(resume, j)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(ck.ID, "j-")); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	for _, j := range resume {
		select {
		case s.queue <- j:
		default:
			return fmt.Errorf("jobs: queue depth %d too small to resume %d checkpointed jobs", s.cfg.QueueDepth, len(resume))
		}
	}
	return nil
}

// Submit validates, registers, journals and enqueues a job.
func (s *Service) Submit(req Request) (Status, error) {
	prog, err := compile(req)
	if err != nil {
		return Status{}, err
	}
	total := int64(0)
	for _, u := range prog.units {
		total += int64(u.total)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, errClosed
	}
	s.seq++
	j := &Job{
		id:         fmt.Sprintf("j-%06d", s.seq),
		req:        req,
		state:      StateQueued,
		unitsTotal: len(prog.units),
		completed:  make(map[string]json.RawMessage),
	}
	j.total.Store(total)
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w (%d pending)", errQueueFull, s.cfg.QueueDepth)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.saveCheckpoint(j)
	return j.Status(), nil
}

// Get returns a job's status by ID.
func (s *Service) Get(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return s.statusOf(j), true
}

// List returns every known job's status in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	js := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = s.statusOf(j)
	}
	return out
}

// statusOf snapshots a job and, when the job is currently distributed
// over the fabric, attaches the coordinator's worker/lease view so the
// status JSON (and with it the SSE stream) exposes the fleet state.
func (s *Service) statusOf(j *Job) Status {
	st := j.Status()
	if s.cfg.Fabric != nil && st.State == StateRunning {
		if fs, ok := s.cfg.Fabric.JobStatus(st.ID); ok {
			st.Fabric = &fs
		}
	}
	return st
}

// Cancel stops a queued or running job. Cancelling is idempotent;
// cancelling a terminal job is an error.
func (s *Service) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("jobs: no job %s", id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return j.Status(), fmt.Errorf("jobs: job %s already %s", id, j.Status().State)
	case j.state == StateQueued:
		j.userCancelled = true
		j.state = StateCancelled
		j.mu.Unlock()
		s.saveCheckpoint(j)
	default: // running
		j.userCancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	return j.Status(), nil
}

// Close stops accepting submissions, cancels running jobs, waits for the
// pool to drain, and journals every unfinished job as queued so the next
// service instance resumes it.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.mu.Lock()
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	for _, st := range s.List() {
		if !st.State.Terminal() {
			s.mu.Lock()
			j := s.jobs[st.ID]
			s.mu.Unlock()
			j.mu.Lock()
			j.state = StateQueued
			j.mu.Unlock()
			s.saveCheckpoint(j)
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job: compile, skip checkpointed units, run the
// rest, journal after each, and assemble the deterministic final result.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued || s.baseCtx.Err() != nil {
		// Cancelled while queued, or the service is shutting down; in the
		// latter case the job stays queued for the next instance.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state = StateRunning
	j.cancel = cancel
	if j.db == nil {
		j.db = syndrome.New()
	}
	j.mu.Unlock()
	defer cancel()

	fail := func(err error) {
		j.mu.Lock()
		j.state = StateFailed
		j.errMsg = err.Error()
		j.cancel = nil
		j.mu.Unlock()
		s.saveCheckpoint(j)
	}

	prog, err := compile(j.req)
	if err != nil {
		fail(err)
		return
	}
	env := &runEnv{workers: s.cfg.EngineWorkers, char: j.db, mu: &j.mu, sw: &j.swLive}
	if prog.needsDB {
		db, err := loadSyndromeDB(j.req.DBPath)
		if err != nil {
			fail(err)
			return
		}
		env.db = db
	}

	// Periodic progress journal while units are in flight.
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		t := time.NewTicker(s.cfg.CheckpointEvery)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				s.saveCheckpoint(j)
			}
		}
	}()

	var runErr error
	if s.cfg.Fabric != nil && len(prog.charUnits) == len(prog.units) {
		runErr = s.runUnitsFabric(ctx, j, prog, env)
	} else {
		runErr = s.runUnitsLocal(ctx, j, prog, env)
	}
	close(stopTick)
	tickWG.Wait()
	if runErr != nil && ctx.Err() == nil {
		fail(runErr)
		return
	}

	if ctx.Err() != nil {
		j.mu.Lock()
		if j.userCancelled {
			j.state = StateCancelled
		} else {
			// Service shutdown: back to the queue for the next instance.
			j.state = StateQueued
		}
		j.cancel = nil
		j.mu.Unlock()
		s.saveCheckpoint(j)
		return
	}

	// All units done: assemble the final result in plan order.
	res := Result{Kind: j.req.Kind}
	j.mu.Lock()
	for _, u := range prog.units {
		raw, ok := j.completed[u.name]
		if !ok {
			j.mu.Unlock()
			fail(fmt.Errorf("unit %s finished without a recorded result", u.name))
			return
		}
		res.Units = append(res.Units, raw)
	}
	if j.req.Kind == KindCharacterize {
		res.DB = j.db
	}
	j.mu.Unlock()
	blob, err := json.Marshal(res)
	if err != nil {
		fail(err)
		return
	}
	j.mu.Lock()
	j.state = StateDone
	j.result = blob
	j.cancel = nil
	j.mu.Unlock()
	s.saveCheckpoint(j)
}

// runUnitsLocal executes the program's units sequentially in this
// process. A nil return with ctx still alive means every unit is in
// j.completed.
func (s *Service) runUnitsLocal(ctx context.Context, j *Job, prog *program, env *runEnv) error {
	base := int64(0)
	for _, u := range prog.units {
		j.mu.Lock()
		_, doneAlready := j.completed[u.name]
		j.mu.Unlock()
		if doneAlready {
			base += int64(u.total)
			j.bumpDone(base)
			continue
		}
		if ctx.Err() != nil {
			return nil
		}
		off := base
		raw, err := u.run(ctx, env, func(done, _ int) {
			j.bumpDone(off + int64(done))
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancellation surfaces in runJob, not as a failure
			}
			return fmt.Errorf("unit %s: %w", u.name, err)
		}
		base += int64(u.total)
		j.bumpDone(base)
		j.mu.Lock()
		j.completed[u.name] = raw
		j.mu.Unlock()
		s.saveCheckpoint(j)
	}
	return nil
}

// runUnitsFabric distributes the program's units through the fabric
// coordinator. Results are consumed in plan order (Await blocks until
// the coordinator has the next unit's result), so the syndrome DB and
// the checkpoint journal are assembled exactly as in the local path and
// the merged output is bit-identical to a single-node run.
func (s *Service) runUnitsFabric(ctx context.Context, j *Job, prog *program, env *runEnv) error {
	// Units finished before a restart stay finished; only ship the rest.
	var pending []core.Unit
	doneBase := int64(0)
	j.mu.Lock()
	for i, u := range prog.units {
		if _, ok := j.completed[u.name]; ok {
			doneBase += int64(u.total)
		} else {
			pending = append(pending, prog.charUnits[i])
		}
	}
	j.mu.Unlock()
	j.bumpDone(doneBase)
	if len(pending) == 0 {
		return nil
	}

	handle, err := s.cfg.Fabric.StartJob(j.id, pending, func(doneFaults int) {
		j.bumpDone(doneBase + int64(doneFaults))
	})
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	defer handle.Stop()

	completedFaults := doneBase
	for i, u := range prog.units {
		j.mu.Lock()
		_, doneAlready := j.completed[u.name]
		j.mu.Unlock()
		if doneAlready {
			continue
		}
		res, err := handle.Await(ctx, u.name)
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancellation surfaces in runJob
			}
			return fmt.Errorf("unit %s: %w", u.name, err)
		}
		raw, err := ingestCharUnit(env, prog.charUnits[i], res)
		if err != nil {
			return fmt.Errorf("unit %s: %w", u.name, err)
		}
		completedFaults += int64(u.total)
		j.bumpDone(completedFaults)
		j.mu.Lock()
		j.completed[u.name] = raw
		j.mu.Unlock()
		s.saveCheckpoint(j)
	}
	return nil
}

// saveCheckpoint journals a job atomically (temp file + rename), so a
// crash mid-write can never corrupt an existing checkpoint.
func (s *Service) saveCheckpoint(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	j.mu.Lock()
	ck := checkpoint{
		ID:         j.id,
		Request:    j.req,
		State:      j.state,
		Done:       j.done.Load(),
		Total:      j.total.Load(),
		UnitsTotal: j.unitsTotal,
		Error:      j.errMsg,
		Completed:  j.completed,
		Result:     j.result,
	}
	if j.req.Kind == KindCharacterize && j.db != nil && len(j.db.Entries)+len(j.db.TMXM) > 0 {
		ck.DB = j.db
	}
	blob, err := json.Marshal(ck)
	j.mu.Unlock()
	if err != nil {
		s.cfg.Logf("jobs: marshal checkpoint %s: %v", j.id, err)
		return
	}
	path := filepath.Join(s.cfg.Dir, "job-"+strings.TrimPrefix(j.id, "j-")+".json")
	if err := atomicWriteFile(path, blob, 0o644); err != nil {
		s.cfg.Logf("jobs: write checkpoint %s: %v", j.id, err)
	}
}

// loadSyndromeDB reads a syndrome database for a job's syndrome/tile
// fault models, rejecting empty or torn files with a descriptive error.
func loadSyndromeDB(path string) (*syndrome.DB, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob) == 0 {
		return nil, fmt.Errorf("jobs: syndrome database %s is empty (truncated write? re-run the RTL characterisation)", path)
	}
	db := syndrome.New()
	if err := json.Unmarshal(blob, db); err != nil {
		return nil, fmt.Errorf("jobs: syndrome database %s is truncated or corrupt: %w", path, err)
	}
	return db, nil
}

// atomicWriteFile writes data to a temp file in path's directory and
// renames it over path.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that reject directory fsync (it is optional on some) are
// tolerated: the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
