package faults

import (
	"math"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	if Masked.String() != "Masked" || SDC.String() != "SDC" || DUE.String() != "DUE" {
		t.Error("outcome names wrong")
	}
}

func TestModuleInventoryMatchesTableI(t *testing.T) {
	mods := AllModules()
	if len(mods) != 6 {
		t.Fatalf("Table I lists 6 modules, got %d", len(mods))
	}
	names := map[Module]string{
		ModFP32: "FP32", ModINT: "INT", ModSFU: "SFU",
		ModSFUCtl: "SFUctl", ModSched: "Scheduler", ModPipe: "Pipeline",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d name = %s, want %s", m, m, want)
		}
	}
}

func TestControlModules(t *testing.T) {
	if !ModSched.IsControl() || !ModSFUCtl.IsControl() {
		t.Error("scheduler and SFU controller are control modules (Table I)")
	}
	if ModFP32.IsControl() || ModINT.IsControl() || ModSFU.IsControl() {
		t.Error("functional units are not control modules")
	}
}

func TestRangeBoundsMatchPaper(t *testing.T) {
	lo, hi := RangeBounds(RangeSmall)
	if lo != 6.8e-6 || hi != 7.3e-6 {
		t.Errorf("S range = [%v, %v]", lo, hi)
	}
	lo, hi = RangeBounds(RangeMedium)
	if lo != 1.8 || hi != 59.4 {
		t.Errorf("M range = [%v, %v]", lo, hi)
	}
	lo, hi = RangeBounds(RangeLarge)
	if lo != 3.8e9 || hi != 12.5e9 {
		t.Errorf("L range = [%v, %v]", lo, hi)
	}
}

func TestClassifyMagnitude(t *testing.T) {
	tests := []struct {
		mag  float64
		want InputRange
	}{
		{0, RangeSmall},
		{1e-9, RangeSmall},
		{7e-6, RangeSmall},
		{0.5, RangeMedium},
		{30, RangeMedium},
		{1e6, RangeMedium},
		{5e9, RangeLarge},
		{math.Inf(1), RangeLarge},
	}
	for _, tt := range tests {
		if got := ClassifyMagnitude(tt.mag); got != tt.want {
			t.Errorf("ClassifyMagnitude(%v) = %v, want %v", tt.mag, got, tt.want)
		}
	}
}

func TestTallyAccounting(t *testing.T) {
	var ty Tally
	ty.Add(Masked, 0)
	ty.Add(SDC, 1)
	ty.Add(SDC, 28)
	ty.Add(DUE, 0)
	if ty.Injections != 4 || ty.Maskeds != 1 || ty.DUEs != 1 {
		t.Errorf("tally = %+v", ty)
	}
	if ty.SDCSingle != 1 || ty.SDCMulti != 1 || ty.SDCs() != 2 {
		t.Errorf("SDC split = %+v", ty)
	}
	if got := ty.AVFSDC(); got != 0.5 {
		t.Errorf("AVF SDC = %v", got)
	}
	if got := ty.AVFDUE(); got != 0.25 {
		t.Errorf("AVF DUE = %v", got)
	}
	if got := ty.MultiShare(); got != 0.5 {
		t.Errorf("multi share = %v", got)
	}
	if got := ty.AvgThreads(); got != 14.5 {
		t.Errorf("avg threads = %v", got)
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Add(SDC, 2)
	b.Add(DUE, 0)
	b.Add(Masked, 0)
	a.Merge(b)
	if a.Injections != 3 || a.DUEs != 1 || a.Maskeds != 1 || a.SDCMulti != 1 {
		t.Errorf("merged = %+v", a)
	}
}

func TestTallyZeroDivision(t *testing.T) {
	var ty Tally
	if ty.AVFSDC() != 0 || ty.AVFDUE() != 0 || ty.MultiShare() != 0 || ty.AvgThreads() != 0 {
		t.Error("zero tally must yield zero rates")
	}
}

func TestPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		PatSingle: "single", PatRow: "row", PatCol: "col",
		PatRowCol: "row+col", PatBlock: "block", PatRandom: "random", PatAll: "all",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d = %s, want %s", p, p, s)
		}
	}
}
