// Package faults defines the shared fault-effect taxonomy of the two-level
// framework: outcome classes (Masked / SDC / DUE, after Avizienis et al.),
// the GPU modules characterised at RTL level (Table I of the paper), and
// the report records produced by injection campaigns.
package faults

import "fmt"

// Outcome classifies the effect of one injected fault (§II-A).
type Outcome uint8

// Fault outcomes.
const (
	Masked Outcome = iota // no effect on the program output
	SDC                   // silent data corruption: wrong output
	DUE                   // detected unrecoverable error: crash or hang
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case DUE:
		return "DUE"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Module identifies an RTL injection site (Table I).
type Module uint8

// Characterised GPU modules.
const (
	ModFP32   Module = iota // FP32 functional units (8 lanes)
	ModINT                  // integer functional units (8 lanes)
	ModSFU                  // special function units (2, shared)
	ModSFUCtl               // SFU controller (arbitration)
	ModSched                // warp scheduler controller
	ModPipe                 // pipeline registers
	NumModules
)

// String implements fmt.Stringer.
func (m Module) String() string {
	switch m {
	case ModFP32:
		return "FP32"
	case ModINT:
		return "INT"
	case ModSFU:
		return "SFU"
	case ModSFUCtl:
		return "SFUctl"
	case ModSched:
		return "Scheduler"
	case ModPipe:
		return "Pipeline"
	default:
		return fmt.Sprintf("Module(%d)", uint8(m))
	}
}

// AllModules lists the characterised modules in Table I order.
func AllModules() []Module {
	return []Module{ModFP32, ModINT, ModSFU, ModSFUCtl, ModSched, ModPipe}
}

// IsControl reports whether the module is a control structure (Table I
// "Type" column); the paper finds control modules are the dominant source
// of DUEs and multi-thread corruptions.
func (m Module) IsControl() bool {
	return m == ModSFUCtl || m == ModSched
}

// InputRange buckets instruction operand magnitudes the way the paper's
// RTL campaigns do (§V-A).
type InputRange uint8

// Operand ranges: Small (~7e-6), Medium (1.8..59.4), Large (3.8e9..12.5e9).
const (
	RangeSmall InputRange = iota
	RangeMedium
	RangeLarge
	NumRanges
)

// String implements fmt.Stringer.
func (r InputRange) String() string {
	switch r {
	case RangeSmall:
		return "S"
	case RangeMedium:
		return "M"
	case RangeLarge:
		return "L"
	default:
		return fmt.Sprintf("Range(%d)", uint8(r))
	}
}

// AllRanges lists the three operand ranges.
func AllRanges() []InputRange { return []InputRange{RangeSmall, RangeMedium, RangeLarge} }

// RangeBounds returns the float bounds [lo, hi) of an input range as used
// for micro-benchmark input generation and for classifying observed
// operands during software injection: values below Small's hi bound get
// the S syndrome, above Large's lo bound the L syndrome, M otherwise.
func RangeBounds(r InputRange) (lo, hi float64) {
	switch r {
	case RangeSmall:
		return 6.8e-6, 7.3e-6
	case RangeMedium:
		return 1.8, 59.4
	default:
		return 3.8e9, 12.5e9
	}
}

// ClassifyMagnitude maps an operand magnitude to the syndrome range per the
// paper's rule: "any instruction with an input smaller than S (bigger than
// L) receives the S (L) syndrome, values in between receive the M
// syndrome" (§V-A).
func ClassifyMagnitude(mag float64) InputRange {
	_, sHi := RangeBounds(RangeSmall)
	lLo, _ := RangeBounds(RangeLarge)
	switch {
	case mag < sHi:
		return RangeSmall
	case mag > lLo:
		return RangeLarge
	default:
		return RangeMedium
	}
}

// Tally accumulates campaign outcomes, distinguishing single- and
// multi-thread SDCs as the paper's general report does (§IV-A).
type Tally struct {
	Injections int `json:"injections"`
	Maskeds    int `json:"masked"`
	SDCSingle  int `json:"sdc_single"`
	SDCMulti   int `json:"sdc_multi"`
	DUEs       int `json:"dues"`

	// CorruptedThreads accumulates the number of corrupted threads over
	// all SDCs, for the paper's average-threads-per-warp analysis (§V-B).
	CorruptedThreads int `json:"corrupted_threads"`
}

// Add records one injection outcome. threads is the number of corrupted
// threads (SDC outcomes only).
func (t *Tally) Add(o Outcome, threads int) {
	t.Injections++
	switch o {
	case Masked:
		t.Maskeds++
	case DUE:
		t.DUEs++
	case SDC:
		if threads > 1 {
			t.SDCMulti++
		} else {
			t.SDCSingle++
		}
		t.CorruptedThreads += threads
	}
}

// Merge adds another tally into t.
func (t *Tally) Merge(o Tally) {
	t.Injections += o.Injections
	t.Maskeds += o.Maskeds
	t.SDCSingle += o.SDCSingle
	t.SDCMulti += o.SDCMulti
	t.DUEs += o.DUEs
	t.CorruptedThreads += o.CorruptedThreads
}

// SDCs returns the total silent data corruptions.
func (t Tally) SDCs() int { return t.SDCSingle + t.SDCMulti }

// AVFSDC is the SDC architectural vulnerability factor: observed SDCs over
// injected faults (§IV-A).
func (t Tally) AVFSDC() float64 {
	if t.Injections == 0 {
		return 0
	}
	return float64(t.SDCs()) / float64(t.Injections)
}

// AVFDUE is the DUE architectural vulnerability factor.
func (t Tally) AVFDUE() float64 {
	if t.Injections == 0 {
		return 0
	}
	return float64(t.DUEs) / float64(t.Injections)
}

// MultiShare is the fraction of SDCs that corrupt more than one thread.
func (t Tally) MultiShare() float64 {
	if t.SDCs() == 0 {
		return 0
	}
	return float64(t.SDCMulti) / float64(t.SDCs())
}

// AvgThreads is the mean number of corrupted threads per SDC.
func (t Tally) AvgThreads() float64 {
	if t.SDCs() == 0 {
		return 0
	}
	return float64(t.CorruptedThreads) / float64(t.SDCs())
}

// Pattern classifies the spatial distribution of corrupted elements in a
// tiled-MxM output (Fig. 8 / Table II).
type Pattern uint8

// Spatial corruption patterns.
const (
	PatSingle Pattern = iota // one corrupted element (not listed in Table II)
	PatRow                   // corrupted elements confined to one row
	PatCol                   // confined to one column
	PatRowCol                // one row plus one column
	PatBlock                 // a rectangular sub-block
	PatRandom                // scattered with no structure
	PatAll                   // all (or almost all) elements corrupted
	NumPatterns
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatSingle:
		return "single"
	case PatRow:
		return "row"
	case PatCol:
		return "col"
	case PatRowCol:
		return "row+col"
	case PatBlock:
		return "block"
	case PatRandom:
		return "random"
	case PatAll:
		return "all"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}
