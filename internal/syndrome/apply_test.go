package syndrome

import (
	"math"
	"testing"
	"testing/quick"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/stats"
)

func TestApplyRelErrF32AlwaysCorrupts(t *testing.T) {
	// A syndrome represents an observed corruption: applying one must
	// change the bit pattern (for any finite value and positive error).
	f := func(bitsRaw uint32, relRaw uint16, neg bool) bool {
		bits := bitsRaw
		v := math.Float32frombits(bits)
		if v != v || math.IsInf(float64(v), 0) {
			return ApplyRelErrF32(bits, 0.5, neg) == bits // pass-through
		}
		rel := math.Pow(10, float64(relRaw%12)-9) // 1e-9 .. 1e2
		return ApplyRelErrF32(bits, rel, neg) != bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestApplyRelErrF32Magnitude(t *testing.T) {
	// rel = 1.0 (the paper's "100%" example) doubles or zeroes the value.
	bits := math.Float32bits(8)
	if got := math.Float32frombits(ApplyRelErrF32(bits, 1.0, false)); got != 16 {
		t.Errorf("100%% positive on 8 = %v, want 16", got)
	}
	if got := math.Float32frombits(ApplyRelErrF32(bits, 1.0, true)); got != 0 {
		t.Errorf("100%% negative on 8 = %v, want 0", got)
	}
	// Zero golden takes the error as absolute.
	if got := math.Float32frombits(ApplyRelErrF32(0, 0.25, false)); got != 0.25 {
		t.Errorf("zero golden = %v, want 0.25", got)
	}
}

func TestApplyRelErrF32SubUlpNudges(t *testing.T) {
	bits := math.Float32bits(1000)
	out := ApplyRelErrF32(bits, 1e-12, false) // far below ULP
	if out == bits {
		t.Fatal("sub-ULP syndrome produced no corruption")
	}
	if out != bits^1 {
		t.Errorf("sub-ULP nudge = %#x, want LSB flip of %#x", out, bits)
	}
}

func TestApplyRelErrI32(t *testing.T) {
	if got := int32(ApplyRelErrI32(uint32(int32(100)), 0.5, false)); got != 150 {
		t.Errorf("+50%% of 100 = %d, want 150", got)
	}
	if got := int32(ApplyRelErrI32(uint32(int32(100)), 0.5, true)); got != 50 {
		t.Errorf("-50%% of 100 = %d, want 50", got)
	}
	// Minimum visible change of 1.
	if got := int32(ApplyRelErrI32(uint32(int32(100)), 1e-9, false)); got != 101 {
		t.Errorf("tiny rel = %d, want 101", got)
	}
	// Saturation.
	if got := int32(ApplyRelErrI32(uint32(int32(2000000000)), 100, false)); got != math.MaxInt32 {
		t.Errorf("overflow = %d, want MaxInt32", got)
	}
	negBig := int32(-2000000000)
	if got := int32(ApplyRelErrI32(uint32(negBig), 100, true)); got != math.MinInt32 {
		t.Errorf("underflow = %d, want MinInt32", got)
	}
	// Zero golden: absolute, at least 1.
	if got := int32(ApplyRelErrI32(0, 3.6, false)); got != 4 {
		t.Errorf("zero golden = %d, want 4", got)
	}
}

func TestApplyRelErrI32AlwaysCorrupts(t *testing.T) {
	f := func(v int32, relRaw uint16, neg bool) bool {
		rel := math.Pow(10, float64(relRaw%10)-7)
		return int32(ApplyRelErrI32(uint32(v), rel, neg)) != v ||
			// saturation at the extremes may clamp back onto v
			v == math.MaxInt32 || v == math.MinInt32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestSampleFromModuleFocus(t *testing.T) {
	db := New()
	db.AddMicro(fakeMicroResult(opFADD(), rangeM(), modFP32(), 1))
	r := stats.NewRNG(2)
	if _, ok := db.SampleFrom(opFADD(), rangeM(), modFP32(), SamplePowerLaw, r); !ok {
		t.Error("exact module pool not found")
	}
	// Range fallback within the module.
	if _, ok := db.SampleFrom(opFADD(), rangeS(), modFP32(), SamplePowerLaw, r); !ok {
		t.Error("range fallback failed")
	}
	// Different module: no pool.
	if _, ok := db.SampleFrom(opFADD(), rangeM(), modSched(), SamplePowerLaw, r); ok {
		t.Error("foreign module must not sample")
	}
}

func TestPowerLawSamplerTruncation(t *testing.T) {
	db := New()
	e := db.AddMicro(fakeMicroResult(opFADD(), rangeM(), modFP32(), 9))
	// Force a pathological flat fit whose unbounded tail would explode.
	alpha := 1.01
	e.Fit.Alpha = alpha
	e.Fit.Xmin = 1e-6
	r := stats.NewRNG(3)
	for i := 0; i < 5000; i++ {
		v, ok := db.Sample(opFADD(), rangeM(), SamplePowerLaw, r)
		if !ok {
			t.Fatal("no sample")
		}
		if v > MaxRelErr {
			t.Fatalf("sample %v above the truncation bound", v)
		}
	}
}

// Small helpers avoiding repeated imports in table tests.
func opFADD() isa.Opcode        { return isa.OpFADD }
func rangeM() faults.InputRange { return faults.RangeMedium }
func rangeS() faults.InputRange { return faults.RangeSmall }
func modFP32() faults.Module    { return faults.ModFP32 }
func modSched() faults.Module   { return faults.ModSched }
