// Package syndrome implements the paper's fault-model database (§III,
// §V-C): for every (opcode, input range, injection site) it stores the
// distribution of relative errors observed at the instruction output
// during RTL fault injection, together with the fitted power law used by
// Equation 1 to generate syndromes during software injection. The t-MxM
// section stores the spatial corruption patterns of Fig. 8 / Table II
// with their per-pattern error distributions (Fig. 9).
//
// The database is what the paper publishes in its public repository [23];
// it is serialisable to JSON so third-party evaluations can reuse it.
package syndrome

import (
	"encoding/json"
	"fmt"
	"math"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/rtlfi"
	"gpufi/internal/stats"
)

// MaxSamples caps the per-entry reservoir of raw relative errors kept for
// empirical sampling.
const MaxSamples = 4096

// Key identifies one syndrome pool.
type Key struct {
	Op     isa.Opcode        `json:"op"`
	Range  faults.InputRange `json:"range"`
	Module faults.Module     `json:"module"`
}

// String implements fmt.Stringer.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Op, k.Range, k.Module)
}

// Entry is the characterisation of one (opcode, range, module) pool.
type Entry struct {
	Key        Key             `json:"key"`
	Tally      faults.Tally    `json:"tally"`
	Hist       *stats.LogHist  `json:"hist"`              // Fig. 5/6 series
	Fit        *stats.PowerLaw `json:"fit,omitempty"`     // Eq. 1 parameters
	Samples    []float64       `json:"samples,omitempty"` // capped reservoir
	InfShare   float64         `json:"inf_share"`         // NaN/Inf corruption share
	Median     float64         `json:"median"`            // §V-C input-dependence statistic
	AvgBits    float64         `json:"avg_bits"`          // avg corrupted bits per word (§V-C)
	AvgThreads float64         `json:"avg_threads"`
	MultiShare float64         `json:"multi_share"`
}

// TMXMEntry is the characterisation of a t-MxM campaign (§V-D).
type TMXMEntry struct {
	Module         faults.Module                     `json:"module"`
	Kind           mxm.TileKind                      `json:"kind"`
	Tally          faults.Tally                      `json:"tally"`
	Patterns       [faults.NumPatterns]int           `json:"patterns"`
	PatternFits    map[faults.Pattern]stats.PowerLaw `json:"pattern_fits,omitempty"`
	PatternSamples map[faults.Pattern][]float64      `json:"pattern_samples,omitempty"`
}

// DB is the complete fault-model database.
type DB struct {
	Entries map[Key]*Entry
	TMXM    map[TMXMKey]*TMXMEntry
}

// TMXMKey identifies a t-MxM pool.
type TMXMKey struct {
	Module faults.Module `json:"module"`
	Kind   mxm.TileKind  `json:"kind"`
}

// New returns an empty database.
func New() *DB {
	return &DB{
		Entries: make(map[Key]*Entry),
		TMXM:    make(map[TMXMKey]*TMXMEntry),
	}
}

// AddMicro ingests one micro-benchmark campaign result.
func (db *DB) AddMicro(res *rtlfi.Result) *Entry {
	key := Key{Op: res.Spec.Op, Range: res.Spec.Range, Module: res.Spec.Module}
	e := &Entry{Key: key, Tally: res.Tally, Hist: stats.PaperHist()}

	finite := make([]float64, 0, len(res.Syndromes))
	infs := 0
	for _, s := range res.Syndromes {
		e.Hist.Add(s)
		if math.IsInf(s, 0) || math.IsNaN(s) {
			infs++
			continue
		}
		if s > 0 {
			finite = append(finite, s)
		}
	}
	if len(res.Syndromes) > 0 {
		e.InfShare = float64(infs) / float64(len(res.Syndromes))
	}
	if len(finite) > 0 {
		e.Median = stats.Summarize(finite).Median
	}
	if fit, err := stats.FitPowerLaw(finite); err == nil {
		e.Fit = &fit
	}
	e.Samples = reservoir(finite, MaxSamples, res.Spec.Seed^0x5150)
	if len(res.BitsWrong) > 0 {
		sum := 0
		for _, b := range res.BitsWrong {
			sum += b
		}
		e.AvgBits = float64(sum) / float64(len(res.BitsWrong))
	}
	e.AvgThreads = res.Tally.AvgThreads()
	e.MultiShare = res.Tally.MultiShare()
	db.Entries[key] = e
	return e
}

// AddTMXM ingests one t-MxM campaign result.
func (db *DB) AddTMXM(res *rtlfi.TMXMResult) *TMXMEntry {
	e := &TMXMEntry{
		Module:         res.Spec.Module,
		Kind:           res.Spec.Kind,
		Tally:          res.Tally,
		Patterns:       res.Patterns,
		PatternFits:    make(map[faults.Pattern]stats.PowerLaw),
		PatternSamples: make(map[faults.Pattern][]float64),
	}
	for pat, errs := range res.PatternErrs {
		if fit, err := stats.FitPowerLaw(errs); err == nil {
			e.PatternFits[pat] = fit
		}
		e.PatternSamples[pat] = reservoir(errs, MaxSamples, res.Spec.Seed^uint64(pat)<<8)
	}
	db.TMXM[TMXMKey{Module: res.Spec.Module, Kind: res.Spec.Kind}] = e
	return e
}

// reservoir keeps at most n elements of xs, deterministically.
func reservoir(xs []float64, n int, seed uint64) []float64 {
	if len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	r := stats.NewRNG(seed)
	out := append([]float64(nil), xs[:n]...)
	for i := n; i < len(xs); i++ {
		if j := r.Intn(i + 1); j < n {
			out[j] = xs[i]
		}
	}
	return out
}

// dbJSON is the serialised form (maps with struct keys are not valid JSON).
type dbJSON struct {
	Entries []*Entry     `json:"entries"`
	TMXM    []*TMXMEntry `json:"tmxm"`
}

// MarshalJSON implements json.Marshaler.
func (db *DB) MarshalJSON() ([]byte, error) {
	out := dbJSON{}
	for _, op := range isa.AllOpcodes() {
		for _, rng := range faults.AllRanges() {
			for _, mod := range faults.AllModules() {
				if e, ok := db.Entries[Key{Op: op, Range: rng, Module: mod}]; ok {
					out.Entries = append(out.Entries, e)
				}
			}
		}
	}
	for _, mod := range faults.AllModules() {
		for _, kind := range mxm.AllTileKinds() {
			if e, ok := db.TMXM[TMXMKey{Module: mod, Kind: kind}]; ok {
				out.TMXM = append(out.TMXM, e)
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (db *DB) UnmarshalJSON(data []byte) error {
	var in dbJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	db.Entries = make(map[Key]*Entry, len(in.Entries))
	db.TMXM = make(map[TMXMKey]*TMXMEntry, len(in.TMXM))
	for _, e := range in.Entries {
		db.Entries[e.Key] = e
	}
	for _, e := range in.TMXM {
		db.TMXM[TMXMKey{Module: e.Module, Kind: e.Kind}] = e
	}
	return nil
}

// Lookup returns the entry for an exact key.
func (db *DB) Lookup(op isa.Opcode, rng faults.InputRange, mod faults.Module) (*Entry, bool) {
	e, ok := db.Entries[Key{Op: op, Range: rng, Module: mod}]
	return e, ok
}

// entriesFor returns all entries matching op and range across modules (the
// paper's "cocktail of fault syndromes", §VI), weighted below by their SDC
// counts.
func (db *DB) entriesFor(op isa.Opcode, rng faults.InputRange) []*Entry {
	var out []*Entry
	for _, mod := range faults.AllModules() {
		if e, ok := db.Entries[Key{Op: op, Range: rng, Module: mod}]; ok && e.Tally.SDCs() > 0 {
			out = append(out, e)
		}
	}
	return out
}

// SampleMode selects how relative errors are drawn from an entry.
type SampleMode uint8

// Sampling modes.
const (
	SamplePowerLaw  SampleMode = iota // Eq. 1 on the fitted power law
	SampleEmpirical                   // draw from the raw reservoir
)

// Sample draws one syndrome relative error for an instruction with the
// given opcode and input range, pooling the per-module entries into the
// paper's cocktail. ok is false when the database has no syndromes for the
// opcode (the injection should then be skipped).
func (db *DB) Sample(op isa.Opcode, rng faults.InputRange, mode SampleMode, r *stats.RNG) (float64, bool) {
	entries := db.entriesFor(op, rng)
	if len(entries) == 0 {
		// Fall back to any range for this opcode.
		for _, rr := range faults.AllRanges() {
			if es := db.entriesFor(op, rr); len(es) > 0 {
				entries = es
				break
			}
		}
	}
	if len(entries) == 0 {
		return 0, false
	}
	// Weight modules by observed SDC counts.
	total := 0
	for _, e := range entries {
		total += e.Tally.SDCs()
	}
	pick := r.Intn(total)
	var e *Entry
	for _, cand := range entries {
		pick -= cand.Tally.SDCs()
		if pick < 0 {
			e = cand
			break
		}
	}
	return e.sample(mode, r), true
}

// MaxRelErr truncates the fitted power-law sampler. The paper observes
// fewer than 0.05% of syndromes above 1e2 (§V-C); an unbounded Eq. 1 tail
// fitted with a small alpha would instead produce astronomically large
// relative errors with non-trivial probability — a fitting artefact, not
// an observed fault effect.
const MaxRelErr = 1e2

// sample draws from one entry.
func (e *Entry) sample(mode SampleMode, r *stats.RNG) float64 {
	fitted := func() float64 {
		v := e.Fit.Sample(r)
		if v > MaxRelErr {
			v = MaxRelErr
		}
		return v
	}
	if mode == SamplePowerLaw && e.Fit != nil {
		return fitted()
	}
	if len(e.Samples) == 0 {
		if e.Fit != nil {
			return fitted()
		}
		return 1.0 // degenerate pool: the paper's canonical 100% example
	}
	return e.Samples[r.Intn(len(e.Samples))]
}

// SampleFrom draws a syndrome relative error from one specific module's
// pools only — the paper's module-focused evaluation mode ("It is
// obviously possible to focus the software fault injection in just one
// module", §VI). Range fallback applies as in Sample.
func (db *DB) SampleFrom(op isa.Opcode, rng faults.InputRange, mod faults.Module,
	mode SampleMode, r *stats.RNG) (float64, bool) {
	e, ok := db.Entries[Key{Op: op, Range: rng, Module: mod}]
	if !ok || e.Tally.SDCs() == 0 {
		for _, rr := range faults.AllRanges() {
			if cand, found := db.Entries[Key{Op: op, Range: rr, Module: mod}]; found && cand.Tally.SDCs() > 0 {
				e = cand
				ok = true
				break
			}
		}
	}
	if !ok || e.Tally.SDCs() == 0 {
		return 0, false
	}
	return e.sample(mode, r), true
}
