package syndrome

import (
	"gpufi/internal/faults"
	"gpufi/internal/mxm"
	"gpufi/internal/stats"
)

// TileCorruption is one sampled t-MxM fault effect: which elements of an
// 8x8 tile are corrupted and the relative error to apply to each (§V-D:
// "we use Equation 1 to select the range of the relative errors for all
// the elements to corrupt; in this range, we again select a power law
// distribution for the corruption of the individual output elements").
type TileCorruption struct {
	Pattern faults.Pattern
	Mask    [mxm.Tile * mxm.Tile]bool
	RelErr  [mxm.Tile * mxm.Tile]float64
}

// Count returns the number of corrupted elements.
func (t *TileCorruption) Count() int {
	n := 0
	for _, b := range t.Mask {
		if b {
			n++
		}
	}
	return n
}

// SampleTile draws one tile corruption from the pooled t-MxM entries
// (scheduler and pipeline, weighted by SDC counts). ok is false when the
// database holds no t-MxM characterisation.
func (db *DB) SampleTile(r *stats.RNG) (TileCorruption, bool) {
	var pool []*TMXMEntry
	total := 0
	for _, e := range db.TMXM {
		if e.Tally.SDCs() > 0 {
			pool = append(pool, e)
			total += e.Tally.SDCs()
		}
	}
	if total == 0 {
		return TileCorruption{}, false
	}
	// Deterministic order: sort by (module, kind) via fixed enumeration.
	var ordered []*TMXMEntry
	for _, mod := range faults.AllModules() {
		for _, kind := range mxm.AllTileKinds() {
			for _, e := range pool {
				if e.Module == mod && e.Kind == kind {
					ordered = append(ordered, e)
				}
			}
		}
	}
	pick := r.Intn(total)
	var e *TMXMEntry
	for _, cand := range ordered {
		pick -= cand.Tally.SDCs()
		if pick < 0 {
			e = cand
			break
		}
	}
	return e.sampleTile(r), true
}

// sampleTile draws a corruption from one campaign entry.
func (e *TMXMEntry) sampleTile(r *stats.RNG) TileCorruption {
	// Pick a pattern proportionally to its observed frequency.
	total := 0
	for _, n := range e.Patterns {
		total += n
	}
	pick := r.Intn(total)
	pat := faults.PatSingle
	for p, n := range e.Patterns {
		pick -= n
		if pick < 0 {
			pat = faults.Pattern(p)
			break
		}
	}
	out := TileCorruption{Pattern: pat}
	out.fillMask(pat, r)

	// Per-element relative errors: Eq. 1 over the pattern's fitted power
	// law (falling back to the raw samples).
	fit, hasFit := e.PatternFits[pat]
	samples := e.PatternSamples[pat]
	for i, bad := range out.Mask {
		if !bad {
			continue
		}
		switch {
		case hasFit:
			out.RelErr[i] = fit.Sample(r)
			if out.RelErr[i] > MaxRelErr {
				out.RelErr[i] = MaxRelErr
			}
		case len(samples) > 0:
			out.RelErr[i] = samples[r.Intn(len(samples))]
		default:
			out.RelErr[i] = 1.0
		}
	}
	return out
}

// fillMask generates the element geometry of a pattern (Fig. 8: neither
// the position nor the block size are fixed).
func (t *TileCorruption) fillMask(pat faults.Pattern, r *stats.RNG) {
	const n = mxm.Tile
	set := func(row, col int) { t.Mask[row*n+col] = true }
	switch pat {
	case faults.PatSingle:
		set(r.Intn(n), r.Intn(n))
	case faults.PatRow:
		row := r.Intn(n)
		count := 2 + r.Intn(n-1)
		for _, c := range r.Perm(n)[:count] {
			set(row, c)
		}
	case faults.PatCol:
		col := r.Intn(n)
		count := 2 + r.Intn(n-1)
		for _, rw := range r.Perm(n)[:count] {
			set(rw, col)
		}
	case faults.PatRowCol:
		row, col := r.Intn(n), r.Intn(n)
		for c := 0; c < n; c++ {
			set(row, c)
		}
		for rw := 0; rw < n; rw++ {
			set(rw, col)
		}
	case faults.PatBlock:
		h := 2 + r.Intn(n/2)
		w := 2 + r.Intn(n/2)
		r0, c0 := r.Intn(n-h+1), r.Intn(n-w+1)
		for dr := 0; dr < h; dr++ {
			for dc := 0; dc < w; dc++ {
				set(r0+dr, c0+dc)
			}
		}
	case faults.PatAll:
		for i := range t.Mask {
			t.Mask[i] = true
		}
	default: // random scatter
		count := 3 + r.Intn(n)
		for _, i := range r.Perm(n * n)[:count] {
			t.Mask[i] = true
		}
	}
}
