package syndrome

import (
	"encoding/json"
	"math"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/rtlfi"
	"gpufi/internal/stats"
)

// fakeMicroResult builds a synthetic campaign result with a power-law
// syndrome pool.
func fakeMicroResult(op isa.Opcode, rng faults.InputRange, mod faults.Module, seed uint64) *rtlfi.Result {
	r := stats.NewRNG(seed)
	pl := stats.PowerLaw{Alpha: 2.2, Xmin: 1e-4}
	res := &rtlfi.Result{Spec: rtlfi.Spec{Op: op, Range: rng, Module: mod, Seed: seed}}
	for i := 0; i < 500; i++ {
		res.Tally.Add(faults.SDC, 1)
		res.Syndromes = append(res.Syndromes, pl.Sample(r))
		res.BitsWrong = append(res.BitsWrong, 20+r.Intn(10))
		res.ThreadCounts = append(res.ThreadCounts, 1)
	}
	for i := 0; i < 1500; i++ {
		res.Tally.Add(faults.Masked, 0)
	}
	return res
}

func TestAddMicroBuildsEntry(t *testing.T) {
	db := New()
	e := db.AddMicro(fakeMicroResult(isa.OpFADD, faults.RangeMedium, faults.ModFP32, 1))
	if e.Fit == nil {
		t.Fatal("power-law fit missing")
	}
	if math.Abs(e.Fit.Alpha-2.2) > 0.3 {
		t.Errorf("alpha = %v, want ~2.2", e.Fit.Alpha)
	}
	if e.Hist.N != 500 {
		t.Errorf("hist N = %d", e.Hist.N)
	}
	if e.AvgBits < 20 || e.AvgBits > 30 {
		t.Errorf("avg bits = %v", e.AvgBits)
	}
	if len(e.Samples) != 500 {
		t.Errorf("samples = %d", len(e.Samples))
	}
	if e.Median <= 0 {
		t.Errorf("median = %v", e.Median)
	}
}

func TestReservoirCaps(t *testing.T) {
	xs := make([]float64, 3*MaxSamples)
	for i := range xs {
		xs[i] = float64(i)
	}
	out := reservoir(xs, MaxSamples, 7)
	if len(out) != MaxSamples {
		t.Fatalf("reservoir len = %d", len(out))
	}
	// Contains elements beyond the first MaxSamples (it actually sampled).
	seenLate := false
	for _, v := range out {
		if v >= float64(MaxSamples) {
			seenLate = true
		}
	}
	if !seenLate {
		t.Error("reservoir never replaced early elements")
	}
}

func TestSampleCocktailAcrossModules(t *testing.T) {
	db := New()
	db.AddMicro(fakeMicroResult(isa.OpFADD, faults.RangeMedium, faults.ModFP32, 1))
	db.AddMicro(fakeMicroResult(isa.OpFADD, faults.RangeMedium, faults.ModPipe, 2))
	r := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		v, ok := db.Sample(isa.OpFADD, faults.RangeMedium, SamplePowerLaw, r)
		if !ok || v <= 0 {
			t.Fatalf("sample %d: %v %v", i, v, ok)
		}
	}
	// Empirical mode too.
	v, ok := db.Sample(isa.OpFADD, faults.RangeMedium, SampleEmpirical, r)
	if !ok || v <= 0 {
		t.Fatalf("empirical sample: %v %v", v, ok)
	}
}

func TestSampleFallsBackAcrossRanges(t *testing.T) {
	db := New()
	db.AddMicro(fakeMicroResult(isa.OpIMUL, faults.RangeLarge, faults.ModINT, 4))
	r := stats.NewRNG(5)
	if _, ok := db.Sample(isa.OpIMUL, faults.RangeSmall, SamplePowerLaw, r); !ok {
		t.Error("expected fallback to the large-range pool")
	}
	if _, ok := db.Sample(isa.OpFSIN, faults.RangeSmall, SamplePowerLaw, r); ok {
		t.Error("uncharacterised opcode must report !ok")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := New()
	db.AddMicro(fakeMicroResult(isa.OpFADD, faults.RangeSmall, faults.ModFP32, 1))
	db.AddMicro(fakeMicroResult(isa.OpIADD, faults.RangeLarge, faults.ModSched, 2))
	db.AddTMXM(fakeTMXMResult(faults.ModSched, mxm.TileMax, 9))

	blob, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var back DB
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || len(back.TMXM) != 1 {
		t.Fatalf("round trip lost entries: %d/%d", len(back.Entries), len(back.TMXM))
	}
	e, ok := back.Lookup(isa.OpFADD, faults.RangeSmall, faults.ModFP32)
	if !ok || e.Tally.SDCs() != 500 {
		t.Fatalf("lookup after round trip: %+v %v", e, ok)
	}
	r := stats.NewRNG(1)
	if _, ok := back.Sample(isa.OpIADD, faults.RangeLarge, SamplePowerLaw, r); !ok {
		t.Error("sampling from deserialised DB failed")
	}
	if _, ok := back.SampleTile(r); !ok {
		t.Error("tile sampling from deserialised DB failed")
	}
}

func fakeTMXMResult(mod faults.Module, kind mxm.TileKind, seed uint64) *rtlfi.TMXMResult {
	r := stats.NewRNG(seed)
	pl := stats.PowerLaw{Alpha: 2.0, Xmin: 1e-3}
	res := &rtlfi.TMXMResult{
		Spec:        rtlfi.TMXMSpec{Module: mod, Kind: kind, Seed: seed},
		PatternErrs: make(map[faults.Pattern][]float64),
	}
	dist := map[faults.Pattern]int{
		faults.PatSingle: 40,
		faults.PatRow:    30,
		faults.PatAll:    20,
		faults.PatBlock:  10,
	}
	for pat, n := range dist {
		res.Patterns[pat] = n
		for i := 0; i < n; i++ {
			threads := 1
			if pat != faults.PatSingle {
				threads = 8
			}
			res.Tally.Add(faults.SDC, threads)
			for k := 0; k < threads; k++ {
				res.PatternErrs[pat] = append(res.PatternErrs[pat], pl.Sample(r))
			}
		}
	}
	for i := 0; i < 900; i++ {
		res.Tally.Add(faults.Masked, 0)
	}
	return res
}

func TestSampleTileGeometry(t *testing.T) {
	db := New()
	db.AddTMXM(fakeTMXMResult(faults.ModPipe, mxm.TileRandom, 21))
	r := stats.NewRNG(2)
	counts := make(map[faults.Pattern]int)
	for i := 0; i < 2000; i++ {
		tc, ok := db.SampleTile(r)
		if !ok {
			t.Fatal("no tile sample")
		}
		counts[tc.Pattern]++
		// Mask and errors consistent.
		for j, bad := range tc.Mask {
			if bad && tc.RelErr[j] <= 0 {
				t.Fatalf("corrupted element %d without relative error", j)
			}
			if !bad && tc.RelErr[j] != 0 {
				t.Fatalf("uncorrupted element %d has error", j)
			}
		}
		// Geometry invariants per pattern.
		switch tc.Pattern {
		case faults.PatSingle:
			if tc.Count() != 1 {
				t.Fatalf("single pattern with %d elements", tc.Count())
			}
		case faults.PatAll:
			if tc.Count() != 64 {
				t.Fatalf("all pattern with %d elements", tc.Count())
			}
		case faults.PatRow:
			rows := map[int]bool{}
			for j, bad := range tc.Mask {
				if bad {
					rows[j/8] = true
				}
			}
			if len(rows) != 1 {
				t.Fatalf("row pattern spans %d rows", len(rows))
			}
		}
	}
	// Sampled pattern shares follow the stored census (40/30/20/10).
	if counts[faults.PatSingle] < 600 || counts[faults.PatRow] < 400 {
		t.Errorf("pattern distribution off: %v", counts)
	}
}

func TestSampleTileEmptyDB(t *testing.T) {
	db := New()
	if _, ok := db.SampleTile(stats.NewRNG(1)); ok {
		t.Error("empty DB must not sample tiles")
	}
}

func TestEndToEndFromRealCampaign(t *testing.T) {
	// Integration: a real (small) RTL campaign feeds the DB and sampling
	// works.
	res, err := rtlfi.RunMicro(rtlfi.Spec{
		Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32,
		NumFaults: 600, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := New()
	e := db.AddMicro(res)
	if e.Tally.SDCs() == 0 {
		t.Fatal("campaign produced no SDCs")
	}
	r := stats.NewRNG(8)
	for i := 0; i < 50; i++ {
		if _, ok := db.Sample(isa.OpFFMA, faults.RangeMedium, SampleEmpirical, r); !ok {
			t.Fatal("sampling real campaign failed")
		}
	}
	t.Logf("FFMA/M/FP32: sdc=%d avgBits=%.1f median=%.3g fit=%+v",
		e.Tally.SDCs(), e.AvgBits, e.Median, e.Fit)
}
