package syndrome

import "math"

// ApplyRelErrF32 perturbs a float32 bit pattern by a relative error, the
// paper's syndrome injection primitive: "the updated NVBitFI modifies the
// instruction output value of a relative amount (e.g., if the syndrome is
// 100%, NVBitFI multiplies by two the instruction output value)" (§IV-B).
// A zero golden value takes the error as an absolute perturbation. neg
// selects the perturbation direction.
func ApplyRelErrF32(bits uint32, rel float64, neg bool) uint32 {
	old := float64(math.Float32frombits(bits))
	var d float64
	switch {
	case math.IsNaN(old) || math.IsInf(old, 0):
		return bits // already broken; nothing meaningful to scale
	case old == 0:
		d = rel
	default:
		d = rel * math.Abs(old)
	}
	if neg {
		d = -d
	}
	out := math.Float32bits(float32(old + d))
	if out == bits {
		// The sampled relative error is below the value's ULP. The
		// syndrome database records *observed* corruptions, so applying
		// one must corrupt: nudge the mantissa LSB (the smallest visible
		// effect the RTL fault could have had on this value).
		out ^= 1
	}
	return out
}

// ApplyRelErrI32 is the signed-integer variant: the output changes by
// round(|v|*rel), at least 1, saturating on overflow.
func ApplyRelErrI32(bits uint32, rel float64, neg bool) uint32 {
	old := int64(int32(bits))
	mag := math.Abs(float64(old)) * rel
	if old == 0 {
		mag = rel
	}
	d := int64(math.Round(mag))
	if d == 0 {
		d = 1 // the fault did corrupt the value; force a visible change
	}
	if neg {
		d = -d
	}
	v := old + d
	if v > math.MaxInt32 {
		v = math.MaxInt32
	}
	if v < math.MinInt32 {
		v = math.MinInt32
	}
	return uint32(int32(v))
}
