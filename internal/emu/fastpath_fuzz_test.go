package emu

import (
	"fmt"
	"testing"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Differential fuzzing of the Tier-1 fast path against the Tier-0
// reference interpreter: random programs and launch shapes, decoded
// straight from fuzz bytes without kasm validation (so illegal opcodes,
// wild branch targets, out-of-range addresses and unstructured
// divergence are all reachable), must produce identical Result counters,
// identical errors, identical global images and — via per-instruction
// snapshots — identical register, predicate and SIMT-stack state at
// every instruction boundary.

// fuzzLaunch decodes a fuzz payload into a launch. Returns nil when the
// payload is too short to contain a single instruction.
func fuzzLaunch(data []byte) *Launch {
	if len(data) < 13 {
		return nil
	}
	grid := 1 + int(data[0])%2
	block := 1 + int(data[1])%64
	sharedWords := int(data[2]) % 16
	globalWords := 16 + int(data[3])%48
	seed := data[4]

	body := data[5:]
	n := len(body) / 8
	if n > 48 {
		n = 48
	}
	ins := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		c := body[i*8 : i*8+8]
		ins = append(ins, isa.Instr{
			Op:      isa.Opcode(c[0] % uint8(isa.NumOpcodes)),
			Guard:   isa.Pred(c[1] & 0x0F),
			UseImmB: c[1]&0x10 != 0,
			Dst:     isa.Reg(c[2] % isa.NumRegs),
			SrcA:    isa.Reg(c[3] % isa.NumRegs),
			SrcB:    isa.Reg(c[4] % isa.NumRegs),
			SrcC:    isa.Reg(c[5] % isa.NumRegs),
			PDst:    isa.Pred(c[6] & 0x0F),
			Cmp:     isa.Cmp(c[6] >> 4 % 8), // two values past numCmps
			Imm:     int32(int8(c[7])),
		})
	}
	// Branch targets and reconvergence points over the final program
	// length, with PC 0 standing in for "no reconvergence point" often
	// enough to exercise ErrUnstructured.
	progLen := len(ins) + 1
	for i := range ins {
		c := body[i*8 : i*8+8]
		ins[i].Target = uint16(int(c[2]) % progLen)
		ins[i].Reconv = uint16(int(c[5]) % progLen)
	}
	ins = append(ins, isa.Instr{Op: isa.OpEXIT, Guard: isa.PredTrue})

	global := make([]uint32, globalWords)
	x := uint32(seed) + 1
	for i := range global {
		x = x*1664525 + 1013904223
		global[i] = x
	}
	return &Launch{
		Prog:         &kasm.Program{Name: "fuzz", Instrs: ins},
		Grid:         grid,
		Block:        block,
		Global:       global,
		SharedWords:  sharedWords,
		MaxDynInstrs: 4096,
	}
}

type tierTrace struct {
	res    Result
	err    error
	global []uint32
	snaps  []*Snapshot
}

func runTier(l *Launch, noFastPath bool) *tierTrace {
	t := &tierTrace{global: append([]uint32(nil), l.Global...)}
	run := *l
	run.Global = t.global
	run.NoFastPath = noFastPath
	t.res, t.err = RunCheckpointed(&run, 1, 1, func(s *Snapshot) {
		t.snaps = append(t.snaps, s)
	})
	return t
}

func warpDiff(a, b *warp) string {
	switch {
	case a.id != b.id:
		return fmt.Sprintf("id %d vs %d", a.id, b.id)
	case a.live != b.live:
		return fmt.Sprintf("live %#x vs %#x", a.live, b.live)
	case a.atBar != b.atBar:
		return fmt.Sprintf("atBar %v vs %v", a.atBar, b.atBar)
	case a.done != b.done:
		return fmt.Sprintf("done %v vs %v", a.done, b.done)
	case a.regs != b.regs:
		return "register files differ"
	case a.preds != b.preds:
		return "predicate files differ"
	case len(a.stack) != len(b.stack):
		return fmt.Sprintf("stack depth %d vs %d", len(a.stack), len(b.stack))
	}
	for i := range a.stack {
		if a.stack[i] != b.stack[i] {
			return fmt.Sprintf("stack[%d] %+v vs %+v", i, a.stack[i], b.stack[i])
		}
	}
	return ""
}

func snapshotDiff(a, b *Snapshot) string {
	switch {
	case a.block != b.block:
		return fmt.Sprintf("block %d vs %d", a.block, b.block)
	case a.res != b.res:
		return fmt.Sprintf("res %+v vs %+v", a.res, b.res)
	case len(a.warps) != len(b.warps):
		return fmt.Sprintf("%d warps vs %d", len(a.warps), len(b.warps))
	}
	for i := range a.warps {
		if d := warpDiff(a.warps[i], b.warps[i]); d != "" {
			return fmt.Sprintf("warp %d: %s", i, d)
		}
	}
	for i := range a.shared {
		if a.shared[i] != b.shared[i] {
			return fmt.Sprintf("shared[%d] %#x vs %#x", i, a.shared[i], b.shared[i])
		}
	}
	for i := range a.global {
		if a.global[i] != b.global[i] {
			return fmt.Sprintf("global[%d] %#x vs %#x", i, a.global[i], b.global[i])
		}
	}
	return ""
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// diffTiers runs the payload through both interpreter tiers and fails on
// the first divergence.
func diffTiers(t *testing.T, data []byte) {
	t.Helper()
	l := fuzzLaunch(data)
	if l == nil {
		return
	}
	ref := runTier(l, true)
	fast := runTier(l, false)

	if errString(ref.err) != errString(fast.err) {
		t.Fatalf("error mismatch: Tier 0 %q, Tier 1 %q\n%s",
			errString(ref.err), errString(fast.err), l.Prog.Disasm())
	}
	if ref.res != fast.res {
		t.Fatalf("Result mismatch: Tier 0 %+v, Tier 1 %+v\n%s",
			ref.res, fast.res, l.Prog.Disasm())
	}
	for i := range ref.global {
		if ref.global[i] != fast.global[i] {
			t.Fatalf("global[%d] = %#x (Tier 0) vs %#x (Tier 1)\n%s",
				i, ref.global[i], fast.global[i], l.Prog.Disasm())
		}
	}
	if len(ref.snaps) != len(fast.snaps) {
		t.Fatalf("%d snapshots (Tier 0) vs %d (Tier 1)", len(ref.snaps), len(fast.snaps))
	}
	for i := range ref.snaps {
		if d := snapshotDiff(ref.snaps[i], fast.snaps[i]); d != "" {
			t.Fatalf("snapshot %d: %s\n%s", i, d, l.Prog.Disasm())
		}
	}
}

// fuzzSeedCorpus builds deterministic payloads that reach every opcode,
// guard polarity, immediate form, divergence shape and failure mode at
// least once. The same corpus seeds the fuzzer and backs the
// deterministic regression test below.
func fuzzSeedCorpus() [][]byte {
	instr := func(op isa.Opcode, guard, dst, srcA, srcB, srcC, pcmp, imm byte) []byte {
		return []byte{byte(op), guard, dst, srcA, srcB, srcC, pcmp, imm}
	}
	header := func(grid, block, shared, global, seed byte) []byte {
		return []byte{grid, block, shared, global, seed}
	}
	var corpus [][]byte

	// One payload per opcode: a small setup then the opcode itself with
	// register, immediate, guarded and negated-guard variants.
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		p := header(1, 33, 8, 16, byte(op)) // 33 threads: one full + one partial warp
		p = append(p, instr(isa.OpS2R, 7, 1, 0, 0, 0, 0, byte(isa.SRTid))...)
		p = append(p, instr(isa.OpISETP, 7, 0, 1, 1, 0, 0x21, 7)...)  // P1 = tid > 7
		p = append(p, instr(isa.OpMOV32I, 0x17, 2, 0, 0, 0, 0, 3)...) // imm form
		p = append(p, instr(op, 1, 3, 1, 2, 1, 0x42, 2)...)           // @P1 op
		p = append(p, instr(op, 9, 4, 2, 1, 2, 0x11, 1)...)           // @!P1 op
		p = append(p, instr(op, 0x17, 63, 1, 2, 3, 0x32, 4)...)       // imm, RZ dst
		corpus = append(corpus, p)
	}

	// Divergent branch with and without a reconvergence point, nested
	// divergence, and a branch whose target is PC 0 (backward loop until
	// the watchdog fires).
	div := header(2, 64, 4, 32, 9)
	div = append(div, instr(isa.OpS2R, 7, 1, 0, 0, 0, 0, byte(isa.SRLane))...)
	div = append(div, instr(isa.OpISETP, 7, 0, 1, 1, 0, 0x41, 15)...)
	div = append(div, instr(isa.OpBRA, 1, 5, 0, 0, 5, 0, 0)...)
	div = append(div, instr(isa.OpIADD, 7, 2, 2, 0, 0, 0x10, 1)...)
	div = append(div, instr(isa.OpGST, 7, 0, 63, 0, 2, 0, 3)...)
	corpus = append(corpus, div)

	unstructured := header(1, 64, 0, 16, 3)
	unstructured = append(unstructured, instr(isa.OpS2R, 7, 1, 0, 0, 0, 0, byte(isa.SRLane))...)
	unstructured = append(unstructured, instr(isa.OpISETP, 7, 0, 1, 1, 0, 0x21, 3)...)
	unstructured = append(unstructured, instr(isa.OpBRA, 1, 4, 0, 0, 0, 0, 0)...)
	corpus = append(corpus, unstructured)

	loop := header(1, 32, 0, 16, 5)
	loop = append(loop, instr(isa.OpIADD, 7, 1, 1, 0, 0, 0x10, 1)...)
	loop = append(loop, instr(isa.OpBRA, 7, 0, 0, 0, 0, 0, 0)...)
	corpus = append(corpus, loop)

	// Barrier: uniform (released) and diverged (fault).
	bar := header(1, 48, 4, 16, 2)
	bar = append(bar, instr(isa.OpSST, 7, 0, 63, 0, 1, 0, 1)...)
	bar = append(bar, instr(isa.OpBAR, 7, 0, 0, 0, 0, 0, 0)...)
	bar = append(bar, instr(isa.OpSLD, 7, 2, 63, 0, 0, 0, 1)...)
	corpus = append(corpus, bar)

	barDiv := header(1, 64, 0, 16, 2)
	barDiv = append(barDiv, instr(isa.OpS2R, 7, 1, 0, 0, 0, 0, byte(isa.SRLane))...)
	barDiv = append(barDiv, instr(isa.OpISETP, 7, 0, 1, 1, 0, 0x21, 9)...)
	barDiv = append(barDiv, instr(isa.OpEXIT, 1, 0, 0, 0, 0, 0, 0)...)
	barDiv = append(barDiv, instr(isa.OpBAR, 7, 0, 0, 0, 0, 0, 0)...)
	corpus = append(corpus, barDiv)

	// Out-of-range memory: a huge negative immediate offset faults
	// mid-warp after some lanes already stored.
	badAddr := header(1, 32, 0, 16, 4)
	badAddr = append(badAddr, instr(isa.OpS2R, 7, 1, 0, 0, 0, 0, byte(isa.SRLane))...)
	badAddr = append(badAddr, instr(isa.OpIMUL, 0x17, 1, 1, 0, 0, 0, 7)...)
	badAddr = append(badAddr, instr(isa.OpGST, 7, 0, 1, 0, 1, 0, 0)...)
	corpus = append(corpus, badAddr)

	return corpus
}

func FuzzEmuFastPathVsReference(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffTiers(t, data)
	})
}

// TestEmuFastPathCorpus pins the deterministic corpus so the tier
// equivalence is checked on every plain `go test` run (including -race
// in CI), not only when the fuzzer runs.
func TestEmuFastPathCorpus(t *testing.T) {
	for i, seed := range fuzzSeedCorpus() {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			diffTiers(t, seed)
		})
	}
}
