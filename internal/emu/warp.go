package emu

import (
	"math"
	"math/bits"
	"sync"

	"gpufi/internal/fp32"
	"gpufi/internal/isa"
)

// stackEntry is one level of the PDOM (immediate post-dominator)
// reconvergence stack. The top entry is the executing path: its nextPC and
// mask define what runs next; when nextPC reaches reconv the entry pops and
// the parent path resumes.
type stackEntry struct {
	nextPC int
	mask   uint32
	reconv int // -1 when the entry has no reconvergence point
}

type warp struct {
	id    int
	stack []stackEntry
	regs  [isa.NumRegs][WarpSize]uint32
	preds [isa.NumPreds]uint32 // per-lane bit masks
	live  uint32               // non-exited lanes
	atBar bool
	done  bool
}

// warpPool recycles warp state across blocks and launches: a warp's
// register file is ~8 KB, and a campaign's replays would otherwise
// allocate one per warp per block per launch. newWarp resets recycled
// warps in place to exactly the fresh-warp state, so pooling is
// invisible to execution.
var warpPool = sync.Pool{New: func() any { return new(warp) }}

func newWarp(id, lanes int) *warp {
	w := warpPool.Get().(*warp)
	mask := uint32(0xFFFFFFFF)
	if lanes < WarpSize {
		mask = 1<<uint(lanes) - 1
	}
	w.id = id
	w.live = mask
	w.atBar = false
	w.done = false
	w.regs = [isa.NumRegs][WarpSize]uint32{}
	w.preds = [isa.NumPreds]uint32{}
	w.preds[isa.PT] = 0xFFFFFFFF
	w.stack = append(w.stack[:0], stackEntry{nextPC: 0, mask: mask, reconv: -1})
	return w
}

// releaseWarps returns block-final warps to the pool. Callers must not
// retain any reference: snapshots are safe because they clone.
func releaseWarps(warps []*warp) {
	for _, w := range warps {
		warpPool.Put(w)
	}
}

// evalPred returns the lane mask where predicate p holds.
func (w *warp) evalPred(p isa.Pred) uint32 {
	m := w.preds[p.Index()]
	if p.Neg() {
		m = ^m
	}
	return m
}

// predLane reports whether predicate p holds in one lane.
func (w *warp) predLane(p isa.Pred, lane int) bool {
	return w.evalPred(p)>>uint(lane)&1 == 1
}

func (w *warp) setPredLane(p isa.Pred, lane int, v bool) {
	idx := p.Index()
	if idx == isa.PT {
		return // PT is read-only
	}
	bit := uint32(1) << uint(lane)
	if v != p.Neg() { // a negated destination stores the complement
		w.preds[idx] |= bit
	} else {
		w.preds[idx] &^= bit
	}
}

func (w *warp) setReg(r isa.Reg, lane int, v uint32) {
	if r == isa.RZ {
		return
	}
	w.regs[r][lane] = v
}

// step executes one warp-level instruction.
func (ex *exec) step(blockID int, w *warp) error {
	// Resolve the SIMT stack: drop empty paths and reconverged paths.
	for {
		if len(w.stack) == 0 {
			w.done = true
			return nil
		}
		top := &w.stack[len(w.stack)-1]
		if top.mask&w.live == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.reconv >= 0 && top.nextPC == top.reconv {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.nextPC
	prog := ex.l.Prog.Instrs
	if pc < 0 || pc >= len(prog) {
		// Structurally impossible for kasm output (trailing EXIT), but
		// reachable under fault injection.
		return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrIllegalInstr}
	}
	in := prog[pc]
	active := top.mask & w.live
	guard := active & w.evalPred(in.Guard)

	hooks := &ex.l.Hooks
	prepared := false
	if hooks.Pre != nil && ex.armed && guard != 0 {
		ex.prepareEvent(blockID, w, pc, in, guard)
		prepared = true
		hooks.Pre(&ex.ev)
		guard = active & w.evalPred(in.Guard) // the hook may have changed it
	}

	n := uint64(bits.OnesCount32(guard))
	ex.res.DynThreadInstrs += n
	ex.res.PerOpcode[in.Op] += n
	if ex.res.DynThreadInstrs > ex.budget {
		return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrWatchdog}
	}

	capture := hooks.Post != nil && ex.armed && guard != 0
	if capture {
		if prepared {
			ex.ev.Active = guard // Pre may have changed the guard; the rest holds
		} else {
			ex.prepareEvent(blockID, w, pc, in, guard)
		}
	}

	switch in.Op {
	case isa.OpBRA:
		if err := ex.execBranch(blockID, w, top, pc, in, active, guard); err != nil {
			return err
		}
	case isa.OpEXIT:
		for i := range w.stack {
			w.stack[i].mask &^= guard
		}
		w.live &^= guard
		top.nextPC = pc + 1
	case isa.OpBAR:
		if active != w.live {
			return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBarrierDivergence}
		}
		w.atBar = true
		top.nextPC = pc + 1
	case isa.OpNOP:
		top.nextPC = pc + 1
	default:
		if err := ex.execData(blockID, w, pc, in, guard, capture); err != nil {
			return err
		}
		top.nextPC = pc + 1
	}

	if capture {
		hooks.Post(&ex.ev)
	}
	return nil
}

// execBranch implements the PDOM stack transition for BRA.
func (ex *exec) execBranch(blockID int, w *warp, top *stackEntry, pc int, in isa.Instr, active, taken uint32) error {
	ntaken := active &^ taken
	switch {
	case taken == 0:
		top.nextPC = pc + 1
	case ntaken == 0:
		top.nextPC = int(in.Target)
	default:
		if in.Reconv == 0 {
			return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrUnstructured}
		}
		if len(w.stack)+2 > maxStackDepth {
			return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrStackOverflow}
		}
		r := int(in.Reconv)
		top.nextPC = r
		w.stack = append(w.stack,
			stackEntry{nextPC: pc + 1, mask: ntaken, reconv: r},
			stackEntry{nextPC: int(in.Target), mask: taken, reconv: r},
		)
	}
	return nil
}

// execData executes a non-control instruction across the guarded lanes.
func (ex *exec) execData(blockID int, w *warp, pc int, in isa.Instr, guard uint32, capture bool) error {
	global := ex.l.Global
	for m := guard; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		a := w.regs[in.SrcA][lane]
		var b uint32
		if in.UseImmB {
			b = uint32(in.Imm)
		} else {
			b = w.regs[in.SrcB][lane]
		}
		c := w.regs[in.SrcC][lane]
		if capture {
			ex.ev.srcA[lane], ex.ev.srcB[lane], ex.ev.srcC[lane] = a, b, c
		}

		var d uint32
		switch in.Op {
		case isa.OpFADD:
			d = fp32.AddBits(a, b)
		case isa.OpFMUL:
			d = fp32.MulBits(a, b)
		case isa.OpFFMA:
			d = fp32.FmaBits(a, b, c)
		case isa.OpIADD:
			d = a + b
		case isa.OpIMUL:
			d = uint32(int32(a) * int32(b))
		case isa.OpIMAD:
			d = uint32(int32(a)*int32(b) + int32(c))
		case isa.OpFSIN:
			d = math.Float32bits(fp32.Sin(math.Float32frombits(a)))
		case isa.OpFEXP:
			d = math.Float32bits(fp32.Exp(math.Float32frombits(a)))
		case isa.OpFRCP:
			d = math.Float32bits(fp32.Rcp(math.Float32frombits(a)))
		case isa.OpFRSQRT:
			d = math.Float32bits(fp32.Rsqrt(math.Float32frombits(a)))
		case isa.OpGLD:
			addr := int64(int32(a)) + int64(in.Imm)
			if addr < 0 || addr >= int64(len(global)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			if mt := ex.l.Mem; mt != nil {
				mt.Reads[addr>>6] |= 1 << (uint(addr) & 63)
			}
			d = global[addr]
		case isa.OpGST:
			addr := int64(int32(a)) + int64(in.Imm)
			if addr < 0 || addr >= int64(len(global)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			if mt := ex.l.Mem; mt != nil {
				mt.Writes[addr>>6] |= 1 << (uint(addr) & 63)
			}
			global[addr] = c
			d = c
		case isa.OpSLD:
			addr := int64(int32(a)) + int64(in.Imm)
			if addr < 0 || addr >= int64(len(ex.shared)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			d = ex.shared[addr]
		case isa.OpSST:
			addr := int64(int32(a)) + int64(in.Imm)
			if addr < 0 || addr >= int64(len(ex.shared)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			ex.shared[addr] = c
			d = c
		case isa.OpISET:
			if in.Cmp.EvalI(int32(a), int32(b)) {
				d = 0xFFFFFFFF
			}
		case isa.OpISETP:
			w.setPredLane(in.PDst, lane, in.Cmp.EvalI(int32(a), int32(b)))
			continue
		case isa.OpFSETP:
			w.setPredLane(in.PDst, lane,
				in.Cmp.EvalF(math.Float32frombits(a), math.Float32frombits(b)))
			continue
		case isa.OpMOV:
			d = a
		case isa.OpMOV32I:
			d = uint32(in.Imm)
		case isa.OpSEL:
			if w.predLane(in.PDst, lane) {
				d = a
			} else {
				d = b
			}
		case isa.OpS2R:
			d = ex.specialReg(isa.SpecialReg(in.Imm), blockID, w.id, lane)
		case isa.OpSHL:
			d = a << (b & 31)
		case isa.OpSHR:
			d = a >> (b & 31)
		case isa.OpAND:
			d = a & b
		case isa.OpOR:
			d = a | b
		case isa.OpXOR:
			d = a ^ b
		case isa.OpIMNMX:
			x, y := int32(a), int32(b)
			if w.predLane(in.PDst, lane) == (x < y) {
				d = uint32(x)
			} else {
				d = uint32(y)
			}
		case isa.OpFMNMX:
			fa, fb := math.Float32frombits(a), math.Float32frombits(b)
			if w.predLane(in.PDst, lane) {
				d = math.Float32bits(fp32.Min(fa, fb))
			} else {
				d = math.Float32bits(fp32.Max(fa, fb))
			}
		case isa.OpF2I:
			d = uint32(fp32.F2I(math.Float32frombits(a)))
		case isa.OpI2F:
			d = math.Float32bits(fp32.I2F(int32(a)))
		default:
			return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrIllegalInstr}
		}

		if in.Op.HasDst() {
			w.setReg(in.Dst, lane, d)
		}
		if capture {
			ex.ev.dst[lane] = d
		}
	}
	return nil
}

func (ex *exec) specialReg(sr isa.SpecialReg, blockID, warpID, lane int) uint32 {
	switch sr {
	case isa.SRTid:
		return uint32(warpID*WarpSize + lane)
	case isa.SRCtaid:
		return uint32(blockID)
	case isa.SRNtid:
		return uint32(ex.l.Block)
	case isa.SRNctaid:
		return uint32(ex.l.Grid)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarpID:
		return uint32(warpID)
	default:
		return 0
	}
}
