package emu

import (
	"math"
	"math/bits"

	"gpufi/internal/fp32"
	"gpufi/internal/isa"
)

// Tier-1 fast path: a stripped stepper over the pre-decoded program
// (decode.go) used whenever no armed per-instruction hooks are attached —
// the state of every golden run, every unarmed countdown prefix, every
// fast-forwarded suffix and the post-fault tail of every faulty replay.
//
// stepFast is bit-identical to step (the Tier-0 reference interpreter)
// by construction: it performs the same SIMT stack transitions, counts
// the same instructions in the same order, raises the same LaunchError
// values at the same points (including partial memory effects of a warp
// instruction that faults mid-warp) and writes the same architectural
// state. What it removes is the per-instruction hook dispatch and the
// per-lane work the reference interpreter repeats 32 times: the opcode
// switch, the HasDst/RZ destination test, operand index resolution and
// event capture. The equivalence is enforced by
// FuzzEmuFastPathVsReference and, indirectly, by every campaign
// preparation (internal/swfi verifies the fast golden run against a
// hook-instrumented recorded run bit-for-bit).

const fullWarp = uint32(0xFFFFFFFF)

// stepFast executes one warp-level instruction on the decoded program.
func (ex *exec) stepFast(blockID int, w *warp) error {
	// Resolve the SIMT stack: drop empty paths and reconverged paths.
	for {
		if len(w.stack) == 0 {
			w.done = true
			return nil
		}
		top := &w.stack[len(w.stack)-1]
		if top.mask&w.live == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.reconv >= 0 && top.nextPC == top.reconv {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.nextPC
	ins := ex.dp.ins
	if pc < 0 || pc >= len(ins) {
		return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrIllegalInstr}
	}
	d := &ins[pc]
	active := top.mask & w.live
	guard := active & (w.preds[d.gIdx] ^ d.gXor)

	n := uint64(bits.OnesCount32(guard))
	ex.res.DynThreadInstrs += n
	ex.res.PerOpcode[d.op] += n
	if ex.res.DynThreadInstrs > ex.budget {
		return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrWatchdog}
	}

	switch d.kind {
	case kData:
		if guard != 0 {
			if err := ex.execDataFast(blockID, w, pc, d, guard); err != nil {
				return err
			}
		}
		top.nextPC = pc + 1
	case kBRA:
		ntaken := active &^ guard
		switch {
		case guard == 0:
			top.nextPC = pc + 1
		case ntaken == 0:
			top.nextPC = int(d.target)
		default:
			if d.reconv == 0 {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrUnstructured}
			}
			if len(w.stack)+2 > maxStackDepth {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrStackOverflow}
			}
			r := int(d.reconv)
			top.nextPC = r
			w.stack = append(w.stack,
				stackEntry{nextPC: pc + 1, mask: ntaken, reconv: r},
				stackEntry{nextPC: int(d.target), mask: guard, reconv: r},
			)
		}
	case kEXIT:
		for i := range w.stack {
			w.stack[i].mask &^= guard
		}
		w.live &^= guard
		top.nextPC = pc + 1
	case kBAR:
		if active != w.live {
			return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBarrierDivergence}
		}
		w.atBar = true
		top.nextPC = pc + 1
	default: // kNOP
		top.nextPC = pc + 1
	}
	return nil
}

// dstRow returns the register row an instruction writes, or the scratch
// row when the destination is RZ (or the opcode writes no register), so
// the per-lane loops need no destination test. Routing dropped results
// through scratch preserves the invariant that regs[RZ] stays all-zero.
func (ex *exec) dstRow(w *warp, d *dinstr) *[WarpSize]uint32 {
	if d.writeDst {
		return &w.regs[d.dst]
	}
	return &ex.scratch
}

// srcBRow returns the second-operand row, broadcasting an immediate into
// the scratch immediate row when UseImmB is set. Hot integer ops
// specialize the immediate form inline instead.
func (ex *exec) srcBRow(w *warp, d *dinstr) *[WarpSize]uint32 {
	if !d.useImm {
		return &w.regs[d.srcB]
	}
	b := uint32(d.imm)
	r := &ex.immRow
	for i := range r {
		r[i] = b
	}
	return r
}

// execDataFast executes a non-control instruction across the guarded
// lanes, dispatching the opcode once per warp instruction. Lanes are
// visited in ascending order, exactly as the reference interpreter does,
// so overlapping stores and mid-warp address faults behave identically.
// guard is never zero here.
func (ex *exec) execDataFast(blockID int, w *warp, pc int, d *dinstr, guard uint32) error {
	switch d.op {
	case isa.OpFADD:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = fp32.AddBits(a[l], b[l])
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = fp32.AddBits(a[l], b[l])
			}
		}
	case isa.OpFMUL:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = fp32.MulBits(a[l], b[l])
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = fp32.MulBits(a[l], b[l])
			}
		}
	case isa.OpFFMA:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		c := &w.regs[d.srcC]
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = fp32.FmaBits(a[l], b[l], c[l])
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = fp32.FmaBits(a[l], b[l], c[l])
			}
		}
	case isa.OpIADD:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		if d.useImm {
			b := uint32(d.imm)
			if guard == fullWarp {
				for l := 0; l < WarpSize; l++ {
					dst[l] = a[l] + b
				}
			} else {
				for m := guard; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					dst[l] = a[l] + b
				}
			}
		} else {
			b := &w.regs[d.srcB]
			if guard == fullWarp {
				for l := 0; l < WarpSize; l++ {
					dst[l] = a[l] + b[l]
				}
			} else {
				for m := guard; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					dst[l] = a[l] + b[l]
				}
			}
		}
	case isa.OpIMUL:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = uint32(int32(a[l]) * int32(b[l]))
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = uint32(int32(a[l]) * int32(b[l]))
			}
		}
	case isa.OpIMAD:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		c := &w.regs[d.srcC]
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = uint32(int32(a[l])*int32(b[l]) + int32(c[l]))
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = uint32(int32(a[l])*int32(b[l]) + int32(c[l]))
			}
		}
	case isa.OpFSIN:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			dst[l] = math.Float32bits(fp32.Sin(math.Float32frombits(a[l])))
		}
	case isa.OpFEXP:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			dst[l] = math.Float32bits(fp32.Exp(math.Float32frombits(a[l])))
		}
	case isa.OpFRCP:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			dst[l] = math.Float32bits(fp32.Rcp(math.Float32frombits(a[l])))
		}
	case isa.OpFRSQRT:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			dst[l] = math.Float32bits(fp32.Rsqrt(math.Float32frombits(a[l])))
		}
	case isa.OpGLD:
		g := ex.l.Global
		mt := ex.l.Mem
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		imm := int64(d.imm)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			addr := int64(int32(a[l])) + imm
			if uint64(addr) >= uint64(len(g)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			if mt != nil {
				mt.Reads[addr>>6] |= 1 << (uint(addr) & 63)
			}
			dst[l] = g[addr]
		}
	case isa.OpGST:
		g := ex.l.Global
		mt := ex.l.Mem
		a, c := &w.regs[d.srcA], &w.regs[d.srcC]
		imm := int64(d.imm)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			addr := int64(int32(a[l])) + imm
			if uint64(addr) >= uint64(len(g)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			if mt != nil {
				mt.Writes[addr>>6] |= 1 << (uint(addr) & 63)
			}
			g[addr] = c[l]
		}
	case isa.OpSLD:
		sh := ex.shared
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		imm := int64(d.imm)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			addr := int64(int32(a[l])) + imm
			if uint64(addr) >= uint64(len(sh)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			dst[l] = sh[addr]
		}
	case isa.OpSST:
		sh := ex.shared
		a, c := &w.regs[d.srcA], &w.regs[d.srcC]
		imm := int64(d.imm)
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			addr := int64(int32(a[l])) + imm
			if uint64(addr) >= uint64(len(sh)) {
				return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrBadAddress}
			}
			sh[addr] = c[l]
		}
	case isa.OpISET:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		cmp := d.cmp
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			if cmp.EvalI(int32(a[l]), int32(b[l])) {
				dst[l] = 0xFFFFFFFF
			} else {
				dst[l] = 0
			}
		}
	case isa.OpISETP:
		if d.pIdx == uint8(isa.PT) {
			return nil // PT is read-only; the reference interpreter drops the write
		}
		a, b := &w.regs[d.srcA], ex.srcBRow(w, d)
		cmp, neg := d.cmp, d.pNeg
		pbits := w.preds[d.pIdx]
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			if cmp.EvalI(int32(a[l]), int32(b[l])) != neg {
				pbits |= 1 << uint(l)
			} else {
				pbits &^= 1 << uint(l)
			}
		}
		w.preds[d.pIdx] = pbits
	case isa.OpFSETP:
		if d.pIdx == uint8(isa.PT) {
			return nil
		}
		a, b := &w.regs[d.srcA], ex.srcBRow(w, d)
		cmp, neg := d.cmp, d.pNeg
		pbits := w.preds[d.pIdx]
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			v := cmp.EvalF(math.Float32frombits(a[l]), math.Float32frombits(b[l]))
			if v != neg {
				pbits |= 1 << uint(l)
			} else {
				pbits &^= 1 << uint(l)
			}
		}
		w.preds[d.pIdx] = pbits
	case isa.OpMOV:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l]
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l]
			}
		}
	case isa.OpMOV32I:
		dst := ex.dstRow(w, d)
		v := uint32(d.imm)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = v
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = v
			}
		}
	case isa.OpSEL:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		p := w.preds[d.pIdx] ^ d.pXor
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			if p>>uint(l)&1 == 1 {
				dst[l] = a[l]
			} else {
				dst[l] = b[l]
			}
		}
	case isa.OpS2R:
		dst := ex.dstRow(w, d)
		switch sr := isa.SpecialReg(d.imm); sr {
		case isa.SRTid:
			base := uint32(w.id * WarpSize)
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = base + uint32(l)
			}
		case isa.SRLane:
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = uint32(l)
			}
		default:
			v := ex.specialReg(sr, blockID, w.id, 0)
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = v
			}
		}
	case isa.OpSHL:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l] << (b[l] & 31)
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l] << (b[l] & 31)
			}
		}
	case isa.OpSHR:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l] >> (b[l] & 31)
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l] >> (b[l] & 31)
			}
		}
	case isa.OpAND:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l] & b[l]
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l] & b[l]
			}
		}
	case isa.OpOR:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l] | b[l]
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l] | b[l]
			}
		}
	case isa.OpXOR:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = a[l] ^ b[l]
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = a[l] ^ b[l]
			}
		}
	case isa.OpIMNMX:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		p := w.preds[d.pIdx] ^ d.pXor
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			x, y := int32(a[l]), int32(b[l])
			if (p>>uint(l)&1 == 1) == (x < y) {
				dst[l] = uint32(x)
			} else {
				dst[l] = uint32(y)
			}
		}
	case isa.OpFMNMX:
		a, b, dst := &w.regs[d.srcA], ex.srcBRow(w, d), ex.dstRow(w, d)
		p := w.preds[d.pIdx] ^ d.pXor
		for m := guard; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			fa, fb := math.Float32frombits(a[l]), math.Float32frombits(b[l])
			if p>>uint(l)&1 == 1 {
				dst[l] = math.Float32bits(fp32.Min(fa, fb))
			} else {
				dst[l] = math.Float32bits(fp32.Max(fa, fb))
			}
		}
	case isa.OpF2I:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = uint32(fp32.F2I(math.Float32frombits(a[l])))
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = uint32(fp32.F2I(math.Float32frombits(a[l])))
			}
		}
	case isa.OpI2F:
		a, dst := &w.regs[d.srcA], ex.dstRow(w, d)
		if guard == fullWarp {
			for l := 0; l < WarpSize; l++ {
				dst[l] = math.Float32bits(fp32.I2F(int32(a[l])))
			}
		} else {
			for m := guard; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				dst[l] = math.Float32bits(fp32.I2F(int32(a[l])))
			}
		}
	default:
		return &LaunchError{Block: blockID, Warp: w.id, PC: pc, Err: ErrIllegalInstr}
	}
	return nil
}
