package emu

import (
	"sync"
	"sync/atomic"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// The Tier-1 fast path interprets a pre-decoded program representation
// instead of raw isa.Instr values. Decoding resolves once, per program,
// everything the reference interpreter re-derives on every executed lane:
// guard predicate index and polarity, operand register indices, the
// HasDst/RZ destination test, UseImmB selection and branch targets. The
// decoded form is cached per *kasm.Program, which is sound because
// programs are built once by kasm.Finalize and never mutated afterwards
// (a property every existing workload already relies on for label
// resolution).

// dispatch classes of a decoded instruction. Everything that is not
// control flow goes through execDataFast.
const (
	kData uint8 = iota
	kBRA
	kEXIT
	kBAR
	kNOP
)

// dinstr is one pre-decoded instruction. Field order keeps the struct
// compact; it is copied by pointer only.
type dinstr struct {
	op   isa.Opcode
	kind uint8
	gIdx uint8 // guard predicate index
	dst  uint8
	srcA uint8
	srcB uint8
	srcC uint8
	pIdx uint8 // PDst predicate index
	pNeg bool  // PDst negation (write complement, read complement)
	// writeDst is HasDst with the RZ sink resolved at decode time: the
	// fast path routes non-writing results into a scratch row instead of
	// testing Dst != RZ per lane.
	writeDst bool
	useImm   bool
	cmp      isa.Cmp
	gXor     uint32 // 0 or ^0: guard mask = preds[gIdx] ^ gXor
	pXor     uint32 // 0 or ^0: PDst read mask = preds[pIdx] ^ pXor
	imm      int32
	target   int32
	reconv   int32
}

// dprog is a decoded program. len(ins) always equals len(Prog.Instrs) of
// the program it was decoded from.
type dprog struct {
	ins []dinstr
}

func decodeProgram(p *kasm.Program) *dprog {
	dp := &dprog{ins: make([]dinstr, len(p.Instrs))}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		d := &dp.ins[i]
		d.op = in.Op
		d.gIdx = uint8(in.Guard.Index())
		if in.Guard.Neg() {
			d.gXor = ^uint32(0)
		}
		d.dst = uint8(in.Dst)
		d.srcA = uint8(in.SrcA)
		d.srcB = uint8(in.SrcB)
		d.srcC = uint8(in.SrcC)
		d.pIdx = uint8(in.PDst.Index())
		d.pNeg = in.PDst.Neg()
		if d.pNeg {
			d.pXor = ^uint32(0)
		}
		d.writeDst = in.Op.HasDst() && in.Dst != isa.RZ
		d.useImm = in.UseImmB
		d.cmp = in.Cmp
		d.imm = in.Imm
		d.target = int32(in.Target)
		d.reconv = int32(in.Reconv)
		switch in.Op {
		case isa.OpBRA:
			d.kind = kBRA
		case isa.OpEXIT:
			d.kind = kEXIT
		case isa.OpBAR:
			d.kind = kBAR
		case isa.OpNOP:
			d.kind = kNOP
		default:
			d.kind = kData
		}
	}
	return dp
}

// decodeCache maps *kasm.Program to its decoded form. Production
// workloads build a handful of programs per process, so the cache stays
// tiny; the size cap only matters for adversarial users (fuzzing) that
// launch thousands of ephemeral programs, where holding every key alive
// would otherwise leak.
var (
	decodeCache     sync.Map // *kasm.Program -> *dprog
	decodeCacheSize atomic.Int64
)

const decodeCacheMax = 4096

func decoded(p *kasm.Program) *dprog {
	if v, ok := decodeCache.Load(p); ok {
		return v.(*dprog)
	}
	dp := decodeProgram(p)
	if _, loaded := decodeCache.LoadOrStore(p, dp); !loaded {
		if decodeCacheSize.Add(1) > decodeCacheMax {
			// Drop everything rather than track recency: decoding is
			// cheap and long-lived programs repopulate on next launch.
			decodeCache.Range(func(k, _ any) bool {
				decodeCache.Delete(k)
				return true
			})
			decodeCacheSize.Store(0)
		}
	}
	return dp
}
