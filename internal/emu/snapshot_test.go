package emu

import (
	"testing"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// sharedRevProg exercises every piece of snapshot state: divergence (an If
// on the thread id), shared memory with a barrier (block-level reversal)
// and global loads/stores. Layout [in(n) | out(n)], out[gid] =
// 2*in[block-reversed gid] + (tid < ntid/2 ? 1 : 0).
func sharedRevProg(t *testing.T, block int32) *kasm.Program {
	t.Helper()
	b := kasm.New("sharedrev")
	b.S2R(rTid, isa.SRTid)
	b.S2R(rCta, isa.SRCtaid)
	b.S2R(rNtid, isa.SRNtid)
	b.IMad(rAddr, rCta, rNtid, rTid) // global thread id
	b.Gld(rA, rAddr, 0)
	b.Sst(rTid, 0, rA)
	b.Bar()
	b.IAddI(rTmp, rNtid, -1)
	b.MovI(rB, -1)
	b.IMad(rTmp, rTid, rB, rTmp) // ntid-1-tid
	b.Sld(rC, rTmp, 0)
	b.IAdd(rC, rC, rC)
	b.ISetPI(isa.P(0), isa.CmpLT, rTid, block/2)
	b.If(isa.P(0), func() {
		b.IAddI(rC, rC, 1)
	})
	b.S2R(rB, isa.SRNctaid)
	b.IMul(rB, rB, rNtid) // total threads = n
	b.IAdd(rAddr, rAddr, rB)
	b.Gst(rAddr, 0, rC) // out[gid]
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sharedRevLaunch(prog *kasm.Program, g []uint32, hooks Hooks) *Launch {
	return &Launch{Prog: prog, Grid: 2, Block: 64, Global: g, SharedWords: 64, Hooks: hooks}
}

func sharedRevInput(n int) []uint32 {
	g := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		g[i] = uint32(i * 3)
	}
	return g
}

// TestSnapshotResumeBitIdentical resumes from every checkpoint of a
// divergence+barrier+shared-memory kernel and demands the exact final
// memory image and Result counters of an uninterrupted run.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	const n = 128
	prog := sharedRevProg(t, 64)

	gWant := sharedRevInput(n)
	want, err := Run(sharedRevLaunch(prog, gWant, Hooks{}))
	if err != nil {
		t.Fatal(err)
	}

	var snaps []*Snapshot
	gRec := sharedRevInput(n)
	got, err := RunCheckpointed(sharedRevLaunch(prog, gRec, Hooks{}), 7, 97, func(s *Snapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checkpointed Result = %+v, want %+v", got, want)
	}
	if !equalWords(gRec, gWant) {
		t.Fatal("checkpointed run diverged from plain run")
	}
	if len(snaps) < 5 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}

	sawSecondBlock := false
	for i, s := range snaps {
		if s.block == 1 {
			sawSecondBlock = true
		}
		g := make([]uint32, 2*n)
		res, err := Resume(sharedRevLaunch(prog, g, Hooks{}), s)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", i, err)
		}
		if res != want {
			t.Fatalf("snapshot %d: resumed Result = %+v, want %+v", i, res, want)
		}
		if !equalWords(g, gWant) {
			t.Fatalf("snapshot %d: resumed memory image diverged", i)
		}
	}
	if !sawSecondBlock {
		t.Fatal("no snapshot landed in the second block; widen the test")
	}
}

// TestCountdownArming checks hook-free countdown execution: hooks stay
// inert before ArmAfter, OnArm hands over the prefix counters, and the
// armed tail observes every remaining instruction.
func TestCountdownArming(t *testing.T) {
	const n = 128
	prog := sharedRevProg(t, 64)

	gWant := sharedRevInput(n)
	want, err := Run(sharedRevLaunch(prog, gWant, Hooks{}))
	if err != nil {
		t.Fatal(err)
	}

	for _, armAfter := range []uint64{0, 1, 333, want.DynThreadInstrs / 2, want.DynThreadInstrs} {
		var armedAt uint64
		armCalls := 0
		var hookInstrs uint64
		g := sharedRevInput(n)
		res, err := Run(sharedRevLaunch(prog, g, Hooks{
			Post:     func(ev *Event) { hookInstrs += uint64(ev.ActiveCount()) },
			ArmAfter: armAfter,
			OnArm: func(r *Result) {
				armCalls++
				armedAt = r.DynThreadInstrs
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if res != want {
			t.Fatalf("armAfter=%d: Result = %+v, want %+v", armAfter, res, want)
		}
		if !equalWords(g, gWant) {
			t.Fatalf("armAfter=%d: output diverged", armAfter)
		}
		if armCalls != 1 {
			t.Fatalf("armAfter=%d: OnArm called %d times", armAfter, armCalls)
		}
		// The hook must be live before the counter crosses ArmAfter, and
		// the hooked tail plus the unhooked prefix must cover the run.
		if armedAt+WarpSize <= armAfter {
			t.Fatalf("armAfter=%d: armed too late, at %d", armAfter, armedAt)
		}
		if armedAt+hookInstrs != want.DynThreadInstrs {
			t.Fatalf("armAfter=%d: prefix %d + hooked %d != total %d",
				armAfter, armedAt, hookInstrs, want.DynThreadInstrs)
		}
	}
}

// TestCountdownOnResume arms a countdown on a resumed launch and checks
// the combination still reproduces the uninstrumented run.
func TestCountdownOnResume(t *testing.T) {
	const n = 128
	prog := sharedRevProg(t, 64)

	gWant := sharedRevInput(n)
	want, err := Run(sharedRevLaunch(prog, gWant, Hooks{}))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	gRec := sharedRevInput(n)
	if _, err := RunCheckpointed(sharedRevLaunch(prog, gRec, Hooks{}), 100, 100, func(s *Snapshot) {
		snaps = append(snaps, s)
	}); err != nil {
		t.Fatal(err)
	}
	s := snaps[len(snaps)/2]
	armAfter := s.Res().DynThreadInstrs + 50
	var hookInstrs, armedAt uint64
	g := make([]uint32, 2*n)
	res, err := Resume(sharedRevLaunch(prog, g, Hooks{
		Post:     func(ev *Event) { hookInstrs += uint64(ev.ActiveCount()) },
		ArmAfter: armAfter,
		OnArm:    func(r *Result) { armedAt = r.DynThreadInstrs },
	}), s)
	if err != nil {
		t.Fatal(err)
	}
	if res != want || !equalWords(g, gWant) {
		t.Fatalf("countdown resume diverged: Result = %+v, want %+v", res, want)
	}
	if armedAt < s.Res().DynThreadInstrs || armedAt+WarpSize <= armAfter {
		t.Fatalf("armed at %d (snapshot %d, armAfter %d)", armedAt, s.Res().DynThreadInstrs, armAfter)
	}
	if armedAt+hookInstrs != want.DynThreadInstrs {
		t.Fatalf("prefix %d + hooked %d != total %d", armedAt, hookInstrs, want.DynThreadInstrs)
	}
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
