package emu

import "fmt"

// Snapshot captures the complete architectural state of a launch at an
// instruction boundary: the current block's warps (registers, predicates,
// SIMT stacks, barrier/exit state), shared memory, the full global-memory
// image and the Result counters. Blocks run sequentially, so blocks before
// the captured one are fully reflected in global memory and blocks after
// it have not started — the snapshot plus the launch description is
// everything Resume needs.
//
// A Snapshot owns deep copies of all mutable state and is immutable after
// capture, so any number of Resume calls (including concurrent ones) can
// fork from it.
type Snapshot struct {
	block  int
	warps  []*warp
	shared []uint32
	global []uint32
	res    Result
}

// Res returns the launch's Result counters at the capture point.
func (s *Snapshot) Res() Result { return s.res }

// clone deep-copies a warp. The regs and preds arrays copy by value; only
// the SIMT stack needs an explicit copy.
func (w *warp) clone() *warp {
	c := *w
	c.stack = append([]stackEntry(nil), w.stack...)
	return &c
}

func (ex *exec) snapshot(blockID int, warps []*warp) *Snapshot {
	s := &Snapshot{
		block:  blockID,
		warps:  make([]*warp, len(warps)),
		shared: append([]uint32(nil), ex.shared...),
		global: append([]uint32(nil), ex.l.Global...),
		res:    ex.res,
	}
	for i, w := range warps {
		s.warps[i] = w.clone()
	}
	return s
}

// RunCheckpointed executes the launch like Run while handing evenly spaced
// Snapshots to sink: the first once DynThreadInstrs reaches first, then
// one every `every` thread-instructions (boundaries that fall inside one
// warp instruction or between blocks land on the next instruction
// boundary). A nil sink degrades to plain Run.
func RunCheckpointed(l *Launch, first, every uint64, sink func(*Snapshot)) (Result, error) {
	ex := newExec(l)
	if sink != nil {
		if every == 0 {
			return ex.res, fmt.Errorf("%w: zero checkpoint interval", ErrBadLaunch)
		}
		ex.ckSink, ex.ckNext, ex.ckEvery = sink, first, every
	}
	return ex.run()
}

// Resume continues a launch from a Snapshot taken during an execution of
// the same launch description. l.Global must be the same length as the
// snapshotted image; its contents are overwritten with the snapshot's.
// The returned Result includes the snapshotted prefix counts, so a resumed
// run reports exactly what a full run would.
func Resume(l *Launch, s *Snapshot) (Result, error) {
	ex := newExec(l)
	if err := ex.validate(); err != nil {
		return ex.res, err
	}
	if len(l.Global) != len(s.global) {
		return ex.res, fmt.Errorf("%w: global image %d words, snapshot has %d", ErrBadLaunch, len(l.Global), len(s.global))
	}
	if s.block >= l.Grid {
		return ex.res, fmt.Errorf("%w: snapshot block %d outside grid %d", ErrBadLaunch, s.block, l.Grid)
	}
	copy(l.Global, s.global)
	ex.shared = append(ex.shared[:0], s.shared...)
	ex.res = s.res
	warps := make([]*warp, len(s.warps))
	for i, w := range s.warps {
		warps[i] = w.clone()
	}
	if err := ex.blockLoop(s.block, warps); err != nil {
		return ex.res, err
	}
	releaseWarps(warps) // the clones are block-final and unreferenced
	for b := s.block + 1; b < l.Grid; b++ {
		if err := ex.runBlock(b); err != nil {
			return ex.res, err
		}
	}
	return ex.res, nil
}
