package emu

import (
	"errors"
	"math"
	"testing"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Register conventions for the test kernels.
const (
	rTid  = isa.Reg(1)
	rA    = isa.Reg(2)
	rB    = isa.Reg(3)
	rC    = isa.Reg(4)
	rAddr = isa.Reg(5)
	rTmp  = isa.Reg(6)
	rCta  = isa.Reg(7)
	rNtid = isa.Reg(8)
)

// vecAddProg computes out[i] = a[i] + b[i] for global layout
// [a(n) | b(n) | out(n)].
func vecAddProg(t *testing.T, n int32) *kasm.Program {
	t.Helper()
	b := kasm.New("vecadd")
	b.S2R(rTid, isa.SRTid)
	b.S2R(rCta, isa.SRCtaid)
	b.S2R(rNtid, isa.SRNtid)
	b.IMad(rTid, rCta, rNtid, rTid) // global thread id
	b.ISetPI(isa.P(0), isa.CmpLT, rTid, n)
	b.GldIf(isa.P(0), rA, rTid, 0)
	b.IAddI(rAddr, rTid, n)
	b.GldIf(isa.P(0), rB, rAddr, 0)
	b.FAdd(rC, rA, rB)
	b.IAddI(rAddr, rTid, 2*n)
	b.GstIf(isa.P(0), rAddr, 0, rC)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func f32(v float32) uint32      { return math.Float32bits(v) }
func fromBits(b uint32) float32 { return math.Float32frombits(b) }

func TestVectorAdd(t *testing.T) {
	const n = 100
	prog := vecAddProg(t, n)
	global := make([]uint32, 3*n)
	for i := 0; i < n; i++ {
		global[i] = f32(float32(i))
		global[n+i] = f32(float32(2 * i))
	}
	res, err := Run(&Launch{Prog: prog, Grid: 2, Block: 64, Global: global})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := fromBits(global[2*n+i]); got != float32(3*i) {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(3*i))
		}
	}
	if res.DynThreadInstrs == 0 || res.PerOpcode[isa.OpFADD] == 0 {
		t.Error("instruction counters not populated")
	}
	// 128 threads execute FADD (it is unguarded).
	if res.PerOpcode[isa.OpFADD] != 128 {
		t.Errorf("FADD count = %d, want 128", res.PerOpcode[isa.OpFADD])
	}
	// Only n threads execute the guarded store.
	if res.PerOpcode[isa.OpGST] != n {
		t.Errorf("GST count = %d, want %d", res.PerOpcode[isa.OpGST], n)
	}
}

func TestIfElseDivergence(t *testing.T) {
	// Even lanes write 1.0, odd lanes write 2.0.
	b := kasm.New("ifelse")
	b.S2R(rTid, isa.SRTid)
	b.AndI(rTmp, rTid, 1)
	b.ISetPI(isa.P(0), isa.CmpEQ, rTmp, 0)
	b.IfElse(isa.P(0),
		func() { b.MovF(rC, 1.0) },
		func() { b.MovF(rC, 2.0) },
	)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := float32(1.0)
		if i%2 == 1 {
			want = 2.0
		}
		if got := fromBits(global[i]); got != want {
			t.Fatalf("lane %d = %v, want %v", i, got, want)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each thread increments a counter tid+1 times: out[tid] = tid+1.
	b := kasm.New("divloop")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 0)
	b.MovI(rTmp, 0)
	b.Label("top")
	b.IAddI(rC, rC, 1)
	b.IAddI(rTmp, rTmp, 1)
	b.ISetP(isa.P(0), isa.CmpLE, rTmp, rTid)
	b.BraIf(isa.P(0), "top")
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 64)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 64, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if global[i] != uint32(i+1) {
			t.Fatalf("out[%d] = %d, want %d", i, global[i], i+1)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	// out = 3 for lanes where tid%4==0, 2 for tid%2==0 otherwise, 1 else.
	b := kasm.New("nested")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 1)
	b.AndI(rTmp, rTid, 1)
	b.ISetPI(isa.P(0), isa.CmpEQ, rTmp, 0)
	b.If(isa.P(0), func() {
		b.MovI(rC, 2)
		b.AndI(rTmp, rTid, 3)
		b.ISetPI(isa.P(1), isa.CmpEQ, rTmp, 0)
		b.If(isa.P(1), func() {
			b.MovI(rC, 3)
		})
	})
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(1)
		switch {
		case i%4 == 0:
			want = 3
		case i%2 == 0:
			want = 2
		}
		if global[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, global[i], want)
		}
	}
}

func TestBarrierAndSharedMemory(t *testing.T) {
	// Block-wide reverse through shared memory: out[i] = in[blockDim-1-i].
	const blockDim = 64
	b := kasm.New("reverse")
	b.S2R(rTid, isa.SRTid)
	b.Gld(rA, rTid, 0)
	b.Sst(rTid, 0, rA)
	b.Bar()
	b.MovI(rTmp, blockDim-1)
	b.IMadI(rAddr, rTid, -1, rTmp) // blockDim-1-tid
	b.Sld(rB, rAddr, 0)
	b.Gst(rTid, blockDim, rB)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 2*blockDim)
	for i := 0; i < blockDim; i++ {
		global[i] = uint32(i * 10)
	}
	if _, err := Run(&Launch{
		Prog: prog, Grid: 1, Block: blockDim,
		Global: global, SharedWords: blockDim,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blockDim; i++ {
		if global[blockDim+i] != uint32((blockDim-1-i)*10) {
			t.Fatalf("out[%d] = %d", i, global[blockDim+i])
		}
	}
}

func TestPartialWarp(t *testing.T) {
	b := kasm.New("partial")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 7)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 50)
	res, err := Run(&Launch{Prog: prog, Grid: 1, Block: 50, Global: global})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if global[i] != 7 {
			t.Fatalf("thread %d did not run", i)
		}
	}
	if res.PerOpcode[isa.OpGST] != 50 {
		t.Errorf("GST count = %d, want 50", res.PerOpcode[isa.OpGST])
	}
}

func TestGuardedEarlyExit(t *testing.T) {
	// Lanes >= 16 exit before the store.
	b := kasm.New("earlyexit")
	b.S2R(rTid, isa.SRTid)
	b.ISetPI(isa.P(0), isa.CmpGE, rTid, 16)
	b.Emit(isa.Instr{Op: isa.OpEXIT, Guard: isa.P(0)})
	b.MovI(rC, 9)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(9)
		if i >= 16 {
			want = 0
		}
		if global[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, global[i], want)
		}
	}
}

func TestRZIsAlwaysZero(t *testing.T) {
	b := kasm.New("rz")
	b.MovI(isa.RZ, 42) // write to RZ must be dropped
	b.S2R(rTid, isa.SRTid)
	b.Gst(rTid, 0, isa.RZ)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := []uint32{0xFF}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 1, Global: global}); err != nil {
		t.Fatal(err)
	}
	if global[0] != 0 {
		t.Errorf("RZ stored %d, want 0", global[0])
	}
}

func TestOutOfBoundsLoadIsDUE(t *testing.T) {
	b := kasm.New("oob")
	b.MovI(rAddr, 1000)
	b.Gld(rA, rAddr, 0)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: make([]uint32, 8)})
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
	var le *LaunchError
	if !errors.As(err, &le) || le.PC != 1 {
		t.Errorf("LaunchError position = %+v", le)
	}
}

func TestWatchdogCatchesInfiniteLoop(t *testing.T) {
	b := kasm.New("hang")
	b.Label("top")
	b.Bra("top")
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Launch{
		Prog: prog, Grid: 1, Block: 32,
		Global: nil, MaxDynInstrs: 10000,
	})
	if !errors.Is(err, ErrWatchdog) {
		t.Errorf("err = %v, want ErrWatchdog", err)
	}
}

func TestBarrierDivergenceIsDUE(t *testing.T) {
	// Half the warp branches around the barrier: illegal.
	b := kasm.New("badbar")
	b.S2R(rTid, isa.SRTid)
	b.AndI(rTmp, rTid, 1)
	b.ISetPI(isa.P(0), isa.CmpEQ, rTmp, 0)
	b.If(isa.P(0), func() { b.Bar() })
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Launch{Prog: prog, Grid: 1, Block: 32})
	if !errors.Is(err, ErrBarrierDivergence) {
		t.Errorf("err = %v, want ErrBarrierDivergence", err)
	}
}

func TestMultiWarpBarrierRelease(t *testing.T) {
	// Two warps must both pass the barrier.
	b := kasm.New("twowarps")
	b.S2R(rTid, isa.SRTid)
	b.Bar()
	b.MovI(rC, 5)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 64)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 64, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i, v := range global {
		if v != 5 {
			t.Fatalf("thread %d stalled at barrier", i)
		}
	}
}

func TestTranscendentalOps(t *testing.T) {
	b := kasm.New("sfu")
	b.S2R(rTid, isa.SRTid)
	b.Gld(rA, rTid, 0)
	b.FSin(rB, rA)
	b.Gst(rTid, 32, rB)
	b.FExp(rB, rA)
	b.Gst(rTid, 64, rB)
	b.FRcp(rB, rA)
	b.Gst(rTid, 96, rB)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 128)
	for i := 0; i < 32; i++ {
		global[i] = f32(0.02 + float32(i)*0.04) // (0, pi/2)
	}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		x := float64(fromBits(global[i]))
		if got := float64(fromBits(global[32+i])); math.Abs(got-math.Sin(x)) > 1e-6 {
			t.Errorf("sin(%v) = %v", x, got)
		}
		if got := float64(fromBits(global[64+i])); math.Abs(got-math.Exp(x))/math.Exp(x) > 1e-5 {
			t.Errorf("exp(%v) = %v", x, got)
		}
		if got := float64(fromBits(global[96+i])); math.Abs(got-1/x)/(1/x) > 1e-5 {
			t.Errorf("rcp(%v) = %v", x, got)
		}
	}
}

func TestPostHookObservesAndCorrupts(t *testing.T) {
	const n = 32
	prog := vecAddProg(t, n)
	global := make([]uint32, 3*n)
	for i := 0; i < n; i++ {
		global[i] = f32(1)
		global[n+i] = f32(2)
	}
	seenFADD := 0
	hooks := Hooks{Post: func(ev *Event) {
		if ev.Instr.Op != isa.OpFADD {
			return
		}
		seenFADD += ev.ActiveCount()
		// Corrupt lane 3's result: multiply by 2 (a 100% relative error,
		// the paper's example syndrome).
		if d, ok := ev.DstValue(3); ok {
			ev.CorruptDst(3, f32(fromBits(d)*2))
		}
		if ev.SrcA(3) != f32(1) || ev.SrcB(3) != f32(2) {
			t.Errorf("operand capture wrong: %x %x", ev.SrcA(3), ev.SrcB(3))
		}
	}}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: n, Global: global, Hooks: hooks}); err != nil {
		t.Fatal(err)
	}
	if seenFADD != n {
		t.Errorf("hook saw %d FADD threads, want %d", seenFADD, n)
	}
	for i := 0; i < n; i++ {
		want := float32(3)
		if i == 3 {
			want = 6
		}
		if got := fromBits(global[2*n+i]); got != want {
			t.Errorf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestPreHookFlipsBranch(t *testing.T) {
	// All lanes should take the branch; the Pre hook clears lane 5's
	// predicate so it falls through and stores 111 instead.
	b := kasm.New("flip")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 0)
	b.ISetPI(isa.P(0), isa.CmpGE, rTid, 0) // always true
	b.BraIf(isa.P(0), "skip")
	b.MovI(rC, 111)
	b.Label("skip")
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	hooks := Hooks{Pre: func(ev *Event) {
		if ev.Instr.Op == isa.OpBRA {
			ev.SetPredBit(5, 0, false)
		}
	}}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global, Hooks: hooks}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(0)
		if i == 5 {
			want = 111
		}
		if global[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, global[i], want)
		}
	}
}

func TestCorruptStoreValue(t *testing.T) {
	b := kasm.New("st")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 10)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	hooks := Hooks{Post: func(ev *Event) {
		if ev.Instr.Op == isa.OpGST {
			if !ev.CorruptDst(7, 99) {
				t.Error("GST output not corruptible")
			}
		}
	}}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global, Hooks: hooks}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(10)
		if i == 7 {
			want = 99
		}
		if global[i] != want {
			t.Errorf("mem[%d] = %d, want %d", i, global[i], want)
		}
	}
}

func TestNthActiveLane(t *testing.T) {
	ev := Event{Active: 0b10110}
	wants := []int{1, 2, 4, -1}
	for n, want := range wants {
		if got := ev.NthActiveLane(n); got != want {
			t.Errorf("NthActiveLane(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBadLaunchConfigs(t *testing.T) {
	b := kasm.New("k")
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	cases := []*Launch{
		{Prog: nil, Grid: 1, Block: 32},
		{Prog: prog, Grid: 0, Block: 32},
		{Prog: prog, Grid: 1, Block: 0},
		{Prog: prog, Grid: 1, Block: MaxBlockThreads + 1},
	}
	for i, l := range cases {
		if _, err := Run(l); !errors.Is(err, ErrBadLaunch) {
			t.Errorf("case %d: err = %v, want ErrBadLaunch", i, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	const n = 64
	run := func() []uint32 {
		prog := vecAddProg(t, n)
		global := make([]uint32, 3*n)
		for i := 0; i < n; i++ {
			global[i] = f32(float32(i) * 0.1)
			global[n+i] = f32(float32(i) * 0.3)
		}
		if _, err := Run(&Launch{Prog: prog, Grid: 2, Block: 32, Global: global}); err != nil {
			t.Fatal(err)
		}
		return global
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func BenchmarkEmulatorVecAdd(b *testing.B) {
	const n = 1024
	bb := kasm.New("vecadd")
	bb.S2R(rTid, isa.SRTid)
	bb.S2R(rCta, isa.SRCtaid)
	bb.S2R(rNtid, isa.SRNtid)
	bb.IMad(rTid, rCta, rNtid, rTid)
	bb.Gld(rA, rTid, 0)
	bb.Gld(rB, rTid, n)
	bb.FAdd(rC, rA, rB)
	bb.Gst(rTid, 2*n, rC)
	prog, err := bb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	global := make([]uint32, 3*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(&Launch{Prog: prog, Grid: n / 256, Block: 256, Global: global}); err != nil {
			b.Fatal(err)
		}
	}
}
