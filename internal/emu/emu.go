// Package emu is the functional SIMT emulator: the "real GPU" substrate on
// which the software-level fault injector (internal/swfi, the NVBitFI
// analog) runs complete applications at speed.
//
// It executes the same SASS-like programs as the RTL model (internal/rtl)
// — warp-lockstep with a PDOM reconvergence stack, block-wide barriers and
// word-addressed global/shared memory — but keeps no micro-architectural
// state, so a kernel that takes hours of RTL simulation runs in
// microseconds here. Instrumentation hooks expose every executed
// instruction with its operand and result values, which is exactly the
// ISA-visible state NVBitFI can reach on real hardware.
package emu

import (
	"errors"
	"fmt"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// WarpSize is the number of threads that execute in lockstep, as on all
// NVIDIA architectures.
const WarpSize = 32

// MaxBlockThreads bounds threads per block (G80 limit).
const MaxBlockThreads = 512

// DefaultMaxDynInstrs is the watchdog budget of thread-level instructions
// per launch when Launch.MaxDynInstrs is zero.
const DefaultMaxDynInstrs = 1 << 32

// maxStackDepth bounds SIMT divergence nesting.
const maxStackDepth = 64

// Emulator failure modes. The software fault injector classifies any of
// these as a DUE (the application crashed or hung).
var (
	ErrWatchdog          = errors.New("emu: watchdog expired (hang)")
	ErrBadAddress        = errors.New("emu: memory access out of range")
	ErrBarrierDivergence = errors.New("emu: barrier reached by diverged warp")
	ErrDeadlock          = errors.New("emu: barrier deadlock")
	ErrUnstructured      = errors.New("emu: divergent branch without reconvergence point")
	ErrStackOverflow     = errors.New("emu: SIMT stack overflow")
	ErrIllegalInstr      = errors.New("emu: illegal instruction")
	ErrBadLaunch         = errors.New("emu: invalid launch configuration")
)

// LaunchError annotates an emulator failure with its location.
type LaunchError struct {
	Block int
	Warp  int
	PC    int
	Err   error
}

// Error implements the error interface.
func (e *LaunchError) Error() string {
	return fmt.Sprintf("block %d warp %d pc %d: %v", e.Block, e.Warp, e.PC, e.Err)
}

// Unwrap exposes the underlying failure mode to errors.Is.
func (e *LaunchError) Unwrap() error { return e.Err }

// Launch describes one kernel invocation.
type Launch struct {
	Prog         *kasm.Program
	Grid         int       // number of blocks
	Block        int       // threads per block (max MaxBlockThreads)
	Global       []uint32  // global memory, shared across blocks; mutated in place
	SharedWords  int       // shared-memory words per block
	Hooks        Hooks     // optional instrumentation
	MaxDynInstrs uint64    // watchdog; DefaultMaxDynInstrs when zero
	Mem          *MemTrace // optional global-memory access tracing

	// NoFastPath forces the Tier-0 reference interpreter even where the
	// Tier-1 pre-decoded fast path would apply (no armed per-instruction
	// hooks). The two tiers are bit-identical — enforced by
	// FuzzEmuFastPathVsReference — so this is an escape hatch for
	// regression comparison and for benchmarking the interpreter itself,
	// like swfi's NoFastForward.
	NoFastPath bool
}

// MemTrace collects the global-memory words a launch reads and writes, as
// bitmaps indexed by word address. The replay layer records them on the
// golden run to compute per-boundary live-in sets for reconvergence
// detection. Both bitmaps must cover len(Global) bits.
type MemTrace struct {
	Reads  []uint64
	Writes []uint64
}

// NewMemTrace sizes a trace for a words-long global image.
func NewMemTrace(words int) *MemTrace {
	n := (words + 63) / 64
	return &MemTrace{Reads: make([]uint64, n), Writes: make([]uint64, n)}
}

// Result reports execution statistics.
type Result struct {
	// DynThreadInstrs counts executed thread-level instructions (one
	// warp-level instruction with k active threads counts k).
	DynThreadInstrs uint64
	// PerOpcode breaks DynThreadInstrs down by opcode, the raw data for
	// the paper's Fig. 3 instruction profiles.
	PerOpcode [isa.NumOpcodes]uint64
}

// Run executes the launch to completion. On error the returned Result
// still carries the counts accumulated so far.
func Run(l *Launch) (Result, error) {
	return newExec(l).run()
}

func newExec(l *Launch) *exec {
	ex := &exec{l: l, budget: l.MaxDynInstrs, armed: l.Hooks.OnArm == nil}
	if ex.budget == 0 {
		ex.budget = DefaultMaxDynInstrs
	}
	if !l.NoFastPath && l.Prog != nil {
		ex.dp = decoded(l.Prog)
	}
	ex.recomputeFast()
	return ex
}

// recomputeFast selects the interpreter tier. Tier 1 (the pre-decoded
// fast path) runs whenever no per-instruction hook can observe an
// instruction: either none is attached, a countdown (ArmAfter/OnArm)
// has not armed yet, or an armed hook has called Event.Disarm. Tier 0 is
// the reference interpreter; it takes over the moment hooks arm, and
// blockLoop re-evaluates the choice at the arming and disarming
// boundaries. MemTrace does not force a tier: the fast path marks
// read/write bitmaps exactly like the reference interpreter.
func (ex *exec) recomputeFast() {
	ex.fast = ex.dp != nil &&
		!(ex.armed && !ex.disarmed && (ex.l.Hooks.Pre != nil || ex.l.Hooks.Post != nil))
}

func (ex *exec) run() (Result, error) {
	if err := ex.validate(); err != nil {
		return ex.res, err
	}
	for b := 0; b < ex.l.Grid; b++ {
		if err := ex.runBlock(b); err != nil {
			return ex.res, err
		}
		if ex.l.Hooks.OnBlockEnd != nil {
			ex.l.Hooks.OnBlockEnd(b, &ex.res)
		}
	}
	return ex.res, nil
}

// RunBlock executes exactly one block of the launch against the current
// contents of l.Global, honouring l.Hooks and l.Mem, and returns the
// counts of that block alone. Blocks of a launch are independent except
// for their global-memory effects (each starts with fresh registers and
// zeroed shared memory), so a launch can be reproduced by running its
// blocks in order — or by skipping blocks whose global-memory effects are
// known. OnBlockEnd is not invoked.
func RunBlock(l *Launch, block int) (Result, error) {
	ex := newExec(l)
	if err := ex.validate(); err != nil {
		return ex.res, err
	}
	if block < 0 || block >= l.Grid {
		return ex.res, fmt.Errorf("%w: block %d outside grid %d", ErrBadLaunch, block, l.Grid)
	}
	err := ex.runBlock(block)
	return ex.res, err
}

type exec struct {
	l      *Launch
	res    Result
	budget uint64
	shared []uint32
	ev     Event

	// armed gates instrumentation: false while a Hooks countdown
	// (ArmAfter/OnArm) is still pending, so the prefix executes without
	// any per-instruction hook dispatch. disarmed is the converse: a
	// one-shot hook has declared (via Event.Disarm) that it will neither
	// observe nor mutate anything for the rest of the launch, so the tail
	// may run hook-free on the fast path.
	armed    bool
	disarmed bool

	// Tier-1 fast-path state: the pre-decoded program (nil under
	// NoFastPath) and the current tier choice, kept in sync with armed by
	// recomputeFast.
	dp   *dprog
	fast bool

	// scratch absorbs results of instructions whose destination is RZ so
	// the fast path's lane loops carry no per-lane destination test;
	// immRow broadcasts UseImmB immediates into row form.
	scratch [WarpSize]uint32
	immRow  [WarpSize]uint32

	// Checkpoint capture state (RunCheckpointed only).
	ckSink  func(*Snapshot)
	ckNext  uint64
	ckEvery uint64
}

func (ex *exec) validate() error {
	l := ex.l
	switch {
	case l.Prog == nil || len(l.Prog.Instrs) == 0:
		return fmt.Errorf("%w: empty program", ErrBadLaunch)
	case l.Grid <= 0:
		return fmt.Errorf("%w: grid %d", ErrBadLaunch, l.Grid)
	case l.Block <= 0 || l.Block > MaxBlockThreads:
		return fmt.Errorf("%w: block %d", ErrBadLaunch, l.Block)
	case len(l.Prog.Instrs) > 0xFFFF:
		return fmt.Errorf("%w: program too large", ErrBadLaunch)
	}
	return nil
}

func (ex *exec) runBlock(blockID int) error {
	l := ex.l
	if cap(ex.shared) < l.SharedWords {
		ex.shared = make([]uint32, l.SharedWords)
	}
	ex.shared = ex.shared[:l.SharedWords]
	for i := range ex.shared {
		ex.shared[i] = 0
	}

	nwarps := (l.Block + WarpSize - 1) / WarpSize
	warps := make([]*warp, nwarps)
	for w := 0; w < nwarps; w++ {
		lanes := l.Block - w*WarpSize
		if lanes > WarpSize {
			lanes = WarpSize
		}
		warps[w] = newWarp(w, lanes)
	}
	err := ex.blockLoop(blockID, warps)
	if err == nil {
		// Recycle the ~8 KB register files; snapshots hold deep copies,
		// so nothing can still reference these warps. Error paths leave
		// the warps to the GC (LaunchError does not retain them either,
		// but recycling only the common path keeps the invariant easy to
		// see).
		releaseWarps(warps)
	}
	return err
}

// blockLoop drives a block's warps to completion from an arbitrary
// consistent state: freshly created warps (runBlock) or warps restored
// from a Snapshot (Resume). A warp's scheduling turn only ends when it is
// done or parked at a barrier, so re-entering the round-robin loop from
// warp 0 resumes exactly where a snapshot was captured.
func (ex *exec) blockLoop(blockID int, warps []*warp) error {
	for {
		for _, w := range warps {
			for !w.done && !w.atBar {
				if ex.ckSink != nil && ex.res.DynThreadInstrs >= ex.ckNext {
					ex.ckSink(ex.snapshot(blockID, warps))
					for ex.ckNext <= ex.res.DynThreadInstrs {
						ex.ckNext += ex.ckEvery
					}
				}
				if !ex.armed && ex.res.DynThreadInstrs+WarpSize > ex.l.Hooks.ArmAfter {
					ex.armed = true
					ex.l.Hooks.OnArm(&ex.res)
					ex.recomputeFast()
				}
				var err error
				if ex.fast {
					err = ex.stepFast(blockID, w)
				} else {
					err = ex.step(blockID, w)
					if ex.disarmed {
						ex.recomputeFast()
					}
				}
				if err != nil {
					return err
				}
			}
		}
		allDone, anyBar := true, false
		for _, w := range warps {
			if !w.done {
				allDone = false
				if w.atBar {
					anyBar = true
				}
			}
		}
		if allDone {
			return nil
		}
		if !anyBar {
			return &LaunchError{Block: blockID, Err: ErrDeadlock}
		}
		// Every live warp is parked at the barrier: release them all.
		// (Warps that exited without reaching the barrier do not
		// participate, matching permissive hardware semantics.)
		for _, w := range warps {
			if !w.done {
				w.atBar = false
			}
		}
	}
}
