package emu

import (
	"math/bits"

	"gpufi/internal/isa"
)

// Hooks instruments execution. Pre fires before a guarded instruction
// executes (and may mutate registers or predicates, e.g. to corrupt a
// branch condition); Post fires after it executes (and may corrupt its
// results). Either may be nil. Hook invocations see a reused *Event; they
// must not retain it.
type Hooks struct {
	Pre  func(*Event)
	Post func(*Event)

	// ArmAfter and OnArm implement hook-free countdown execution. When
	// OnArm is non-nil the launch starts unarmed: Pre and Post stay inert
	// (no per-instruction closure dispatch or operand capture) until the
	// launch's DynThreadInstrs counter could reach ArmAfter within one
	// warp instruction — i.e. the hooks are guaranteed live before the
	// counter crosses ArmAfter. At arming time OnArm is called once with
	// the Result accumulated so far, so an injector can seed its dynamic
	// instruction counter from the uninstrumented prefix. When OnArm is
	// nil, ArmAfter is ignored and hooks behave as always.
	ArmAfter uint64
	OnArm    func(*Result)

	// OnBlockEnd, when non-nil, fires after each block of a full run (Run,
	// RunCheckpointed) completes, with the block index and the counters
	// accumulated so far. The replay recorder uses it to segment its
	// per-launch captures at block boundaries. It is not invoked by
	// RunBlock or by the resumed portion of Resume.
	OnBlockEnd func(block int, res *Result)
}

// Event describes one executed warp-level instruction to instrumentation
// hooks — the NVBitFI injection surface.
type Event struct {
	Block  int
	Warp   int
	PC     int
	Instr  isa.Instr
	Active uint32 // lanes that execute the instruction

	w    *warp
	ex   *exec
	srcA [WarpSize]uint32
	srcB [WarpSize]uint32
	srcC [WarpSize]uint32
	dst  [WarpSize]uint32
}

func (ex *exec) prepareEvent(blockID int, w *warp, pc int, in isa.Instr, guard uint32) {
	ex.ev.Block = blockID
	ex.ev.Warp = w.id
	ex.ev.PC = pc
	ex.ev.Instr = in
	ex.ev.Active = guard
	ex.ev.w = w
	ex.ev.ex = ex
}

// ActiveCount returns the number of lanes executing the instruction.
func (ev *Event) ActiveCount() int { return bits.OnesCount32(ev.Active) }

// Disarm declares that this hook will neither observe nor mutate anything
// for the rest of the launch: from the next instruction on, the emulator
// stops invoking Pre/Post hooks and is free to run the tail on the
// pre-decoded fast path. One-shot fault injectors call it right after
// firing, so the (often long) post-fault tail does not pay per-instruction
// event preparation. Calling it from a hook that would still have acted is
// a caller bug: the remaining calls are silently skipped.
func (ev *Event) Disarm() { ev.ex.disarmed = true }

// NthActiveLane returns the lane index of the n-th (0-based) set bit of
// Active, or -1 when n is out of range. Fault injectors use it to map a
// global dynamic thread-instruction index onto a lane.
func (ev *Event) NthActiveLane(n int) int {
	m := ev.Active
	for ; m != 0; m &= m - 1 {
		if n == 0 {
			return bits.TrailingZeros32(m)
		}
		n--
	}
	return -1
}

// SrcA returns the first operand value read by lane (Post hook only).
func (ev *Event) SrcA(lane int) uint32 { return ev.srcA[lane] }

// SrcB returns the second operand value read by lane (Post hook only).
func (ev *Event) SrcB(lane int) uint32 { return ev.srcB[lane] }

// SrcC returns the third operand value read by lane (Post hook only).
func (ev *Event) SrcC(lane int) uint32 { return ev.srcC[lane] }

// DstValue returns the result produced by lane and whether the instruction
// produces a data result at all (Post hook only). For stores it is the
// stored value.
func (ev *Event) DstValue(lane int) (uint32, bool) {
	if ev.Instr.Op.HasDst() || ev.Instr.Op == isa.OpGST || ev.Instr.Op == isa.OpSST {
		return ev.dst[lane], true
	}
	return 0, false
}

// CorruptDst overwrites the data output of lane with newBits: the
// destination register for register-writing instructions, or the stored
// memory word for stores. It reports whether the instruction had a
// corruptible output. This is the NVBitFI "inject into instruction
// output" primitive.
func (ev *Event) CorruptDst(lane int, newBits uint32) bool {
	in := ev.Instr
	switch {
	case in.Op.HasDst():
		ev.w.setReg(in.Dst, lane, newBits)
		ev.dst[lane] = newBits
		return true
	case in.Op == isa.OpGST:
		addr := int64(int32(ev.srcA[lane])) + int64(in.Imm)
		if addr >= 0 && addr < int64(len(ev.ex.l.Global)) {
			ev.ex.l.Global[addr] = newBits
			ev.dst[lane] = newBits
			return true
		}
	case in.Op == isa.OpSST:
		addr := int64(int32(ev.srcA[lane])) + int64(in.Imm)
		if addr >= 0 && addr < int64(len(ev.ex.shared)) {
			ev.ex.shared[addr] = newBits
			ev.dst[lane] = newBits
			return true
		}
	}
	return false
}

// Reg reads a register of one lane.
func (ev *Event) Reg(lane int, r isa.Reg) uint32 {
	if r == isa.RZ {
		return 0
	}
	return ev.w.regs[r][lane]
}

// SetReg writes a register of one lane.
func (ev *Event) SetReg(lane int, r isa.Reg, v uint32) { ev.w.setReg(r, lane, v) }

// PredBit reads predicate register p of one lane.
func (ev *Event) PredBit(lane, p int) bool {
	return ev.w.preds[p&7]>>uint(lane)&1 == 1
}

// SetPredBit writes predicate register p of one lane (PT is read-only).
// In a Pre hook on a BRA this flips the branch decision of that lane.
func (ev *Event) SetPredBit(lane, p int, v bool) {
	ev.w.setPredLane(isa.P(p), lane, v)
}
