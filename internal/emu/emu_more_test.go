package emu

import (
	"errors"
	"testing"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// TestDeepNestedDivergence drives the SIMT stack towards its depth bound
// without crossing it: 20 nested if-then regions.
func TestDeepNestedDivergence(t *testing.T) {
	b := kasm.New("deep")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rC, 0)
	var nest func(depth int)
	nest = func(depth int) {
		if depth == 0 {
			b.IAddI(rC, rC, 1)
			return
		}
		b.AndI(rTmp, rTid, int32(1<<uint(depth%5)))
		b.ISetPI(isa.P(0), isa.CmpEQ, rTmp, 0)
		b.If(isa.P(0), func() {
			b.IAddI(rC, rC, 1)
			nest(depth - 1)
		})
	}
	nest(20)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	// Thread 0 passes every even-bit test: it reaches the innermost body.
	if global[0] != 21 {
		t.Errorf("thread 0 depth counter = %d, want 21", global[0])
	}
}

// TestEventRegisterAccessors exercises the generic register/predicate
// access surface of the instrumentation Event.
func TestEventRegisterAccessors(t *testing.T) {
	b := kasm.New("acc")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rA, 42)
	b.ISetPI(isa.P(2), isa.CmpLT, rTid, 4)
	b.Nop()
	b.Gst(rTid, 0, rA)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 32)
	checked := false
	hooks := Hooks{Post: func(ev *Event) {
		if ev.Instr.Op != isa.OpNOP {
			return
		}
		checked = true
		if got := ev.Reg(3, rA); got != 42 {
			t.Errorf("Reg = %d, want 42", got)
		}
		if ev.Reg(3, isa.RZ) != 0 {
			t.Error("RZ must read 0 through the event")
		}
		if !ev.PredBit(3, 2) || ev.PredBit(10, 2) {
			t.Error("PredBit mismatch (P2 = tid < 4)")
		}
		ev.SetReg(5, rA, 77)
		ev.SetReg(6, isa.RZ, 99) // must be dropped
		ev.SetPredBit(3, 7, false) // PT is read-only
	}}
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global, Hooks: hooks}); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("hook never fired")
	}
	if global[5] != 77 {
		t.Errorf("SetReg result = %d, want 77", global[5])
	}
	if global[6] != 42 {
		t.Errorf("RZ write leaked: %d", global[6])
	}
}

// TestShiftLogicSelectOps validates the support ALU ops against host
// arithmetic.
func TestShiftLogicSelectOps(t *testing.T) {
	b := kasm.New("alu")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rA, -8)            // 0xFFFFFFF8
	b.Shl(rB, rA, 4)          // 0xFFFFFF80
	b.Gst(rTid, 0, rB)
	b.Shr(rB, rA, 4)          // logical: 0x0FFFFFFF
	b.Gst(rTid, 32, rB)
	b.MovI(rC, 0x0F0F)
	b.And(rB, rA, rC)
	b.Gst(rTid, 64, rB)
	b.Or(rB, rA, rC)
	b.Gst(rTid, 96, rB)
	b.Xor(rB, rA, rC)
	b.Gst(rTid, 128, rB)
	b.MovI(rC, 5)
	b.IMin(rB, rA, rC)
	b.Gst(rTid, 160, rB)
	b.IMax(rB, rA, rC)
	b.Gst(rTid, 192, rB)
	b.ISetPI(isa.P(1), isa.CmpGT, rTid, 15)
	b.Sel(rB, rA, rC, isa.P(1))
	b.Gst(rTid, 224, rB)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 256)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32, Global: global}); err != nil {
		t.Fatal(err)
	}
	a := uint32(0xFFFFFFF8)
	c := uint32(0x0F0F)
	if global[0] != a<<4 {
		t.Errorf("SHL = %#x", global[0])
	}
	if global[32] != a>>4 {
		t.Errorf("SHR = %#x (must be logical)", global[32])
	}
	if global[64] != a&c || global[96] != a|c || global[128] != a^c {
		t.Error("AND/OR/XOR wrong")
	}
	if int32(global[160]) != -8 || int32(global[192]) != 5 {
		t.Errorf("IMNMX = %d/%d", int32(global[160]), int32(global[192]))
	}
	if global[224] != 5 { // tid 0: P1 false -> selects rC (now 5)
		t.Errorf("SEL lane 0 = %#x", global[224])
	}
	if global[224+16] != a { // tid 16: P1 true -> selects rA
		t.Errorf("SEL lane 16 = %#x", global[224+16])
	}
}

// TestF2II2FThroughKernel validates the conversion ops end to end.
func TestF2II2FThroughKernel(t *testing.T) {
	b := kasm.New("cvt")
	b.S2R(rTid, isa.SRTid)
	b.MovF(rA, -3.75)
	b.F2I(rB, rA)
	b.Gst(rTid, 0, rB)
	b.MovI(rA, -17)
	b.I2F(rB, rA)
	b.Gst(rTid, 32, rB)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 64)
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 1, Global: global}); err != nil {
		t.Fatal(err)
	}
	if int32(global[0]) != -3 {
		t.Errorf("F2I(-3.75) = %d, want -3 (truncate)", int32(global[0]))
	}
	if fromBits(global[32]) != -17 {
		t.Errorf("I2F(-17) = %v", fromBits(global[32]))
	}
}

// TestSharedOutOfBoundsIsDUE mirrors the global OOB test for shared memory.
func TestSharedOutOfBoundsIsDUE(t *testing.T) {
	b := kasm.New("soob")
	b.MovI(rAddr, 100)
	b.Sld(rA, rAddr, 0)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Launch{Prog: prog, Grid: 1, Block: 32, SharedWords: 16})
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

// TestNegativeAddressIsDUE checks signed address interpretation.
func TestNegativeAddressIsDUE(t *testing.T) {
	b := kasm.New("neg")
	b.MovI(rAddr, -5)
	b.Gld(rA, rAddr, 0)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Launch{Prog: prog, Grid: 1, Block: 1, Global: make([]uint32, 16)})
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

// TestImmediateOffsetAddressing verifies positive and negative word
// offsets on loads/stores.
func TestImmediateOffsetAddressing(t *testing.T) {
	b := kasm.New("off")
	b.MovI(rAddr, 8)
	b.Gld(rA, rAddr, -3) // word 5
	b.Gst(rAddr, 4, rA)  // word 12
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 16)
	global[5] = 1234
	if _, err := Run(&Launch{Prog: prog, Grid: 1, Block: 1, Global: global}); err != nil {
		t.Fatal(err)
	}
	if global[12] != 1234 {
		t.Errorf("offset addressing result = %d", global[12])
	}
}

// TestResultCountsExcludeInactiveLanes checks that guarded-off lanes are
// not counted (the basis of the NVBitFI-style dynamic instruction index).
func TestResultCountsExcludeInactiveLanes(t *testing.T) {
	b := kasm.New("cnt")
	b.S2R(rTid, isa.SRTid)
	b.ISetPI(isa.P(0), isa.CmpLT, rTid, 5)
	b.Emit(isa.Instr{Op: isa.OpIADD, Guard: isa.P(0), Dst: rA, SrcA: rTid, SrcB: rTid})
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Launch{Prog: prog, Grid: 1, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOpcode[isa.OpIADD] != 5 {
		t.Errorf("guarded IADD count = %d, want 5", res.PerOpcode[isa.OpIADD])
	}
}
