// Package replay captures and fast-forwards multi-launch workload
// executions on the functional emulator.
//
// The software fault injector re-executes its workload once per injection
// with a Post hook armed at a single dynamic instruction. Everything
// before the target is bit-identical to the golden run, so it can be
// restored instead of re-simulated: a Recorder replays the golden run
// once, keeping evenly spaced emulator Snapshots plus the sparse
// global-memory write-set of every launch, and a Player then reproduces
// any execution by applying write-sets for launches that complete before
// the nearest checkpoint, forking the emulator from the checkpoint, and
// running only the remainder live — with hooks kept inert (emu.Hooks
// countdown) until just before the target instruction.
//
// Host code between launches (building programs, reading results,
// seeding the next iteration) re-executes normally in all modes; it is
// deterministic given the global-memory images, which the write-sets
// reproduce exactly.
//
// Players additionally fast-forward the post-fault tail: once the fault
// has fired, the arena is compared against the golden trajectory at
// every launch boundary (the Recorder keeps host write-sets alongside
// the launch write-sets, so the golden arena is reconstructible at each
// boundary without re-simulating). The moment they match, the remainder
// of the run is provably identical to the golden execution — the
// emulator is deterministic and the host is a pure function of arena
// contents — so the remaining launches are skipped via write-sets. This
// reconvergence skip is gated on Trace.HostPure: workloads whose host
// keeps state derived from mid-run arena reads (e.g. quicksort's
// recursion stack) must leave it unset.
package replay

import (
	"fmt"
	"math/bits"
	"sort"

	"gpufi/internal/emu"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Runner abstracts how a workload executes: it allocates the workload's
// global-memory arena and runs its kernel launches. Workloads written
// against Runner can be executed directly (Plain), recorded (Recorder) or
// fast-forwarded (Player) without knowing which.
type Runner interface {
	// Arena allocates the global-memory image. Called exactly once per
	// execution, before any Launch.
	Arena(words int) []uint32
	// Launch executes one kernel launch whose Global aliases the arena.
	// The Runner owns Launch.Hooks; callers leave it zero.
	Launch(l *emu.Launch) error
}

// Plain is the pass-through Runner: fresh arena, every launch executed
// with the configured hooks, Result counters accumulated across launches.
type Plain struct {
	Hooks emu.Hooks
	Res   emu.Result

	// NoFastPath forces the emulator's Tier-0 reference interpreter on
	// every launch (see emu.Launch.NoFastPath).
	NoFastPath bool
}

// Arena implements Runner.
func (p *Plain) Arena(words int) []uint32 { return make([]uint32, words) }

// Launch implements Runner.
func (p *Plain) Launch(l *emu.Launch) error {
	l.Hooks = p.Hooks
	l.NoFastPath = p.NoFastPath
	res, err := emu.Run(l)
	addResult(&p.Res, &res)
	return err
}

func addResult(dst, src *emu.Result) {
	dst.DynThreadInstrs += src.DynThreadInstrs
	for op, n := range src.PerOpcode {
		dst.PerOpcode[op] += n
	}
}

// Delta is one changed word of the global-memory arena.
type Delta struct {
	Idx uint32
	Val uint32
}

// BlockRec describes one block of a recorded launch: the global-memory
// words it read and wrote on the golden run (bitmaps indexed by arena
// word), its writes with their golden values at the block's end, and the
// launch-local cumulative thread-instruction total after it. Blocks of a
// launch are independent except for their global-memory effects, so a
// post-fault launch can skip any block whose read set the fault has not
// reached (see Player's block walk).
type BlockRec struct {
	Reads     []uint64
	Writes    []uint64
	Deltas    []Delta // every word the block wrote, with its value at block end
	CumInstrs uint64  // launch-local thread-instructions after this block
}

// LaunchRec describes one recorded launch. Deltas is the diff of the
// arena across the launch itself; host writes between launches are not
// part of it — host code re-executes during replay. Host captures those
// writes separately (the diff of the arena from the previous launch's
// end to this launch's start), purely so reconvergence detection can
// track the golden arena across boundaries; replay never applies Host
// to the live arena.
type LaunchRec struct {
	Deltas []Delta
	Host   []Delta // golden host writes preceding this launch (empty for launch 0)
	// Reads / Writes are bitmaps (indexed by arena word) of the global
	// memory the launch touched on the golden run, the raw data for
	// ComputeLiveIn.
	Reads  []uint64
	Writes []uint64
	// CumInstrs / CumCount are the workload-cumulative thread-instruction
	// and countable-thread-instruction totals after the launch.
	CumInstrs uint64
	CumCount  uint64

	// Blocks segments the launch at block boundaries, the raw data for the
	// Player's post-fault block walk.
	Blocks []BlockRec

	// Launch fingerprint: a post-fault host that diverged from the golden
	// run (possible when it reads the corrupted arena) may issue launches
	// that no longer correspond to the recorded ones; the Player only
	// block-walks a launch whose configuration and program match the
	// recording exactly.
	Grid, Block, SharedWords int
	MaxDynInstrs             uint64
	ProgHash                 uint64
}

// progHash fingerprints a program: FNV-1a over every architecturally
// meaningful instruction field.
func progHash(p *kasm.Program) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var immB uint64
		if in.UseImmB {
			immB = 1
		}
		mix(uint64(in.Op) | uint64(in.Guard)<<8 | uint64(in.Dst)<<16 |
			uint64(in.SrcA)<<24 | uint64(in.SrcB)<<32 | uint64(in.SrcC)<<40 |
			uint64(in.PDst)<<48 | uint64(in.Cmp)<<56)
		mix(uint64(uint32(in.Imm)) | uint64(in.Target)<<32 |
			uint64(in.Reconv)<<48 | immB<<63)
	}
	return h
}

// Checkpoint anchors a mid-launch emulator snapshot in workload-global
// coordinates.
type Checkpoint struct {
	Launch    int
	Snap      *emu.Snapshot
	CumInstrs uint64 // workload-cumulative thread-instructions at capture
	CumCount  uint64 // workload-cumulative countable instructions at capture
}

// Trace is the sealed record of one golden execution. It is immutable
// after Recorder.Finish, so any number of Players (including concurrent
// ones) can replay from it.
type Trace struct {
	Words    int // arena size the workload requested
	Launches []LaunchRec
	Ckpts    []Checkpoint
	Instrs   uint64 // total thread-instructions of the execution
	Count    uint64 // total countable thread-instructions
	Profile  [isa.NumOpcodes]uint64

	// HostPure asserts that the workload's host code is a pure function
	// of (arena contents, launch ordinal): it carries no state derived
	// from mid-run arena reads across launch boundaries. Players only
	// attempt reconvergence skipping when it is set; the recorder cannot
	// infer it, so the workload owner declares it.
	HostPure bool

	// LiveIn, when computed, holds for each launch boundary the bitmap of
	// arena words the golden continuation reads before writing them.
	// Reconvergence then ignores dead words — corrupted values parked in
	// regions no later launch consumes (e.g. an already-used CNN feature
	// map) no longer block the skip. Only valid when host code neither
	// reads nor writes the arena between the remaining launches; see
	// ComputeLiveIn.
	LiveIn [][]uint64

	// Live, when computed (Recorder.CaptureLiveness + ComputeLiveness), is
	// the dead-site index over the trace's countable coordinates: faults
	// injected at dead sites are provably Masked without simulation.
	Live *Liveness

	count func(isa.Opcode) bool
}

// ComputeLiveIn fills Trace.LiveIn by walking the recorded read/write
// sets backwards from the host's final output reads (outOff..outOff+
// outWords). LiveIn[r] is the live-in set at the boundary after launch r:
// the words launches r+1.. read before writing, plus the output words
// that survive to the end. It is only sound to prune the reconvergence
// comparison with these sets when host code between the remaining
// launches does not touch the arena — the caller asserts that by
// invoking ComputeLiveIn at all.
func (tr *Trace) ComputeLiveIn(outOff, outWords int) {
	n := len(tr.Launches)
	if n == 0 || tr.Launches[0].Writes == nil {
		return
	}
	words := (tr.Words + 63) / 64
	live := make([]uint64, words)
	for i := outOff; i < outOff+outWords; i++ {
		live[i>>6] |= 1 << (uint(i) & 63)
	}
	tr.LiveIn = make([][]uint64, n)
	tr.LiveIn[n-1] = live
	for j := n - 1; j >= 1; j-- {
		rec := &tr.Launches[j]
		prev := make([]uint64, words)
		for k := range prev {
			prev[k] = (tr.LiveIn[j][k] &^ rec.Writes[k]) | rec.Reads[k]
		}
		tr.LiveIn[j-1] = prev
	}
}

// countable totals a launch-local PerOpcode breakdown under the trace's
// countable predicate.
func (tr *Trace) countable(per *[isa.NumOpcodes]uint64) uint64 {
	var t uint64
	for op, n := range per {
		if n != 0 && tr.count(isa.Opcode(op)) {
			t += n
		}
	}
	return t
}

// cumBefore returns the (total, countable) cumulative counts before
// launch ord.
func (tr *Trace) cumBefore(ord int) (uint64, uint64) {
	if ord == 0 {
		return 0, 0
	}
	rec := &tr.Launches[ord-1]
	return rec.CumInstrs, rec.CumCount
}

// Recorder is the Runner that produces a Trace: it executes every launch
// hook-free while capturing evenly spaced snapshots and per-launch
// write-sets. count classifies the opcodes an injector counts (and
// targets); it parameterises the trace's countable coordinates.
type Recorder struct {
	tr     *Trace
	every  uint64
	g      []uint32
	pre    []uint32
	post   []uint32 // arena image at the end of the previous launch
	nextCk uint64

	// Liveness capture (CaptureLiveness): a Post hook recording the event
	// stream for the backward dead-site scan, plus per-launch end marks.
	capture func(*emu.Event)
	lvc     *liveCapture

	// NoFastPath forces the emulator's Tier-0 reference interpreter while
	// recording. Without liveness capture a recording is hook-free and
	// otherwise runs on the Tier-1 fast path (which marks the MemTrace
	// bitmaps identically).
	NoFastPath bool
}

// NewRecorder builds a Recorder snapshotting every `every`
// thread-instructions (minimum 1).
func NewRecorder(every uint64, count func(isa.Opcode) bool) *Recorder {
	if every == 0 {
		every = 1
	}
	return &Recorder{tr: &Trace{count: count}, every: every, nextCk: every}
}

// Arena implements Runner.
func (r *Recorder) Arena(words int) []uint32 {
	if r.g != nil {
		panic("replay: Arena called twice in one execution")
	}
	r.g = make([]uint32, words)
	r.tr.Words = words
	return r.g
}

// Launch implements Runner.
func (r *Recorder) Launch(l *emu.Launch) error {
	ord := len(r.tr.Launches)
	base, baseCount := r.tr.Instrs, r.tr.Count
	var host []Delta
	if ord > 0 {
		for i, v := range r.g {
			if v != r.post[i] {
				host = append(host, Delta{Idx: uint32(i), Val: v})
			}
		}
	}
	r.pre = append(r.pre[:0], r.g...)
	l.Hooks = emu.Hooks{}
	l.NoFastPath = r.NoFastPath
	mt := emu.NewMemTrace(len(r.g))
	l.Mem = mt
	// Per-block segmentation: mt accumulates within one block at a time;
	// at each block boundary its bitmaps are captured into a BlockRec
	// (write values read off the arena, which later blocks have not yet
	// touched) and cleared, while launchReads/launchWrites keep the
	// launch-level union.
	nb := (len(r.g) + 63) / 64
	launchReads := make([]uint64, nb)
	launchWrites := make([]uint64, nb)
	var blocks []BlockRec
	l.Hooks.OnBlockEnd = func(block int, res *emu.Result) {
		br := BlockRec{
			Reads:     append([]uint64(nil), mt.Reads...),
			Writes:    append([]uint64(nil), mt.Writes...),
			CumInstrs: res.DynThreadInstrs,
		}
		for k, m := range mt.Writes {
			launchWrites[k] |= m
			for ; m != 0; m &= m - 1 {
				i := k<<6 + bits.TrailingZeros64(m)
				br.Deltas = append(br.Deltas, Delta{Idx: uint32(i), Val: r.g[i]})
			}
			mt.Writes[k] = 0
		}
		for k, m := range mt.Reads {
			launchReads[k] |= m
			mt.Reads[k] = 0
		}
		blocks = append(blocks, br)
	}
	if r.capture != nil {
		l.Hooks.Post = r.capture
	}
	// nextCk is global; the emulator counts per launch. nextCk > base
	// always holds (it is bumped past the cumulative total after every
	// launch), so the launch-local first boundary is their difference.
	res, err := emu.RunCheckpointed(l, r.nextCk-base, r.every, func(s *emu.Snapshot) {
		sr := s.Res()
		r.tr.Ckpts = append(r.tr.Ckpts, Checkpoint{
			Launch:    ord,
			Snap:      s,
			CumInstrs: base + sr.DynThreadInstrs,
			CumCount:  baseCount + r.tr.countable(&sr.PerOpcode),
		})
	})
	if err != nil {
		return err
	}
	var deltas []Delta
	for i, v := range r.g {
		if v != r.pre[i] {
			deltas = append(deltas, Delta{Idx: uint32(i), Val: v})
		}
	}
	r.post = append(r.post[:0], r.g...)
	r.tr.Instrs = base + res.DynThreadInstrs
	r.tr.Count = baseCount + r.tr.countable(&res.PerOpcode)
	for op, n := range res.PerOpcode {
		r.tr.Profile[op] += n
	}
	r.tr.Launches = append(r.tr.Launches, LaunchRec{
		Deltas:       deltas,
		Host:         host,
		Reads:        launchReads,
		Writes:       launchWrites,
		CumInstrs:    r.tr.Instrs,
		CumCount:     r.tr.Count,
		Blocks:       blocks,
		Grid:         l.Grid,
		Block:        l.Block,
		SharedWords:  l.SharedWords,
		MaxDynInstrs: l.MaxDynInstrs,
		ProgHash:     progHash(l.Prog),
	})
	r.endLaunch(l)
	for r.nextCk <= r.tr.Instrs {
		r.nextCk += r.every
	}
	return nil
}

// Finish seals and returns the trace.
func (r *Recorder) Finish() *Trace { return r.tr }

// Pool is a per-worker reusable arena buffer. Players attached to the
// same Pool (sequentially — a Pool is not safe for concurrent use) reuse
// one allocation instead of allocating a fresh arena per replay.
type Pool struct {
	buf    []uint32
	shadow []uint32
	diff   []uint64
	mt     *emu.MemTrace
}

// Player is the fast-forwarding Runner. Launches whose recorded execution
// completes before the selected checkpoint are skipped by applying their
// write-sets; the checkpointed launch forks from the snapshot; everything
// after runs live. In countdown mode instrumentation stays inert until
// just before the target countable instruction.
type Player struct {
	tr    *Trace
	hooks emu.Hooks
	prime func(countDone uint64)
	fired func() bool

	ord    int
	ck     *Checkpoint
	skipTo int    // skip launches with ord <= skipTo via write-sets; -1 when unused
	armG   uint64 // arming threshold in workload-cumulative thread-instructions
	armed  bool
	g      []uint32

	// Reconvergence state: shadow tracks the golden arena at launch
	// boundaries (nil when the player has no fault to reconverge from);
	// shadowLive reports that shadow holds a valid golden image; converged
	// flips once the live arena matches the golden trajectory post-fault,
	// after which every remaining launch is skipped via write-sets.
	// Full-launch reconvergence additionally requires Trace.HostPure; the
	// block walk below does not.
	shadow     []uint32
	shadowLive bool
	converged  bool

	// Block-walk state: post-fault launches whose fingerprint matches the
	// recording execute block by block, skipping every block whose golden
	// read set is disjoint from diff — the bitmap of arena words where the
	// live arena currently differs from the golden trajectory — by applying
	// the block's golden write values. Only blocks in the fault's light
	// cone are simulated. walkDead flips on the first fingerprint mismatch
	// (a diverged host may issue launches that no longer correspond to the
	// recorded ones); all later launches then run fully live.
	diff     []uint64
	blockMT  *emu.MemTrace
	walkDead bool

	// Live accumulates the portion actually simulated; Skipped counts the
	// thread-instructions provably avoided (write-set launches plus
	// restored snapshot prefixes). Live.DynThreadInstrs+Skipped equals a
	// full replay's total as long as the replay tracks the golden run.
	Live    emu.Result
	Skipped uint64

	// NoFastPath forces the emulator's Tier-0 reference interpreter for
	// every simulated segment (see emu.Launch.NoFastPath). Without it the
	// player picks tiers per segment: the unarmed countdown prefix, the
	// post-fault tail and walked blocks run on the Tier-1 fast path;
	// Tier 0 takes over only while injection hooks are armed.
	NoFastPath bool
}

// NewPlayer builds a Player that arms hooks just before the target-th
// (0-based) countable thread-instruction of the recorded execution.
// prime, when non-nil, is called once at arming time with the number of
// countable instructions already executed, so the caller's counter picks
// up exactly where the uninstrumented prefix left off. fired, when
// non-nil, reports that the caller's instrumentation is done firing;
// later launches then run fully uninstrumented.
func NewPlayer(tr *Trace, target uint64, hooks emu.Hooks, prime func(countDone uint64), fired func() bool, pool *Pool) *Player {
	p := &Player{tr: tr, hooks: hooks, prime: prime, fired: fired, skipTo: -1}
	// Fork point: the latest checkpoint whose countable count is at or
	// before the target. The countdown threshold is re-based on it — the
	// countable-vs-total slack accumulated before the checkpoint is
	// irrelevant, so arming happens at most one checkpoint interval's
	// worth of non-countable instructions early.
	i := sort.Search(len(tr.Ckpts), func(i int) bool { return tr.Ckpts[i].CumCount > target }) - 1
	var baseTot, baseCnt uint64
	if i >= 0 {
		p.ck = &tr.Ckpts[i]
		baseTot, baseCnt = p.ck.CumInstrs, p.ck.CumCount
	}
	p.armG = baseTot + (target - baseCnt)
	p.attach(pool)
	return p
}

// NewPlayerSkipTo builds a Player that fast-forwards launches 0..lastSkipped
// by applying their write-sets and runs the remainder live, fully
// uninstrumented — the replay mode for corruption applied by host code
// between launches (e.g. the CNN tile model).
func NewPlayerSkipTo(tr *Trace, lastSkipped int, pool *Pool) *Player {
	p := &Player{tr: tr, armed: true, skipTo: lastSkipped}
	if p.skipTo >= len(tr.Launches) {
		p.skipTo = len(tr.Launches) - 1
	}
	p.attach(pool)
	return p
}

// NewPlayerAt builds an uninstrumented Player that forks from checkpoint
// index ck exactly; used to property-test snapshot/resume determinism.
func NewPlayerAt(tr *Trace, ck int, pool *Pool) *Player {
	p := &Player{tr: tr, armed: true, skipTo: -1}
	if ck >= 0 && ck < len(tr.Ckpts) {
		p.ck = &tr.Ckpts[ck]
	}
	p.attach(pool)
	return p
}

func (p *Player) attach(pool *Pool) {
	// The golden shadow serves players replaying a faulty run (a countdown
	// injector or a skip-to-corruption replay) with launches left after the
	// fault: launch-boundary reconvergence when the host is pure, and the
	// block walk whenever the trace carries block records. NewPlayerAt
	// stays exempt: it exists to property-test that live resumed execution
	// matches the golden run, which skipping would bypass.
	faulty := (p.fired != nil || p.skipTo >= 0) && len(p.tr.Launches) > 1
	converge := faulty && p.tr.HostPure
	walk := faulty && len(p.tr.Launches[0].Blocks) > 0
	nb := (p.tr.Words + 63) / 64
	if pool == nil {
		p.g = make([]uint32, p.tr.Words)
		if converge || walk {
			p.shadow = make([]uint32, p.tr.Words)
		}
		if walk {
			p.diff = make([]uint64, nb)
			p.blockMT = emu.NewMemTrace(p.tr.Words)
		}
		return
	}
	if len(pool.buf) != p.tr.Words {
		pool.buf = make([]uint32, p.tr.Words)
	}
	p.g = pool.buf
	if converge || walk {
		if len(pool.shadow) != p.tr.Words {
			pool.shadow = make([]uint32, p.tr.Words)
		}
		p.shadow = pool.shadow
	}
	if walk {
		if len(pool.diff) != nb {
			pool.diff = make([]uint64, nb)
			pool.mt = emu.NewMemTrace(p.tr.Words)
		}
		p.diff = pool.diff
		p.blockMT = pool.mt
	}
}

// Arena implements Runner. The pooled buffer is zeroed so replays see the
// same pristine arena a fresh allocation would provide.
func (p *Player) Arena(words int) []uint32 {
	if words != p.tr.Words {
		panic(fmt.Sprintf("replay: workload requested %d arena words, trace recorded %d", words, p.tr.Words))
	}
	for i := range p.g {
		p.g[i] = 0
	}
	return p.g
}

// Launch implements Runner.
func (p *Player) Launch(l *emu.Launch) error {
	ord := p.ord
	p.ord++
	l.NoFastPath = p.NoFastPath
	resumeOrd := -1
	if p.ck != nil {
		resumeOrd = p.ck.Launch
	}
	if ord <= p.skipTo || (p.ck != nil && ord < resumeOrd) ||
		(p.converged && ord < len(p.tr.Launches)) {
		rec := &p.tr.Launches[ord]
		for _, d := range rec.Deltas {
			p.g[d.Idx] = d.Val
		}
		prev, _ := p.tr.cumBefore(ord)
		p.Skipped += rec.CumInstrs - prev
		if p.shadow != nil && ord == p.skipTo {
			// The corruption is applied by host code right after this
			// launch; the arena still holds the golden image, so capture
			// it before handing control back.
			copy(p.shadow, p.g)
			p.shadowLive = true
		}
		return nil
	}
	p.syncShadow(ord)
	if p.walkable(l, ord) {
		return p.walkLaunch(l, ord)
	}
	l.Hooks = p.liveHooks(ord)
	var res emu.Result
	var err error
	if p.ck != nil && ord == resumeOrd {
		snap := p.ck.Snap
		res, err = emu.Resume(l, snap)
		p.addLive(&res, snap)
		p.Skipped += snap.Res().DynThreadInstrs
	} else {
		res, err = emu.Run(l)
		p.addLive(&res, nil)
	}
	if err != nil {
		return err
	}
	p.checkConverged(ord)
	return nil
}

// walkable decides whether a launch executes via the block walk: the
// fault has been applied (everything before it is golden and handled by
// write-set skip or snapshot resume), the golden shadow is valid, the
// trace has block records for this ordinal, and the launch still
// corresponds to the recorded one.
func (p *Player) walkable(l *emu.Launch, ord int) bool {
	if p.diff == nil || p.walkDead || p.converged || !p.shadowLive ||
		!p.faultDone() || ord >= len(p.tr.Launches) {
		return false
	}
	rec := &p.tr.Launches[ord]
	if len(rec.Blocks) == 0 {
		return false
	}
	if l.Grid != rec.Grid || l.Block != rec.Block ||
		l.SharedWords != rec.SharedWords || l.MaxDynInstrs != rec.MaxDynInstrs ||
		progHash(l.Prog) != rec.ProgHash {
		// The (possibly impure, possibly corrupted) host issued a launch
		// that no longer matches the recording; the ordinal correspondence
		// is gone for good, so run everything from here on fully live.
		p.walkDead = true
		return false
	}
	return true
}

// walkLaunch executes a post-fault launch block by block. The invariant
// is exact: diff is the set of arena words where the live arena differs
// from the golden trajectory (shadow), maintained across every skip and
// every simulated block. A block whose golden read set is disjoint from
// diff reads only golden values, so — with registers and shared memory
// block-local by construction — it would execute bit-identically to the
// golden run; its recorded writes are applied instead of simulating it.
func (p *Player) walkLaunch(l *emu.Launch, ord int) error {
	rec := &p.tr.Launches[ord]
	// Establish diff at launch entry (the host ran live since the last
	// walk, so it is recomputed from scratch).
	for k := range p.diff {
		p.diff[k] = 0
	}
	for i, v := range p.g {
		if v != p.shadow[i] {
			p.diff[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	mt := p.blockMT
	var prevCum uint64
	var walkErr error
	for b := range rec.Blocks {
		br := &rec.Blocks[b]
		disjoint := true
		for k, m := range br.Reads {
			if m&p.diff[k] != 0 {
				disjoint = false
				break
			}
		}
		if disjoint {
			// Light cone untouched: the block's effects are its golden
			// write values, on both the live arena and the shadow.
			for _, d := range br.Deltas {
				p.g[d.Idx] = d.Val
				p.shadow[d.Idx] = d.Val
			}
			for k, m := range br.Writes {
				p.diff[k] &^= m
			}
			p.Skipped += br.CumInstrs - prevCum
			prevCum = br.CumInstrs
			continue
		}
		// Simulate the block live, tracking its writes to keep diff exact.
		for k := range mt.Writes {
			mt.Writes[k] = 0
			mt.Reads[k] = 0
		}
		l.Hooks = emu.Hooks{}
		l.Mem = mt
		res, err := emu.RunBlock(l, b)
		l.Mem = nil
		p.addLive(&res, nil)
		for _, d := range br.Deltas {
			p.shadow[d.Idx] = d.Val
		}
		if err != nil {
			walkErr = err
			break
		}
		for k := range p.diff {
			touched := br.Writes[k] | mt.Writes[k]
			for m := touched; m != 0; m &= m - 1 {
				i := k<<6 + bits.TrailingZeros64(m)
				bit := uint64(1) << (uint(i) & 63)
				if p.g[i] != p.shadow[i] {
					p.diff[k] |= bit
				} else {
					p.diff[k] &^= bit
				}
			}
		}
		prevCum = br.CumInstrs
	}
	if walkErr != nil {
		return walkErr
	}
	// The shadow now already holds the golden post-launch image;
	// checkConverged's delta advance is an idempotent no-op on it, and its
	// comparison decides reconvergence as usual.
	p.checkConverged(ord)
	return nil
}

// faultDone reports that the replayed fault has been applied: a countdown
// player's instrumentation fired, or — for skip-to players, whose
// corruption lands the moment host code runs after the skipped prefix —
// always.
func (p *Player) faultDone() bool {
	if p.skipTo >= 0 {
		return true
	}
	return p.fired != nil && p.fired()
}

// syncShadow establishes the invariant "shadow == golden arena before
// launch ord" at the start of every live launch. Pre-fault the live arena
// itself is golden, so it is copied wholesale; post-fault the golden image
// advances across the host boundary via the recorded host write-set.
func (p *Player) syncShadow(ord int) {
	if p.shadow == nil || p.converged || ord >= len(p.tr.Launches) {
		return
	}
	if !p.faultDone() {
		copy(p.shadow, p.g)
		p.shadowLive = true
		return
	}
	if !p.shadowLive {
		return
	}
	for _, d := range p.tr.Launches[ord].Host {
		p.shadow[d.Idx] = d.Val
	}
}

// checkConverged advances the shadow to the golden post-launch image and,
// once the fault has fired, compares the live arena against it. On a
// match the rest of the execution is provably bit-identical to the golden
// run (deterministic emulator, pure host), so later launches skip.
func (p *Player) checkConverged(ord int) {
	if p.shadow == nil || p.converged || !p.shadowLive || ord >= len(p.tr.Launches) {
		return
	}
	if !p.faultDone() {
		return // next syncShadow recopies the still-golden arena
	}
	for _, d := range p.tr.Launches[ord].Deltas {
		p.shadow[d.Idx] = d.Val
	}
	if !p.tr.HostPure {
		// The shadow keeps tracking the golden trajectory for the block
		// walk, but an impure host may carry diverged state even when the
		// arena matches, so whole-run reconvergence is off the table.
		return
	}
	if lv := p.tr.LiveIn; lv != nil {
		// Dead-word pruning: only compare the words the golden
		// continuation reads. The corrupted run may park garbage in
		// regions nothing consumes anymore; the real continuation would
		// still behave observably like the golden run, so on a match the
		// arena is reset to the golden image before write-set skipping —
		// which assumes the golden pre-state — takes over.
		for k, mask := range lv[ord] {
			for m := mask; m != 0; m &= m - 1 {
				i := k<<6 + bits.TrailingZeros64(m)
				if p.g[i] != p.shadow[i] {
					return
				}
			}
		}
		copy(p.g, p.shadow)
		p.converged = true
		return
	}
	for i, v := range p.g {
		if v != p.shadow[i] {
			return
		}
	}
	p.converged = true
}

// liveHooks selects the instrumentation for a launch that executes.
func (p *Player) liveHooks(ord int) emu.Hooks {
	if p.armed {
		if p.fired != nil && p.fired() {
			// Post-fault tail: the hooks are inert from here on, so drop
			// them and run at uninstrumented speed.
			return emu.Hooks{}
		}
		return p.hooks
	}
	if ord >= len(p.tr.Launches) {
		// Past the recorded execution while still unarmed — only possible
		// when the target is outside the trace. Arm defensively.
		p.armed = true
		if p.prime != nil {
			p.prime(p.tr.Count)
		}
		return p.hooks
	}
	before, cntBefore := p.tr.cumBefore(ord)
	h := p.hooks
	// Countdown mode: an unarmed launch always ends with its local total
	// at least WarpSize below its local threshold, so armG >= the
	// cumulative total of every launch reached unarmed and the
	// subtraction cannot underflow.
	h.ArmAfter = p.armG - before
	h.OnArm = func(res *emu.Result) {
		p.armed = true
		if p.prime != nil {
			p.prime(cntBefore + p.tr.countable(&res.PerOpcode))
		}
	}
	return h
}

func (p *Player) addLive(res *emu.Result, snap *emu.Snapshot) {
	if snap == nil {
		addResult(&p.Live, res)
		return
	}
	sr := snap.Res()
	p.Live.DynThreadInstrs += res.DynThreadInstrs - sr.DynThreadInstrs
	for op := range res.PerOpcode {
		p.Live.PerOpcode[op] += res.PerOpcode[op] - sr.PerOpcode[op]
	}
}
