package replay

// Dead-site liveness: the software analog of internal/rtl's DeadAt/GapAt
// index, at instruction granularity. During the golden recording the
// Recorder can additionally capture the executed event stream; a backward
// dead-end-closure scan then classifies every countable (injectable)
// dynamic thread-instruction as dead or live:
//
//   - An instruction's output site (destination register lane, or stored
//     memory word) is dead when nothing that still matters reads it before
//     it is overwritten or the run ends.
//   - "Still matters" is transitive: a read by an instruction whose own
//     output is dead does not keep the value alive. Reads that feed
//     control flow (ISETP/FSETP inputs, and through them every guard and
//     branch) or addressing (the address operand of loads and stores) are
//     absolutely live — corrupting them could change control flow or trap,
//     so they terminate the closure.
//
// A fault injected into a dead site provably leaves the final output
// bit-identical to the golden run (and cannot crash or hang: addresses and
// control inputs are never dead), so the injector classifies it Masked
// with zero simulated instructions. Per-site records (opcode, golden
// output bits, operand magnitude) let it also reproduce the exact
// corruption draw an executed injection would have made.

import (
	"math/bits"

	"gpufi/internal/emu"
	"gpufi/internal/isa"
)

// maxWarpsPerBlock bounds warps per block (MaxBlockThreads / WarpSize).
const maxWarpsPerBlock = emu.MaxBlockThreads / emu.WarpSize

// SiteInfo describes one dead injectable site: what a fault injector
// needs to reproduce — without simulating — the corruption it would have
// applied there.
type SiteInfo struct {
	Op      isa.Opcode
	OldBits uint32  // the golden output value at the site
	Mag     float64 // operand magnitude (for syndrome range selection)
}

// Liveness is the sealed dead-site index over a trace's countable
// coordinates. Immutable after ComputeLiveness, safe for concurrent use.
type Liveness struct {
	dead []uint64 // bitmap over countable indices
	cum  []uint32 // prefix popcounts of dead, per 64-bit word
	info []SiteInfo
	n    uint64 // countable total the index covers
}

// DeadSites returns the number of dead countable sites.
func (lv *Liveness) DeadSites() uint64 {
	if lv == nil || len(lv.cum) == 0 {
		return 0
	}
	last := len(lv.dead) - 1
	return uint64(lv.cum[last]) + uint64(bits.OnesCount64(lv.dead[last]))
}

// Sites returns the countable total the index covers.
func (lv *Liveness) Sites() uint64 { return lv.n }

// Dead reports whether countable site idx is dead, and if so returns its
// site record.
func (lv *Liveness) Dead(idx uint64) (SiteInfo, bool) {
	if lv == nil || idx >= lv.n {
		return SiteInfo{}, false
	}
	k := idx >> 6
	bit := uint64(1) << (idx & 63)
	if lv.dead[k]&bit == 0 {
		return SiteInfo{}, false
	}
	rank := uint64(lv.cum[k]) + uint64(bits.OnesCount64(lv.dead[k]&(bit-1)))
	return lv.info[rank], true
}

// liveEv is one captured warp-level instruction of the golden run.
type liveEv struct {
	op      isa.Opcode
	dst     uint8
	srcA    uint8
	srcB    uint8
	srcC    uint8
	useImmB bool
	warp    uint8
	block   int32
	active  uint32
	cbase   uint64    // countable index of this event's first active lane
	addrs   []int32   // per active lane (ascending): word address, mem ops only
	vals    []uint32  // per active lane: output value, countable ops only
	mags    []float64 // per active lane: operand magnitude, countable ops only
}

// liveCapture accumulates the event stream across launches.
type liveCapture struct {
	events []liveEv
	marks  []int // event count at each launch end
	ccount uint64
	shMax  int
	mag    func(ev *emu.Event, lane int) float64
}

// CaptureLiveness arms the Recorder to capture the event stream needed by
// ComputeLiveness. Must be called before the recorded execution starts.
// mag computes an instruction's operand magnitude for a lane (the
// injector's syndrome range input); it is stored per countable site so
// pruned faults reproduce the injector's exact corruption draws.
func (r *Recorder) CaptureLiveness(mag func(ev *emu.Event, lane int) float64) {
	if r.tr.count == nil {
		panic("replay: CaptureLiveness requires a countable predicate")
	}
	lvc := &liveCapture{mag: mag}
	r.lvc = lvc
	r.capture = func(ev *emu.Event) {
		rec := liveEv{
			op: ev.Instr.Op, dst: uint8(ev.Instr.Dst),
			srcA: uint8(ev.Instr.SrcA), srcB: uint8(ev.Instr.SrcB), srcC: uint8(ev.Instr.SrcC),
			useImmB: ev.Instr.UseImmB, warp: uint8(ev.Warp),
			block: int32(ev.Block), active: ev.Active, cbase: lvc.ccount,
		}
		n := ev.ActiveCount()
		if r.tr.count(rec.op) {
			rec.vals = make([]uint32, 0, n)
			rec.mags = make([]float64, 0, n)
			for m := ev.Active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				v, _ := ev.DstValue(lane)
				rec.vals = append(rec.vals, v)
				if lvc.mag != nil {
					rec.mags = append(rec.mags, lvc.mag(ev, lane))
				} else {
					rec.mags = append(rec.mags, 0)
				}
			}
			lvc.ccount += uint64(n)
		}
		switch rec.op {
		case isa.OpGLD, isa.OpGST, isa.OpSLD, isa.OpSST:
			rec.addrs = make([]int32, 0, n)
			for m := ev.Active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				addr := int64(int32(ev.SrcA(lane))) + int64(ev.Instr.Imm)
				rec.addrs = append(rec.addrs, int32(addr))
			}
		}
		lvc.events = append(lvc.events, rec)
	}
}

// endLaunch marks a launch boundary in the captured stream.
func (r *Recorder) endLaunch(l *emu.Launch) {
	if r.lvc == nil {
		return
	}
	if l.SharedWords > r.lvc.shMax {
		r.lvc.shMax = l.SharedWords
	}
	r.lvc.marks = append(r.lvc.marks, len(r.lvc.events))
}

// ComputeLiveness runs the backward dead-end closure over the captured
// stream, attaches the resulting index to the trace, and releases the
// capture. boundaryAllLive treats the whole arena as live at every launch
// boundary — required when host code may read arbitrary arena words
// between launches (HPC workloads). With boundaryAllLive false, only
// outOff..outOff+outWords is live at the end of the run and launch
// boundaries are transparent — sound only when host code between launches
// does not read the arena (the CNN pipeline).
func (r *Recorder) ComputeLiveness(outOff, outWords int, boundaryAllLive bool) {
	lvc := r.lvc
	if lvc == nil {
		return
	}
	r.lvc, r.capture = nil, nil
	tr := r.tr
	if lvc.ccount != tr.Count {
		panic("replay: liveness capture disagrees with trace countable total")
	}

	dead := make([]uint64, (tr.Count+63)/64)
	gL := make([]bool, tr.Words)
	if boundaryAllLive || outWords <= 0 {
		for i := range gL {
			gL[i] = true
		}
	} else {
		for i := outOff; i < outOff+outWords && i < len(gL); i++ {
			gL[i] = true
		}
	}
	shL := make([]bool, lvc.shMax)
	var regL [maxWarpsPerBlock][isa.NumRegs]uint32

	sc := &liveScan{count: tr.count, dead: dead, gL: gL, shL: shL, regL: &regL}
	launch := len(lvc.marks) - 1
	curBlock := int32(-1)
	events := lvc.events
	for e := len(events) - 1; e >= 0; e-- {
		for launch > 0 && e < lvc.marks[launch-1] {
			launch--
			curBlock = -1
			if boundaryAllLive {
				for i := range gL {
					gL[i] = true
				}
			}
		}
		ev := &events[e]
		if ev.block != curBlock {
			// Registers and shared memory die at block boundaries: each
			// block starts with fresh warps and zeroed shared memory.
			for w := range regL {
				for reg := range regL[w] {
					regL[w][reg] = 0
				}
			}
			for i := range shL {
				shL[i] = false
			}
			curBlock = ev.block
		}
		sc.processEvent(ev)
	}

	lv := &Liveness{dead: dead, n: tr.Count}
	lv.cum = make([]uint32, len(dead))
	var run uint32
	for k, m := range dead {
		lv.cum[k] = run
		run += uint32(bits.OnesCount64(m))
	}
	lv.info = make([]SiteInfo, run)
	for e := range events {
		ev := &events[e]
		if ev.vals == nil {
			continue
		}
		for j := range ev.vals {
			idx := ev.cbase + uint64(j)
			k := idx >> 6
			bit := uint64(1) << (idx & 63)
			if dead[k]&bit == 0 {
				continue
			}
			rank := uint64(lv.cum[k]) + uint64(bits.OnesCount64(dead[k]&(bit-1)))
			lv.info[rank] = SiteInfo{Op: ev.op, OldBits: ev.vals[j], Mag: ev.mags[j]}
		}
	}
	tr.Live = lv
}

// liveScan is the backward dead-end-closure state.
type liveScan struct {
	count func(isa.Opcode) bool
	dead  []uint64
	gL    []bool
	shL   []bool
	regL  *[maxWarpsPerBlock][isa.NumRegs]uint32
}

func (sc *liveScan) markDead(idx uint64) { sc.dead[idx>>6] |= 1 << (idx & 63) }

// processEvent applies one event's backward transfer function. Processing
// order within an event matters: output-site verdicts read the post-event
// live state, then the output site is killed, then the event's reads are
// added — data reads propagate the output's own liveness lanes (the
// transitive dead-end closure), address and predicate-input reads are
// absolutely live.
func (sc *liveScan) processEvent(ev *liveEv) {
	op := ev.op
	warp := int(ev.warp)
	active := ev.active
	regL := sc.regL
	inj := sc.count(op)

	abs := func(r uint8) { // absolutely live for the active lanes
		if r != uint8(isa.RZ) {
			regL[warp][r] |= active
		}
	}
	data := func(r uint8, p uint32) { // live exactly for the lanes in p
		if r != uint8(isa.RZ) {
			regL[warp][r] |= p
		}
	}

	switch op {
	case isa.OpBRA, isa.OpBAR, isa.OpNOP, isa.OpEXIT:
		return
	case isa.OpISETP, isa.OpFSETP:
		// Predicate writers feed guards and branches: their inputs are
		// control-critical, so they terminate the dead-end closure. (This
		// is also why predicate reads elsewhere propagate nothing — a
		// predicate can never carry corruption from a dead-site fault.)
		abs(ev.srcA)
		if !ev.useImmB {
			abs(ev.srcB)
		}
		return
	case isa.OpGST, isa.OpSST:
		mem := sc.gL
		if op == isa.OpSST {
			mem = sc.shL
		}
		// Store-site verdicts use the post-event live state for every
		// lane: the injector corrupts the stored word after the whole warp
		// instruction has executed, so the corruption lands regardless of
		// which lane wrote the word last.
		if inj {
			j := 0
			for k, m := 0, active; m != 0; m, k = m&(m-1), k+1 {
				addr := ev.addrs[k]
				if !(addr >= 0 && int(addr) < len(mem) && mem[addr]) {
					sc.markDead(ev.cbase + uint64(j))
				}
				j++
			}
		}
		// Value reads: only the last lane writing each word determines its
		// contents, so only that lane's source register read matters.
		seen := make(map[int32]struct{}, len(ev.addrs))
		for k := len(ev.addrs) - 1; k >= 0; k-- {
			addr := ev.addrs[k]
			if _, ok := seen[addr]; ok {
				continue
			}
			seen[addr] = struct{}{}
			var p uint32
			if addr >= 0 && int(addr) < len(mem) && mem[addr] {
				p = 1 << uint(nthLane(active, k))
			}
			data(ev.srcC, p)
		}
		for _, addr := range ev.addrs {
			if addr >= 0 && int(addr) < len(mem) {
				mem[addr] = false
			}
		}
		abs(ev.srcA) // the address operand is always control-critical
		return
	}

	// Register-destination ops (including loads, ISET, SEL, moves).
	var p uint32 // lanes where the output is live post-event
	if ev.dst != uint8(isa.RZ) {
		p = regL[warp][ev.dst] & active
	}
	if inj {
		j := 0
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if p>>uint(lane)&1 == 0 {
				sc.markDead(ev.cbase + uint64(j))
			}
			j++
		}
	}
	if ev.dst != uint8(isa.RZ) {
		regL[warp][ev.dst] &^= active
	}

	switch op {
	case isa.OpGLD, isa.OpSLD:
		mem := sc.gL
		if op == isa.OpSLD {
			mem = sc.shL
		}
		abs(ev.srcA)
		k := 0
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			addr := ev.addrs[k]
			k++
			if addr >= 0 && int(addr) < len(mem) && p>>uint(lane)&1 == 1 {
				mem[addr] = true
			}
		}
	case isa.OpMOV32I, isa.OpS2R:
		// no register reads
	case isa.OpFFMA, isa.OpIMAD:
		data(ev.srcA, p)
		if !ev.useImmB {
			data(ev.srcB, p)
		}
		data(ev.srcC, p)
	case isa.OpFSIN, isa.OpFEXP, isa.OpFRCP, isa.OpFRSQRT,
		isa.OpF2I, isa.OpI2F, isa.OpMOV:
		data(ev.srcA, p)
	default:
		// Two-source data ops: FADD FMUL IADD IMUL ISET SEL SHL SHR AND OR
		// XOR IMNMX FMNMX. SEL/IMNMX/FMNMX additionally read a predicate,
		// which can never carry corruption (see ISETP above).
		data(ev.srcA, p)
		if !ev.useImmB {
			data(ev.srcB, p)
		}
	}
}

// nthLane returns the lane index of the n-th (0-based) set bit of active.
func nthLane(active uint32, n int) int {
	for m := active; m != 0; m &= m - 1 {
		if n == 0 {
			return bits.TrailingZeros32(m)
		}
		n--
	}
	return -1
}
