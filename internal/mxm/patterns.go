package mxm

import (
	"gpufi/internal/faults"
	"gpufi/internal/fp32"
)

// Corruption describes how a faulty tile output differs from the golden
// one: the per-element corruption map and relative errors.
type Corruption struct {
	N        int       // matrix dimension
	Bad      []bool    // per element, row-major
	RelErrs  []float64 // relative error of each corrupted element
	Count    int
}

// Compare diffs a faulty output matrix against the golden one.
func Compare(golden, faulty []float32, n int) Corruption {
	c := Corruption{N: n, Bad: make([]bool, n*n)}
	for i := range golden {
		gb, fb := golden[i], faulty[i]
		same := gb == fb || (gb != gb && fb != fb) // NaN == NaN for this purpose
		if !same {
			c.Bad[i] = true
			c.Count++
			c.RelErrs = append(c.RelErrs, fp32.RelErr(float64(gb), float64(fb)))
		}
	}
	return c
}

// Classify assigns the spatial pattern of the corruption following the
// taxonomy of Fig. 8: single, row, column, row+column, block, random, all.
func (c Corruption) Classify() faults.Pattern {
	switch {
	case c.Count == 0:
		return faults.PatSingle // callers must check Count first
	case c.Count == 1:
		return faults.PatSingle
	}
	n := c.N
	// "All (or almost all) elements corrupted".
	if c.Count >= n*n*7/8 {
		return faults.PatAll
	}

	rows := make([]int, n)
	cols := make([]int, n)
	for i, bad := range c.Bad {
		if bad {
			rows[i/n]++
			cols[i%n]++
		}
	}
	nRows, nCols := 0, 0
	fullRow, fullCol := -1, -1
	for i := 0; i < n; i++ {
		if rows[i] > 0 {
			nRows++
			if rows[i] > 1 {
				fullRow = i
			}
		}
		if cols[i] > 0 {
			nCols++
			if cols[i] > 1 {
				fullCol = i
			}
		}
	}
	switch {
	case nRows == 1:
		return faults.PatRow
	case nCols == 1:
		return faults.PatCol
	}
	// Row+column: every corrupted element lies on one row or one column,
	// and both carry at least two elements.
	if fullRow >= 0 && fullCol >= 0 {
		onCross := true
		for i, bad := range c.Bad {
			if bad && i/n != fullRow && i%n != fullCol {
				onCross = false
				break
			}
		}
		if onCross && rows[fullRow] > 1 && cols[fullCol] > 1 {
			return faults.PatRowCol
		}
	}
	// Block: the corrupted elements densely fill their bounding box.
	minR, maxR, minC, maxC := n, -1, n, -1
	for i, bad := range c.Bad {
		if !bad {
			continue
		}
		r, cc := i/n, i%n
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		if cc < minC {
			minC = cc
		}
		if cc > maxC {
			maxC = cc
		}
	}
	area := (maxR - minR + 1) * (maxC - minC + 1)
	if area >= 4 && float64(c.Count) >= 0.75*float64(area) {
		return faults.PatBlock
	}
	return faults.PatRandom
}
