package mxm

import (
	"math"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

func randomMatrix(r *stats.RNG, n int) []float32 {
	m := make([]float32, n*n)
	for i := range m {
		m[i] = float32(r.Float64Range(-2, 2))
	}
	return m
}

func TestBuildRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 4, 12, 24, 17} {
		if _, err := Build(n); err == nil {
			t.Errorf("Build(%d) accepted", n)
		}
	}
}

func TestEmulatorMatchesReference(t *testing.T) {
	r := stats.NewRNG(1)
	for _, n := range []int{8, 16, 32} {
		prog, err := Build(n)
		if err != nil {
			t.Fatal(err)
		}
		a, b := randomMatrix(r, n), randomMatrix(r, n)
		g := Pack(a, b, n)
		if _, err := emu.Run(&emu.Launch{
			Prog: prog, Grid: Grid(n), Block: BlockThreads,
			Global: g, SharedWords: SharedWords,
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := ExtractC(g, n)
		want := Reference(a, b, n)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d C[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRTLSingleTileMatchesEmulator(t *testing.T) {
	prog, err := Build(Tile)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllTileKinds() {
		a, b := TileInputs(kind, 7)
		gRTL := Pack(a, b, Tile)
		gEmu := Pack(a, b, Tile)
		m := rtl.New()
		if err := m.Run(prog, 1, BlockThreads, gRTL, SharedWords, 2_000_000); err != nil {
			t.Fatalf("%v rtl: %v", kind, err)
		}
		if _, err := emu.Run(&emu.Launch{
			Prog: prog, Grid: 1, Block: BlockThreads,
			Global: gEmu, SharedWords: SharedWords,
		}); err != nil {
			t.Fatalf("%v emu: %v", kind, err)
		}
		for i := range gRTL {
			if gRTL[i] != gEmu[i] {
				t.Fatalf("%v: rtl/emu diverge at %d", kind, i)
			}
		}
	}
}

func TestTileInputsCharacteristics(t *testing.T) {
	aMax, _ := TileInputs(TileMax, 3)
	aZero, _ := TileInputs(TileZero, 3)
	zeros := func(xs []float32) int {
		n := 0
		for _, x := range xs {
			if x == 0 {
				n++
			}
		}
		return n
	}
	sum := func(xs []float32) float64 {
		var s float64
		for _, x := range xs {
			s += float64(x)
		}
		return s
	}
	if zeros(aZero) < Tile*Tile/2 {
		t.Errorf("zero tile has only %d zeros", zeros(aZero))
	}
	if sum(aMax) <= sum(aZero) {
		t.Error("max tile sum must exceed zero tile sum")
	}
	// Deterministic for a given seed.
	x1, _ := TileInputs(TileRandom, 5)
	x2, _ := TileInputs(TileRandom, 5)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("TileInputs not deterministic")
		}
	}
}

func TestCompareFindsCorruption(t *testing.T) {
	golden := []float32{1, 2, 3, 4}
	faulty := []float32{1, 2.5, 3, 4}
	c := Compare(golden, faulty, 2)
	if c.Count != 1 || !c.Bad[1] {
		t.Fatalf("corruption = %+v", c)
	}
	if c.RelErrs[0] != 0.25 {
		t.Errorf("relerr = %v", c.RelErrs[0])
	}
	nan := float32(math.NaN())
	c = Compare([]float32{nan, 1}, []float32{nan, 1}, 1)
	if c.Count != 0 {
		t.Error("NaN == NaN must not count as corruption")
	}
}

func TestPatternClassification(t *testing.T) {
	const n = 8
	mk := func(idx ...int) Corruption {
		c := Corruption{N: n, Bad: make([]bool, n*n), Count: len(idx)}
		for _, i := range idx {
			c.Bad[i] = true
		}
		return c
	}
	row := func(r int, cols ...int) []int {
		out := make([]int, len(cols))
		for i, c := range cols {
			out[i] = r*n + c
		}
		return out
	}
	tests := []struct {
		name string
		c    Corruption
		want faults.Pattern
	}{
		{"single", mk(10), faults.PatSingle},
		{"row", mk(row(3, 0, 1, 2, 5, 7)...), faults.PatRow},
		{"col", mk(0*n+4, 2*n+4, 5*n+4), faults.PatCol},
		{"rowcol", mk(append(row(2, 0, 1, 3, 4), 0*n+5, 4*n+5, 6*n+5)...), faults.PatRowCol},
		{"block", mk(1*n+1, 1*n+2, 2*n+1, 2*n+2), faults.PatBlock},
		{"random", mk(0, 3*n+5, 6*n+2, 7*n+7), faults.PatRandom},
	}
	for _, tt := range tests {
		if got := tt.c.Classify(); got != tt.want {
			t.Errorf("%s: classify = %v, want %v", tt.name, got, tt.want)
		}
	}
	// all: >= 7/8 of the matrix.
	all := Corruption{N: n, Bad: make([]bool, n*n)}
	for i := 0; i < n*n-4; i++ {
		all.Bad[i] = true
		all.Count++
	}
	if got := all.Classify(); got != faults.PatAll {
		t.Errorf("all: classify = %v", got)
	}
}

func TestRowColDoesNotMisfireOnCross(t *testing.T) {
	// A full row plus one element elsewhere that shares no column with
	// at least 2 corrupted entries should be random, not row+col.
	const n = 8
	c := Corruption{N: n, Bad: make([]bool, n*n)}
	for col := 0; col < n; col++ {
		c.Bad[3*n+col] = true
		c.Count++
	}
	c.Bad[5*n+1] = true
	c.Bad[6*n+2] = true
	c.Count += 2
	got := c.Classify()
	if got == faults.PatRowCol || got == faults.PatRow {
		t.Errorf("classify = %v, want random-ish", got)
	}
}

func BenchmarkTiledMxM32Emulator(b *testing.B) {
	prog, err := Build(32)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(2)
	a, bb := randomMatrix(r, 32), randomMatrix(r, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Pack(a, bb, 32)
		if _, err := emu.Run(&emu.Launch{
			Prog: prog, Grid: Grid(32), Block: BlockThreads,
			Global: g, SharedWords: SharedWords,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiledMxMTileRTL(b *testing.B) {
	prog, err := Build(Tile)
	if err != nil {
		b.Fatal(err)
	}
	a, bb := TileInputs(TileRandom, 1)
	m := rtl.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Pack(a, bb, Tile)
		if err := m.Run(prog, 1, BlockThreads, g, SharedWords, 2_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
