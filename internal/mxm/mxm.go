// Package mxm implements the tiled matrix-multiplication mini-app the
// paper characterises at RTL level (§V-A) and reuses inside CNNs: large
// multiplications are split into 8x8 tiles, each assigned to one block of
// 64 threads that stages operands through shared memory between barriers.
//
// The same kernel runs on the RTL machine (one tile, to observe scheduler
// and pipeline fault patterns — Figs. 7–9, Table II) and on the functional
// emulator (full matrices, as the MxM HPC application and the CNN
// convolution engine).
package mxm

import (
	"fmt"
	"math"

	"gpufi/internal/fp32"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

// Tile is the blocking factor: 8x8 output elements per block, matching the
// paper's "optimal tile size is of 8x8".
const Tile = 8

// BlockThreads is the thread count per tile block (2 warps, as in the
// paper's micro-benchmarks).
const BlockThreads = Tile * Tile

// Registers used by the kernel.
const (
	rTid   = isa.Reg(1)
	rTx    = isa.Reg(2)  // column within the tile
	rTy    = isa.Reg(3)  // row within the tile
	rRow   = isa.Reg(4)  // global output row
	rCol   = isa.Reg(5)  // global output column
	rAcc   = isa.Reg(6)  // accumulator
	rT     = isa.Reg(7)  // K-tile loop counter
	rAddr  = isa.Reg(8)  // scratch address
	rVal   = isa.Reg(9)  // scratch value
	rSA    = isa.Reg(10) // shared A element
	rSB    = isa.Reg(11) // shared B element
	rCta   = isa.Reg(12) // block index
	rBRow  = isa.Reg(13) // tile row of this block
	rBCol  = isa.Reg(14) // tile column of this block
	rBase   = isa.Reg(15) // scratch base
	rK      = isa.Reg(16) // unrolled inner index source
	rKStage = isa.Reg(17) // shared-memory staging index
)

// Offsets into the global-memory image for C = A x B, all n x n.
func aOffset(int) int32     { return 0 }
func bOffset(n int) int32   { return int32(n * n) }

// COffset returns the word offset of the output matrix.
func COffset(n int) int32 { return int32(2 * n * n) }

// GlobalWords returns the global-memory image size for an n x n multiply.
func GlobalWords(n int) int { return 3 * n * n }

// log2 returns the exponent when n is a power of two.
func log2(n int) (int32, bool) {
	for s := 0; s < 31; s++ {
		if 1<<uint(s) == n {
			return int32(s), true
		}
	}
	return 0, false
}

// Build assembles the tiled-MxM kernel for n x n matrices (n a power of
// two, n >= Tile). Launch it with grid = (n/Tile)^2 blocks of BlockThreads
// threads and 2*Tile*Tile shared words.
func Build(n int) (*kasm.Program, error) {
	if n < Tile {
		return nil, fmt.Errorf("mxm: n=%d smaller than tile %d", n, Tile)
	}
	logTiles, ok := log2(n / Tile)
	if !ok || n%Tile != 0 {
		return nil, fmt.Errorf("mxm: n=%d must be a power-of-two multiple of %d", n, Tile)
	}
	nTiles := int32(n / Tile)
	b := kasm.New(fmt.Sprintf("tmxm%d", n))

	// Thread coordinates within the tile.
	b.S2R(rTid, isa.SRTid)
	b.AndI(rTx, rTid, Tile-1)
	b.Shr(rTy, rTid, 3)

	// Block coordinates: ctaid = brow * nTiles + bcol.
	b.S2R(rCta, isa.SRCtaid)
	b.Shr(rBRow, rCta, logTiles)
	b.AndI(rBCol, rCta, nTiles-1)

	// Global row/col of this thread's output element.
	b.IMulI(rRow, rBRow, Tile)
	b.IAdd(rRow, rRow, rTy)
	b.IMulI(rCol, rBCol, Tile)
	b.IAdd(rCol, rCol, rTx)

	b.MovF(rAcc, 0)
	b.MovI(rT, nTiles)
	// Loop-invariant addressing, hoisted as a register-blocking compiler
	// would: the k-tile loop advances two pointers and is dominated by
	// FFMA work, matching the injectable-instruction mix of compiled
	// GEMM inner loops.
	b.IMadI(rAddr, rRow, int32(n), rTx)  // A walker: row*n + t*8+tx
	b.IMadI(rBase, rTy, int32(n), rCol) // B walker: (t*8+ty)*n + col
	b.IMadI(rK, rTy, Tile, isa.RZ)      // shared row base: ty*8
	b.IMadI(rKStage, rTy, Tile, rTx)    // sharedA/B[ty*8+tx]

	b.Label("ktile")
	{
		// Stage A[row][t*8+tx] and B[t*8+ty][col].
		b.Gld(rVal, rAddr, aOffset(n))
		b.Sst(rKStage, 0, rVal)
		b.Gld(rVal, rBase, bOffset(n))
		b.Sst(rKStage, Tile*Tile, rVal)

		b.Bar()

		// Unrolled inner product over the staged tiles:
		// acc += sharedA[ty*8+k] * sharedB[k*8+tx].
		for k := int32(0); k < Tile; k++ {
			b.Sld(rSA, rK, k)
			b.Sld(rSB, rTx, Tile*Tile+k*Tile)
			b.FFma(rAcc, rSA, rSB, rAcc)
		}

		b.Bar()

		b.IAddI(rAddr, rAddr, Tile)          // next A tile column
		b.IAddI(rBase, rBase, int32(Tile*n)) // next B tile row
		b.IAddI(rT, rT, -1)
		b.ISetPI(isa.P(0), isa.CmpGT, rT, 0)
		b.BraIf(isa.P(0), "ktile")
	}

	// C[row][col] = acc.
	b.IMadI(rAddr, rRow, int32(n), rCol)
	b.Gst(rAddr, COffset(n), rAcc)
	return b.Finalize()
}

// Grid returns the block count for an n x n multiply.
func Grid(n int) int { t := n / Tile; return t * t }

// SharedWords is the shared-memory requirement of the kernel.
const SharedWords = 2 * Tile * Tile

// Pack assembles the global-memory image from row-major float32 matrices.
func Pack(a, b []float32, n int) []uint32 {
	g := make([]uint32, GlobalWords(n))
	for i, v := range a {
		g[i] = math.Float32bits(v)
	}
	for i, v := range b {
		g[int(bOffset(n))+i] = math.Float32bits(v)
	}
	return g
}

// ExtractC reads the output matrix from a global-memory image.
func ExtractC(g []uint32, n int) []float32 {
	out := make([]float32, n*n)
	for i := range out {
		out[i] = math.Float32frombits(g[int(COffset(n))+i])
	}
	return out
}

// Reference computes C = A x B on the host with the exact FTZ/FFMA
// semantics and accumulation order of the kernel, for golden comparisons.
func Reference(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			acc := float32(0)
			for k := 0; k < n; k++ {
				acc = fp32.Fma(a[row*n+k], b[k*n+col], acc)
			}
			c[row*n+col] = acc
		}
	}
	return c
}

// TileKind selects the t-MxM characterisation input following §V-A: the
// paper picks tiles from CNN feature maps by their content.
type TileKind uint8

// Characterisation tile kinds.
const (
	TileMax    TileKind = iota // highest sum of element values
	TileZero                   // highest number of zeros (feature-map edge)
	TileRandom                 // unbiased interior tile
)

// String implements fmt.Stringer.
func (k TileKind) String() string {
	switch k {
	case TileMax:
		return "Max"
	case TileZero:
		return "Zero"
	default:
		return "Random"
	}
}

// AllTileKinds lists the three characterisation inputs.
func AllTileKinds() []TileKind { return []TileKind{TileMax, TileZero, TileRandom} }

// TileInputs synthesises a pair of 8x8 operand tiles of the given kind.
// The distributions mimic what the paper observed in LeNET/YOLO feature
// maps: Max tiles hold uniformly large activations, Zero tiles are
// padding-dominated (~70% zeros), Random tiles are unbiased.
func TileInputs(kind TileKind, seed uint64) (a, b []float32) {
	r := stats.NewRNG(seed ^ 0xABCD<<16 ^ uint64(kind))
	a = make([]float32, Tile*Tile)
	b = make([]float32, Tile*Tile)
	fill := func(dst []float32) {
		for i := range dst {
			switch kind {
			case TileMax:
				dst[i] = float32(r.Float64Range(1.0, 2.0))
			case TileZero:
				if r.Float64() < 0.7 {
					dst[i] = 0
				} else {
					dst[i] = float32(r.Float64Range(-0.5, 0.5))
				}
			default:
				dst[i] = float32(r.Float64Range(-1.0, 1.0))
			}
		}
	}
	fill(a)
	fill(b)
	return a, b
}
