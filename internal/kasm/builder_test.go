package kasm

import (
	"strings"
	"testing"

	"gpufi/internal/isa"
)

func TestFinalizeAppendsExit(t *testing.T) {
	b := New("empty")
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Op != isa.OpEXIT {
		t.Errorf("empty program = %v, want single EXIT", p.Instrs)
	}

	b = New("hasexit")
	b.Exit()
	p, err = b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 {
		t.Errorf("EXIT duplicated: %v", p.Instrs)
	}
}

func TestLabelResolution(t *testing.T) {
	b := New("loop")
	b.MovI(1, 0)
	b.Label("top")
	b.IAddI(1, 1, 1)
	b.ISetPI(isa.P(0), isa.CmpLT, 1, 10)
	b.BraIf(isa.P(0), "top")
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	bra := p.Instrs[3]
	if bra.Target != 1 {
		t.Errorf("loop target = %d, want 1", bra.Target)
	}
	if bra.Reconv != 4 {
		t.Errorf("backward branch reconv = %d, want fall-through 4", bra.Reconv)
	}
}

func TestForwardBranchReconvDefaultsToTarget(t *testing.T) {
	b := New("ifthen")
	b.ISetPI(isa.P(0), isa.CmpGT, 1, 0)
	b.BraIf(isa.NotP(0), "skip")
	b.MovI(2, 1)
	b.Label("skip")
	b.Exit()
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	bra := p.Instrs[1]
	if bra.Target != 3 || bra.Reconv != 3 {
		t.Errorf("if-then branch = target %d reconv %d, want 3/3", bra.Target, bra.Reconv)
	}
}

func TestUniformBranchHasNoReconv(t *testing.T) {
	b := New("uniform")
	b.Bra("end")
	b.Nop()
	b.Label("end")
	b.Exit()
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Reconv != 0 {
		t.Errorf("uniform branch reconv = %d, want 0", p.Instrs[0].Reconv)
	}
}

func TestIfElseMacroShape(t *testing.T) {
	b := New("ifelse")
	b.ISetPI(isa.P(0), isa.CmpGT, 1, 0)
	b.IfElse(isa.P(0),
		func() { b.MovI(2, 1) },
		func() { b.MovI(2, 2) },
	)
	b.Exit()
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Expect: ISETP; @!P0 BRA else (reconv end); MOV; BRA end; else: MOV; end: EXIT
	bra := p.Instrs[1]
	if bra.Op != isa.OpBRA || !bra.Guard.Neg() {
		t.Fatalf("instruction 1 = %v, want guarded BRA", bra)
	}
	elsePC, endPC := int(bra.Target), int(bra.Reconv)
	if elsePC != 4 || endPC != 5 {
		t.Errorf("if-else: else=%d end=%d, want 4/5", elsePC, endPC)
	}
	if p.Instrs[3].Op != isa.OpBRA || p.Instrs[3].Guard != isa.PredTrue {
		t.Errorf("then path must end with uniform BRA, got %v", p.Instrs[3])
	}
}

func TestLoopMacro(t *testing.T) {
	b := New("loopmacro")
	b.MovI(1, 0)
	b.Loop(
		func() { b.IAddI(1, 1, 1) },
		func() isa.Pred {
			b.ISetPI(isa.P(1), isa.CmpLT, 1, 5)
			return isa.P(1)
		},
	)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, in := range p.Instrs {
		if in.Op == isa.OpBRA && in.Target == 1 && in.Guard == isa.P(1) {
			found = true
		}
	}
	if !found {
		t.Errorf("loop macro missing backward branch:\n%s", p.Disasm())
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("bad")
	b.Bra("nowhere")
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("want undefined-label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := New("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-label error, got %v", err)
	}
}

func TestUndefinedReconvLabel(t *testing.T) {
	b := New("badreconv")
	b.Label("t")
	b.BraIfReconv(isa.P(0), "t", "missing")
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("want undefined reconv error, got %v", err)
	}
}

func TestStickyError(t *testing.T) {
	b := New("sticky")
	b.Emit(isa.Instr{Op: isa.OpInvalid})
	b.Nop() // should not clear the error
	if _, err := b.Finalize(); err == nil {
		t.Error("invalid emit not reported by Finalize")
	}
}

func TestWordsMatchInstrs(t *testing.T) {
	b := New("encoded")
	b.MovF(1, 2.5)
	b.FAdd(2, 1, 1)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := isa.DecodeProgram(p.Words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		if decoded[i] != p.Instrs[i] {
			t.Errorf("word %d decodes to %v, want %v", i, decoded[i], p.Instrs[i])
		}
	}
}

func TestDisasmListsLabels(t *testing.T) {
	b := New("dis")
	b.Label("start")
	b.Nop()
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Disasm(), "start:") {
		t.Errorf("disasm missing label:\n%s", p.Disasm())
	}
}

func TestGuardedMemoryHelpers(t *testing.T) {
	b := New("mem")
	b.GldIf(isa.P(0), 1, 2, 4)
	b.GstIf(isa.NotP(0), 2, 4, 1)
	b.Sld(3, 2, 0)
	b.Sst(2, 0, 3)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Guard != isa.P(0) || p.Instrs[1].Guard != isa.NotP(0) {
		t.Error("guards not applied to memory ops")
	}
	if p.Instrs[2].Op != isa.OpSLD || p.Instrs[3].Op != isa.OpSST {
		t.Error("shared memory helpers emit wrong opcodes")
	}
}
