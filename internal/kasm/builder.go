// Package kasm is a small kernel assembler for the gpufi ISA.
//
// Micro-benchmarks, HPC applications and CNN layers are all written against
// this builder. It resolves labels, fills in SIMT reconvergence points for
// potentially divergent branches (the role the SSY instruction plays in
// pre-Volta SASS), and produces both the decoded instruction slice executed
// by the functional emulator and the encoded binary image fetched by the
// RTL model.
package kasm

import (
	"fmt"

	"gpufi/internal/isa"
)

// Program is a finalized kernel.
type Program struct {
	Name   string
	Instrs []isa.Instr
	Words  []isa.Word
	Labels map[string]int
}

// Disasm returns the full disassembly listing of the program.
func (p *Program) Disasm() string {
	rev := make(map[int][]string)
	for name, pc := range p.Labels {
		rev[pc] = append(rev[pc], name)
	}
	out := ""
	for pc, in := range p.Instrs {
		for _, l := range rev[pc] {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %3d: %s\n", pc, in)
	}
	return out
}

type fixup struct {
	pc     int    // instruction to patch
	target string // label for Target field
	reconv string // label for Reconv field ("" = auto)
}

// Builder accumulates instructions and resolves control flow. Errors are
// sticky: the first error is reported by Finalize.
type Builder struct {
	name   string
	instrs []isa.Instr
	labels map[string]int
	fixups []fixup
	nauto  int
	err    error
}

// New returns an empty Builder for a kernel with the given name.
func New(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kasm %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.instrs) }

// Emit appends a raw instruction. Most callers should use the typed
// helpers; Emit exists for fault-model experiments that need unusual
// encodings.
func (b *Builder) Emit(in isa.Instr) {
	if err := in.Validate(); err != nil {
		b.fail("at %d: %v", len(b.instrs), err)
	}
	b.instrs = append(b.instrs, in)
}

// Label binds name to the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.instrs)
}

func (b *Builder) autoLabel(prefix string) string {
	b.nauto++
	return fmt.Sprintf(".%s%d", prefix, b.nauto)
}

// --- Arithmetic -----------------------------------------------------------

// op3 emits a three-register-operand instruction d = op(a, s, c).
func (b *Builder) op3(op isa.Opcode, d, a, s, c isa.Reg) {
	b.Emit(isa.Instr{Op: op, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, SrcC: c})
}

func (b *Builder) op2(op isa.Opcode, d, a, s isa.Reg) { b.op3(op, d, a, s, isa.RZ) }
func (b *Builder) op1(op isa.Opcode, d, a isa.Reg)    { b.op3(op, d, a, isa.RZ, isa.RZ) }

// FAdd emits d = a + s.
func (b *Builder) FAdd(d, a, s isa.Reg) { b.op2(isa.OpFADD, d, a, s) }

// FMul emits d = a * s.
func (b *Builder) FMul(d, a, s isa.Reg) { b.op2(isa.OpFMUL, d, a, s) }

// FFma emits d = a*s + c with a single rounding.
func (b *Builder) FFma(d, a, s, c isa.Reg) { b.op3(isa.OpFFMA, d, a, s, c) }

// IAdd emits d = a + s.
func (b *Builder) IAdd(d, a, s isa.Reg) { b.op2(isa.OpIADD, d, a, s) }

// IAddI emits d = a + imm.
func (b *Builder) IAddI(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpIADD, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// IMul emits d = a * s (low 32 bits).
func (b *Builder) IMul(d, a, s isa.Reg) { b.op2(isa.OpIMUL, d, a, s) }

// IMulI emits d = a * imm.
func (b *Builder) IMulI(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpIMUL, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// IMad emits d = a*s + c.
func (b *Builder) IMad(d, a, s, c isa.Reg) { b.op3(isa.OpIMAD, d, a, s, c) }

// IMadI emits d = a*imm + c.
func (b *Builder) IMadI(d, a isa.Reg, imm int32, c isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpIMAD, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcC: c, UseImmB: true, Imm: imm})
}

// FSin emits d = sin(a).
func (b *Builder) FSin(d, a isa.Reg) { b.op1(isa.OpFSIN, d, a) }

// FExp emits d = e^a.
func (b *Builder) FExp(d, a isa.Reg) { b.op1(isa.OpFEXP, d, a) }

// FRcp emits d = 1/a.
func (b *Builder) FRcp(d, a isa.Reg) { b.op1(isa.OpFRCP, d, a) }

// FRsqrt emits d = 1/sqrt(a).
func (b *Builder) FRsqrt(d, a isa.Reg) { b.op1(isa.OpFRSQRT, d, a) }

// Shl emits d = a << imm.
func (b *Builder) Shl(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpSHL, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// Shr emits d = a >> imm (logical).
func (b *Builder) Shr(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpSHR, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// And emits d = a & s.
func (b *Builder) And(d, a, s isa.Reg) { b.op2(isa.OpAND, d, a, s) }

// AndI emits d = a & imm.
func (b *Builder) AndI(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpAND, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// Or emits d = a | s.
func (b *Builder) Or(d, a, s isa.Reg) { b.op2(isa.OpOR, d, a, s) }

// Xor emits d = a ^ s.
func (b *Builder) Xor(d, a, s isa.Reg) { b.op2(isa.OpXOR, d, a, s) }

// XorI emits d = a ^ imm.
func (b *Builder) XorI(d, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpXOR, Guard: isa.PredTrue, Dst: d, SrcA: a, UseImmB: true, Imm: imm})
}

// IMin emits d = min(a, s) (signed).
func (b *Builder) IMin(d, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpIMNMX, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, PDst: isa.PredTrue})
}

// IMax emits d = max(a, s) (signed).
func (b *Builder) IMax(d, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpIMNMX, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, PDst: isa.NotP(isa.PT)})
}

// FMin emits d = min(a, s).
func (b *Builder) FMin(d, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpFMNMX, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, PDst: isa.PredTrue})
}

// FMax emits d = max(a, s).
func (b *Builder) FMax(d, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpFMNMX, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, PDst: isa.NotP(isa.PT)})
}

// F2I emits d = int32(trunc(a)).
func (b *Builder) F2I(d, a isa.Reg) { b.op1(isa.OpF2I, d, a) }

// I2F emits d = float32(a).
func (b *Builder) I2F(d, a isa.Reg) { b.op1(isa.OpI2F, d, a) }

// --- Moves and predicates --------------------------------------------------

// Mov emits d = a.
func (b *Builder) Mov(d, a isa.Reg) { b.op1(isa.OpMOV, d, a) }

// MovI emits d = imm (integer payload).
func (b *Builder) MovI(d isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpMOV32I, Guard: isa.PredTrue, Dst: d, Imm: imm})
}

// MovF emits d = f (float32 payload).
func (b *Builder) MovF(d isa.Reg, f float32) {
	b.Emit(isa.Instr{Op: isa.OpMOV32I, Guard: isa.PredTrue, Dst: d}.WithFImm(f))
}

// S2R emits d = special register sr.
func (b *Builder) S2R(d isa.Reg, sr isa.SpecialReg) {
	b.Emit(isa.Instr{Op: isa.OpS2R, Guard: isa.PredTrue, Dst: d, Imm: int32(sr)})
}

// Sel emits d = p ? a : s.
func (b *Builder) Sel(d, a, s isa.Reg, p isa.Pred) {
	b.Emit(isa.Instr{Op: isa.OpSEL, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, PDst: p})
}

// ISet emits d = (a cmp s) ? ~0 : 0.
func (b *Builder) ISet(d isa.Reg, cmp isa.Cmp, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpISET, Guard: isa.PredTrue, Dst: d, SrcA: a, SrcB: s, Cmp: cmp})
}

// ISetP emits p = (a cmp s) on signed integers.
func (b *Builder) ISetP(p isa.Pred, cmp isa.Cmp, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpISETP, Guard: isa.PredTrue, PDst: p, SrcA: a, SrcB: s, Cmp: cmp})
}

// ISetPI emits p = (a cmp imm) on signed integers.
func (b *Builder) ISetPI(p isa.Pred, cmp isa.Cmp, a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpISETP, Guard: isa.PredTrue, PDst: p, SrcA: a, Cmp: cmp, UseImmB: true, Imm: imm})
}

// FSetP emits p = (a cmp s) on float32.
func (b *Builder) FSetP(p isa.Pred, cmp isa.Cmp, a, s isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpFSETP, Guard: isa.PredTrue, PDst: p, SrcA: a, SrcB: s, Cmp: cmp})
}

// --- Memory -----------------------------------------------------------------

// Gld emits d = global[addr + off] (word addressed).
func (b *Builder) Gld(d, addr isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpGLD, Guard: isa.PredTrue, Dst: d, SrcA: addr, Imm: off})
}

// Gst emits global[addr + off] = v.
func (b *Builder) Gst(addr isa.Reg, off int32, v isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpGST, Guard: isa.PredTrue, SrcA: addr, SrcC: v, Imm: off})
}

// GldIf and GstIf are guarded variants used to mask out-of-range threads.
func (b *Builder) GldIf(p isa.Pred, d, addr isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpGLD, Guard: p, Dst: d, SrcA: addr, Imm: off})
}

// GstIf emits @p global[addr + off] = v.
func (b *Builder) GstIf(p isa.Pred, addr isa.Reg, off int32, v isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpGST, Guard: p, SrcA: addr, SrcC: v, Imm: off})
}

// Sld emits d = shared[addr + off].
func (b *Builder) Sld(d, addr isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpSLD, Guard: isa.PredTrue, Dst: d, SrcA: addr, Imm: off})
}

// Sst emits shared[addr + off] = v.
func (b *Builder) Sst(addr isa.Reg, off int32, v isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpSST, Guard: isa.PredTrue, SrcA: addr, SrcC: v, Imm: off})
}

// --- Control flow ------------------------------------------------------------

// Bar emits a block-wide barrier.
func (b *Builder) Bar() { b.Emit(isa.Instr{Op: isa.OpBAR, Guard: isa.PredTrue}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.OpNOP, Guard: isa.PredTrue}) }

// Exit emits a thread-exit.
func (b *Builder) Exit() { b.Emit(isa.Instr{Op: isa.OpEXIT, Guard: isa.PredTrue}) }

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: label})
	b.Emit(isa.Instr{Op: isa.OpBRA, Guard: isa.PredTrue})
}

// BraIf emits a potentially divergent branch taken by threads where p
// holds. The reconvergence point defaults to the branch target for forward
// branches (if-then shape) and to the fall-through instruction for backward
// branches (loop shape); use BraIfReconv for if-else shapes.
func (b *Builder) BraIf(p isa.Pred, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: label})
	b.Emit(isa.Instr{Op: isa.OpBRA, Guard: p})
}

// BraIfReconv emits a divergent branch with an explicit reconvergence label.
func (b *Builder) BraIfReconv(p isa.Pred, label, reconv string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: label, reconv: reconv})
	b.Emit(isa.Instr{Op: isa.OpBRA, Guard: p})
}

// If emits an if-then region: body runs for threads where p holds.
func (b *Builder) If(p isa.Pred, body func()) {
	skip := b.autoLabel("endif")
	b.BraIf(negate(p), skip)
	body()
	b.Label(skip)
}

// IfElse emits an if-then-else region with correct reconvergence at the end.
func (b *Builder) IfElse(p isa.Pred, thenBody, elseBody func()) {
	elseL := b.autoLabel("else")
	endL := b.autoLabel("endif")
	b.BraIfReconv(negate(p), elseL, endL)
	thenBody()
	b.Bra(endL)
	b.Label(elseL)
	elseBody()
	b.Label(endL)
}

// Loop emits a do-while loop: body runs at least once and repeats while the
// predicate produced by cond holds. cond must emit the code that sets the
// predicate it returns.
func (b *Builder) Loop(body func(), cond func() isa.Pred) {
	top := b.autoLabel("loop")
	b.Label(top)
	body()
	p := cond()
	b.BraIf(p, top)
}

// negate flips the negation bit of a predicate.
func negate(p isa.Pred) isa.Pred {
	if p.Neg() {
		return isa.P(p.Index())
	}
	return isa.NotP(p.Index())
}

// Finalize resolves labels, appends a trailing EXIT when the program does
// not already end with one, validates every instruction and encodes the
// binary image.
func (b *Builder) Finalize() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if n := len(b.instrs); n == 0 || b.instrs[n-1].Op != isa.OpEXIT {
		b.Exit()
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.target]
		if !ok {
			return nil, fmt.Errorf("kasm %q: undefined label %q", b.name, f.target)
		}
		if target > 0xFFFF || f.pc > 0xFFFF {
			return nil, fmt.Errorf("kasm %q: program too large for 16-bit branch targets", b.name)
		}
		in := &b.instrs[f.pc]
		in.Target = uint16(target)
		switch {
		case f.reconv != "":
			r, ok := b.labels[f.reconv]
			if !ok {
				return nil, fmt.Errorf("kasm %q: undefined reconvergence label %q", b.name, f.reconv)
			}
			in.Reconv = uint16(r)
		case in.Guard == isa.PredTrue:
			in.Reconv = 0 // uniform branch, never diverges
		case target > f.pc:
			in.Reconv = uint16(target) // forward if-then
		default:
			in.Reconv = uint16(f.pc + 1) // backward loop: reconverge at exit
		}
	}
	for pc, in := range b.instrs {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("kasm %q at %d: %w", b.name, pc, err)
		}
		if in.Op == isa.OpBRA && int(in.Target) >= len(b.instrs) {
			return nil, fmt.Errorf("kasm %q at %d: branch target %d out of range", b.name, pc, in.Target)
		}
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	instrs := make([]isa.Instr, len(b.instrs))
	copy(instrs, b.instrs)
	return &Program{
		Name:   b.name,
		Instrs: instrs,
		Words:  isa.EncodeProgram(instrs),
		Labels: labels,
	}, nil
}

// MustFinalize is Finalize for statically known-good kernels; it panics on
// error and is intended for package-level kernel construction in tests and
// workload definitions.
func MustFinalize(b *Builder) *Program {
	p, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return p
}
