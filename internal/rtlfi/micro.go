// Package rtlfi is the RTL fault-injection campaign engine: it drives the
// internal/rtl machine through the paper's micro-benchmarks (one per
// characterised SASS instruction, 64 threads / 2 warps each) and the
// tiled-MxM mini-app, injecting single-transient flip-flop faults and
// classifying their effect as Masked, SDC or DUE (§IV-A, §V).
package rtlfi

import (
	"fmt"
	"math"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

// MicroThreads is the paper's micro-benchmark thread count (2 warps).
const MicroThreads = 64

// Global-memory layout of a micro-benchmark (word offsets).
const (
	inAOff  = 0
	inBOff  = MicroThreads
	inCOff  = 2 * MicroThreads
	outOff  = 3 * MicroThreads
	out2Off = 4 * MicroThreads
	microWords = 5 * MicroThreads
)

// Registers used by micro-benchmarks.
const (
	mTid = isa.Reg(1)
	mA   = isa.Reg(2)
	mB   = isa.Reg(3)
	mC   = isa.Reg(4)
	mD   = isa.Reg(5)
	mM   = isa.Reg(6)
)

// braThreshold is the comparison constant of the BRA/ISET benchmarks;
// inputs are generated on both sides of it so the branch diverges.
const braThreshold = 0

// BuildMicro assembles the micro-benchmark for one characterised opcode.
// Arithmetic benchmarks load per-thread operands, execute the target
// instruction and store its result; the memory benchmarks exercise
// load/store chains; the control benchmarks set registers, branch, and
// store path markers (§V-A).
func BuildMicro(op isa.Opcode) (*kasm.Program, error) {
	b := kasm.New("micro_" + op.String())
	b.S2R(mTid, isa.SRTid)
	switch op {
	case isa.OpFADD, isa.OpFMUL, isa.OpIADD, isa.OpIMUL:
		b.Gld(mA, mTid, inAOff)
		b.Gld(mB, mTid, inBOff)
		b.Emit(isa.Instr{Op: op, Guard: isa.PredTrue, Dst: mD, SrcA: mA, SrcB: mB, SrcC: isa.RZ})
		b.Gst(mTid, outOff, mD)
	case isa.OpFFMA, isa.OpIMAD:
		b.Gld(mA, mTid, inAOff)
		b.Gld(mB, mTid, inBOff)
		b.Gld(mC, mTid, inCOff)
		b.Emit(isa.Instr{Op: op, Guard: isa.PredTrue, Dst: mD, SrcA: mA, SrcB: mB, SrcC: mC})
		b.Gst(mTid, outOff, mD)
	case isa.OpFSIN, isa.OpFEXP, isa.OpFRCP, isa.OpFRSQRT:
		// FRCP/FRSQRT extend the paper's 12-instruction set — §VII notes
		// the framework "allows future updates ... extended instructions
		// evaluation".
		b.Gld(mA, mTid, inAOff)
		b.Emit(isa.Instr{Op: op, Guard: isa.PredTrue, Dst: mD, SrcA: mA, SrcB: isa.RZ, SrcC: isa.RZ})
		b.Gst(mTid, outOff, mD)
	case isa.OpGLD:
		// Load followed by store (§V-A).
		b.Gld(mA, mTid, inAOff)
		b.Gst(mTid, outOff, mA)
	case isa.OpGST:
		// Store-dominated chain: the loaded value is stored twice.
		b.Gld(mA, mTid, inAOff)
		b.Gst(mTid, outOff, mA)
		b.Gst(mTid, out2Off, mA)
	case isa.OpISET:
		b.Gld(mA, mTid, inAOff)
		b.ISetPI(isa.P(0), isa.CmpLT, mA, braThreshold)
		b.ISet(mD, isa.CmpLT, mA, isa.RZ)
		b.Gst(mTid, outOff, mD)
	case isa.OpBRA:
		// Set registers, branch on the condition, store path markers. A
		// fault is detected when a set register is wrong or the branch
		// goes the wrong way (§V-A).
		b.Gld(mA, mTid, inAOff)
		b.MovI(mM, 0)
		b.ISetPI(isa.P(0), isa.CmpLT, mA, braThreshold)
		b.IfElse(isa.P(0),
			func() { b.MovI(mM, 0x0000AAAA) },
			func() { b.MovI(mM, 0x00005555) },
		)
		b.ISet(mD, isa.CmpLT, mA, isa.RZ)
		b.Gst(mTid, outOff, mM)
		b.Gst(mTid, out2Off, mD)
	default:
		return nil, fmt.Errorf("rtlfi: opcode %s has no micro-benchmark", op)
	}
	return b.Finalize()
}

// MicroWords returns the global-memory image size of a micro-benchmark.
func MicroWords() int { return microWords }

// isIntOp reports whether the benchmark operands are integers.
func isIntOp(op isa.Opcode) bool {
	switch op {
	case isa.OpIADD, isa.OpIMUL, isa.OpIMAD, isa.OpISET, isa.OpBRA, isa.OpGLD, isa.OpGST:
		return true
	}
	return false
}

// rangeFloat draws one float operand from the paper's S/M/L bounds.
func rangeFloat(r *stats.RNG, rng faults.InputRange) float32 {
	lo, hi := faults.RangeBounds(rng)
	return float32(r.Float64Range(lo, hi))
}

// rangeInt draws one integer operand of S/M/L magnitude. The paper's L
// bound (up to 12.5e9) exceeds the int32 range, so integer L values are
// clamped to [1e9, 2e9] — a documented deviation (DESIGN.md §6).
func rangeInt(r *stats.RNG, rng faults.InputRange) int32 {
	switch rng {
	case faults.RangeSmall:
		return int32(r.Intn(7) + 1)
	case faults.RangeMedium:
		return int32(r.Intn(58) + 2)
	default:
		return int32(r.Intn(1_000_000_000) + 1_000_000_000)
	}
}

// sfuInput draws a special-function operand in (0, pi/2), the SFU
// operating regime the paper characterises ("avoiding range reduction").
// The range index selects the sub-interval so campaigns remain
// range-parameterised.
func sfuInput(r *stats.RNG, rng faults.InputRange) float32 {
	const third = math.Pi / 2 / 3
	lo := float64(rng) * third
	return float32(r.Float64Range(lo+0.01, lo+third-0.01))
}

// MicroInputs builds the global-memory image for one campaign value draw:
// every thread receives the same operand pair, as in the paper's
// micro-benchmarks; control benchmarks alternate per-thread signs so the
// branch actually diverges.
func MicroInputs(op isa.Opcode, rng faults.InputRange, r *stats.RNG) []uint32 {
	g := make([]uint32, microWords)
	switch {
	case op == isa.OpFSIN || op == isa.OpFEXP:
		v := sfuInput(r, rng)
		for i := 0; i < MicroThreads; i++ {
			g[inAOff+i] = math.Float32bits(v)
		}
	case op == isa.OpFRCP || op == isa.OpFRSQRT:
		v := rangeFloat(r, rng) // full S/M/L ranges (no range-reduction limit)
		for i := 0; i < MicroThreads; i++ {
			g[inAOff+i] = math.Float32bits(v)
		}
	case op == isa.OpISET || op == isa.OpBRA:
		// Signed values straddling the threshold: even threads negative.
		mag := rangeInt(r, rng)
		for i := 0; i < MicroThreads; i++ {
			v := mag
			if i%2 == 0 {
				v = -mag
			}
			g[inAOff+i] = uint32(v)
		}
	case op == isa.OpGLD || op == isa.OpGST:
		v := rangeInt(r, rng)
		for i := 0; i < MicroThreads; i++ {
			g[inAOff+i] = uint32(v) + uint32(i)
		}
	case isIntOp(op):
		a, b, c := rangeInt(r, rng), rangeInt(r, rng), rangeInt(r, rng)
		for i := 0; i < MicroThreads; i++ {
			g[inAOff+i] = uint32(a)
			g[inBOff+i] = uint32(b)
			g[inCOff+i] = uint32(c)
		}
	default:
		a, b, c := rangeFloat(r, rng), rangeFloat(r, rng), rangeFloat(r, rng)
		for i := 0; i < MicroThreads; i++ {
			g[inAOff+i] = math.Float32bits(a)
			g[inBOff+i] = math.Float32bits(b)
			g[inCOff+i] = math.Float32bits(c)
		}
	}
	return g
}

// outputWords lists the output word offsets checked for SDCs, per thread.
func outputOffsets(op isa.Opcode) []int {
	if op == isa.OpGST || op == isa.OpBRA {
		return []int{outOff, out2Off}
	}
	return []int{outOff}
}

// ModuleUsed reports whether a module is exercised by an opcode's
// micro-benchmark — the paper does not inject into idle functional units
// ("we have not considered injections in functional units for GLD, GST,
// BRA, and ISET as the FUs are idle", §V-B).
func ModuleUsed(mod faults.Module, op isa.Opcode) bool {
	switch mod {
	case faults.ModFP32:
		return op == isa.OpFADD || op == isa.OpFMUL || op == isa.OpFFMA
	case faults.ModINT:
		return op == isa.OpIADD || op == isa.OpIMUL || op == isa.OpIMAD
	case faults.ModSFU, faults.ModSFUCtl:
		return op == isa.OpFSIN || op == isa.OpFEXP ||
			op == isa.OpFRCP || op == isa.OpFRSQRT
	default: // scheduler and pipeline serve every instruction
		return true
	}
}

// ExtendedOpcodes lists the instructions beyond the paper's 12 for which
// micro-benchmarks exist (the §VII extensibility path).
func ExtendedOpcodes() []isa.Opcode {
	return []isa.Opcode{isa.OpFRCP, isa.OpFRSQRT}
}
