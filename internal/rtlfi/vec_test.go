package rtlfi

import (
	"reflect"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// TestMicroBitParallelBitIdentical is the march engine's anchor
// regression: the default engine (bit-parallel marching on) must be
// byte-identical to NoBitParallel runs across every module family, plus
// a dense campaign where lanes park, thrash and retire heavily. The
// cycle accounting must agree exactly — a marched fault's simulated +
// skipped split covers the same cycle span its scalar replay would.
func TestMicroBitParallelBitIdentical(t *testing.T) {
	// Fault counts are dense enough that every family fills at least one
	// full lane chunk per draw: the march engine only takes near-full
	// chunks (sparser groups fall through to the bit-identical scalar
	// path), so a sparse spec would not exercise the march at all.
	specs := []Spec{
		{Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32, NumFaults: 16_000, Seed: 471},
		{Op: isa.OpIMAD, Range: faults.RangeLarge, Module: faults.ModINT, NumFaults: 16_000, Seed: 472},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModSFU, NumFaults: 16_000, Seed: 473},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModSFUCtl, NumFaults: 16_000, Seed: 474},
		{Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModSched, NumFaults: 16_000, Seed: 475},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 16_000, Seed: 476},
		// A denser campaign still: many chunks per draw means heavy
		// parking, retirement and divergence-plane churn.
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 100_000, Seed: 477},
	}
	var vectorTotal uint64
	for _, spec := range specs {
		vec, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoBitParallel = true
		plain, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		assertMicroEqual(t, vec, plain)
		if plain.VectorFaults != 0 || plain.Marches != 0 {
			t.Errorf("%s/%s: NoBitParallel run reported %d vector faults in %d marches",
				spec.Op, spec.Module, plain.VectorFaults, plain.Marches)
		}
		if vt, pt := vec.SimCycles+vec.SkippedCycles, plain.SimCycles+plain.SkippedCycles; vt != pt {
			t.Errorf("%s/%s: cycle accounting: marched %d simulated + %d skipped != %d scalar",
				spec.Op, spec.Module, vec.SimCycles, vec.SkippedCycles, pt)
		}
		if vec.VectorFaults == 0 {
			t.Errorf("%s/%s: no faults marched; the spec no longer exercises the march engine", spec.Op, spec.Module)
		} else {
			if occ := vec.LaneOccupancy(); occ <= 0 || occ > 1 {
				t.Errorf("%s/%s: lane occupancy %.3f outside (0, 1]", spec.Op, spec.Module, occ)
			}
			if rate := vec.VectorRate(); rate <= 0 || rate > 1 {
				t.Errorf("%s/%s: vector rate %.3f outside (0, 1]", spec.Op, spec.Module, rate)
			}
		}
		t.Logf("%s/%s: %d/%d faults marched in %d marches (occupancy %.2f)",
			spec.Op, spec.Module, vec.VectorFaults, spec.NumFaults, vec.Marches, vec.LaneOccupancy())
		vectorTotal += vec.VectorFaults
	}
	if vectorTotal == 0 {
		t.Error("no faults marched in any module family; the regression does not exercise the march engine")
	}
}

// TestTMXMBitParallelBitIdentical mirrors the regression for the t-MxM
// campaign path.
func TestTMXMBitParallelBitIdentical(t *testing.T) {
	for _, mod := range []faults.Module{faults.ModSched, faults.ModPipe} {
		// Dense enough to fill whole lane chunks; a sparse t-MxM spec
		// would fall through to the scalar path and march nothing.
		spec := TMXMSpec{Module: mod, Kind: 2 /* Random */, NumFaults: 10_000, Seed: 79}
		vec, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		if vec.VectorFaults == 0 {
			t.Errorf("%s: no faults marched; the spec no longer exercises the march engine", mod)
		}
		spec.NoBitParallel = true
		plain, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		if vec.Tally != plain.Tally {
			t.Fatalf("%s tally: marched %+v, NoBitParallel %+v", mod, vec.Tally, plain.Tally)
		}
		if vec.Patterns != plain.Patterns {
			t.Fatalf("%s patterns: %v vs %v", mod, vec.Patterns, plain.Patterns)
		}
		if !reflect.DeepEqual(vec.PatternErrs, plain.PatternErrs) {
			t.Fatalf("%s pattern error pools differ", mod)
		}
		if plain.VectorFaults != 0 {
			t.Errorf("%s: NoBitParallel run reported %d vector faults", mod, plain.VectorFaults)
		}
		if vt, pt := vec.SimCycles+vec.SkippedCycles, plain.SimCycles+plain.SkippedCycles; vt != pt {
			t.Errorf("%s: cycle accounting: %d != %d", mod, vt, pt)
		}
	}
}

// TestMicroModeLattice runs one spec through all five engine modes —
// BitParallel (default), Collapsed, Pruned, FastForward, FullReplay —
// and demands byte-identical campaign results from every rung.
func TestMicroModeLattice(t *testing.T) {
	// Dense enough that the BitParallel rung actually marches (near-full
	// lane chunks); every rung below it strips one engine layer.
	base := Spec{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 12_000, Seed: 481}
	modes := []struct {
		name string
		mod  func(*Spec)
	}{
		{"BitParallel", func(*Spec) {}},
		{"Collapsed", func(s *Spec) { s.NoBitParallel = true }},
		{"Pruned", func(s *Spec) { s.NoBitParallel, s.NoCollapse = true, true }},
		{"FastForward", func(s *Spec) { s.NoBitParallel, s.NoCollapse, s.NoPrune = true, true, true }},
		{"FullReplay", func(s *Spec) {
			s.NoBitParallel, s.NoCollapse, s.NoPrune, s.NoFastForward = true, true, true, true
		}},
	}
	var ref *Result
	for _, m := range modes {
		spec := base
		m.mod(&spec)
		res, err := RunMicro(spec)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		t.Run(m.name, func(t *testing.T) { assertMicroEqual(t, ref, res) })
	}
}

// TestBitParallelCrossValidation is the standing ground-truth guard for
// the march engine: for every module family, run the bit-parallel first
// phase white-box (marchStripe), then fully re-simulate at least 200 of
// its vector-classified faults scalar-ly from cycle 0 — no checkpoints,
// no pruning, no memo — and demand the march's outcome agree on DUE
// status, final memory image, and the classified record (tally,
// syndrome and bits-wrong pools included).
func TestBitParallelCrossValidation(t *testing.T) {
	const wantPerModule = 200
	// Per-module specs: an op that keeps the module busy (FFMA for the
	// FP32 units, IMAD for INT, FSIN for the SFU path) and a fault count
	// high enough that well over wantPerModule faults survive pruning and
	// collapsing into the march.
	cases := []struct {
		mod faults.Module
		op  isa.Opcode
		n   int
	}{
		{faults.ModFP32, isa.OpFFMA, 12_000},
		{faults.ModINT, isa.OpIMAD, 4_000},
		{faults.ModSFU, isa.OpFSIN, 3_000},
		{faults.ModSFUCtl, isa.OpFSIN, 3_000},
		{faults.ModSched, isa.OpFADD, 8_000},
		{faults.ModPipe, isa.OpFSIN, 6_000},
	}
	for _, tc := range cases {
		mod := tc.mod
		t.Run(mod.String(), func(t *testing.T) {
			spec := Spec{Op: tc.op, Range: faults.RangeMedium, Module: mod, NumFaults: tc.n, Seed: 490}
			prog, err := BuildMicro(spec.Op)
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(spec.Seed)
			draws := make([]inputDraw, valuesPerRange)
			dp := make([]*inputDraw, len(draws))
			for i := range draws {
				draws[i].global = MicroInputs(spec.Op, spec.Range, rng)
				dp[i] = &draws[i]
			}
			if err := prepareDraws(dp, prog, MicroThreads, 0, 1_000_000, false, false); err != nil {
				t.Fatal(err)
			}
			jobs := drawJobs(rng, spec.Module, spec.NumFaults, dp)
			ci := buildCollapseIndex(jobs, dp)

			// The march phase as runFaultLoop invokes it: one worker owns
			// the whole stripe.
			var ec engineCounters
			machine := rtl.New()
			dead := make([]bool, len(jobs))
			outs := marchStripe(t.Context(), 0, 1, jobs, dp, prog, MicroThreads, 0, ci, &ec, machine, dead)
			if ec.VectorFaults != uint64(len(outs)) {
				t.Fatalf("march fell back to scalar simulation: %d vector faults, %d outcomes",
					ec.VectorFaults, len(outs))
			}

			// Scalar ground truth: full replay from cycle 0 on fresh state.
			fullSim := func(j faultJob) ([]uint32, error) {
				d := dp[j.draw]
				g := append([]uint32(nil), d.global...)
				machine.Inject(j.fault)
				err := machine.Run(prog, 1, MicroThreads, g, 0, d.goldenCycles*watchdogFactor+1000)
				return g, err
			}
			classified := func(j faultJob, g []uint32, err error) *Result {
				res := &Result{Spec: spec}
				classify(res, spec.Op, j.fault, machine, g, dp[j.draw].golden, err)
				return res
			}

			checked := 0
			for i := range jobs {
				if checked >= wantPerModule {
					break
				}
				sr, ok := outs[i]
				if !ok {
					continue
				}
				j := jobs[i]
				g, err := fullSim(j)
				if (sr.err == nil) != (err == nil) {
					t.Fatalf("fault %+v: DUE mismatch: march %v, scalar %v", j.fault, sr.err, err)
				}
				if err != nil && sr.err.Error() != err.Error() {
					t.Fatalf("fault %+v: DUE causes differ: march %v, scalar %v", j.fault, sr.err, err)
				}
				if err == nil && !reflect.DeepEqual(sr.g, g) {
					t.Fatalf("fault %+v: final memory images differ", j.fault)
				}
				mg := sr.g
				if sr.err != nil {
					mg = g // classify ignores the image on DUE; align the inputs
				}
				mr, fr := classified(j, mg, sr.err), classified(j, g, err)
				if mr.Tally != fr.Tally {
					t.Fatalf("fault %+v: classification differs: march %+v, scalar %+v", j.fault, mr.Tally, fr.Tally)
				}
				if !reflect.DeepEqual(mr.Syndromes, fr.Syndromes) || !reflect.DeepEqual(mr.BitsWrong, fr.BitsWrong) {
					t.Fatalf("fault %+v: syndromes differ", j.fault)
				}
				checked++
			}
			if checked < wantPerModule {
				t.Fatalf("cross-validated only %d marched faults (want >= %d); densify the spec", checked, wantPerModule)
			}
			t.Logf("cross-validated %d marched faults (%d marches, occupancy %.2f)",
				checked, ec.Marches, float64(ec.VectorFaults)/float64(ec.Marches)/float64(rtl.VecMaxLanes))
		})
	}
}
