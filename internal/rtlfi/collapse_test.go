package rtlfi

import (
	"reflect"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// TestMicroCollapseBitIdentical is fault-equivalence collapsing's anchor
// regression, modeled on TestMicroPruneBitIdentical: the default engine
// (collapse on) must be byte-identical to NoCollapse runs across module
// families, and the cycle accounting must agree exactly — a collapsed
// member's whole would-be replay (identical to its representative's, by
// trajectory identity) moves wholesale into SkippedCycles.
// NoBitParallel on both sides isolates the collapse path.
func TestMicroCollapseBitIdentical(t *testing.T) {
	specs := []Spec{
		{Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32, NumFaults: 2000, Seed: 451, NoBitParallel: true},
		{Op: isa.OpIMAD, Range: faults.RangeLarge, Module: faults.ModINT, NumFaults: 2000, Seed: 452, NoBitParallel: true},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModSFU, NumFaults: 2000, Seed: 453, NoBitParallel: true},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 2000, Seed: 454, NoBitParallel: true},
		// A dense campaign: at this fault count classes collide often, so
		// thousands of injections flow through the memo path rather than a
		// handful.
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 100_000, Seed: 455, NoBitParallel: true},
	}
	var collapsedTotal uint64
	for _, spec := range specs {
		collapsed, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoCollapse = true
		plain, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		assertMicroEqual(t, collapsed, plain)
		if plain.CollapsedFaults != 0 {
			t.Errorf("%s/%s: NoCollapse run reported %d collapsed faults", spec.Op, spec.Module, plain.CollapsedFaults)
		}
		if ct, pt := collapsed.SimCycles+collapsed.SkippedCycles, plain.SimCycles+plain.SkippedCycles; ct != pt {
			t.Errorf("%s/%s: cycle accounting: collapsed %d simulated + %d skipped != %d plain",
				spec.Op, spec.Module, collapsed.SimCycles, collapsed.SkippedCycles, pt)
		}
		t.Logf("%s/%s: %d/%d faults collapsed", spec.Op, spec.Module, collapsed.CollapsedFaults, spec.NumFaults)
		collapsedTotal += collapsed.CollapsedFaults
	}
	if collapsedTotal == 0 {
		t.Error("no faults collapsed in any module family; the regression does not exercise the memo path")
	}
}

// TestTMXMCollapseBitIdentical mirrors the regression for the t-MxM path.
func TestTMXMCollapseBitIdentical(t *testing.T) {
	for _, mod := range []faults.Module{faults.ModSched, faults.ModPipe} {
		spec := TMXMSpec{Module: mod, Kind: 2 /* Random */, NumFaults: 200, Seed: 78, NoBitParallel: true}
		collapsed, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoCollapse = true
		plain, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		if collapsed.Tally != plain.Tally {
			t.Fatalf("%s tally: collapsed %+v, NoCollapse %+v", mod, collapsed.Tally, plain.Tally)
		}
		if collapsed.Patterns != plain.Patterns {
			t.Fatalf("%s patterns: %v vs %v", mod, collapsed.Patterns, plain.Patterns)
		}
		if !reflect.DeepEqual(collapsed.PatternErrs, plain.PatternErrs) {
			t.Fatalf("%s pattern error pools differ", mod)
		}
		if plain.CollapsedFaults != 0 {
			t.Errorf("%s: NoCollapse run reported %d collapsed faults", mod, plain.CollapsedFaults)
		}
		if ct, pt := collapsed.SimCycles+collapsed.SkippedCycles, plain.SimCycles+plain.SkippedCycles; ct != pt {
			t.Errorf("%s: cycle accounting: %d != %d", mod, ct, pt)
		}
	}
}

// TestCollapseCrossValidation is the standing trajectory-identity guard
// for equivalence collapsing, the analogue of TestDeadPruneCrossValidation:
// build a dense campaign's collapse index white-box, then fully simulate
// (from cycle 0, no checkpoints, no memo) at least 200 collapsed members
// and their representatives. Each pair must agree on DUE status, final
// memory image (hence classification), simulated cycle count, and the
// classified outcome record — syndrome pools included.
func TestCollapseCrossValidation(t *testing.T) {
	const (
		wantMembers = 200
		numFaults   = 200_000
	)
	spec := Spec{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: numFaults, Seed: 460}
	prog, err := BuildMicro(spec.Op)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(spec.Seed)
	draws := make([]inputDraw, valuesPerRange)
	dp := make([]*inputDraw, len(draws))
	for i := range draws {
		draws[i].global = MicroInputs(spec.Op, spec.Range, rng)
		dp[i] = &draws[i]
	}
	if err := prepareDraws(dp, prog, MicroThreads, 0, 1_000_000, false, false); err != nil {
		t.Fatal(err)
	}
	jobs := drawJobs(rng, spec.Module, spec.NumFaults, dp)
	ci := buildCollapseIndex(jobs, dp)
	if ci == nil {
		t.Fatal("buildCollapseIndex returned nil with liveness traces present")
	}

	// fullSim replays one fault from cycle 0 on a fresh-state machine —
	// the ground truth every engine shortcut must reproduce.
	machine := rtl.New()
	type outcome struct {
		g      []uint32
		err    error
		cycles uint64
	}
	fullSim := func(j faultJob) outcome {
		d := dp[j.draw]
		g := append([]uint32(nil), d.global...)
		machine.Inject(j.fault)
		err := machine.Run(prog, 1, MicroThreads, g, 0, d.goldenCycles*watchdogFactor+1000)
		return outcome{g: g, err: err, cycles: machine.Cycles()}
	}
	classified := func(j faultJob, o outcome) *Result {
		res := &Result{Spec: spec}
		classify(res, spec.Op, j.fault, machine, o.g, dp[j.draw].golden, o.err)
		return res
	}

	repOutcomes := make(map[int]outcome)
	checked := 0
	for i := range jobs {
		if checked >= wantMembers {
			break
		}
		e := ci.at(i)
		if e == nil || e.rep == i {
			continue
		}
		rep, ok := repOutcomes[e.rep]
		if !ok {
			rep = fullSim(jobs[e.rep])
			repOutcomes[e.rep] = rep
		}
		mem := fullSim(jobs[i])
		rj, mj := jobs[e.rep], jobs[i]
		if (rep.err == nil) != (mem.err == nil) {
			t.Fatalf("member %+v vs rep %+v: DUE mismatch: %v vs %v", mj.fault, rj.fault, mem.err, rep.err)
		}
		if mem.err != nil && mem.err.Error() != rep.err.Error() {
			t.Fatalf("member %+v vs rep %+v: DUE causes differ: %v vs %v", mj.fault, rj.fault, mem.err, rep.err)
		}
		if mem.cycles != rep.cycles {
			t.Fatalf("member %+v vs rep %+v: trajectory lengths differ: %d vs %d cycles",
				mj.fault, rj.fault, mem.cycles, rep.cycles)
		}
		if mem.err == nil && !reflect.DeepEqual(mem.g, rep.g) {
			t.Fatalf("member %+v vs rep %+v: final memory images differ", mj.fault, rj.fault)
		}
		mr, rr := classified(mj, mem), classified(rj, rep)
		if mr.Tally != rr.Tally {
			t.Fatalf("member %+v vs rep %+v: classification differs: %+v vs %+v", mj.fault, rj.fault, mr.Tally, rr.Tally)
		}
		if !reflect.DeepEqual(mr.Syndromes, rr.Syndromes) || !reflect.DeepEqual(mr.BitsWrong, rr.BitsWrong) {
			t.Fatalf("member %+v vs rep %+v: syndromes differ", mj.fault, rj.fault)
		}
		checked++
	}
	if checked < wantMembers {
		t.Fatalf("cross-validated only %d collapsed members (want >= %d); densify the spec", checked, wantMembers)
	}
	t.Logf("cross-validated %d collapsed members against %d representatives", checked, len(repOutcomes))
}
