package rtlfi

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file renders the two report artefacts of §IV-A: the general report
// ("the effect (SDC, DUE, Masked) of each injected fault based on the
// characterized instruction, the input value range, and the target
// module") and the detailed report ("the location of the injected fault,
// the golden value, the faulty value, the number of affected bits, the
// number of affected threads ...").

// WriteGeneralReport writes one campaign's general-report row as
// readable text, including the engine's cycle accounting: cycles
// simulated, cycles provably skipped (fast-forward, pruning and
// collapsing), faults classified by dead-site pruning alone, faults
// tallied from an equivalence-class memo, and the derived ratios.
func (r *Result) WriteGeneralReport(w io.Writer) error {
	t := r.Tally
	_, err := fmt.Fprintf(w,
		"campaign op=%s range=%s module=%s injections=%d masked=%d sdc_single=%d sdc_multi=%d due=%d avf_sdc=%.5f avf_due=%.5f avg_threads=%.2f sim_cycles=%d skipped_cycles=%d pruned=%d prune_rate=%.3f collapsed=%d collapse_rate=%.3f vectorized=%d vector_rate=%.3f lane_occupancy=%.3f replay_speedup=%.2f\n",
		r.Spec.Op, r.Spec.Range, r.Spec.Module,
		t.Injections, t.Maskeds, t.SDCSingle, t.SDCMulti, t.DUEs,
		t.AVFSDC(), t.AVFDUE(), t.AvgThreads(),
		r.SimCycles, r.SkippedCycles, r.PrunedFaults, r.PruneRate(),
		r.CollapsedFaults, r.CollapseRate(),
		r.VectorFaults, r.VectorRate(), r.LaneOccupancy(), r.ReplaySpeedup())
	return err
}

// DetailedHeader is the CSV header of the detailed report. Exactly one
// of thread and word is -1 per record: thread identifies the first
// corrupted thread output, word the first corrupted memory word when the
// corruption was found only by the fallback memory scan.
var DetailedHeader = []string{
	"op", "range", "module", "field", "bit", "cycle",
	"thread", "word", "golden", "faulty", "bits_wrong", "threads", "rel_err",
}

// WriteDetailedReport writes every SDC's detailed record as CSV.
func (r *Result) WriteDetailedReport(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(DetailedHeader); err != nil {
		return err
	}
	for _, d := range r.Details {
		rec := []string{
			r.Spec.Op.String(),
			r.Spec.Range.String(),
			r.Spec.Module.String(),
			d.FieldName,
			strconv.Itoa(d.Fault.Bit),
			strconv.FormatUint(d.Fault.Cycle, 10),
			strconv.Itoa(d.Thread),
			strconv.Itoa(d.Word),
			fmt.Sprintf("%#08x", d.Golden),
			fmt.Sprintf("%#08x", d.Faulty),
			strconv.Itoa(d.BitsWrong),
			strconv.Itoa(d.Threads),
			strconv.FormatFloat(d.RelErr, 'g', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FieldBreakdown aggregates SDCs by the flip-flop group that caused them
// — the analysis behind the paper's findings that ~16% of pipeline
// registers (the control ones) cause the multi-thread SDCs and most DUEs.
func (r *Result) FieldBreakdown() map[string]int {
	out := make(map[string]int)
	for _, d := range r.Details {
		out[d.FieldName]++
	}
	return out
}
