package rtlfi

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"gpufi/internal/faults"
	"gpufi/internal/mxm"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// TMXMSpec describes a tiled-MxM characterisation campaign (§V-D): inject
// into Module (scheduler or pipeline registers — the paper skips the
// functional units here) while one 8x8 tile multiplication runs with
// operands of the given kind.
type TMXMSpec struct {
	Module    faults.Module
	Kind      mxm.TileKind
	NumFaults int
	Seed      uint64
	Workers   int

	// NoFastForward disables the golden-prefix checkpoint optimisation;
	// see Spec.NoFastForward.
	NoFastForward bool

	// NoPrune disables dead-site pruning (and with it equivalence
	// collapsing); see Spec.NoPrune.
	NoPrune bool

	// NoCollapse disables fault-equivalence collapsing; see
	// Spec.NoCollapse.
	NoCollapse bool

	// NoBitParallel disables bit-parallel fault simulation; see
	// Spec.NoBitParallel.
	NoBitParallel bool

	// Progress, when non-nil, reports campaign progress; see Spec.Progress
	// for the throttling and concurrency contract.
	Progress func(done, total int)
}

// TMXMResult aggregates a t-MxM campaign: the outcome tally, the spatial
// pattern census (Fig. 8 / Table II) and per-pattern relative-error pools
// (Fig. 9).
type TMXMResult struct {
	Spec        TMXMSpec
	Tally       faults.Tally
	Patterns    [faults.NumPatterns]int
	PatternErrs map[faults.Pattern][]float64
	GoldenCycles uint64

	// SimCycles / SkippedCycles / PrunedFaults / CollapsedFaults /
	// VectorFaults / Marches: see Result.
	SimCycles       uint64
	SkippedCycles   uint64
	PrunedFaults    uint64
	CollapsedFaults uint64
	VectorFaults    uint64
	Marches         uint64
}

// ReplaySpeedup returns the campaign's effective replay speedup; see
// Result.ReplaySpeedup.
func (r *TMXMResult) ReplaySpeedup() float64 { return replaySpeedup(r.SimCycles, r.SkippedCycles) }

// PruneRate returns the share of injections classified by dead-site
// pruning alone.
func (r *TMXMResult) PruneRate() float64 { return pruneRate(r.PrunedFaults, r.Tally.Injections) }

// CollapseRate returns the share of injections tallied from an
// equivalence-class memo instead of being simulated.
func (r *TMXMResult) CollapseRate() float64 {
	return collapseRate(r.CollapsedFaults, r.Tally.Injections)
}

// VectorRate returns the share of injections simulated as bit-parallel
// march lanes.
func (r *TMXMResult) VectorRate() float64 { return vectorRate(r.VectorFaults, r.Tally.Injections) }

// LaneOccupancy returns the mean fill of the campaign's marches; see
// Result.LaneOccupancy.
func (r *TMXMResult) LaneOccupancy() float64 { return laneOccupancy(r.VectorFaults, r.Marches) }

// PatternShare returns the share of multi-element SDCs classified as p,
// over all multi-element SDCs (Table II normalises over multiple
// patterns; single corrupted elements are not listed).
func (r *TMXMResult) PatternShare(p faults.Pattern) float64 {
	multi := 0
	for pat, n := range r.Patterns {
		if faults.Pattern(pat) != faults.PatSingle {
			multi += n
		}
	}
	if multi == 0 {
		return 0
	}
	return float64(r.Patterns[p]) / float64(multi)
}

// RunTMXM executes a t-MxM RTL fault-injection campaign.
func RunTMXM(spec TMXMSpec) (*TMXMResult, error) {
	return RunTMXMCtx(context.Background(), spec)
}

// RunTMXMCtx is RunTMXM with cancellation at fault boundaries; the fault
// list is derived from Spec.Seed so re-runs are bit-identical.
func RunTMXMCtx(ctx context.Context, spec TMXMSpec) (*TMXMResult, error) {
	if spec.Module != faults.ModSched && spec.Module != faults.ModPipe {
		return nil, fmt.Errorf("rtlfi: t-MxM characterises scheduler and pipeline only (got %s)", spec.Module)
	}
	prog, err := mxm.Build(mxm.Tile)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(spec.Seed)

	// Input draws consume the spec RNG serially; golden runs, liveness
	// traces and checkpoint replays then fan out across draws (see
	// prepareDraws for the bit-identity argument).
	type draw struct {
		inputDraw
		goldenC []float32
	}
	draws := make([]draw, valuesPerRange)
	dp := make([]*inputDraw, len(draws))
	for i := range draws {
		a, b := mxm.TileInputs(spec.Kind, rng.Uint64())
		draws[i].global = mxm.Pack(a, b, mxm.Tile)
		dp[i] = &draws[i].inputDraw
	}
	if err := prepareDraws(dp, prog, mxm.BlockThreads, mxm.SharedWords, 5_000_000, spec.NoFastForward, spec.NoPrune); err != nil {
		return nil, err
	}
	for i := range draws {
		draws[i].goldenC = mxm.ExtractC(draws[i].golden, mxm.Tile)
	}

	// Deterministic fault list, then the equivalence classes among its
	// live sites (see RunMicroCtx).
	jobs := drawJobs(rng, spec.Module, spec.NumFaults, dp)
	var collapse *collapseIndex
	if !spec.NoPrune && !spec.NoCollapse {
		collapse = buildCollapseIndex(jobs, dp)
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	partials := make([]*TMXMResult, workers)
	for w := range partials {
		partials[w] = &TMXMResult{Spec: spec, PatternErrs: make(map[faults.Pattern][]float64)}
	}
	counters := make([]engineCounters, workers)
	completed := runFaultLoop(ctx, workers, jobs, dp, prog, mxm.BlockThreads, mxm.SharedWords,
		collapse, !spec.NoBitParallel, counters, spec.Progress, campaignHooks{
			masked: func(w int) { partials[w].Tally.Add(faults.Masked, 0) },
			record: func(w int, _ *rtl.Machine, j faultJob, g []uint32, err error) {
				res := partials[w]
				if err != nil {
					res.Tally.Add(faults.DUE, 0)
					return
				}
				faultyC := mxm.ExtractC(g, mxm.Tile)
				corr := mxm.Compare(draws[j.draw].goldenC, faultyC, mxm.Tile)
				if corr.Count == 0 {
					res.Tally.Add(faults.Masked, 0)
					return
				}
				res.Tally.Add(faults.SDC, corr.Count)
				pat := corr.Classify()
				res.Patterns[pat]++
				finite := make([]float64, 0, len(corr.RelErrs))
				for _, e := range corr.RelErrs {
					if !math.IsInf(e, 0) && !math.IsNaN(e) {
						finite = append(finite, e)
					}
				}
				res.PatternErrs[pat] = append(res.PatternErrs[pat], finite...)
			},
		})
	// Cancellation that lands after the last job finished does not void
	// the campaign: every fault was simulated, so return the result.
	if err := ctx.Err(); err != nil && completed != len(jobs) {
		return nil, err
	}

	out := &TMXMResult{Spec: spec, PatternErrs: make(map[faults.Pattern][]float64), GoldenCycles: draws[0].goldenCycles}
	for w, p := range partials {
		out.Tally.Merge(p.Tally)
		for i, n := range p.Patterns {
			out.Patterns[i] += n
		}
		for pat, errs := range p.PatternErrs {
			out.PatternErrs[pat] = append(out.PatternErrs[pat], errs...)
		}
		out.SimCycles += counters[w].SimCycles
		out.SkippedCycles += counters[w].SkippedCycles
		out.PrunedFaults += counters[w].PrunedFaults
		out.CollapsedFaults += counters[w].CollapsedFaults
		out.VectorFaults += counters[w].VectorFaults
		out.Marches += counters[w].Marches
	}
	return out, nil
}
