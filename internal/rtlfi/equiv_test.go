package rtlfi

import (
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// TestGoldenEquivalenceAllMicrobenchmarks is the framework's anchor
// property: for every characterised opcode and every input range, the
// fault-free RTL machine and the functional emulator must produce
// bit-identical memory images — otherwise syndromes measured at RTL level
// would not transfer to software injection.
func TestGoldenEquivalenceAllMicrobenchmarks(t *testing.T) {
	r := stats.NewRNG(31337)
	ops := append(isa.CharacterizedOpcodes(), ExtendedOpcodes()...)
	m := rtl.New()
	for _, op := range ops {
		prog, err := BuildMicro(op)
		if err != nil {
			t.Fatal(err)
		}
		for _, rng := range faults.AllRanges() {
			for draw := 0; draw < 3; draw++ {
				g := MicroInputs(op, rng, r)
				gRTL := append([]uint32(nil), g...)
				gEmu := append([]uint32(nil), g...)
				if err := m.Run(prog, 1, MicroThreads, gRTL, 0, 1_000_000); err != nil {
					t.Fatalf("%s/%s rtl: %v", op, rng, err)
				}
				if _, err := emu.Run(&emu.Launch{
					Prog: prog, Grid: 1, Block: MicroThreads, Global: gEmu,
				}); err != nil {
					t.Fatalf("%s/%s emu: %v", op, rng, err)
				}
				for i := range gRTL {
					if gRTL[i] != gEmu[i] {
						t.Fatalf("%s/%s draw %d: word %d rtl=%#x emu=%#x",
							op, rng, draw, i, gRTL[i], gEmu[i])
					}
				}
			}
		}
	}
}

// TestExtendedOpcodeCampaigns runs the §VII extension campaigns end to end.
func TestExtendedOpcodeCampaigns(t *testing.T) {
	for _, op := range ExtendedOpcodes() {
		res, err := RunMicro(Spec{
			Op: op, Range: faults.RangeMedium, Module: faults.ModSFU,
			NumFaults: 300, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally.Injections != 300 {
			t.Fatalf("%s: %d injections", op, res.Tally.Injections)
		}
		if res.Tally.SDCs() == 0 {
			t.Errorf("%s: no SDCs from SFU injection (implausible)", op)
		}
	}
}

// TestWorkerCountInvariance: campaign results must not depend on the
// parallelism level.
func TestWorkerCountInvariance(t *testing.T) {
	results := make([]*Result, 0, 3)
	for _, workers := range []int{1, 3, 7} {
		res, err := RunMicro(Spec{
			Op: isa.OpIMUL, Range: faults.RangeLarge, Module: faults.ModINT,
			NumFaults: 150, Seed: 77, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Tally != results[0].Tally {
			t.Errorf("workers=%d tally %+v != workers=1 %+v", []int{1, 3, 7}[i], results[i].Tally, results[0].Tally)
		}
	}
}

// TestTMXMWorkerCountInvariance mirrors the invariance check for the
// t-MxM campaign path.
func TestTMXMWorkerCountInvariance(t *testing.T) {
	var base *TMXMResult
	for _, workers := range []int{1, 4} {
		res, err := RunTMXM(TMXMSpec{
			Module: faults.ModSched, Kind: 2, /* Random */
			NumFaults: 120, Seed: 9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Tally != base.Tally || res.Patterns != base.Patterns {
			t.Errorf("worker-dependent t-MxM results")
		}
	}
}

// TestDetailedReportFields spot-checks the §IV-A detailed-report content.
func TestDetailedReportFields(t *testing.T) {
	res, err := RunMicro(Spec{
		Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModPipe,
		NumFaults: 500, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Details) == 0 {
		t.Skip("no SDCs in this small campaign")
	}
	for _, d := range res.Details {
		if d.Threads < 1 {
			t.Errorf("detail without corrupted threads: %+v", d)
		}
		if d.Golden == d.Faulty {
			t.Errorf("detail with identical golden/faulty words: %+v", d)
		}
		if d.BitsWrong < 1 || d.BitsWrong > 32 {
			t.Errorf("bits wrong = %d", d.BitsWrong)
		}
		if d.Fault.Module != faults.ModPipe {
			t.Errorf("module mismatch in %+v", d)
		}
	}
}
