package rtlfi

import (
	"context"
	"reflect"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtl"
)

// assertMicroEqual compares everything in two campaign results that the
// fast-forward optimisation promises to preserve bit-identically. Spec
// (which carries the NoFastForward flag) and the SimCycles/SkippedCycles
// meta-counters are the only fields allowed to differ.
func assertMicroEqual(t *testing.T, ff, full *Result) {
	t.Helper()
	if ff.Tally != full.Tally {
		t.Fatalf("tally: fast-forward %+v, full replay %+v", ff.Tally, full.Tally)
	}
	if !reflect.DeepEqual(ff.Syndromes, full.Syndromes) {
		t.Fatalf("syndromes differ (%d vs %d entries)", len(ff.Syndromes), len(full.Syndromes))
	}
	if !reflect.DeepEqual(ff.ThreadCounts, full.ThreadCounts) {
		t.Fatal("thread counts differ")
	}
	if !reflect.DeepEqual(ff.BitsWrong, full.BitsWrong) {
		t.Fatal("bits-wrong pools differ")
	}
	if !reflect.DeepEqual(ff.Details, full.Details) {
		t.Fatal("detailed records differ")
	}
	if ff.GoldenCycles != full.GoldenCycles {
		t.Fatalf("golden cycles: %d vs %d", ff.GoldenCycles, full.GoldenCycles)
	}
}

// TestMicroFastForwardBitIdentical is the checkpoint optimisation's
// anchor regression: checkpointed campaigns must be byte-identical to
// full replay, per module family. NoPrune and NoBitParallel on both
// sides isolate the fast-forward path; prune_test.go covers dead-site
// pruning and the combined modes, vec_test.go the bit-parallel engine.
func TestMicroFastForwardBitIdentical(t *testing.T) {
	specs := []Spec{
		{Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 400, Seed: 421, NoPrune: true, NoBitParallel: true},
		{Op: isa.OpIMUL, Range: faults.RangeLarge, Module: faults.ModSched, NumFaults: 400, Seed: 422, NoPrune: true, NoBitParallel: true},
	}
	for _, spec := range specs {
		ff, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoFastForward = true
		full, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		assertMicroEqual(t, ff, full)
		if ff.SkippedCycles == 0 {
			t.Errorf("%s/%s: fast-forward skipped no cycles", spec.Op, spec.Module)
		}
		if full.SkippedCycles != 0 {
			t.Errorf("%s/%s: full replay reported %d skipped cycles", spec.Op, spec.Module, full.SkippedCycles)
		}
		if ff.SimCycles+ff.SkippedCycles != full.SimCycles {
			t.Errorf("%s/%s: cycle accounting: %d simulated + %d skipped != %d full",
				spec.Op, spec.Module, ff.SimCycles, ff.SkippedCycles, full.SimCycles)
		}
	}
}

// TestTMXMFastForwardBitIdentical mirrors the regression for the t-MxM
// campaign path.
func TestTMXMFastForwardBitIdentical(t *testing.T) {
	spec := TMXMSpec{Module: faults.ModPipe, Kind: 2 /* Random */, NumFaults: 200, Seed: 77, NoPrune: true, NoBitParallel: true}
	ff, err := RunTMXM(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NoFastForward = true
	full, err := RunTMXM(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Tally != full.Tally {
		t.Fatalf("tally: fast-forward %+v, full replay %+v", ff.Tally, full.Tally)
	}
	if ff.Patterns != full.Patterns {
		t.Fatalf("patterns: %v vs %v", ff.Patterns, full.Patterns)
	}
	if !reflect.DeepEqual(ff.PatternErrs, full.PatternErrs) {
		t.Fatal("pattern error pools differ")
	}
	if ff.GoldenCycles != full.GoldenCycles {
		t.Fatalf("golden cycles: %d vs %d", ff.GoldenCycles, full.GoldenCycles)
	}
	if ff.SkippedCycles == 0 {
		t.Error("fast-forward skipped no cycles")
	}
	if ff.SimCycles+ff.SkippedCycles != full.SimCycles {
		t.Errorf("cycle accounting: %d + %d != %d", ff.SimCycles, ff.SkippedCycles, full.SimCycles)
	}
}

// TestCancelAfterCompletionKeepsResult: cancellation landing between the
// last job and the post-Wait context check must not discard a campaign
// in which every fault was simulated.
func TestCancelAfterCompletionKeepsResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 60
	res, err := RunMicroCtx(ctx, Spec{
		Op: isa.OpFADD, Range: faults.RangeSmall, Module: faults.ModFP32,
		NumFaults: n, Seed: 3,
		Progress: func(done, total int) {
			if done == total {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("completed campaign discarded: %v", err)
	}
	if res.Tally.Injections != n {
		t.Fatalf("injections = %d, want %d", res.Tally.Injections, n)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	tres, err := RunTMXMCtx(ctx2, TMXMSpec{
		Module: faults.ModSched, Kind: 2, NumFaults: 40, Seed: 4,
		Progress: func(done, total int) {
			if done == total {
				cancel2()
			}
		},
	})
	if err != nil {
		t.Fatalf("completed t-MxM campaign discarded: %v", err)
	}
	if tres.Tally.Injections != 40 {
		t.Fatalf("injections = %d, want 40", tres.Tally.Injections)
	}
}

// TestCancelMidCampaignStillErrors: the completion carve-out must not
// swallow genuine mid-campaign cancellation.
func TestCancelMidCampaignStillErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunMicroCtx(ctx, Spec{
		Op: isa.OpFADD, Range: faults.RangeSmall, Module: faults.ModFP32,
		NumFaults: 500, Seed: 3, Workers: 2,
		Progress: func(done, total int) {
			if done == 5 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled campaign returned a result")
	}
}

// TestClassifyMemoryScanRecordsWord: fallback-scan SDCs must report the
// corrupted memory word in Word and keep Thread at the -1 sentinel
// instead of leaking a word index into the thread field (§V-B data).
func TestClassifyMemoryScanRecordsWord(t *testing.T) {
	machine := rtl.New()
	golden := make([]uint32, MicroWords())
	g := append([]uint32(nil), golden...)
	const corruptedWord = 7 // inside the input region, outside any output area
	g[corruptedWord] = 0xDEADBEEF

	res := &Result{}
	classify(res, isa.OpIADD, rtl.Fault{Module: faults.ModPipe}, machine, g, golden, nil)
	if res.Tally.SDCs() != 1 || len(res.Details) != 1 {
		t.Fatalf("expected one SDC detail, got tally %+v, %d details", res.Tally, len(res.Details))
	}
	d := res.Details[0]
	if d.Thread != -1 {
		t.Errorf("memory-scan record leaked Thread = %d, want -1", d.Thread)
	}
	if d.Word != corruptedWord {
		t.Errorf("Word = %d, want %d", d.Word, corruptedWord)
	}

	// A regular output-region SDC keeps the thread index and the -1 Word.
	g2 := append([]uint32(nil), golden...)
	g2[3*MicroThreads+5] = 1 // thread 5's output word
	res2 := &Result{}
	classify(res2, isa.OpIADD, rtl.Fault{Module: faults.ModPipe}, machine, g2, golden, nil)
	if len(res2.Details) != 1 {
		t.Fatalf("expected one detail, got %d", len(res2.Details))
	}
	if res2.Details[0].Thread != 5 || res2.Details[0].Word != -1 {
		t.Errorf("output record Thread=%d Word=%d, want 5/-1", res2.Details[0].Thread, res2.Details[0].Word)
	}
}
