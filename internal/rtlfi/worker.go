package rtlfi

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"gpufi/internal/faults"
	"gpufi/internal/kasm"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// This file is the campaign engine shared by the micro-benchmark and
// t-MxM workers: the deterministic fault list, the per-fault scaffolding
// (dead-site prune check, checkpoint selection, cycle accounting) and
// fault-equivalence collapsing. The two campaign families differ only in
// how they classify a finished faulty run, which they supply as hooks.

// faultJob is one campaign work item: a single transient fault paired
// with the input draw it is injected under.
type faultJob struct {
	fault rtl.Fault
	draw  int
}

// drawJobs generates the campaign's deterministic fault list from the
// spec RNG: job i targets draw i%valuesPerRange and a uniform (bit,
// cycle) site. It consumes exactly two rng draws per fault, in job
// order, so the stream — and with it every campaign result — is
// bit-identical to the inline generation it replaced.
func drawJobs(rng *stats.RNG, mod faults.Module, n int, draws []*inputDraw) []faultJob {
	jobs := make([]faultJob, n)
	modBits := rtl.ModuleBits(mod)
	for i := range jobs {
		d := i % valuesPerRange
		jobs[i] = faultJob{
			draw: d,
			fault: rtl.Fault{
				Module: mod,
				Bit:    rng.Intn(modBits),
				Cycle:  uint64(rng.Intn(int(draws[d].goldenCycles))),
			},
		}
	}
	return jobs
}

// classEntry is the shared memo of one multi-member fault-equivalence
// class. The representative's worker simulates the class once and
// publishes the outcome; every other member is tallied from the memo
// with zero simulated cycles.
type classEntry struct {
	rep int // job index of the representative: the class's first member

	// done is closed by publish after the memo fields below are set;
	// members must not read them before it is closed.
	done chan struct{}

	g            []uint32 // final memory image (a copy; nil on DUE)
	err          error    // the run's DUE error, if any
	replayCycles uint64   // rep's sim+skipped: every member's full-replay cost
}

// publish installs the representative's outcome and releases waiting
// members. The image is copied: the representative's machine reuses its
// buffers on the next run, and d.golden must stay unaliased too.
func (e *classEntry) publish(r simRun) {
	if r.err == nil {
		e.g = append([]uint32(nil), r.g...)
	}
	e.err = r.err
	e.replayCycles = r.sim + r.skipped
	close(e.done)
}

// collapseIndex maps job indices to their fault-equivalence class.
// Classes group live (non-dead-pruned) faults by (draw, bit, read gap):
// two such faults corrupt the same stored field value between the same
// two golden read events, so their faulty trajectories — and with them
// classification, syndrome, detailed record and total replay cycles —
// are provably identical (see rtl.Liveness.GapAt and DESIGN §4). Only
// multi-member classes get an entry; byJob[i] is nil when fault i
// collapses with nobody and simulates normally.
type collapseIndex struct {
	byJob []*classEntry
}

// at returns job i's class entry, tolerating a nil (collapse-disabled)
// index.
func (ci *collapseIndex) at(i int) *classEntry {
	if ci == nil {
		return nil
	}
	return ci.byJob[i]
}

// classTable is a minimal open-addressing hash table from packed class
// keys to first-job indices. The collapse index performs one lookup per
// campaign fault, and on dense specs the generic map's hashing and
// bucket logic is a visible slice of total wall-clock; linear probing
// over flat slices roughly halves it. Empty slots are vals < 0.
type classTable struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

func newClassTable() *classTable {
	t := &classTable{keys: make([]uint64, 1<<13), vals: make([]int32, 1<<13), mask: 1<<13 - 1}
	for i := range t.vals {
		t.vals[i] = -1
	}
	return t
}

// lookupOrInsert returns the value stored under k, inserting v first when
// k is absent (ok reports whether k was already present).
func (t *classTable) lookupOrInsert(k uint64, v int32) (int32, bool) {
	i := (k * 0x9e3779b97f4a7c15) & t.mask
	for {
		if t.vals[i] < 0 {
			t.keys[i], t.vals[i] = k, v
			t.n++
			if uint64(t.n)*4 > (t.mask+1)*3 {
				t.grow()
			}
			return v, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

func (t *classTable) grow() {
	ok, ov := t.keys, t.vals
	n := (t.mask + 1) * 2
	t.keys, t.vals, t.mask = make([]uint64, n), make([]int32, n), n-1
	for i := range t.vals {
		t.vals[i] = -1
	}
	for i, v := range ov {
		if v < 0 {
			continue
		}
		k := ok[i]
		j := (k * 0x9e3779b97f4a7c15) & t.mask
		for t.vals[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j], t.vals[j] = k, v
	}
}

// buildCollapseIndex assigns every live fault its equivalence class,
// sharded per draw. It runs sequentially before the workers start, and
// pre-claims the representative as the class's first member in job
// order — a stronger form of a per-class sync.Once claim: no two
// workers ever simulate the same class, and which member gets simulated
// (hence the campaign's SimCycles split) never depends on goroutine
// scheduling, preserving the engine's re-runs-are-bit-identical
// guarantee. Worker striping and the RNG stream are untouched.
func buildCollapseIndex(jobs []faultJob, draws []*inputDraw) *collapseIndex {
	// Class keys pack (bit, gap) into one uint64: both are non-negative
	// and bounded well below 2^32 (bit by the module's flip-flop count,
	// gap by the golden run's read-event count), and a flat integer key
	// hashes measurably faster than a two-field struct on the dense
	// campaigns this index is built for.
	firsts := make([]*classTable, len(draws)) // per-draw shard: class key -> first job index
	for i := range firsts {
		firsts[i] = newClassTable()
	}
	ci := &collapseIndex{byJob: make([]*classEntry, len(jobs))}
	for i, j := range jobs {
		d := draws[j.draw]
		if d.live == nil {
			return nil // no liveness trace (NoPrune): nothing to key gaps on
		}
		gap, ok := d.live.GapAt(j.fault.Module, j.fault.Bit, j.fault.Cycle)
		if !ok {
			continue // dead site: the prune check claims it before any class logic
		}
		k := uint64(j.fault.Bit)<<32 | uint64(uint32(gap))
		first, seen := firsts[j.draw].lookupOrInsert(k, int32(i))
		if !seen {
			continue
		}
		e := ci.byJob[int(first)]
		if e == nil {
			e = &classEntry{rep: int(first), done: make(chan struct{})}
			ci.byJob[first] = e
		}
		ci.byJob[i] = e
	}
	return ci
}

// simRun is one simulated faulty run's raw outcome before family-specific
// classification: the final global-memory image (the golden image when
// the run provably reconverged), the DUE error if any, and the engine's
// simulated/skipped cycle split.
type simRun struct {
	g            []uint32
	err          error
	sim, skipped uint64
}

// runFault simulates one live fault on the worker's machine: checkpoint
// fast-forward when a snapshot at or before the injection cycle exists,
// golden-reconvergence pruning for the tail, full replay otherwise.
func (d *inputDraw) runFault(machine *rtl.Machine, prog *kasm.Program, block, sharedWords int, f rtl.Fault) simRun {
	budget := d.goldenCycles*watchdogFactor + 1000
	machine.Inject(f)
	if snap := d.ckpts.before(f.Cycle); snap != nil {
		pruned, err := machine.RunFromPruned(snap, budget, d.ckpts.every, d.ckpts.at)
		sim := machine.Cycles() - snap.Cycle()
		if pruned {
			// Reconverged with the golden state: the tail provably
			// replays the golden run, so the golden image is the run's
			// (bit-exact) result.
			return simRun{g: d.golden, sim: sim, skipped: snap.Cycle() + d.goldenCycles - machine.Cycles()}
		}
		return simRun{g: machine.Global(), err: err, sim: sim, skipped: snap.Cycle()}
	}
	g := append([]uint32(nil), d.global...)
	err := machine.Run(prog, 1, block, g, sharedWords, budget)
	return simRun{g: g, err: err, sim: machine.Cycles()}
}

// engineCounters is one worker's engine accounting, merged by the family
// into its result type after the loop: cycles simulated, cycles provably
// skipped, and the faults classified without any simulation (dead-site
// pruned, equivalence-collapsed).
type engineCounters struct {
	SimCycles, SkippedCycles      uint64
	PrunedFaults, CollapsedFaults uint64
	VectorFaults, Marches         uint64
}

// campaignHooks are the family-specific callbacks of runFaultLoop. Each
// receives the worker index w; calls for the same w are serial, calls
// for different w are concurrent, so hooks may index per-worker partial
// results without locking.
type campaignHooks struct {
	// masked records one injection proven Masked with zero simulation
	// (dead-site prune): exactly what record would report for the
	// bit-identical faulty run.
	masked func(w int)
	// record classifies one faulty outcome against the job's golden run:
	// g is the final memory image (the golden image when the run
	// reconverged; nil on DUE) and err the run's DUE error. machine is
	// the worker's machine, valid for layout lookups only.
	record func(w int, machine *rtl.Machine, j faultJob, g []uint32, err error)
}

// marchStripe is one worker's bit-parallel first phase: it groups the
// stripe's live, non-member faults by input draw, simulates each group in
// lane chunks on a march engine (rtl.VecEngine), and returns the per-job
// outcomes for the scalar-ordered recording phase. Engine accounting for
// the marched faults happens here, where the outcomes are produced, and
// representatives' collapse memos publish as soon as their march
// completes — the phase never waits on anything, so the recording phase's
// deadlock-freedom argument is untouched. A march that fails (it cannot,
// absent engine bugs: prepared draws guarantee the golden run completes
// past every injection cycle) falls back to scalar simulation of its
// chunk, which is bit-identical by the engine's contract.
func marchStripe(ctx context.Context, w, workers int, jobs []faultJob, draws []*inputDraw,
	prog *kasm.Program, block, sharedWords int, collapse *collapseIndex,
	ec *engineCounters, machine *rtl.Machine, dead []bool) map[int]simRun {

	perDraw := make([][]int, len(draws))
	for i := w; i < len(jobs); i += workers {
		j := jobs[i]
		if draws[j.draw].prunedDead(j.fault) {
			// Memoised for the recording phase: the dead-site liveness
			// query is a measurable per-fault cost on dense campaigns, and
			// each worker owns its stripe's slots, so the shared slice
			// needs no synchronisation.
			dead[i] = true
			continue
		}
		if e := collapse.at(i); e != nil && e.rep != i {
			continue
		}
		perDraw[j.draw] = append(perDraw[j.draw], i)
	}
	// A march pays a fixed per-chunk cost — the instrumented golden
	// replay over the chunk's whole cycle span, with every state read
	// probing the divergence planes — that only a near-full lane group
	// amortises: measured on the benchmarked specs, chunks of ~20–25
	// lanes still lose ~2x wall-clock to scalar replay while full chunks
	// win. Under-full chunks (only a draw's last chunk can be one) are
	// therefore left out of the march and fall through to the scalar
	// recording phase, which is bit-identical by the engine's contract.
	const minMarchLanes = 48
	outs := make(map[int]simRun)
	eng := rtl.NewVecEngine()
	defer eng.Close()
	chunk := make([]rtl.Fault, 0, rtl.VecMaxLanes)
	for di, idxs := range perDraw {
		d := draws[di]
		budget := d.goldenCycles*watchdogFactor + 1000
		// One read schedule per draw: the draw's first march records the
		// golden run's read/touch schedule, the rest consult it to judge
		// park attempts and retire quiescent lanes (see rtl.MarchSched).
		// Chunks are ordered by ascending fault cycle so that the
		// recording march — which starts at the earliest checkpoint any
		// chunk needs — observes every cycle later chunks will query.
		sort.SliceStable(idxs, func(a, b int) bool {
			return jobs[idxs[a]].fault.Cycle < jobs[idxs[b]].fault.Cycle
		})
		opts := rtl.MarchOpts{
			Sched:        rtl.NewMarchSched(),
			GoldenCycles: d.goldenCycles,
			FinalGlobal:  d.golden,
		}
		for off := 0; off < len(idxs); off += rtl.VecMaxLanes {
			if ctx.Err() != nil {
				return outs
			}
			end := off + rtl.VecMaxLanes
			if end > len(idxs) {
				end = len(idxs)
			}
			group := idxs[off:end]
			if len(group) < minMarchLanes {
				continue // scalar recording phase picks these up
			}
			chunk = chunk[:0]
			for _, gi := range group {
				chunk = append(chunk, jobs[gi].fault)
			}
			// Each march fast-forwards its golden replay to the latest
			// checkpoint at or before its earliest injection.
			opts.Start = d.ckpts.before(chunk[0].Cycle)
			vouts, err := eng.March(prog, block, d.global, sharedWords, chunk, budget, &opts)
			if err == nil {
				ec.Marches++
			}
			for k, gi := range group {
				var sr simRun
				if err != nil {
					sr = d.runFault(machine, prog, block, sharedWords, jobs[gi].fault)
				} else {
					o := vouts[k]
					sr = simRun{err: o.Err, sim: o.Sim, skipped: o.End - o.Sim}
					if o.Err == nil {
						if o.GoldenGlobal {
							sr.g = d.golden
						} else {
							sr.g = o.Global
						}
					}
					ec.VectorFaults++
				}
				ec.SimCycles += sr.sim
				ec.SkippedCycles += sr.skipped
				outs[gi] = sr
				if e := collapse.at(gi); e != nil {
					e.publish(sr)
				}
			}
		}
	}
	return outs
}

// runFaultLoop drives the striped worker pool over the campaign's fault
// list, performing the engine work shared by both campaign families —
// dead-site prune check, fault-equivalence collapsing, bit-parallel
// marching, checkpoint fast-forward, cycle accounting, progress and
// cancellation — and delegating outcome recording to hooks. It returns
// the number of completed faults, which equals len(jobs) unless ctx was
// cancelled.
//
// With vec set, each worker first marches its stripe's live non-member
// faults bit-parallel (marchStripe) and then records every job in the
// exact order and with the exact outcomes of the scalar loop, so results
// stay bit-identical across the mode lattice.
func runFaultLoop(ctx context.Context, workers int, jobs []faultJob, draws []*inputDraw,
	prog *kasm.Program, block, sharedWords int, collapse *collapseIndex, vec bool,
	counters []engineCounters, progress func(done, total int), hooks campaignHooks) int {

	// Progress is throttled to ~1/1000 of the campaign (and always fired
	// for the final job): callbacks may cross goroutine or process
	// boundaries, and per-fault delivery measurably perturbs dense
	// campaigns.
	total := len(jobs)
	granule := total / 1000
	if granule < 1 {
		granule = 1
	}
	// In vec mode the march phase answers every job's dead-site query
	// while grouping its stripe; the recording phase reuses the verdicts
	// instead of re-running the liveness lookups.
	var dead []bool
	if vec {
		dead = make([]bool, len(jobs))
	}
	var completed atomic.Int64
	bump := func() {
		done := int(completed.Add(1))
		if progress != nil && (done == total || done%granule == 0) {
			progress(done, total)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ec := &counters[w]
			machine := rtl.New()
			var outs map[int]simRun
			if vec {
				outs = marchStripe(ctx, w, workers, jobs, draws, prog, block, sharedWords, collapse, ec, machine, dead)
			}
			for i := w; i < len(jobs); i += workers {
				if ctx.Err() != nil {
					break
				}
				j := jobs[i]
				d := draws[j.draw]
				if vec && dead[i] || !vec && d.prunedDead(j.fault) {
					// Provably dead site: Masked with zero simulation. Its
					// whole would-be replay (exactly goldenCycles — a dead
					// fault's run is the golden run) lands in SkippedCycles
					// so cycle accounting stays comparable across modes.
					ec.PrunedFaults++
					ec.SkippedCycles += d.goldenCycles
					hooks.masked(w)
					bump()
					continue
				}
				e := collapse.at(i)
				if e != nil && e.rep != i {
					// Collapsed member: trajectory-identical to its class
					// representative, so the memo supplies the outcome at
					// zero simulated cycles; only the fault site in the
					// record is the member's own. The member's would-be
					// replay cost — identical to the representative's by
					// trajectory identity — lands in SkippedCycles, keeping
					// sim+skipped == full-replay sim exact.
					//
					// Waiting cannot deadlock: representatives never wait,
					// and a member only waits on a strictly smaller job
					// index, which its owning worker reaches (and
					// publishes) without waiting on anything larger.
					select {
					case <-e.done:
					case <-ctx.Done():
						continue // top of loop breaks on ctx.Err
					}
					ec.CollapsedFaults++
					ec.SkippedCycles += e.replayCycles
					hooks.record(w, machine, j, e.g, e.err)
					bump()
					continue
				}
				sr, marched := outs[i]
				if !marched {
					sr = d.runFault(machine, prog, block, sharedWords, j.fault)
					ec.SimCycles += sr.sim
					ec.SkippedCycles += sr.skipped
					if e != nil {
						e.publish(sr)
					}
				}
				hooks.record(w, machine, j, sr.g, sr.err)
				bump()
			}
		}(w)
	}
	wg.Wait()
	return int(completed.Load())
}
