package rtlfi

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"gpufi/internal/faults"
	"gpufi/internal/fp32"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// watchdogFactor scales the golden cycle count into the hang-detection
// budget of faulty runs.
const watchdogFactor = 10

// valuesPerRange is the number of randomly selected operand draws per
// input range (§V-A: "we perform a fault injection campaign on 4 different
// randomly selected values for each input range").
const valuesPerRange = 4

// Spec describes one micro-benchmark campaign: inject NumFaults single
// transients into Module while the Op micro-benchmark runs with operands
// from Range.
type Spec struct {
	Op        isa.Opcode
	Range     faults.InputRange
	Module    faults.Module
	NumFaults int
	Seed      uint64
	Workers   int // 0 = GOMAXPROCS

	// NoFastForward disables the golden-prefix checkpoint optimisation and
	// re-simulates every faulty run from cycle 0. Results are bit-identical
	// either way; the flag exists for regression tests and benchmarks of
	// the fast-forward path itself.
	NoFastForward bool

	// NoPrune disables dead-site pruning: the golden-run liveness
	// pre-classification that proves a fault Masked when its flip-flop
	// field is overwritten before any read after the injection cycle.
	// Results are bit-identical either way (pruning is conservative); the
	// flag mirrors NoFastForward for regression tests and benchmarks.
	// NoPrune also disables equivalence collapsing, which needs the same
	// liveness trace.
	NoPrune bool

	// NoCollapse disables fault-equivalence collapsing: the read-gap
	// analysis that simulates only one representative per class of
	// provably trajectory-identical faults (same draw, bit and inter-read
	// gap) and tallies the rest from its memoized outcome. Results are
	// bit-identical either way; the flag mirrors NoPrune/NoFastForward
	// for regression tests and benchmarks.
	NoCollapse bool

	// NoBitParallel disables bit-parallel fault simulation: the march
	// engine that simulates up to 63 faulty variants of one input draw as
	// divergence deltas against a single golden replay, materialising a
	// variant onto its own machine only while it actually diverges.
	// Results are bit-identical either way; the flag mirrors
	// NoPrune/NoFastForward for regression tests and benchmarks.
	NoBitParallel bool

	// Progress, when non-nil, reports campaign progress as (completed
	// faults, campaign total). Calls are throttled to roughly one per
	// 1/1000th of the campaign; the final call always reports
	// (total, total). It is called concurrently from worker goroutines
	// and calls may arrive with non-monotonic done values; consumers
	// should keep a running maximum.
	Progress func(done, total int)
}

// Detailed is the paper's per-SDC detailed report record (§IV-A). An SDC
// found at a thread's output word carries that thread index in Thread
// (Word = -1); an SDC found only by the fallback scan of the rest of the
// memory image (e.g. a derailed store) has no corrupted thread output, so
// Thread is -1 and Word holds the corrupted memory-word index instead.
type Detailed struct {
	Fault     rtl.Fault
	FieldName string  // flip-flop group hit
	Thread    int     // first corrupted thread, or -1 for a memory-scan record
	Word      int     // corrupted memory-word index for memory-scan records, else -1
	Golden    uint32  // golden output word of that thread
	Faulty    uint32  // corrupted output word
	BitsWrong int     // corrupted bits in that word
	Threads   int     // number of corrupted threads
	RelErr    float64 // relative error of the first corrupted output
}

// Result aggregates one campaign.
type Result struct {
	Spec         Spec
	Tally        faults.Tally
	Syndromes    []float64 // relative error of every corrupted output word
	ThreadCounts []int     // corrupted threads per SDC
	BitsWrong    []int     // corrupted bits per corrupted word
	Details      []Detailed
	GoldenCycles uint64

	// SimCycles counts the cycles actually simulated across all faulty
	// runs; SkippedCycles counts the cycles the engine provably avoided:
	// golden-prefix cycles restored from a checkpoint, golden-tail cycles
	// pruned when a masked run reconverged with the golden state, and the
	// whole goldenCycles replay of every dead-pruned fault.
	// (SimCycles+SkippedCycles)/SimCycles is the effective replay speedup
	// of the campaign.
	SimCycles     uint64
	SkippedCycles uint64

	// PrunedFaults counts injections classified Masked by the dead-site
	// liveness analysis alone, with zero simulation (they skip even the
	// checkpoint restore). Always 0 under Spec.NoPrune.
	PrunedFaults uint64

	// CollapsedFaults counts injections tallied from a fault-equivalence
	// class memo instead of being simulated: trajectory-identical to an
	// already-simulated representative, their full replay cost lands in
	// SkippedCycles. Always 0 under Spec.NoCollapse or Spec.NoPrune.
	CollapsedFaults uint64

	// VectorFaults counts injections simulated as lanes of a bit-parallel
	// march rather than on a scalar machine of their own; Marches counts
	// the marches (shared golden replays) that carried them. Their ratio
	// against the 63-lane capacity is the campaign's lane occupancy.
	// Always 0 under Spec.NoBitParallel.
	VectorFaults uint64
	Marches      uint64
}

// ReplaySpeedup returns the campaign's effective replay speedup:
// total fault-run cycles over cycles actually simulated. 1.0 when
// nothing was skipped; +Inf when every fault was pruned outright.
func (r *Result) ReplaySpeedup() float64 { return replaySpeedup(r.SimCycles, r.SkippedCycles) }

// PruneRate returns the share of injections classified by dead-site
// pruning alone.
func (r *Result) PruneRate() float64 { return pruneRate(r.PrunedFaults, r.Tally.Injections) }

// CollapseRate returns the share of injections tallied from an
// equivalence-class memo instead of being simulated.
func (r *Result) CollapseRate() float64 { return collapseRate(r.CollapsedFaults, r.Tally.Injections) }

// VectorRate returns the share of injections simulated as bit-parallel
// march lanes.
func (r *Result) VectorRate() float64 { return vectorRate(r.VectorFaults, r.Tally.Injections) }

// LaneOccupancy returns the mean fill of the campaign's marches: vector
// faults over marched lane capacity (63 faulty lanes per march). 0 when
// no march ran.
func (r *Result) LaneOccupancy() float64 { return laneOccupancy(r.VectorFaults, r.Marches) }

func replaySpeedup(sim, skipped uint64) float64 {
	if sim == 0 {
		if skipped == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(sim+skipped) / float64(sim)
}

func pruneRate(pruned uint64, injections int) float64 {
	if injections == 0 {
		return 0
	}
	return float64(pruned) / float64(injections)
}

func collapseRate(collapsed uint64, injections int) float64 {
	if injections == 0 {
		return 0
	}
	return float64(collapsed) / float64(injections)
}

func vectorRate(vector uint64, injections int) float64 {
	if injections == 0 {
		return 0
	}
	return float64(vector) / float64(injections)
}

func laneOccupancy(vector, marches uint64) float64 {
	if marches == 0 {
		return 0
	}
	return float64(vector) / float64(marches*rtl.VecMaxLanes)
}

// inputDraw describes one prepared input draw.
type inputDraw struct {
	global       []uint32
	golden       []uint32
	goldenCycles uint64
	ckpts        ckptStore
	live         *rtl.Liveness // golden-run liveness trace; nil under NoPrune
}

// prepare runs one draw's golden prefix on a fresh machine: the golden
// run itself (tracing liveness for dead-site pruning unless noPrune) and
// the checkpoint-recording replay (unless noFF). d.global must already be
// populated; everything else is derived here.
func (d *inputDraw) prepare(prog *kasm.Program, block, sharedWords int, goldenBudget uint64, noFF, noPrune bool) error {
	m := rtl.New()
	var live *rtl.Liveness
	if !noPrune {
		live = &rtl.Liveness{}
		m.TraceLiveness(live)
	}
	golden := append([]uint32(nil), d.global...)
	if err := m.Run(prog, 1, block, golden, sharedWords, goldenBudget); err != nil {
		return fmt.Errorf("rtlfi: golden run failed: %w", err)
	}
	// Detach before the checkpoint replay: a Liveness traces exactly one
	// run, and the replay is the same dataflow anyway.
	m.TraceLiveness(nil)
	d.golden = golden
	d.goldenCycles = m.Cycles()
	d.live = live
	if !noFF {
		cs, err := recordCheckpoints(m, prog, block, d.global, sharedWords, d.goldenCycles)
		if err != nil {
			return err
		}
		d.ckpts = cs
	}
	return nil
}

// prepareDraws fans the per-draw golden prefixes out across goroutines,
// one fresh machine per draw. Inputs were drawn serially beforehand, so
// the spec RNG stream is untouched and the fault list generated
// afterwards is bit-identical to the old serial path.
func prepareDraws(draws []*inputDraw, prog *kasm.Program, block, sharedWords int, goldenBudget uint64, noFF, noPrune bool) error {
	errs := make([]error, len(draws))
	var wg sync.WaitGroup
	for i, d := range draws {
		wg.Add(1)
		go func(i int, d *inputDraw) {
			defer wg.Done()
			errs[i] = d.prepare(prog, block, sharedWords, goldenBudget, noFF, noPrune)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prunedDead pre-classifies one fault against a draw's liveness trace.
// A dead fault is Masked with zero simulation; its whole would-be replay
// (exactly goldenCycles — a dead fault's run is the golden run) lands in
// SkippedCycles so cycle accounting stays comparable across modes.
func (d *inputDraw) prunedDead(f rtl.Fault) bool {
	return d.live != nil && d.live.DeadAt(f.Module, f.Bit, f.Cycle)
}

// RunMicro executes a micro-benchmark fault-injection campaign. The fault
// list (bit, cycle, input draw) is generated deterministically from
// Spec.Seed; faults are simulated in parallel on per-worker machines.
func RunMicro(spec Spec) (*Result, error) {
	return RunMicroCtx(context.Background(), spec)
}

// RunMicroCtx is RunMicro with cancellation: when ctx is cancelled the
// workers stop at the next fault boundary and the context error is
// returned. Because the fault list is derived up front from Spec.Seed, a
// re-run of the same spec reproduces the campaign bit-identically.
func RunMicroCtx(ctx context.Context, spec Spec) (*Result, error) {
	if !ModuleUsed(spec.Module, spec.Op) {
		return nil, fmt.Errorf("rtlfi: module %s idle during %s (not characterised)", spec.Module, spec.Op)
	}
	prog, err := BuildMicro(spec.Op)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(spec.Seed)

	// Input draws consume the spec RNG serially; the golden runs (with
	// liveness tracing), plus the bit-identical replays that record the
	// fast-forward checkpoints, then fan out across draws. Neither pass
	// touches rng beyond the input draw itself, so the fault list below
	// sees the same stream as before the optimisation.
	draws := make([]inputDraw, valuesPerRange)
	dp := make([]*inputDraw, len(draws))
	for i := range draws {
		draws[i].global = MicroInputs(spec.Op, spec.Range, rng)
		dp[i] = &draws[i]
	}
	if err := prepareDraws(dp, prog, MicroThreads, 0, 1_000_000, spec.NoFastForward, spec.NoPrune); err != nil {
		return nil, err
	}

	// Deterministic fault list, then the equivalence classes among its
	// live sites (collapse keys on the liveness trace, so NoPrune implies
	// no collapsing).
	jobs := drawJobs(rng, spec.Module, spec.NumFaults, dp)
	var collapse *collapseIndex
	if !spec.NoPrune && !spec.NoCollapse {
		collapse = buildCollapseIndex(jobs, dp)
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	partials := make([]*Result, workers)
	for w := range partials {
		partials[w] = &Result{Spec: spec}
	}
	counters := make([]engineCounters, workers)
	completed := runFaultLoop(ctx, workers, jobs, dp, prog, MicroThreads, 0,
		collapse, !spec.NoBitParallel, counters, spec.Progress, campaignHooks{
			masked: func(w int) { partials[w].Tally.Add(faults.Masked, 0) },
			record: func(w int, machine *rtl.Machine, j faultJob, g []uint32, err error) {
				classify(partials[w], spec.Op, j.fault, machine, g, draws[j.draw].golden, err)
			},
		})
	// Cancellation that lands after the last job finished does not void
	// the campaign: every fault was simulated, so return the result.
	if err := ctx.Err(); err != nil && completed != len(jobs) {
		return nil, err
	}

	out := &Result{Spec: spec, GoldenCycles: draws[0].goldenCycles}
	for w, p := range partials {
		out.Tally.Merge(p.Tally)
		out.Syndromes = append(out.Syndromes, p.Syndromes...)
		out.ThreadCounts = append(out.ThreadCounts, p.ThreadCounts...)
		out.BitsWrong = append(out.BitsWrong, p.BitsWrong...)
		out.Details = append(out.Details, p.Details...)
		out.SimCycles += counters[w].SimCycles
		out.SkippedCycles += counters[w].SkippedCycles
		out.PrunedFaults += counters[w].PrunedFaults
		out.CollapsedFaults += counters[w].CollapsedFaults
		out.VectorFaults += counters[w].VectorFaults
		out.Marches += counters[w].Marches
	}
	return out, nil
}

// classify compares a faulty run against the golden output and updates the
// campaign result.
func classify(res *Result, op isa.Opcode, fault rtl.Fault, machine *rtl.Machine, g, golden []uint32, err error) {
	if err != nil {
		res.Tally.Add(faults.DUE, 0)
		return
	}
	isFloat := op.IsFloat()
	corrupted := 0
	first, firstWord := -1, -1
	var firstGold, firstFaulty uint32
	for _, off := range outputOffsets(op) {
		for t := 0; t < MicroThreads; t++ {
			gw, fw := golden[off+t], g[off+t]
			if gw == fw {
				continue
			}
			corrupted++
			if first < 0 {
				first, firstGold, firstFaulty = t, gw, fw
			}
			res.Syndromes = append(res.Syndromes, relErrWord(gw, fw, isFloat))
			res.BitsWrong = append(res.BitsWrong, bits.OnesCount32(gw^fw))
		}
	}
	// Also scan input regions: a fault that corrupts memory outside the
	// output area (e.g. a derailed store) is an SDC too. These records
	// identify a memory word, not a thread: Thread stays -1 so the §V-B
	// multiplicity/spatial analyses never mistake a word index for a
	// thread index. One ascending pass over the words not already compared
	// above — the outputs are clean here (corrupted == 0), so skipping
	// them changes neither the count nor the first-corrupted record.
	if corrupted == 0 {
		scan := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if golden[i] != g[i] {
					corrupted++
					if firstWord < 0 {
						firstWord, firstGold, firstFaulty = i, golden[i], g[i]
					}
					res.Syndromes = append(res.Syndromes, relErrWord(golden[i], g[i], isFloat))
					res.BitsWrong = append(res.BitsWrong, bits.OnesCount32(golden[i]^g[i]))
				}
			}
		}
		next := 0
		for _, off := range outputOffsets(op) {
			scan(next, off)
			next = off + MicroThreads
		}
		scan(next, len(golden))
	}
	if corrupted == 0 {
		res.Tally.Add(faults.Masked, 0)
		return
	}
	res.Tally.Add(faults.SDC, corrupted)
	res.ThreadCounts = append(res.ThreadCounts, corrupted)
	res.Details = append(res.Details, Detailed{
		Fault:     fault,
		FieldName: machine.ModuleState(fault.Module).Lay.FieldAt(fault.Bit).Name,
		Thread:    first,
		Word:      firstWord,
		Golden:    firstGold,
		Faulty:    firstFaulty,
		BitsWrong: bits.OnesCount32(firstGold ^ firstFaulty),
		Threads:   corrupted,
		RelErr:    relErrWord(firstGold, firstFaulty, isFloat),
	})
}

// relErrWord computes the syndrome relative error of one corrupted word.
func relErrWord(golden, faulty uint32, isFloat bool) float64 {
	if isFloat {
		return fp32.RelErrBits(golden, faulty)
	}
	g, f := float64(int32(golden)), float64(int32(faulty))
	return fp32.RelErr(g, f)
}

// CharacterizedPrograms sanity-builds every micro-benchmark; used by tests
// and by the campaign drivers.
func CharacterizedPrograms() (map[isa.Opcode]*kasm.Program, error) {
	out := make(map[isa.Opcode]*kasm.Program)
	for _, op := range isa.CharacterizedOpcodes() {
		p, err := BuildMicro(op)
		if err != nil {
			return nil, err
		}
		out[op] = p
	}
	return out, nil
}

// AvgThreadsForModule runs the §V-B multiplicity analysis helper: the mean
// number of corrupted threads per SDC over a set of results.
func AvgThreadsForModule(results []*Result) float64 {
	var sum, n int
	for _, r := range results {
		for _, t := range r.ThreadCounts {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MedianSyndrome returns the median relative error of a campaign, the
// §V-C input-dependence statistic.
func MedianSyndrome(r *Result) float64 {
	if len(r.Syndromes) == 0 {
		return 0
	}
	finite := make([]float64, 0, len(r.Syndromes))
	for _, s := range r.Syndromes {
		if !math.IsInf(s, 0) && !math.IsNaN(s) {
			finite = append(finite, s)
		}
	}
	if len(finite) == 0 {
		return math.Inf(1)
	}
	return stats.Summarize(finite).Median
}
