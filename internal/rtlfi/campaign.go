package rtlfi

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"gpufi/internal/faults"
	"gpufi/internal/fp32"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// watchdogFactor scales the golden cycle count into the hang-detection
// budget of faulty runs.
const watchdogFactor = 10

// valuesPerRange is the number of randomly selected operand draws per
// input range (§V-A: "we perform a fault injection campaign on 4 different
// randomly selected values for each input range").
const valuesPerRange = 4

// Spec describes one micro-benchmark campaign: inject NumFaults single
// transients into Module while the Op micro-benchmark runs with operands
// from Range.
type Spec struct {
	Op        isa.Opcode
	Range     faults.InputRange
	Module    faults.Module
	NumFaults int
	Seed      uint64
	Workers   int // 0 = GOMAXPROCS

	// Progress, when non-nil, is called after every simulated fault with
	// the number of completed faults and the campaign total. It is called
	// concurrently from worker goroutines and calls may arrive with
	// non-monotonic done values; consumers should keep a running maximum.
	Progress func(done, total int)
}

// Detailed is the paper's per-SDC detailed report record (§IV-A).
type Detailed struct {
	Fault      rtl.Fault
	FieldName  string  // flip-flop group hit
	Thread     int     // first corrupted thread
	Golden     uint32  // golden output word of that thread
	Faulty     uint32  // corrupted output word
	BitsWrong  int     // corrupted bits in that word
	Threads    int     // number of corrupted threads
	RelErr     float64 // relative error of the first corrupted output
}

// Result aggregates one campaign.
type Result struct {
	Spec         Spec
	Tally        faults.Tally
	Syndromes    []float64 // relative error of every corrupted output word
	ThreadCounts []int     // corrupted threads per SDC
	BitsWrong    []int     // corrupted bits per corrupted word
	Details      []Detailed
	GoldenCycles uint64
}

// run describes one prepared input draw.
type inputDraw struct {
	global       []uint32
	golden       []uint32
	goldenCycles uint64
}

// RunMicro executes a micro-benchmark fault-injection campaign. The fault
// list (bit, cycle, input draw) is generated deterministically from
// Spec.Seed; faults are simulated in parallel on per-worker machines.
func RunMicro(spec Spec) (*Result, error) {
	return RunMicroCtx(context.Background(), spec)
}

// RunMicroCtx is RunMicro with cancellation: when ctx is cancelled the
// workers stop at the next fault boundary and the context error is
// returned. Because the fault list is derived up front from Spec.Seed, a
// re-run of the same spec reproduces the campaign bit-identically.
func RunMicroCtx(ctx context.Context, spec Spec) (*Result, error) {
	if !ModuleUsed(spec.Module, spec.Op) {
		return nil, fmt.Errorf("rtlfi: module %s idle during %s (not characterised)", spec.Module, spec.Op)
	}
	prog, err := BuildMicro(spec.Op)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(spec.Seed)

	// Golden runs, one per input draw.
	draws := make([]inputDraw, valuesPerRange)
	m := rtl.New()
	for i := range draws {
		g := MicroInputs(spec.Op, spec.Range, rng)
		golden := append([]uint32(nil), g...)
		if err := m.Run(prog, 1, MicroThreads, golden, 0, 1_000_000); err != nil {
			return nil, fmt.Errorf("rtlfi: golden run failed: %w", err)
		}
		draws[i] = inputDraw{global: g, golden: golden, goldenCycles: m.Cycles()}
	}

	// Deterministic fault list.
	type job struct {
		fault rtl.Fault
		draw  int
	}
	jobs := make([]job, spec.NumFaults)
	modBits := rtl.ModuleBits(spec.Module)
	for i := range jobs {
		d := i % valuesPerRange
		jobs[i] = job{
			draw: d,
			fault: rtl.Fault{
				Module: spec.Module,
				Bit:    rng.Intn(modBits),
				Cycle:  uint64(rng.Intn(int(draws[d].goldenCycles))),
			},
		}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	partials := make([]*Result, workers)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &Result{Spec: spec}
			machine := rtl.New()
			for i := w; i < len(jobs); i += workers {
				if ctx.Err() != nil {
					break
				}
				j := jobs[i]
				d := &draws[j.draw]
				g := append([]uint32(nil), d.global...)
				machine.Inject(j.fault)
				err := machine.Run(prog, 1, MicroThreads, g, 0,
					d.goldenCycles*watchdogFactor+1000)
				classify(res, spec.Op, j.fault, machine, g, d.golden, err)
				if spec.Progress != nil {
					spec.Progress(int(completed.Add(1)), len(jobs))
				}
			}
			partials[w] = res
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := &Result{Spec: spec, GoldenCycles: draws[0].goldenCycles}
	for _, p := range partials {
		out.Tally.Merge(p.Tally)
		out.Syndromes = append(out.Syndromes, p.Syndromes...)
		out.ThreadCounts = append(out.ThreadCounts, p.ThreadCounts...)
		out.BitsWrong = append(out.BitsWrong, p.BitsWrong...)
		out.Details = append(out.Details, p.Details...)
	}
	return out, nil
}

// classify compares a faulty run against the golden output and updates the
// campaign result.
func classify(res *Result, op isa.Opcode, fault rtl.Fault, machine *rtl.Machine, g, golden []uint32, err error) {
	if err != nil {
		res.Tally.Add(faults.DUE, 0)
		return
	}
	isFloat := op.IsFloat()
	corrupted := 0
	first := -1
	var firstGold, firstFaulty uint32
	for _, off := range outputOffsets(op) {
		for t := 0; t < MicroThreads; t++ {
			gw, fw := golden[off+t], g[off+t]
			if gw == fw {
				continue
			}
			corrupted++
			if first < 0 {
				first, firstGold, firstFaulty = t, gw, fw
			}
			res.Syndromes = append(res.Syndromes, relErrWord(gw, fw, isFloat))
			res.BitsWrong = append(res.BitsWrong, bits.OnesCount32(gw^fw))
		}
	}
	// Also scan input regions: a fault that corrupts memory outside the
	// output area (e.g. a derailed store) is an SDC too.
	if corrupted == 0 {
		for i := range golden {
			if golden[i] != g[i] {
				corrupted++
				if first < 0 {
					first, firstGold, firstFaulty = i, golden[i], g[i]
				}
				res.Syndromes = append(res.Syndromes, relErrWord(golden[i], g[i], isFloat))
				res.BitsWrong = append(res.BitsWrong, bits.OnesCount32(golden[i]^g[i]))
			}
		}
	}
	if corrupted == 0 {
		res.Tally.Add(faults.Masked, 0)
		return
	}
	res.Tally.Add(faults.SDC, corrupted)
	res.ThreadCounts = append(res.ThreadCounts, corrupted)
	res.Details = append(res.Details, Detailed{
		Fault:     fault,
		FieldName: machine.ModuleState(fault.Module).Lay.FieldAt(fault.Bit).Name,
		Thread:    first,
		Golden:    firstGold,
		Faulty:    firstFaulty,
		BitsWrong: bits.OnesCount32(firstGold ^ firstFaulty),
		Threads:   corrupted,
		RelErr:    relErrWord(firstGold, firstFaulty, isFloat),
	})
}

// relErrWord computes the syndrome relative error of one corrupted word.
func relErrWord(golden, faulty uint32, isFloat bool) float64 {
	if isFloat {
		return fp32.RelErrBits(golden, faulty)
	}
	g, f := float64(int32(golden)), float64(int32(faulty))
	return fp32.RelErr(g, f)
}

// CharacterizedPrograms sanity-builds every micro-benchmark; used by tests
// and by the campaign drivers.
func CharacterizedPrograms() (map[isa.Opcode]*kasm.Program, error) {
	out := make(map[isa.Opcode]*kasm.Program)
	for _, op := range isa.CharacterizedOpcodes() {
		p, err := BuildMicro(op)
		if err != nil {
			return nil, err
		}
		out[op] = p
	}
	return out, nil
}

// AvgThreadsForModule runs the §V-B multiplicity analysis helper: the mean
// number of corrupted threads per SDC over a set of results.
func AvgThreadsForModule(results []*Result) float64 {
	var sum, n int
	for _, r := range results {
		for _, t := range r.ThreadCounts {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MedianSyndrome returns the median relative error of a campaign, the
// §V-C input-dependence statistic.
func MedianSyndrome(r *Result) float64 {
	if len(r.Syndromes) == 0 {
		return 0
	}
	finite := make([]float64, 0, len(r.Syndromes))
	for _, s := range r.Syndromes {
		if !math.IsInf(s, 0) && !math.IsNaN(s) {
			finite = append(finite, s)
		}
	}
	if len(finite) == 0 {
		return math.Inf(1)
	}
	return stats.Summarize(finite).Median
}
