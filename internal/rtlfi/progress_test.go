package rtlfi

import (
	"sync"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
)

// TestProgressThrottled: the campaign progress callback is throttled to
// roughly one call per 1/1000th of the campaign — per-fault delivery
// measurably perturbs dense campaigns when the callback crosses a
// goroutine or process boundary — and the final call always reports
// (total, total) so consumers can detect completion without counting.
func TestProgressThrottled(t *testing.T) {
	const n = 5000
	var (
		mu       sync.Mutex
		calls    int
		sawFinal bool
	)
	res, err := RunMicro(Spec{
		Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModPipe,
		NumFaults: n, Seed: 23,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != n {
				t.Errorf("progress total = %d, want %d", total, n)
			}
			if done < 1 || done > total {
				t.Errorf("progress done = %d outside [1, %d]", done, total)
			}
			if done == total {
				sawFinal = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Injections != n {
		t.Fatalf("campaign completed %d faults, want %d", res.Tally.Injections, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if !sawFinal {
		t.Error("final (total, total) progress call never arrived")
	}
	// granule = total/1000, so at most total/granule + 1 calls; allow a
	// little headroom but fail hard on anything near per-fault delivery.
	if max := n/(n/1000) + 10; calls > max {
		t.Errorf("progress fired %d times for %d faults, want <= %d (throttled)", calls, n, max)
	}
	if calls == 0 {
		t.Error("progress never fired")
	}
}
