package rtlfi

import (
	"reflect"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/rtl"
	"gpufi/internal/stats"
)

// TestMicroPruneBitIdentical is dead-site pruning's anchor regression,
// modeled on TestMicroFastForwardBitIdentical: pruned campaigns must be
// byte-identical to NoPrune runs across module families, and the cycle
// accounting must agree exactly — a dead fault's whole would-be replay is
// goldenCycles, which pruning moves wholesale into SkippedCycles.
// NoBitParallel on both sides isolates the pruning path.
func TestMicroPruneBitIdentical(t *testing.T) {
	specs := []Spec{
		{Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32, NumFaults: 400, Seed: 431, NoBitParallel: true},
		{Op: isa.OpIMAD, Range: faults.RangeLarge, Module: faults.ModINT, NumFaults: 400, Seed: 432, NoBitParallel: true},
		{Op: isa.OpFSIN, Range: faults.RangeMedium, Module: faults.ModSFU, NumFaults: 400, Seed: 433, NoBitParallel: true},
		{Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 400, Seed: 434, NoBitParallel: true},
	}
	for _, spec := range specs {
		pruned, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoPrune = true
		full, err := RunMicro(spec)
		if err != nil {
			t.Fatal(err)
		}
		assertMicroEqual(t, pruned, full)
		if pruned.PrunedFaults == 0 {
			t.Errorf("%s/%s: pruning classified no faults", spec.Op, spec.Module)
		}
		if full.PrunedFaults != 0 {
			t.Errorf("%s/%s: NoPrune run reported %d pruned faults", spec.Op, spec.Module, full.PrunedFaults)
		}
		if pt, ft := pruned.SimCycles+pruned.SkippedCycles, full.SimCycles+full.SkippedCycles; pt != ft {
			t.Errorf("%s/%s: cycle accounting: pruned %d simulated + %d skipped != %d full",
				spec.Op, spec.Module, pruned.SimCycles, pruned.SkippedCycles, ft)
		}
	}
}

// TestMicroPruneMatchesFullReplay ties the engine's five modes together
// on one spec: every shortcut lattice point — BitParallel (the default:
// marching + collapsing + pruning + fast-forward), Collapsed (marching
// off), Pruned (collapsing off too), FastForward (pruning off too) —
// must reproduce the plain from-cycle-0 replay byte for byte, and
// account exactly its cycles: each mode's sim + skipped equals the full
// replay's simulated total.
func TestMicroPruneMatchesFullReplay(t *testing.T) {
	spec := Spec{Op: isa.OpIADD, Range: faults.RangeMedium, Module: faults.ModINT, NumFaults: 300, Seed: 440}
	modes := []struct {
		name string
		mut  func(*Spec)
	}{
		{"BitParallel", func(s *Spec) {}},
		{"Collapsed", func(s *Spec) { s.NoBitParallel = true }},
		{"Pruned", func(s *Spec) { s.NoBitParallel, s.NoCollapse = true, true }},
		{"FastForward", func(s *Spec) { s.NoBitParallel, s.NoCollapse, s.NoPrune = true, true, true }},
	}
	fullSpec := spec
	fullSpec.NoBitParallel, fullSpec.NoCollapse, fullSpec.NoPrune, fullSpec.NoFastForward = true, true, true, true
	full, err := RunMicro(fullSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range modes {
		s := spec
		m.mut(&s)
		res, err := RunMicro(s)
		if err != nil {
			t.Fatal(err)
		}
		assertMicroEqual(t, res, full)
		if res.SimCycles+res.SkippedCycles != full.SimCycles {
			t.Errorf("%s: cycle accounting: %d + %d != %d full-replay cycles",
				m.name, res.SimCycles, res.SkippedCycles, full.SimCycles)
		}
	}
}

// TestTMXMPruneBitIdentical mirrors the regression for the t-MxM path.
func TestTMXMPruneBitIdentical(t *testing.T) {
	for _, mod := range []faults.Module{faults.ModSched, faults.ModPipe} {
		spec := TMXMSpec{Module: mod, Kind: 2 /* Random */, NumFaults: 200, Seed: 78, NoBitParallel: true}
		pruned, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoPrune = true
		full, err := RunTMXM(spec)
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Tally != full.Tally {
			t.Fatalf("%s tally: pruned %+v, NoPrune %+v", mod, pruned.Tally, full.Tally)
		}
		if pruned.Patterns != full.Patterns {
			t.Fatalf("%s patterns: %v vs %v", mod, pruned.Patterns, full.Patterns)
		}
		if !reflect.DeepEqual(pruned.PatternErrs, full.PatternErrs) {
			t.Fatalf("%s pattern error pools differ", mod)
		}
		if pruned.GoldenCycles != full.GoldenCycles {
			t.Fatalf("%s golden cycles: %d vs %d", mod, pruned.GoldenCycles, full.GoldenCycles)
		}
		if pruned.PrunedFaults == 0 {
			t.Errorf("%s: pruning classified no faults", mod)
		}
		if pt, ft := pruned.SimCycles+pruned.SkippedCycles, full.SimCycles+full.SkippedCycles; pt != ft {
			t.Errorf("%s: cycle accounting: %d != %d", mod, pt, ft)
		}
	}
}

// TestDeadPruneCrossValidation is the standing conservatism guard for the
// liveness tracer: sample at least 200 dead-pruned faults per module
// across the characterised opcodes and full-simulate every one of them —
// each must complete without a DUE, in exactly the golden cycle count,
// with a memory image identical to the golden run (i.e. Masked).
// Everything derives from fixed seeds, so a regression reproduces.
func TestDeadPruneCrossValidation(t *testing.T) {
	const perModule = 200
	ops := isa.CharacterizedOpcodes()
	for _, mod := range faults.AllModules() {
		mod := mod
		t.Run(mod.String(), func(t *testing.T) {
			t.Parallel()
			rng := stats.NewRNG(0xDEAD0 + uint64(mod))
			sim := rtl.New()
			modBits := rtl.ModuleBits(mod)
			checked := 0
			for pass := 0; pass < 50 && checked < perModule; pass++ {
				for _, op := range ops {
					if checked >= perModule {
						break
					}
					if !ModuleUsed(mod, op) {
						continue
					}
					prog, err := BuildMicro(op)
					if err != nil {
						t.Fatal(err)
					}
					g := MicroInputs(op, faults.RangeMedium, rng)
					golden := append([]uint32(nil), g...)
					gm := rtl.New()
					live := &rtl.Liveness{}
					gm.TraceLiveness(live)
					if err := gm.Run(prog, 1, MicroThreads, golden, 0, 1_000_000); err != nil {
						t.Fatalf("golden run failed for %s: %v", op, err)
					}
					cycles := gm.Cycles()
					// Sample fault candidates; validate a bounded batch of
					// the dead ones per opcode so every module spreads its
					// quota across its characterised instructions.
					for tries, taken := 0, 0; tries < 4000 && taken < 25 && checked < perModule; tries++ {
						f := rtl.Fault{Module: mod, Bit: rng.Intn(modBits), Cycle: uint64(rng.Intn(int(cycles)))}
						if !live.DeadAt(f.Module, f.Bit, f.Cycle) {
							continue
						}
						taken++
						faulty := append([]uint32(nil), g...)
						sim.Inject(f)
						if err := sim.Run(prog, 1, MicroThreads, faulty, 0, cycles*watchdogFactor+1000); err != nil {
							t.Fatalf("dead-pruned fault %+v on %s caused a DUE: %v", f, op, err)
						}
						if sim.Cycles() != cycles {
							t.Fatalf("dead-pruned fault %+v on %s changed timing: %d cycles, golden %d",
								f, op, sim.Cycles(), cycles)
						}
						if !reflect.DeepEqual(faulty, golden) {
							t.Fatalf("dead-pruned fault %+v on %s corrupted memory (not Masked)", f, op)
						}
						checked++
					}
				}
			}
			if checked < perModule {
				t.Fatalf("validated only %d dead-pruned faults for %s (want >= %d)", checked, mod, perModule)
			}
		})
	}
}
