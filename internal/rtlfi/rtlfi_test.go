package rtlfi

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/stats"
)

func TestBuildMicroAllCharacterizedOpcodes(t *testing.T) {
	progs, err := CharacterizedPrograms()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 12 {
		t.Fatalf("built %d micro-benchmarks, want 12", len(progs))
	}
	for op, p := range progs {
		found := false
		for _, in := range p.Instrs {
			if in.Op == op {
				found = true
			}
		}
		if !found && op != isa.OpGLD && op != isa.OpGST && op != isa.OpBRA {
			t.Errorf("%s micro-benchmark does not contain the opcode", op)
		}
	}
}

func TestBuildMicroRejectsUncharacterized(t *testing.T) {
	if _, err := BuildMicro(isa.OpMOV); err == nil {
		t.Error("MOV must not have a micro-benchmark")
	}
}

func TestMicroBenchmarksRunCleanOnEmulator(t *testing.T) {
	r := stats.NewRNG(42)
	for _, op := range isa.CharacterizedOpcodes() {
		prog, err := BuildMicro(op)
		if err != nil {
			t.Fatal(err)
		}
		for _, rng := range faults.AllRanges() {
			g := MicroInputs(op, rng, r)
			if _, err := emu.Run(&emu.Launch{
				Prog: prog, Grid: 1, Block: MicroThreads, Global: g,
			}); err != nil {
				t.Errorf("%s/%s: %v", op, rng, err)
			}
		}
	}
}

func TestMicroInputsRespectRanges(t *testing.T) {
	r := stats.NewRNG(9)
	g := MicroInputs(isa.OpFADD, faults.RangeSmall, r)
	v := math.Float32frombits(g[inAOff])
	if v < 6.8e-6 || v >= 7.3e-6 {
		t.Errorf("small float input %v out of range", v)
	}
	g = MicroInputs(isa.OpFADD, faults.RangeLarge, r)
	v = math.Float32frombits(g[inAOff])
	if v < 3.8e9 || v >= 12.5e9 {
		t.Errorf("large float input %v out of range", v)
	}
	g = MicroInputs(isa.OpFSIN, faults.RangeMedium, r)
	v = math.Float32frombits(g[inAOff])
	if v <= 0 || v >= math.Pi/2 {
		t.Errorf("SFU input %v outside (0, pi/2)", v)
	}
	g = MicroInputs(isa.OpIADD, faults.RangeLarge, r)
	if int32(g[inAOff]) < 1_000_000_000 {
		t.Errorf("large int input %d", int32(g[inAOff]))
	}
	// Branch inputs must straddle the threshold.
	g = MicroInputs(isa.OpBRA, faults.RangeMedium, r)
	if int32(g[inAOff]) >= 0 || int32(g[inAOff+1]) <= 0 {
		t.Errorf("branch inputs do not diverge: %d %d", int32(g[inAOff]), int32(g[inAOff+1]))
	}
}

func TestModuleUsedMatchesPaper(t *testing.T) {
	// §V-B: FUs idle for GLD, GST, BRA, ISET.
	for _, op := range []isa.Opcode{isa.OpGLD, isa.OpGST, isa.OpBRA, isa.OpISET} {
		for _, mod := range []faults.Module{faults.ModFP32, faults.ModINT, faults.ModSFU} {
			if ModuleUsed(mod, op) {
				t.Errorf("%s considered active during %s", mod, op)
			}
		}
		if !ModuleUsed(faults.ModSched, op) || !ModuleUsed(faults.ModPipe, op) {
			t.Errorf("scheduler/pipeline must be characterised for %s", op)
		}
	}
	if !ModuleUsed(faults.ModFP32, isa.OpFFMA) || !ModuleUsed(faults.ModSFUCtl, isa.OpFSIN) {
		t.Error("FU routing wrong")
	}
}

func TestRunMicroRejectsIdleModule(t *testing.T) {
	_, err := RunMicro(Spec{Op: isa.OpGLD, Module: faults.ModFP32, NumFaults: 1, Seed: 1})
	if err == nil {
		t.Error("expected idle-module error")
	}
}

func TestRunMicroFP32Campaign(t *testing.T) {
	res, err := RunMicro(Spec{
		Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32,
		NumFaults: 400, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ty := res.Tally
	if ty.Injections != 400 {
		t.Fatalf("injections = %d", ty.Injections)
	}
	if ty.Maskeds == 0 {
		t.Error("no masked faults (implausible)")
	}
	if ty.SDCs() == 0 {
		t.Error("no SDCs from FP32 injection during FFMA (implausible)")
	}
	if len(res.Syndromes) == 0 || len(res.Details) != ty.SDCs() {
		t.Errorf("syndromes/details inconsistent: %d syndromes, %d details, %d SDCs",
			len(res.Syndromes), len(res.Details), ty.SDCs())
	}
	for _, d := range res.Details {
		if d.FieldName == "" || d.FieldName == "?" {
			t.Errorf("detailed report missing field name: %+v", d)
		}
	}
	// FP32 datapath corruption on a dedicated per-thread unit is
	// dominantly single-thread (§V-B).
	if ty.SDCs() > 4 && ty.MultiShare() > 0.5 {
		t.Errorf("FP32 multi-thread share = %v, expected mostly single", ty.MultiShare())
	}
}

func TestRunMicroDeterministic(t *testing.T) {
	spec := Spec{
		Op: isa.OpIADD, Range: faults.RangeSmall, Module: faults.ModINT,
		NumFaults: 120, Seed: 33, Workers: 3,
	}
	a, err := RunMicro(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMicro(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally {
		t.Errorf("tallies differ: %+v vs %+v", a.Tally, b.Tally)
	}
}

func TestRunMicroSchedulerMultiThread(t *testing.T) {
	res, err := RunMicro(Spec{
		Op: isa.OpIADD, Range: faults.RangeMedium, Module: faults.ModSched,
		NumFaults: 600, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sched: %+v avgThreads=%.1f", res.Tally, res.Tally.AvgThreads())
	if res.Tally.SDCs() > 5 && res.Tally.MultiShare() < 0.3 {
		t.Errorf("scheduler multi-thread share = %v, paper reports >60%%", res.Tally.MultiShare())
	}
}

func TestRunTMXMPatterns(t *testing.T) {
	res, err := RunTMXM(TMXMSpec{
		Module: faults.ModPipe, Kind: mxm.TileRandom,
		NumFaults: 400, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tmxm pipe: %+v patterns=%v", res.Tally, res.Patterns)
	if res.Tally.Injections != 400 {
		t.Fatalf("injections = %d", res.Tally.Injections)
	}
	if res.Tally.SDCs() == 0 {
		t.Error("no SDCs in t-MxM pipeline campaign (implausible)")
	}
	total := 0
	for _, n := range res.Patterns {
		total += n
	}
	if total != res.Tally.SDCs() {
		t.Errorf("pattern census %d != SDCs %d", total, res.Tally.SDCs())
	}
}

func TestRunTMXMRejectsFunctionalUnits(t *testing.T) {
	if _, err := RunTMXM(TMXMSpec{Module: faults.ModFP32, NumFaults: 1}); err == nil {
		t.Error("t-MxM must reject FU injection (§V-D)")
	}
}

func TestAvgThreadsAndMedianHelpers(t *testing.T) {
	r := &Result{
		ThreadCounts: []int{1, 3},
		Syndromes:    []float64{0.5, 1.0, math.Inf(1), 2.0},
	}
	if got := AvgThreadsForModule([]*Result{r}); got != 2 {
		t.Errorf("avg threads = %v", got)
	}
	if got := MedianSyndrome(r); got != 1.0 {
		t.Errorf("median = %v", got)
	}
	if MedianSyndrome(&Result{}) != 0 {
		t.Error("empty median must be 0")
	}
}

func TestReportWriters(t *testing.T) {
	res, err := RunMicro(Spec{
		Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32,
		NumFaults: 400, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gen strings.Builder
	if err := res.WriteGeneralReport(&gen); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gen.String(), "op=FFMA") || !strings.Contains(gen.String(), "module=FP32") {
		t.Errorf("general report missing fields: %q", gen.String())
	}

	var det strings.Builder
	if err := res.WriteDetailedReport(&det); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(det.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != res.Tally.SDCs()+1 {
		t.Fatalf("detailed CSV rows = %d, want %d SDCs + header", len(rows), res.Tally.SDCs())
	}
	if len(rows[0]) != len(DetailedHeader) {
		t.Error("header width mismatch")
	}
	fb := res.FieldBreakdown()
	total := 0
	for field, n := range fb {
		if field == "" || field == "?" {
			t.Errorf("unnamed field in breakdown")
		}
		total += n
	}
	if total != res.Tally.SDCs() {
		t.Errorf("field breakdown sums to %d, want %d", total, res.Tally.SDCs())
	}
}
