package rtlfi

import (
	"fmt"
	"sort"

	"gpufi/internal/kasm"
	"gpufi/internal/rtl"
)

// checkpointsPerRun bounds the golden-prefix snapshots recorded per input
// draw. Faulty runs fast-forward to the latest checkpoint at or before
// their injection cycle, so the residual golden prefix re-simulated per
// fault averages goldenCycles/(2*checkpointsPerRun) — ~2% of a full
// replay — while the snapshot memory stays bounded. The same snapshots
// double as reconvergence probes: a faulty run whose state matches the
// golden checkpoint at a boundary is pruned there, so Masked runs (the
// vast majority) also skip most of their post-injection tail.
const checkpointsPerRun = 24

// ckptStore holds one input draw's golden-prefix snapshots in ascending
// cycle order. It is written once while the golden run replays and is
// read-only afterwards, so workers restore from it concurrently without
// synchronisation.
type ckptStore struct {
	snaps []*rtl.Snapshot
	every uint64 // checkpoint interval in cycles
}

func (c *ckptStore) add(s *rtl.Snapshot) { c.snaps = append(c.snaps, s) }

// at returns the golden snapshot captured at exactly cycle, or nil.
// RunFromPruned uses it to test faulty runs for golden reconvergence at
// checkpoint-aligned boundaries.
func (c *ckptStore) at(cycle uint64) *rtl.Snapshot {
	if c.every == 0 || cycle%c.every != 0 {
		return nil
	}
	// Snapshots sit at exactly i*every; boundaries past the golden run's
	// end (reachable only by hanging faulty runs) have no snapshot.
	if i := int(cycle / c.every); i < len(c.snaps) && c.snaps[i].Cycle() == cycle {
		return c.snaps[i]
	}
	return nil
}

// before returns the latest checkpoint captured at or before cycle, or
// nil when none qualifies. Fault cycles are drawn from [0, goldenCycles)
// and a checkpoint exists at cycle 0, so campaigns always get a hit.
func (c *ckptStore) before(cycle uint64) *rtl.Snapshot {
	i := sort.Search(len(c.snaps), func(i int) bool { return c.snaps[i].Cycle() > cycle }) - 1
	if i < 0 {
		return nil
	}
	return c.snaps[i]
}

// recordCheckpoints replays a draw's golden run on a scratch copy of its
// pristine input image, capturing evenly spaced snapshots of the fault-
// free machine. goldenCycles must come from a completed golden run of the
// same inputs; the replay is bit-identical, so the snapshots describe
// exactly the prefix every faulty run of this draw would otherwise
// re-simulate.
func recordCheckpoints(m *rtl.Machine, prog *kasm.Program, block int, pristine []uint32, sharedWords int, goldenCycles uint64) (ckptStore, error) {
	every := goldenCycles / checkpointsPerRun
	if every == 0 {
		every = 1
	}
	g := append([]uint32(nil), pristine...)
	cs := ckptStore{every: every}
	if err := m.RunCheckpointed(prog, 1, block, g, sharedWords, goldenCycles+1, every, cs.add); err != nil {
		return ckptStore{}, fmt.Errorf("rtlfi: checkpoint replay diverged: %w", err)
	}
	return cs, nil
}
