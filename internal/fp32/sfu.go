package fp32

import "math"

// This file defines the special-function unit (SFU) algorithms. The G80
// SFU evaluates transcendentals by table-driven quadratic interpolation;
// we model it as fixed Horner polynomial chains over the package's FTZ
// arithmetic. Every multiply/add below is one SFU pipeline stage in the
// RTL model (internal/rtl), which replays the identical chain through its
// stage registers — so fault-free RTL output equals these functions
// bit-for-bit.

// Sin polynomial coefficients (odd Taylor series of sin to x^13,
// float32-rounded; truncation error < 1e-9 on |x| <= pi/2).
var SinCoeffs = [6]float32{
	1.6059044e-10,  // x^13
	-2.5052108e-8,  // x^11
	2.7557319e-6,   // x^9
	-1.9841270e-4,  // x^7
	8.3333333e-3,   // x^5
	-1.66666667e-1, // x^3
}

// Sin approximates sin(a) for |a| <= pi/2 without range reduction, the
// operating regime the paper uses for SFU characterisation (§V-A: inputs
// "in the range 0 to pi/2, avoiding range reduction procedures").
// Outside that range the polynomial simply extrapolates, as the hardware
// fast path would.
func Sin(a float32) float32 {
	a = FTZ(a)
	if a != a {
		return a
	}
	x2 := Mul(a, a)
	// Horner: p = ((((c13*x2 + c11)*x2 + c9)*x2 + c7)*x2 + c5)*x2 + c3
	p := SinCoeffs[0]
	for _, c := range SinCoeffs[1:] {
		p = Fma(p, x2, c)
	}
	// sin(x) = x + x*x2*p = fma(x*x2, p, x)
	return Fma(Mul(a, x2), p, a)
}

// Exp polynomial coefficients for e^f on |f| <= ln2/2 (Taylor, float32).
var ExpCoeffs = [5]float32{
	8.3333333e-3, // f^5 / 120... (1/120)
	4.1666668e-2, // 1/24
	1.6666667e-1, // 1/6
	0.5,
	1.0,
}

// Exp argument-reduction constants: x = n*ln2 + f with ln2 split in two
// parts for accuracy.
const (
	Log2E   float32 = 1.4426950
	Ln2Hi   float32 = 0.693359375    // exact in 10 bits
	Ln2Lo   float32 = -2.12194440e-4 // ln2 - Ln2Hi
	expClampHi      = 88.72284       // ln(MaxFloat32)
	expClampLo      = -87.33655      // ln(min normal float32)
)

// Exp approximates e^a. Overflow saturates to +Inf, underflow flushes to
// zero (FTZ).
func Exp(a float32) float32 {
	a = FTZ(a)
	switch {
	case a != a:
		return a
	case a > expClampHi:
		return float32(math.Inf(1))
	case a < expClampLo:
		return 0
	}
	// n = round(a / ln2)
	t := Mul(a, Log2E)
	n := F2I(Add(t, signedHalf(t)))
	nf := I2F(n)
	// f = a - n*ln2, in two steps.
	f := Fma(nf, -Ln2Hi, a)
	f = Fma(nf, -Ln2Lo, f)
	// Horner: p = ((((c5*f + c4)*f + c3)*f + c2)*f + c1)*f + 1
	p := ExpCoeffs[0]
	p = Fma(p, f, ExpCoeffs[1])
	p = Fma(p, f, ExpCoeffs[2])
	p = Fma(p, f, ExpCoeffs[3])
	p = Fma(p, f, ExpCoeffs[4])
	p = Fma(p, f, 1.0)
	return Ldexp(p, n)
}

func signedHalf(t float32) float32 {
	if t < 0 {
		return -0.5
	}
	return 0.5
}

// Ldexp scales a normal float32 by 2^n with FTZ underflow and infinity
// overflow, modelling the SFU exponent-adjust stage.
func Ldexp(f float32, n int32) float32 {
	u := Unpack(math.Float32bits(f))
	switch u.Cls {
	case ClsZero:
		return math.Float32frombits(packZero(u.Sign))
	case ClsInf:
		return math.Float32frombits(packInf(u.Sign))
	case ClsNaN:
		return f
	}
	e := u.Exp + n
	if e > 127 {
		return math.Float32frombits(packInf(u.Sign))
	}
	if e < -126 {
		return math.Float32frombits(packZero(u.Sign))
	}
	return math.Float32frombits(Pack(u.Sign, e, u.Man))
}

// RcpMagic seeds the reciprocal Newton iteration.
const RcpMagic uint32 = 0x7EF311C3

// Rcp approximates 1/a with a bit-trick seed refined by three Newton
// iterations (each iteration is two SFU pipeline stages).
func Rcp(a float32) float32 {
	a = FTZ(a)
	b := math.Float32bits(a)
	u := Unpack(b)
	switch u.Cls {
	case ClsNaN:
		return a
	case ClsZero:
		return math.Float32frombits(packInf(u.Sign))
	case ClsInf:
		return math.Float32frombits(packZero(u.Sign))
	}
	y := math.Float32frombits(RcpMagic - b)
	for i := 0; i < 3; i++ {
		e := Fma(-a, y, 1.0) // e = 1 - a*y
		y = Fma(y, e, y)     // y = y + y*e
	}
	return FTZ(y)
}

// RsqrtMagic seeds the inverse-square-root Newton iteration.
const RsqrtMagic uint32 = 0x5F3759DF

// Rsqrt approximates 1/sqrt(a) with the classic bit-trick seed refined by
// three Newton iterations.
func Rsqrt(a float32) float32 {
	a = FTZ(a)
	b := math.Float32bits(a)
	u := Unpack(b)
	switch {
	case u.Cls == ClsNaN:
		return a
	case u.Cls == ClsZero:
		return math.Float32frombits(packInf(u.Sign))
	case u.Sign == 1:
		return math.Float32frombits(quietNaN)
	case u.Cls == ClsInf:
		return 0
	}
	y := math.Float32frombits(RsqrtMagic - b>>1)
	halfA := Mul(a, 0.5)
	for i := 0; i < 3; i++ {
		// y = y * (1.5 - halfA*y*y)
		t := Mul(y, y)
		t = Fma(-halfA, t, 1.5)
		y = Mul(y, t)
	}
	return FTZ(y)
}
