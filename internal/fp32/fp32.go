// Package fp32 implements the single-precision floating-point semantics of
// the modelled GPU: IEEE-754 binary32 with round-to-nearest-even and
// flush-to-zero (FTZ) for subnormal inputs and outputs, matching the
// NVIDIA G80 FP32 pipeline that FlexGripPlus models.
//
// Both the functional emulator (internal/emu) and the RTL datapath
// (internal/rtl) compute through this package, so their fault-free results
// are identical by construction; the RTL unit additionally exposes every
// intermediate value as a named stage register for fault injection.
package fp32

import (
	"math"
	"math/bits"
)

// Class partitions float32 values after FTZ.
type Class uint8

// Value classes.
const (
	ClsZero Class = iota // true zero or flushed subnormal
	ClsNorm
	ClsInf
	ClsNaN
)

const (
	expBias  = 127
	quietNaN = 0x7FC00000
)

// Unpacked is a decomposed float32 operand as held in the RTL unpack-stage
// registers.
type Unpacked struct {
	Cls  Class
	Sign uint32 // 0 or 1
	Exp  int32  // unbiased exponent (ClsNorm only)
	Man  uint32 // 24-bit significand with implicit leading one (ClsNorm only)
}

// Unpack decomposes the IEEE bits of v, flushing subnormals to zero.
func Unpack(bitsV uint32) Unpacked {
	u := Unpacked{Sign: bitsV >> 31}
	e := int32(bitsV>>23) & 0xFF
	m := bitsV & 0x7FFFFF
	switch {
	case e == 0xFF && m != 0:
		u.Cls = ClsNaN
	case e == 0xFF:
		u.Cls = ClsInf
	case e == 0:
		u.Cls = ClsZero // FTZ: subnormal treated as zero
	default:
		u.Cls = ClsNorm
		u.Exp = e - expBias
		u.Man = m | 1<<23
	}
	return u
}

// Pack reassembles IEEE bits from sign/exponent/24-bit significand. The
// significand must be normalized (bit 23 set) and the exponent in range.
func Pack(sign uint32, exp int32, man uint32) uint32 {
	return sign<<31 | uint32(exp+expBias)<<23 | (man & 0x7FFFFF)
}

func packZero(sign uint32) uint32 { return sign << 31 }
func packInf(sign uint32) uint32  { return sign<<31 | 0x7F800000 }

// FTZ flushes a subnormal float32 to a zero of the same sign.
func FTZ(f float32) float32 {
	b := math.Float32bits(f)
	if b&0x7F800000 == 0 && b&0x7FFFFF != 0 {
		return math.Float32frombits(b & 0x80000000)
	}
	return f
}

// RoundPack rounds the positive magnitude frac × 2^(exp-pt) to a float32
// with round-to-nearest-even, applying FTZ underflow and infinity overflow.
// pt is the bit position of the binary point's unit bit: the represented
// value is (frac / 2^pt) × 2^exp. frac must be non-zero. This is the
// round/normalise stage of the RTL datapath.
func RoundPack(sign uint32, exp int32, frac uint64, pt int32) uint32 {
	msb := int32(bits.Len64(frac)) - 1
	exp += msb - pt
	// Normalise so the leading one sits at bit 47, collecting sticky.
	var sticky uint64
	switch {
	case msb > 47:
		shift := msb - 47
		sticky = frac & (1<<shift - 1)
		frac >>= shift
	case msb < 47:
		frac <<= 47 - msb
	}
	man := uint32(frac >> 24) // 24-bit significand, leading one at bit 23
	round := frac >> 23 & 1   // round bit
	stickyAll := frac&(1<<23-1) | sticky
	if round == 1 && (stickyAll != 0 || man&1 == 1) {
		man++
		if man == 1<<24 {
			man >>= 1
			exp++
		}
	}
	if exp > 127 {
		return packInf(sign)
	}
	if exp < -126 {
		return packZero(sign) // FTZ underflow
	}
	return Pack(sign, exp, man)
}

// Add returns a+b with RNE and FTZ.
func Add(a, b float32) float32 {
	return math.Float32frombits(AddBits(math.Float32bits(a), math.Float32bits(b)))
}

// bothNormal reports whether both operands have a biased exponent in
// [1, 0xFE] — finite, non-zero, not subnormal. On such inputs FTZ is
// inert and the host's IEEE-754 binary32 arithmetic applies the same
// single round-to-nearest-even the datapath functions below do.
func bothNormal(ab, bb uint32) bool {
	return (ab>>23&0xFF)-1 < 0xFE && (bb>>23&0xFF)-1 < 0xFE
}

// fastResult reports whether a natively computed result can be returned
// bit-identically: biased exponent in [2, 0xFE]. Exponent 0xFF (overflow)
// and 0 (zero or subnormal, where FTZ applies) clearly need the datapath;
// exponent 1 is excluded too because near the 2^-126 boundary the native
// rounding works on the subnormal grid while the datapath rounds on the
// 24-bit normal grid and then flushes, and the two can disagree on
// whether a value just below 2^-126 rounds up into the normal range.
func fastResult(r uint32) bool {
	return (r>>23&0xFF)-2 < 0xFD
}

// AddBits is Add on raw IEEE bit patterns. When both operands are normal
// and the native sum's exponent is safely inside the normal range, the
// host addition already performed the exact same single RNE rounding, so
// its bits are returned directly; every FTZ, zero, overflow and special
// case falls through to the bit-exact datapath.
func AddBits(ab, bb uint32) uint32 {
	if bothNormal(ab, bb) {
		r := math.Float32bits(math.Float32frombits(ab) + math.Float32frombits(bb))
		if fastResult(r) {
			return r
		}
	}
	return addBitsSlow(ab, bb)
}

// addBitsSlow is the unpack/align/add/round datapath for AddBits.
func addBitsSlow(ab, bb uint32) uint32 {
	x, y := Unpack(ab), Unpack(bb)
	switch {
	case x.Cls == ClsNaN || y.Cls == ClsNaN:
		return quietNaN
	case x.Cls == ClsInf && y.Cls == ClsInf:
		if x.Sign != y.Sign {
			return quietNaN
		}
		return packInf(x.Sign)
	case x.Cls == ClsInf:
		return packInf(x.Sign)
	case y.Cls == ClsInf:
		return packInf(y.Sign)
	case x.Cls == ClsZero && y.Cls == ClsZero:
		return packZero(x.Sign & y.Sign) // +0 unless both negative (RNE)
	case x.Cls == ClsZero:
		return Pack(y.Sign, y.Exp, y.Man)
	case y.Cls == ClsZero:
		return Pack(x.Sign, x.Exp, x.Man)
	}
	return addCore(x.Sign, x.Exp, uint64(x.Man), y.Sign, y.Exp, uint64(y.Man), 23)
}

// Aligned is the output of the FP align stage: two magnitudes brought to a
// common scale, larger first, with the smaller's shifted-out bits folded
// into its LSB as a sticky bit. This is the state held in the RTL FP32
// align-stage registers.
type Aligned struct {
	SignB uint32 // sign of the larger magnitude
	SignS uint32 // sign of the smaller magnitude
	Exp   int32  // common exponent (of the larger magnitude)
	FracB uint64 // larger magnitude, shifted left by the guard headroom
	FracS uint64 // smaller magnitude, aligned, sticky folded into bit 0
}

// AlignGuardBits is the headroom Align gives both fractions; RoundPack
// callers must add it to their binary-point position.
const AlignGuardBits = 8

// AlignOrder is the first half of the align stage: order the operands by
// magnitude, apply the guard headroom, and compute the alignment shift
// (saturated to 63). The shift is held in an RTL stage register between
// order and shift — a fault there rescales the result by a power of two,
// one of the avalanche corruption modes behind the paper's many-bit
// output syndromes (§V-C).
func AlignOrder(signX uint32, expX int32, fracX uint64, signY uint32, expY int32, fracY uint64) (al Aligned, shift uint32) {
	fracX <<= AlignGuardBits
	fracY <<= AlignGuardBits
	// Make X the operand with the larger magnitude.
	if expY > expX || (expY == expX && fracY > fracX) {
		signX, signY = signY, signX
		expX, expY = expY, expX
		fracX, fracY = fracY, fracX
	}
	d := expX - expY
	if d > 63 {
		d = 63
	}
	return Aligned{SignB: signX, SignS: signY, Exp: expX, FracB: fracX, FracS: fracY}, uint32(d)
}

// AlignShift is the second half of the align stage: shift the smaller
// fraction right with the sticky bit folded into bit 0. A saturated shift
// (63) reduces any fraction to pure sticky.
func AlignShift(fracS uint64, shift uint32) uint64 {
	if shift == 0 {
		return fracS
	}
	if shift >= 63 {
		if fracS != 0 {
			return 1
		}
		return 0
	}
	sticky := fracS & (1<<shift - 1)
	fracS >>= shift
	if sticky != 0 {
		fracS |= 1
	}
	return fracS
}

// Align orders two signed magnitudes by value and aligns the smaller one
// to the larger one's exponent. Both fractions must share the same
// leading-one position convention (the comparison is lexicographic on
// (exp, frac)) and be non-zero.
func Align(signX uint32, expX int32, fracX uint64, signY uint32, expY int32, fracY uint64) Aligned {
	al, shift := AlignOrder(signX, expX, fracX, signY, expY, fracY)
	al.FracS = AlignShift(al.FracS, shift)
	return al
}

// SumAligned adds or subtracts the aligned magnitudes (the RTL add stage),
// returning the result sign and magnitude. A zero magnitude means exact
// cancellation (+0 under RNE).
func SumAligned(al Aligned) (sign uint32, frac uint64) {
	if al.SignB == al.SignS {
		return al.SignB, al.FracB + al.FracS
	}
	return al.SignB, al.FracB - al.FracS
}

// addCore adds two signed magnitudes (fracX × 2^(expX-pt)) with full
// guard/round/sticky handling. Magnitudes must be non-zero.
func addCore(signX uint32, expX int32, fracX uint64, signY uint32, expY int32, fracY uint64, pt int32) uint32 {
	al := Align(signX, expX, fracX, signY, expY, fracY)
	sign, frac := SumAligned(al)
	if frac == 0 {
		return packZero(0) // exact cancellation: +0 under RNE
	}
	return RoundPack(sign, al.Exp, frac, pt+AlignGuardBits)
}

// Mul returns a*b with RNE and FTZ.
func Mul(a, b float32) float32 {
	return math.Float32frombits(MulBits(math.Float32bits(a), math.Float32bits(b)))
}

// MulBits is Mul on raw IEEE bit patterns, with the same native shortcut
// as AddBits (the 48-bit exact product rounds once either way).
func MulBits(ab, bb uint32) uint32 {
	if bothNormal(ab, bb) {
		r := math.Float32bits(math.Float32frombits(ab) * math.Float32frombits(bb))
		if fastResult(r) {
			return r
		}
	}
	return mulBitsSlow(ab, bb)
}

// mulBitsSlow is the unpack/multiply/round datapath for MulBits.
func mulBitsSlow(ab, bb uint32) uint32 {
	x, y := Unpack(ab), Unpack(bb)
	sign := x.Sign ^ y.Sign
	switch {
	case x.Cls == ClsNaN || y.Cls == ClsNaN:
		return quietNaN
	case x.Cls == ClsInf || y.Cls == ClsInf:
		if x.Cls == ClsZero || y.Cls == ClsZero {
			return quietNaN // inf * 0
		}
		return packInf(sign)
	case x.Cls == ClsZero || y.Cls == ClsZero:
		return packZero(sign)
	}
	p := uint64(x.Man) * uint64(y.Man) // exact, in [2^46, 2^48)
	return RoundPack(sign, x.Exp+y.Exp, p, 46)
}

// Fma returns a*b+c with a single rounding (fused), RNE and FTZ.
func Fma(a, b, c float32) float32 {
	return math.Float32frombits(FmaBits(math.Float32bits(a), math.Float32bits(b), math.Float32bits(c)))
}

// FmaBits is Fma on raw IEEE bit patterns. The native shortcut computes
// through math.FMA on float64, which rounds the exact a*b+c once to 53
// bits. Converting that to binary32 is a second rounding, which is only
// hazardous when the 53-bit value lands exactly on a binary32 rounding
// midpoint (low 29 mantissa bits = 0x10000000): the 53-bit rounding may
// have manufactured or destroyed the tie, so those cases — about one in
// 2^29 — fall back to the single-rounding datapath. Off the midpoint the
// conversion's decision is unaffected by the at-most-half-ulp53 error,
// because midpoints are themselves 53-bit values: a result that is not
// one sits at least a full ulp53 away, twice the rounding error.
func FmaBits(ab, bb, cb uint32) uint32 {
	if bothNormal(ab, bb) && (cb>>23&0xFF)-1 < 0xFE {
		r64 := math.FMA(
			float64(math.Float32frombits(ab)),
			float64(math.Float32frombits(bb)),
			float64(math.Float32frombits(cb)))
		if math.Float64bits(r64)&0x1FFFFFFF != 0x10000000 {
			if r := math.Float32bits(float32(r64)); fastResult(r) {
				return r
			}
		}
	}
	return fmaBitsSlow(ab, bb, cb)
}

// fmaBitsSlow is the unpack/multiply/align/add/round datapath for FmaBits.
func fmaBitsSlow(ab, bb, cb uint32) uint32 {
	x, y, z := Unpack(ab), Unpack(bb), Unpack(cb)
	psign := x.Sign ^ y.Sign
	// NaN and infinity handling.
	if x.Cls == ClsNaN || y.Cls == ClsNaN || z.Cls == ClsNaN {
		return quietNaN
	}
	if (x.Cls == ClsInf && y.Cls == ClsZero) || (x.Cls == ClsZero && y.Cls == ClsInf) {
		return quietNaN
	}
	prodInf := x.Cls == ClsInf || y.Cls == ClsInf
	if prodInf {
		if z.Cls == ClsInf && z.Sign != psign {
			return quietNaN
		}
		return packInf(psign)
	}
	if z.Cls == ClsInf {
		return packInf(z.Sign)
	}
	prodZero := x.Cls == ClsZero || y.Cls == ClsZero
	switch {
	case prodZero && z.Cls == ClsZero:
		return packZero(psign & z.Sign)
	case prodZero:
		return Pack(z.Sign, z.Exp, z.Man)
	}
	// Exact 48-bit product, normalised so its leading one sits at bit 47.
	// addCore orders operands by (exponent, fraction) lexicographically,
	// which is only valid when both fractions share the same leading-one
	// position.
	p := uint64(x.Man) * uint64(y.Man) // in [2^46, 2^48)
	pexp := x.Exp + y.Exp + 1
	if p < 1<<47 {
		p <<= 1
		pexp--
	}
	if z.Cls == ClsZero {
		return RoundPack(psign, pexp, p, 47)
	}
	// Align the addend to the same convention: unit bit moves 23 -> 47.
	return addCore(psign, pexp, p, z.Sign, z.Exp, uint64(z.Man)<<24, 47)
}

// Min returns the smaller of a and b (FMNMX semantics: NaN loses).
func Min(a, b float32) float32 {
	a, b = FTZ(a), FTZ(b)
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a < b:
		return a
	}
	return b
}

// Max returns the larger of a and b (FMNMX semantics: NaN loses).
func Max(a, b float32) float32 {
	a, b = FTZ(a), FTZ(b)
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a > b:
		return a
	}
	return b
}

// F2I converts to int32 with truncation toward zero, saturating, NaN -> 0
// (CUDA cvt.rzi semantics).
func F2I(a float32) int32 {
	a = FTZ(a)
	switch {
	case a != a:
		return 0
	case a >= 2147483647:
		return math.MaxInt32
	case a <= -2147483648:
		return math.MinInt32
	}
	return int32(a)
}

// I2F converts an int32 to float32 with RNE.
func I2F(v int32) float32 {
	return float32(v) // Go's conversion is RNE; result is always normal
}

// RelErr returns the relative difference |golden-faulty| / |golden| used to
// quantify fault syndromes (§III). When the golden value is zero the
// absolute difference is returned; NaN/Inf corruption yields +Inf.
func RelErr(golden, faulty float64) float64 {
	if golden == faulty {
		return 0
	}
	if math.IsNaN(faulty) || math.IsInf(faulty, 0) || math.IsNaN(golden) || math.IsInf(golden, 0) {
		return math.Inf(1)
	}
	d := math.Abs(golden - faulty)
	if golden == 0 {
		return d
	}
	return d / math.Abs(golden)
}

// RelErrBits computes RelErr on float32 bit patterns.
func RelErrBits(golden, faulty uint32) float64 {
	return RelErr(float64(math.Float32frombits(golden)), float64(math.Float32frombits(faulty)))
}
