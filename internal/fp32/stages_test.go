package fp32

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"gpufi/internal/stats"
)

// TestAlignDecompositionEquivalence: AlignOrder + AlignShift must compose
// to exactly Align — the property the RTL align stages depend on.
func TestAlignDecompositionEquivalence(t *testing.T) {
	r := stats.NewRNG(404)
	for i := 0; i < 200000; i++ {
		// Random normalised 48-bit fractions with leading one at bit 47.
		fx := 1<<47 | r.Uint64()&(1<<47-1)
		fy := 1<<47 | r.Uint64()&(1<<47-1)
		ex := int32(r.Intn(600)) - 300
		ey := int32(r.Intn(600)) - 300
		sx := uint32(r.Intn(2))
		sy := uint32(r.Intn(2))

		want := Align(sx, ex, fx, sy, ey, fy)
		al, shift := AlignOrder(sx, ex, fx, sy, ey, fy)
		al.FracS = AlignShift(al.FracS, shift)
		if al != want {
			t.Fatalf("decomposition mismatch:\n got %+v\nwant %+v (shift %d)", al, want, shift)
		}
	}
}

func TestAlignShiftEdgeCases(t *testing.T) {
	if AlignShift(0, 63) != 0 {
		t.Error("zero fraction must shift to zero")
	}
	if AlignShift(123, 63) != 1 {
		t.Error("saturated shift of non-zero must be pure sticky")
	}
	if AlignShift(0b1000, 0) != 0b1000 {
		t.Error("zero shift must be identity")
	}
	// Sticky folding: shifted-out bits set bit 0 of the shifted value.
	if AlignShift(0b10001, 3) != 0b11 {
		t.Errorf("AlignShift(0b10001, 3) = %b, want 0b11", AlignShift(0b10001, 3))
	}
	// Exact shift keeps no sticky.
	if AlignShift(0b1000, 3) != 0b1 {
		t.Errorf("AlignShift(0b1000, 3) = %b, want 0b1", AlignShift(0b1000, 3))
	}
}

func TestAlignOrderOrdersByMagnitude(t *testing.T) {
	f := func(fxRaw, fyRaw uint64, exRaw, eyRaw uint16) bool {
		fx := 1<<47 | fxRaw&(1<<47-1)
		fy := 1<<47 | fyRaw&(1<<47-1)
		ex := int32(exRaw%600) - 300
		ey := int32(eyRaw%600) - 300
		al, _ := AlignOrder(0, ex, fx, 1, ey, fy)
		// The big side must truly be >= the small side as a magnitude.
		big := float64(al.FracB>>AlignGuardBits) * math.Pow(2, float64(al.Exp))
		// Reconstruct the small side's pre-shift magnitude.
		smallExp := ex + ey - al.Exp // the other exponent
		small := float64(al.FracS>>AlignGuardBits) * math.Pow(2, float64(smallExp))
		return big >= small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestRoundPackAgainstBigFloat(t *testing.T) {
	r := stats.NewRNG(505)
	for i := 0; i < 100000; i++ {
		frac := r.Uint64()
		if frac == 0 {
			continue
		}
		pt := int32(r.Intn(50)) + 10
		exp := int32(r.Intn(200)) - 100
		sign := uint32(r.Intn(2))
		got := math.Float32frombits(RoundPack(sign, exp, frac, pt))

		// Reference: value = frac * 2^(exp-pt), rounded via float64->float32
		// is unsafe (double rounding); construct from parts instead.
		want := refRound(sign, exp, frac, pt)
		gb, wb := math.Float32bits(got), math.Float32bits(want)
		if gb != wb && (gb<<1 != 0 || wb<<1 != 0) {
			t.Fatalf("RoundPack(%d, %d, %#x, %d) = %v (%#x), want %v (%#x)",
				sign, exp, frac, pt, got, gb, want, wb)
		}
	}
}

// refRound computes round-to-nearest-even of frac*2^(exp-pt) via the
// arbitrary-precision path used in fp32_test.go.
func refRound(sign uint32, exp int32, frac uint64, pt int32) float32 {
	bf := bigFromParts(frac, exp-pt)
	f, _ := bf.Float32()
	f = FTZ(f)
	if sign == 1 {
		f = -f
	}
	// RoundPack overflows to Inf; big.Float agrees via Float32().
	return f
}

func TestLdexpBounds(t *testing.T) {
	if v := Ldexp(1.5, 200); !math.IsInf(float64(v), 1) {
		t.Errorf("Ldexp overflow = %v", v)
	}
	if v := Ldexp(1.5, -300); v != 0 {
		t.Errorf("Ldexp underflow = %v (FTZ)", v)
	}
	if v := Ldexp(1.5, 3); v != 12 {
		t.Errorf("Ldexp(1.5, 3) = %v", v)
	}
	if v := Ldexp(-0.75, 1); v != -1.5 {
		t.Errorf("Ldexp(-0.75, 1) = %v", v)
	}
	nan := float32(math.NaN())
	if v := Ldexp(nan, 1); v == v {
		t.Error("Ldexp must pass NaN through")
	}
	if v := Ldexp(float32(math.Inf(-1)), -5); !math.IsInf(float64(v), -1) {
		t.Error("Ldexp must pass infinities through")
	}
}

func TestSinExpChainsUseDeclaredCoefficients(t *testing.T) {
	// The RTL SFU replays the Horner chains from the exported coefficient
	// tables; a drive-by edit of either side must fail this equivalence.
	x := float32(0.73)
	x2 := Mul(x, x)
	p := SinCoeffs[0]
	for _, c := range SinCoeffs[1:] {
		p = Fma(p, x2, c)
	}
	manual := Fma(Mul(x, x2), p, x)
	if got := Sin(x); got != manual {
		t.Errorf("Sin(%v) = %v, manual chain = %v", x, got, manual)
	}
}

// bigFromParts returns frac * 2^e at high precision.
func bigFromParts(frac uint64, e int32) *big.Float {
	bf := new(big.Float).SetPrec(200).SetUint64(frac)
	return new(big.Float).SetPrec(200).SetMantExp(bf, int(e))
}
