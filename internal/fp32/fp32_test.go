package fp32

import (
	"math"
	"math/big"
	"testing"

	"gpufi/internal/stats"
)

// refOp computes the exactly rounded float32 result of an operation using
// arbitrary-precision arithmetic, with FTZ applied to inputs and output —
// the ground truth for the package's datapath implementations.
func refFma(a, b, c float32) float32 {
	a, b, c = FTZ(a), FTZ(b), FTZ(c)
	if isSpecial(a) || isSpecial(b) || isSpecial(c) {
		panic("refFma: special values handled separately")
	}
	bigA := new(big.Float).SetPrec(200).SetFloat64(float64(a))
	bigB := new(big.Float).SetPrec(200).SetFloat64(float64(b))
	bigC := new(big.Float).SetPrec(200).SetFloat64(float64(c))
	p := new(big.Float).SetPrec(200).Mul(bigA, bigB)
	s := new(big.Float).SetPrec(200).Add(p, bigC)
	f, _ := s.Float32()
	return FTZ(f)
}

func isSpecial(f float32) bool {
	return f != f || math.IsInf(float64(f), 0)
}

func randFloat(r *stats.RNG) float32 {
	// Mix of full-range bit patterns and moderate values.
	if r.Bool() {
		return math.Float32frombits(uint32(r.Uint64()))
	}
	return float32(r.Float64Range(-1e6, 1e6))
}

func finiteNormal(f float32) bool {
	if isSpecial(f) {
		return false
	}
	b := math.Float32bits(f)
	return b&0x7F800000 != 0 || b&0x7FFFFF == 0 // not subnormal
}

func TestAddMatchesExactReference(t *testing.T) {
	r := stats.NewRNG(101)
	for i := 0; i < 200000; i++ {
		a, b := randFloat(r), randFloat(r)
		if !finiteNormal(a) || !finiteNormal(b) {
			continue
		}
		got := Add(a, b)
		want := refFma(a, 1, b)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("Add(%x, %x) = %x, want %x",
				math.Float32bits(a), math.Float32bits(b),
				math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestMulMatchesExactReference(t *testing.T) {
	r := stats.NewRNG(102)
	for i := 0; i < 200000; i++ {
		a, b := randFloat(r), randFloat(r)
		if !finiteNormal(a) || !finiteNormal(b) {
			continue
		}
		got := Mul(a, b)
		// Exact product then single rounding; zero product keeps sign.
		want := FTZ(float32(float64(FTZ(a)) * float64(FTZ(b)))) // exact in float64
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("Mul(%x, %x) = %x, want %x",
				math.Float32bits(a), math.Float32bits(b),
				math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestFmaMatchesExactReference(t *testing.T) {
	r := stats.NewRNG(103)
	for i := 0; i < 200000; i++ {
		a, b, c := randFloat(r), randFloat(r), randFloat(r)
		if !finiteNormal(a) || !finiteNormal(b) || !finiteNormal(c) {
			continue
		}
		got := Fma(a, b, c)
		want := refFma(a, b, c)
		gb, wb := math.Float32bits(got), math.Float32bits(want)
		// A zero result may differ in sign from the big.Float reference
		// (which has no signed zero distinction after FTZ); accept both.
		if gb != wb && (gb<<1 != 0 || wb<<1 != 0) {
			t.Fatalf("Fma(%x, %x, %x) = %x, want %x",
				math.Float32bits(a), math.Float32bits(b), math.Float32bits(c), gb, wb)
		}
	}
}

func TestFmaCancellation(t *testing.T) {
	// Catastrophic cancellation exercises the normalisation shifter.
	cases := [][3]float32{
		{1.0000001, 1, -1.0000001},
		{3, 1.0 / 3, -1},
		{1e30, 1e-30, -1},
		{1 << 24, 1, -(1 << 24)},
		{1.5, 2, -3},
	}
	for _, c := range cases {
		got := Fma(c[0], c[1], c[2])
		want := refFma(c[0], c[1], c[2])
		if math.Float32bits(got) != math.Float32bits(want) && (got != 0 || want != 0) {
			t.Errorf("Fma(%v,%v,%v) = %v, want %v", c[0], c[1], c[2], got, want)
		}
	}
	if r := Fma(1.5, 2, -3); r != 0 || math.Signbit(float64(r)) {
		t.Errorf("exact cancellation must give +0, got %v", r)
	}
}

func TestSpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	if v := Add(inf, -inf); v == v {
		t.Error("inf + -inf must be NaN")
	}
	if v := Add(inf, 1); !math.IsInf(float64(v), 1) {
		t.Error("inf + 1 must be inf")
	}
	if v := Mul(inf, 0); v == v {
		t.Error("inf * 0 must be NaN")
	}
	if v := Mul(-inf, 2); !math.IsInf(float64(v), -1) {
		t.Error("-inf * 2 must be -inf")
	}
	if v := Fma(inf, 0, 1); v == v {
		t.Error("fma(inf,0,1) must be NaN")
	}
	if v := Fma(inf, 1, -inf); v == v {
		t.Error("fma(inf,1,-inf) must be NaN")
	}
	if v := Fma(nan, 1, 1); v == v {
		t.Error("NaN propagation failed")
	}
	if v := Fma(2, 3, inf); !math.IsInf(float64(v), 1) {
		t.Error("fma(2,3,inf) must be inf")
	}
}

func TestSignedZeroRules(t *testing.T) {
	negZero := float32(math.Copysign(0, -1))
	if v := Mul(-1, 0); !math.Signbit(float64(v)) || v != 0 {
		t.Errorf("-1*0 = %v, want -0", v)
	}
	if v := Add(negZero, negZero); !math.Signbit(float64(v)) {
		t.Errorf("-0 + -0 = %v, want -0", v)
	}
	if v := Add(negZero, 0); math.Signbit(float64(v)) {
		t.Errorf("-0 + +0 = %v, want +0", v)
	}
	if v := Fma(negZero, 5, 0); math.Signbit(float64(v)) || v != 0 {
		t.Errorf("fma(-0,5,+0) = %v, want +0", v)
	}
	if v := Fma(negZero, 5, negZero); !math.Signbit(float64(v)) {
		t.Errorf("fma(-0,5,-0) = %v, want -0", v)
	}
}

func TestFTZBehaviour(t *testing.T) {
	sub := math.Float32frombits(0x00000001) // smallest subnormal
	if FTZ(sub) != 0 {
		t.Error("subnormal input not flushed")
	}
	if FTZ(float32(1.5)) != 1.5 {
		t.Error("normal input flushed")
	}
	// Operations flush subnormal inputs...
	if v := Add(sub, sub); v != 0 {
		t.Errorf("add of subnormals = %v, want 0 (FTZ)", v)
	}
	// ...and subnormal outputs.
	tiny := math.Float32frombits(0x00800000) // min normal
	if v := Mul(tiny, 0.5); v != 0 {
		t.Errorf("underflowing multiply = %v, want 0 (FTZ)", v)
	}
}

func TestOverflowToInfinity(t *testing.T) {
	big := float32(3e38)
	if v := Add(big, big); !math.IsInf(float64(v), 1) {
		t.Errorf("overflowing add = %v, want +inf", v)
	}
	if v := Mul(-big, big); !math.IsInf(float64(v), -1) {
		t.Errorf("overflowing multiply = %v, want -inf", v)
	}
}

func TestUnpackPackRoundTrip(t *testing.T) {
	r := stats.NewRNG(7)
	for i := 0; i < 100000; i++ {
		bits := uint32(r.Uint64())
		u := Unpack(bits)
		if u.Cls != ClsNorm {
			continue
		}
		if got := Pack(u.Sign, u.Exp, u.Man); got != bits {
			t.Fatalf("pack(unpack(%x)) = %x", bits, got)
		}
	}
}

func TestF2ISemantics(t *testing.T) {
	tests := []struct {
		in   float32
		want int32
	}{
		{1.9, 1},
		{-1.9, -1},
		{0, 0},
		{float32(math.NaN()), 0},
		{3e9, math.MaxInt32},
		{-3e9, math.MinInt32},
		{float32(math.Inf(1)), math.MaxInt32},
		{float32(math.Inf(-1)), math.MinInt32},
	}
	for _, tt := range tests {
		if got := F2I(tt.in); got != tt.want {
			t.Errorf("F2I(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMinMaxNaNLoses(t *testing.T) {
	nan := float32(math.NaN())
	if Min(nan, 3) != 3 || Min(3, nan) != 3 {
		t.Error("Min must ignore NaN")
	}
	if Max(nan, 3) != 3 || Max(3, nan) != 3 {
		t.Error("Max must ignore NaN")
	}
	if Min(2, 3) != 2 || Max(2, 3) != 3 {
		t.Error("Min/Max basic ordering")
	}
}

func TestSinAccuracy(t *testing.T) {
	// Paper regime: [0, pi/2].
	for x := float32(0); x <= math.Pi/2; x += 0.001 {
		got := float64(Sin(x))
		want := math.Sin(float64(x))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Sin(%v) = %v, want %v (err %v)", x, got, want, got-want)
		}
	}
	if Sin(0) != 0 {
		t.Error("Sin(0) != 0")
	}
}

func TestExpAccuracy(t *testing.T) {
	for x := float32(-10); x <= 10; x += 0.01 {
		got := float64(Exp(x))
		want := math.Exp(float64(x))
		if math.Abs(got-want)/want > 6e-6 {
			t.Fatalf("Exp(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsInf(float64(Exp(200)), 1) {
		t.Error("Exp overflow must be +Inf")
	}
	if Exp(-200) != 0 {
		t.Error("Exp underflow must flush to 0")
	}
}

func TestRcpAccuracy(t *testing.T) {
	r := stats.NewRNG(31)
	for i := 0; i < 20000; i++ {
		x := float32(r.Float64Range(1e-20, 1e20))
		if r.Bool() {
			x = -x
		}
		got := float64(Rcp(x))
		want := 1 / float64(x)
		if want != 0 && math.Abs(got-want)/math.Abs(want) > 1e-6 {
			t.Fatalf("Rcp(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsInf(float64(Rcp(0)), 1) {
		t.Error("Rcp(0) must be +Inf")
	}
	if v := Rcp(float32(math.Inf(1))); v != 0 {
		t.Error("Rcp(inf) must be 0")
	}
}

func TestRsqrtAccuracy(t *testing.T) {
	r := stats.NewRNG(32)
	for i := 0; i < 20000; i++ {
		x := float32(r.Float64Range(1e-20, 1e20))
		got := float64(Rsqrt(x))
		want := 1 / math.Sqrt(float64(x))
		if math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("Rsqrt(%v) = %v, want %v", x, got, want)
		}
	}
	if v := Rsqrt(-1); v == v {
		t.Error("Rsqrt(-1) must be NaN")
	}
	if !math.IsInf(float64(Rsqrt(0)), 1) {
		t.Error("Rsqrt(0) must be +Inf")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(2, 2) != 0 {
		t.Error("identical values must have zero error")
	}
	if got := RelErr(2, 4); got != 1 {
		t.Errorf("RelErr(2,4) = %v, want 1 (100%%)", got)
	}
	if got := RelErr(0, 0.5); got != 0.5 {
		t.Errorf("RelErr(0,0.5) = %v, want absolute 0.5", got)
	}
	if !math.IsInf(RelErr(1, math.NaN()), 1) {
		t.Error("NaN corruption must be +Inf error")
	}
	if !math.IsInf(RelErr(1, math.Inf(1)), 1) {
		t.Error("Inf corruption must be +Inf error")
	}
}

func BenchmarkFma(b *testing.B) {
	x := float32(1.5)
	for i := 0; i < b.N; i++ {
		x = Fma(x, 0.9999999, 0.1)
	}
	_ = x
}

func BenchmarkSin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Sin(0.7)
	}
}

// boundaryBits enumerates operand bit patterns dense around every edge the
// native shortcut's guards reason about: zeros, subnormals, the smallest
// and largest normals, exponents where results straddle the flush and
// overflow boundaries, and both signs of each.
func boundaryBits() []uint32 {
	exps := []uint32{0, 1, 2, 3, 0x3F, 0x40, 0x7D, 0x7E, 0x7F, 0x80, 0x81, 0xFC, 0xFD, 0xFE, 0xFF}
	mans := []uint32{0, 1, 2, 0x400000, 0x7FFFFD, 0x7FFFFE, 0x7FFFFF}
	var out []uint32
	for _, s := range []uint32{0, 1} {
		for _, e := range exps {
			for _, m := range mans {
				out = append(out, s<<31|e<<23|m)
			}
		}
	}
	return out
}

// TestNativeShortcutMatchesDatapath pins the native-arithmetic shortcuts
// in AddBits/MulBits/FmaBits to the bit-exact align/round datapath: every
// boundary-dense pair (and a random triple sweep for FMA) must produce
// identical bits whichever path takes the result.
func TestNativeShortcutMatchesDatapath(t *testing.T) {
	vals := boundaryBits()
	for _, a := range vals {
		for _, b := range vals {
			if got, want := AddBits(a, b), addBitsSlow(a, b); got != want {
				t.Fatalf("AddBits(%#x, %#x) = %#x, datapath %#x", a, b, got, want)
			}
			if got, want := MulBits(a, b), mulBitsSlow(a, b); got != want {
				t.Fatalf("MulBits(%#x, %#x) = %#x, datapath %#x", a, b, got, want)
			}
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range []uint32{0, 0x3F800000, 0x00800000, 0x80800001, 0x7F7FFFFF} {
				if got, want := FmaBits(a, b, c), fmaBitsSlow(a, b, c); got != want {
					t.Fatalf("FmaBits(%#x, %#x, %#x) = %#x, datapath %#x", a, b, c, got, want)
				}
			}
		}
	}
	r := stats.NewRNG(331)
	for i := 0; i < 500000; i++ {
		a, b, c := uint32(r.Uint64()), uint32(r.Uint64()), uint32(r.Uint64())
		if got, want := FmaBits(a, b, c), fmaBitsSlow(a, b, c); got != want {
			t.Fatalf("FmaBits(%#x, %#x, %#x) = %#x, datapath %#x", a, b, c, got, want)
		}
		if got, want := AddBits(a, b), addBitsSlow(a, b); got != want {
			t.Fatalf("AddBits(%#x, %#x) = %#x, datapath %#x", a, b, got, want)
		}
		if got, want := MulBits(a, b), mulBitsSlow(a, b); got != want {
			t.Fatalf("MulBits(%#x, %#x) = %#x, datapath %#x", a, b, got, want)
		}
	}
}
