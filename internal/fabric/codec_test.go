package fabric

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"gpufi/internal/core"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
)

// microUnit is a tiny micro-benchmark campaign for codec and coordinator
// tests; a few dozen faults keep it fast while still producing non-trivial
// syndromes.
func microUnit(seed uint64) core.Unit {
	return core.Unit{
		Kind: core.UnitMicro, Op: isa.OpFADD, Range: faults.RangeMedium,
		Module: faults.ModFP32, Faults: 40, Seed: seed,
	}
}

func runUnit(t *testing.T, u core.Unit, engineWorkers int) *core.UnitResult {
	t.Helper()
	res, err := core.RunUnit(context.Background(), u, engineWorkers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCodecCanonicalAcrossWorkerCounts is the dedup precondition: the
// same unit executed with different engine parallelism must encode to the
// same bytes, because the coordinator byte-compares duplicate completions.
func TestCodecCanonicalAcrossWorkerCounts(t *testing.T) {
	u := microUnit(7)
	a, err := EncodeUnitResult(runUnit(t, u, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeUnitResult(runUnit(t, u, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encodings differ across engine worker counts (%d vs %d bytes)", len(a), len(b))
	}
	// Repeated encoding of the same result is stable too (map ordering
	// must not leak into the wire form).
	res := runUnit(t, u, 2)
	for i := 0; i < 5; i++ {
		c, err := EncodeUnitResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Fatalf("encoding attempt %d differs", i)
		}
	}
}

// TestCodecRoundTripMicro checks decode(encode(x)) preserves everything
// the syndrome DB consumes, including non-finite relative errors that
// rule out JSON as the payload encoding.
func TestCodecRoundTripMicro(t *testing.T) {
	res := runUnit(t, microUnit(7), 1)
	blob, err := EncodeUnitResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUnitResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unit != res.Unit {
		t.Fatalf("unit round-trip: got %+v want %+v", got.Unit, res.Unit)
	}
	want := *res.Micro
	want.Spec.Workers = 0
	want.Spec.Progress = nil
	if !reflect.DeepEqual(*got.Micro, want) {
		t.Fatal("micro result did not survive the round trip")
	}
	// Re-encoding the decoded result reproduces the original bytes: the
	// canonical form is a fixed point.
	blob2, err := EncodeUnitResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded result changed the bytes")
	}
}

// TestCodecRoundTripTMXM covers the map-flattening path: PatternErrs is
// rebuilt from the key-sorted wire form.
func TestCodecRoundTripTMXM(t *testing.T) {
	u := core.Unit{Kind: core.UnitTMXM, Module: faults.ModPipe, Tile: mxm.TileRandom, Faults: 300, Seed: 9}
	res := runUnit(t, u, 1)
	if len(res.TMXM.PatternErrs) == 0 {
		t.Fatal("test campaign produced no pattern errors; the map-flattening path is not exercised")
	}
	blob, err := EncodeUnitResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUnitResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := *res.TMXM
	want.Spec.Workers = 0
	want.Spec.Progress = nil
	if !reflect.DeepEqual(got.TMXM.PatternErrs, want.PatternErrs) {
		t.Fatalf("PatternErrs round-trip: got %v want %v", got.TMXM.PatternErrs, want.PatternErrs)
	}
	if !reflect.DeepEqual(*got.TMXM, want) {
		t.Fatal("t-MxM result did not survive the round trip")
	}
	blob2, err := EncodeUnitResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded t-MxM result changed the bytes")
	}
}
