// Package fabric shards RTL characterisation campaigns across worker
// nodes. A Coordinator owns the campaign plan — the deterministic list of
// seeded core.Unit campaigns a job decomposes into — and hands bounded
// batches of units to registered workers under time-limited leases.
// Workers execute the units with the ordinary rtlfi engines (core.RunUnit)
// and stream the results back; the coordinator re-leases units whose
// lease expires (dead or stalled worker), deduplicates double completions
// by byte-comparing their canonical payload encoding, and delivers
// results to the job runner in plan order so the merged characterisation
// is bit-identical to a single-node run.
//
// The determinism argument is the same one that makes checkpointed jobs
// resumable: every unit's engine seed is fixed at planning time and every
// injection's RNG stream is derived from (seed, injection index), so a
// unit computes the same result on any node, any number of times, with
// any engine worker count. Distribution therefore only changes *where*
// and *when* units run, never what they produce — which is what lets the
// coordinator treat duplicated work as a cheap idempotency problem
// (byte-compare and drop) instead of a consistency problem.
//
// The worker side (RunWorker) talks to the coordinator through the small
// Transport interface. Over the network that is the JSON/HTTP API served
// by Coordinator.Handler (see httpapi.go); in process — gpufi-serve runs
// a local worker loop next to its coordinator so a single node still
// makes progress with zero remote workers — the Coordinator itself is the
// Transport.
package fabric

import (
	"errors"

	"gpufi/internal/core"
)

// Protocol errors shared by the native and HTTP transports.
var (
	// ErrUnknownWorker means the coordinator does not know the caller's
	// worker ID — it restarted, or the worker was garbage-collected after
	// going silent. The worker's recovery is to register again.
	ErrUnknownWorker = errors.New("fabric: unknown worker (re-register)")

	// ErrResultMismatch means a duplicate completion for a unit carried a
	// payload that is not byte-identical to the accepted one — a
	// determinism violation that must never happen with honest workers.
	ErrResultMismatch = errors.New("fabric: duplicate result differs from accepted result")

	// ErrClosed means the coordinator has shut down.
	ErrClosed = errors.New("fabric: coordinator closed")
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human-readable worker label for status displays; it need
	// not be unique (the coordinator assigns the unique worker ID).
	Name string `json:"name"`
}

// RegisterReply carries the worker's identity and the coordinator's lease
// discipline.
type RegisterReply struct {
	WorkerID string `json:"worker_id"`
	// LeaseTimeoutMS is the lease duration in milliseconds; workers must
	// heartbeat well within it or their units are re-leased.
	LeaseTimeoutMS int64 `json:"lease_timeout_ms"`
}

// LeaseRequest asks for up to Max units of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
}

// Task is one leased unit: the job it belongs to, the lease that must
// accompany its completion, and the self-contained campaign description.
type Task struct {
	Job   string    `json:"job"`
	Lease string    `json:"lease"`
	Unit  core.Unit `json:"unit"`
}

// LeaseReply returns the granted tasks; empty means no work is pending
// (or the worker's lease window is full) and the worker should poll again.
type LeaseReply struct {
	Tasks []Task `json:"tasks,omitempty"`
}

// Beat reports liveness and progress for one in-flight unit; a heartbeat
// carrying it also extends the unit's lease.
type Beat struct {
	Job  string `json:"job"`
	Unit string `json:"unit"`
	Done int    `json:"done"` // faults completed so far
}

// HeartbeatRequest renews the worker's leases and reports progress.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	Beats    []Beat `json:"beats,omitempty"`
}

// UnitKey names one unit of one job.
type UnitKey struct {
	Job  string `json:"job"`
	Unit string `json:"unit"`
}

// HeartbeatReply lists the in-flight units the worker should abandon:
// their job was cancelled, or the unit was completed elsewhere after a
// lease expiry.
type HeartbeatReply struct {
	Abort []UnitKey `json:"abort,omitempty"`
}

// CompleteRequest delivers one unit's result (or terminal error).
// Payload is the canonical encoding produced by EncodeUnitResult; JSON
// transports it as base64.
type CompleteRequest struct {
	WorkerID string `json:"worker_id"`
	Lease    string `json:"lease"`
	Job      string `json:"job"`
	Unit     string `json:"unit"`
	Payload  []byte `json:"payload,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Completion outcomes.
const (
	CompleteAccepted = "accepted" // first result for the unit
	CompleteDeduped  = "deduped"  // byte-identical duplicate, dropped
	CompleteDropped  = "dropped"  // unit or job no longer exists (e.g. cancelled)
)

// CompleteReply acknowledges a completion.
type CompleteReply struct {
	Status string `json:"status"`
}

// Transport is the worker's view of a coordinator. *Coordinator
// implements it natively for in-process workers; HTTPTransport implements
// it over the coordinator's HTTP API.
type Transport interface {
	Register(req RegisterRequest) (RegisterReply, error)
	Lease(req LeaseRequest) (LeaseReply, error)
	Heartbeat(req HeartbeatRequest) (HeartbeatReply, error)
	Complete(req CompleteRequest) (CompleteReply, error)
}
