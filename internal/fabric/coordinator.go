package fabric

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpufi/internal/core"
)

// CoordinatorConfig tunes the lease discipline. The zero value is usable.
type CoordinatorConfig struct {
	// LeaseTimeout is how long a leased unit may go without a heartbeat
	// before it is re-leased to another worker. Default 30s.
	LeaseTimeout time.Duration

	// MaxOutstanding bounds each worker's lease window: the number of
	// units it may hold at once. This is the fabric's backpressure knob —
	// a slow worker cannot hoard the tail of a campaign, and a fast one
	// cannot drain the queue faster than it streams results back.
	// Default 4.
	MaxOutstanding int

	// MaxRetries is how many times a unit may fail (worker-reported
	// engine error) before the whole job is failed. Lease expiries do not
	// count — only explicit errors. Default 3.
	MaxRetries int

	// SweepEvery is the lease-expiry sweep cadence; default LeaseTimeout/4.
	SweepEvery time.Duration

	// Logf, when non-nil, receives coordinator diagnostics (re-leases,
	// dedups, determinism violations).
	Logf func(format string, args ...any)

	// now overrides time.Now in tests.
	now func() time.Time
}

func (c *CoordinatorConfig) defaults() {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 30 * time.Second
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 4
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTimeout / 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// unitPhase is the lease state machine of one unit:
//
//	pending ──lease──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──expiry/error────┘  (error beyond MaxRetries fails the unit: done with failure)
type unitPhase uint8

const (
	unitPending unitPhase = iota
	unitLeased
	unitDone
)

// unitState tracks one plan unit through the lease state machine.
type unitState struct {
	unit core.Unit

	phase    unitPhase
	worker   string // leased: holder's worker ID
	lease    string // leased: current lease ID
	deadline time.Time
	done     int // heartbeat progress within the unit (faults completed)
	retries  int

	payload []byte           // done: canonical encoding, the dedup reference
	result  *core.UnitResult // done: decoded once at acceptance
	failure string           // done: terminal error instead of a result
	ready   chan struct{}    // closed when phase becomes done
}

// jobRun is one distributed campaign registered with the coordinator.
type jobRun struct {
	id       string
	units    map[string]*unitState
	order    []string
	progress func(done int)

	reLeased uint64
	deduped  uint64
}

// doneFaults returns the job's completed-fault progress: full unit totals
// for finished units plus heartbeat progress of in-flight ones.
func (jr *jobRun) doneFaults() int {
	done := 0
	for _, u := range jr.units {
		switch u.phase {
		case unitDone:
			done += u.unit.Faults
		case unitLeased:
			if u.done < u.unit.Faults {
				done += u.done
			} else {
				done += u.unit.Faults
			}
		}
	}
	return done
}

// workerState is the registry entry of one worker.
type workerState struct {
	id, name  string
	lastSeen  time.Time
	leased    map[UnitKey]struct{}
	completed uint64
}

// Coordinator owns the distributed campaigns' plans and lease state. It
// implements Transport natively for in-process workers.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	jobs     map[string]*jobRun
	jobOrder []string
	workers  map[string]*workerState
	epoch    int64 // creation time, embedded in worker IDs
	wseq     int
	lseq     int

	closed   chan struct{}
	sweepWG  sync.WaitGroup
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator and starts its lease-expiry sweeper.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg.defaults()
	c := &Coordinator{
		cfg:     cfg,
		jobs:    make(map[string]*jobRun),
		workers: make(map[string]*workerState),
		epoch:   cfg.now().UnixNano(),
		closed:  make(chan struct{}),
	}
	c.sweepWG.Add(1)
	go func() {
		defer c.sweepWG.Done()
		t := time.NewTicker(cfg.SweepEvery)
		defer t.Stop()
		for {
			select {
			case <-c.closed:
				return
			case <-t.C:
				c.mu.Lock()
				c.sweepLocked(c.cfg.now())
				c.mu.Unlock()
			}
		}
	}()
	return c
}

// Close shuts the coordinator down: pending Await calls fail with
// ErrClosed and the sweeper stops. Registered workers discover the
// shutdown through transport errors and keep polling (their results are
// simply dropped until a new coordinator appears).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.closed) })
	c.sweepWG.Wait()
}

// JobHandle is the job runner's side of a distributed campaign.
type JobHandle struct {
	c  *Coordinator
	id string
}

// StartJob registers a campaign's unexecuted units for distribution.
// Units must have unique names. progress, when non-nil, is called with
// the job's total completed-fault count whenever it advances; it must be
// cheap and must not call back into the Coordinator.
func (c *Coordinator) StartJob(id string, units []core.Unit, progress func(done int)) (*JobHandle, error) {
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("fabric: job %s has no units to distribute", id)
	}
	jr := &jobRun{
		id:       id,
		units:    make(map[string]*unitState, len(units)),
		progress: progress,
	}
	for _, u := range units {
		name := u.Name()
		if _, dup := jr.units[name]; dup {
			return nil, fmt.Errorf("fabric: job %s has duplicate unit %s", id, name)
		}
		jr.units[name] = &unitState{unit: u, ready: make(chan struct{})}
		jr.order = append(jr.order, name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.jobs[id]; dup {
		return nil, fmt.Errorf("fabric: job %s is already registered", id)
	}
	c.jobs[id] = jr
	c.jobOrder = append(c.jobOrder, id)
	return &JobHandle{c: c, id: id}, nil
}

// Await blocks until the named unit completes and returns its decoded
// result. It fails when the unit failed terminally, the handle was
// stopped, the coordinator closed, or ctx ended.
func (h *JobHandle) Await(ctx context.Context, unit string) (*core.UnitResult, error) {
	h.c.mu.Lock()
	jr := h.c.jobs[h.id]
	if jr == nil {
		h.c.mu.Unlock()
		return nil, fmt.Errorf("fabric: job %s is not registered", h.id)
	}
	u := jr.units[unit]
	h.c.mu.Unlock()
	if u == nil {
		return nil, fmt.Errorf("fabric: job %s has no unit %s", h.id, unit)
	}
	select {
	case <-u.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.c.closed:
		return nil, ErrClosed
	}
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if u.failure != "" {
		return nil, fmt.Errorf("fabric: unit %s failed on workers after %d attempts: %s", unit, u.retries, u.failure)
	}
	return u.result, nil
}

// Stop deregisters the job. In-flight workers learn through heartbeat
// aborts and completion drops; already-delivered results stay valid.
func (h *JobHandle) Stop() {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if _, ok := h.c.jobs[h.id]; !ok {
		return
	}
	delete(h.c.jobs, h.id)
	order := h.c.jobOrder[:0]
	for _, id := range h.c.jobOrder {
		if id != h.id {
			order = append(order, id)
		}
	}
	h.c.jobOrder = order
	for _, w := range h.c.workers {
		for key := range w.leased {
			if key.Job == h.id {
				delete(w.leased, key)
			}
		}
	}
}

// sweepLocked re-leases expired units and garbage-collects workers that
// have been silent for several lease timeouts. Caller holds c.mu.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, id := range c.jobOrder {
		jr := c.jobs[id]
		for _, name := range jr.order {
			u := jr.units[name]
			if u.phase == unitLeased && now.After(u.deadline) {
				c.cfg.Logf("fabric: lease %s on %s/%s expired (worker %s); re-leasing", u.lease, id, name, u.worker)
				if w := c.workers[u.worker]; w != nil {
					delete(w.leased, UnitKey{Job: id, Unit: name})
				}
				u.phase = unitPending
				u.worker, u.lease = "", ""
				u.done = 0
				jr.reLeased++
			}
		}
	}
	horizon := now.Add(-4 * c.cfg.LeaseTimeout)
	for id, w := range c.workers {
		if len(w.leased) == 0 && w.lastSeen.Before(horizon) {
			delete(c.workers, id)
		}
	}
}

// Register implements Transport.
func (c *Coordinator) Register(req RegisterRequest) (RegisterReply, error) {
	select {
	case <-c.closed:
		return RegisterReply{}, ErrClosed
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wseq++
	w := &workerState{
		// The ID embeds the coordinator's creation time so IDs issued by a
		// previous coordinator incarnation never alias a current worker —
		// stale IDs fail with ErrUnknownWorker and force a re-registration.
		id:       fmt.Sprintf("w-%x-%06d", c.epoch, c.wseq),
		name:     req.Name,
		lastSeen: c.cfg.now(),
		leased:   make(map[UnitKey]struct{}),
	}
	c.workers[w.id] = w
	c.cfg.Logf("fabric: worker %s (%q) registered", w.id, w.name)
	return RegisterReply{WorkerID: w.id, LeaseTimeoutMS: c.cfg.LeaseTimeout.Milliseconds()}, nil
}

// Lease implements Transport: grant up to req.Max pending units, capped
// by the worker's remaining lease window. Jobs are served in registration
// order and units in plan order, so the fabric finishes the oldest
// campaign first.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		return LeaseReply{}, ErrUnknownWorker
	}
	now := c.cfg.now()
	w.lastSeen = now
	c.sweepLocked(now)
	budget := c.cfg.MaxOutstanding - len(w.leased)
	if req.Max < budget {
		budget = req.Max
	}
	var reply LeaseReply
	for _, id := range c.jobOrder {
		jr := c.jobs[id]
		for _, name := range jr.order {
			if budget <= 0 {
				return reply, nil
			}
			u := jr.units[name]
			if u.phase != unitPending {
				continue
			}
			c.lseq++
			u.phase = unitLeased
			u.worker = w.id
			u.lease = fmt.Sprintf("l-%08d", c.lseq)
			u.deadline = now.Add(c.cfg.LeaseTimeout)
			u.done = 0
			w.leased[UnitKey{Job: id, Unit: name}] = struct{}{}
			reply.Tasks = append(reply.Tasks, Task{Job: id, Lease: u.lease, Unit: u.unit})
			budget--
		}
	}
	return reply, nil
}

// Heartbeat implements Transport: extend the caller's leases, record
// progress, and tell it which in-flight units to abandon.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		return HeartbeatReply{}, ErrUnknownWorker
	}
	now := c.cfg.now()
	w.lastSeen = now
	var reply HeartbeatReply
	for _, b := range req.Beats {
		jr := c.jobs[b.Job]
		if jr == nil {
			reply.Abort = append(reply.Abort, UnitKey{Job: b.Job, Unit: b.Unit})
			continue
		}
		u := jr.units[b.Unit]
		if u == nil || u.phase != unitLeased || u.worker != w.id {
			reply.Abort = append(reply.Abort, UnitKey{Job: b.Job, Unit: b.Unit})
			continue
		}
		u.deadline = now.Add(c.cfg.LeaseTimeout)
		if b.Done > u.done {
			u.done = b.Done
			if jr.progress != nil {
				jr.progress(jr.doneFaults())
			}
		}
	}
	return reply, nil
}

// Complete implements Transport: accept, dedup or drop one unit result.
// A result is accepted from any registered worker as long as the unit is
// not done yet — a stale lease only means the unit was also handed to
// someone else, and deterministic seeds make both results interchangeable.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		return CompleteReply{}, ErrUnknownWorker
	}
	now := c.cfg.now()
	w.lastSeen = now
	key := UnitKey{Job: req.Job, Unit: req.Unit}
	delete(w.leased, key)
	jr := c.jobs[req.Job]
	if jr == nil {
		return CompleteReply{Status: CompleteDropped}, nil
	}
	u := jr.units[req.Unit]
	if u == nil {
		return CompleteReply{Status: CompleteDropped}, nil
	}
	if holder := c.workers[u.worker]; u.phase == unitLeased && holder != nil && holder != w {
		// The unit was re-leased elsewhere; this completion supersedes it.
		delete(holder.leased, key)
	}

	if u.phase == unitDone {
		if u.failure != "" {
			return CompleteReply{Status: CompleteDropped}, nil
		}
		if req.Error != "" {
			return CompleteReply{Status: CompleteDropped}, nil
		}
		if !bytes.Equal(req.Payload, u.payload) {
			c.cfg.Logf("fabric: DETERMINISM VIOLATION: %s/%s: duplicate result from %s differs from accepted payload (%d vs %d bytes)",
				req.Job, req.Unit, w.id, len(req.Payload), len(u.payload))
			return CompleteReply{}, ErrResultMismatch
		}
		jr.deduped++
		c.cfg.Logf("fabric: deduped byte-identical duplicate of %s/%s from %s", req.Job, req.Unit, w.id)
		return CompleteReply{Status: CompleteDeduped}, nil
	}

	if req.Error != "" {
		u.retries++
		if u.retries < c.cfg.MaxRetries {
			c.cfg.Logf("fabric: unit %s/%s failed on %s (attempt %d/%d): %s; re-leasing",
				req.Job, req.Unit, w.id, u.retries, c.cfg.MaxRetries, req.Error)
			u.phase = unitPending
			u.worker, u.lease = "", ""
			u.done = 0
			return CompleteReply{Status: CompleteAccepted}, nil
		}
		u.phase = unitDone
		u.failure = req.Error
		close(u.ready)
		return CompleteReply{Status: CompleteAccepted}, nil
	}

	res, err := DecodeUnitResult(req.Payload)
	if err != nil {
		return CompleteReply{}, err
	}
	if got := res.Unit.Name(); got != req.Unit {
		return CompleteReply{}, fmt.Errorf("fabric: completion for %s carries result of %s", req.Unit, got)
	}
	u.phase = unitDone
	u.worker, u.lease = "", ""
	u.payload = req.Payload
	u.result = res
	u.done = u.unit.Faults
	w.completed++
	close(u.ready)
	if jr.progress != nil {
		jr.progress(jr.doneFaults())
	}
	return CompleteReply{Status: CompleteAccepted}, nil
}

// WorkerStatus is the status view of one registered worker.
type WorkerStatus struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Live      bool   `json:"live"` // heartbeated within two lease timeouts
	Leased    int    `json:"leased"`
	Completed uint64 `json:"completed"`
	LastSeenMS int64 `json:"last_seen_ms"` // milliseconds since last contact
}

// LeaseStatus is the status view of one in-flight lease.
type LeaseStatus struct {
	Unit      string `json:"unit"`
	Worker    string `json:"worker"`
	Done      int    `json:"done"`
	ExpiresMS int64  `json:"expires_ms"` // milliseconds until expiry
}

// JobStatus is the status view of one distributed campaign.
type JobStatus struct {
	Job          string        `json:"job"`
	UnitsPending int           `json:"units_pending"`
	UnitsLeased  int           `json:"units_leased"`
	UnitsDone    int           `json:"units_done"`
	ReLeased     uint64        `json:"re_leased"`
	Deduped      uint64        `json:"deduped"`
	Leases       []LeaseStatus `json:"leases,omitempty"`
}

// Status is the coordinator-wide status view.
type Status struct {
	Workers []WorkerStatus `json:"workers"`
	Jobs    []JobStatus    `json:"jobs"`
}

// Status snapshots the fabric: every worker and every registered job's
// lease state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	st := Status{Workers: []WorkerStatus{}, Jobs: []JobStatus{}}
	var wids []string
	for id := range c.workers {
		wids = append(wids, id)
	}
	sort.Strings(wids)
	for _, id := range wids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Live:       now.Sub(w.lastSeen) <= 2*c.cfg.LeaseTimeout,
			Leased:     len(w.leased),
			Completed:  w.completed,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	for _, id := range c.jobOrder {
		st.Jobs = append(st.Jobs, c.jobStatusLocked(c.jobs[id], now))
	}
	return st
}

// JobStatus returns one registered job's lease state, or ok=false when
// the job is not distributed right now.
func (c *Coordinator) JobStatus(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	jr, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.jobStatusLocked(jr, c.cfg.now()), true
}

func (c *Coordinator) jobStatusLocked(jr *jobRun, now time.Time) JobStatus {
	js := JobStatus{Job: jr.id, ReLeased: jr.reLeased, Deduped: jr.deduped}
	for _, name := range jr.order {
		u := jr.units[name]
		switch u.phase {
		case unitPending:
			js.UnitsPending++
		case unitLeased:
			js.UnitsLeased++
			js.Leases = append(js.Leases, LeaseStatus{
				Unit:      name,
				Worker:    u.worker,
				Done:      u.done,
				ExpiresMS: u.deadline.Sub(now).Milliseconds(),
			})
		case unitDone:
			js.UnitsDone++
		}
	}
	return js
}
