package fabric

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpufi/internal/core"
)

// fastCoordinator uses a lease discipline short enough to observe expiry
// and re-leasing within a test.
func fastCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTimeout: 40 * time.Millisecond,
		SweepEvery:   5 * time.Millisecond,
		Logf:         t.Logf,
	})
	t.Cleanup(c.Close)
	return c
}

func register(t *testing.T, tr Transport, name string) string {
	t.Helper()
	reply, err := tr.Register(RegisterRequest{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return reply.WorkerID
}

func leaseOne(t *testing.T, tr Transport, worker string) Task {
	t.Helper()
	reply, err := tr.Lease(LeaseRequest{WorkerID: worker, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(reply.Tasks))
	}
	return reply.Tasks[0]
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLeaseExpiryReLeasesWithoutLeaks: a worker that leases a unit and
// goes silent loses it to the sweeper; the unit returns to the pending
// pool, the dead worker's lease accounting is cleared (no leaked lease
// blocking its window), and another worker can finish the job.
func TestLeaseExpiryReLeasesWithoutLeaks(t *testing.T) {
	c := fastCoordinator(t)
	u := microUnit(3)
	h, err := c.StartJob("j-1", []core.Unit{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	dead := register(t, c, "dead")
	task := leaseOne(t, c, dead)
	if task.Unit != u {
		t.Fatalf("leased unit %+v, want %+v", task.Unit, u)
	}

	// The dead worker never heartbeats; the sweeper must reclaim the unit.
	waitCond(t, 2*time.Second, "lease expiry", func() bool {
		js, ok := c.JobStatus("j-1")
		return ok && js.UnitsPending == 1 && js.ReLeased >= 1
	})
	st := c.Status()
	for _, w := range st.Workers {
		if w.ID == dead && w.Leased != 0 {
			t.Fatalf("expired lease leaked: dead worker still accounts %d leases", w.Leased)
		}
	}

	// A live worker picks the unit up and completes it.
	live := register(t, c, "live")
	task2 := leaseOne(t, c, live)
	if task2.Lease == task.Lease {
		t.Fatal("re-lease reused the expired lease ID")
	}
	payload, err := EncodeUnitResult(runUnit(t, task2.Unit, 1))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Complete(CompleteRequest{WorkerID: live, Lease: task2.Lease, Job: task2.Job, Unit: task2.Unit.Name(), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != CompleteAccepted {
		t.Fatalf("completion status %q, want accepted", reply.Status)
	}
	res, err := h.Await(context.Background(), u.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Micro == nil || res.Unit != u {
		t.Fatalf("await returned %+v", res)
	}
}

// TestDoubleCompletionDedup: when a slow worker delivers a result for a
// unit that was re-leased and already completed elsewhere, the duplicate
// is byte-compared and deduped; a differing duplicate is a determinism
// violation and is rejected.
func TestDoubleCompletionDedup(t *testing.T) {
	c := fastCoordinator(t)
	u := microUnit(5)
	h, err := c.StartJob("j-1", []core.Unit{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	slow := register(t, c, "slow")
	taskSlow := leaseOne(t, c, slow)
	waitCond(t, 2*time.Second, "re-lease after expiry", func() bool {
		js, ok := c.JobStatus("j-1")
		return ok && js.UnitsPending == 1
	})
	fast := register(t, c, "fast")
	taskFast := leaseOne(t, c, fast)

	payload, err := EncodeUnitResult(runUnit(t, u, 1))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Complete(CompleteRequest{WorkerID: fast, Lease: taskFast.Lease, Job: "j-1", Unit: u.Name(), Payload: payload})
	if err != nil || reply.Status != CompleteAccepted {
		t.Fatalf("first completion: %v %q", err, reply.Status)
	}

	// The slow worker turns up late with the identical payload: deduped.
	reply, err = c.Complete(CompleteRequest{WorkerID: slow, Lease: taskSlow.Lease, Job: "j-1", Unit: u.Name(), Payload: bytes.Clone(payload)})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != CompleteDeduped {
		t.Fatalf("duplicate completion status %q, want deduped", reply.Status)
	}
	js, _ := c.JobStatus("j-1")
	if js.Deduped != 1 || js.UnitsDone != 1 {
		t.Fatalf("job status after dedup: %+v", js)
	}

	// A differing duplicate must be rejected loudly, not merged.
	bad := bytes.Clone(payload)
	bad[len(bad)-1] ^= 0xFF
	_, err = c.Complete(CompleteRequest{WorkerID: slow, Lease: taskSlow.Lease, Job: "j-1", Unit: u.Name(), Payload: bad})
	if !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("mismatching duplicate: err = %v, want ErrResultMismatch", err)
	}
}

// TestWorkerErrorRetriesThenFails: engine errors re-lease the unit up to
// MaxRetries, then fail it terminally; Await surfaces the failure.
func TestWorkerErrorRetriesThenFails(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{
		LeaseTimeout: time.Minute, // no expiry interference
		MaxRetries:   2,
		Logf:         t.Logf,
	})
	t.Cleanup(c.Close)
	u := microUnit(1)
	h, err := c.StartJob("j-1", []core.Unit{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	w := register(t, c, "w")

	task := leaseOne(t, c, w)
	reply, err := c.Complete(CompleteRequest{WorkerID: w, Lease: task.Lease, Job: "j-1", Unit: u.Name(), Error: "engine exploded"})
	if err != nil || reply.Status != CompleteAccepted {
		t.Fatalf("first error report: %v %q", err, reply.Status)
	}
	// The unit is pending again and can be re-leased immediately.
	task = leaseOne(t, c, w)
	reply, err = c.Complete(CompleteRequest{WorkerID: w, Lease: task.Lease, Job: "j-1", Unit: u.Name(), Error: "engine exploded again"})
	if err != nil || reply.Status != CompleteAccepted {
		t.Fatalf("second error report: %v %q", err, reply.Status)
	}
	_, err = h.Await(context.Background(), u.Name())
	if err == nil || !strings.Contains(err.Error(), "engine exploded again") {
		t.Fatalf("await after terminal failure: %v", err)
	}
}

// TestHeartbeatExtendsLeaseAndAbortsStale: heartbeats keep a lease alive
// past its timeout and tell the worker to abandon units it no longer holds.
func TestHeartbeatExtendsLeaseAndAbortsStale(t *testing.T) {
	c := fastCoordinator(t)
	u := microUnit(2)
	h, err := c.StartJob("j-1", []core.Unit{u}, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	w := register(t, c, "w")
	task := leaseOne(t, c, w)

	// Heartbeat for 4 lease timeouts; the unit must stay leased to us.
	for i := 0; i < 16; i++ {
		reply, err := c.Heartbeat(HeartbeatRequest{WorkerID: w, Beats: []Beat{{Job: "j-1", Unit: u.Name(), Done: i}}})
		if err != nil {
			t.Fatal(err)
		}
		if len(reply.Abort) != 0 {
			t.Fatalf("live lease aborted: %+v", reply.Abort)
		}
		time.Sleep(10 * time.Millisecond)
	}
	js, _ := c.JobStatus("j-1")
	if js.UnitsLeased != 1 || js.ReLeased != 0 {
		t.Fatalf("heartbeated lease expired anyway: %+v", js)
	}
	if len(js.Leases) != 1 || js.Leases[0].Done == 0 {
		t.Fatalf("heartbeat progress not visible in status: %+v", js.Leases)
	}

	// A beat for a unit we do not hold (other worker's lease, vanished
	// job) is answered with an abort directive.
	reply, err := c.Heartbeat(HeartbeatRequest{WorkerID: w, Beats: []Beat{{Job: "nope", Unit: "micro/x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Abort) != 1 || reply.Abort[0].Job != "nope" {
		t.Fatalf("stale beat not aborted: %+v", reply.Abort)
	}
	_ = task
}

// TestHTTPTransportErrorMapping: sentinel errors survive the HTTP
// round-trip so workers can react to them (re-register on unknown worker).
func TestHTTPTransportErrorMapping(t *testing.T) {
	c := fastCoordinator(t)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	tr := NewHTTPTransport(srv.URL)

	if _, err := tr.Lease(LeaseRequest{WorkerID: "w-bogus", Max: 1}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("lease with bogus worker over HTTP: %v, want ErrUnknownWorker", err)
	}
	id := register(t, tr, "remote")
	if id == "" {
		t.Fatal("empty worker ID over HTTP")
	}
	reply, err := tr.Lease(LeaseRequest{WorkerID: id, Max: 1})
	if err != nil || len(reply.Tasks) != 0 {
		t.Fatalf("lease with no jobs: %v %+v", err, reply)
	}
	if _, err := tr.Heartbeat(HeartbeatRequest{WorkerID: id}); err != nil {
		t.Fatalf("heartbeat over HTTP: %v", err)
	}
}
