package fabric

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gpufi/internal/core"
)

// WorkerConfig tunes a worker loop. The zero value is usable.
type WorkerConfig struct {
	// Name labels the worker in coordinator status displays.
	Name string

	// EngineWorkers is the per-unit campaign engine parallelism handed to
	// core.RunUnit; default 1. Results are bit-identical for any value.
	EngineWorkers int

	// Parallel is how many units the worker executes at once; default 1.
	Parallel int

	// Poll is the idle backoff between lease requests when the
	// coordinator has no work (or is unreachable); default 500ms.
	Poll time.Duration

	// Logf, when non-nil, receives worker diagnostics.
	Logf func(format string, args ...any)
}

func (c *WorkerConfig) defaults() {
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// inflight is one unit being executed by the worker.
type inflight struct {
	task   Task
	done   atomic.Int64 // faults completed, fed by the engine progress callback
	cancel context.CancelFunc
}

// RunWorker registers with the coordinator behind tr, then leases,
// executes and completes units until ctx ends. It survives coordinator
// restarts: any call failing with ErrUnknownWorker triggers a fresh
// registration, and results whose unit was re-leased or whose job
// vanished are simply dropped (the deterministic seeds make re-execution
// produce identical results, so dropped work is waste, never corruption).
// RunWorker only returns ctx.Err() — transport failures are retried
// forever, because a worker outliving a coordinator restart is the whole
// point.
func RunWorker(ctx context.Context, tr Transport, cfg WorkerConfig) error {
	cfg.defaults()
	w := &worker{tr: tr, cfg: cfg, inflight: make(map[UnitKey]*inflight)}
	if err := w.register(ctx); err != nil {
		return err
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHB()
		hbWG.Wait()
	}()

	slots := make(chan struct{}, cfg.Parallel)
	for i := 0; i < cfg.Parallel; i++ {
		slots <- struct{}{}
	}
	var unitWG sync.WaitGroup
	defer unitWG.Wait()

	for {
		if err := sleepCtx(ctx, 0); err != nil {
			return err
		}
		// Wait for at least one free slot before asking for work.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-slots:
		}
		free := 1
	drain:
		for {
			select {
			case <-slots:
				free++
			default:
				break drain
			}
		}

		reply, err := call(ctx, w, func(id string) (LeaseReply, error) {
			return tr.Lease(LeaseRequest{WorkerID: id, Max: free})
		})
		if err != nil && ctx.Err() != nil {
			for i := 0; i < free; i++ {
				slots <- struct{}{}
			}
			return ctx.Err()
		}
		if err != nil {
			cfg.Logf("fabric worker: lease: %v", err)
		}
		granted := len(reply.Tasks)
		for _, task := range reply.Tasks {
			task := task
			unitWG.Add(1)
			go func() {
				defer unitWG.Done()
				defer func() { slots <- struct{}{} }()
				w.runTask(ctx, task)
			}()
		}
		// Return the slots we drained but did not fill.
		for i := granted; i < free; i++ {
			slots <- struct{}{}
		}
		if granted == 0 {
			if err := sleepCtx(ctx, cfg.Poll); err != nil {
				return err
			}
		}
	}
}

// worker is the shared state of one RunWorker invocation.
type worker struct {
	tr  Transport
	cfg WorkerConfig

	mu       sync.Mutex
	id       string
	hbEvery  time.Duration
	inflight map[UnitKey]*inflight
}

// register obtains a (new) worker identity, retrying until ctx ends.
func (w *worker) register(ctx context.Context) error {
	for {
		reply, err := w.tr.Register(RegisterRequest{Name: w.cfg.Name})
		if err == nil {
			// Heartbeat at a third of the coordinator's lease timeout,
			// bounded to something sane.
			every := time.Duration(reply.LeaseTimeoutMS) * time.Millisecond / 3
			if every < 10*time.Millisecond {
				every = 10 * time.Millisecond
			}
			if every > 5*time.Second {
				every = 5 * time.Second
			}
			w.mu.Lock()
			w.id = reply.WorkerID
			w.hbEvery = every
			w.mu.Unlock()
			w.cfg.Logf("fabric worker: registered as %s (lease timeout %dms)", reply.WorkerID, reply.LeaseTimeoutMS)
			return nil
		}
		w.cfg.Logf("fabric worker: register: %v (retrying)", err)
		if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
			return err
		}
	}
}

// call runs fn with the current worker ID, re-registering once when the
// coordinator no longer knows it (restart or garbage collection).
func call[T any](ctx context.Context, w *worker, fn func(id string) (T, error)) (T, error) {
	w.mu.Lock()
	id := w.id
	w.mu.Unlock()
	out, err := fn(id)
	if !errors.Is(err, ErrUnknownWorker) {
		return out, err
	}
	w.cfg.Logf("fabric worker: coordinator forgot %s; re-registering", id)
	if rerr := w.register(ctx); rerr != nil {
		return out, rerr
	}
	w.mu.Lock()
	id = w.id
	w.mu.Unlock()
	return fn(id)
}

// runTask executes one leased unit and reports its outcome.
func (w *worker) runTask(ctx context.Context, task Task) {
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fl := &inflight{task: task, cancel: cancel}
	key := UnitKey{Job: task.Job, Unit: task.Unit.Name()}
	w.mu.Lock()
	w.inflight[key] = fl
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.inflight, key)
		w.mu.Unlock()
	}()

	res, err := core.RunUnit(unitCtx, task.Unit, w.cfg.EngineWorkers, func(done, _ int) {
		for {
			cur := fl.done.Load()
			if int64(done) <= cur || fl.done.CompareAndSwap(cur, int64(done)) {
				return
			}
		}
	})
	if unitCtx.Err() != nil {
		// Aborted (job cancelled / unit re-leased) or the worker is
		// shutting down; the lease will expire on its own.
		return
	}
	req := CompleteRequest{Lease: task.Lease, Job: task.Job, Unit: key.Unit}
	if err != nil {
		req.Error = err.Error()
	} else {
		payload, perr := EncodeUnitResult(res)
		if perr != nil {
			req.Error = perr.Error()
		} else {
			req.Payload = payload
		}
	}
	reply, err := call(ctx, w, func(id string) (CompleteReply, error) {
		req.WorkerID = id
		return w.tr.Complete(req)
	})
	switch {
	case err != nil:
		// Dropped on the floor; the coordinator re-leases after expiry
		// and the deterministic re-run produces the same result.
		w.cfg.Logf("fabric worker: complete %s/%s: %v (result dropped)", key.Job, key.Unit, err)
	case reply.Status == CompleteDeduped:
		w.cfg.Logf("fabric worker: %s/%s was already completed elsewhere (deduped)", key.Job, key.Unit)
	case reply.Status == CompleteDropped:
		w.cfg.Logf("fabric worker: %s/%s no longer wanted (dropped)", key.Job, key.Unit)
	}
}

// heartbeatLoop renews leases and reports in-flight progress at a third
// of the coordinator's lease timeout (set by register).
func (w *worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	every := w.hbEvery
	w.mu.Unlock()
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		beats := make([]Beat, 0, len(w.inflight))
		flights := make(map[UnitKey]*inflight, len(w.inflight))
		for key, fl := range w.inflight {
			beats = append(beats, Beat{Job: key.Job, Unit: key.Unit, Done: int(fl.done.Load())})
			flights[key] = fl
		}
		w.mu.Unlock()
		// Send even when beats is empty: an idle worker's heartbeat is what
		// keeps its registration alive. Skipping it leaves lastSeen to the
		// Lease poll alone, and a worker with a long poll interval drifts
		// past the coordinator's silence horizon, gets garbage-collected,
		// and flaps through re-registration.
		reply, err := call(ctx, w, func(id string) (HeartbeatReply, error) {
			return w.tr.Heartbeat(HeartbeatRequest{WorkerID: id, Beats: beats})
		})
		if err != nil {
			if ctx.Err() == nil {
				w.cfg.Logf("fabric worker: heartbeat: %v", err)
			}
			continue
		}
		for _, key := range reply.Abort {
			if fl := flights[key]; fl != nil {
				w.cfg.Logf("fabric worker: aborting %s/%s on coordinator request", key.Job, key.Unit)
				fl.cancel()
			}
		}
	}
}

// sleepCtx sleeps for d (or not at all when d <= 0) unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
