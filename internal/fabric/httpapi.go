package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler returns the coordinator's HTTP API, meant to be mounted under
// /fabric/ by gpufi-serve:
//
//	POST /fabric/v1/register   RegisterRequest  -> RegisterReply
//	POST /fabric/v1/lease      LeaseRequest     -> LeaseReply
//	POST /fabric/v1/heartbeat  HeartbeatRequest -> HeartbeatReply
//	POST /fabric/v1/complete   CompleteRequest  -> CompleteReply
//	GET  /fabric/v1/status                      -> Status
//
// Error mapping: unknown worker -> 404 (the worker re-registers),
// duplicate-result mismatch -> 409, coordinator closed -> 503, anything
// else -> 400. All errors carry a JSON {"error": ...} body.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", handleRPC(c.Register))
	mux.HandleFunc("POST /fabric/v1/lease", handleRPC(c.Lease))
	mux.HandleFunc("POST /fabric/v1/heartbeat", handleRPC(c.Heartbeat))
	mux.HandleFunc("POST /fabric/v1/complete", handleRPC(c.Complete))
	mux.HandleFunc("GET /fabric/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeFabricJSON(w, http.StatusOK, c.Status())
	})
	return mux
}

// fabricError is the JSON error envelope of every non-2xx response.
type fabricError struct {
	Error string `json:"error"`
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleRPC adapts one Transport method to an HTTP POST endpoint.
func handleRPC[Req, Reply any](fn func(Req) (Reply, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFabricJSON(w, http.StatusBadRequest, fabricError{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
		reply, err := fn(req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrUnknownWorker):
				code = http.StatusNotFound
			case errors.Is(err, ErrResultMismatch):
				code = http.StatusConflict
			case errors.Is(err, ErrClosed):
				code = http.StatusServiceUnavailable
			}
			writeFabricJSON(w, code, fabricError{Error: err.Error()})
			return
		}
		writeFabricJSON(w, http.StatusOK, reply)
	}
}

// HTTPTransport implements Transport against a remote coordinator's
// HTTP API.
type HTTPTransport struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string

	// Client overrides http.DefaultClient (mainly for timeouts).
	Client *http.Client
}

// NewHTTPTransport builds a transport with a sane default client: no
// overall request timeout (lease polls are cheap, completes can carry
// megabytes on slow links) but a bounded dial/response-header wait via
// the default transport.
func NewHTTPTransport(base string) *HTTPTransport {
	return &HTTPTransport{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Timeout: 5 * time.Minute},
	}
}

func (t *HTTPTransport) post(path string, req, reply any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(strings.TrimRight(t.Base, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var fe fabricError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		_ = json.Unmarshal(blob, &fe)
		switch resp.StatusCode {
		case http.StatusNotFound:
			return fmt.Errorf("%w (%s)", ErrUnknownWorker, strings.TrimSpace(fe.Error))
		case http.StatusConflict:
			return fmt.Errorf("%w (%s)", ErrResultMismatch, strings.TrimSpace(fe.Error))
		case http.StatusServiceUnavailable:
			return fmt.Errorf("%w (%s)", ErrClosed, strings.TrimSpace(fe.Error))
		default:
			return fmt.Errorf("fabric: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(fe.Error))
		}
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// Register implements Transport.
func (t *HTTPTransport) Register(req RegisterRequest) (RegisterReply, error) {
	var reply RegisterReply
	err := t.post("/fabric/v1/register", req, &reply)
	return reply, err
}

// Lease implements Transport.
func (t *HTTPTransport) Lease(req LeaseRequest) (LeaseReply, error) {
	var reply LeaseReply
	err := t.post("/fabric/v1/lease", req, &reply)
	return reply, err
}

// Heartbeat implements Transport.
func (t *HTTPTransport) Heartbeat(req HeartbeatRequest) (HeartbeatReply, error) {
	var reply HeartbeatReply
	err := t.post("/fabric/v1/heartbeat", req, &reply)
	return reply, err
}

// Complete implements Transport.
func (t *HTTPTransport) Complete(req CompleteRequest) (CompleteReply, error) {
	var reply CompleteReply
	err := t.post("/fabric/v1/complete", req, &reply)
	return reply, err
}
