package fabric

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"gpufi/internal/core"
	"gpufi/internal/faults"
	"gpufi/internal/rtlfi"
)

// The wire encoding of a unit result must be canonical: the coordinator
// deduplicates double completions (stale leases, racing workers) by byte
// comparison, so two encodings of the same result must be identical no
// matter which worker produced them. gob gives that almost for free — it
// writes struct fields in declaration order and skips func fields such as
// Spec.Progress — with two exceptions handled here:
//
//   - TMXMResult.PatternErrs is a map, and gob serialises map entries in
//     random order; the wire form flattens it into key-sorted slices.
//   - Spec.Workers records the executing engine's worker count, which is
//     the one field allowed to differ between nodes (results are
//     bit-identical for any worker count); it is normalised to zero.
//
// Syndrome relative errors can be +Inf (fp32.RelErr reports NaN/Inf
// corruption that way), which rules JSON out as the payload encoding;
// gob round-trips non-finite floats exactly.

// unitPayload is the gob wire form of one executed core.UnitResult.
type unitPayload struct {
	Unit  core.Unit
	Micro *rtlfi.Result
	TMXM  *tmxmWire
}

// tmxmWire mirrors rtlfi.TMXMResult with PatternErrs flattened into
// parallel key-sorted slices.
type tmxmWire struct {
	Spec         rtlfi.TMXMSpec
	Tally        faults.Tally
	Patterns     [faults.NumPatterns]int
	PatternKeys  []faults.Pattern
	PatternErrs  [][]float64
	GoldenCycles uint64

	SimCycles       uint64
	SkippedCycles   uint64
	PrunedFaults    uint64
	CollapsedFaults uint64
}

// EncodeUnitResult canonically serialises an executed unit for the wire
// and for duplicate detection.
func EncodeUnitResult(res *core.UnitResult) ([]byte, error) {
	p := unitPayload{Unit: res.Unit}
	switch {
	case res.Micro != nil:
		micro := *res.Micro
		micro.Spec.Workers = 0
		micro.Spec.Progress = nil
		p.Micro = &micro
	case res.TMXM != nil:
		r := res.TMXM
		w := &tmxmWire{
			Spec:            r.Spec,
			Tally:           r.Tally,
			Patterns:        r.Patterns,
			GoldenCycles:    r.GoldenCycles,
			SimCycles:       r.SimCycles,
			SkippedCycles:   r.SkippedCycles,
			PrunedFaults:    r.PrunedFaults,
			CollapsedFaults: r.CollapsedFaults,
		}
		w.Spec.Workers = 0
		w.Spec.Progress = nil
		for pat := range r.PatternErrs {
			w.PatternKeys = append(w.PatternKeys, pat)
		}
		sort.Slice(w.PatternKeys, func(i, j int) bool { return w.PatternKeys[i] < w.PatternKeys[j] })
		for _, pat := range w.PatternKeys {
			w.PatternErrs = append(w.PatternErrs, r.PatternErrs[pat])
		}
		p.TMXM = w
	default:
		return nil, fmt.Errorf("fabric: unit result %s carries neither micro nor t-MxM result", res.Unit.Name())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("fabric: encode unit result %s: %w", res.Unit.Name(), err)
	}
	return buf.Bytes(), nil
}

// DecodeUnitResult inverts EncodeUnitResult.
func DecodeUnitResult(blob []byte) (*core.UnitResult, error) {
	var p unitPayload
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&p); err != nil {
		return nil, fmt.Errorf("fabric: decode unit result: %w", err)
	}
	res := &core.UnitResult{Unit: p.Unit}
	switch {
	case p.Micro != nil:
		res.Micro = p.Micro
	case p.TMXM != nil:
		w := p.TMXM
		if len(w.PatternKeys) != len(w.PatternErrs) {
			return nil, fmt.Errorf("fabric: unit result %s: %d pattern keys vs %d error pools", p.Unit.Name(), len(w.PatternKeys), len(w.PatternErrs))
		}
		r := &rtlfi.TMXMResult{
			Spec:            w.Spec,
			Tally:           w.Tally,
			Patterns:        w.Patterns,
			GoldenCycles:    w.GoldenCycles,
			SimCycles:       w.SimCycles,
			SkippedCycles:   w.SkippedCycles,
			PrunedFaults:    w.PrunedFaults,
			CollapsedFaults: w.CollapsedFaults,
		}
		if len(w.PatternKeys) > 0 {
			r.PatternErrs = make(map[faults.Pattern][]float64, len(w.PatternKeys))
			for i, pat := range w.PatternKeys {
				r.PatternErrs[pat] = w.PatternErrs[i]
			}
		}
		res.TMXM = r
	default:
		return nil, fmt.Errorf("fabric: unit result %s carries neither micro nor t-MxM result", p.Unit.Name())
	}
	return res, nil
}
