package fabric

import (
	"context"
	"testing"
	"time"
)

// TestIdleWorkerSurvivesSweeper: a worker with nothing to do must keep
// heartbeating so the coordinator's silence sweeper never garbage-collects
// it. The worker polls for leases only every 2s here — far beyond the 4×
// lease-timeout silence horizon (160ms) — so the empty heartbeat is the
// only thing keeping it registered. A regression to the old behaviour
// (skip Heartbeat when no units are in flight) makes the worker vanish
// from Status and flap through re-registration.
func TestIdleWorkerSurvivesSweeper(t *testing.T) {
	c := fastCoordinator(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = RunWorker(ctx, c, WorkerConfig{
			Name: "idle",
			Poll: 2 * time.Second,
			Logf: t.Logf,
		})
	}()
	defer func() { cancel(); <-done }()

	// Wait for registration, remember the identity.
	var id string
	waitCond(t, 2*time.Second, "worker registration", func() bool {
		st := c.Status()
		if len(st.Workers) != 1 {
			return false
		}
		id = st.Workers[0].ID
		return true
	})

	// Sit well past the sweeper's silence horizon (4 × 40ms lease timeout)
	// with no work registered. The idle worker must stay present, live,
	// and keep its original identity the whole time.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := c.Status()
		if len(st.Workers) != 1 {
			t.Fatalf("idle worker was swept: %d workers registered", len(st.Workers))
		}
		if st.Workers[0].ID != id {
			t.Fatalf("idle worker flapped: identity changed %s -> %s", id, st.Workers[0].ID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.Status(); !st.Workers[0].Live {
		t.Fatal("idle worker is not live after sitting past the silence horizon")
	}
}
