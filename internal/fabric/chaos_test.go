// Chaos tests for the distributed campaign fabric: workers are killed,
// restarted and sabotaged mid-campaign, the coordinator is restarted
// under live workers, and the merged result must still be byte-identical
// to a single-node run with no lost or duplicated unit results.
//
// This lives in an external test package because it drives the fabric
// through internal/jobs (which imports internal/fabric).
package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpufi/internal/fabric"
	"gpufi/internal/jobs"
)

// charRequest is the characterisation campaign under test: a handful of
// units, each a few hundred faults, so kills and lease expiries land
// mid-campaign without the test taking minutes.
func charRequest() jobs.Request {
	return jobs.Request{
		Kind: jobs.KindCharacterize, Seed: 5,
		Ops: []string{"FADD", "FMUL"}, Ranges: []string{"M"},
		Faults: 300, SkipTMXM: true,
	}
}

func waitJob(t *testing.T, s *jobs.Service, id, what string) jobs.Status {
	t.Helper()
	var st jobs.Status
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, _ = s.Get(id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (job %s stuck in %s at %d/%d)", what, id, st.State, st.Done, st.Total)
	return st
}

// singleNodeResult runs the request without any fabric and returns the
// reference result bytes.
func singleNodeResult(t *testing.T, req jobs.Request) []byte {
	t.Helper()
	s, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, s, st.ID, "single-node reference")
	if st.State != jobs.StateDone {
		t.Fatalf("reference job ended %s (error %q)", st.State, st.Error)
	}
	return st.Result
}

// checkUnitSet asserts the result contains every planned unit exactly
// once — no lost and no duplicated CharUnitResults.
func checkUnitSet(t *testing.T, result []byte) {
	t.Helper()
	var res jobs.Result
	if err := json.Unmarshal(result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Units) == 0 {
		t.Fatal("result carries no units")
	}
	seen := make(map[string]int)
	for _, raw := range res.Units {
		var cu jobs.CharUnitResult
		if err := json.Unmarshal(raw, &cu); err != nil {
			t.Fatal(err)
		}
		seen[cu.Unit]++
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("unit %s appears %d times in the merged result", name, n)
		}
	}
	if len(seen) != len(res.Units) {
		t.Errorf("%d distinct units in %d result rows", len(seen), len(res.Units))
	}
}

// blackholeComplete wraps a Transport and makes every Complete call fail,
// simulating a worker whose network dies exactly when it delivers
// results: it burns leases that can only be recovered by expiry.
type blackholeComplete struct {
	fabric.Transport
}

func (b blackholeComplete) Complete(fabric.CompleteRequest) (fabric.CompleteReply, error) {
	return fabric.CompleteReply{}, errors.New("simulated network failure")
}

// TestChaosDistributedBitIdentical is the acceptance test: a 3-worker
// distributed campaign with workers killed, sabotaged and restarted
// mid-run produces a merged result byte-identical to the single-node run,
// with every orphaned unit re-leased and no unit lost or duplicated.
func TestChaosDistributedBitIdentical(t *testing.T) {
	req := charRequest()
	want := singleNodeResult(t, req)

	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		LeaseTimeout: 250 * time.Millisecond,
		SweepEvery:   20 * time.Millisecond,
		Logf:         t.Logf,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	svc, err := jobs.New(jobs.Config{Workers: 1, Fabric: coord, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	startWorker := func(ctx context.Context, name string, tr fabric.Transport) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fabric.RunWorker(ctx, tr, fabric.WorkerConfig{
				Name: name, Poll: 10 * time.Millisecond, Logf: t.Logf,
			})
		}()
	}
	ctx, cancelAll := context.WithCancel(context.Background())
	defer func() {
		cancelAll()
		wg.Wait()
	}()

	// Worker 1 is sabotaged: it executes units but every result delivery
	// fails, so its leases are orphaned and must be recovered by expiry.
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	startWorker(victimCtx, "victim", blackholeComplete{fabric.NewHTTPTransport(srv.URL)})

	// Worker 2 is killed abruptly as soon as it holds a lease.
	w2Ctx, killW2 := context.WithCancel(ctx)
	defer killW2()
	startWorker(w2Ctx, "w2", fabric.NewHTTPTransport(srv.URL))

	// Kill w2 once the coordinator shows it holding work.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		leased := 0
		for _, w := range coord.Status().Workers {
			if w.Name == "w2" {
				leased = w.Leased
			}
		}
		if leased > 0 {
			break
		}
		if fst, _ := svc.Get(st.ID); fst.State.Terminal() {
			t.Fatal("job finished before any chaos could be injected; make the campaign larger")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killW2()

	// Kill the sabotaged worker once at least one of its orphaned leases
	// has been re-leased, then bring up the replacements.
	var maxReLeased uint64
	for time.Now().Before(deadline) {
		if js, ok := coord.JobStatus(st.ID); ok && js.ReLeased > maxReLeased {
			maxReLeased = js.ReLeased
		}
		if maxReLeased >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	killVictim()
	if maxReLeased == 0 {
		t.Fatal("no lease was ever re-leased; the chaos injection is broken")
	}
	startWorker(ctx, "w2-reborn", fabric.NewHTTPTransport(srv.URL))
	startWorker(ctx, "w3", fabric.NewHTTPTransport(srv.URL))

	st = waitJob(t, svc, st.ID, "distributed chaos job")
	if st.State != jobs.StateDone {
		t.Fatalf("distributed job ended %s (error %q)", st.State, st.Error)
	}
	if !bytes.Equal(want, st.Result) {
		t.Fatalf("distributed result differs from single-node run (len %d vs %d)", len(st.Result), len(want))
	}
	checkUnitSet(t, st.Result)
}

// TestCoordinatorRestartMidCampaign: the coordinator (and job service)
// restart mid-campaign while workers stay up. Workers re-register with
// the new incarnation, the job resumes from its checkpoint journal, and
// the final result is byte-identical to a single-node run.
func TestCoordinatorRestartMidCampaign(t *testing.T) {
	req := charRequest()
	want := singleNodeResult(t, req)
	dir := t.TempDir()

	// A stable URL whose backing coordinator can be swapped, standing in
	// for "the coordinator host restarted".
	var hmu sync.Mutex
	var handler http.Handler
	setHandler := func(h http.Handler) {
		hmu.Lock()
		handler = h
		hmu.Unlock()
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hmu.Lock()
		h := handler
		hmu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	coord1 := fabric.NewCoordinator(fabric.CoordinatorConfig{
		LeaseTimeout: 250 * time.Millisecond,
		SweepEvery:   20 * time.Millisecond,
		Logf:         t.Logf,
	})
	setHandler(coord1.Handler())
	svc1, err := jobs.New(jobs.Config{
		Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond,
		Fabric: coord1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(req)
	if err != nil {
		svc1.Close()
		t.Fatal(err)
	}

	// Two long-lived workers that outlive the coordinator restart.
	ctx, cancelAll := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			fabric.RunWorker(ctx, fabric.NewHTTPTransport(srv.URL), fabric.WorkerConfig{
				Name: name, Poll: 10 * time.Millisecond, Logf: t.Logf,
			})
		}()
	}
	defer func() {
		cancelAll()
		wg.Wait()
	}()

	// Let the campaign make checkpointed progress, then restart the
	// coordinator side while the workers keep running.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cur, _ := svc1.Get(st.ID); cur.UnitsDone >= 1 && !cur.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc1.Close()
	coord1.Close()

	coord2 := fabric.NewCoordinator(fabric.CoordinatorConfig{
		LeaseTimeout: 250 * time.Millisecond,
		SweepEvery:   20 * time.Millisecond,
		Logf:         t.Logf,
	})
	defer coord2.Close()
	setHandler(coord2.Handler())
	svc2, err := jobs.New(jobs.Config{
		Workers: 1, Dir: dir, CheckpointEvery: 5 * time.Millisecond,
		Fabric: coord2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	st2, ok := svc2.Get(st.ID)
	if !ok {
		t.Fatalf("job %s lost across the coordinator restart", st.ID)
	}
	if st2.UnitsDone < 1 {
		t.Fatalf("resumed job forgot its completed units: %+v", st2)
	}
	st2 = waitJob(t, svc2, st.ID, "resumed distributed job")
	if st2.State != jobs.StateDone {
		t.Fatalf("resumed job ended %s (error %q)", st2.State, st2.Error)
	}
	if !bytes.Equal(want, st2.Result) {
		t.Fatalf("post-restart result differs from single-node run (len %d vs %d)", len(st2.Result), len(want))
	}
	checkUnitSet(t, st2.Result)
}
