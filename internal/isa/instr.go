package isa

import (
	"fmt"
	"math"
	"strings"
)

// Register file and predicate file geometry. RZ reads as zero and ignores
// writes, matching NVIDIA SASS conventions.
const (
	NumRegs  = 64 // general-purpose 32-bit registers per thread
	RZ       = 63 // zero register
	NumPreds = 8  // predicate registers per thread
	PT       = 7  // always-true predicate
)

// Reg is a general-purpose register index (0..NumRegs-1).
type Reg uint8

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// Pred encodes a guard or destination predicate: low 3 bits index the
// predicate register, bit 3 negates it.
type Pred uint8

// Predicate constructors.
const (
	PredTrue Pred = PT // unguarded (@PT)
	predNeg  Pred = 1 << 3
)

// P returns the positive predicate for index i.
func P(i int) Pred { return Pred(i & 7) }

// NotP returns the negated predicate for index i.
func NotP(i int) Pred { return Pred(i&7) | predNeg }

// Index returns the predicate register index.
func (p Pred) Index() int { return int(p & 7) }

// Neg reports whether the predicate is negated.
func (p Pred) Neg() bool { return p&predNeg != 0 }

// String implements fmt.Stringer.
func (p Pred) String() string {
	name := fmt.Sprintf("P%d", p.Index())
	if p.Index() == PT {
		name = "PT"
	}
	if p.Neg() {
		return "!" + name
	}
	return name
}

// Cmp is a comparison operator used by ISET/ISETP/FSETP and IMNMX/FMNMX.
type Cmp uint8

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	numCmps
)

// String implements fmt.Stringer.
func (c Cmp) String() string {
	switch c {
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	default:
		return fmt.Sprintf("Cmp(%d)", uint8(c))
	}
}

// EvalI applies the comparison to signed 32-bit integers.
func (c Cmp) EvalI(a, b int32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// EvalF applies the comparison to float32 values (NaN compares false except
// for NE, as in IEEE-754 unordered comparisons).
func (c Cmp) EvalF(a, b float32) bool {
	if a != a || b != b { // NaN
		return c == CmpNE
	}
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// SpecialReg identifies the source of an S2R read.
type SpecialReg uint8

// Special registers.
const (
	SRTid    SpecialReg = iota // thread index within the block (x)
	SRCtaid                    // block index within the grid (x)
	SRNtid                     // threads per block (x)
	SRNctaid                   // blocks per grid (x)
	SRLane                     // lane index within the warp
	SRWarpID                   // warp index within the block
	numSpecialRegs
)

// String implements fmt.Stringer.
func (s SpecialReg) String() string {
	switch s {
	case SRTid:
		return "SR_TID"
	case SRCtaid:
		return "SR_CTAID"
	case SRNtid:
		return "SR_NTID"
	case SRNctaid:
		return "SR_NCTAID"
	case SRLane:
		return "SR_LANE"
	case SRWarpID:
		return "SR_WARPID"
	default:
		return fmt.Sprintf("SR(%d)", uint8(s))
	}
}

// Instr is one decoded machine instruction. All kernels — micro-benchmarks,
// HPC applications and CNN layers alike — are sequences of Instr values, so
// both the RTL model and the functional emulator execute the same code.
type Instr struct {
	Op    Opcode
	Guard Pred // guard predicate (@P); PredTrue when unguarded
	Dst   Reg  // destination register (when Op.HasDst)
	SrcA  Reg
	SrcB  Reg
	SrcC  Reg  // third operand for FFMA/IMAD; data register for GST/SST
	PDst  Pred // predicate destination for ISETP/FSETP; selector for SEL/IMNMX/FMNMX
	Cmp   Cmp  // comparison for ISET/ISETP/FSETP

	// Imm is the 32-bit immediate: MOV32I payload (int or float bits),
	// memory offset in words for GLD/GST/SLD/SST, shift amount fallback,
	// or the SpecialReg selector for S2R.
	Imm int32

	// UseImmB substitutes Imm for the SrcB register operand.
	UseImmB bool

	// Target is the branch destination (instruction index) for BRA.
	Target uint16

	// Reconv is the immediate post-dominator (reconvergence point) for a
	// potentially divergent BRA. It plays the role of the SSY token
	// address in pre-Volta SASS: when both branch paths are non-empty the
	// SIMT stack reconverges at this instruction index.
	Reconv uint16
}

// FImm returns the immediate interpreted as a float32 payload.
func (in Instr) FImm() float32 { return math.Float32frombits(uint32(in.Imm)) }

// WithFImm returns a copy of the instruction with a float32 immediate.
func (in Instr) WithFImm(f float32) Instr {
	in.Imm = int32(math.Float32bits(f))
	return in
}

// String disassembles the instruction.
func (in Instr) String() string {
	var sb strings.Builder
	if in.Guard != PredTrue {
		fmt.Fprintf(&sb, "@%s ", in.Guard)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpISET, OpISETP, OpFSETP:
		fmt.Fprintf(&sb, ".%s", in.Cmp)
	}
	args := make([]string, 0, 4)
	if in.Op.SetsPred() {
		args = append(args, in.PDst.String())
	} else if in.Op.HasDst() {
		args = append(args, in.Dst.String())
	}
	switch in.Op {
	case OpMOV32I:
		args = append(args, fmt.Sprintf("0x%08x", uint32(in.Imm)))
	case OpS2R:
		args = append(args, SpecialReg(in.Imm).String())
	case OpGLD, OpSLD:
		args = append(args, fmt.Sprintf("[%s+%d]", in.SrcA, in.Imm))
	case OpGST, OpSST:
		args = append(args, fmt.Sprintf("[%s+%d]", in.SrcA, in.Imm), in.SrcC.String())
	case OpBRA:
		args = append(args, fmt.Sprintf("L%d", in.Target))
		if in.Reconv != 0 {
			args = append(args, fmt.Sprintf("(reconv L%d)", in.Reconv))
		}
	case OpBAR, OpNOP, OpEXIT:
		// no operands
	default:
		n := in.Op.NumSrcs()
		if n >= 1 {
			args = append(args, in.SrcA.String())
		}
		if n >= 2 {
			if in.UseImmB {
				args = append(args, fmt.Sprintf("0x%08x", uint32(in.Imm)))
			} else {
				args = append(args, in.SrcB.String())
			}
		}
		if n >= 3 {
			args = append(args, in.SrcC.String())
		}
		if in.Op == OpSEL || in.Op == OpIMNMX || in.Op == OpFMNMX {
			args = append(args, in.PDst.String())
		}
	}
	if len(args) > 0 {
		sb.WriteByte(' ')
		sb.WriteString(strings.Join(args, ", "))
	}
	return sb.String()
}

// Validate checks structural invariants of the instruction (register ranges
// are enforced by the types; this catches semantic misuse).
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.Cmp >= numCmps {
		return fmt.Errorf("isa: invalid comparison %d on %s", uint8(in.Cmp), in.Op)
	}
	if in.Op == OpS2R && SpecialReg(in.Imm) >= numSpecialRegs {
		return fmt.Errorf("isa: invalid special register %d", in.Imm)
	}
	if in.Op == OpBRA && in.Guard == PredTrue|predNeg {
		return fmt.Errorf("isa: branch guarded by !PT never executes")
	}
	return nil
}
