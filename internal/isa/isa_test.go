package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeMetadataComplete(t *testing.T) {
	for _, op := range AllOpcodes() {
		if op.String() == "" || strings.HasPrefix(op.String(), "Opcode(") {
			t.Errorf("opcode %d has no name", uint8(op))
		}
		if op.Unit() == UnitNone {
			t.Errorf("%s has no functional unit", op)
		}
	}
}

func TestCharacterizedOpcodes(t *testing.T) {
	ops := CharacterizedOpcodes()
	if len(ops) != 12 {
		t.Fatalf("paper characterises 12 instructions, got %d", len(ops))
	}
	for _, op := range ops {
		if !op.Characterized() {
			t.Errorf("%s in CharacterizedOpcodes but Characterized()==false", op)
		}
	}
	n := 0
	for _, op := range AllOpcodes() {
		if op.Characterized() {
			n++
		}
	}
	if n != 12 {
		t.Errorf("Characterized() true for %d opcodes, want 12", n)
	}
}

func TestCategoryAssignment(t *testing.T) {
	tests := []struct {
		op   Opcode
		want Category
	}{
		{OpFADD, CatFP32},
		{OpFMUL, CatFP32},
		{OpFFMA, CatFP32},
		{OpIADD, CatINT32},
		{OpIMUL, CatINT32},
		{OpIMAD, CatINT32},
		{OpFSIN, CatSFU},
		{OpFEXP, CatSFU},
		{OpGLD, CatControl},
		{OpGST, CatControl},
		{OpBRA, CatControl},
		{OpISET, CatControl},
		{OpMOV, CatOther},
		{OpBAR, CatOther},
	}
	for _, tt := range tests {
		if got := tt.op.Category(); got != tt.want {
			t.Errorf("%s category = %s, want %s", tt.op, got, tt.want)
		}
	}
}

func TestUnitRouting(t *testing.T) {
	tests := []struct {
		op   Opcode
		want Unit
	}{
		{OpFADD, UnitFP32},
		{OpFFMA, UnitFP32},
		{OpIADD, UnitINT},
		{OpIMAD, UnitINT},
		{OpFSIN, UnitSFU},
		{OpFEXP, UnitSFU},
		{OpFRCP, UnitSFU},
		{OpGLD, UnitLSU},
		{OpGST, UnitLSU},
		{OpBRA, UnitCTRL},
		{OpISET, UnitINT},
		{OpBAR, UnitCTRL},
	}
	for _, tt := range tests {
		if got := tt.op.Unit(); got != tt.want {
			t.Errorf("%s unit = %s, want %s", tt.op, got, tt.want)
		}
	}
}

func TestPredEncoding(t *testing.T) {
	if PredTrue.Index() != PT || PredTrue.Neg() {
		t.Errorf("PredTrue = %v, want @PT", PredTrue)
	}
	p := NotP(3)
	if p.Index() != 3 || !p.Neg() {
		t.Errorf("NotP(3) = index %d neg %v", p.Index(), p.Neg())
	}
	if got := P(5).String(); got != "P5" {
		t.Errorf("P5 string = %q", got)
	}
	if got := NotP(5).String(); got != "!P5" {
		t.Errorf("!P5 string = %q", got)
	}
}

func TestCmpEvalI(t *testing.T) {
	tests := []struct {
		c    Cmp
		a, b int32
		want bool
	}{
		{CmpEQ, 3, 3, true},
		{CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true},
		{CmpLT, -1, 0, true},
		{CmpLT, 0, -1, false},
		{CmpLE, 2, 2, true},
		{CmpGT, 5, 4, true},
		{CmpGE, 4, 5, false},
	}
	for _, tt := range tests {
		if got := tt.c.EvalI(tt.a, tt.b); got != tt.want {
			t.Errorf("%s(%d,%d) = %v, want %v", tt.c, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCmpEvalFNaN(t *testing.T) {
	nan := float32(math.NaN())
	for c := CmpEQ; c < numCmps; c++ {
		want := c == CmpNE
		if got := c.EvalF(nan, 1); got != want {
			t.Errorf("%s(NaN,1) = %v, want %v", c, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpFADD, Guard: PredTrue, Dst: 3, SrcA: 1, SrcB: 2},
		{Op: OpFFMA, Guard: P(2), Dst: 4, SrcA: 1, SrcB: 2, SrcC: 3},
		{Op: OpMOV32I, Guard: PredTrue, Dst: 5, Imm: -123456789},
		{Op: OpGLD, Guard: PredTrue, Dst: 6, SrcA: 7, Imm: 16},
		{Op: OpGST, Guard: NotP(1), SrcA: 7, SrcC: 8, Imm: -4},
		{Op: OpBRA, Guard: P(0), Target: 42, Reconv: 50},
		{Op: OpISETP, Guard: PredTrue, PDst: P(1), SrcA: 1, SrcB: 2, Cmp: CmpGE},
		{Op: OpISET, Guard: PredTrue, Dst: 9, SrcA: 1, SrcB: RZ, Cmp: CmpLT, UseImmB: true, Imm: 77},
		{Op: OpEXIT, Guard: PredTrue},
	}
	for _, in := range ins {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(opRaw, guard, dst, a, b, c, pdst, cmp uint8, imm int32, target, reconv uint16, useImm bool) bool {
		ops := AllOpcodes()
		in := Instr{
			Op:      ops[int(opRaw)%len(ops)],
			Guard:   Pred(guard & 0xF),
			Dst:     Reg(dst % NumRegs),
			SrcA:    Reg(a % NumRegs),
			SrcB:    Reg(b % NumRegs),
			SrcC:    Reg(c % NumRegs),
			PDst:    Pred(pdst & 0xF),
			Cmp:     Cmp(cmp % uint8(numCmps)),
			Imm:     imm,
			Target:  target,
			Reconv:  reconv,
			UseImmB: useImm,
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	if _, err := Decode(Word{0, 0}); err == nil {
		t.Error("decoding all-zero word should fail (illegal opcode)")
	}
	w := Encode(Instr{Op: OpNOP})
	w[0] |= 0xFF // corrupt opcode field beyond range
	if _, err := Decode(w); err == nil {
		t.Error("decoding corrupted opcode should fail")
	}
}

func TestDecodeProgramErrorPosition(t *testing.T) {
	words := EncodeProgram([]Instr{{Op: OpNOP}, {Op: OpNOP}})
	words[1][0] &^= 0xFF // zero the opcode of instruction 1
	_, err := DecodeProgram(words)
	if err == nil || !strings.Contains(err.Error(), "at 1") {
		t.Errorf("want position-annotated error, got %v", err)
	}
}

func TestFImmRoundTrip(t *testing.T) {
	in := Instr{Op: OpMOV32I}.WithFImm(3.25)
	if in.FImm() != 3.25 {
		t.Errorf("FImm round trip = %v", in.FImm())
	}
}

func TestDisassembly(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpFADD, Guard: PredTrue, Dst: 3, SrcA: 1, SrcB: 2}, "FADD R3, R1, R2"},
		{Instr{Op: OpFFMA, Guard: P(1), Dst: 4, SrcA: 1, SrcB: 2, SrcC: 3}, "@P1 FFMA R4, R1, R2, R3"},
		{Instr{Op: OpGLD, Guard: PredTrue, Dst: 6, SrcA: 7, Imm: 2}, "GLD R6, [R7+2]"},
		{Instr{Op: OpGST, Guard: PredTrue, SrcA: 7, SrcC: 8}, "GST [R7+0], R8"},
		{Instr{Op: OpBRA, Guard: NotP(0), Target: 9}, "@!P0 BRA L9"},
		{Instr{Op: OpISETP, Guard: PredTrue, PDst: P(2), SrcA: 5, SrcB: 6, Cmp: CmpLT}, "ISETP.LT P2, R5, R6"},
		{Instr{Op: OpEXIT, Guard: PredTrue}, "EXIT"},
		{Instr{Op: OpMOV, Guard: PredTrue, Dst: 1, SrcA: RZ}, "MOV R1, RZ"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("disasm = %q, want %q", got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Instr{Op: OpFADD, Guard: PredTrue, Dst: 1, SrcA: 2, SrcB: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	bad := []Instr{
		{Op: OpInvalid},
		{Op: OpS2R, Imm: 99},
		{Op: OpBRA, Guard: NotP(PT)},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid instruction accepted: %+v", in)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	in := Instr{Op: OpFFMA, Guard: PredTrue, Dst: 4, SrcA: 1, SrcB: 2, SrcC: 3}
	for i := 0; i < b.N; i++ {
		w := Encode(in)
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}
