package isa

import "fmt"

// Word is one encoded instruction: a 128-bit word pair, as fetched by the
// RTL model's fetch stage. (The G80 uses 64-bit instruction words; we use a
// wider fixed layout so that every field has an explicit bit position that
// decode-stage fault injection can target.)
type Word [2]uint64

// Bit positions inside Word[0].
const (
	bitsOp     = 0  // [7:0]   opcode
	bitsGuard  = 8  // [11:8]  guard predicate
	bitsDst    = 12 // [19:12] destination register
	bitsSrcA   = 20 // [27:20]
	bitsSrcB   = 28 // [35:28]
	bitsSrcC   = 36 // [43:36]
	bitsPDst   = 44 // [47:44] predicate destination / selector
	bitsCmp    = 48 // [50:48] comparison operator
	bitUseImmB = 51 // [51]    immediate-for-SrcB flag
)

// Bit positions inside Word[1].
const (
	bitsImm    = 0  // [31:0]  immediate
	bitsTarget = 32 // [47:32] branch target
	bitsReconv = 48 // [63:48] reconvergence point
)

// Encode packs the instruction into its binary representation.
func Encode(in Instr) Word {
	var w Word
	w[0] = uint64(in.Op)<<bitsOp |
		uint64(in.Guard&0xF)<<bitsGuard |
		uint64(in.Dst&0xFF)<<bitsDst |
		uint64(in.SrcA&0xFF)<<bitsSrcA |
		uint64(in.SrcB&0xFF)<<bitsSrcB |
		uint64(in.SrcC&0xFF)<<bitsSrcC |
		uint64(in.PDst&0xF)<<bitsPDst |
		uint64(in.Cmp&0x7)<<bitsCmp
	if in.UseImmB {
		w[0] |= 1 << bitUseImmB
	}
	w[1] = uint64(uint32(in.Imm))<<bitsImm |
		uint64(in.Target)<<bitsTarget |
		uint64(in.Reconv)<<bitsReconv
	return w
}

// Decode unpacks a binary instruction word. It returns an error when the
// opcode field does not name a defined operation, which the RTL model
// reports as an illegal-instruction DUE.
func Decode(w Word) (Instr, error) {
	in := Instr{
		Op:      Opcode(w[0] >> bitsOp & 0xFF),
		Guard:   Pred(w[0] >> bitsGuard & 0xF),
		Dst:     Reg(w[0] >> bitsDst & 0xFF),
		SrcA:    Reg(w[0] >> bitsSrcA & 0xFF),
		SrcB:    Reg(w[0] >> bitsSrcB & 0xFF),
		SrcC:    Reg(w[0] >> bitsSrcC & 0xFF),
		PDst:    Pred(w[0] >> bitsPDst & 0xF),
		Cmp:     Cmp(w[0] >> bitsCmp & 0x7),
		UseImmB: w[0]>>bitUseImmB&1 != 0,
		Imm:     int32(uint32(w[1] >> bitsImm)),
		Target:  uint16(w[1] >> bitsTarget),
		Reconv:  uint16(w[1] >> bitsReconv),
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: illegal opcode field 0x%02x", uint8(in.Op))
	}
	if in.Dst >= NumRegs || in.SrcA >= NumRegs || in.SrcB >= NumRegs || in.SrcC >= NumRegs {
		return in, fmt.Errorf("isa: register field out of range in %v", w)
	}
	return in, nil
}

// EncodeProgram encodes a whole instruction sequence.
func EncodeProgram(prog []Instr) []Word {
	words := make([]Word, len(prog))
	for i, in := range prog {
		words[i] = Encode(in)
	}
	return words
}

// DecodeProgram decodes a whole instruction memory image.
func DecodeProgram(words []Word) ([]Instr, error) {
	prog := make([]Instr, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at %d: %w", i, err)
		}
		prog[i] = in
	}
	return prog, nil
}
