// Package isa defines the SASS-like instruction set architecture shared by
// the functional SIMT emulator (internal/emu) and the RTL-level GPU model
// (internal/rtl).
//
// The ISA mirrors the subset of NVIDIA SASS that the DSN 2021 paper
// characterises at RTL level — floating point (FADD, FMUL, FFMA), integer
// (IADD, IMUL, IMAD), transcendental (FSIN, FEXP), memory (GLD, GST) and
// control (BRA, ISET) instructions — plus the support operations (moves,
// shifts, predicates, barriers) needed to express realistic kernels.
package isa

import "fmt"

// Opcode identifies a machine operation. The zero value is invalid so that
// an accidentally zeroed instruction word is detected as a decode error
// (mirroring an illegal-instruction trap in hardware).
type Opcode uint8

// Machine operations. The first block is the 12 instructions characterised
// by RTL fault injection in the paper (§III); the second block is support
// operations used by kernels but profiled under "Others" (Fig. 3).
const (
	OpInvalid Opcode = iota

	// Characterised floating-point operations (FP32 unit).
	OpFADD // d = a + b
	OpFMUL // d = a * b
	OpFFMA // d = a*b + c (fused, single rounding)

	// Characterised integer operations (INT unit).
	OpIADD // d = a + b
	OpIMUL // d = a * b (low 32 bits)
	OpIMAD // d = a*b + c (low 32 bits)

	// Characterised special-function operations (SFU).
	OpFSIN // d = sin(a), a in [0, pi/2] fast path
	OpFEXP // d = exp2(a) scaled: d = e^a via exp2(a*log2 e)

	// Characterised memory operations (load/store unit).
	OpGLD // d = global[a + imm]
	OpGST // global[a + imm] = b

	// Characterised control operations.
	OpBRA  // branch to Target if guard predicate holds
	OpISET // d = (a <cmp> b) ? 0xFFFFFFFF : 0

	// Support operations ("Others" in Fig. 3).
	OpMOV    // d = a
	OpMOV32I // d = imm
	OpSEL    // d = pred ? a : b
	OpS2R    // d = special register (tid, ctaid, ...)
	OpISETP  // p = (a <cmp> b)
	OpFSETP  // p = (a <cmp> b) on float32
	OpSHL    // d = a << (b & 31)
	OpSHR    // d = a >> (b & 31) (logical)
	OpAND    // d = a & b
	OpOR     // d = a | b
	OpXOR    // d = a ^ b
	OpIMNMX  // d = pred ? min(a,b) : max(a,b) (signed)
	OpFMNMX  // d = pred ? min(a,b) : max(a,b)
	OpFRCP   // d = 1/a (SFU approximation)
	OpFRSQRT // d = 1/sqrt(a) (SFU approximation)
	OpF2I    // d = int32(a) (truncate)
	OpI2F    // d = float32(a)
	OpSLD    // d = shared[a + imm]
	OpSST    // shared[a + imm] = b
	OpBAR    // block-wide barrier
	OpNOP    // no operation
	OpEXIT   // thread exit

	opCount // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes, including OpInvalid.
const NumOpcodes = int(opCount)

// Category buckets opcodes the way Fig. 3 of the paper does.
type Category uint8

// Profile categories (Fig. 3).
const (
	CatOther   Category = iota // support operations
	CatFP32                    // FADD, FMUL, FFMA
	CatINT32                   // IADD, IMUL, IMAD
	CatSFU                     // FSIN, FEXP (and other MUFU ops)
	CatControl                 // GLD, GST, BRA, ISET (paper's "Control" group)
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatFP32:
		return "FP32"
	case CatINT32:
		return "INT32"
	case CatSFU:
		return "SFU"
	case CatControl:
		return "Control"
	default:
		return "Others"
	}
}

// opInfo is static metadata about one opcode.
type opInfo struct {
	name     string
	cat      Category
	unit     Unit // functional unit that executes the operation
	srcs     int  // number of register sources read (0..3)
	hasDst   bool
	setsPred bool
	isMem    bool
	isBranch bool
}

// Unit identifies the hardware module that executes an opcode. It is used
// both by the RTL model (to route operations) and by the syndrome database
// (to select the injection-site-specific fault model).
type Unit uint8

// Functional units of the modelled SM.
const (
	UnitNone  Unit = iota
	UnitINT        // integer ALU/MAD lane
	UnitFP32       // single-precision FP lane
	UnitSFU        // shared special-function unit
	UnitLSU        // load/store unit
	UnitCTRL       // branch/barrier control
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case UnitINT:
		return "INT"
	case UnitFP32:
		return "FP32"
	case UnitSFU:
		return "SFU"
	case UnitLSU:
		return "LSU"
	case UnitCTRL:
		return "CTRL"
	default:
		return "NONE"
	}
}

var opTable = [opCount]opInfo{
	OpInvalid: {name: "INVALID"},

	OpFADD: {name: "FADD", cat: CatFP32, unit: UnitFP32, srcs: 2, hasDst: true},
	OpFMUL: {name: "FMUL", cat: CatFP32, unit: UnitFP32, srcs: 2, hasDst: true},
	OpFFMA: {name: "FFMA", cat: CatFP32, unit: UnitFP32, srcs: 3, hasDst: true},

	OpIADD: {name: "IADD", cat: CatINT32, unit: UnitINT, srcs: 2, hasDst: true},
	OpIMUL: {name: "IMUL", cat: CatINT32, unit: UnitINT, srcs: 2, hasDst: true},
	OpIMAD: {name: "IMAD", cat: CatINT32, unit: UnitINT, srcs: 3, hasDst: true},

	OpFSIN: {name: "FSIN", cat: CatSFU, unit: UnitSFU, srcs: 1, hasDst: true},
	OpFEXP: {name: "FEXP", cat: CatSFU, unit: UnitSFU, srcs: 1, hasDst: true},

	OpGLD: {name: "GLD", cat: CatControl, unit: UnitLSU, srcs: 1, hasDst: true, isMem: true},
	OpGST: {name: "GST", cat: CatControl, unit: UnitLSU, srcs: 2, isMem: true},

	OpBRA:  {name: "BRA", cat: CatControl, unit: UnitCTRL, isBranch: true},
	OpISET: {name: "ISET", cat: CatControl, unit: UnitINT, srcs: 2, hasDst: true},

	OpMOV:    {name: "MOV", cat: CatOther, unit: UnitINT, srcs: 1, hasDst: true},
	OpMOV32I: {name: "MOV32I", cat: CatOther, unit: UnitINT, hasDst: true},
	OpSEL:    {name: "SEL", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpS2R:    {name: "S2R", cat: CatOther, unit: UnitINT, hasDst: true},
	OpISETP:  {name: "ISETP", cat: CatOther, unit: UnitINT, srcs: 2, setsPred: true},
	OpFSETP:  {name: "FSETP", cat: CatOther, unit: UnitFP32, srcs: 2, setsPred: true},
	OpSHL:    {name: "SHL", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpSHR:    {name: "SHR", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpAND:    {name: "AND", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpOR:     {name: "OR", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpXOR:    {name: "XOR", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpIMNMX:  {name: "IMNMX", cat: CatOther, unit: UnitINT, srcs: 2, hasDst: true},
	OpFMNMX:  {name: "FMNMX", cat: CatOther, unit: UnitFP32, srcs: 2, hasDst: true},
	OpFRCP:   {name: "FRCP", cat: CatSFU, unit: UnitSFU, srcs: 1, hasDst: true},
	OpFRSQRT: {name: "FRSQRT", cat: CatSFU, unit: UnitSFU, srcs: 1, hasDst: true},
	OpF2I:    {name: "F2I", cat: CatOther, unit: UnitFP32, srcs: 1, hasDst: true},
	OpI2F:    {name: "I2F", cat: CatOther, unit: UnitFP32, srcs: 1, hasDst: true},
	OpSLD:    {name: "SLD", cat: CatOther, unit: UnitLSU, srcs: 1, hasDst: true, isMem: true},
	OpSST:    {name: "SST", cat: CatOther, unit: UnitLSU, srcs: 2, isMem: true},
	OpBAR:    {name: "BAR", cat: CatOther, unit: UnitCTRL},
	OpNOP:    {name: "NOP", cat: CatOther, unit: UnitCTRL},
	OpEXIT:   {name: "EXIT", cat: CatOther, unit: UnitCTRL},
}

// Valid reports whether op is a defined opcode other than OpInvalid.
func (op Opcode) Valid() bool { return op > OpInvalid && op < opCount }

// String implements fmt.Stringer.
func (op Opcode) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Category returns the Fig. 3 profiling bucket for op.
func (op Opcode) Category() Category {
	if op.Valid() {
		return opTable[op].cat
	}
	return CatOther
}

// Unit returns the functional unit that executes op.
func (op Opcode) Unit() Unit {
	if op.Valid() {
		return opTable[op].unit
	}
	return UnitNone
}

// NumSrcs returns how many register source operands op reads.
func (op Opcode) NumSrcs() int {
	if op.Valid() {
		return opTable[op].srcs
	}
	return 0
}

// HasDst reports whether op writes a destination register.
func (op Opcode) HasDst() bool { return op.Valid() && opTable[op].hasDst }

// SetsPred reports whether op writes a predicate register.
func (op Opcode) SetsPred() bool { return op.Valid() && opTable[op].setsPred }

// IsMemory reports whether op accesses memory.
func (op Opcode) IsMemory() bool { return op.Valid() && opTable[op].isMem }

// IsBranch reports whether op is a control-transfer operation.
func (op Opcode) IsBranch() bool { return op.Valid() && opTable[op].isBranch }

// IsFloat reports whether op produces a floating-point result, which decides
// how fault syndromes (relative errors) are applied to its output.
func (op Opcode) IsFloat() bool {
	switch op {
	case OpFADD, OpFMUL, OpFFMA, OpFSIN, OpFEXP, OpFRCP, OpFRSQRT, OpFMNMX, OpI2F:
		return true
	}
	return false
}

// Characterized reports whether op is one of the 12 SASS instructions whose
// fault syndrome the paper characterises at RTL level (§III).
func (op Opcode) Characterized() bool {
	switch op {
	case OpFADD, OpFMUL, OpFFMA, OpIADD, OpIMUL, OpIMAD,
		OpFSIN, OpFEXP, OpGLD, OpGST, OpBRA, OpISET:
		return true
	}
	return false
}

// CharacterizedOpcodes lists the 12 RTL-characterised instructions in the
// order the paper presents them.
func CharacterizedOpcodes() []Opcode {
	return []Opcode{
		OpFADD, OpFMUL, OpFFMA,
		OpIADD, OpIMUL, OpIMAD,
		OpFSIN, OpFEXP,
		OpGLD, OpGST, OpBRA, OpISET,
	}
}

// AllOpcodes lists every valid opcode.
func AllOpcodes() []Opcode {
	ops := make([]Opcode, 0, opCount-1)
	for op := OpInvalid + 1; op < opCount; op++ {
		ops = append(ops, op)
	}
	return ops
}
