// Package core implements the paper's primary contribution: the two-level
// fault-injection framework (Fig. 2). The expensive RTL characterisation
// runs once, over the 12 common SASS instructions and the t-MxM mini-app,
// and populates the syndrome database; the fast software injector then
// propagates those RTL-accurate fault effects through complete HPC
// applications and CNNs, producing the Program Vulnerability Factors of
// Fig. 10 / Table III at a cost reduced from years of RTL simulation to
// minutes (§VI).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/rtl"
	"gpufi/internal/rtlfi"
	"gpufi/internal/swfi"
	"gpufi/internal/syndrome"
)

// CharacterizeConfig controls the RTL phase. The zero value is usable for
// quick runs; the paper's campaigns use 12000+ faults each.
type CharacterizeConfig struct {
	FaultsPerCampaign int // default 2000
	TMXMFaults        int // default FaultsPerCampaign
	Seed              uint64
	Workers           int
	Ops               []isa.Opcode        // default: the 12 characterised opcodes
	Ranges            []faults.InputRange // default: S, M, L
	SkipTMXM          bool                // skip the t-MxM campaigns (micro-benchmarks only)
	NoPrune           bool                // disable dead-site pruning (see rtlfi.Spec.NoPrune)
	NoCollapse        bool                // disable fault-equivalence collapsing (see rtlfi.Spec.NoCollapse)
	NoBitParallel     bool                // disable bit-parallel marching (see rtlfi.Spec.NoBitParallel)

	// Progress, when non-nil, receives fault-level progress aggregated
	// over the whole characterisation plan. It may be called concurrently
	// and done values may arrive out of order; keep a running maximum.
	Progress func(done, total int)
}

func (c *CharacterizeConfig) defaults() {
	if c.FaultsPerCampaign == 0 {
		c.FaultsPerCampaign = 2000
	}
	if c.TMXMFaults == 0 {
		c.TMXMFaults = c.FaultsPerCampaign
	}
	if len(c.Ops) == 0 {
		c.Ops = isa.CharacterizedOpcodes()
	}
	if len(c.Ranges) == 0 {
		c.Ranges = faults.AllRanges()
	}
}

// Characterization is the output of the RTL phase: the syndrome database
// plus the raw campaign results backing Figs. 4–9 and Table II.
type Characterization struct {
	DB    *syndrome.DB
	Micro []*rtlfi.Result
	TMXM  []*rtlfi.TMXMResult
}

// UnitKind distinguishes the two campaign families of the RTL phase.
type UnitKind uint8

// Characterisation unit kinds.
const (
	UnitMicro UnitKind = iota // one (opcode, range, module) micro-benchmark campaign
	UnitTMXM                  // one (module, tile kind) t-MxM campaign
)

// Unit is one independently schedulable campaign of the characterisation
// plan. Its Seed is fixed at planning time, so units can be executed in
// any order — or skipped and re-run after an interruption — and still
// reproduce exactly the campaign an uninterrupted Characterize would run.
type Unit struct {
	Kind          UnitKind
	Op            isa.Opcode        // UnitMicro only
	Range         faults.InputRange // UnitMicro only
	Module        faults.Module
	Tile          mxm.TileKind // UnitTMXM only
	Faults        int
	Seed          uint64
	NoPrune       bool // campaign results are bit-identical either way
	NoCollapse    bool // disable fault-equivalence collapsing; bit-identical either way
	NoBitParallel bool // disable bit-parallel marching; bit-identical either way
}

// Name returns the unit's stable identifier, used as the checkpoint key
// by resumable campaign jobs.
func (u Unit) Name() string {
	if u.Kind == UnitTMXM {
		return fmt.Sprintf("tmxm/%s/%s", u.Module, u.Tile)
	}
	return fmt.Sprintf("micro/%s/%s/%s", u.Op, u.Range, u.Module)
}

// Plan expands a configuration into the ordered list of campaign units
// Characterize would run, each with its derived seed.
func Plan(cfg CharacterizeConfig) []Unit {
	cfg.defaults()
	var units []Unit
	seed := cfg.Seed
	for _, op := range cfg.Ops {
		for _, rng := range cfg.Ranges {
			for _, mod := range faults.AllModules() {
				if !rtlfi.ModuleUsed(mod, op) {
					continue
				}
				seed++
				units = append(units, Unit{
					Kind: UnitMicro, Op: op, Range: rng, Module: mod,
					Faults: cfg.FaultsPerCampaign, Seed: seed, NoPrune: cfg.NoPrune,
					NoCollapse: cfg.NoCollapse, NoBitParallel: cfg.NoBitParallel,
				})
			}
		}
	}
	if cfg.SkipTMXM {
		return units
	}
	for _, mod := range []faults.Module{faults.ModSched, faults.ModPipe} {
		for _, kind := range mxm.AllTileKinds() {
			seed++
			units = append(units, Unit{
				Kind: UnitTMXM, Module: mod, Tile: kind,
				Faults: cfg.TMXMFaults, Seed: seed, NoPrune: cfg.NoPrune,
				NoCollapse: cfg.NoCollapse, NoBitParallel: cfg.NoBitParallel,
			})
		}
	}
	return units
}

// UnitResult is the outcome of one executed plan unit; exactly one of
// Micro and TMXM is set, matching Unit.Kind.
type UnitResult struct {
	Unit  Unit
	Micro *rtlfi.Result
	TMXM  *rtlfi.TMXMResult
}

// Tally returns the unit's outcome tally regardless of kind.
func (r *UnitResult) Tally() faults.Tally {
	if r.Micro != nil {
		return r.Micro.Tally
	}
	return r.TMXM.Tally
}

// Telemetry is the RTL campaign engine's cycle accounting, aggregated
// over one or more campaigns: cycles actually simulated, cycles provably
// skipped (checkpoint fast-forward, golden reconvergence, dead-site
// pruning, equivalence collapsing), and the injections classified with
// zero simulation by dead-site pruning and by fault-equivalence
// collapsing. The JSON form is served verbatim by the jobs API.
type Telemetry struct {
	Injections      int    `json:"injections"`
	SimCycles       uint64 `json:"sim_cycles"`
	SkippedCycles   uint64 `json:"skipped_cycles"`
	PrunedFaults    uint64 `json:"pruned_faults"`
	CollapsedFaults uint64 `json:"collapsed_faults"`

	// VectorFaults counts injections simulated as lanes of a bit-parallel
	// march rather than on a scalar machine of their own; Marches counts
	// the marches that carried them. Always 0 with bit-parallel
	// simulation disabled.
	VectorFaults uint64 `json:"vector_faults"`
	Marches      uint64 `json:"marches"`
}

// Merge accumulates another campaign's counters.
func (t *Telemetry) Merge(o Telemetry) {
	t.Injections += o.Injections
	t.SimCycles += o.SimCycles
	t.SkippedCycles += o.SkippedCycles
	t.PrunedFaults += o.PrunedFaults
	t.CollapsedFaults += o.CollapsedFaults
	t.VectorFaults += o.VectorFaults
	t.Marches += o.Marches
}

// ReplaySpeedup returns total fault-run cycles over cycles actually
// simulated — the combined effect of fast-forward and pruning.
func (t Telemetry) ReplaySpeedup() float64 {
	if t.SimCycles == 0 {
		if t.SkippedCycles == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(t.SimCycles+t.SkippedCycles) / float64(t.SimCycles)
}

// PruneRate returns the share of injections dead-site pruning classified.
func (t Telemetry) PruneRate() float64 {
	if t.Injections == 0 {
		return 0
	}
	return float64(t.PrunedFaults) / float64(t.Injections)
}

// CollapseRate returns the share of injections fault-equivalence
// collapsing classified from a memoized representative.
func (t Telemetry) CollapseRate() float64 {
	if t.Injections == 0 {
		return 0
	}
	return float64(t.CollapsedFaults) / float64(t.Injections)
}

// VectorRate returns the share of injections simulated as bit-parallel
// march lanes.
func (t Telemetry) VectorRate() float64 {
	if t.Injections == 0 {
		return 0
	}
	return float64(t.VectorFaults) / float64(t.Injections)
}

// LaneOccupancy returns the mean fill of the campaign's marches: vector
// faults per march over the lane capacity (rtl.VecMaxLanes). Zero when
// no march ran.
func (t Telemetry) LaneOccupancy() float64 {
	if t.Marches == 0 {
		return 0
	}
	return float64(t.VectorFaults) / float64(t.Marches) / float64(rtl.VecMaxLanes)
}

// Telemetry returns the unit's engine counters regardless of kind.
func (r *UnitResult) Telemetry() Telemetry {
	if r.Micro != nil {
		return Telemetry{
			Injections:      r.Micro.Tally.Injections,
			SimCycles:       r.Micro.SimCycles,
			SkippedCycles:   r.Micro.SkippedCycles,
			PrunedFaults:    r.Micro.PrunedFaults,
			CollapsedFaults: r.Micro.CollapsedFaults,
			VectorFaults:    r.Micro.VectorFaults,
			Marches:         r.Micro.Marches,
		}
	}
	return Telemetry{
		Injections:      r.TMXM.Tally.Injections,
		SimCycles:       r.TMXM.SimCycles,
		SkippedCycles:   r.TMXM.SkippedCycles,
		PrunedFaults:    r.TMXM.PrunedFaults,
		CollapsedFaults: r.TMXM.CollapsedFaults,
		VectorFaults:    r.TMXM.VectorFaults,
		Marches:         r.TMXM.Marches,
	}
}

// Telemetry aggregates the engine counters over every campaign of the
// characterisation.
func (c *Characterization) Telemetry() Telemetry {
	var t Telemetry
	for _, r := range c.Micro {
		t.Merge(Telemetry{
			Injections:      r.Tally.Injections,
			SimCycles:       r.SimCycles,
			SkippedCycles:   r.SkippedCycles,
			PrunedFaults:    r.PrunedFaults,
			CollapsedFaults: r.CollapsedFaults,
			VectorFaults:    r.VectorFaults,
			Marches:         r.Marches,
		})
	}
	for _, r := range c.TMXM {
		t.Merge(Telemetry{
			Injections:      r.Tally.Injections,
			SimCycles:       r.SimCycles,
			SkippedCycles:   r.SkippedCycles,
			PrunedFaults:    r.PrunedFaults,
			CollapsedFaults: r.CollapsedFaults,
			VectorFaults:    r.VectorFaults,
			Marches:         r.Marches,
		})
	}
	return t
}

// RunUnit executes one plan unit with cancellation and fault-level
// progress reporting.
func RunUnit(ctx context.Context, u Unit, workers int, progress func(done, total int)) (*UnitResult, error) {
	switch u.Kind {
	case UnitMicro:
		res, err := rtlfi.RunMicroCtx(ctx, rtlfi.Spec{
			Op: u.Op, Range: u.Range, Module: u.Module,
			NumFaults: u.Faults, Seed: u.Seed, Workers: workers,
			NoPrune: u.NoPrune, NoCollapse: u.NoCollapse, NoBitParallel: u.NoBitParallel,
			Progress: progress,
		})
		if err != nil {
			return nil, err
		}
		return &UnitResult{Unit: u, Micro: res}, nil
	case UnitTMXM:
		res, err := rtlfi.RunTMXMCtx(ctx, rtlfi.TMXMSpec{
			Module: u.Module, Kind: u.Tile,
			NumFaults: u.Faults, Seed: u.Seed, Workers: workers,
			NoPrune: u.NoPrune, NoCollapse: u.NoCollapse, NoBitParallel: u.NoBitParallel,
			Progress: progress,
		})
		if err != nil {
			return nil, err
		}
		return &UnitResult{Unit: u, TMXM: res}, nil
	default:
		return nil, fmt.Errorf("core: unknown unit kind %d", u.Kind)
	}
}

// AddUnit ingests one completed plan unit into the characterisation and
// its syndrome database.
func (c *Characterization) AddUnit(res *UnitResult) {
	if res.Micro != nil {
		c.Micro = append(c.Micro, res.Micro)
		c.DB.AddMicro(res.Micro)
		return
	}
	c.TMXM = append(c.TMXM, res.TMXM)
	c.DB.AddTMXM(res.TMXM)
}

// Characterize runs the complete RTL fault-injection phase: for every
// characterised opcode, input range and exercised module, one
// micro-benchmark campaign; plus t-MxM campaigns on the scheduler and
// pipeline for the three tile kinds (§V).
func Characterize(cfg CharacterizeConfig) (*Characterization, error) {
	return CharacterizeCtx(context.Background(), cfg)
}

// CharacterizeCtx is Characterize with cancellation and aggregated
// fault-level progress via cfg.Progress.
func CharacterizeCtx(ctx context.Context, cfg CharacterizeConfig) (*Characterization, error) {
	cfg.defaults()
	plan := Plan(cfg)
	total := 0
	for _, u := range plan {
		total += u.Faults
	}
	out := &Characterization{DB: syndrome.New()}
	base := 0
	for _, u := range plan {
		var progress func(done, total int)
		if cfg.Progress != nil {
			off := base
			progress = func(done, _ int) { cfg.Progress(off+done, total) }
		}
		res, err := RunUnit(ctx, u, cfg.Workers, progress)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", u.Name(), err)
		}
		out.AddUnit(res)
		base += u.Faults
	}
	return out, nil
}

// AVFRow is one Fig. 4 data point: a module x instruction cell averaged
// over the input ranges.
type AVFRow struct {
	Module     faults.Module
	Op         isa.Opcode
	SDCSingle  float64
	SDCMulti   float64
	DUE        float64
	AvgThreads float64
}

// AVFTable aggregates the micro campaigns into Fig. 4 rows.
func (c *Characterization) AVFTable() []AVFRow {
	type key struct {
		mod faults.Module
		op  isa.Opcode
	}
	agg := map[key]*faults.Tally{}
	for _, res := range c.Micro {
		k := key{res.Spec.Module, res.Spec.Op}
		if agg[k] == nil {
			agg[k] = &faults.Tally{}
		}
		agg[k].Merge(res.Tally)
	}
	var rows []AVFRow
	for _, mod := range faults.AllModules() {
		for _, op := range isa.CharacterizedOpcodes() {
			t, ok := agg[key{mod, op}]
			if !ok {
				continue
			}
			n := float64(t.Injections)
			rows = append(rows, AVFRow{
				Module:     mod,
				Op:         op,
				SDCSingle:  float64(t.SDCSingle) / n,
				SDCMulti:   float64(t.SDCMulti) / n,
				DUE:        float64(t.DUEs) / n,
				AvgThreads: t.AvgThreads(),
			})
		}
	}
	return rows
}

// ModuleCriticality ranks modules by AVF weighted with module size, the
// paper's proxy for "likely source of most SDCs/DUEs" (§V-B: "functional
// units, having a huge size and high AVF, are likely to be the source of
// most SDCs, while pipelines are likely to be the cause of most DUEs").
type ModuleCriticality struct {
	Module      faults.Module
	Size        int
	AVFSDC      float64
	AVFDUE      float64
	WeightedSDC float64 // AVF x size
	WeightedDUE float64
}

// RankModules computes the hardening-priority ranking.
func (c *Characterization) RankModules() []ModuleCriticality {
	agg := map[faults.Module]*faults.Tally{}
	for _, res := range c.Micro {
		if agg[res.Spec.Module] == nil {
			agg[res.Spec.Module] = &faults.Tally{}
		}
		agg[res.Spec.Module].Merge(res.Tally)
	}
	var out []ModuleCriticality
	for _, mod := range faults.AllModules() {
		t, ok := agg[mod]
		if !ok {
			continue
		}
		size := rtl.ModuleBits(mod)
		mc := ModuleCriticality{
			Module: mod, Size: size,
			AVFSDC: t.AVFSDC(), AVFDUE: t.AVFDUE(),
		}
		mc.WeightedSDC = mc.AVFSDC * float64(size)
		mc.WeightedDUE = mc.AVFDUE * float64(size)
		out = append(out, mc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WeightedSDC > out[j].WeightedSDC })
	return out
}

// EvalConfig controls the software phase.
type EvalConfig struct {
	Injections int // per application per model; default 500
	Seed       uint64
	Workers    int

	// NoPrune / NoCollapse disable the software campaign accelerator
	// layers (dead-site liveness pruning, fault-equivalence collapsing)
	// for every campaign of the evaluation; see swfi.Campaign. Results
	// are bit-identical either way.
	NoPrune    bool
	NoCollapse bool

	// NoFastPath forces the emulator's Tier-0 reference interpreter for
	// every campaign of the evaluation; see swfi.Campaign.NoFastPath.
	// Results are bit-identical either way.
	NoFastPath bool

	// Progress, when non-nil, receives injection-level progress
	// aggregated over all campaigns of the evaluation. It may be called
	// concurrently and done values may arrive out of order; keep a
	// running maximum.
	Progress func(done, total int)
}

func (c *EvalConfig) defaults() {
	if c.Injections == 0 {
		c.Injections = 500
	}
}

// AppEvaluation is one Table III row: the PVF under the naive bit-flip
// model and under the RTL syndrome model.
type AppEvaluation struct {
	Name, Domain, Size string
	BitFlip            *swfi.Result
	Syndrome           *swfi.Result
}

// Underestimation is the paper's headline ratio: how much the bit-flip
// model understates the syndrome PVF (§VI reports up to 48%).
func (e *AppEvaluation) Underestimation() float64 {
	if e.Syndrome.PVF() == 0 {
		return 0
	}
	return (e.Syndrome.PVF() - e.BitFlip.PVF()) / e.Syndrome.PVF()
}

// EvaluateHPC runs both fault models over the workloads (Fig. 10).
func EvaluateHPC(db *syndrome.DB, workloads []*apps.Workload, cfg EvalConfig) ([]*AppEvaluation, error) {
	return EvaluateHPCCtx(context.Background(), db, workloads, cfg)
}

// EvaluateHPCCtx is EvaluateHPC with cancellation and aggregated
// injection-level progress via cfg.Progress.
func EvaluateHPCCtx(ctx context.Context, db *syndrome.DB, workloads []*apps.Workload, cfg EvalConfig) ([]*AppEvaluation, error) {
	cfg.defaults()
	total := len(workloads) * 2 * cfg.Injections
	base := 0
	progress := func() func(done, total int) {
		if cfg.Progress == nil {
			return nil
		}
		off := base
		return func(done, _ int) { cfg.Progress(off+done, total) }
	}
	var out []*AppEvaluation
	for i, w := range workloads {
		// Both fault models replay the same workload, so they share one
		// golden run and checkpoint trace.
		prep, err := swfi.PrepareWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", w.Name, err)
		}
		flip, err := swfi.RunCtx(ctx, swfi.Campaign{
			Workload: w, Model: swfi.ModelBitFlip, Prepared: prep,
			Injections: cfg.Injections, Seed: cfg.Seed + uint64(i)*2, Workers: cfg.Workers,
			NoPrune: cfg.NoPrune, NoCollapse: cfg.NoCollapse, NoFastPath: cfg.NoFastPath,
			Progress: progress(),
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s bit-flip: %w", w.Name, err)
		}
		base += cfg.Injections
		syn, err := swfi.RunCtx(ctx, swfi.Campaign{
			Workload: w, Model: swfi.ModelSyndrome, DB: db, Prepared: prep,
			Injections: cfg.Injections, Seed: cfg.Seed + uint64(i)*2 + 1, Workers: cfg.Workers,
			NoPrune: cfg.NoPrune, NoCollapse: cfg.NoCollapse, NoFastPath: cfg.NoFastPath,
			Progress: progress(),
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s syndrome: %w", w.Name, err)
		}
		base += cfg.Injections
		out = append(out, &AppEvaluation{
			Name: w.Name, Domain: w.Domain, Size: w.Size,
			BitFlip: flip, Syndrome: syn,
		})
	}
	return out, nil
}

// CNNEvaluation is the CNN section of Table III plus the t-MxM model and
// the critical-SDC analysis of §VI.
type CNNEvaluation struct {
	Name     string
	BitFlip  *swfi.CNNResult
	Syndrome *swfi.CNNResult
	Tile     *swfi.CNNResult
}

// EvaluateCNN runs the three fault models over one network.
func EvaluateCNN(db *syndrome.DB, name string, net *cnn.Network, input []float32,
	critical func(a, b []float32) bool, cfg EvalConfig) (*CNNEvaluation, error) {
	return EvaluateCNNCtx(context.Background(), db, name, net, input, critical, cfg)
}

// EvaluateCNNCtx is EvaluateCNN with cancellation and aggregated
// injection-level progress via cfg.Progress.
func EvaluateCNNCtx(ctx context.Context, db *syndrome.DB, name string, net *cnn.Network, input []float32,
	critical func(a, b []float32) bool, cfg EvalConfig) (*CNNEvaluation, error) {
	cfg.defaults()
	out := &CNNEvaluation{Name: name}
	// All three fault models replay the same network/input pair, so they
	// share one golden run and checkpoint trace.
	prep, err := swfi.PrepareCNN(net, input)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	total := 3 * cfg.Injections
	base := 0
	run := func(model swfi.CNNModel, seed uint64) (*swfi.CNNResult, error) {
		var progress func(done, total int)
		if cfg.Progress != nil {
			off := base
			progress = func(done, _ int) { cfg.Progress(off+done, total) }
		}
		res, err := swfi.RunCNNCtx(ctx, swfi.CNNCampaign{
			Net: net, Input: input, Model: model, DB: db, Prepared: prep,
			Injections: cfg.Injections, Seed: seed, Workers: cfg.Workers,
			NoPrune: cfg.NoPrune, NoCollapse: cfg.NoCollapse, NoFastPath: cfg.NoFastPath,
			Critical: critical, Progress: progress,
		})
		if err == nil {
			base += cfg.Injections
		}
		return res, err
	}
	if out.BitFlip, err = run(swfi.CNNBitFlip, cfg.Seed+11); err != nil {
		return nil, err
	}
	if out.Syndrome, err = run(swfi.CNNSyndrome, cfg.Seed+12); err != nil {
		return nil, err
	}
	if out.Tile, err = run(swfi.CNNTile, cfg.Seed+13); err != nil {
		return nil, err
	}
	return out, nil
}

// FITEstimate combines a module's size-weighted AVF with a raw per-bit
// fault rate into a module-level FIT contribution — the evaluation the
// paper defers to future work for lack of public technology data ("the
// modules AVF should be weighted with the module relative size ... a more
// accurate evaluation would consider the fault rate of the different
// modules", §V-B/§VII). rawFITPerBit is the assumed technology FIT per
// flip-flop (from beam tests or vendor data).
type FITEstimate struct {
	Module faults.Module
	FFs    int
	SDCFIT float64
	DUEFIT float64
}

// EstimateFIT computes per-module FIT contributions.
func (c *Characterization) EstimateFIT(rawFITPerBit float64) []FITEstimate {
	var out []FITEstimate
	for _, mc := range c.RankModules() {
		out = append(out, FITEstimate{
			Module: mc.Module,
			FFs:    mc.Size,
			SDCFIT: rawFITPerBit * float64(mc.Size) * mc.AVFSDC,
			DUEFIT: rawFITPerBit * float64(mc.Size) * mc.AVFDUE,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SDCFIT > out[j].SDCFIT })
	return out
}
