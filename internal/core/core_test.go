package core

import (
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/swfi"
)

// smallCharacterization runs a reduced RTL phase once for all core tests.
var cachedChar *Characterization

func smallCharacterization(t *testing.T) *Characterization {
	t.Helper()
	if cachedChar != nil {
		return cachedChar
	}
	c, err := Characterize(CharacterizeConfig{
		FaultsPerCampaign: 300,
		TMXMFaults:        400,
		Seed:              99,
		Ops:               []isa.Opcode{isa.OpFADD, isa.OpFFMA, isa.OpIADD, isa.OpFSIN, isa.OpGLD},
		Ranges:            []faults.InputRange{faults.RangeMedium},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedChar = c
	return c
}

func TestCharacterizeBuildsAllCampaigns(t *testing.T) {
	c := smallCharacterization(t)
	// FADD/FFMA: FP32+Sched+Pipe = 3 each; IADD: 3; FSIN: 4; GLD: 2.
	if got := len(c.Micro); got != 15 {
		t.Errorf("micro campaigns = %d, want 15", got)
	}
	// t-MxM: 2 modules x 3 kinds.
	if got := len(c.TMXM); got != 6 {
		t.Errorf("t-MxM campaigns = %d, want 6", got)
	}
	if len(c.DB.Entries) != 15 || len(c.DB.TMXM) != 6 {
		t.Errorf("DB entries %d/%d", len(c.DB.Entries), len(c.DB.TMXM))
	}
}

func TestAVFTableShape(t *testing.T) {
	c := smallCharacterization(t)
	rows := c.AVFTable()
	if len(rows) != 15 {
		t.Fatalf("AVF rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SDCSingle < 0 || r.SDCSingle > 1 || r.DUE < 0 || r.DUE > 1 {
			t.Errorf("row %s/%s out of range: %+v", r.Module, r.Op, r)
		}
	}
	// The FP32 unit must register SDCs for FFMA (its own instruction).
	found := false
	for _, r := range rows {
		if r.Module == faults.ModFP32 && r.Op == isa.OpFFMA && r.SDCSingle+r.SDCMulti > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no FP32/FFMA SDCs in AVF table")
	}
}

func TestRankModulesOrdering(t *testing.T) {
	c := smallCharacterization(t)
	ranked := c.RankModules()
	if len(ranked) != 6 {
		t.Fatalf("ranked %d modules", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].WeightedSDC < ranked[i].WeightedSDC {
			t.Error("ranking not sorted by weighted SDC")
		}
	}
	// §V-B: functional units (large, high AVF) should rank among the top
	// SDC sources.
	if ranked[0].Module == faults.ModSFUCtl {
		t.Errorf("tiny SFU controller ranked first: %+v", ranked[0])
	}
}

func TestEvaluateHPCUnderestimation(t *testing.T) {
	c := smallCharacterization(t)
	evals, err := EvaluateHPC(c.DB, []*apps.Workload{apps.NewMxM(16), apps.NewHotspot(16, 6)},
		EvalConfig{Injections: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 2 {
		t.Fatalf("evals = %d", len(evals))
	}
	for _, e := range evals {
		t.Logf("%s: bitflip=%.2f syndrome=%.2f under=%.0f%%",
			e.Name, e.BitFlip.PVF(), e.Syndrome.PVF(), 100*e.Underestimation())
		if e.BitFlip.Tally.Injections != 80 {
			t.Errorf("%s: wrong injection count", e.Name)
		}
	}
}

func TestEvaluateCNNAllModels(t *testing.T) {
	c := smallCharacterization(t)
	eval, err := EvaluateCNN(c.DB, "LeNetLite", cnn.NewLeNetLite(), cnn.LeNetInput(0),
		swfi.LeNetCritical, EvalConfig{Injections: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LeNet: flip=%.2f syn=%.2f tile=%.2f (tile crit share %.2f)",
		eval.BitFlip.PVF(), eval.Syndrome.PVF(), eval.Tile.PVF(), eval.Tile.CriticalShare())
	// §VI: the t-MxM model dominates the single-thread models on LeNET.
	if eval.Tile.PVF() <= eval.BitFlip.PVF() {
		t.Errorf("tile PVF %.2f not above bit-flip %.2f", eval.Tile.PVF(), eval.BitFlip.PVF())
	}
}

func TestCostModel(t *testing.T) {
	cm, err := MeasureCost(apps.NewMxM(16))
	if err != nil {
		t.Fatal(err)
	}
	if cm.RTLCyclesPerSecond <= 0 || cm.RTLMicroCycles == 0 {
		t.Fatalf("RTL throughput not measured: %+v", cm)
	}
	if cm.RTLAppInjectionSeconds() <= 0 {
		t.Error("no RTL extrapolation")
	}
	// The whole point: software injection is orders of magnitude cheaper.
	if cm.RTLAppInjectionSeconds() < cm.SWInjectionSeconds {
		t.Errorf("RTL (%.3fs) not slower than software (%.3fs)",
			cm.RTLAppInjectionSeconds(), cm.SWInjectionSeconds)
	}
	s := cm.Compare(48000)
	if s == "" {
		t.Error("empty comparison")
	}
	t.Log(s)
}

func TestEstimateFIT(t *testing.T) {
	c := smallCharacterization(t)
	ests := c.EstimateFIT(1e-4)
	if len(ests) != 6 {
		t.Fatalf("estimates for %d modules", len(ests))
	}
	for i := 1; i < len(ests); i++ {
		if ests[i-1].SDCFIT < ests[i].SDCFIT {
			t.Error("FIT estimates not sorted")
		}
	}
	for _, e := range ests {
		if e.SDCFIT < 0 || e.DUEFIT < 0 {
			t.Errorf("negative FIT: %+v", e)
		}
		// FIT scales with the raw rate.
		if e.SDCFIT > 1e-4*float64(e.FFs) {
			t.Errorf("FIT exceeds the all-faults bound: %+v", e)
		}
	}
	// Doubling the raw rate doubles every estimate.
	ests2 := c.EstimateFIT(2e-4)
	for i := range ests {
		if ests2[i].SDCFIT != 2*ests[i].SDCFIT {
			t.Error("FIT not linear in the raw rate")
		}
	}
}
