package core

import (
	"fmt"
	"time"

	"gpufi/internal/apps"
	"gpufi/internal/emu"
	"gpufi/internal/kasm"
	"gpufi/internal/mxm"
	"gpufi/internal/rtl"
	"gpufi/internal/swfi"
)

// CostModel quantifies the paper's §VI argument: injecting a statistically
// significant number of faults into a full application at RTL level is
// infeasible (the paper estimates 54 years for its 48,000 injections),
// while the two-level framework needs one bounded RTL characterisation
// plus cheap software injections.
type CostModel struct {
	// RTLCyclesPerSecond is the measured RTL simulation throughput.
	RTLCyclesPerSecond float64
	// RTLMicroCycles is the cycle cost of one micro-benchmark run.
	RTLMicroCycles uint64
	// SWInjectionSeconds is the measured wall time of one software
	// injection run of the reference application.
	SWInjectionSeconds float64
	// AppThreadInstrs is the application's dynamic thread-instruction
	// count, used to extrapolate its hypothetical RTL cost.
	AppThreadInstrs uint64
	// MicroThreadInstrs is the micro-benchmark's dynamic count.
	MicroThreadInstrs uint64
}

// MeasureCost benchmarks the RTL machine and the software injector on the
// reference workload to populate a CostModel. It is the one deliberately
// wall-clock-dependent routine in the library (results feed reports, not
// experiments).
func MeasureCost(w *apps.Workload) (*CostModel, error) {
	prog, err := mxm.Build(mxm.Tile)
	if err != nil {
		return nil, err
	}
	a, b := mxm.TileInputs(mxm.TileRandom, 1)
	m := rtl.New()

	const reps = 20
	start := time.Now()
	var cycles uint64
	for i := 0; i < reps; i++ {
		g := mxm.Pack(a, b, mxm.Tile)
		if err := m.Run(prog, 1, mxm.BlockThreads, g, mxm.SharedWords, 10_000_000); err != nil {
			return nil, err
		}
		cycles += m.Cycles()
	}
	rtlSecs := time.Since(start).Seconds()

	microProfile, err := microInstrCount(prog)
	if err != nil {
		return nil, err
	}

	appProfile, err := swfi.Profile(w)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := w.Execute(emu.Hooks{}); err != nil {
		return nil, err
	}
	swSecs := time.Since(start).Seconds()

	return &CostModel{
		RTLCyclesPerSecond: float64(cycles) / rtlSecs,
		RTLMicroCycles:     cycles / reps,
		SWInjectionSeconds: swSecs,
		AppThreadInstrs:    appProfile.Total(),
		MicroThreadInstrs:  microInstrTotal(microProfile),
	}, nil
}

func microInstrCount(prog *kasm.Program) (swfi.Counts, error) {
	a, b := mxm.TileInputs(mxm.TileRandom, 1)
	g := mxm.Pack(a, b, mxm.Tile)
	var counts swfi.Counts
	_, err := emu.Run(&emu.Launch{
		Prog: prog, Grid: 1, Block: mxm.BlockThreads,
		Global: g, SharedWords: mxm.SharedWords,
		Hooks: emu.Hooks{Post: func(ev *emu.Event) {
			counts[ev.Instr.Op] += uint64(ev.ActiveCount())
		}},
	})
	return counts, err
}

func microInstrTotal(c swfi.Counts) uint64 { return c.Total() }

// RTLAppInjectionSeconds extrapolates the RTL cost of running the full
// application once (one injection needs one full run).
func (c *CostModel) RTLAppInjectionSeconds() float64 {
	if c.MicroThreadInstrs == 0 || c.RTLCyclesPerSecond == 0 {
		return 0
	}
	scale := float64(c.AppThreadInstrs) / float64(c.MicroThreadInstrs)
	return float64(c.RTLMicroCycles) * scale / c.RTLCyclesPerSecond
}

// RTLAppInjectionSecondsWith discounts the extrapolated per-injection RTL
// cost by a measured campaign replay speedup (checkpoint fast-forward,
// dead-site pruning and fault-equivalence collapsing, all folded into
// Telemetry.ReplaySpeedup): the engine only simulates 1/speedup of each
// faulty run's cycles on average.
func (c *CostModel) RTLAppInjectionSecondsWith(replaySpeedup float64) float64 {
	if replaySpeedup < 1 {
		replaySpeedup = 1
	}
	return c.RTLAppInjectionSeconds() / replaySpeedup
}

// CompareWith renders the §VI comparison for n injections, with the RTL
// side credited a measured campaign replay speedup (which already folds
// in fast-forward, pruning and equivalence collapsing — collapsed faults
// contribute their replay cost to SkippedCycles at zero SimCycles).
func (c *CostModel) CompareWith(n int, replaySpeedup float64) string {
	rtlTotal := c.RTLAppInjectionSecondsWith(replaySpeedup) * float64(n)
	swTotal := c.SWInjectionSeconds * float64(n)
	return fmt.Sprintf(
		"RTL (%.1fx engine speedup): %.1f s/injection -> %.1f hours for %d injections; software: %.3f s/injection -> %.2f hours; speedup %.0fx",
		replaySpeedup, c.RTLAppInjectionSecondsWith(replaySpeedup), rtlTotal/3600, n,
		c.SWInjectionSeconds, swTotal/3600,
		safeDiv(rtlTotal, swTotal))
}

// Compare renders the §VI comparison for a campaign of n injections.
func (c *CostModel) Compare(n int) string {
	rtlTotal := c.RTLAppInjectionSeconds() * float64(n)
	swTotal := c.SWInjectionSeconds * float64(n)
	return fmt.Sprintf(
		"RTL: %.1f s/injection -> %.1f hours for %d injections; software: %.3f s/injection -> %.2f hours; speedup %.0fx",
		c.RTLAppInjectionSeconds(), rtlTotal/3600, n,
		c.SWInjectionSeconds, swTotal/3600,
		safeDiv(rtlTotal, swTotal))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
