// Package swfi is the software-level fault injector — the analog of the
// paper's modified NVBitFI (§IV-B). It instruments applications running on
// the functional emulator at the instruction level: it profiles the
// executed SASS opcodes (Fig. 3), picks a random dynamic instruction, and
// corrupts its output either with the naive single/double bit-flip model
// or with an RTL syndrome drawn from the fault-model database, then
// classifies the run as Masked, SDC or DUE and accumulates the Program
// Vulnerability Factor (Fig. 10 / Table III).
package swfi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"gpufi/internal/apps"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

// FaultModel selects the corruption applied to the selected instruction's
// output value.
type FaultModel uint8

// Fault models.
const (
	ModelBitFlip       FaultModel = iota // single bit-flip (the naive baseline)
	ModelDoubleBitFlip                   // double bit-flip
	ModelSyndrome                        // RTL relative error via Eq. 1 (power law)
	ModelSyndromeEmp                     // RTL relative error from the raw reservoir
)

// String implements fmt.Stringer.
func (m FaultModel) String() string {
	switch m {
	case ModelBitFlip:
		return "single bit-flip"
	case ModelDoubleBitFlip:
		return "double bit-flip"
	case ModelSyndrome:
		return "relative error (power law)"
	case ModelSyndromeEmp:
		return "relative error (empirical)"
	default:
		return fmt.Sprintf("FaultModel(%d)", uint8(m))
	}
}

// NeedsDB reports whether the model draws from the syndrome database.
func (m FaultModel) NeedsDB() bool { return m == ModelSyndrome || m == ModelSyndromeEmp }

// Injectable reports whether the software injector corrupts outputs of
// this opcode: the RTL-characterised instructions that produce a data
// value (§VI: "we inject only in the 12 opcodes we characterize with RTL
// fault injection"; BRA produces no register output and is therefore not
// a software injection target).
func Injectable(op isa.Opcode) bool {
	return op.Characterized() && op != isa.OpBRA
}

// Profile executes the workload once and returns its dynamic thread-level
// instruction histogram — the data behind Fig. 3.
func Profile(w *apps.Workload) (Counts, error) {
	var counts Counts
	hooks := emu.Hooks{Post: func(ev *emu.Event) {
		counts[ev.Instr.Op] += uint64(ev.ActiveCount())
	}}
	if _, err := w.Execute(hooks); err != nil {
		return counts, err
	}
	return counts, nil
}

// Counts is a per-opcode dynamic instruction histogram.
type Counts [isa.NumOpcodes]uint64

// Total returns all counted thread-instructions.
func (c Counts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// InjectableTotal returns the thread-instructions eligible for injection.
func (c Counts) InjectableTotal() uint64 {
	var t uint64
	for op, v := range c {
		if Injectable(isa.Opcode(op)) {
			t += v
		}
	}
	return t
}

// CategoryShares buckets the histogram into the paper's Fig. 3 categories
// (FP32, INT32, SFU, Control, Others) as fractions of the total.
func (c Counts) CategoryShares() map[isa.Category]float64 {
	totals := map[isa.Category]uint64{}
	var all uint64
	for op, v := range c {
		totals[isa.Opcode(op).Category()] += v
		all += v
	}
	out := map[isa.Category]float64{}
	if all == 0 {
		return out
	}
	for cat, v := range totals {
		out[cat] = float64(v) / float64(all)
	}
	return out
}

// injector corrupts the output of the target-th injectable dynamic
// thread-instruction.
type injector struct {
	target  uint64
	counter uint64
	fired   bool
	model   FaultModel
	db      *syndrome.DB
	focus   *faults.Module // nil = module cocktail
	rng     *stats.RNG

	// record of what was injected, for reports
	op      isa.Opcode
	relErr  float64
	oldBits uint32
	newBits uint32
}

func (in *injector) post(ev *emu.Event) {
	if in.fired || !Injectable(ev.Instr.Op) {
		return
	}
	n := uint64(ev.ActiveCount())
	if in.counter+n <= in.target {
		in.counter += n
		return
	}
	lane := ev.NthActiveLane(int(in.target - in.counter))
	in.counter += n
	in.fired = true
	in.op = ev.Instr.Op
	old, ok := ev.DstValue(lane)
	if !ok {
		return // defensive: Injectable ops all produce a value
	}
	in.oldBits = old

	var corrupted uint32
	switch in.model {
	case ModelBitFlip:
		corrupted = old ^ 1<<uint(in.rng.Intn(32))
	case ModelDoubleBitFlip:
		b1 := in.rng.Intn(32)
		b2 := (b1 + 1 + in.rng.Intn(31)) % 32
		corrupted = old ^ 1<<uint(b1) ^ 1<<uint(b2)
	default:
		rng := faults.ClassifyMagnitude(operandMagnitude(ev, lane))
		mode := syndrome.SamplePowerLaw
		if in.model == ModelSyndromeEmp {
			mode = syndrome.SampleEmpirical
		}
		var rel float64
		var found bool
		if in.focus != nil {
			rel, found = in.db.SampleFrom(ev.Instr.Op, rng, *in.focus, mode, in.rng)
		} else {
			rel, found = in.db.Sample(ev.Instr.Op, rng, mode, in.rng)
		}
		if !found {
			rel = 1.0 // uncharacterised pool: the canonical 100% syndrome
		}
		in.relErr = rel
		if ev.Instr.Op.IsFloat() {
			corrupted = syndrome.ApplyRelErrF32(old, rel, in.rng.Bool())
		} else {
			corrupted = syndrome.ApplyRelErrI32(old, rel, in.rng.Bool())
		}
	}
	in.newBits = corrupted
	ev.CorruptDst(lane, corrupted)
}

// operandMagnitude estimates the instruction's input scale for syndrome
// range selection (§V-A: inputs below the S bound take the S syndrome,
// above the L bound the L syndrome, M otherwise). Memory operations use
// the transferred value.
func operandMagnitude(ev *emu.Event, lane int) float64 {
	op := ev.Instr.Op
	if op.IsMemory() {
		v, _ := ev.DstValue(lane)
		if op.IsFloat() {
			return math.Abs(float64(math.Float32frombits(v)))
		}
		return math.Abs(float64(int32(v)))
	}
	mag := func(bits uint32) float64 {
		if op.IsFloat() {
			f := float64(math.Float32frombits(bits))
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return 0
			}
			return math.Abs(f)
		}
		return math.Abs(float64(int32(bits)))
	}
	a := mag(ev.SrcA(lane))
	if op.NumSrcs() >= 2 {
		if b := mag(ev.SrcB(lane)); b > a {
			a = b
		}
	}
	return a
}

// Campaign describes one software injection campaign on an HPC workload.
type Campaign struct {
	Workload   *apps.Workload
	Model      FaultModel
	DB         *syndrome.DB // required by syndrome models
	Injections int
	Seed       uint64
	Workers    int

	// ModuleFocus restricts syndrome sampling to one module's pools
	// instead of the cross-module cocktail — the paper's "focus the
	// software fault injection in just one module" mode (§VI). Nil uses
	// the cocktail.
	ModuleFocus *faults.Module

	// RecordInjections keeps one InjectionRecord per run in the result
	// for auditing what was injected where.
	RecordInjections bool

	// NoFastForward disables the golden-prefix checkpoint optimisation and
	// re-executes every injection run from dynamic instruction zero with
	// hooks armed throughout. Results are bit-identical either way; the
	// flag exists for regression tests and benchmarks of the fast-forward
	// path itself.
	NoFastForward bool

	// Prepared, when non-nil, supplies a ready-made golden run, profile
	// and checkpoint trace for Workload (from PrepareWorkload), letting
	// several campaigns on the same workload share one preparation. It is
	// ignored when NoFastForward is set.
	Prepared *Prepared

	// Tolerance relaxes the SDC criterion: outputs are compared as
	// float32 values with this relative tolerance instead of bitwise
	// (the DESIGN.md §6 ablation; Rodinia-style golden compares use 0 =
	// exact).
	Tolerance float64

	// Progress, when non-nil, is called after every completed injection
	// run with the number of completed runs and the campaign total. It is
	// called concurrently from worker goroutines and done values may
	// arrive out of order; consumers should keep a running maximum.
	Progress func(done, total int)
}

// InjectionRecord audits one injection run.
type InjectionRecord struct {
	Op      isa.Opcode
	RelErr  float64 // 0 for bit-flip models
	OldBits uint32
	NewBits uint32
	Outcome faults.Outcome
}

// Result aggregates one campaign.
type Result struct {
	Campaign   Campaign
	Tally      faults.Tally
	Profile    Counts
	Injectable uint64
	Records    []InjectionRecord // when Campaign.RecordInjections

	// SimInstrs counts the thread-instructions actually simulated across
	// all injection runs; SkippedInstrs counts those the fast-forward
	// provably avoided (write-set launches plus restored snapshot
	// prefixes). (SimInstrs+SkippedInstrs)/SimInstrs is the campaign's
	// effective replay speedup. Both are zero on the NoFastForward path.
	SimInstrs     uint64
	SkippedInstrs uint64
}

// PVF is the SDC program vulnerability factor: the probability that a
// fault which reached an ISA-visible state corrupts the program output.
func (r *Result) PVF() float64 { return r.Tally.AVFSDC() }

// PVFCI returns the 95% Wilson confidence interval of the PVF.
func (r *Result) PVFCI() (lo, hi float64) {
	return stats.WilsonCI(r.Tally.SDCs(), r.Tally.Injections, 1.96)
}

// ErrNoDB is returned when a syndrome model runs without a database.
var ErrNoDB = errors.New("swfi: syndrome model requires a fault-model database")

// Run executes the campaign: one golden run, one profiling run, then
// Injections instrumented runs with one corrupted instruction each.
func Run(c Campaign) (*Result, error) {
	return RunCtx(context.Background(), c)
}

// RunCtx is Run with cancellation: when ctx is cancelled the workers stop
// at the next injection boundary and the context error is returned.
// Per-injection RNG streams are derived from Campaign.Seed and the
// injection index, so re-running the same campaign — whole or after an
// interruption — reproduces every injection bit-identically.
func RunCtx(ctx context.Context, c Campaign) (*Result, error) {
	if c.Model.NeedsDB() && c.DB == nil {
		return nil, ErrNoDB
	}
	// Fast-forward preparation: the golden prefix of every injection run
	// is bit-identical to the golden run, so it is recorded once into
	// checkpoints and write-sets and restored instead of re-simulated.
	// With NoFastForward the golden and profiling runs execute plainly,
	// exactly as before the optimisation.
	var (
		golden  []uint32
		profile Counts
		tr      *replay.Trace
	)
	switch {
	case c.NoFastForward:
		var err error
		golden, err = c.Workload.Execute(emu.Hooks{})
		if err != nil {
			return nil, fmt.Errorf("swfi: golden run of %s failed: %w", c.Workload.Name, err)
		}
		if profile, err = Profile(c.Workload); err != nil {
			return nil, err
		}
	case c.Prepared != nil:
		golden, profile, tr = c.Prepared.golden, c.Prepared.profile, c.Prepared.trace
	default:
		prep, err := PrepareWorkload(c.Workload)
		if err != nil {
			return nil, err
		}
		golden, profile, tr = prep.golden, prep.profile, prep.trace
	}
	injectable := profile.InjectableTotal()
	if injectable == 0 {
		return nil, fmt.Errorf("swfi: %s executes no injectable instructions", c.Workload.Name)
	}

	res := &Result{Campaign: c, Profile: profile, Injectable: injectable}
	var records []InjectionRecord
	if c.RecordInjections {
		records = make([]InjectionRecord, c.Injections)
	}
	workers := c.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// Worker w exclusively runs injections i ≡ w (mod workers), so pool
	// i%workers gives each worker a private reusable arena.
	var pools []*replay.Pool
	if tr != nil {
		pools = make([]*replay.Pool, workers)
		for i := range pools {
			pools[i] = &replay.Pool{}
		}
	}
	var simInstrs, skippedInstrs atomic.Uint64
	tallies, completed := parallelInjectionsIdx(ctx, c.Injections, workers, c.Seed, c.Progress, func(i int, r *stats.RNG) faults.Outcome {
		in := &injector{
			target: r.Uint64() % injectable,
			model:  c.Model,
			db:     c.DB,
			focus:  c.ModuleFocus,
			rng:    r,
		}
		var out []uint32
		var err error
		if tr != nil {
			p := replay.NewPlayer(tr, in.target, emu.Hooks{Post: in.post},
				func(countDone uint64) { in.counter = countDone },
				func() bool { return in.fired },
				pools[i%workers])
			out, err = c.Workload.ExecuteWith(p)
			simInstrs.Add(p.Live.DynThreadInstrs)
			skippedInstrs.Add(p.Skipped)
		} else {
			out, err = c.Workload.Execute(emu.Hooks{Post: in.post})
		}
		var outcome faults.Outcome
		switch {
		case err != nil:
			outcome = faults.DUE
		case !outputsMatch(golden, out, c.Tolerance):
			outcome = faults.SDC
		default:
			outcome = faults.Masked
		}
		if records != nil {
			records[i] = InjectionRecord{
				Op: in.op, RelErr: in.relErr,
				OldBits: in.oldBits, NewBits: in.newBits,
				Outcome: outcome,
			}
		}
		return outcome
	})
	// Cancellation that lands after the last injection finished does not
	// void the campaign: every run completed, so return the result.
	if err := ctx.Err(); err != nil && completed != c.Injections {
		return nil, err
	}
	res.Tally = tallies
	res.Records = records
	res.SimInstrs = simInstrs.Load()
	res.SkippedInstrs = skippedInstrs.Load()
	return res, nil
}

// parallelInjectionsIdx fans the injection loop across workers with
// deterministic per-injection RNG streams, passing the injection index.
// Workers stop at injection boundaries once ctx is cancelled. It returns
// the merged tally and the number of injections that completed, so
// callers can tell a cancelled campaign from a finished one.
func parallelInjectionsIdx(ctx context.Context, n, workers int, seed uint64,
	progress func(done, total int), one func(int, *stats.RNG) faults.Outcome) (faults.Tally, int) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	partial := make([]faults.Tally, workers)
	var completed atomic.Int64
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					break
				}
				r := stats.NewRNG(seed ^ 0x9E3779B97F4A7C15*uint64(i+1))
				partial[w].Add(one(i, r), 1)
				d := int(completed.Add(1))
				if progress != nil {
					progress(d, n)
				}
			}
			done <- w
		}(w)
	}
	var out faults.Tally
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, t := range partial {
		out.Merge(t)
	}
	return out, int(completed.Load())
}

func bitsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// outputsMatch compares outputs bitwise (tol == 0) or as float32 values
// within a relative tolerance.
func outputsMatch(golden, out []uint32, tol float64) bool {
	if tol == 0 {
		return bitsEqual(golden, out)
	}
	if len(golden) != len(out) {
		return false
	}
	for i := range golden {
		if golden[i] == out[i] {
			continue
		}
		g := float64(math.Float32frombits(golden[i]))
		f := float64(math.Float32frombits(out[i]))
		// Special values only match bitwise (handled above): a NaN or ±Inf
		// on either side is an SDC, never "within tolerance" — an Inf
		// golden would otherwise produce an Inf error bound that admits
		// any finite faulty value.
		if math.IsNaN(g) || math.IsNaN(f) || math.IsInf(g, 0) || math.IsInf(f, 0) {
			return false
		}
		if math.Abs(f-g) > tol*(1+math.Abs(g)) {
			return false
		}
	}
	return true
}
