// Package swfi is the software-level fault injector — the analog of the
// paper's modified NVBitFI (§IV-B). It instruments applications running on
// the functional emulator at the instruction level: it profiles the
// executed SASS opcodes (Fig. 3), picks a random dynamic instruction, and
// corrupts its output either with the naive single/double bit-flip model
// or with an RTL syndrome drawn from the fault-model database, then
// classifies the run as Masked, SDC or DUE and accumulates the Program
// Vulnerability Factor (Fig. 10 / Table III).
package swfi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"gpufi/internal/apps"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

// FaultModel selects the corruption applied to the selected instruction's
// output value.
type FaultModel uint8

// Fault models.
const (
	ModelBitFlip       FaultModel = iota // single bit-flip (the naive baseline)
	ModelDoubleBitFlip                   // double bit-flip
	ModelSyndrome                        // RTL relative error via Eq. 1 (power law)
	ModelSyndromeEmp                     // RTL relative error from the raw reservoir
)

// String implements fmt.Stringer.
func (m FaultModel) String() string {
	switch m {
	case ModelBitFlip:
		return "single bit-flip"
	case ModelDoubleBitFlip:
		return "double bit-flip"
	case ModelSyndrome:
		return "relative error (power law)"
	case ModelSyndromeEmp:
		return "relative error (empirical)"
	default:
		return fmt.Sprintf("FaultModel(%d)", uint8(m))
	}
}

// NeedsDB reports whether the model draws from the syndrome database.
func (m FaultModel) NeedsDB() bool { return m == ModelSyndrome || m == ModelSyndromeEmp }

// Injectable reports whether the software injector corrupts outputs of
// this opcode: the RTL-characterised instructions that produce a data
// value (§VI: "we inject only in the 12 opcodes we characterize with RTL
// fault injection"; BRA produces no register output and is therefore not
// a software injection target).
func Injectable(op isa.Opcode) bool {
	return op.Characterized() && op != isa.OpBRA
}

// Profile executes the workload once and returns its dynamic thread-level
// instruction histogram — the data behind Fig. 3.
func Profile(w *apps.Workload) (Counts, error) {
	var counts Counts
	hooks := emu.Hooks{Post: func(ev *emu.Event) {
		counts[ev.Instr.Op] += uint64(ev.ActiveCount())
	}}
	if _, err := w.Execute(hooks); err != nil {
		return counts, err
	}
	return counts, nil
}

// Counts is a per-opcode dynamic instruction histogram.
type Counts [isa.NumOpcodes]uint64

// Total returns all counted thread-instructions.
func (c Counts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// InjectableTotal returns the thread-instructions eligible for injection.
func (c Counts) InjectableTotal() uint64 {
	var t uint64
	for op, v := range c {
		if Injectable(isa.Opcode(op)) {
			t += v
		}
	}
	return t
}

// CategoryShares buckets the histogram into the paper's Fig. 3 categories
// (FP32, INT32, SFU, Control, Others) as fractions of the total.
func (c Counts) CategoryShares() map[isa.Category]float64 {
	totals := map[isa.Category]uint64{}
	var all uint64
	for op, v := range c {
		totals[isa.Opcode(op).Category()] += v
		all += v
	}
	out := map[isa.Category]float64{}
	if all == 0 {
		return out
	}
	for cat, v := range totals {
		out[cat] = float64(v) / float64(all)
	}
	return out
}

// injector corrupts the output of the target-th injectable dynamic
// thread-instruction.
type injector struct {
	target  uint64
	counter uint64
	fired   bool
	model   FaultModel
	db      *syndrome.DB
	focus   *faults.Module // nil = module cocktail
	rng     *stats.RNG

	// record of what was injected, for reports
	op      isa.Opcode
	relErr  float64
	oldBits uint32
	newBits uint32
}

func (in *injector) post(ev *emu.Event) {
	if in.fired {
		// Already fired — and a fresh exec (the launch's next block, or a
		// NoFastForward re-run) re-arms hooks, so disarm again here.
		ev.Disarm()
		return
	}
	if !Injectable(ev.Instr.Op) {
		return
	}
	n := uint64(ev.ActiveCount())
	if in.counter+n <= in.target {
		in.counter += n
		return
	}
	lane := ev.NthActiveLane(int(in.target - in.counter))
	in.counter += n
	in.fired = true
	in.op = ev.Instr.Op
	old, ok := ev.DstValue(lane)
	if !ok {
		ev.Disarm()
		return // defensive: Injectable ops all produce a value
	}
	in.oldBits = old

	var mag float64
	if in.model.NeedsDB() {
		mag = operandMagnitude(ev, lane)
	}
	corrupted, rel := drawCorruption(ev.Instr.Op, old, mag, in.model, in.db, in.focus, in.rng)
	in.relErr = rel
	in.newBits = corrupted
	ev.CorruptDst(lane, corrupted)
	// The fault has fired; every later call would hit the in.fired guard
	// above and return. Telling the emulator lets the post-fault tail run
	// hook-free on the fast path.
	ev.Disarm()
}

// drawCorruption makes the corruption draws of a fired injection: given a
// site's opcode, golden output bits and operand magnitude, it consumes
// exactly the RNG draws injector.post would and returns the corrupted
// value and relative error. The dead-site prune path calls it with the
// liveness index's per-site record to reproduce — without simulating —
// the injection an executed run would have made.
func drawCorruption(op isa.Opcode, old uint32, mag float64, model FaultModel,
	db *syndrome.DB, focus *faults.Module, r *stats.RNG) (newBits uint32, relErr float64) {
	switch model {
	case ModelBitFlip:
		return old ^ 1<<uint(r.Intn(32)), 0
	case ModelDoubleBitFlip:
		b1 := r.Intn(32)
		b2 := (b1 + 1 + r.Intn(31)) % 32
		return old ^ 1<<uint(b1) ^ 1<<uint(b2), 0
	default:
		rng := faults.ClassifyMagnitude(mag)
		mode := syndrome.SamplePowerLaw
		if model == ModelSyndromeEmp {
			mode = syndrome.SampleEmpirical
		}
		var rel float64
		var found bool
		if focus != nil {
			rel, found = db.SampleFrom(op, rng, *focus, mode, r)
		} else {
			rel, found = db.Sample(op, rng, mode, r)
		}
		if !found {
			rel = 1.0 // uncharacterised pool: the canonical 100% syndrome
		}
		if op.IsFloat() {
			return syndrome.ApplyRelErrF32(old, rel, r.Bool()), rel
		}
		return syndrome.ApplyRelErrI32(old, rel, r.Bool()), rel
	}
}

// operandMagnitude estimates the instruction's input scale for syndrome
// range selection (§V-A: inputs below the S bound take the S syndrome,
// above the L bound the L syndrome, M otherwise). Memory operations use
// the transferred value.
func operandMagnitude(ev *emu.Event, lane int) float64 {
	op := ev.Instr.Op
	if op.IsMemory() {
		v, _ := ev.DstValue(lane)
		if op.IsFloat() {
			return math.Abs(float64(math.Float32frombits(v)))
		}
		return math.Abs(float64(int32(v)))
	}
	mag := func(bits uint32) float64 {
		if op.IsFloat() {
			f := float64(math.Float32frombits(bits))
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return 0
			}
			return math.Abs(f)
		}
		return math.Abs(float64(int32(bits)))
	}
	a := mag(ev.SrcA(lane))
	if op.NumSrcs() >= 2 {
		if b := mag(ev.SrcB(lane)); b > a {
			a = b
		}
	}
	return a
}

// Campaign describes one software injection campaign on an HPC workload.
type Campaign struct {
	Workload   *apps.Workload
	Model      FaultModel
	DB         *syndrome.DB // required by syndrome models
	Injections int
	Seed       uint64
	Workers    int

	// ModuleFocus restricts syndrome sampling to one module's pools
	// instead of the cross-module cocktail — the paper's "focus the
	// software fault injection in just one module" mode (§VI). Nil uses
	// the cocktail.
	ModuleFocus *faults.Module

	// RecordInjections keeps one InjectionRecord per run in the result
	// for auditing what was injected where.
	RecordInjections bool

	// NoFastForward disables the golden-prefix checkpoint optimisation and
	// re-executes every injection run from dynamic instruction zero with
	// hooks armed throughout. Results are bit-identical either way; the
	// flag exists for regression tests and benchmarks of the fast-forward
	// path itself. It implies NoPrune and NoCollapse: both layers live on
	// the fast-forward trace.
	NoFastForward bool

	// NoPrune disables dead-site liveness pruning: faults landing on
	// provably dead output sites are then simulated like any other instead
	// of being classified Masked with zero emulator instructions. Results
	// are bit-identical either way.
	NoPrune bool

	// NoCollapse disables fault-equivalence collapsing: injections whose
	// (target instruction, flip mask) pair duplicates an earlier one are
	// then simulated instead of copying the representative's memoized
	// outcome. Results are bit-identical either way. Only the bit-flip
	// models collapse — syndrome corruption draws depend on the faulted
	// value, so equal targets do not imply equal corruptions.
	NoCollapse bool

	// NoFastPath forces the emulator's Tier-0 reference interpreter for
	// every run this campaign issues instead of the pre-decoded Tier-1
	// fast path (emu.Launch.NoFastPath). Results are bit-identical either
	// way; the flag exists for regression comparison and for benchmarking
	// the interpreter tiers themselves.
	NoFastPath bool

	// Prepared, when non-nil, supplies a ready-made golden run, profile
	// and checkpoint trace for Workload (from PrepareWorkload), letting
	// several campaigns on the same workload share one preparation. It is
	// ignored when NoFastForward is set.
	Prepared *Prepared

	// Tolerance relaxes the SDC criterion: outputs are compared as
	// float32 values with this relative tolerance instead of bitwise
	// (the DESIGN.md §6 ablation; Rodinia-style golden compares use 0 =
	// exact).
	Tolerance float64

	// Progress, when non-nil, is called after every completed injection
	// run with the number of completed runs and the campaign total. It is
	// called concurrently from worker goroutines and done values may
	// arrive out of order; consumers should keep a running maximum.
	Progress func(done, total int)
}

// InjectionRecord audits one injection run.
type InjectionRecord struct {
	Op      isa.Opcode
	RelErr  float64 // 0 for bit-flip models
	OldBits uint32
	NewBits uint32
	Outcome faults.Outcome
}

// Result aggregates one campaign.
type Result struct {
	Campaign   Campaign
	Tally      faults.Tally
	Profile    Counts
	Injectable uint64
	Records    []InjectionRecord // when Campaign.RecordInjections

	// SimInstrs counts the thread-instructions actually simulated across
	// all injection runs; SkippedInstrs counts those the fast-forward
	// provably avoided (write-set launches, restored snapshot prefixes,
	// pruned and collapsed runs). (SimInstrs+SkippedInstrs)/SimInstrs is
	// the campaign's effective replay speedup. Both are zero on the
	// NoFastForward path.
	SimInstrs     uint64
	SkippedInstrs uint64

	// PrunedFaults counts injections classified Masked by the dead-site
	// liveness index alone — zero emulator instructions executed.
	// CollapsedFaults counts injections resolved by copying an equivalence
	// class representative's memoized outcome.
	PrunedFaults    uint64
	CollapsedFaults uint64

	// NoReconvergeReason, when non-empty, explains why post-fault
	// reconvergence fast-forward was unavailable for this workload (an
	// impure host reading the arena between launches, e.g. quicksort's
	// host-side partitioning).
	NoReconvergeReason string

	// Elapsed is the campaign's wall-clock time, including preparation.
	// With SimInstrs/SkippedInstrs it yields the interpreter-throughput
	// telemetry (EmuMIPS, EffectiveMIPS) operators watch for
	// interpreter-tier regressions.
	Elapsed time.Duration
}

// EmuMIPS is the emulated-instruction throughput of the campaign:
// simulated thread-instructions per wall-clock microsecond (i.e. millions
// of instructions per second). Zero on the NoFastForward path, where
// sim/skip accounting is off.
func (r *Result) EmuMIPS() float64 { return mips(r.SimInstrs, r.Elapsed) }

// EffectiveMIPS is the virtual throughput including the instructions the
// engine provably avoided simulating (fast-forward, pruning, collapsing):
// (SimInstrs+SkippedInstrs) per wall-clock microsecond.
func (r *Result) EffectiveMIPS() float64 {
	return mips(r.SimInstrs+r.SkippedInstrs, r.Elapsed)
}

func mips(instrs uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(instrs) / d.Seconds() / 1e6
}

// PruneRate is the fraction of injections the dead-site index classified
// without simulation.
func (r *Result) PruneRate() float64 {
	if r.Tally.Injections == 0 {
		return 0
	}
	return float64(r.PrunedFaults) / float64(r.Tally.Injections)
}

// CollapseRate is the fraction of injections resolved by equivalence
// collapsing.
func (r *Result) CollapseRate() float64 {
	if r.Tally.Injections == 0 {
		return 0
	}
	return float64(r.CollapsedFaults) / float64(r.Tally.Injections)
}

// PVF is the SDC program vulnerability factor: the probability that a
// fault which reached an ISA-visible state corrupts the program output.
func (r *Result) PVF() float64 { return r.Tally.AVFSDC() }

// PVFCI returns the 95% Wilson confidence interval of the PVF.
func (r *Result) PVFCI() (lo, hi float64) {
	return stats.WilsonCI(r.Tally.SDCs(), r.Tally.Injections, 1.96)
}

// ErrNoDB is returned when a syndrome model runs without a database.
var ErrNoDB = errors.New("swfi: syndrome model requires a fault-model database")

// Run executes the campaign: one golden run, one profiling run, then
// Injections instrumented runs with one corrupted instruction each.
func Run(c Campaign) (*Result, error) {
	return RunCtx(context.Background(), c)
}

// RunCtx is Run with cancellation: when ctx is cancelled the workers stop
// at the next injection boundary and the context error is returned.
// Per-injection RNG streams are derived from Campaign.Seed and the
// injection index, so re-running the same campaign — whole or after an
// interruption — reproduces every injection bit-identically.
func RunCtx(ctx context.Context, c Campaign) (*Result, error) {
	start := time.Now()
	if c.Model.NeedsDB() && c.DB == nil {
		return nil, ErrNoDB
	}
	// Fast-forward preparation: the golden prefix of every injection run
	// is bit-identical to the golden run, so it is recorded once into
	// checkpoints and write-sets and restored instead of re-simulated.
	// With NoFastForward the golden and profiling runs execute plainly,
	// exactly as before the optimisation.
	var (
		golden  []uint32
		profile Counts
		tr      *replay.Trace
	)
	switch {
	case c.NoFastForward:
		var err error
		golden, err = c.Workload.ExecuteWith(&replay.Plain{NoFastPath: c.NoFastPath})
		if err != nil {
			return nil, fmt.Errorf("swfi: golden run of %s failed: %w", c.Workload.Name, err)
		}
		if profile, err = Profile(c.Workload); err != nil {
			return nil, err
		}
	case c.Prepared != nil:
		golden, profile, tr = c.Prepared.golden, c.Prepared.profile, c.Prepared.trace
	default:
		prep, err := PrepareWorkload(c.Workload)
		if err != nil {
			return nil, err
		}
		golden, profile, tr = prep.golden, prep.profile, prep.trace
	}
	injectable := profile.InjectableTotal()
	if injectable == 0 {
		return nil, fmt.Errorf("swfi: %s executes no injectable instructions", c.Workload.Name)
	}

	res := &Result{Campaign: c, Profile: profile, Injectable: injectable}
	if tr != nil && !tr.HostPure {
		res.NoReconvergeReason = fmt.Sprintf(
			"%s host code reads the arena between launches: post-fault runs cannot provably rejoin the golden schedule, so reconvergence fast-forward is off", c.Workload.Name)
	}
	var records []InjectionRecord
	if c.RecordInjections {
		records = make([]InjectionRecord, c.Injections)
	}
	workers := c.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// Worker w exclusively runs injections i ≡ w (mod workers), so pool
	// i%workers gives each worker a private reusable arena.
	var pools []*replay.Pool
	var live *replay.Liveness
	if tr != nil {
		pools = make([]*replay.Pool, workers)
		for i := range pools {
			pools[i] = &replay.Pool{}
		}
		if !c.NoPrune {
			live = tr.Live
		}
	}
	var classOf []*collapseClass
	if tr != nil && !c.NoCollapse && (c.Model == ModelBitFlip || c.Model == ModelDoubleBitFlip) {
		classOf = scheduleCollapse(c.Injections, injectable, live,
			c.Model == ModelDoubleBitFlip, func(i int) *stats.RNG {
				return stats.NewRNG(c.Seed ^ 0x9E3779B97F4A7C15*uint64(i+1))
			})
	}
	var simInstrs, skippedInstrs, prunedFaults, collapsedFaults atomic.Uint64
	// runOne simulates (or prunes) one injection and returns its outcome
	// plus its own sim/skipped instruction counts for member accounting.
	runOne := func(i int, r *stats.RNG) (faults.Outcome, uint64, uint64) {
		in := &injector{
			target: r.Uint64() % injectable,
			model:  c.Model,
			db:     c.DB,
			focus:  c.ModuleFocus,
			rng:    r,
		}
		if live != nil {
			if site, dead := live.Dead(in.target); dead {
				// The fault lands on a provably dead output site: the final
				// output is bit-identical to golden (and addresses/control
				// inputs are never dead, so it cannot trap or hang). Masked,
				// zero emulator instructions. The site record reproduces the
				// corruption draws an executed run would have made.
				prunedFaults.Add(1)
				skippedInstrs.Add(tr.Instrs)
				if records != nil {
					newBits, rel := drawCorruption(site.Op, site.OldBits, site.Mag,
						c.Model, c.DB, c.ModuleFocus, r)
					records[i] = InjectionRecord{
						Op: site.Op, RelErr: rel,
						OldBits: site.OldBits, NewBits: newBits,
						Outcome: faults.Masked,
					}
				}
				return faults.Masked, 0, tr.Instrs
			}
		}
		var out []uint32
		var err error
		var sim, skipped uint64
		if tr != nil {
			p := replay.NewPlayer(tr, in.target, emu.Hooks{Post: in.post},
				func(countDone uint64) { in.counter = countDone },
				func() bool { return in.fired },
				pools[i%workers])
			p.NoFastPath = c.NoFastPath
			out, err = c.Workload.ExecuteWith(p)
			sim, skipped = p.Live.DynThreadInstrs, p.Skipped
			simInstrs.Add(sim)
			skippedInstrs.Add(skipped)
		} else {
			out, err = c.Workload.ExecuteWith(&replay.Plain{
				Hooks: emu.Hooks{Post: in.post}, NoFastPath: c.NoFastPath,
			})
		}
		var outcome faults.Outcome
		switch {
		case err != nil:
			outcome = faults.DUE
		case !outputsMatch(golden, out, c.Tolerance):
			outcome = faults.SDC
		default:
			outcome = faults.Masked
		}
		if records != nil {
			records[i] = InjectionRecord{
				Op: in.op, RelErr: in.relErr,
				OldBits: in.oldBits, NewBits: in.newBits,
				Outcome: outcome,
			}
		}
		return outcome, sim, skipped
	}
	tallies, completed := parallelInjectionsIdx(ctx, c.Injections, workers, c.Seed, c.Progress, func(i int, r *stats.RNG) faults.Outcome {
		var cl *collapseClass
		if classOf != nil {
			cl = classOf[i]
		}
		if cl != nil && cl.rep != i {
			// Equivalence-class member: its (target, mask) pair duplicates
			// the representative's, so its outcome and record are copies.
			// The representative always has a smaller injection index, so
			// the wait graph is acyclic across the striped workers. A
			// published result is preferred over cancellation — select
			// picks randomly among ready cases, and a campaign whose last
			// member resolved must stay correct under the completion
			// carve-out below.
			select {
			case <-cl.done:
			default:
				select {
				case <-cl.done:
				case <-ctx.Done():
					return faults.Masked // discarded: the campaign returns ctx.Err()
				}
			}
			collapsedFaults.Add(1)
			skippedInstrs.Add(cl.sim + cl.skipped)
			if records != nil {
				records[i] = cl.rec
			}
			return cl.outcome
		}
		outcome, sim, skipped := runOne(i, r)
		if cl != nil {
			cl.outcome, cl.sim, cl.skipped = outcome, sim, skipped
			if records != nil {
				cl.rec = records[i]
			}
			close(cl.done)
		}
		return outcome
	})
	// Cancellation that lands after the last injection finished does not
	// void the campaign: every run completed, so return the result.
	if err := ctx.Err(); err != nil && completed != c.Injections {
		return nil, err
	}
	res.Tally = tallies
	res.Records = records
	res.SimInstrs = simInstrs.Load()
	res.SkippedInstrs = skippedInstrs.Load()
	res.PrunedFaults = prunedFaults.Load()
	res.CollapsedFaults = collapsedFaults.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}

// collapseClass memoizes one fault-equivalence class: the representative
// (the class's smallest injection index) simulates and publishes; members
// wait on done and copy. Mirrors internal/rtlfi's worker-level collapse
// scheme.
type collapseClass struct {
	rep  int
	done chan struct{}

	// Published by the representative before done is closed.
	outcome  faults.Outcome
	critical bool // CNN campaigns: the representative's critical-SDC verdict
	rec      InjectionRecord
	sim      uint64
	skipped  uint64
}

// scheduleCollapse pre-draws every injection's (target, flip mask) pair
// and groups duplicates into equivalence classes. This is possible for
// the bit-flip models because neither draw depends on execution state —
// the pre-draw consumes the same stream prefix (target, then mask) from a
// fresh copy of each injection's RNG, leaving the runtime streams
// untouched. Injections whose target the liveness index already proves
// dead are left out (the prune path classifies each for free anyway, and
// counts them as pruned rather than collapsed). Returns nil when no class
// has more than one member, when the space is collision-free by
// construction, or when targets don't fit the packed key (injectable ≥
// 2^32).
func scheduleCollapse(n int, injectable uint64, live *replay.Liveness,
	double bool, rngFor func(i int) *stats.RNG) []*collapseClass {
	if injectable >= 1<<32 {
		return nil
	}
	classOf := make([]*collapseClass, n)
	classes := make(map[uint64]*collapseClass, n)
	collapsed := false
	for i := 0; i < n; i++ {
		r := rngFor(i)
		target := r.Uint64() % injectable
		var mask uint32
		if double {
			b1 := r.Intn(32)
			b2 := (b1 + 1 + r.Intn(31)) % 32
			mask = 1<<uint(b1) | 1<<uint(b2)
		} else {
			mask = 1 << uint(r.Intn(32))
		}
		if live != nil {
			if _, dead := live.Dead(target); dead {
				continue
			}
		}
		key := target<<32 | uint64(mask)
		if cl, ok := classes[key]; ok {
			classOf[i] = cl
			collapsed = true
		} else {
			cl := &collapseClass{rep: i, done: make(chan struct{})}
			classes[key] = cl
			classOf[i] = cl
		}
	}
	if !collapsed {
		return nil
	}
	return classOf
}

// parallelInjectionsIdx fans the injection loop across workers with
// deterministic per-injection RNG streams, passing the injection index.
// Workers stop at injection boundaries once ctx is cancelled. It returns
// the merged tally and the number of injections that completed, so
// callers can tell a cancelled campaign from a finished one. Progress is
// throttled to ~1/1000 granularity (every completion for small campaigns)
// with a guaranteed final (total, total) call.
func parallelInjectionsIdx(ctx context.Context, n, workers int, seed uint64,
	progress func(done, total int), one func(int, *stats.RNG) faults.Outcome) (faults.Tally, int) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	granule := n / 1000
	if granule < 1 {
		granule = 1
	}
	partial := make([]faults.Tally, workers)
	var completed atomic.Int64
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					break
				}
				r := stats.NewRNG(seed ^ 0x9E3779B97F4A7C15*uint64(i+1))
				partial[w].Add(one(i, r), 1)
				d := int(completed.Add(1))
				if progress != nil && (d == n || d%granule == 0) {
					progress(d, n)
				}
			}
			done <- w
		}(w)
	}
	var out faults.Tally
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, t := range partial {
		out.Merge(t)
	}
	return out, int(completed.Load())
}

func bitsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// outputsMatch compares outputs bitwise (tol == 0) or as float32 values
// within a relative tolerance.
func outputsMatch(golden, out []uint32, tol float64) bool {
	if tol == 0 {
		return bitsEqual(golden, out)
	}
	if len(golden) != len(out) {
		return false
	}
	for i := range golden {
		if golden[i] == out[i] {
			continue
		}
		g := float64(math.Float32frombits(golden[i]))
		f := float64(math.Float32frombits(out[i]))
		// Special values only match bitwise (handled above): a NaN or ±Inf
		// on either side is an SDC, never "within tolerance" — an Inf
		// golden would otherwise produce an Inf error bound that admits
		// any finite faulty value.
		if math.IsNaN(g) || math.IsNaN(f) || math.IsInf(g, 0) || math.IsInf(f, 0) {
			return false
		}
		if math.Abs(f-g) > tol*(1+math.Abs(g)) {
			return false
		}
	}
	return true
}
