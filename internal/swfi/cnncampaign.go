package swfi

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"gpufi/internal/cnn"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// CNNModel selects the CNN fault model: the instruction-level models, or
// the t-MxM tile corruption of §IV-B/§VI.
type CNNModel uint8

// CNN fault models.
const (
	CNNBitFlip  CNNModel = iota // single bit-flip in one instruction output
	CNNSyndrome                 // RTL relative-error syndrome, single thread
	CNNTile                     // t-MxM tile corruption (multi-thread RTL model)
)

// String implements fmt.Stringer.
func (m CNNModel) String() string {
	switch m {
	case CNNBitFlip:
		return "single bit-flip"
	case CNNSyndrome:
		return "relative error"
	case CNNTile:
		return "t-MxM tile"
	default:
		return fmt.Sprintf("CNNModel(%d)", uint8(m))
	}
}

// CNNCampaign describes a CNN injection campaign.
type CNNCampaign struct {
	Net        *cnn.Network
	Input      []float32
	Model      CNNModel
	DB         *syndrome.DB // required by CNNSyndrome and CNNTile
	Injections int
	Seed       uint64
	Workers    int

	// Critical classifies an SDC as critical (misclassification or
	// misdetection) by comparing golden and faulty outputs.
	Critical func(golden, faulty []float32) bool

	// NoFastForward disables the golden-prefix checkpoint optimisation and
	// re-executes every injection run from the first layer with hooks
	// armed throughout. Results are bit-identical either way; see
	// Campaign.NoFastForward. It implies NoPrune and NoCollapse.
	NoFastForward bool

	// NoPrune disables dead-site liveness pruning for the instruction
	// models; see Campaign.NoPrune. The tile model never prunes — it
	// corrupts feature-map regions at layer boundaries, not instruction
	// outputs.
	NoPrune bool

	// NoCollapse disables fault-equivalence collapsing for CNNBitFlip;
	// see Campaign.NoCollapse.
	NoCollapse bool

	// NoFastPath forces the emulator's Tier-0 reference interpreter for
	// every run this campaign issues; see Campaign.NoFastPath. Results
	// are bit-identical either way.
	NoFastPath bool

	// Prepared, when non-nil, supplies a ready-made golden run, profile
	// and checkpoint trace for Net/Input (from PrepareCNN), letting the
	// three fault models share one preparation. Ignored when
	// NoFastForward is set.
	Prepared *CNNPrepared

	// Progress, when non-nil, is called after every completed injection
	// run; see Campaign.Progress for the concurrency contract.
	Progress func(done, total int)
}

// CNNResult aggregates a CNN campaign, separating tolerable from critical
// SDCs (§VI).
type CNNResult struct {
	Model       CNNModel
	Tally       faults.Tally
	CriticalSDC int
	Profile     Counts

	// SimInstrs / SkippedInstrs are the fast-forward telemetry counters;
	// see Result. Both are zero on the NoFastForward path.
	SimInstrs     uint64
	SkippedInstrs uint64

	// PrunedFaults / CollapsedFaults count injections resolved by the
	// dead-site index and by equivalence collapsing; see Result.
	PrunedFaults    uint64
	CollapsedFaults uint64

	// Elapsed is the campaign's wall-clock time, including preparation;
	// see Result.Elapsed.
	Elapsed time.Duration
}

// EmuMIPS is the emulated-instruction throughput of the campaign; see
// Result.EmuMIPS.
func (r *CNNResult) EmuMIPS() float64 { return mips(r.SimInstrs, r.Elapsed) }

// EffectiveMIPS is the virtual throughput including skipped instructions;
// see Result.EffectiveMIPS.
func (r *CNNResult) EffectiveMIPS() float64 {
	return mips(r.SimInstrs+r.SkippedInstrs, r.Elapsed)
}

// PruneRate is the fraction of injections the dead-site index classified
// without simulation.
func (r *CNNResult) PruneRate() float64 {
	if r.Tally.Injections == 0 {
		return 0
	}
	return float64(r.PrunedFaults) / float64(r.Tally.Injections)
}

// CollapseRate is the fraction of injections resolved by equivalence
// collapsing.
func (r *CNNResult) CollapseRate() float64 {
	if r.Tally.Injections == 0 {
		return 0
	}
	return float64(r.CollapsedFaults) / float64(r.Tally.Injections)
}

// PVF is the SDC program vulnerability factor.
func (r *CNNResult) PVF() float64 { return r.Tally.AVFSDC() }

// CriticalShare is the fraction of SDCs that change the network's
// decision — the paper's 20% (LeNET) / 15% (YOLO) t-MxM finding.
func (r *CNNResult) CriticalShare() float64 {
	if s := r.Tally.SDCs(); s > 0 {
		return float64(r.CriticalSDC) / float64(s)
	}
	return 0
}

// RunCNN executes a CNN injection campaign.
func RunCNN(c CNNCampaign) (*CNNResult, error) {
	return RunCNNCtx(context.Background(), c)
}

// RunCNNCtx is RunCNN with cancellation at injection boundaries.
// Per-injection RNG streams are derived from the seed and injection index,
// so re-runs reproduce the campaign bit-identically.
func RunCNNCtx(ctx context.Context, c CNNCampaign) (*CNNResult, error) {
	start := time.Now()
	if (c.Model == CNNSyndrome || c.Model == CNNTile) && c.DB == nil {
		return nil, ErrNoDB
	}
	// Fast-forward preparation; see RunCtx. With NoFastForward the golden
	// and profiling runs execute plainly, exactly as before the
	// optimisation.
	var (
		golden  []float32
		profile Counts
		tr      *replay.Trace
	)
	switch {
	case c.NoFastForward:
		var err error
		golden, err = c.Net.RunWith(&replay.Plain{NoFastPath: c.NoFastPath}, c.Input, nil)
		if err != nil {
			return nil, fmt.Errorf("swfi: golden CNN run failed: %w", err)
		}
		if _, err := c.Net.Run(c.Input, emu.Hooks{Post: func(ev *emu.Event) {
			profile[ev.Instr.Op] += uint64(ev.ActiveCount())
		}}, nil); err != nil {
			return nil, err
		}
	case c.Prepared != nil:
		golden, profile, tr = c.Prepared.golden, c.Prepared.profile, c.Prepared.trace
	default:
		prep, err := PrepareCNN(c.Net, c.Input)
		if err != nil {
			return nil, err
		}
		golden, profile, tr = prep.golden, prep.profile, prep.trace
	}
	injectable := profile.InjectableTotal()
	if injectable == 0 {
		return nil, fmt.Errorf("swfi: CNN executes no injectable instructions")
	}

	res := &CNNResult{Model: c.Model, Profile: profile}
	workers := c.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// Worker w exclusively runs injections i ≡ w (mod workers), so pool
	// i%workers gives each worker a private reusable arena.
	var pools []*replay.Pool
	if tr != nil {
		pools = make([]*replay.Pool, workers)
		for i := range pools {
			pools[i] = &replay.Pool{}
		}
	}
	// Liveness pruning and equivalence collapsing apply to the
	// instruction-level models only: the tile model corrupts feature-map
	// regions at layer boundaries, outside the dead-site index's scope.
	var live *replay.Liveness
	if tr != nil && !c.NoPrune && c.Model != CNNTile {
		live = tr.Live
	}
	var classOf []*collapseClass
	if tr != nil && !c.NoCollapse && c.Model == CNNBitFlip {
		classOf = scheduleCollapse(c.Injections, injectable, live, false,
			func(i int) *stats.RNG {
				return stats.NewRNG(c.Seed ^ 0xD1B54A32D192ED03*uint64(i+1))
			})
	}
	var simInstrs, skippedInstrs, prunedFaults, collapsedFaults atomic.Uint64
	// runOne simulates (or prunes) one injection; sim/skipped are its own
	// counts, for member accounting.
	runOne := func(i int, r *stats.RNG) (faults.Outcome, bool, uint64, uint64) {
		var out []float32
		var err error
		var sim, skipped uint64
		switch c.Model {
		case CNNTile:
			inj, ok := c.Net.RandomTileInjection(c.DB, r)
			if !ok {
				return faults.Masked, false, 0, 0 // no characterisation: nothing injected
			}
			if tr != nil {
				// The tile is applied by host code after layer
				// inj.Layer, so every launch up to and including it
				// replays from the recorded write-sets.
				p := replay.NewPlayerSkipTo(tr, inj.Layer, pools[i%workers])
				p.NoFastPath = c.NoFastPath
				out, err = c.Net.RunWith(p, c.Input, inj)
				sim, skipped = p.Live.DynThreadInstrs, p.Skipped
				simInstrs.Add(sim)
				skippedInstrs.Add(skipped)
			} else {
				out, err = c.Net.RunWith(&replay.Plain{NoFastPath: c.NoFastPath}, c.Input, inj)
			}
		default:
			model := ModelBitFlip
			if c.Model == CNNSyndrome {
				model = ModelSyndrome
			}
			in := &injector{
				target: r.Uint64() % injectable,
				model:  model,
				db:     c.DB,
				rng:    r,
			}
			if live != nil {
				if _, dead := live.Dead(in.target); dead {
					// Dead output site: bit-identical final output, no
					// possible trap or hang. Masked with zero emulator
					// instructions; see Campaign's prune path.
					prunedFaults.Add(1)
					skippedInstrs.Add(tr.Instrs)
					return faults.Masked, false, 0, tr.Instrs
				}
			}
			if tr != nil {
				p := replay.NewPlayer(tr, in.target, emu.Hooks{Post: in.post},
					func(countDone uint64) { in.counter = countDone },
					func() bool { return in.fired },
					pools[i%workers])
				p.NoFastPath = c.NoFastPath
				out, err = c.Net.RunWith(p, c.Input, nil)
				sim, skipped = p.Live.DynThreadInstrs, p.Skipped
				simInstrs.Add(sim)
				skippedInstrs.Add(skipped)
			} else {
				out, err = c.Net.RunWith(&replay.Plain{
					Hooks: emu.Hooks{Post: in.post}, NoFastPath: c.NoFastPath,
				}, c.Input, nil)
			}
		}
		switch {
		case err != nil:
			return faults.DUE, false, sim, skipped
		case !floatsEqual(golden, out):
			critical := c.Critical != nil && c.Critical(golden, out)
			return faults.SDC, critical, sim, skipped
		default:
			return faults.Masked, false, sim, skipped
		}
	}
	var crit, completed int
	res.Tally, crit, completed = parallelInjectionsWithSide(ctx, c.Injections, workers, c.Seed, c.Progress,
		func(i int, r *stats.RNG) (faults.Outcome, bool) {
			var cl *collapseClass
			if classOf != nil {
				cl = classOf[i]
			}
			if cl != nil && cl.rep != i {
				// Equivalence-class member; see Campaign's collapse path
				// (including why a published result beats cancellation).
				select {
				case <-cl.done:
				default:
					select {
					case <-cl.done:
					case <-ctx.Done():
						return faults.Masked, false // discarded: the campaign returns ctx.Err()
					}
				}
				collapsedFaults.Add(1)
				skippedInstrs.Add(cl.sim + cl.skipped)
				return cl.outcome, cl.critical
			}
			outcome, critical, sim, skipped := runOne(i, r)
			if cl != nil {
				cl.outcome, cl.critical, cl.sim, cl.skipped = outcome, critical, sim, skipped
				close(cl.done)
			}
			return outcome, critical
		})
	// Cancellation that lands after the last injection finished does not
	// void the campaign: every run completed, so return the result.
	if err := ctx.Err(); err != nil && completed != c.Injections {
		return nil, err
	}
	res.CriticalSDC = crit
	res.SimInstrs = simInstrs.Load()
	res.SkippedInstrs = skippedInstrs.Load()
	res.PrunedFaults = prunedFaults.Load()
	res.CollapsedFaults = collapsedFaults.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}

// parallelInjectionsWithSide is parallelInjections with a critical-SDC
// counter, passing the injection index. Workers stop at injection
// boundaries once ctx is cancelled; the completed count lets callers tell
// a cancelled campaign from a finished one. Progress is throttled to
// ~1/1000 granularity with a guaranteed final (total, total) call.
func parallelInjectionsWithSide(ctx context.Context, n, workers int, seed uint64,
	progress func(done, total int), one func(int, *stats.RNG) (faults.Outcome, bool)) (faults.Tally, int, int) {
	granule := n / 1000
	if granule < 1 {
		granule = 1
	}
	partial := make([]faults.Tally, workers)
	critPartial := make([]int, workers)
	var completed atomic.Int64
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					break
				}
				r := stats.NewRNG(seed ^ 0xD1B54A32D192ED03*uint64(i+1))
				o, crit := one(i, r)
				partial[w].Add(o, 1)
				if crit {
					critPartial[w]++
				}
				d := int(completed.Add(1))
				if progress != nil && (d == n || d%granule == 0) {
					progress(d, n)
				}
			}
			done <- struct{}{}
		}(w)
	}
	var out faults.Tally
	crit := 0
	for w := 0; w < workers; w++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		out.Merge(partial[w])
		crit += critPartial[w]
	}
	return out, crit, int(completed.Load())
}

func floatsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// LeNetCritical is the misclassification criterion (argmax change).
func LeNetCritical(golden, faulty []float32) bool {
	return cnn.Classify(golden) != cnn.Classify(faulty)
}

// YoloCritical is the misdetection criterion (IoU-matched box sets).
func YoloCritical(golden, faulty []float32) bool {
	return cnn.Misdetection(cnn.DecodeDetections(golden), cnn.DecodeDetections(faulty))
}

// FigureProfile renders an application's Fig. 3 row: shares per category.
func FigureProfile(name string, counts Counts) string {
	sh := counts.CategoryShares()
	return fmt.Sprintf("%-10s FP32=%.2f INT32=%.2f SFU=%.2f Control=%.2f Others=%.2f",
		name,
		sh[isa.CatFP32], sh[isa.CatINT32], sh[isa.CatSFU], sh[isa.CatControl], sh[isa.CatOther])
}
