package swfi

import (
	"context"
	"reflect"
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
)

// assertCampaignEqual compares everything in two HPC campaign results that
// the fast-forward optimisation promises to preserve bit-identically. The
// Campaign field (which carries the NoFastForward flag) and the
// SimInstrs/SkippedInstrs meta-counters are the only fields allowed to
// differ.
func assertCampaignEqual(t *testing.T, ff, full *Result) {
	t.Helper()
	if ff.Tally != full.Tally {
		t.Fatalf("tally: fast-forward %+v, full replay %+v", ff.Tally, full.Tally)
	}
	if ff.Profile != full.Profile {
		t.Fatal("opcode profiles differ")
	}
	if ff.Injectable != full.Injectable {
		t.Fatalf("injectable totals: %d vs %d", ff.Injectable, full.Injectable)
	}
	if !reflect.DeepEqual(ff.Records, full.Records) {
		t.Fatal("injection records differ")
	}
	if ff.PVF() != full.PVF() {
		t.Fatalf("PVF: %v vs %v", ff.PVF(), full.PVF())
	}
	ffLo, ffHi := ff.PVFCI()
	fuLo, fuHi := full.PVFCI()
	if ffLo != fuLo || ffHi != fuHi {
		t.Fatalf("PVF CI: [%v,%v] vs [%v,%v]", ffLo, ffHi, fuLo, fuHi)
	}
}

// assertTelemetry checks the fast-forward accounting: the optimised run
// must actually skip work, and the full-replay run must report none.
func assertTelemetry(t *testing.T, name string, ffSim, ffSkipped, fullSim, fullSkipped uint64) {
	t.Helper()
	if ffSkipped == 0 {
		t.Errorf("%s: fast-forward skipped no instructions", name)
	}
	if fullSim != 0 || fullSkipped != 0 {
		t.Errorf("%s: full replay reported sim=%d skipped=%d, want 0/0", name, fullSim, fullSkipped)
	}
}

// TestHPCFastForwardBitIdentical is the software-campaign checkpoint
// optimisation's anchor regression: fast-forwarded campaigns must be
// byte-identical to full replay — tallies, per-injection records, PVF and
// its confidence interval.
func TestHPCFastForwardBitIdentical(t *testing.T) {
	campaigns := []Campaign{
		{Workload: apps.NewMxM(16), Model: ModelBitFlip,
			Injections: 80, Seed: 311, Workers: 3, RecordInjections: true},
		{Workload: apps.NewGaussian(16), Model: ModelDoubleBitFlip,
			Injections: 60, Seed: 312, Workers: 2, RecordInjections: true},
		// Quicksort's host is impure (arena-driven recursion), which gates
		// off reconvergence skipping; prefix fast-forward must still hold.
		{Workload: apps.NewQuicksort(128), Model: ModelBitFlip,
			Injections: 40, Seed: 314, Workers: 2, RecordInjections: true},
	}
	for _, c := range campaigns {
		ff, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		c.NoFastForward = true
		full, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		assertCampaignEqual(t, ff, full)
		assertTelemetry(t, c.Workload.Name, ff.SimInstrs, ff.SkippedInstrs, full.SimInstrs, full.SkippedInstrs)
	}
}

// TestHPCSyndromeFastForwardBitIdentical covers the syndrome model, whose
// injector additionally reads source operands out of replayed events for
// magnitude-range selection.
func TestHPCSyndromeFastForwardBitIdentical(t *testing.T) {
	db := testDB(t)
	c := Campaign{
		Workload: apps.NewHotspot(16, 4), Model: ModelSyndrome, DB: db,
		Injections: 60, Seed: 313, Workers: 2, RecordInjections: true,
	}
	ff, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.NoFastForward = true
	full, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignEqual(t, ff, full)
	assertTelemetry(t, "hotspot/syndrome", ff.SimInstrs, ff.SkippedInstrs, full.SimInstrs, full.SkippedInstrs)
}

// TestPreparedSharingBitIdentical: several campaigns sharing one
// PrepareWorkload must match campaigns that each prepare on their own.
func TestPreparedSharingBitIdentical(t *testing.T) {
	w := apps.NewMxM(16)
	prep, err := PrepareWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{5, 99} {
		c := Campaign{Workload: w, Model: ModelBitFlip, Injections: 40, Seed: seed}
		own, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		c.Prepared = prep
		shared, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		assertCampaignEqual(t, shared, own)
	}
}

// TestCNNFastForwardBitIdentical mirrors the regression for the CNN
// instruction-level and t-MxM tile campaign paths.
func TestCNNFastForwardBitIdentical(t *testing.T) {
	net := cnn.NewLeNetLite()
	input := cnn.LeNetInput(0)

	flip := CNNCampaign{
		Net: net, Input: input, Model: CNNBitFlip,
		Injections: 80, Seed: 411, Workers: 3, Critical: LeNetCritical,
	}
	ff, err := RunCNN(flip)
	if err != nil {
		t.Fatal(err)
	}
	flip.NoFastForward = true
	full, err := RunCNN(flip)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Tally != full.Tally {
		t.Fatalf("bit-flip tally: fast-forward %+v, full replay %+v", ff.Tally, full.Tally)
	}
	if ff.CriticalSDC != full.CriticalSDC {
		t.Fatalf("critical SDCs: %d vs %d", ff.CriticalSDC, full.CriticalSDC)
	}
	if ff.Profile != full.Profile {
		t.Fatal("profiles differ")
	}
	if ff.PVF() != full.PVF() || ff.CriticalShare() != full.CriticalShare() {
		t.Fatal("derived metrics differ")
	}
	assertTelemetry(t, "lenet/bitflip", ff.SimInstrs, ff.SkippedInstrs, full.SimInstrs, full.SkippedInstrs)

	tile := CNNCampaign{
		Net: net, Input: input, Model: CNNTile, DB: testDB(t),
		Injections: 60, Seed: 412, Workers: 2, Critical: LeNetCritical,
	}
	tff, err := RunCNN(tile)
	if err != nil {
		t.Fatal(err)
	}
	tile.NoFastForward = true
	tfull, err := RunCNN(tile)
	if err != nil {
		t.Fatal(err)
	}
	if tff.Tally != tfull.Tally {
		t.Fatalf("tile tally: fast-forward %+v, full replay %+v", tff.Tally, tfull.Tally)
	}
	if tff.CriticalSDC != tfull.CriticalSDC {
		t.Fatalf("tile critical SDCs: %d vs %d", tff.CriticalSDC, tfull.CriticalSDC)
	}
	assertTelemetry(t, "lenet/tile", tff.SimInstrs, tff.SkippedInstrs, tfull.SimInstrs, tfull.SkippedInstrs)
}

// TestCancelAfterCompletionKeepsResult: cancellation landing between the
// last injection and the post-wait context check must not discard a
// campaign in which every injection ran.
func TestCancelAfterCompletionKeepsResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 30
	res, err := RunCtx(ctx, Campaign{
		Workload: apps.NewMxM(16), Model: ModelBitFlip,
		Injections: n, Seed: 3,
		Progress: func(done, total int) {
			if done == total {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("completed campaign discarded: %v", err)
	}
	if res.Tally.Injections != n {
		t.Fatalf("injections = %d, want %d", res.Tally.Injections, n)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cres, err := RunCNNCtx(ctx2, CNNCampaign{
		Net: cnn.NewLeNetLite(), Input: cnn.LeNetInput(0), Model: CNNBitFlip,
		Injections: 20, Seed: 4,
		Progress: func(done, total int) {
			if done == total {
				cancel2()
			}
		},
	})
	if err != nil {
		t.Fatalf("completed CNN campaign discarded: %v", err)
	}
	if cres.Tally.Injections != 20 {
		t.Fatalf("injections = %d, want 20", cres.Tally.Injections)
	}
}

// TestCancelMidCampaignStillErrors: the completion carve-out must not
// swallow genuine mid-campaign cancellation.
func TestCancelMidCampaignStillErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunCtx(ctx, Campaign{
		Workload: apps.NewMxM(16), Model: ModelBitFlip,
		Injections: 400, Seed: 3, Workers: 2,
		Progress: func(done, total int) {
			if done == 5 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled campaign returned a result")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = RunCNNCtx(ctx2, CNNCampaign{
		Net: cnn.NewLeNetLite(), Input: cnn.LeNetInput(0), Model: CNNBitFlip,
		Injections: 400, Seed: 4, Workers: 2,
		Progress: func(done, total int) {
			if done == 5 {
				cancel2()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled CNN campaign returned a result")
	}
}
