package swfi

import (
	"fmt"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/isa"
	"gpufi/internal/replay"
)

// checkpointsPerCampaign bounds the golden-prefix snapshots recorded per
// campaign workload. Injection runs fast-forward to the latest checkpoint
// at or before their target instruction, so the residual golden prefix
// re-simulated per injection averages totalInstrs/(2*checkpointsPerCampaign)
// — ~2% of a full replay — while snapshot memory stays bounded. The same
// value rtlfi uses per input draw.
const checkpointsPerCampaign = 24

// injectableOp adapts Injectable to the replay package's countable
// predicate: the trace's countable coordinates then index exactly the
// dynamic instructions an injector counts and targets.
func injectableOp(op isa.Opcode) bool { return Injectable(op) }

// Prepared holds everything the fast-forward path shares across the
// injections of a workload's campaigns: the golden output, the
// instruction profile and the checkpoint trace. It is read-only after
// PrepareWorkload, so concurrent workers — and multiple campaigns on the
// same workload (e.g. bit-flip and syndrome models) — reuse one
// preparation.
type Prepared struct {
	golden     []uint32
	profile    Counts
	injectable uint64
	trace      *replay.Trace
}

// PrepareWorkload runs the workload's golden execution and records its
// fast-forward trace: ~checkpointsPerCampaign emulator snapshots plus the
// per-launch global-memory write-sets. The recording replay is verified
// bit-identical to the plain golden run before it is trusted.
func PrepareWorkload(w *apps.Workload) (*Prepared, error) {
	plain := &replay.Plain{}
	golden, err := w.ExecuteWith(plain)
	if err != nil {
		return nil, fmt.Errorf("swfi: golden run of %s failed: %w", w.Name, err)
	}
	rec := replay.NewRecorder(plain.Res.DynThreadInstrs/checkpointsPerCampaign, injectableOp)
	rec.CaptureLiveness(operandMagnitude)
	recOut, err := w.ExecuteWith(rec)
	if err != nil {
		return nil, fmt.Errorf("swfi: checkpoint replay of %s failed: %w", w.Name, err)
	}
	if !bitsEqual(golden, recOut) {
		return nil, fmt.Errorf("swfi: checkpoint replay of %s diverged from golden run", w.Name)
	}
	tr := rec.Finish()
	tr.HostPure = w.PureHost
	// Dead-site index for liveness pruning. HPC hosts may read any arena
	// word between launches, so the whole arena is live at every launch
	// boundary; transitive dead sites inside a launch remain prunable.
	rec.ComputeLiveness(0, 0, true)
	p := &Prepared{golden: golden, profile: Counts(tr.Profile), trace: tr}
	p.injectable = p.profile.InjectableTotal()
	return p, nil
}

// CNNPrepared is Prepared for a CNN campaign: one network/input pair's
// golden output, profile and checkpoint trace, shared across that pair's
// campaigns (bit-flip, syndrome and tile models alike).
type CNNPrepared struct {
	golden     []float32
	profile    Counts
	injectable uint64
	trace      *replay.Trace
}

// PrepareCNN records a network/input pair's golden execution and
// fast-forward trace, verified bit-identical to the plain golden run.
func PrepareCNN(net *cnn.Network, input []float32) (*CNNPrepared, error) {
	plain := &replay.Plain{}
	golden, err := net.RunWith(plain, input, nil)
	if err != nil {
		return nil, fmt.Errorf("swfi: golden run of %s failed: %w", net.Name, err)
	}
	rec := replay.NewRecorder(plain.Res.DynThreadInstrs/checkpointsPerCampaign, injectableOp)
	rec.CaptureLiveness(operandMagnitude)
	recOut, err := net.RunWith(rec, input, nil)
	if err != nil {
		return nil, fmt.Errorf("swfi: checkpoint replay of %s failed: %w", net.Name, err)
	}
	if !floatsEqual(golden, recOut) {
		return nil, fmt.Errorf("swfi: checkpoint replay of %s diverged from golden run", net.Name)
	}
	tr := rec.Finish()
	// Network.RunWith's host is pure by construction: between launches it
	// only applies the tile corruption at the faulty boundary itself and
	// reads the arena solely after the last launch. That also licenses
	// live-in pruning: corrupted activations parked in feature maps no
	// later layer reads must not block reconvergence.
	tr.HostPure = true
	off, words := net.OutputRegion()
	tr.ComputeLiveIn(off, words)
	// Dead-site index: the pure host never reads arena words outside the
	// output region between launches, so liveness flows across launch
	// boundaries from the output region alone.
	rec.ComputeLiveness(off, words, false)
	p := &CNNPrepared{golden: golden, profile: Counts(tr.Profile), trace: tr}
	p.injectable = p.profile.InjectableTotal()
	return p, nil
}
