package swfi

import (
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/rtlfi"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

// testDB builds a small but real syndrome database (shared across tests;
// building it runs actual RTL campaigns).
var testDBOnce *syndrome.DB

func testDB(t *testing.T) *syndrome.DB {
	t.Helper()
	if testDBOnce != nil {
		return testDBOnce
	}
	db := syndrome.New()
	specs := []rtlfi.Spec{
		{Op: isa.OpFADD, Range: faults.RangeMedium, Module: faults.ModFP32, NumFaults: 800, Seed: 1},
		{Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModFP32, NumFaults: 800, Seed: 2},
		{Op: isa.OpFFMA, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 800, Seed: 3},
		{Op: isa.OpIADD, Range: faults.RangeMedium, Module: faults.ModINT, NumFaults: 800, Seed: 4},
		{Op: isa.OpIMAD, Range: faults.RangeMedium, Module: faults.ModINT, NumFaults: 800, Seed: 5},
		{Op: isa.OpGLD, Range: faults.RangeMedium, Module: faults.ModPipe, NumFaults: 800, Seed: 6},
	}
	for _, s := range specs {
		res, err := rtlfi.RunMicro(s)
		if err != nil {
			t.Fatal(err)
		}
		db.AddMicro(res)
	}
	tm, err := rtlfi.RunTMXM(rtlfi.TMXMSpec{
		Module: faults.ModSched, Kind: mxm.TileRandom, NumFaults: 1200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.AddTMXM(tm)
	testDBOnce = db
	return db
}

func TestInjectableSet(t *testing.T) {
	if Injectable(isa.OpBRA) {
		t.Error("BRA has no data output")
	}
	if !Injectable(isa.OpFFMA) || !Injectable(isa.OpGST) || !Injectable(isa.OpISET) {
		t.Error("characterised data ops must be injectable")
	}
	if Injectable(isa.OpMOV) {
		t.Error("uncharacterised ops are not injected (§VI)")
	}
}

func TestProfileShapes(t *testing.T) {
	// Fig. 3 shapes: MxM is FP32-heavy; quicksort is control/INT heavy.
	m, err := Profile(apps.NewMxM(16))
	if err != nil {
		t.Fatal(err)
	}
	sm := m.CategoryShares()
	if sm[isa.CatFP32] < 0.10 {
		t.Errorf("MxM FP32 share = %.2f", sm[isa.CatFP32])
	}
	q, err := Profile(apps.NewQuicksort(128))
	if err != nil {
		t.Fatal(err)
	}
	sq := q.CategoryShares()
	if sq[isa.CatFP32] > sm[isa.CatFP32] {
		t.Errorf("quicksort FP32 share %.2f above MxM %.2f", sq[isa.CatFP32], sm[isa.CatFP32])
	}
	if sq[isa.CatControl]+sq[isa.CatINT32]+sq[isa.CatOther] < 0.8 {
		t.Errorf("quicksort not control/INT dominated: %v", sq)
	}
	if m.Total() == 0 || m.InjectableTotal() == 0 || m.InjectableTotal() > m.Total() {
		t.Error("count bookkeeping broken")
	}
}

func TestBitFlipCampaignOnMxM(t *testing.T) {
	res, err := Run(Campaign{
		Workload: apps.NewMxM(64), Model: ModelBitFlip,
		Injections: 120, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Injections != 120 {
		t.Fatalf("injections = %d", res.Tally.Injections)
	}
	// MxM PVF is ~1.0 in the paper: nearly every corrupted FFMA output
	// survives to the result (exact-compare criterion). At the suite's
	// 64x64 size a share of address-derailing flips crash instead.
	if res.PVF() < 0.7 {
		t.Errorf("MxM bit-flip PVF = %.2f, expected near 1", res.PVF())
	}
	lo, hi := res.PVFCI()
	if lo > res.PVF() || hi < res.PVF() {
		t.Error("CI does not bracket the PVF")
	}
}

func TestSyndromeRequiresDB(t *testing.T) {
	_, err := Run(Campaign{
		Workload: apps.NewMxM(16), Model: ModelSyndrome, Injections: 1,
	})
	if err != ErrNoDB {
		t.Errorf("err = %v, want ErrNoDB", err)
	}
}

func TestSyndromePVFAtLeastBitFlip(t *testing.T) {
	// The paper's headline (Fig. 10): the relative-error syndrome model
	// yields a PVF greater than or equal to the naive single bit-flip.
	db := testDB(t)
	w := apps.NewHotspot(16, 8) // the app with the strongest masking
	flip, err := Run(Campaign{Workload: w, Model: ModelBitFlip, Injections: 250, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Run(Campaign{Workload: w, Model: ModelSyndrome, DB: db, Injections: 250, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hotspot PVF: bitflip=%.3f syndrome=%.3f", flip.PVF(), syn.PVF())
	if syn.PVF()+0.08 < flip.PVF() {
		t.Errorf("syndrome PVF %.3f markedly below bit-flip %.3f", syn.PVF(), flip.PVF())
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c := Campaign{
		Workload: apps.NewMxM(16), Model: ModelBitFlip,
		Injections: 60, Seed: 5, Workers: 3,
	}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally {
		t.Errorf("tallies differ: %+v vs %+v", a.Tally, b.Tally)
	}
}

func TestDoubleBitFlipFlipsTwoBits(t *testing.T) {
	res, err := Run(Campaign{
		Workload: apps.NewMxM(16), Model: ModelDoubleBitFlip,
		Injections: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SDCs() == 0 {
		t.Error("double bit-flips on MxM produced no SDCs")
	}
}

func TestCNNBitFlipCampaign(t *testing.T) {
	net := cnn.NewLeNetLite()
	res, err := RunCNN(CNNCampaign{
		Net: net, Input: cnn.LeNetInput(0), Model: CNNBitFlip,
		Injections: 150, Seed: 31, Critical: LeNetCritical,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LeNet bit-flip: %+v critical=%d", res.Tally, res.CriticalSDC)
	if res.Tally.Injections != 150 {
		t.Fatalf("injections = %d", res.Tally.Injections)
	}
	// CNNs mask aggressively (ReLU, pooling): PVF well below HPC codes.
	if res.PVF() > 0.5 {
		t.Errorf("LeNet PVF = %.2f, implausibly high", res.PVF())
	}
}

func TestCNNTileCampaignIsMoreSevere(t *testing.T) {
	db := testDB(t)
	net := cnn.NewLeNetLite()
	input := cnn.LeNetInput(0)
	tile, err := RunCNN(CNNCampaign{
		Net: net, Input: input, Model: CNNTile, DB: db,
		Injections: 150, Seed: 41, Critical: LeNetCritical,
	})
	if err != nil {
		t.Fatal(err)
	}
	flip, err := RunCNN(CNNCampaign{
		Net: net, Input: input, Model: CNNBitFlip,
		Injections: 150, Seed: 42, Critical: LeNetCritical,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LeNet: tile PVF=%.3f (crit %d) vs bitflip PVF=%.3f (crit %d)",
		tile.PVF(), tile.CriticalSDC, flip.PVF(), flip.CriticalSDC)
	// §VI: tile corruption drives PVF far above single-fault models.
	if tile.PVF() <= flip.PVF() {
		t.Errorf("tile PVF %.3f not above bit-flip PVF %.3f", tile.PVF(), flip.PVF())
	}
}

func TestYoloCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("yolo campaign is slow")
	}
	net := cnn.NewYoloLite()
	res, err := RunCNN(CNNCampaign{
		Net: net, Input: cnn.YoloInput(0), Model: CNNBitFlip,
		Injections: 40, Seed: 51, Critical: YoloCritical,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Yolo bit-flip: %+v critical=%d", res.Tally, res.CriticalSDC)
}

func TestOperandMagnitudeRangeSelection(t *testing.T) {
	// Covered indirectly by campaigns; spot-check the classifier.
	if faults.ClassifyMagnitude(1e-7) != faults.RangeSmall {
		t.Error("tiny value not Small")
	}
	if faults.ClassifyMagnitude(10) != faults.RangeMedium {
		t.Error("10 not Medium")
	}
	if faults.ClassifyMagnitude(1e10) != faults.RangeLarge {
		t.Error("1e10 not Large")
	}
}

func TestFigureProfileFormat(t *testing.T) {
	var c Counts
	c[isa.OpFFMA] = 70
	c[isa.OpIADD] = 20
	c[isa.OpMOV] = 10
	s := FigureProfile("test", c)
	if len(s) == 0 {
		t.Fatal("empty profile row")
	}
	sh := c.CategoryShares()
	if sh[isa.CatFP32] != 0.7 || sh[isa.CatINT32] != 0.2 || sh[isa.CatOther] != 0.1 {
		t.Errorf("shares = %v", sh)
	}
}

func TestInjectorAlwaysFires(t *testing.T) {
	// Every target index below InjectableTotal must hit an instruction.
	w := apps.NewMxM(8)
	profile, err := Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	total := profile.InjectableTotal()
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		in := &injector{
			target: uint64(float64(total) * frac),
			model:  ModelBitFlip,
			rng:    stats.NewRNG(1),
		}
		if _, err := w.Execute(emuHooks(in)); err != nil {
			t.Fatal(err)
		}
		if !in.fired {
			t.Errorf("target %d/%d did not fire", in.target, total)
		}
	}
}

// emuHooks wraps an injector into emulator hooks (test helper).
func emuHooks(in *injector) emu.Hooks {
	return emu.Hooks{Post: in.post}
}

func TestModuleFocusCampaign(t *testing.T) {
	db := testDB(t)
	mod := faults.ModFP32
	res, err := Run(Campaign{
		Workload: apps.NewMxM(16), Model: ModelSyndrome, DB: db,
		Injections: 60, Seed: 55, ModuleFocus: &mod,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Injections != 60 {
		t.Fatalf("injections = %d", res.Tally.Injections)
	}
	// Focusing on a module with no pools must still run (falls back to
	// the canonical 100% syndrome).
	ctl := faults.ModSFUCtl
	res2, err := Run(Campaign{
		Workload: apps.NewMxM(16), Model: ModelSyndrome, DB: db,
		Injections: 30, Seed: 56, ModuleFocus: &ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tally.Injections != 30 {
		t.Fatalf("fallback campaign broke: %+v", res2.Tally)
	}
}

func TestDoubleBitFlipChangesTwoBits(t *testing.T) {
	// Drive the injector directly through a minimal workload and verify
	// the recorded corruption flips exactly two bits.
	w := apps.NewMxM(8)
	profile, err := Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	total := profile.InjectableTotal()
	r := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		in := &injector{
			target: r.Uint64() % total,
			model:  ModelDoubleBitFlip,
			rng:    stats.NewRNG(uint64(trial)),
		}
		if _, err := w.Execute(emuHooks(in)); err != nil {
			continue // some corruptions crash; irrelevant here
		}
		if !in.fired {
			t.Fatalf("trial %d: injector did not fire", trial)
		}
		diff := in.oldBits ^ in.newBits
		n := 0
		for ; diff != 0; diff &= diff - 1 {
			n++
		}
		if n != 2 {
			t.Fatalf("double bit-flip changed %d bits", n)
		}
	}
}

func TestInjectionRecords(t *testing.T) {
	res, err := Run(Campaign{
		Workload: apps.NewMxM(16), Model: ModelBitFlip,
		Injections: 40, Seed: 77, RecordInjections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 40 {
		t.Fatalf("records = %d", len(res.Records))
	}
	outcomes := map[faults.Outcome]int{}
	for _, rec := range res.Records {
		if !Injectable(rec.Op) {
			t.Errorf("recorded injection into %s", rec.Op)
		}
		if rec.OldBits == rec.NewBits {
			t.Errorf("record without corruption: %+v", rec)
		}
		outcomes[rec.Outcome]++
	}
	if outcomes[faults.SDC] != res.Tally.SDCs() || outcomes[faults.DUE] != res.Tally.DUEs {
		t.Errorf("record outcomes %v disagree with tally %+v", outcomes, res.Tally)
	}
	// Default: no records kept.
	res2, err := Run(Campaign{Workload: apps.NewMxM(16), Model: ModelBitFlip, Injections: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Records != nil {
		t.Error("records kept without RecordInjections")
	}
}

func TestToleranceRelaxesSDCCriterion(t *testing.T) {
	// With a generous tolerance, low-order bit-flips that survive to the
	// output stop counting as SDCs; PVF must not increase.
	w := apps.NewMxM(16)
	exact, err := Run(Campaign{Workload: w, Model: ModelBitFlip, Injections: 150, Seed: 88})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(Campaign{Workload: w, Model: ModelBitFlip, Injections: 150, Seed: 88, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MxM PVF exact=%.3f tol(1e-3)=%.3f", exact.PVF(), loose.PVF())
	if loose.PVF() > exact.PVF() {
		t.Errorf("tolerance increased PVF: %.3f > %.3f", loose.PVF(), exact.PVF())
	}
	if loose.PVF() >= exact.PVF() {
		t.Log("note: no low-magnitude SDCs in this sample (acceptable)")
	}
}
