package swfi

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"gpufi/internal/apps"
	"gpufi/internal/cnn"
	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
)

// deadSample picks up to want dead countable indices, spread evenly over
// the index space so the sample crosses launches and opcodes.
func deadSample(lv *replay.Liveness, want int) []uint64 {
	total := lv.DeadSites()
	stride := total / uint64(want)
	if stride < 1 {
		stride = 1
	}
	var out []uint64
	var seen uint64
	for idx := uint64(0); idx < lv.Sites() && len(out) < want; idx++ {
		if _, dead := lv.Dead(idx); !dead {
			continue
		}
		if seen%stride == 0 {
			out = append(out, idx)
		}
		seen++
	}
	return out
}

// TestPruneCrossValidationHPC fully simulates ≥200 faults the dead-site
// index prunes and checks each one against the index's verdict and site
// record: the run must finish without a DUE, the final output must be
// bit-identical to golden (Masked), and the opcode, golden output bits
// and operand magnitude observed at fire time must equal the SiteInfo the
// prune path reproduces corruption draws from.
func TestPruneCrossValidationHPC(t *testing.T) {
	w := apps.NewHotspot(16, 4)
	prep, err := PrepareWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	crossValidateDeadSites(t, prep.trace, prep.injectable, func(in *injector, hooks emu.Hooks, pool *replay.Pool) ([]uint32, error) {
		p := replay.NewPlayer(prep.trace, in.target, hooks,
			func(c uint64) { in.counter = c }, func() bool { return in.fired }, pool)
		return w.ExecuteWith(p)
	}, prep.golden)
}

// TestPruneCrossValidationCNN is the CNN counterpart on LeNetLite.
func TestPruneCrossValidationCNN(t *testing.T) {
	net := cnn.NewLeNetLite()
	input := cnn.LeNetInput(0)
	prep, err := PrepareCNN(net, input)
	if err != nil {
		t.Fatal(err)
	}
	var goldenBits []uint32
	crossValidateDeadSites(t, prep.trace, prep.injectable, func(in *injector, hooks emu.Hooks, pool *replay.Pool) ([]uint32, error) {
		p := replay.NewPlayer(prep.trace, in.target, hooks,
			func(c uint64) { in.counter = c }, func() bool { return in.fired }, pool)
		out, err := net.RunWith(p, input, nil)
		if err != nil {
			return nil, err
		}
		bits := make([]uint32, len(out))
		for i, f := range out {
			bits[i] = floatBits(f)
		}
		return bits, nil
	}, func() []uint32 {
		if goldenBits == nil {
			goldenBits = make([]uint32, len(prep.golden))
			for i, f := range prep.golden {
				goldenBits[i] = floatBits(f)
			}
		}
		return goldenBits
	}())
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

// crossValidateDeadSites simulates ≥200 dead-indexed faults end to end.
func crossValidateDeadSites(t *testing.T, tr *replay.Trace, injectable uint64,
	run func(*injector, emu.Hooks, *replay.Pool) ([]uint32, error), golden []uint32) {
	t.Helper()
	lv := tr.Live
	if lv == nil {
		t.Fatal("trace has no liveness index")
	}
	sample := deadSample(lv, 220)
	if len(sample) < 200 {
		t.Fatalf("only %d dead sites available, need ≥200 for cross-validation", len(sample))
	}
	pool := &replay.Pool{}
	for _, idx := range sample {
		site, dead := lv.Dead(idx)
		if !dead {
			t.Fatalf("site %d lost its dead verdict", idx)
		}
		in := &injector{target: idx, model: ModelBitFlip, rng: stats.NewRNG(0xC0FFEE ^ idx)}
		var gotMag float64
		var gotOld uint32
		var sawFire bool
		hooks := emu.Hooks{Post: func(ev *emu.Event) {
			if !in.fired && Injectable(ev.Instr.Op) {
				n := uint64(ev.ActiveCount())
				if in.counter+n > in.target {
					lane := ev.NthActiveLane(int(in.target - in.counter))
					gotMag = operandMagnitude(ev, lane)
					gotOld, _ = ev.DstValue(lane)
					sawFire = true
				}
			}
			in.post(ev)
		}}
		out, err := run(in, hooks, pool)
		if err != nil {
			t.Fatalf("site %d: pruned fault caused a DUE: %v", idx, err)
		}
		if !sawFire || !in.fired {
			t.Fatalf("site %d: injector never fired", idx)
		}
		if !bitsEqual(golden, out) {
			t.Fatalf("site %d (op %v): pruned fault changed the output — dead verdict is wrong", idx, site.Op)
		}
		if site.Op != in.op {
			t.Errorf("site %d: SiteInfo op %v, fired op %v", idx, site.Op, in.op)
		}
		if site.OldBits != gotOld {
			t.Errorf("site %d: SiteInfo old bits %#x, observed %#x", idx, site.OldBits, gotOld)
		}
		if site.Mag != gotMag {
			t.Errorf("site %d: SiteInfo magnitude %v, observed %v", idx, site.Mag, gotMag)
		}
	}
	t.Logf("cross-validated %d pruned faults by full simulation", len(sample))
}

// TestCollapseCrossValidation fully simulates ≥200 collapsed members: the
// NoCollapse arm runs every injection of a duplicate-heavy campaign
// through the emulator, and its tally and per-injection records must be
// bit-identical to the collapsing arm's memoized copies. MxM(8) keeps the
// (target, mask) space small enough that a 5000-injection campaign
// collides often. NoPrune isolates the collapse layer on both arms.
func TestCollapseCrossValidation(t *testing.T) {
	base := Campaign{
		Workload: apps.NewMxM(8), Model: ModelBitFlip,
		Injections: 5000, Seed: 11,
		NoPrune: true, RecordInjections: true,
	}
	collapsed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.NoCollapse = true
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if collapsed.CollapsedFaults < 200 {
		t.Fatalf("only %d collapsed members (need ≥200 for cross-validation); shrink the workload or raise injections", collapsed.CollapsedFaults)
	}
	if fullRes.CollapsedFaults != 0 {
		t.Fatalf("NoCollapse arm collapsed %d faults", fullRes.CollapsedFaults)
	}
	if collapsed.Tally != fullRes.Tally {
		t.Fatalf("tally diverged: collapsed %+v, full %+v", collapsed.Tally, fullRes.Tally)
	}
	for i := range fullRes.Records {
		if collapsed.Records[i] != fullRes.Records[i] {
			t.Fatalf("record %d diverged: collapsed %+v, full %+v", i, collapsed.Records[i], fullRes.Records[i])
		}
	}
	t.Logf("cross-validated %d collapsed members by full simulation (%.1f%% of campaign)",
		collapsed.CollapsedFaults, 100*collapsed.CollapseRate())
}

// swLatticeModes is the full NoPrune × NoCollapse × NoFastForward mode
// lattice. NoFastForward implies the other two, so its four combinations
// must all reduce to the same plain full-replay campaign.
var swLatticeModes = []struct {
	name                  string
	noPrune, noCollapse, noFF bool
}{
	{"Pruned+Collapsed", false, false, false},
	{"Collapsed", true, false, false},
	{"Pruned", false, true, false},
	{"FastForward", true, true, false},
	{"FullReplay", true, true, true},
	{"FullReplay/prune", false, true, true},
	{"FullReplay/collapse", true, false, true},
	{"FullReplay/both", false, false, true},
}

// TestModeLatticeBitIdentical: every point of the mode lattice yields the
// same tally and per-injection records on a pure-host workload (Hotspot,
// high dead rate) and an impure-host one (Quicksort, reconvergence
// disabled). The default engine must actually prune and collapse nothing
// on the NoX arms and report the impure-host reason only where it holds.
func TestModeLatticeBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		w    *apps.Workload
		n    int
		pure bool
	}{
		{apps.NewHotspot(16, 4), 120, true},
		{apps.NewQuicksort(128), 120, false},
	} {
		t.Run(tc.w.Name, func(t *testing.T) {
			var baseline *Result
			for _, m := range swLatticeModes {
				res, err := Run(Campaign{
					Workload: tc.w, Model: ModelBitFlip,
					Injections: tc.n, Seed: 29,
					NoPrune: m.noPrune, NoCollapse: m.noCollapse, NoFastForward: m.noFF,
					RecordInjections: true,
				})
				if err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				if baseline == nil {
					baseline = res
					if !m.noPrune && tc.pure && res.PrunedFaults == 0 {
						t.Errorf("%s: default engine pruned nothing on a 33%%-dead workload", m.name)
					}
					continue
				}
				if res.Tally != baseline.Tally {
					t.Errorf("%s: tally %+v, baseline %+v", m.name, res.Tally, baseline.Tally)
				}
				for i := range res.Records {
					if res.Records[i] != baseline.Records[i] {
						t.Fatalf("%s: record %d = %+v, baseline %+v", m.name, i, res.Records[i], baseline.Records[i])
					}
				}
				if m.noPrune && res.PrunedFaults != 0 {
					t.Errorf("%s: pruned %d faults with pruning disabled", m.name, res.PrunedFaults)
				}
				if m.noCollapse && res.CollapsedFaults != 0 {
					t.Errorf("%s: collapsed %d faults with collapsing disabled", m.name, res.CollapsedFaults)
				}
				if m.noFF && (res.PrunedFaults != 0 || res.CollapsedFaults != 0 || res.SimInstrs != 0) {
					t.Errorf("%s: full replay reported accelerator telemetry %d/%d/%d",
						m.name, res.PrunedFaults, res.CollapsedFaults, res.SimInstrs)
				}
				wantReason := !tc.pure && !m.noFF
				if gotReason := res.NoReconvergeReason != ""; gotReason != wantReason {
					t.Errorf("%s: NoReconvergeReason = %q, want set=%v", m.name, res.NoReconvergeReason, wantReason)
				}
			}
		})
	}
}

// TestModeLatticeSyndrome: the prune path reproduces the syndrome model's
// corruption draws — which depend on the recorded operand magnitude —
// bit-identically, and the collapse layer stays off for syndrome models
// even when enabled (corruption depends on the faulted value).
func TestModeLatticeSyndrome(t *testing.T) {
	db := testDB(t)
	base := Campaign{
		Workload: apps.NewHotspot(16, 4), Model: ModelSyndrome, DB: db,
		Injections: 150, Seed: 31, RecordInjections: true,
	}
	pruned, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.NoPrune = true
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PrunedFaults == 0 {
		t.Fatal("syndrome campaign pruned nothing on a heavily dead workload")
	}
	if pruned.CollapsedFaults != 0 || fullRes.CollapsedFaults != 0 {
		t.Fatalf("syndrome model must never collapse (got %d/%d)",
			pruned.CollapsedFaults, fullRes.CollapsedFaults)
	}
	if pruned.Tally != fullRes.Tally {
		t.Fatalf("tally diverged: pruned %+v, full %+v", pruned.Tally, fullRes.Tally)
	}
	for i := range fullRes.Records {
		if pruned.Records[i] != fullRes.Records[i] {
			t.Fatalf("record %d diverged: pruned %+v, full %+v", i, pruned.Records[i], fullRes.Records[i])
		}
	}
}

// TestCNNModeLattice: the CNN instruction-model lattice is bit-identical
// across all mode combinations (tally, critical-SDC count).
func TestCNNModeLattice(t *testing.T) {
	net := cnn.NewLeNetLite()
	input := cnn.LeNetInput(0)
	prep, err := PrepareCNN(net, input)
	if err != nil {
		t.Fatal(err)
	}
	var baseline *CNNResult
	for _, m := range swLatticeModes {
		c := CNNCampaign{
			Net: net, Input: input, Model: CNNBitFlip,
			Injections: 80, Seed: 37, Critical: LeNetCritical,
			NoPrune: m.noPrune, NoCollapse: m.noCollapse, NoFastForward: m.noFF,
		}
		if !m.noFF {
			c.Prepared = prep
		}
		res, err := RunCNN(c)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if res.Tally != baseline.Tally || res.CriticalSDC != baseline.CriticalSDC {
			t.Errorf("%s: tally %+v crit %d, baseline %+v crit %d",
				m.name, res.Tally, res.CriticalSDC, baseline.Tally, baseline.CriticalSDC)
		}
		if m.noPrune && res.PrunedFaults != 0 {
			t.Errorf("%s: pruned %d faults with pruning disabled", m.name, res.PrunedFaults)
		}
		if m.noCollapse && res.CollapsedFaults != 0 {
			t.Errorf("%s: collapsed %d faults with collapsing disabled", m.name, res.CollapsedFaults)
		}
	}
}

// TestSWProgressThrottled mirrors internal/rtlfi's progress-throttle test
// for the software campaign: ~1/1000 granularity with a guaranteed final
// (total, total) call, on both fan-out helpers.
func TestSWProgressThrottled(t *testing.T) {
	const n = 5000
	var (
		mu       sync.Mutex
		calls    int
		sawFinal bool
	)
	check := func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != n {
			t.Errorf("progress total = %d, want %d", total, n)
		}
		if done < 1 || done > total {
			t.Errorf("progress done = %d outside [1, %d]", done, total)
		}
		if done == total {
			sawFinal = true
		}
	}
	assertThrottled := func(t *testing.T, completed int) {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		if completed != n {
			t.Fatalf("campaign completed %d injections, want %d", completed, n)
		}
		if !sawFinal {
			t.Error("final (total, total) progress call never arrived")
		}
		if max := n/(n/1000) + 10; calls > max {
			t.Errorf("progress fired %d times for %d injections, want <= %d (throttled)", calls, n, max)
		}
		if calls == 0 {
			t.Error("progress never fired")
		}
	}

	t.Run("Campaign", func(t *testing.T) {
		res, err := Run(Campaign{
			Workload: apps.NewMxM(8), Model: ModelBitFlip,
			Injections: n, Seed: 41, Progress: check,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertThrottled(t, res.Tally.Injections)
	})

	t.Run("WithSide", func(t *testing.T) {
		mu.Lock()
		calls, sawFinal = 0, false
		mu.Unlock()
		tally, _, completed := parallelInjectionsWithSide(context.Background(), n, 4, 43, check,
			func(i int, r *stats.RNG) (faults.Outcome, bool) { return faults.Masked, false })
		if tally.Injections != n {
			t.Fatalf("tally injections = %d, want %d", tally.Injections, n)
		}
		assertThrottled(t, completed)
	})
}

// TestCollapseAccounting: collapsed members credit the representative's
// simulated+skipped instructions to SkippedInstrs, and pruned faults
// credit the whole run, so the replay-speedup telemetry stays meaningful
// across modes.
func TestCollapseAccounting(t *testing.T) {
	res, err := Run(Campaign{
		Workload: apps.NewMxM(8), Model: ModelBitFlip,
		Injections: 5000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollapsedFaults == 0 {
		t.Fatal("expected collapsed members on the duplicate-heavy campaign")
	}
	if res.PrunedFaults == 0 {
		t.Fatal("expected pruned faults on MxM(8), which has a non-trivial dead rate")
	}
	if res.SkippedInstrs == 0 || res.SimInstrs == 0 {
		t.Fatalf("telemetry counters empty: sim=%d skipped=%d", res.SimInstrs, res.SkippedInstrs)
	}
	sum := res.PrunedFaults + res.CollapsedFaults
	if sum > uint64(res.Tally.Injections) {
		t.Fatalf("pruned %d + collapsed %d exceeds %d injections", res.PrunedFaults, res.CollapsedFaults, res.Tally.Injections)
	}
	if got := fmt.Sprintf("%.3f/%.3f", res.PruneRate(), res.CollapseRate()); got == "0.000/0.000" {
		t.Fatal("rates report zero despite non-zero counters")
	}
}
