package swfi

import (
	"math"
	"testing"
)

func TestOutputsMatchSpecialValuesSymmetric(t *testing.T) {
	inf := math.Float32bits(float32(math.Inf(1)))
	ninf := math.Float32bits(float32(math.Inf(-1)))
	nan := math.Float32bits(float32(math.NaN()))
	big := math.Float32bits(3.0e38)
	one := math.Float32bits(1.0)

	cases := []struct {
		name        string
		golden, out uint32
		tol         float64
		want        bool
	}{
		// The regression: an Inf golden against a large finite output used
		// to slip through the relative-error formula with an Inf bound.
		{"inf golden vs finite", inf, big, 1e-3, false},
		{"neg-inf golden vs finite", ninf, big, 1e-3, false},
		{"finite golden vs inf", big, inf, 1e-3, false},
		{"nan golden vs finite", nan, one, 1e-3, false},
		{"inf golden vs inf (bitwise)", inf, inf, 1e-3, true},
		{"inf golden vs neg-inf", inf, ninf, 1e-3, false},
		{"finite within tolerance", one, math.Float32bits(1.0 + 1e-6), 1e-3, true},
		{"finite outside tolerance", one, math.Float32bits(1.5), 1e-3, false},
	}
	for _, c := range cases {
		if got := outputsMatch([]uint32{c.golden}, []uint32{c.out}, c.tol); got != c.want {
			t.Errorf("%s: outputsMatch = %v, want %v", c.name, got, c.want)
		}
	}
}
