package cnn

import (
	"fmt"
	"math"

	"gpufi/internal/emu"
	"gpufi/internal/kasm"
	"gpufi/internal/mxm"
	"gpufi/internal/replay"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

// Layer is one network stage with its kernel and memory map.
type Layer struct {
	Name   string
	Prog   *kasm.Program
	Grid   int
	Block  int
	OutOff int // word offset of the layer's output feature map
	OutC   int
	OutH   int
	OutW   int
}

// OutWords returns the size of the layer's output.
func (l *Layer) OutWords() int { return l.OutC * l.OutH * l.OutW }

// Network is a runnable CNN: an activation arena, a weight image and the
// layer sequence.
type Network struct {
	Name    string
	Layers  []Layer
	Words   int      // total global image size
	weights []uint32 // weight/bias image appended after the activations
	wBase   int      // word offset of the weight image
	inOff   int
	inWords int
	outOff  int
	outN    int
}

// InputWords returns the expected input size.
func (n *Network) InputWords() int { return n.inWords }

// OutputWords returns the network output size.
func (n *Network) OutputWords() int { return n.outN }

// OutputRegion returns the arena region the host reads after the last
// launch — the seed for replay live-in analysis.
func (n *Network) OutputRegion() (off, words int) { return n.outOff, n.outN }

// TileInjection corrupts an 8x8 tile of one layer's output feature map
// after that layer completes — the software realisation of the t-MxM RTL
// fault model (§IV-B: "The fault injector picks a random tile during the
// execution of a random CNN layer and modifies its output elements
// according to the syndrome").
type TileInjection struct {
	Layer   int
	Channel int
	Row     int
	Col     int
	Corr    syndrome.TileCorruption
	NegSign bool
}

// Run executes the network on the input activations. hooks instruments
// every kernel launch; inj, when non-nil, applies the tile corruption.
// The returned slice holds the network's raw output (logits or detection
// maps).
func (n *Network) Run(input []float32, hooks emu.Hooks, inj *TileInjection) ([]float32, error) {
	return n.RunWith(&replay.Plain{Hooks: hooks}, input, inj)
}

// RunWith is Run on an explicit launch runner — a replay.Recorder to
// capture a fast-forward trace, or a replay.Player to fast-forward an
// injection run. The tile corruption is applied by host code between
// launches, so a Player that skips all pre-injection layers via recorded
// write-sets reproduces a full run bit-identically.
func (n *Network) RunWith(rt replay.Runner, input []float32, inj *TileInjection) ([]float32, error) {
	if len(input) != n.inWords {
		return nil, fmt.Errorf("cnn %s: input %d words, want %d", n.Name, len(input), n.inWords)
	}
	g := rt.Arena(n.Words)
	for i, v := range input {
		g[n.inOff+i] = math.Float32bits(v)
	}
	copy(g[n.wBase:], n.weights)
	for li := range n.Layers {
		l := &n.Layers[li]
		if err := rt.Launch(&emu.Launch{
			Prog: l.Prog, Grid: l.Grid, Block: l.Block,
			Global: g,
		}); err != nil {
			return nil, fmt.Errorf("cnn %s layer %s: %w", n.Name, l.Name, err)
		}
		if inj != nil && inj.Layer == li {
			n.applyTile(g, l, inj)
		}
	}
	out := make([]float32, n.outN)
	for i := range out {
		out[i] = math.Float32frombits(g[n.outOff+i])
	}
	return out, nil
}

// applyTile corrupts the 8x8 tile of the layer output.
func (n *Network) applyTile(g []uint32, l *Layer, inj *TileInjection) {
	ch := inj.Channel % l.OutC
	r0 := clampTile(inj.Row, l.OutH)
	c0 := clampTile(inj.Col, l.OutW)
	for i, bad := range inj.Corr.Mask {
		if !bad {
			continue
		}
		dr, dc := i/mxm.Tile, i%mxm.Tile
		r, c := r0+dr, c0+dc
		if r >= l.OutH || c >= l.OutW {
			continue
		}
		idx := l.OutOff + ch*l.OutH*l.OutW + r*l.OutW + c
		g[idx] = syndrome.ApplyRelErrF32(g[idx], inj.Corr.RelErr[i], inj.NegSign)
	}
}

// clampTile positions an 8x8 tile origin inside a dimension that may be
// smaller than the tile.
func clampTile(pos, dim int) int {
	if dim <= mxm.Tile {
		return 0
	}
	max := dim - mxm.Tile
	if pos < 0 {
		pos = 0
	}
	return pos % (max + 1)
}

// RandomTileInjection draws a uniformly placed tile corruption for the
// network from the syndrome database. ok is false when the database holds
// no t-MxM characterisation.
func (n *Network) RandomTileInjection(db *syndrome.DB, r *stats.RNG) (*TileInjection, bool) {
	corr, ok := db.SampleTile(r)
	if !ok {
		return nil, false
	}
	// Tiles corrupt convolution outputs (the MxM-equivalent layers):
	// exclude the final layer index only if there are alternatives.
	li := r.Intn(len(n.Layers))
	l := &n.Layers[li]
	return &TileInjection{
		Layer:   li,
		Channel: r.Intn(l.OutC),
		Row:     r.Intn(maxi(1, l.OutH-mxm.Tile+1)),
		Col:     r.Intn(maxi(1, l.OutW-mxm.Tile+1)),
		Corr:    corr,
		NegSign: r.Bool(),
	}, true
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// netBuilder accumulates layers and the weight image.
type netBuilder struct {
	n       *Network
	actTop  int // activation arena watermark
	weights []float32
	rng     *stats.RNG
}

func newNetBuilder(name string, inC, inH, inW int, seed uint64) *netBuilder {
	nb := &netBuilder{
		n:   &Network{Name: name, inOff: 0, inWords: inC * inH * inW},
		rng: stats.NewRNG(seed),
	}
	nb.actTop = nb.n.inWords
	return nb
}

// wAppend adds He-style uniform weights to the weight image and returns
// their offset relative to the weight base.
func (nb *netBuilder) wAppend(count, fanIn int) int {
	scale := math.Sqrt(3.0 / float64(fanIn))
	off := len(nb.weights)
	for i := 0; i < count; i++ {
		nb.weights = append(nb.weights, float32(nb.rng.Float64Range(-scale, scale)))
	}
	return off
}

// bAppend adds small biases.
func (nb *netBuilder) bAppend(count int) int {
	off := len(nb.weights)
	for i := 0; i < count; i++ {
		nb.weights = append(nb.weights, float32(nb.rng.Float64Range(-0.05, 0.05)))
	}
	return off
}

// finalize resolves weight offsets (which depend on the arena size) by
// rebuilding layer programs through the provided closures.
type pendingLayer struct {
	name             string
	build            func(wBase int32) *kasm.Program
	threads          int
	outOff           int
	outC, outH, outW int
}

func (nb *netBuilder) finish(pending []pendingLayer, outN int) *Network {
	n := nb.n
	n.wBase = nb.actTop
	n.Words = nb.actTop + len(nb.weights)
	n.weights = make([]uint32, len(nb.weights))
	for i, v := range nb.weights {
		n.weights[i] = math.Float32bits(v)
	}
	for _, pl := range pending {
		block := 128
		if pl.threads < block {
			block = pl.threads
		}
		grid := (pl.threads + block - 1) / block
		n.Layers = append(n.Layers, Layer{
			Name: pl.name, Prog: pl.build(int32(n.wBase)),
			Grid: grid, Block: block,
			OutOff: pl.outOff, OutC: pl.outC, OutH: pl.outH, OutW: pl.outW,
		})
	}
	last := n.Layers[len(n.Layers)-1]
	n.outOff = last.OutOff
	n.outN = outN
	return n
}
