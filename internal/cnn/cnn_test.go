package cnn

import (
	"math"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/mxm"
	"gpufi/internal/rtlfi"
	"gpufi/internal/stats"
	"gpufi/internal/syndrome"
)

func TestLeNetLiteRuns(t *testing.T) {
	nw := NewLeNetLite()
	out, err := nw.Run(LeNetInput(0), emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != lenetOut {
		t.Fatalf("output = %d logits, want %d", len(out), lenetOut)
	}
	nonzero := 0
	for _, v := range out {
		if v != 0 {
			nonzero++
		}
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("logit is %v", v)
		}
	}
	if nonzero == 0 {
		t.Fatal("all logits zero")
	}
}

func TestLeNetLiteDeterministic(t *testing.T) {
	nw := NewLeNetLite()
	a, err := nw.Run(LeNetInput(1), emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(LeNetInput(1), emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic logits")
		}
	}
}

func TestLeNetVariantsClassifyDifferently(t *testing.T) {
	nw := NewLeNetLite()
	classes := map[int]bool{}
	for v := 0; v < 6; v++ {
		out, err := nw.Run(LeNetInput(v), emu.Hooks{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		classes[Classify(out)] = true
	}
	if len(classes) < 2 {
		t.Errorf("all variants map to one class %v — degenerate classifier", classes)
	}
}

func TestYoloLiteRunsAndDetects(t *testing.T) {
	nw := NewYoloLite()
	out, err := nw.Run(YoloInput(0), emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != yoloOut*yoloGrid*yoloGrid {
		t.Fatalf("output = %d words", len(out))
	}
	dets := DecodeDetections(out)
	t.Logf("yolo golden detections: %d", len(dets))
	for _, d := range dets {
		if d.Score <= 0.5 || d.W <= 0 || d.H <= 0 {
			t.Errorf("bad detection %+v", d)
		}
	}
}

func TestConvMatchesHostReference(t *testing.T) {
	// Validate conv1 of LeNetLite against a host convolution.
	nw := NewLeNetLite()
	input := LeNetInput(2)
	g := make([]uint32, nw.Words)
	for i, v := range input {
		g[nw.inOff+i] = math.Float32bits(v)
	}
	copy(g[nw.wBase:], nw.weights)
	l := nw.Layers[0]
	if _, err := emu.Run(&emu.Launch{Prog: l.Prog, Grid: l.Grid, Block: l.Block, Global: g}); err != nil {
		t.Fatal(err)
	}
	weights := make([]float32, len(nw.weights))
	for i, b := range nw.weights {
		weights[i] = math.Float32frombits(b)
	}
	for co := 0; co < lenetC1; co++ {
		for y := 0; y < lenetIn; y++ {
			for x := 0; x < lenetIn; x++ {
				var acc float64 = float64(weights[lenetC1*9+co]) // bias after w1 block
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						iy, ix := y+ky-1, x+kx-1
						if iy < 0 || iy >= lenetIn || ix < 0 || ix >= lenetIn {
							continue
						}
						acc += float64(input[iy*lenetIn+ix]) * float64(weights[co*9+ky*3+kx])
					}
				}
				if acc < 0 {
					acc = 0 // ReLU
				}
				got := float64(math.Float32frombits(g[l.OutOff+co*lenetIn*lenetIn+y*lenetIn+x]))
				if math.Abs(got-acc) > 1e-4*(1+math.Abs(acc)) {
					t.Fatalf("conv1[%d][%d][%d] = %v, want %v", co, y, x, got, acc)
				}
			}
		}
	}
}

func TestPoolTakesMaxima(t *testing.T) {
	nw := NewLeNetLite()
	input := LeNetInput(3)
	g := make([]uint32, nw.Words)
	for i, v := range input {
		g[i] = math.Float32bits(v)
	}
	copy(g[nw.wBase:], nw.weights)
	conv1, pool1 := nw.Layers[0], nw.Layers[1]
	for _, l := range []Layer{conv1, pool1} {
		if _, err := emu.Run(&emu.Launch{Prog: l.Prog, Grid: l.Grid, Block: l.Block, Global: g}); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < lenetC1; c++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				base := conv1.OutOff + c*lenetIn*lenetIn + 2*y*lenetIn + 2*x
				m := math.Float32frombits(g[base])
				for _, off := range []int{1, lenetIn, lenetIn + 1} {
					if v := math.Float32frombits(g[base+off]); v > m {
						m = v
					}
				}
				got := math.Float32frombits(g[pool1.OutOff+c*64+y*8+x])
				if got != m {
					t.Fatalf("pool[%d][%d][%d] = %v, want %v", c, y, x, got, m)
				}
			}
		}
	}
}

func TestTileInjectionChangesOutput(t *testing.T) {
	nw := NewLeNetLite()
	input := LeNetInput(0)
	golden, err := nw.Run(input, emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj := &TileInjection{
		Layer: 0, Channel: 1, Row: 4, Col: 4,
		Corr: allTileCorruption(2.0),
	}
	faulty, err := nw.Run(input, emu.Hooks{}, inj)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range golden {
		if golden[i] != faulty[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("whole-tile 200% corruption of conv1 left logits unchanged")
	}
}

func allTileCorruption(rel float64) syndrome.TileCorruption {
	var c syndrome.TileCorruption
	c.Pattern = faults.PatAll
	for i := range c.Mask {
		c.Mask[i] = true
		c.RelErr[i] = rel
	}
	return c
}

func TestTileInjectionLastLayerAffectsExactWords(t *testing.T) {
	nw := NewYoloLite()
	input := YoloInput(1)
	golden, err := nw.Run(input, emu.Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var corr syndrome.TileCorruption
	corr.Mask[0] = true // element (0,0) of the tile
	corr.RelErr[0] = 1.0
	inj := &TileInjection{Layer: len(nw.Layers) - 1, Channel: 0, Row: 0, Col: 0, Corr: corr}
	faulty, err := nw.Run(input, emu.Hooks{}, inj)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range golden {
		if golden[i] != faulty[i] {
			changed++
			if i != 0 {
				t.Errorf("unexpected change at output %d", i)
			}
		}
	}
	if changed != 1 {
		t.Errorf("changed %d words, want exactly 1", changed)
	}
}

func TestRandomTileInjectionFromDB(t *testing.T) {
	db := syndrome.New()
	// Synthetic t-MxM pool.
	res := &rtlfi.TMXMResult{
		Spec:        rtlfi.TMXMSpec{Module: faults.ModSched, Kind: mxm.TileRandom, Seed: 3},
		PatternErrs: map[faults.Pattern][]float64{},
	}
	pl := stats.PowerLaw{Alpha: 2.1, Xmin: 0.01}
	r0 := stats.NewRNG(4)
	for i := 0; i < 50; i++ {
		res.Tally.Add(faults.SDC, 8)
		res.Patterns[faults.PatRow]++
		for k := 0; k < 8; k++ {
			res.PatternErrs[faults.PatRow] = append(res.PatternErrs[faults.PatRow], pl.Sample(r0))
		}
	}
	db.AddTMXM(res)
	nw := NewLeNetLite()
	r := stats.NewRNG(5)
	inj, ok := nw.RandomTileInjection(db, r)
	if !ok {
		t.Fatal("no injection drawn")
	}
	if inj.Layer < 0 || inj.Layer >= len(nw.Layers) {
		t.Errorf("layer %d out of range", inj.Layer)
	}
	if inj.Corr.Count() == 0 {
		t.Error("empty corruption")
	}
}

func TestClassifyAndIoU(t *testing.T) {
	if Classify([]float32{0.1, 3, 2}) != 1 {
		t.Error("argmax wrong")
	}
	a := Detection{X: 10, Y: 10, W: 4, H: 4}
	if got := IoU(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := Detection{X: 100, Y: 100, W: 4, H: 4}
	if IoU(a, b) != 0 {
		t.Error("disjoint IoU != 0")
	}
	c := Detection{X: 12, Y: 10, W: 4, H: 4} // half overlap in x
	if got := IoU(a, c); got <= 0.3 || got >= 0.4 {
		t.Errorf("partial IoU = %v, want ~1/3", got)
	}
}

func TestMisdetection(t *testing.T) {
	g := []Detection{{X: 10, Y: 10, W: 4, H: 4, Score: 0.9}}
	same := []Detection{{X: 10.2, Y: 10, W: 4, H: 4, Score: 0.8}}
	if Misdetection(g, same) {
		t.Error("near-identical boxes flagged as misdetection")
	}
	moved := []Detection{{X: 20, Y: 20, W: 4, H: 4, Score: 0.9}}
	if !Misdetection(g, moved) {
		t.Error("moved box not flagged")
	}
	if !Misdetection(g, nil) {
		t.Error("lost detection not flagged")
	}
}

func TestNetworkProfileIsFFMADominated(t *testing.T) {
	// Fig. 3: CNNs are dominated by FP32 (FFMA) work.
	var counts [isa.NumOpcodes]uint64
	hooks := emu.Hooks{Post: func(ev *emu.Event) {
		counts[ev.Instr.Op] += uint64(ev.ActiveCount())
	}}
	nw := NewLeNetLite()
	if _, err := nw.Run(LeNetInput(0), hooks, nil); err != nil {
		t.Fatal(err)
	}
	var total, ffma uint64
	for op, c := range counts {
		total += c
		if isa.Opcode(op) == isa.OpFFMA {
			ffma += c
		}
	}
	share := float64(ffma) / float64(total)
	t.Logf("LeNetLite FFMA share = %.2f (total %d thread-instrs)", share, total)
	if share < 0.15 {
		t.Errorf("FFMA share %.2f implausibly low for a CNN", share)
	}
}

func TestTileClamping(t *testing.T) {
	if clampTile(5, 4) != 0 {
		t.Error("tile must clamp to 0 in small dimensions")
	}
	if got := clampTile(9, 16); got < 0 || got > 8 {
		t.Errorf("clamp = %d", got)
	}
	_ = mxm.Tile
}
