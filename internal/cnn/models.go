package cnn

import (
	"math"

	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

// LeNetLite geometry: a LeNET-class classifier (conv/pool/conv/pool/FC
// with ReLU), scaled to a 16x16 input so injection campaigns run in
// minutes. Layer footprints are small — a corrupted 8x8 tile covers a
// large share of a feature map, the property behind the paper's finding
// that tile corruption wrecks "a significant part of the layer" in LeNET
// (§VI).
const (
	lenetIn   = 16
	lenetC1   = 4
	lenetC2   = 8
	lenetFCIn = lenetC2 * 4 * 4
	lenetOut  = 10
)

// NewLeNetLite constructs the classifier with deterministic weights.
func NewLeNetLite() *Network {
	nb := newNetBuilder("LeNetLite", 1, lenetIn, lenetIn, 0x1E4E7)
	var pending []pendingLayer
	alloc := func(words int) int {
		off := nb.actTop
		nb.actTop += words
		return off
	}

	// conv1: 1x16x16 -> 4x16x16, ReLU.
	c1Out := alloc(lenetC1 * lenetIn * lenetIn)
	w1 := nb.wAppend(lenetC1*1*9, 1*9)
	b1 := nb.bAppend(lenetC1)
	pending = append(pending, pendingLayer{
		name: "conv1", threads: lenetC1 * lenetIn * lenetIn,
		outOff: c1Out, outC: lenetC1, outH: lenetIn, outW: lenetIn,
		build: func(wb int32) *kasm.Program {
			return buildConv(convGeom{
				inC: 1, h: lenetIn, w: lenetIn, outC: lenetC1, act: actReLU,
				inOff: 0, outOff: int32(c1Out),
				wOff: wb + int32(w1), bOff: wb + int32(b1),
			})
		},
	})
	// pool1: 4x16x16 -> 4x8x8.
	p1Out := alloc(lenetC1 * 8 * 8)
	pending = append(pending, pendingLayer{
		name: "pool1", threads: lenetC1 * 8 * 8,
		outOff: p1Out, outC: lenetC1, outH: 8, outW: 8,
		build: func(int32) *kasm.Program {
			return buildPool(poolGeom{
				c: lenetC1, h: lenetIn, w: lenetIn,
				inOff: int32(c1Out), outOff: int32(p1Out),
			})
		},
	})
	// conv2: 4x8x8 -> 8x8x8, ReLU.
	c2Out := alloc(lenetC2 * 8 * 8)
	w2 := nb.wAppend(lenetC2*lenetC1*9, lenetC1*9)
	b2 := nb.bAppend(lenetC2)
	pending = append(pending, pendingLayer{
		name: "conv2", threads: lenetC2 * 8 * 8,
		outOff: c2Out, outC: lenetC2, outH: 8, outW: 8,
		build: func(wb int32) *kasm.Program {
			return buildConv(convGeom{
				inC: lenetC1, h: 8, w: 8, outC: lenetC2, act: actReLU,
				inOff: int32(p1Out), outOff: int32(c2Out),
				wOff: wb + int32(w2), bOff: wb + int32(b2),
			})
		},
	})
	// pool2: 8x8x8 -> 8x4x4.
	p2Out := alloc(lenetC2 * 4 * 4)
	pending = append(pending, pendingLayer{
		name: "pool2", threads: lenetC2 * 4 * 4,
		outOff: p2Out, outC: lenetC2, outH: 4, outW: 4,
		build: func(int32) *kasm.Program {
			return buildPool(poolGeom{
				c: lenetC2, h: 8, w: 8,
				inOff: int32(c2Out), outOff: int32(p2Out),
			})
		},
	})
	// fc: 128 -> 10 logits.
	fcOut := alloc(lenetOut)
	wf := nb.wAppend(lenetOut*lenetFCIn, lenetFCIn)
	bf := nb.bAppend(lenetOut)
	pending = append(pending, pendingLayer{
		name: "fc", threads: 32,
		outOff: fcOut, outC: lenetOut, outH: 1, outW: 1,
		build: func(wb int32) *kasm.Program {
			return buildFC(fcGeom{
				inN: lenetFCIn, outN: lenetOut,
				inOff: int32(p2Out), outOff: int32(fcOut),
				wOff: wb + int32(wf), bOff: wb + int32(bf),
			})
		},
	})
	return nb.finish(pending, lenetOut)
}

// Classify returns the argmax class of a logits vector.
func Classify(logits []float32) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// LeNetInput synthesises a deterministic MNIST-like input: a smooth blob
// pattern selected by digit-like index.
func LeNetInput(variant int) []float32 {
	r := stats.NewRNG(0xD161 + uint64(variant)*977)
	img := make([]float32, lenetIn*lenetIn)
	// Superpose signed Gaussian blobs, normalised and zero-centred so
	// different variants drive different feature-map signs.
	for blob := 0; blob < 2+variant%4; blob++ {
		cx := r.Float64Range(2, 14)
		cy := r.Float64Range(2, 14)
		s := r.Float64Range(1.2, 4)
		amp := r.Float64Range(0.5, 1)
		if r.Bool() {
			amp = -amp
		}
		for y := 0; y < lenetIn; y++ {
			for x := 0; x < lenetIn; x++ {
				d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
				img[y*lenetIn+x] += float32(amp * math.Exp(-d2/(2*s*s)))
			}
		}
	}
	var max float32
	for _, v := range img {
		if a := float32(math.Abs(float64(v))); a > max {
			max = a
		}
	}
	for i := range img {
		img[i] /= max
	}
	return img
}

// YoloLite geometry: a detection miniature (three convolutions with leaky
// ReLU, pooling between them, and a linear 5-channel prediction head over
// an 8x8 grid: objectness + 4 box parameters per cell). Feature maps are
// large relative to an 8x8 tile, mirroring YOLO's "even a fully corrupted
// 8x8 tile represents a small percentage of the matrix" (§VI).
const (
	yoloIn  = 32
	yoloC1  = 8
	yoloC2  = 16
	yoloOut = 5 // objectness, dx, dy, w, h
	yoloGrid = 8
)

// NewYoloLite constructs the detector with deterministic weights.
func NewYoloLite() *Network {
	nb := newNetBuilder("YoloLite", 1, yoloIn, yoloIn, 0x101_0)
	var pending []pendingLayer
	alloc := func(words int) int {
		off := nb.actTop
		nb.actTop += words
		return off
	}

	// conv1: 1x32x32 -> 8x32x32, leaky.
	c1Out := alloc(yoloC1 * yoloIn * yoloIn)
	w1 := nb.wAppend(yoloC1*1*9, 9)
	b1 := nb.bAppend(yoloC1)
	pending = append(pending, pendingLayer{
		name: "conv1", threads: yoloC1 * yoloIn * yoloIn,
		outOff: c1Out, outC: yoloC1, outH: yoloIn, outW: yoloIn,
		build: func(wb int32) *kasm.Program {
			return buildConv(convGeom{
				inC: 1, h: yoloIn, w: yoloIn, outC: yoloC1, act: actLeaky,
				inOff: 0, outOff: int32(c1Out),
				wOff: wb + int32(w1), bOff: wb + int32(b1),
			})
		},
	})
	// pool1: 8x32x32 -> 8x16x16.
	p1Out := alloc(yoloC1 * 16 * 16)
	pending = append(pending, pendingLayer{
		name: "pool1", threads: yoloC1 * 16 * 16,
		outOff: p1Out, outC: yoloC1, outH: 16, outW: 16,
		build: func(int32) *kasm.Program {
			return buildPool(poolGeom{
				c: yoloC1, h: yoloIn, w: yoloIn,
				inOff: int32(c1Out), outOff: int32(p1Out),
			})
		},
	})
	// conv2: 8x16x16 -> 16x16x16, leaky.
	c2Out := alloc(yoloC2 * 16 * 16)
	w2 := nb.wAppend(yoloC2*yoloC1*9, yoloC1*9)
	b2 := nb.bAppend(yoloC2)
	pending = append(pending, pendingLayer{
		name: "conv2", threads: yoloC2 * 16 * 16,
		outOff: c2Out, outC: yoloC2, outH: 16, outW: 16,
		build: func(wb int32) *kasm.Program {
			return buildConv(convGeom{
				inC: yoloC1, h: 16, w: 16, outC: yoloC2, act: actLeaky,
				inOff: int32(p1Out), outOff: int32(c2Out),
				wOff: wb + int32(w2), bOff: wb + int32(b2),
			})
		},
	})
	// pool2: 16x16x16 -> 16x8x8.
	p2Out := alloc(yoloC2 * yoloGrid * yoloGrid)
	pending = append(pending, pendingLayer{
		name: "pool2", threads: yoloC2 * yoloGrid * yoloGrid,
		outOff: p2Out, outC: yoloC2, outH: yoloGrid, outW: yoloGrid,
		build: func(int32) *kasm.Program {
			return buildPool(poolGeom{
				c: yoloC2, h: 16, w: 16,
				inOff: int32(c2Out), outOff: int32(p2Out),
			})
		},
	})
	// head: 16x8x8 -> 5x8x8, linear.
	headOut := alloc(yoloOut * yoloGrid * yoloGrid)
	wh := nb.wAppend(yoloOut*yoloC2*9, yoloC2*9)
	bh := nb.bAppend(yoloOut)
	pending = append(pending, pendingLayer{
		name: "head", threads: yoloOut * yoloGrid * yoloGrid,
		outOff: headOut, outC: yoloOut, outH: yoloGrid, outW: yoloGrid,
		build: func(wb int32) *kasm.Program {
			return buildConv(convGeom{
				inC: yoloC2, h: yoloGrid, w: yoloGrid, outC: yoloOut, act: actNone,
				inOff: int32(p2Out), outOff: int32(headOut),
				wOff: wb + int32(wh), bOff: wb + int32(bh),
			})
		},
	})
	return nb.finish(pending, yoloOut*yoloGrid*yoloGrid)
}

// YoloInput synthesises a deterministic detection scene: bright boxes on
// a dim background.
func YoloInput(variant int) []float32 {
	r := stats.NewRNG(0x101D + uint64(variant)*331)
	img := make([]float32, yoloIn*yoloIn)
	for i := range img {
		img[i] = float32(r.Float64Range(0, 0.15))
	}
	for obj := 0; obj < 2+variant%2; obj++ {
		w := 4 + r.Intn(8)
		h := 4 + r.Intn(8)
		x0 := r.Intn(yoloIn - w)
		y0 := r.Intn(yoloIn - h)
		v := float32(r.Float64Range(0.7, 1))
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				img[y*yoloIn+x] = v
			}
		}
	}
	return img
}

// Detection is one decoded YoloLite prediction.
type Detection struct {
	Cell       int // grid cell index
	Score      float64
	X, Y, W, H float64
}

// DecodeDetections thresholds the objectness map (sigmoid(o) > 0.5, i.e.
// raw o > 0) and decodes the box geometry.
func DecodeDetections(out []float32) []Detection {
	const cells = yoloGrid * yoloGrid
	var dets []Detection
	for cell := 0; cell < cells; cell++ {
		o := float64(out[cell]) // channel 0: objectness
		if o <= 0 {
			continue
		}
		cx, cy := float64(cell%yoloGrid), float64(cell/yoloGrid)
		dx := sigmoid(float64(out[cells+cell]))
		dy := sigmoid(float64(out[2*cells+cell]))
		wRaw := float64(out[3*cells+cell])
		hRaw := float64(out[4*cells+cell])
		dets = append(dets, Detection{
			Cell:  cell,
			Score: sigmoid(o),
			X:     (cx + dx) * 4, // grid cell = 4 input pixels
			Y:     (cy + dy) * 4,
			W:     2 * math.Exp(clamp(wRaw, -4, 4)),
			H:     2 * math.Exp(clamp(hRaw, -4, 4)),
		})
	}
	return dets
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IoU computes intersection-over-union of two centre-format boxes.
func IoU(a, b Detection) float64 {
	ax0, ax1 := a.X-a.W/2, a.X+a.W/2
	ay0, ay1 := a.Y-a.H/2, a.Y+a.H/2
	bx0, bx1 := b.X-b.W/2, b.X+b.W/2
	by0, by1 := b.Y-b.H/2, b.Y+b.H/2
	iw := math.Min(ax1, bx1) - math.Max(ax0, bx0)
	ih := math.Min(ay1, by1) - math.Max(ay0, by0)
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Misdetection reports whether the faulty detections differ critically
// from the golden ones: a changed detection count, or any golden box
// whose best match falls below 0.5 IoU (the paper's criticality notion
// for object detection, §VI).
func Misdetection(golden, faulty []Detection) bool {
	if len(golden) != len(faulty) {
		return true
	}
	for _, g := range golden {
		best := 0.0
		for _, f := range faulty {
			if iou := IoU(g, f); iou > best {
				best = iou
			}
		}
		if best < 0.5 {
			return true
		}
	}
	return false
}
