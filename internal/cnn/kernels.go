// Package cnn implements the two convolutional networks of the paper's
// evaluation — a LeNET-class classifier and a YOLO-class detector — as
// kernels for the functional emulator, together with the t-MxM tile
// corruption procedure used to inject multi-thread RTL fault effects into
// feature maps (§IV-B, §VI).
//
// The networks are structurally faithful, deterministic miniatures: the
// paper's CNN findings rest on masking through ReLU and pooling (LeNET),
// weaker masking through leaky activations (YOLO), and on the relative
// footprint of an 8x8 corrupted tile inside a layer — all properties the
// miniatures preserve (DESIGN.md §2).
package cnn

import (
	"fmt"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Kernel registers.
const (
	kTid  = isa.Reg(1)
	kX    = isa.Reg(2)
	kY    = isa.Reg(3)
	kCo   = isa.Reg(4)
	kCi   = isa.Reg(5)
	kAcc  = isa.Reg(6)
	kV    = isa.Reg(7)
	kW    = isa.Reg(8)
	kAddr = isa.Reg(9)
	kTmp  = isa.Reg(10)
	kCtr  = isa.Reg(11)
	kBase = isa.Reg(12)
	kCta  = isa.Reg(13)
	kNtid = isa.Reg(14)
)

func log2of(n int) int32 {
	s := int32(0)
	for 1<<uint(s) != n {
		s++
		if s > 30 {
			panic(fmt.Sprintf("cnn: %d is not a power of two", n))
		}
	}
	return s
}

// activation selects the fused non-linearity of a convolution layer.
type activation uint8

// Activations: none (detection head), ReLU (LeNET), leaky ReLU (YOLO).
const (
	actNone activation = iota
	actReLU
	actLeaky
)

// convGeom describes one 3x3 same-padding convolution layer.
type convGeom struct {
	inC, h, w int // input channels and spatial size (powers of two)
	outC      int
	act       activation
	inOff     int32
	outOff    int32
	wOff      int32 // weights: outC*inC*9 words
	bOff      int32 // biases: outC words
}

// buildConv assembles a 3x3 same-padding convolution with fused
// activation. One thread computes one output element.
func buildConv(g convGeom) *kasm.Program {
	b := kasm.New("conv")
	logW, logH := log2of(g.w), log2of(g.h)
	b.S2R(kTid, isa.SRTid)
	b.S2R(kCta, isa.SRCtaid)
	b.S2R(kNtid, isa.SRNtid)
	b.IMad(kTid, kCta, kNtid, kTid)
	b.AndI(kX, kTid, int32(g.w-1))
	b.Shr(kY, kTid, logW)
	b.AndI(kY, kY, int32(g.h-1))
	b.Shr(kCo, kTid, logW+logH)
	b.ISetPI(isa.P(0), isa.CmpLT, kCo, int32(g.outC))
	b.If(isa.P(0), func() {
		// acc = bias[co]
		b.IAddI(kAddr, kCo, g.bOff)
		b.Gld(kAcc, kAddr, 0)
		// Border predicates.
		b.ISetPI(isa.P(1), isa.CmpGT, kY, 0)            // has row above
		b.ISetPI(isa.P(2), isa.CmpLT, kY, int32(g.h-1)) // has row below
		b.ISetPI(isa.P(3), isa.CmpGT, kX, 0)
		b.ISetPI(isa.P(4), isa.CmpLT, kX, int32(g.w-1))

		// Incrementally maintained bases: centre = inOff + ci*H*W + y*W + x
		// and wbase = wOff + (co*inC + ci)*9.
		b.IMadI(kBase, kY, int32(g.w), kX)
		b.IAddI(kBase, kBase, g.inOff)
		b.IMulI(kAddr, kCo, int32(g.inC*9))
		b.IAddI(kAddr, kAddr, g.wOff)
		b.MovI(kCi, 0)
		b.Label("ci")
		{
			for ky := 0; ky < 3; ky++ {
				rowBody := func() {
					for kx := 0; kx < 3; kx++ {
						off := int32((ky-1)*g.w + (kx - 1))
						widx := int32(ky*3 + kx)
						b.MovI(kV, 0)
						switch kx {
						case 0:
							b.GldIf(isa.P(3), kV, kBase, off)
						case 2:
							b.GldIf(isa.P(4), kV, kBase, off)
						default:
							b.Gld(kV, kBase, off)
						}
						b.Gld(kW, kAddr, widx)
						b.FFma(kAcc, kV, kW, kAcc)
					}
				}
				switch ky {
				case 0:
					b.If(isa.P(1), rowBody)
				case 2:
					b.If(isa.P(2), rowBody)
				default:
					rowBody()
				}
			}
			b.IAddI(kBase, kBase, int32(g.h*g.w))
			b.IAddI(kAddr, kAddr, 9)
			b.IAddI(kCi, kCi, 1)
			b.ISetPI(isa.P(5), isa.CmpLT, kCi, int32(g.inC))
			b.BraIf(isa.P(5), "ci")
		}
		// Activation.
		switch g.act {
		case actLeaky:
			b.MovF(kTmp, 0.1)
			b.FMul(kTmp, kAcc, kTmp)
			b.FMax(kAcc, kAcc, kTmp)
		case actReLU:
			b.MovI(kTmp, 0)
			b.FMax(kAcc, kAcc, kTmp)
		}
		// out[co][y][x]
		b.IMulI(kAddr, kCo, int32(g.h*g.w))
		b.IMadI(kTmp, kY, int32(g.w), kX)
		b.IAdd(kAddr, kAddr, kTmp)
		b.Gst(kAddr, g.outOff, kAcc)
	})
	return kasm.MustFinalize(b)
}

// poolGeom describes a 2x2 stride-2 max pooling layer.
type poolGeom struct {
	c, h, w int // input geometry; output is c x h/2 x w/2
	inOff   int32
	outOff  int32
}

// buildPool assembles 2x2/2 max pooling; one thread per output element.
func buildPool(g poolGeom) *kasm.Program {
	b := kasm.New("pool")
	ow, oh := g.w/2, g.h/2
	logW, logH := log2of(ow), log2of(oh)
	b.S2R(kTid, isa.SRTid)
	b.S2R(kCta, isa.SRCtaid)
	b.S2R(kNtid, isa.SRNtid)
	b.IMad(kTid, kCta, kNtid, kTid)
	b.AndI(kX, kTid, int32(ow-1))
	b.Shr(kY, kTid, logW)
	b.AndI(kY, kY, int32(oh-1))
	b.Shr(kCo, kTid, logW+logH)
	b.ISetPI(isa.P(0), isa.CmpLT, kCo, int32(g.c))
	b.If(isa.P(0), func() {
		// base = inOff + c*H*W + 2y*W + 2x
		b.IMulI(kBase, kCo, int32(g.h*g.w))
		b.IAddI(kBase, kBase, g.inOff)
		b.IMulI(kTmp, kY, int32(2*g.w))
		b.IAdd(kBase, kBase, kTmp)
		b.IMadI(kBase, kX, 2, kBase)
		b.Gld(kAcc, kBase, 0)
		b.Gld(kV, kBase, 1)
		b.FMax(kAcc, kAcc, kV)
		b.Gld(kV, kBase, int32(g.w))
		b.FMax(kAcc, kAcc, kV)
		b.Gld(kV, kBase, int32(g.w+1))
		b.FMax(kAcc, kAcc, kV)
		b.IMulI(kAddr, kCo, int32(oh*ow))
		b.IMadI(kTmp, kY, int32(ow), kX)
		b.IAdd(kAddr, kAddr, kTmp)
		b.Gst(kAddr, g.outOff, kAcc)
	})
	return kasm.MustFinalize(b)
}

// fcGeom describes a fully connected layer.
type fcGeom struct {
	inN, outN int
	inOff     int32
	outOff    int32
	wOff      int32 // outN*inN words
	bOff      int32
}

// buildFC assembles the fully connected layer; one thread per output
// neuron, no activation (logits).
func buildFC(g fcGeom) *kasm.Program {
	b := kasm.New("fc")
	b.S2R(kTid, isa.SRTid)
	b.ISetPI(isa.P(0), isa.CmpLT, kTid, int32(g.outN))
	b.If(isa.P(0), func() {
		b.IAddI(kAddr, kTid, g.bOff)
		b.Gld(kAcc, kAddr, 0)
		b.IMulI(kBase, kTid, int32(g.inN))
		b.IAddI(kBase, kBase, g.wOff)
		b.MovI(kCtr, 0)
		b.Label("iloop")
		{
			b.IAddI(kAddr, kCtr, g.inOff)
			b.Gld(kV, kAddr, 0)
			b.IAdd(kAddr, kBase, kCtr)
			b.Gld(kW, kAddr, 0)
			b.FFma(kAcc, kV, kW, kAcc)
			b.IAddI(kCtr, kCtr, 1)
			b.ISetPI(isa.P(1), isa.CmpLT, kCtr, int32(g.inN))
			b.BraIf(isa.P(1), "iloop")
		}
		b.Gst(kTid, g.outOff, kAcc)
	})
	return kasm.MustFinalize(b)
}
