package stats

import (
	"errors"
	"math"
	"sort"
)

// ShapiroWilk computes the Shapiro–Wilk W statistic and an approximate
// p-value for the null hypothesis that xs is normally distributed, using
// Royston's 1995 approximation (algorithm AS R94). The paper uses this
// test to reject Gaussianity of fault syndromes: "all distributions have
// a p-value smaller than 0.05 on the Shapiro-Wilk test" (§V-C).
//
// The sample size must be in [3, 5000].
func ShapiroWilk(xs []float64) (w, pvalue float64, err error) {
	n := len(xs)
	if n < 3 {
		return 0, 0, errors.New("stats: Shapiro-Wilk needs at least 3 observations")
	}
	if n > 5000 {
		return 0, 0, errors.New("stats: Shapiro-Wilk approximation valid up to n=5000")
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return 0, 0, errors.New("stats: Shapiro-Wilk undefined for constant sample")
	}

	// Expected normal order statistics (Blom approximation).
	m := make([]float64, n)
	var ssq float64
	for i := 0; i < n; i++ {
		m[i] = NormQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssq += m[i] * m[i]
	}

	// Weights with Royston's polynomial corrections for the extremes.
	a := make([]float64, n)
	rsn := 1 / math.Sqrt(float64(n))
	c := func(i int) float64 { return m[i] / math.Sqrt(ssq) }
	if n > 5 {
		an := poly([]float64{-2.706056, 4.434685, -2.071190, -0.147981, 0.221157, 0}, rsn) + c(n-1)
		an1 := poly([]float64{-3.582633, 5.682633, -1.752461, -0.293762, 0.042981, 0}, rsn) + c(n-2)
		phi := (ssq - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) / (1 - 2*an*an - 2*an1*an1)
		sp := math.Sqrt(phi)
		a[n-1], a[0] = an, -an
		a[n-2], a[1] = an1, -an1
		for i := 2; i < n-2; i++ {
			a[i] = m[i] / sp
		}
	} else {
		an := poly([]float64{-2.706056, 4.434685, -2.071190, -0.147981, 0.221157, 0}, rsn) + c(n-1)
		phi := (ssq - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
		sp := math.Sqrt(phi)
		a[n-1], a[0] = an, -an
		for i := 1; i < n-1; i++ {
			a[i] = m[i] / sp
		}
	}

	// W statistic.
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i, v := range x {
		num += a[i] * v
		d := v - mean
		den += d * d
	}
	w = num * num / den
	if w > 1 {
		w = 1
	}

	// P-value via normalizing transformation.
	switch {
	case n == 3:
		const stqr = math.Pi / 3
		pvalue = 6 / math.Pi * (math.Asin(math.Sqrt(w)) - stqr)
		if pvalue < 0 {
			pvalue = 0
		}
		if pvalue > 1 {
			pvalue = 1
		}
	case n <= 11:
		fn := float64(n)
		g := -2.273 + 0.459*fn
		mu := 0.5440 - 0.39978*fn + 0.025054*fn*fn - 0.0006714*fn*fn*fn
		sigma := math.Exp(1.3822 - 0.77857*fn + 0.062767*fn*fn - 0.0020322*fn*fn*fn)
		z := (-math.Log(g-math.Log(1-w)) - mu) / sigma
		pvalue = normUpper(z)
	default:
		ln := math.Log(float64(n))
		mu := -1.5861 - 0.31082*ln - 0.083751*ln*ln + 0.0038915*ln*ln*ln
		sigma := math.Exp(-0.4803 - 0.082676*ln + 0.0030302*ln*ln)
		z := (math.Log(1-w) - mu) / sigma
		pvalue = normUpper(z)
	}
	return w, pvalue, nil
}

// poly evaluates c[0]*x^(len-1) + ... + c[len-1] (descending powers).
func poly(c []float64, x float64) float64 {
	v := 0.0
	for _, ci := range c {
		v = v*x + ci
	}
	return v
}

// normUpper returns P(Z > z) for a standard normal Z.
func normUpper(z float64) float64 { return 0.5 * math.Erfc(z/math.Sqrt2) }

// NormCDF returns P(Z <= z) for a standard normal Z.
func NormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// NormQuantile returns the inverse standard normal CDF at p in (0, 1),
// using Acklam's rational approximation refined by one Halley step.
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	var (
		ac = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
			1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		bc = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
			6.680131188771972e+01, -1.328068155288572e+01}
		cc = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
			-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		dc = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
			3.754408661907416e+00}
	)
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((dc[0]*q+dc[1])*q+dc[2])*q+dc[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((ac[0]*r+ac[1])*r+ac[2])*r+ac[3])*r+ac[4])*r + ac[5]) * q /
			(((((bc[0]*r+bc[1])*r+bc[2])*r+bc[3])*r+bc[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((dc[0]*q+dc[1])*q+dc[2])*q+dc[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
