// Package stats provides the statistical machinery the paper relies on:
// log-scale histograms of relative errors (Figs. 5, 6, 9), power-law
// fitting and sampling following Clauset, Shalizi & Newman (Eq. 1 of the
// paper), the Shapiro–Wilk normality test used to reject Gaussianity of
// the syndromes (§V-C), and Wilson confidence intervals for injection
// campaigns (§VI). All randomness flows through a deterministic
// splitmix64 generator so campaigns are exactly reproducible.
package stats

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. The zero
// value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new generator deterministically derived from r, so that
// parallel campaign workers get independent but reproducible streams.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a uniform value in [lo, hi).
func (r *RNG) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns a uniform boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
