package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LogHist is a base-10 logarithmic histogram for relative errors, matching
// the x-axis of Figs. 5, 6 and 9 of the paper: one bucket per decade from
// 10^MinExp to 10^MaxExp, plus underflow and overflow buckets.
type LogHist struct {
	MinExp int      // lowest decade, e.g. -8 (bucket [1e-8, 1e-7))
	MaxExp int      // highest decade, e.g. 2  (bucket [1e2, 1e3))
	Counts []uint64 // len = MaxExp-MinExp+3: [under, decades..., over]
	N      uint64   // total observations
}

// NewLogHist returns an empty histogram covering decades [minExp, maxExp].
// The paper's figures use minExp=-8, maxExp=2.
func NewLogHist(minExp, maxExp int) *LogHist {
	if maxExp < minExp {
		panic("stats: NewLogHist with maxExp < minExp")
	}
	return &LogHist{
		MinExp: minExp,
		MaxExp: maxExp,
		Counts: make([]uint64, maxExp-minExp+3),
	}
}

// PaperHist returns the histogram geometry used in Figs. 5 and 6
// (relative errors from below 1e-8 to above 1e2).
func PaperHist() *LogHist { return NewLogHist(-8, 2) }

// Add records one observation. Positive finite values land in their decade
// bucket; +Inf lands in overflow; zero, negative and NaN values land in
// underflow.
func (h *LogHist) Add(v float64) {
	h.N++
	switch {
	case math.IsInf(v, 1):
		h.Counts[len(h.Counts)-1]++
		return
	case v <= 0 || math.IsNaN(v):
		h.Counts[0]++
		return
	}
	e := int(math.Floor(math.Log10(v)))
	switch {
	case e < h.MinExp:
		h.Counts[0]++
	case e > h.MaxExp:
		h.Counts[len(h.Counts)-1]++
	default:
		h.Counts[e-h.MinExp+1]++
	}
}

// Merge adds the counts of other (same geometry) into h.
func (h *LogHist) Merge(other *LogHist) error {
	if other.MinExp != h.MinExp || other.MaxExp != h.MaxExp {
		return fmt.Errorf("stats: merging histograms with different geometry")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	return nil
}

// Fraction returns the share of observations in each bucket.
func (h *LogHist) Fraction() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// BucketLabel names bucket i (0 = underflow, last = overflow).
func (h *LogHist) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("<1e%d", h.MinExp)
	case i == len(h.Counts)-1:
		return fmt.Sprintf(">=1e%d", h.MaxExp+1)
	default:
		return fmt.Sprintf("1e%d", h.MinExp+i-1)
	}
}

// String renders the histogram as a fixed-width text row, used by the
// benchmark harness to print Fig. 5/6-style series.
func (h *LogHist) String() string {
	var sb strings.Builder
	fr := h.Fraction()
	for i, f := range fr {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%.3f", h.BucketLabel(i), f)
	}
	return sb.String()
}

// Mode returns the label of the most populated bucket, the paper's "clear
// peak" observation in §V-C.
func (h *LogHist) Mode() string {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BucketLabel(best)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Var    float64 // unbiased sample variance
	Min    float64
	Max    float64
	P10    float64
	P90    float64
}

// Summarize computes order statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, x := range s {
		d := x - mean
		ss += d * d
	}
	v := 0.0
	if len(s) > 1 {
		v = ss / float64(len(s)-1)
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Median: Quantile(s, 0.5),
		Var:    v,
		Min:    s[0],
		Max:    s[len(s)-1],
		P10:    Quantile(s, 0.1),
		P90:    Quantile(s, 0.9),
	}
}

// Quantile returns the q-quantile (0<=q<=1) of sorted data by linear
// interpolation. It panics on empty input.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonCI returns the Wilson score interval for a binomial proportion at
// the given z (1.96 for the paper's 95% confidence). successes > trials is
// clamped.
func WilsonCI(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	if successes > trials {
		successes = trials
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
