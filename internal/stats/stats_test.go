package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1, s2 := r.Split(), r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if d := KSUniformity(xs); d > 0.015 {
		t.Errorf("KS distance from uniform = %v, want < 0.015", d)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) visited only %d values", len(seen))
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestLogHistBuckets(t *testing.T) {
	h := NewLogHist(-2, 1) // buckets: <1e-2, 1e-2, 1e-1, 1e0, 1e1, >=1e2
	h.Add(0.001)           // underflow
	h.Add(0.05)            // 1e-2 bucket
	h.Add(0.5)             // 1e-1
	h.Add(1)               // 1e0
	h.Add(25)              // 1e1
	h.Add(500)             // overflow
	h.Add(0)               // underflow
	h.Add(math.Inf(1))     // overflow
	want := []uint64{2, 1, 1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d (%s) = %d, want %d", i, h.BucketLabel(i), c, want[i])
		}
	}
	if h.N != 8 {
		t.Errorf("N = %d, want 8", h.N)
	}
}

func TestLogHistBoundaries(t *testing.T) {
	h := NewLogHist(-8, 2)
	h.Add(1e-8) // exactly at lower edge: decade -8
	h.Add(1e2)  // exactly at upper edge: decade 2
	if h.Counts[1] != 1 {
		t.Errorf("1e-8 landed in bucket %v", h.Counts)
	}
	if h.Counts[len(h.Counts)-2] != 1 {
		t.Errorf("1e2 landed in bucket %v", h.Counts)
	}
}

func TestLogHistMergeAndFraction(t *testing.T) {
	a, b := PaperHist(), PaperHist()
	a.Add(0.5)
	b.Add(0.5)
	b.Add(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 3 {
		t.Errorf("merged N = %d", a.N)
	}
	fr := a.Fraction()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if err := a.Merge(NewLogHist(0, 1)); err == nil {
		t.Error("merging different geometries should fail")
	}
}

func TestLogHistMode(t *testing.T) {
	h := PaperHist()
	for i := 0; i < 10; i++ {
		h.Add(0.5) // decade -1
	}
	h.Add(5)
	if h.Mode() != "1e-1" {
		t.Errorf("mode = %s, want 1e-1", h.Mode())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("bad summary %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.Var-5.0/3.0) > 1e-12 {
		t.Errorf("variance = %v, want %v", s.Var, 5.0/3.0)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if q := Quantile(sorted, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(sorted, 0.25); q != 2 {
		t.Errorf("q0.25 = %v", q)
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%v, %v] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI too wide: %v", hi-lo)
	}
	lo, hi = WilsonCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty-trial CI = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonCI(10, 10, 1.96)
	if hi != 1 || lo < 0.6 {
		t.Errorf("all-success CI = [%v, %v]", lo, hi)
	}
}

func TestWilsonCIBoundsProperty(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%1000) + 1
		succ := int(s) % (trials + 1)
		lo, hi := WilsonCI(succ, trials, 1.96)
		p := float64(succ) / float64(trials)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerLawSampleRecoversAlpha(t *testing.T) {
	truth := PowerLaw{Alpha: 2.5, Xmin: 0.01}
	r := NewRNG(123)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Sample(r)
	}
	fit, err := FitPowerLaw(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 0.1 {
		t.Errorf("fitted alpha = %v, want ~%v", fit.Alpha, truth.Alpha)
	}
	if fit.Xmin > truth.Xmin*2 {
		t.Errorf("fitted xmin = %v, want near %v", fit.Xmin, truth.Xmin)
	}
	if fit.KS > 0.02 {
		t.Errorf("KS = %v for self-generated data", fit.KS)
	}
}

func TestPowerLawSampleBoundsProperty(t *testing.T) {
	p := PowerLaw{Alpha: 2.0, Xmin: 0.5}
	r := NewRNG(77)
	f := func(uint8) bool {
		v := p.Sample(r)
		return v >= p.Xmin && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPowerLawCDFQuantileInverse(t *testing.T) {
	p := PowerLaw{Alpha: 3.0, Xmin: 0.1}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := p.Quantile(q)
		if got := p.CDF(x); math.Abs(got-q) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
	if p.CDF(0.05) != 0 {
		t.Error("CDF below xmin must be 0")
	}
	if !math.IsInf(p.Quantile(1), 1) {
		t.Error("Quantile(1) must be +Inf")
	}
}

func TestFitPowerLawRejectsSmallSamples(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2, 3}); err == nil {
		t.Error("expected ErrTooFewPoints")
	}
	if _, err := FitPowerLaw([]float64{-1, -2, 0, math.NaN(), math.Inf(1)}); err == nil {
		t.Error("expected error for non-positive sample")
	}
}

func TestFitPowerLawIgnoresNonPositive(t *testing.T) {
	truth := PowerLaw{Alpha: 2.2, Xmin: 1}
	r := NewRNG(5)
	xs := []float64{0, -3, math.NaN()}
	for i := 0; i < 5000; i++ {
		xs = append(xs, truth.Sample(r))
	}
	fit, err := FitPowerLaw(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 0.15 {
		t.Errorf("alpha = %v", fit.Alpha)
	}
}

func TestShapiroWilkRejectsPowerLaw(t *testing.T) {
	// The paper's §V-C claim: syndrome (power-law) data fails normality.
	p := PowerLaw{Alpha: 2.0, Xmin: 0.001}
	r := NewRNG(9)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = p.Sample(r)
	}
	_, pv, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if pv >= 0.05 {
		t.Errorf("power-law sample p-value = %v, want < 0.05", pv)
	}
}

func TestShapiroWilkAcceptsNormal(t *testing.T) {
	r := NewRNG(4242)
	rejected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = 3 + 2*r.NormFloat64()
		}
		w, pv, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0.9 {
			t.Errorf("normal sample W = %v", w)
		}
		if pv < 0.05 {
			rejected++
		}
	}
	// Expect roughly 5% false rejections; allow generous slack.
	if rejected > trials/4 {
		t.Errorf("rejected %d/%d normal samples", rejected, trials)
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Error("n=2 should fail")
	}
	if _, _, err := ShapiroWilk(make([]float64, 6000)); err == nil {
		t.Error("n=6000 should fail")
	}
	if _, _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Error("constant sample should fail")
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1 - 1e-6} {
		z := NormQuantile(p)
		if got := NormCDF(z); math.Abs(got-p) > 1e-9 {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
	if NormQuantile(0.5) != 0 {
		// Acklam central branch is exact at 0.5 after refinement.
		if math.Abs(NormQuantile(0.5)) > 1e-12 {
			t.Errorf("NormQuantile(0.5) = %v", NormQuantile(0.5))
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile must saturate at infinities")
	}
}

func TestKSUniformitySanity(t *testing.T) {
	// Perfectly spaced points have tiny KS distance.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / 1000
	}
	if d := KSUniformity(xs); d > 0.002 {
		t.Errorf("uniform grid KS = %v", d)
	}
	// Highly skewed points have a large one.
	for i := range xs {
		xs[i] = math.Pow(float64(i)/1000, 8)
	}
	if d := KSUniformity(xs); d < 0.3 {
		t.Errorf("skewed KS = %v", d)
	}
}

func BenchmarkPowerLawSample(b *testing.B) {
	p := PowerLaw{Alpha: 2.3, Xmin: 0.01}
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = p.Sample(r)
	}
}

func BenchmarkFitPowerLaw(b *testing.B) {
	p := PowerLaw{Alpha: 2.3, Xmin: 0.01}
	r := NewRNG(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = p.Sample(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPowerLaw(xs); err != nil {
			b.Fatal(err)
		}
	}
}
