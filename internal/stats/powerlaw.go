package stats

import (
	"errors"
	"math"
	"sort"
)

// PowerLaw is a continuous Pareto-type distribution
// p(x) ∝ x^-alpha for x >= Xmin, the model the paper fits to the fault
// syndromes (§V-C, citing Clauset, Shalizi & Newman, SIAM Review 2009).
type PowerLaw struct {
	Alpha float64 `json:"alpha"` // scaling exponent (> 1)
	Xmin  float64 `json:"xmin"`  // lower bound of power-law behaviour
	KS    float64 `json:"ks"`    // Kolmogorov–Smirnov distance of the fit
	NTail int     `json:"ntail"` // observations at or above Xmin
}

// Sample draws one value using the paper's Equation 1:
//
//	relative_error = Xmin * (1-r)^(-1/(alpha-1))
//
// with r uniform in [0, 1).
func (p PowerLaw) Sample(r *RNG) float64 {
	u := r.Float64()
	return p.Xmin * math.Pow(1-u, -1/(p.Alpha-1))
}

// CDF returns P(X <= x) for the fitted tail model.
func (p PowerLaw) CDF(x float64) float64 {
	if x < p.Xmin {
		return 0
	}
	return 1 - math.Pow(x/p.Xmin, 1-p.Alpha)
}

// Quantile inverts the CDF.
func (p PowerLaw) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Xmin
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xmin * math.Pow(1-q, -1/(p.Alpha-1))
}

// ErrTooFewPoints is returned when a sample is too small to fit.
var ErrTooFewPoints = errors.New("stats: too few positive observations for power-law fit")

// alphaMLE computes the continuous maximum-likelihood exponent for the
// tail of sorted data starting at index i0 (xmin = sorted[i0]).
func alphaMLE(sorted []float64, i0 int) float64 {
	xmin := sorted[i0]
	n := float64(len(sorted) - i0)
	var s float64
	for _, x := range sorted[i0:] {
		s += math.Log(x / xmin)
	}
	if s == 0 {
		return math.Inf(1)
	}
	return 1 + n/s
}

// ksDistance computes the KS statistic between the empirical tail CDF and
// the fitted power law.
func ksDistance(sorted []float64, i0 int, alpha float64) float64 {
	xmin := sorted[i0]
	n := len(sorted) - i0
	var maxD float64
	for i := 0; i < n; i++ {
		x := sorted[i0+i]
		model := 1 - math.Pow(x/xmin, 1-alpha)
		empLo := float64(i) / float64(n)
		empHi := float64(i+1) / float64(n)
		d := math.Max(math.Abs(model-empLo), math.Abs(model-empHi))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// FitPowerLaw fits a continuous power law to the positive values of xs
// using the Clauset–Shalizi–Newman procedure: for each candidate xmin the
// exponent is estimated by MLE and the xmin with the smallest KS distance
// between data and model tail is selected. Non-positive and non-finite
// observations are discarded (a syndrome of exactly zero carries no
// magnitude information).
func FitPowerLaw(xs []float64) (PowerLaw, error) {
	pos := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			pos = append(pos, x)
		}
	}
	const minTail = 8
	if len(pos) < minTail {
		return PowerLaw{}, ErrTooFewPoints
	}
	sort.Float64s(pos)

	// Candidate xmins: every distinct value whose tail keeps at least
	// minTail points. For very large samples, subsample candidates to
	// bound the O(n^2) scan.
	maxI0 := len(pos) - minTail
	step := 1
	const maxCandidates = 512
	if maxI0 > maxCandidates {
		step = maxI0 / maxCandidates
	}
	best := PowerLaw{KS: math.Inf(1)}
	for i0 := 0; i0 <= maxI0; i0 += step {
		if i0 > 0 && pos[i0] == pos[i0-1] {
			continue // same xmin as previous candidate
		}
		alpha := alphaMLE(pos, i0)
		if math.IsInf(alpha, 1) || alpha <= 1 {
			continue
		}
		ks := ksDistance(pos, i0, alpha)
		if ks < best.KS {
			best = PowerLaw{Alpha: alpha, Xmin: pos[i0], KS: ks, NTail: len(pos) - i0}
		}
	}
	if math.IsInf(best.KS, 1) {
		return PowerLaw{}, ErrTooFewPoints
	}
	return best, nil
}

// KSUniformity is a two-sided KS test statistic of xs against the uniform
// distribution on [0,1]; used in tests to validate samplers.
func KSUniformity(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	var maxD float64
	for i, x := range s {
		d := math.Max(math.Abs(x-float64(i)/float64(n)), math.Abs(x-float64(i+1)/float64(n)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
