package rtl

import "fmt"

// Table I flip-flop budgets. Layout declarations below are unit-tested to
// sum exactly to these values.
const (
	FFCountFP32   = 4451
	FFCountINT    = 1542
	FFCountSFU    = 3231
	FFCountSFUCtl = 190
	FFCountSched  = 3358
	FFCountPipe   = 10949
)

// Geometry of the modelled SM (G80 / FlexGripPlus organisation).
const (
	NumLanes   = 8  // scalar cores per SM: a warp issues as 4 groups of 8
	NumSFUs    = 2  // special function units shared by the lanes
	MaxWarps   = 24 // warp-scheduler table entries
	WarpSize   = 32
	NumGroups  = WarpSize / NumLanes
	schedEntry = 137 // bits per scheduler warp entry
)

// Warp scheduler states (3-bit field; encodings above stDone are invalid
// and trap as DUE when scheduled, modelling corrupted state registers).
const (
	stEmpty uint64 = iota
	stReady
	stAtBar
	stDone
)

// Pipeline control phases (sched "phase" field).
const (
	phSched uint64 = iota
	phFetch
	phDecode
	phCollect
	phIssue
	phExec
	phGroupWB
	phMemAddr
	phMemAccess
	phWriteback
	phCommit
)

// newSchedLayout is the warp-scheduler controller: a 24-entry warp table
// (PC, active mask, cached reconvergence point, state, SIMT stack depth,
// and the per-warp instruction buffer that feeds decode) plus the global
// dispatch state machine. Corrupting warp-wide structures here — the
// instruction buffer, the current-warp pointer, the PC — derails entire
// warps, the mechanism behind the paper's multi-thread scheduler SDCs
// (avg. 28 corrupted threads, §V-B). 24*129 + 262 = 3358 FFs.
func newSchedLayout() *Layout {
	// Per-thread active masks live in the divergence-stack block RAM (a
	// memory, excluded from injection like the register file), matching
	// FlexGripPlus's SRS organisation; the controller flip-flops hold
	// warp-granular state only, plus a short-lived mask cache between
	// scheduling and decode.
	var fields []Field
	for i := 0; i < MaxWarps; i++ {
		p := func(n string) string { return fmt.Sprintf("w%d_%s", i, n) }
		fields = append(fields,
			Field{Name: p("pc"), Width: 16},
			Field{Name: p("state"), Width: 3},
			Field{Name: p("depth"), Width: 5},   // SIMT stack depth
			Field{Name: p("slot"), Width: 5},    // warp id within the block
			Field{Name: p("reconv"), Width: 16}, // top-of-stack reconvergence PC
			Field{Name: p("ibuf"), Width: 52},   // fetched instruction buffer (control word)
			Field{Name: p("groupen"), Width: 8}, // thread-enable clusters (4 lanes per bit)
			Field{Name: p("wctl"), Width: 16},   // barrier id / replay bookkeeping
		)
	}
	fields = append(fields,
		Field{Name: "rrptr", Width: 5},   // round-robin scan pointer
		Field{Name: "phase", Width: 4},   // dispatch state machine
		Field{Name: "curwarp", Width: 5}, // warp being executed (used at commit)
		Field{Name: "group", Width: 2},   // 8-lane group being issued
		Field{Name: "livewarps", Width: 6},
		Field{Name: "barwait", Width: 6}, // warps waiting at the barrier
		Field{Name: "cyclectr", Width: 32},
		Field{Name: "fpc", Width: 16},  // fetch-stage PC copy
		Field{Name: "fwarp", Width: 5}, // fetch-stage warp tag
		Field{Name: "barmask", Width: 24},
		Field{Name: "memhold", Width: 32},
		Field{Name: "issuehold", Width: 32},
		Field{Name: "stackbase", Width: 16},
		Field{Name: "sstatus", Width: 35},
		Field{Name: "fparity", Width: 52},
		Field{Name: "maskcache", Width: 32}, // SRS mask read port latch
		Field{Name: "ibuf2", Width: 52},     // fetch double buffer
		Field{Name: "excflags", Width: 32},
		Field{Name: "perfctr", Width: 32},
		Field{Name: "retpc", Width: 16},
		Field{Name: "grpstat", Width: 8},
		Field{Name: "divctr", Width: 10},
	)
	return NewLayout("Scheduler", fields)
}

// newPipeLayout is the pipeline-register file: fetch/decode latches, the
// full-warp operand collector (double buffered), per-group execute
// latches, the result and LSU buffers, and the associated control
// registers. Datapath fields total 9216 (84.2%), control 1733 (15.8%),
// matching the paper's "≈84% store operands ... ≈16% devoted to control
// signals" (§V-B). Total 10949 FFs.
func newPipeLayout() *Layout {
	fields := cat(
		// --- Fetch/decode control (IF, ID latches). The control half of
		// the instruction word is buffered in the scheduler's per-warp
		// instruction buffer; the pipeline latches the immediate half and
		// an ECC/parity staging copy. ---
		[]Field{
			{Name: "if_ecc", Width: 64},
			{Name: "if_instr_hi", Width: 64},
			{Name: "if_pc", Width: 32},
			{Name: "if_warp", Width: 5},
			{Name: "if_valid", Width: 1},
			{Name: "if_block", Width: 8},

			{Name: "id_op", Width: 8},
			{Name: "id_dst", Width: 8},
			{Name: "id_srca", Width: 8},
			{Name: "id_srcb", Width: 8},
			{Name: "id_srcc", Width: 8},
			{Name: "id_guard", Width: 4},
			{Name: "id_pdst", Width: 4},
			{Name: "id_cmp", Width: 3},
			{Name: "id_useimm", Width: 1},
			{Name: "id_imm", Width: 32},
			{Name: "id_target", Width: 16},
			{Name: "id_reconv", Width: 16},
			{Name: "id_pc", Width: 32},
			{Name: "id_warp", Width: 5},
			{Name: "id_valid", Width: 1},
			{Name: "id_mask", Width: 32},
		},
		// --- Operand collector A: full-warp operands (datapath) ---
		lanes("cola_a", WarpSize, 32),
		lanes("cola_b", WarpSize, 32),
		lanes("cola_c", WarpSize, 32),
		// Collector A control.
		[]Field{
			{Name: "cola_valid", Width: 32}, // guard mask of collected lanes
			{Name: "cola_op", Width: 8},
			{Name: "cola_dst", Width: 8},
			{Name: "cola_warp", Width: 5},
			{Name: "cola_pdst", Width: 4},
			{Name: "cola_guard", Width: 4},
			{Name: "cola_imm", Width: 32},
			{Name: "cola_mask", Width: 32},
		},
		// --- Operand collector B (double buffer, datapath) ---
		lanes("colb_a", WarpSize, 32),
		lanes("colb_b", WarpSize, 32),
		lanes("colb_c", WarpSize, 32),
		[]Field{
			{Name: "colb_valid", Width: 32},
			{Name: "colb_op", Width: 8},
			{Name: "colb_dst", Width: 8},
			{Name: "colb_warp", Width: 5},
			{Name: "colb_pdst", Width: 4},
			{Name: "colb_guard", Width: 4},
			{Name: "colb_imm", Width: 32},
			{Name: "colb_mask", Width: 32},
		},
		// --- Predicate staging: snapshot of the 8 predicate registers for
		// all 32 lanes, double buffered (control) ---
		lanes("preda", 8, 32),
		lanes("predb", 8, 32),
		// --- Per-group execute input latches (datapath) ---
		lanes("exin_a", NumLanes, 32),
		lanes("exin_b", NumLanes, 32),
		lanes("exin_c", NumLanes, 32),
		// --- Execute output latch (datapath) ---
		lanes("exout", NumLanes, 32),
		// --- Issue control ---
		[]Field{
			{Name: "iss_group", Width: 2},
			{Name: "iss_submask", Width: 8},
			{Name: "iss_op", Width: 8},
			{Name: "iss_dst", Width: 8},
			{Name: "iss_warp", Width: 5},
			{Name: "iss_valid", Width: 1},
			{Name: "iss_pdst", Width: 4},
			{Name: "iss_cmp", Width: 3},
			{Name: "iss_imm", Width: 32},
		},
		// --- Writeback buffer: full-warp results (datapath) ---
		lanes("wb_res", WarpSize, 32),
		// Writeback control.
		[]Field{
			{Name: "wb_warp", Width: 5},
			{Name: "wb_dst", Width: 8},
			{Name: "wb_mask", Width: 32},
			{Name: "wb_valid", Width: 1},
			{Name: "wb_ispred", Width: 1},
			{Name: "wb_pdst", Width: 4},
			{Name: "wb_pc", Width: 32},
		},
		// --- LSU address buffer (datapath) ---
		lanes("lsu_addr", WarpSize, 32),
		// LSU control.
		[]Field{
			{Name: "lsu_valid", Width: 32},
			{Name: "lsu_op", Width: 2},
			{Name: "lsu_warp", Width: 5},
			{Name: "lsu_imm", Width: 32},
			{Name: "lsu_avalid", Width: 32}, // address-generated mask
			{Name: "lsu_tag", Width: 16},
		},
		// --- Branch unit ---
		[]Field{
			{Name: "br_taken", Width: 32},
			{Name: "br_ntaken", Width: 32},
			{Name: "br_target", Width: 16},
			{Name: "br_reconv", Width: 16},
			{Name: "br_valid", Width: 1},
		},
		// --- Miscellaneous control ---
		[]Field{
			{Name: "bar_count", Width: 6},
			{Name: "bar_release", Width: 1},
			{Name: "ex_pc", Width: 32},
			{Name: "grp_hist", Width: 32}, // issued-submask history (4x8)
			{Name: "scoreboard", Width: 48},
			{Name: "exc_status", Width: 32},
			{Name: "replay", Width: 16},
			{Name: "dbg_status_lo", Width: 64},
			{Name: "dbg_status_hi", Width: 10},
		},
	)
	return NewLayout("Pipeline", fields)
}

// isPipeDatapathField reports whether a pipeline-register field stores
// per-lane operand or result data (as opposed to control signals) — the
// paper's ~84%/16% split (§V-B).
func isPipeDatapathField(name string) bool {
	for _, p := range []string{"cola_a", "cola_b", "cola_c", "colb_a", "colb_b", "colb_c",
		"exin_", "exout", "wb_res", "lsu_addr"} {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// newFP32Layout is the 8-lane single-precision unit. Each lane is the
// staged datapath of internal/fp32: unpack, exact multiply, align (order
// and shift-count, then shift and add), round — with every intermediate
// held in stage registers. 8*554 + 19 = 4451 FFs.
func newFP32Layout() *Layout {
	var fields []Field
	for l := 0; l < NumLanes; l++ {
		p := func(n string) string { return fmt.Sprintf("l%d_%s", l, n) }
		fields = append(fields,
			// Stage 1: operand latch.
			Field{Name: p("s1_a"), Width: 32},
			Field{Name: p("s1_b"), Width: 32},
			Field{Name: p("s1_c"), Width: 32},
			Field{Name: p("s1_op"), Width: 3},
			Field{Name: p("s1_valid"), Width: 1},
			// Stage 2: unpack a, b; special-case resolution.
			Field{Name: p("s2_asign"), Width: 1},
			Field{Name: p("s2_aexp"), Width: 10},
			Field{Name: p("s2_aman"), Width: 24},
			Field{Name: p("s2_bsign"), Width: 1},
			Field{Name: p("s2_bexp"), Width: 10},
			Field{Name: p("s2_bman"), Width: 24},
			Field{Name: p("s2_special"), Width: 32},
			Field{Name: p("s2_specvalid"), Width: 1},
			Field{Name: p("s2_op"), Width: 3},
			Field{Name: p("s2_valid"), Width: 1},
			// Stage 3: exact product; addend unpack.
			Field{Name: p("s3_p"), Width: 48},
			Field{Name: p("s3_pexp"), Width: 10},
			Field{Name: p("s3_psign"), Width: 1},
			Field{Name: p("s3_csign"), Width: 1},
			Field{Name: p("s3_cexp"), Width: 10},
			Field{Name: p("s3_cman"), Width: 24},
			Field{Name: p("s3_op"), Width: 3},
			Field{Name: p("s3_valid"), Width: 1},
			// Stage 4: operand ordering and alignment shift count. The
			// shift register is an avalanche fault site: one flipped bit
			// rescales the addend by a power of two (§V-C's many-bit
			// output corruptions).
			Field{Name: p("s4_fracb"), Width: 64},
			Field{Name: p("s4_fracs"), Width: 57}, // unshifted smaller fraction
			Field{Name: p("s4_expb"), Width: 10},
			Field{Name: p("s4_signb"), Width: 1},
			Field{Name: p("s4_signs"), Width: 1},
			Field{Name: p("s4_shift"), Width: 6},
			Field{Name: p("s4_valid"), Width: 1},
			// Stage 5: add / normalise.
			Field{Name: p("s5_frac"), Width: 64},
			Field{Name: p("s5_exp"), Width: 10},
			Field{Name: p("s5_sign"), Width: 1},
			Field{Name: p("s5_valid"), Width: 1},
			// Stage 6: rounded result.
			Field{Name: p("s6_res"), Width: 32},
			Field{Name: p("s6_valid"), Width: 1},
		)
	}
	fields = append(fields,
		Field{Name: "fu_stage", Width: 4},
		Field{Name: "fu_valid", Width: 1},
		Field{Name: "fu_cycles", Width: 6},
		Field{Name: "fu_lanemask", Width: 8},
	)
	return NewLayout("FP32", fields)
}

// newINTLayout is the 8-lane integer unit: operand latch, product/addend
// stage, with result delivered to the pipeline's exout latch. 8*187 + 46 =
// 1542 FFs.
func newINTLayout() *Layout {
	var fields []Field
	for l := 0; l < NumLanes; l++ {
		p := func(n string) string { return fmt.Sprintf("l%d_%s", l, n) }
		fields = append(fields,
			Field{Name: p("s1_a"), Width: 32},
			Field{Name: p("s1_b"), Width: 32},
			Field{Name: p("s1_c"), Width: 32},
			Field{Name: p("s1_op"), Width: 6},
			Field{Name: p("s1_cmp"), Width: 3},
			Field{Name: p("s1_valid"), Width: 1},
			Field{Name: p("s2_prod"), Width: 48},
			Field{Name: p("s2_addend"), Width: 32},
			Field{Name: p("s2_valid"), Width: 1},
		)
	}
	fields = append(fields,
		Field{Name: "iu_stage", Width: 2},
		Field{Name: "iu_submask", Width: 8},
		Field{Name: "iu_op", Width: 6},
		Field{Name: "iu_valid", Width: 1},
		Field{Name: "iu_dst", Width: 8},
		Field{Name: "iu_cmp", Width: 3},
		Field{Name: "iu_pdst", Width: 4},
		Field{Name: "iu_spare", Width: 14},
	)
	return NewLayout("INT", fields)
}

// sfuPipeDepth is the length of each SFU's working-register chain; the
// transcendental micro-sequences write one intermediate per cycle.
const sfuPipeDepth = 16

// newSFULayout is the pair of shared special-function units. Each unit
// holds its input latch, argument-reduction registers, the coefficient
// staging latches, a 16-deep intermediate-value pipe and the output
// latch. 2*1600 + 31 = 3231 FFs.
func newSFULayout() *Layout {
	var fields []Field
	for u := 0; u < NumSFUs; u++ {
		p := func(n string) string { return fmt.Sprintf("u%d_%s", u, n) }
		fields = append(fields,
			Field{Name: p("x"), Width: 32},
			Field{Name: p("op"), Width: 2},
			Field{Name: p("lane"), Width: 3},
			Field{Name: p("valid"), Width: 1},
			Field{Name: p("x2"), Width: 32},   // x*x or reduced argument
			Field{Name: p("f"), Width: 32},    // reduced fraction (exp)
			Field{Name: p("n"), Width: 9},     // scale integer (exp)
			Field{Name: p("res"), Width: 32},
			Field{Name: p("seed"), Width: 32}, // bit-trick Newton seed
			Field{Name: p("halfa"), Width: 32},
			Field{Name: p("iter"), Width: 5},
			Field{Name: p("spare"), Width: 44},
		)
		for c := 0; c < 8; c++ {
			fields = append(fields, Field{Name: fmt.Sprintf("u%d_coef%d", u, c), Width: 32})
		}
		for s := 0; s < sfuPipeDepth; s++ {
			fields = append(fields,
				Field{Name: fmt.Sprintf("u%d_pv%d", u, s), Width: 32},  // value
				Field{Name: fmt.Sprintf("u%d_pa%d", u, s), Width: 32},  // aux
				Field{Name: fmt.Sprintf("u%d_pt%d", u, s), Width: 4},   // tag
			)
		}
	}
	fields = append(fields,
		Field{Name: "su_select", Width: 1},
		Field{Name: "su_busy", Width: 2},
		Field{Name: "su_cycle", Width: 6},
		Field{Name: "su_status", Width: 22},
	)
	return NewLayout("SFU", fields)
}

// newSFUCtlLayout is the SFU arbitration controller: the request queue
// that time-multiplexes 8 lanes onto 2 units. Faults here mis-route
// results across lanes — the mechanism behind the paper's multi-thread
// SDCs on FSIN/FEXP (§V-B). 190 FFs.
func newSFUCtlLayout() *Layout {
	fields := []Field{
		{Name: "req_mask", Width: 8},
		{Name: "grant0", Width: 3},
		{Name: "grant1", Width: 3},
		{Name: "busy0", Width: 1},
		{Name: "busy1", Width: 1},
		{Name: "cnt0", Width: 6},
		{Name: "cnt1", Width: 6},
		{Name: "dst0", Width: 3},
		{Name: "dst1", Width: 3},
		{Name: "phase", Width: 2},
	}
	for q := 0; q < 8; q++ {
		p := fmt.Sprintf("q%d_", q)
		fields = append(fields,
			Field{Name: p + "lane", Width: 3},
			Field{Name: p + "op", Width: 2},
			Field{Name: p + "warp", Width: 5},
			Field{Name: p + "valid", Width: 1},
			Field{Name: p + "group", Width: 2},
			Field{Name: p + "spare", Width: 3},
		)
	}
	fields = append(fields, Field{Name: "cstatus", Width: 26})
	return NewLayout("SFUctl", fields)
}
