package rtl

import (
	"gpufi/internal/faults"
)

// This file implements golden-run liveness tracing, the analysis behind
// the fault-injection engine's dead-site pruning. While a fault-free run
// executes with a Liveness attached (Machine.TraceLiveness), every
// semantic flip-flop access — State.Get, State.Set, State.Reset, the only
// three ways model logic touches sequential state — is recorded as an
// event on a global sequence counter. From those events the tracer builds,
// per named field, the intervals in which the field's value is *live*:
// written, then read before being overwritten.
//
// A single-transient fault flips one bit of one field at the start of one
// cycle. If the golden run's first access to that field at or after the
// injection point is a write (Set overwrites the whole field) — or the
// field is never accessed again — the corrupted value can never reach any
// other state or memory: the faulty run is bit-identical to the golden run
// from the overwrite on, and the fault is provably Masked. DeadAt answers
// exactly that query.
//
// The analysis is conservative in the only direction that matters: any
// read of the field keeps the whole field live (a read of bits the fault
// did not touch still reports live), unprovable cases report live, and a
// zero-valued or never-attached Liveness reports everything live. Pruning
// decisions therefore never reclassify a fault that could propagate.

// liveSpan is one live interval of a field on the event-sequence axis: a
// fault applied at sequence point s (see cycleStart) can propagate through
// this field iff start <= s < end, i.e. the field was last written at or
// before s and is read at end before any overwrite.
type liveSpan struct {
	start, end uint64
}

// modLive is the per-module trace: the layout, each field's last-write
// sequence number, each field's accumulated live spans (disjoint,
// ascending — see onRead), and each field's read-gap boundaries (the
// ascending read events that refine the spans into inter-read gaps —
// see GapAt).
type modLive struct {
	lay       *Layout
	lastWrite []uint64
	spans     [][]liveSpan
	reads     [][]uint64
}

func (ml *modLive) init(lay *Layout) {
	ml.lay = lay
	ml.lastWrite = make([]uint64, len(lay.Fields))
	ml.spans = make([][]liveSpan, len(lay.Fields))
	ml.reads = make([][]uint64, len(lay.Fields))
}

// Liveness records one golden run's field-liveness trace across all six
// Table I modules. The zero value is valid: attach it with
// Machine.TraceLiveness before Run. A Liveness traces exactly one Run;
// once the run completes (or the tracer is detached) it is immutable, so
// DeadAt is safe to call from any number of goroutines concurrently.
type Liveness struct {
	seq        uint64
	cycleStart []uint64 // per cycle, the sequence point where a fault at that cycle lands
	mods       [6]modLive
}

// moduleIndex maps a Table I module to its Liveness slot, mirroring
// Machine.ModuleState (unknown values resolve to the pipeline module).
func moduleIndex(mod faults.Module) int {
	switch mod {
	case faults.ModFP32:
		return 0
	case faults.ModINT:
		return 1
	case faults.ModSFU:
		return 2
	case faults.ModSFUCtl:
		return 3
	case faults.ModSched:
		return 4
	default:
		return 5
	}
}

// onRead records a field read. The field has been live since its last
// write: extend the current span when that write already opened one,
// otherwise open a new span. Each new span's start (a write event) is
// later than the previous span's end (a read event — any interleaving
// write would have become that read's lastWrite), so spans stay disjoint
// and sorted and DeadAt can binary-search them.
func (l *Liveness) onRead(mod, fi int) {
	l.seq++
	ml := &l.mods[mod]
	w := ml.lastWrite[fi]
	// Record the read as a gap boundary, at most once per (field, cycle):
	// fault sites exist only at cycle starts, so a second read of the
	// same field in the same cycle can never be any fault's *first* read
	// and would only bloat the index GapAt binary-searches.
	var cs uint64
	if n := len(l.cycleStart); n > 0 {
		cs = l.cycleStart[n-1]
	}
	if rd := ml.reads[fi]; len(rd) == 0 || rd[len(rd)-1] <= cs {
		ml.reads[fi] = append(ml.reads[fi], l.seq)
	}
	if sp := ml.spans[fi]; len(sp) > 0 && sp[len(sp)-1].start == w {
		sp[len(sp)-1].end = l.seq
		return
	}
	ml.spans[fi] = append(ml.spans[fi], liveSpan{start: w, end: l.seq})
}

// onWrite records a field overwrite: any fault landing between this event
// and the next read of the field is dead.
func (l *Liveness) onWrite(mod, fi int) {
	l.seq++
	l.mods[mod].lastWrite[fi] = l.seq
}

// onReset records a whole-module clear as a write to every field.
func (l *Liveness) onReset(mod int) {
	l.seq++
	lw := l.mods[mod].lastWrite
	for i := range lw {
		lw[i] = l.seq
	}
}

// markCycle pins cycle's fault-application point onto the sequence axis.
// Machine.stepCycle calls it exactly where an injected fault would flip
// its bit, so initBlock/Reset writes of the same cycle sequence strictly
// before it and the cycle's phase logic strictly after.
func (l *Liveness) markCycle(cycle uint64) {
	if cycle != uint64(len(l.cycleStart)) {
		panic("rtl: Liveness reused across runs; attach a fresh tracer per golden run")
	}
	l.cycleStart = append(l.cycleStart, l.seq)
}

// Cycles returns the number of cycles the traced run executed.
func (l *Liveness) Cycles() uint64 { return uint64(len(l.cycleStart)) }

// DeadAt reports whether a single-transient fault flipping bit of mod at
// the start of cycle is provably dead: the golden run overwrites the
// containing field before ever reading it again (or never accesses it),
// so the fault cannot propagate and the run is bit-identical to golden.
// Unprovable cases — including cycles or bits outside the traced run —
// conservatively report false.
func (l *Liveness) DeadAt(mod faults.Module, bit int, cycle uint64) bool {
	if cycle >= uint64(len(l.cycleStart)) {
		return false
	}
	ml := &l.mods[moduleIndex(mod)]
	if ml.lay == nil || bit < 0 || bit >= ml.lay.Bits {
		return false
	}
	s := l.cycleStart[cycle]
	sp := ml.spans[ml.lay.fieldAt[bit]]
	i := searchSpanAfter(sp, s) - 1
	return i < 0 || s >= sp[i].end
}

// searchSpanAfter returns the index of the first span starting after s —
// sort.Search specialised to avoid the per-probe closure call on the
// campaign engines' hottest query path (one dead-site check per fault).
func searchSpanAfter(sp []liveSpan, s uint64) int {
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sp[mid].start > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchReadAfter is searchSpanAfter for read boundaries.
func searchReadAfter(rd []uint64, s uint64) int {
	lo, hi := 0, len(rd)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rd[mid] > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// GapAt refines DeadAt's live/dead answer into the read-gap index behind
// fault-equivalence collapsing. A live field value partitions the
// sequence axis into gaps (write, read_1], (read_1, read_2], ...,
// (read_{k-1}, read_k]: two faults flipping the same bit of the same
// field inside the same gap corrupt the same stored value, are first
// observed by the very same read event, and see an otherwise-golden
// machine in between (a span contains no write of the field, and an
// unread flipped bit influences nothing else) — so their faulty runs are
// bit-identical trajectories. GapAt returns a stable per-field gap ID
// (the index of the fault's first read boundary) and ok=true exactly
// when DeadAt would report the site live; dead or out-of-range sites
// return ok=false. Gap IDs are comparable within one (Liveness, module,
// field) only; campaign code keys them with the draw and bit.
//
// Like DeadAt, the lookup is two binary searches over the trace the
// golden run already recorded — no second golden run is needed.
func (l *Liveness) GapAt(mod faults.Module, bit int, cycle uint64) (int, bool) {
	if cycle >= uint64(len(l.cycleStart)) {
		return 0, false
	}
	ml := &l.mods[moduleIndex(mod)]
	if ml.lay == nil || bit < 0 || bit >= ml.lay.Bits {
		return 0, false
	}
	s := l.cycleStart[cycle]
	fi := ml.lay.fieldAt[bit]
	sp := ml.spans[fi]
	i := searchSpanAfter(sp, s) - 1
	if i < 0 || s >= sp[i].end {
		return 0, false
	}
	// reads[fi] keeps one boundary per cycle; since fault sites are cycle
	// starts too, "first recorded read after s" induces the same
	// partition as "first read event after s" while staying compact.
	return searchReadAfter(ml.reads[fi], s), true
}

// TraceLiveness attaches l to every module state so the next Run records
// its liveness trace; pass nil to detach (Snapshot replays, e.g. the
// checkpoint-recording pass, must not feed the same tracer twice). The
// trace adds no simulated cycles: it rides along the golden run the
// campaign performs anyway.
func (m *Machine) TraceLiveness(l *Liveness) {
	states := [...]*State{m.FP32, m.INT, m.SFU, m.SFUCtl, m.Sched, m.Pipe}
	if l != nil {
		for i, st := range states {
			if l.mods[i].lay == nil {
				l.mods[i].init(st.Lay)
			}
		}
	}
	for i, st := range states {
		if l == nil {
			st.live = nil
		} else {
			st.live, st.liveMod = l, i
		}
	}
	m.live = l
}
