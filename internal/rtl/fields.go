package rtl

import "fmt"

// Field-handle structs: pre-resolved indices into each module's layout so
// the cycle loop never does string lookups.

type schedFields struct {
	pc, state, depth, slot, reconv, ibuf, groupen, wctl [MaxWarps]int

	rrptr, phase, curwarp, group, livewarps, barwait, cyclectr           int
	fpc, fwarp, barmask, memhold, issuehold, stackbase, sstatus, fparity int
	maskcache, ibuf2, excflags, perfctr, retpc, grpstat, divctr          int
}

func (f *schedFields) init(l *Layout) {
	for w := 0; w < MaxWarps; w++ {
		p := func(n string) int { return l.MustField(fmt.Sprintf("w%d_%s", w, n)) }
		f.pc[w] = p("pc")
		f.state[w] = p("state")
		f.depth[w] = p("depth")
		f.slot[w] = p("slot")
		f.reconv[w] = p("reconv")
		f.ibuf[w] = p("ibuf")
		f.groupen[w] = p("groupen")
		f.wctl[w] = p("wctl")
	}
	f.rrptr = l.MustField("rrptr")
	f.phase = l.MustField("phase")
	f.curwarp = l.MustField("curwarp")
	f.group = l.MustField("group")
	f.livewarps = l.MustField("livewarps")
	f.barwait = l.MustField("barwait")
	f.cyclectr = l.MustField("cyclectr")
	f.fpc = l.MustField("fpc")
	f.fwarp = l.MustField("fwarp")
	f.barmask = l.MustField("barmask")
	f.memhold = l.MustField("memhold")
	f.issuehold = l.MustField("issuehold")
	f.stackbase = l.MustField("stackbase")
	f.sstatus = l.MustField("sstatus")
	f.fparity = l.MustField("fparity")
	f.maskcache = l.MustField("maskcache")
	f.ibuf2 = l.MustField("ibuf2")
	f.excflags = l.MustField("excflags")
	f.perfctr = l.MustField("perfctr")
	f.retpc = l.MustField("retpc")
	f.grpstat = l.MustField("grpstat")
	f.divctr = l.MustField("divctr")
}

type pipeFields struct {
	ifEcc, ifInstrHi, ifPC, ifWarp, ifValid, ifBlock int

	idOp, idDst, idSrcA, idSrcB, idSrcC, idGuard, idPDst, idCmp int
	idUseImm, idImm, idTarget, idReconv, idPC, idWarp, idValid, idMask int

	colaA, colaB, colaC [WarpSize]int
	colaValid, colaOp, colaDst, colaWarp, colaPDst, colaGuard, colaImm, colaMask int

	colbA, colbB, colbC [WarpSize]int
	colbValid, colbOp, colbDst, colbWarp, colbPDst, colbGuard, colbImm, colbMask int

	predA, predB [8]int

	exinA, exinB, exinC, exout [NumLanes]int

	issGroup, issSubmask, issOp, issDst, issWarp, issValid, issPDst, issCmp, issImm int

	wbRes [WarpSize]int
	wbWarp, wbDst, wbMask, wbValid, wbIsPred, wbPDst, wbPC int

	lsuAddr [WarpSize]int
	lsuValid, lsuOp, lsuWarp, lsuImm, lsuAValid, lsuTag int

	brTaken, brNtaken, brTarget, brReconv, brValid int

	barCount, barRelease, exPC, grpHist, scoreboard, excStatus, replay int
}

func (f *pipeFields) init(l *Layout) {
	g := l.MustField
	f.ifEcc, f.ifInstrHi = g("if_ecc"), g("if_instr_hi")
	f.ifPC, f.ifWarp, f.ifValid, f.ifBlock = g("if_pc"), g("if_warp"), g("if_valid"), g("if_block")

	f.idOp, f.idDst = g("id_op"), g("id_dst")
	f.idSrcA, f.idSrcB, f.idSrcC = g("id_srca"), g("id_srcb"), g("id_srcc")
	f.idGuard, f.idPDst, f.idCmp = g("id_guard"), g("id_pdst"), g("id_cmp")
	f.idUseImm, f.idImm = g("id_useimm"), g("id_imm")
	f.idTarget, f.idReconv = g("id_target"), g("id_reconv")
	f.idPC, f.idWarp, f.idValid, f.idMask = g("id_pc"), g("id_warp"), g("id_valid"), g("id_mask")

	for i := 0; i < WarpSize; i++ {
		f.colaA[i] = g(fmt.Sprintf("cola_a%d", i))
		f.colaB[i] = g(fmt.Sprintf("cola_b%d", i))
		f.colaC[i] = g(fmt.Sprintf("cola_c%d", i))
		f.colbA[i] = g(fmt.Sprintf("colb_a%d", i))
		f.colbB[i] = g(fmt.Sprintf("colb_b%d", i))
		f.colbC[i] = g(fmt.Sprintf("colb_c%d", i))
		f.wbRes[i] = g(fmt.Sprintf("wb_res%d", i))
		f.lsuAddr[i] = g(fmt.Sprintf("lsu_addr%d", i))
	}
	f.colaValid, f.colaOp, f.colaDst, f.colaWarp = g("cola_valid"), g("cola_op"), g("cola_dst"), g("cola_warp")
	f.colaPDst, f.colaGuard, f.colaImm, f.colaMask = g("cola_pdst"), g("cola_guard"), g("cola_imm"), g("cola_mask")
	f.colbValid, f.colbOp, f.colbDst, f.colbWarp = g("colb_valid"), g("colb_op"), g("colb_dst"), g("colb_warp")
	f.colbPDst, f.colbGuard, f.colbImm, f.colbMask = g("colb_pdst"), g("colb_guard"), g("colb_imm"), g("colb_mask")

	for p := 0; p < 8; p++ {
		f.predA[p] = g(fmt.Sprintf("preda%d", p))
		f.predB[p] = g(fmt.Sprintf("predb%d", p))
	}
	for i := 0; i < NumLanes; i++ {
		f.exinA[i] = g(fmt.Sprintf("exin_a%d", i))
		f.exinB[i] = g(fmt.Sprintf("exin_b%d", i))
		f.exinC[i] = g(fmt.Sprintf("exin_c%d", i))
		f.exout[i] = g(fmt.Sprintf("exout%d", i))
	}
	f.issGroup, f.issSubmask, f.issOp, f.issDst = g("iss_group"), g("iss_submask"), g("iss_op"), g("iss_dst")
	f.issWarp, f.issValid, f.issPDst, f.issCmp, f.issImm = g("iss_warp"), g("iss_valid"), g("iss_pdst"), g("iss_cmp"), g("iss_imm")

	f.wbWarp, f.wbDst, f.wbMask, f.wbValid = g("wb_warp"), g("wb_dst"), g("wb_mask"), g("wb_valid")
	f.wbIsPred, f.wbPDst, f.wbPC = g("wb_ispred"), g("wb_pdst"), g("wb_pc")

	f.lsuValid, f.lsuOp, f.lsuWarp = g("lsu_valid"), g("lsu_op"), g("lsu_warp")
	f.lsuImm, f.lsuAValid, f.lsuTag = g("lsu_imm"), g("lsu_avalid"), g("lsu_tag")

	f.brTaken, f.brNtaken, f.brTarget = g("br_taken"), g("br_ntaken"), g("br_target")
	f.brReconv, f.brValid = g("br_reconv"), g("br_valid")

	f.barCount, f.barRelease, f.exPC = g("bar_count"), g("bar_release"), g("ex_pc")
	f.grpHist, f.scoreboard, f.excStatus, f.replay = g("grp_hist"), g("scoreboard"), g("exc_status"), g("replay")
}

type fpFields struct {
	s1A, s1B, s1C, s1Op, s1Valid [NumLanes]int
	s2ASign, s2AExp, s2AMan     [NumLanes]int
	s2BSign, s2BExp, s2BMan     [NumLanes]int
	s2Special, s2SpecValid      [NumLanes]int
	s2Op, s2Valid               [NumLanes]int
	s3P, s3PExp, s3PSign        [NumLanes]int
	s3CSign, s3CExp, s3CMan     [NumLanes]int
	s3Op, s3Valid               [NumLanes]int
	s4FracB, s4FracS, s4ExpB    [NumLanes]int
	s4SignB, s4SignS, s4Valid   [NumLanes]int
	s4Shift                     [NumLanes]int
	s5Frac, s5Exp, s5Sign       [NumLanes]int
	s5Valid                     [NumLanes]int
	s6Res, s6Valid              [NumLanes]int

	fuStage, fuValid, fuCycles, fuLaneMask int
}

func (f *fpFields) init(l *Layout) {
	for i := 0; i < NumLanes; i++ {
		g := func(n string) int { return l.MustField(fmt.Sprintf("l%d_%s", i, n)) }
		f.s1A[i], f.s1B[i], f.s1C[i] = g("s1_a"), g("s1_b"), g("s1_c")
		f.s1Op[i], f.s1Valid[i] = g("s1_op"), g("s1_valid")
		f.s2ASign[i], f.s2AExp[i], f.s2AMan[i] = g("s2_asign"), g("s2_aexp"), g("s2_aman")
		f.s2BSign[i], f.s2BExp[i], f.s2BMan[i] = g("s2_bsign"), g("s2_bexp"), g("s2_bman")
		f.s2Special[i], f.s2SpecValid[i] = g("s2_special"), g("s2_specvalid")
		f.s2Op[i], f.s2Valid[i] = g("s2_op"), g("s2_valid")
		f.s3P[i], f.s3PExp[i], f.s3PSign[i] = g("s3_p"), g("s3_pexp"), g("s3_psign")
		f.s3CSign[i], f.s3CExp[i], f.s3CMan[i] = g("s3_csign"), g("s3_cexp"), g("s3_cman")
		f.s3Op[i], f.s3Valid[i] = g("s3_op"), g("s3_valid")
		f.s4FracB[i], f.s4FracS[i], f.s4ExpB[i] = g("s4_fracb"), g("s4_fracs"), g("s4_expb")
		f.s4SignB[i], f.s4SignS[i], f.s4Valid[i] = g("s4_signb"), g("s4_signs"), g("s4_valid")
		f.s4Shift[i] = g("s4_shift")
		f.s5Frac[i], f.s5Exp[i], f.s5Sign[i], f.s5Valid[i] = g("s5_frac"), g("s5_exp"), g("s5_sign"), g("s5_valid")
		f.s6Res[i], f.s6Valid[i] = g("s6_res"), g("s6_valid")
	}
	f.fuStage, f.fuValid, f.fuCycles = l.MustField("fu_stage"), l.MustField("fu_valid"), l.MustField("fu_cycles")
	f.fuLaneMask = l.MustField("fu_lanemask")
}

type intFields struct {
	s1A, s1B, s1C, s1Op, s1Cmp, s1Valid [NumLanes]int
	s2Prod, s2Addend, s2Valid           [NumLanes]int

	iuStage, iuSubmask, iuOp, iuValid, iuDst, iuCmp, iuPDst int
}

func (f *intFields) init(l *Layout) {
	for i := 0; i < NumLanes; i++ {
		g := func(n string) int { return l.MustField(fmt.Sprintf("l%d_%s", i, n)) }
		f.s1A[i], f.s1B[i], f.s1C[i] = g("s1_a"), g("s1_b"), g("s1_c")
		f.s1Op[i], f.s1Cmp[i], f.s1Valid[i] = g("s1_op"), g("s1_cmp"), g("s1_valid")
		f.s2Prod[i], f.s2Addend[i], f.s2Valid[i] = g("s2_prod"), g("s2_addend"), g("s2_valid")
	}
	f.iuStage, f.iuSubmask, f.iuOp = l.MustField("iu_stage"), l.MustField("iu_submask"), l.MustField("iu_op")
	f.iuValid, f.iuDst = l.MustField("iu_valid"), l.MustField("iu_dst")
	f.iuCmp, f.iuPDst = l.MustField("iu_cmp"), l.MustField("iu_pdst")
}

type sfuFields struct {
	x, op, lane, valid, x2, fr, n, res, seed, halfa, iter [NumSFUs]int
	coef                                                  [NumSFUs][8]int
	pv, pa, ptag                                          [NumSFUs][sfuPipeDepth]int

	suSelect, suBusy, suCycle int
}

func (f *sfuFields) init(l *Layout) {
	for u := 0; u < NumSFUs; u++ {
		g := func(n string) int { return l.MustField(fmt.Sprintf("u%d_%s", u, n)) }
		f.x[u], f.op[u], f.lane[u], f.valid[u] = g("x"), g("op"), g("lane"), g("valid")
		f.x2[u], f.fr[u], f.n[u], f.res[u] = g("x2"), g("f"), g("n"), g("res")
		f.seed[u], f.halfa[u], f.iter[u] = g("seed"), g("halfa"), g("iter")
		for c := 0; c < 8; c++ {
			f.coef[u][c] = l.MustField(fmt.Sprintf("u%d_coef%d", u, c))
		}
		for s := 0; s < sfuPipeDepth; s++ {
			f.pv[u][s] = l.MustField(fmt.Sprintf("u%d_pv%d", u, s))
			f.pa[u][s] = l.MustField(fmt.Sprintf("u%d_pa%d", u, s))
			f.ptag[u][s] = l.MustField(fmt.Sprintf("u%d_pt%d", u, s))
		}
	}
	f.suSelect, f.suBusy, f.suCycle = l.MustField("su_select"), l.MustField("su_busy"), l.MustField("su_cycle")
}

type ctlFields struct {
	reqMask, grant0, grant1, busy0, busy1, cnt0, cnt1, dst0, dst1, phase int
	qLane, qOp, qWarp, qValid, qGroup                                    [8]int
}

func (f *ctlFields) init(l *Layout) {
	g := l.MustField
	f.reqMask, f.grant0, f.grant1 = g("req_mask"), g("grant0"), g("grant1")
	f.busy0, f.busy1, f.cnt0, f.cnt1 = g("busy0"), g("busy1"), g("cnt0"), g("cnt1")
	f.dst0, f.dst1, f.phase = g("dst0"), g("dst1"), g("phase")
	for q := 0; q < 8; q++ {
		f.qLane[q] = g(fmt.Sprintf("q%d_lane", q))
		f.qOp[q] = g(fmt.Sprintf("q%d_op", q))
		f.qWarp[q] = g(fmt.Sprintf("q%d_warp", q))
		f.qValid[q] = g(fmt.Sprintf("q%d_valid", q))
		f.qGroup[q] = g(fmt.Sprintf("q%d_group", q))
	}
}

// encS encodes a signed value into a width-bit two's-complement field.
func encS(v int32, width uint) uint64 {
	return uint64(uint32(v)) & (1<<width - 1)
}

// decS decodes a width-bit two's-complement field.
func decS(u uint64, width uint) int32 {
	v := uint32(u)
	if u&(1<<(width-1)) != 0 {
		v |= ^uint32(0) << width
	}
	return int32(v)
}
