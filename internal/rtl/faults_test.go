package rtl

import (
	"errors"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

// TestFaultOutcomeDeterministic: the same (fault, program, inputs) must
// reproduce the same outcome and memory image.
func TestFaultOutcomeDeterministic(t *testing.T) {
	prog := vecOpProg(t, isa.OpFFMA)
	init := make([]uint32, 256)
	for i := 0; i < 192; i++ {
		init[i] = f32(float32(i)*0.5 + 1)
	}
	run := func() ([]uint32, error) {
		g := append([]uint32(nil), init...)
		m := New()
		m.Inject(Fault{Module: faults.ModFP32, Bit: 1234, Cycle: 77})
		err := m.Run(prog, 1, 64, g, 0, testMaxCycles)
		return g, err
	}
	g1, e1 := run()
	g2, e2 := run()
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("outcomes differ: %v vs %v", e1, e2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("memory differs at %d", i)
		}
	}
}

// TestSchedulerStateFaultKillsWarp: flipping a live warp's state bits to
// DONE before it stores must silently lose its outputs (whole-warp SDC),
// the paper's dominant scheduler corruption mode.
func TestSchedulerStateFaultKillsWarp(t *testing.T) {
	b := kasm.New("store")
	b.S2R(1, isa.SRTid)
	b.MovI(2, 7)
	b.Gst(1, 0, 2)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	// Warp 1's state field: flip bit 1 (READY=1 -> 3=DONE) at cycle 0.
	lay := m.Sched.Lay
	stateOff := lay.Fields[lay.MustField("w1_state")].Offset
	m.Inject(Fault{Module: faults.ModSched, Bit: stateOff + 1, Cycle: 0})
	g := make([]uint32, 64)
	if err := m.Run(prog, 1, 64, g, 0, testMaxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Warp 0 stored; warp 1 never ran.
	for i := 0; i < 32; i++ {
		if g[i] != 7 {
			t.Fatalf("warp 0 thread %d missing", i)
		}
	}
	missing := 0
	for i := 32; i < 64; i++ {
		if g[i] == 0 {
			missing++
		}
	}
	if missing != 32 {
		t.Errorf("killed warp stored %d threads, want 0", 32-missing)
	}
}

// TestSchedulerPCFaultDerails: flipping a high PC bit of a live warp must
// end in a DUE (fetch beyond the program).
func TestSchedulerPCFaultDerails(t *testing.T) {
	b := kasm.New("loop")
	b.MovI(1, 0)
	b.Label("top")
	b.IAddI(1, 1, 1)
	b.ISetPI(isa.P(0), isa.CmpLT, 1, 50)
	b.BraIf(isa.P(0), "top")
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	lay := m.Sched.Lay
	pcOff := lay.Fields[lay.MustField("w0_pc")].Offset
	// The PC register is overwritten at every commit, so only flips that
	// land between commit and the next fetch take effect: sweep a window
	// of cycles and require that some of them derail.
	dues := 0
	for cycle := uint64(100); cycle < 160; cycle++ {
		m.Inject(Fault{Module: faults.ModSched, Bit: pcOff + 14, Cycle: cycle})
		err := m.Run(prog, 1, 32, nil, 0, 50000)
		if errors.Is(err, ErrBadPC) || errors.Is(err, ErrWatchdog) || errors.Is(err, ErrIllegalInstr) {
			dues++
		}
	}
	if dues == 0 {
		t.Error("no DUE from 60 high-PC-bit flips (implausible)")
	}
}

// TestGroupEnableFaultDisablesCluster: flipping a groupen bit must mask
// out exactly its 4-lane cluster for the rest of the run.
func TestGroupEnableFaultDisablesCluster(t *testing.T) {
	b := kasm.New("store")
	b.S2R(1, isa.SRTid)
	b.MovI(2, 9)
	b.Gst(1, 0, 2)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	lay := m.Sched.Lay
	genOff := lay.Fields[lay.MustField("w0_groupen")].Offset
	m.Inject(Fault{Module: faults.ModSched, Bit: genOff + 3, Cycle: 0}) // lanes 12..15
	g := make([]uint32, 32)
	if err := m.Run(prog, 1, 32, g, 0, testMaxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(9)
		if i >= 12 && i < 16 {
			want = 0
		}
		if g[i] != want {
			t.Errorf("lane %d = %d, want %d", i, g[i], want)
		}
	}
}

// TestRTLBarrierDivergenceIsDUE mirrors the emulator's barrier legality
// check.
func TestRTLBarrierDivergenceIsDUE(t *testing.T) {
	b := kasm.New("badbar")
	b.S2R(1, isa.SRTid)
	b.AndI(2, 1, 1)
	b.ISetPI(isa.P(0), isa.CmpEQ, 2, 0)
	b.If(isa.P(0), func() { b.Bar() })
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	err = m.Run(prog, 1, 32, nil, 0, testMaxCycles)
	if !errors.Is(err, ErrBadBarrier) {
		t.Errorf("err = %v, want ErrBadBarrier", err)
	}
}

// TestRTLStackOverflowIsDUE: exceeding the 5-bit SIMT depth traps.
func TestRTLStackOverflowIsDUE(t *testing.T) {
	b := kasm.New("deep")
	b.S2R(1, isa.SRTid)
	var nest func(d int)
	nest = func(d int) {
		if d > 20 {
			b.Nop()
			return
		}
		// tid < d splits one thread off per level; the recursion sits in
		// the else branch, which the PDOM stack executes first, so every
		// level leaves its then-sibling waiting on the stack: two entries
		// per level, exceeding the 5-bit depth budget around level 15.
		b.ISetPI(isa.P(0), isa.CmpLT, 1, int32(d))
		b.IfElse(isa.P(0),
			func() { b.Nop() },
			func() { nest(d + 1) },
		)
	}
	nest(1)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	err = m.Run(prog, 1, 32, nil, 0, testMaxCycles)
	if !errors.Is(err, ErrBadStack) {
		t.Errorf("err = %v, want ErrBadStack", err)
	}
}

// TestEveryModuleFaultNeverPanics sprays faults into every module across
// a barrier-and-divergence-heavy kernel and requires a classified outcome
// (never a panic or unbounded run).
func TestEveryModuleFaultNeverPanics(t *testing.T) {
	b := kasm.New("stress")
	b.S2R(1, isa.SRTid)
	b.Gld(2, 1, 0)
	b.Sst(1, 0, 2)
	b.Bar()
	b.AndI(3, 1, 3)
	b.ISetPI(isa.P(0), isa.CmpEQ, 3, 0)
	b.IfElse(isa.P(0),
		func() { b.FSin(4, 2) },
		func() { b.FExp(4, 2) },
	)
	b.Sld(5, 1, 0)
	b.FAdd(4, 4, 5)
	b.Gst(1, 64, 4)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	init := make([]uint32, 128)
	for i := 0; i < 64; i++ {
		init[i] = f32(0.01 * float32(i+1))
	}
	m := New()
	gold := append([]uint32(nil), init...)
	if err := m.Run(prog, 1, 64, gold, 64, testMaxCycles); err != nil {
		t.Fatalf("golden: %v", err)
	}
	cycles := m.Cycles()
	r := stats.NewRNG(777)
	for _, mod := range faults.AllModules() {
		for i := 0; i < 150; i++ {
			g := append([]uint32(nil), init...)
			m.Inject(Fault{
				Module: mod,
				Bit:    r.Intn(ModuleBits(mod)),
				Cycle:  uint64(r.Intn(int(cycles))),
			})
			_ = m.Run(prog, 1, 64, g, 64, cycles*10+1000) // outcome may be any class
		}
	}
}

// TestRTLAgainstEmulatorUnderNoFaultAfterInjectionRuns guards against
// state leakage from faulty runs into subsequent clean runs (regression
// for the transient-fault contract).
func TestRTLAgainstEmulatorUnderNoFaultAfterInjectionRuns(t *testing.T) {
	prog := vecOpProg(t, isa.OpFSIN)
	init := make([]uint32, 256)
	for i := 0; i < 64; i++ {
		init[i] = f32(0.02 * float32(i+1))
	}
	m := New()
	r := stats.NewRNG(3)
	for i := 0; i < 50; i++ {
		g := append([]uint32(nil), init...)
		m.Inject(Fault{Module: faults.ModSFUCtl, Bit: r.Intn(FFCountSFUCtl), Cycle: uint64(50 + i)})
		_ = m.Run(prog, 1, 64, g, 0, testMaxCycles)
	}
	// Clean run must equal the emulator bit for bit.
	gRTL := append([]uint32(nil), init...)
	if err := m.Run(prog, 1, 64, gRTL, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	gEmu := append([]uint32(nil), init...)
	if _, err := emu.Run(&emu.Launch{Prog: prog, Grid: 1, Block: 64, Global: gEmu}); err != nil {
		t.Fatal(err)
	}
	for i := range gRTL {
		if gRTL[i] != gEmu[i] {
			t.Fatalf("leakage: word %d rtl=%#x emu=%#x", i, gRTL[i], gEmu[i])
		}
	}
}
