package rtl

import (
	"errors"
	"math"
	"testing"

	"gpufi/internal/emu"
	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

const testMaxCycles = 2_000_000

// Register conventions shared by the test kernels.
const (
	rTid  = isa.Reg(1)
	rA    = isa.Reg(2)
	rB    = isa.Reg(3)
	rC    = isa.Reg(4)
	rAddr = isa.Reg(5)
	rTmp  = isa.Reg(6)
)

// runBoth executes prog on the RTL machine and the functional emulator
// with identical memory images and asserts bit-identical results.
func runBoth(t *testing.T, prog *kasm.Program, grid, block int, global []uint32, sharedWords int) []uint32 {
	t.Helper()
	gRTL := append([]uint32(nil), global...)
	gEmu := append([]uint32(nil), global...)

	m := New()
	if err := m.Run(prog, grid, block, gRTL, sharedWords, testMaxCycles); err != nil {
		t.Fatalf("rtl run: %v", err)
	}
	if _, err := emu.Run(&emu.Launch{
		Prog: prog, Grid: grid, Block: block,
		Global: gEmu, SharedWords: sharedWords,
	}); err != nil {
		t.Fatalf("emu run: %v", err)
	}
	for i := range gRTL {
		if gRTL[i] != gEmu[i] {
			t.Fatalf("rtl/emu divergence at word %d: rtl=%#x emu=%#x", i, gRTL[i], gEmu[i])
		}
	}
	return gRTL
}

func f32(v float32) uint32 { return math.Float32bits(v) }

func vecOpProg(t *testing.T, op isa.Opcode) *kasm.Program {
	t.Helper()
	b := kasm.New("vecop")
	b.S2R(rTid, isa.SRTid)
	b.Gld(rA, rTid, 0)
	b.Gld(rB, rTid, 64)
	b.Gld(rC, rTid, 128)
	b.Emit(isa.Instr{Op: op, Guard: isa.PredTrue, Dst: rTmp, SrcA: rA, SrcB: rB, SrcC: rC})
	b.Gst(rTid, 192, rTmp)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRTLVectorIntAdd(t *testing.T) {
	global := make([]uint32, 256)
	for i := 0; i < 64; i++ {
		global[i] = uint32(i)
		global[64+i] = uint32(1000 * i)
	}
	out := runBoth(t, vecOpProg(t, isa.OpIADD), 1, 64, global, 0)
	for i := 0; i < 64; i++ {
		if out[192+i] != uint32(i+1000*i) {
			t.Fatalf("out[%d] = %d", i, out[192+i])
		}
	}
}

func TestRTLFloatOpsMatchEmulatorRandom(t *testing.T) {
	r := stats.NewRNG(2024)
	for _, op := range []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA} {
		prog := vecOpProg(t, op)
		global := make([]uint32, 256)
		for trial := 0; trial < 8; trial++ {
			for i := 0; i < 192; i++ {
				if r.Intn(10) == 0 {
					global[i] = uint32(r.Uint64()) // arbitrary bit pattern
				} else {
					global[i] = f32(float32(r.Float64Range(-1e9, 1e9)))
				}
			}
			runBoth(t, prog, 1, 64, global, 0)
		}
	}
}

func TestRTLIntOpsMatchEmulatorRandom(t *testing.T) {
	r := stats.NewRNG(77)
	for _, op := range []isa.Opcode{isa.OpIADD, isa.OpIMUL, isa.OpIMAD, isa.OpAND, isa.OpXOR} {
		prog := vecOpProg(t, op)
		global := make([]uint32, 256)
		for i := 0; i < 192; i++ {
			global[i] = uint32(r.Uint64())
		}
		runBoth(t, prog, 1, 64, global, 0)
	}
}

func TestRTLSFUMatchesEmulator(t *testing.T) {
	for _, op := range []isa.Opcode{isa.OpFSIN, isa.OpFEXP, isa.OpFRCP, isa.OpFRSQRT} {
		prog := vecOpProg(t, op)
		global := make([]uint32, 256)
		for i := 0; i < 64; i++ {
			global[i] = f32(0.01 + float32(i)*0.024) // (0, pi/2)
		}
		out := runBoth(t, prog, 1, 64, global, 0)
		// Sanity: FSIN result for x=0.97 should be near sin.
		if op == isa.OpFSIN {
			x := float64(math.Float32frombits(global[40]))
			got := float64(math.Float32frombits(out[192+40]))
			if math.Abs(got-math.Sin(x)) > 1e-5 {
				t.Errorf("rtl sin(%v) = %v", x, got)
			}
		}
	}
}

func TestRTLSFUSpecialInputs(t *testing.T) {
	specials := []uint32{
		f32(0), f32(float32(math.Inf(1))), f32(float32(math.Inf(-1))),
		0x7FC00000, // NaN
		f32(-2.5), f32(200), f32(-200), f32(1e30), f32(1e-30),
	}
	for _, op := range []isa.Opcode{isa.OpFSIN, isa.OpFEXP, isa.OpFRCP, isa.OpFRSQRT} {
		prog := vecOpProg(t, op)
		global := make([]uint32, 256)
		for i := 0; i < 64; i++ {
			global[i] = specials[i%len(specials)]
		}
		runBoth(t, prog, 1, 64, global, 0)
	}
}

func TestRTLDivergenceMatchesEmulator(t *testing.T) {
	b := kasm.New("ifelse")
	b.S2R(rTid, isa.SRTid)
	b.AndI(rTmp, rTid, 1)
	b.ISetPI(isa.P(0), isa.CmpEQ, rTmp, 0)
	b.IfElse(isa.P(0),
		func() { b.MovF(rC, 1.0) },
		func() { b.MovF(rC, 2.0) },
	)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	out := runBoth(t, prog, 1, 64, make([]uint32, 64), 0)
	for i := 0; i < 64; i++ {
		want := f32(1.0)
		if i%2 == 1 {
			want = f32(2.0)
		}
		if out[i] != want {
			t.Fatalf("lane %d = %#x", i, out[i])
		}
	}
}

func TestRTLDivergentLoopMatchesEmulator(t *testing.T) {
	b := kasm.New("divloop")
	b.S2R(rTid, isa.SRTid)
	b.AndI(rTid, rTid, 7) // trip counts 0..7 to keep the RTL run short
	b.MovI(rC, 0)
	b.MovI(rTmp, 0)
	b.Label("top")
	b.IAddI(rC, rC, 1)
	b.IAddI(rTmp, rTmp, 1)
	b.ISetP(isa.P(0), isa.CmpLE, rTmp, rTid)
	b.BraIf(isa.P(0), "top")
	b.S2R(rTid, isa.SRTid)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	out := runBoth(t, prog, 1, 64, make([]uint32, 64), 0)
	for i := 0; i < 64; i++ {
		if out[i] != uint32(i%8+1) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i%8+1)
		}
	}
}

func TestRTLSharedMemoryBarrierMatchesEmulator(t *testing.T) {
	const blockDim = 64
	b := kasm.New("reverse")
	b.S2R(rTid, isa.SRTid)
	b.Gld(rA, rTid, 0)
	b.Sst(rTid, 0, rA)
	b.Bar()
	b.MovI(rTmp, blockDim-1)
	b.IMadI(rAddr, rTid, -1, rTmp)
	b.Sld(rB, rAddr, 0)
	b.Gst(rTid, blockDim, rB)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	global := make([]uint32, 2*blockDim)
	for i := 0; i < blockDim; i++ {
		global[i] = uint32(i * 3)
	}
	out := runBoth(t, prog, 1, blockDim, global, blockDim)
	for i := 0; i < blockDim; i++ {
		if out[blockDim+i] != uint32((blockDim-1-i)*3) {
			t.Fatalf("reverse[%d] = %d", i, out[blockDim+i])
		}
	}
}

func TestRTLMultiBlock(t *testing.T) {
	b := kasm.New("blocks")
	b.S2R(rTid, isa.SRTid)
	b.S2R(rA, isa.SRCtaid)
	b.S2R(rB, isa.SRNtid)
	b.IMad(rAddr, rA, rB, rTid)
	b.IAddI(rC, rAddr, 100)
	b.Gst(rAddr, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	out := runBoth(t, prog, 3, 32, make([]uint32, 96), 0)
	for i := 0; i < 96; i++ {
		if out[i] != uint32(i+100) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestRTLGuardedExit(t *testing.T) {
	b := kasm.New("exit")
	b.S2R(rTid, isa.SRTid)
	b.ISetPI(isa.P(0), isa.CmpGE, rTid, 16)
	b.Emit(isa.Instr{Op: isa.OpEXIT, Guard: isa.P(0)})
	b.MovI(rC, 9)
	b.Gst(rTid, 0, rC)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	out := runBoth(t, prog, 1, 32, make([]uint32, 32), 0)
	for i := 0; i < 32; i++ {
		want := uint32(9)
		if i >= 16 {
			want = 0
		}
		if out[i] != want {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestRTLWatchdog(t *testing.T) {
	b := kasm.New("hang")
	b.Label("top")
	b.Bra("top")
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	err = m.Run(prog, 1, 32, nil, 0, 5000)
	if !errors.Is(err, ErrWatchdog) {
		t.Errorf("err = %v, want ErrWatchdog", err)
	}
}

func TestRTLBadAddressIsDUE(t *testing.T) {
	b := kasm.New("oob")
	b.MovI(rAddr, 100000)
	b.Gld(rA, rAddr, 0)
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	err = m.Run(prog, 1, 32, make([]uint32, 4), 0, testMaxCycles)
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

func TestRTLIllegalInstructionIsDUE(t *testing.T) {
	b := kasm.New("ill")
	b.Nop()
	prog, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	prog.Words[0] = isa.Word{0, 0} // zero opcode field: illegal
	m := New()
	err = m.Run(prog, 1, 32, nil, 0, testMaxCycles)
	if !errors.Is(err, ErrIllegalInstr) {
		t.Errorf("err = %v, want ErrIllegalInstr", err)
	}
}

func TestRTLCycleCountsPlausible(t *testing.T) {
	prog := vecOpProg(t, isa.OpFADD)
	global := make([]uint32, 256)
	m := New()
	if err := m.Run(prog, 1, 64, global, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	c := m.Cycles()
	// 6 instructions x 2 warps, tens of cycles each.
	if c < 100 || c > 10000 {
		t.Errorf("cycle count %d implausible", c)
	}
}

func TestRTLDeterministicRuns(t *testing.T) {
	prog := vecOpProg(t, isa.OpFFMA)
	mk := func() []uint32 {
		g := make([]uint32, 256)
		for i := 0; i < 192; i++ {
			g[i] = f32(float32(i) * 0.37)
		}
		m := New()
		if err := m.Run(prog, 1, 64, g, 0, testMaxCycles); err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestRTLMachineReusableAcrossRuns(t *testing.T) {
	prog := vecOpProg(t, isa.OpIADD)
	m := New()
	for run := 0; run < 3; run++ {
		g := make([]uint32, 256)
		for i := 0; i < 64; i++ {
			g[i] = uint32(i + run)
		}
		if err := m.Run(prog, 1, 64, g, 0, testMaxCycles); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if g[192+i] != uint32(i+run) {
				t.Fatalf("run %d out[%d] = %d", run, i, g[192+i])
			}
		}
	}
}

func TestFaultInjectionOutcomesSanity(t *testing.T) {
	// Inject faults uniformly into each module during an FFMA
	// micro-benchmark; check that the machine never panics, that some
	// faults are masked and (for datapath modules) some cause SDCs.
	prog := vecOpProg(t, isa.OpFFMA)
	golden := make([]uint32, 256)
	for i := 0; i < 192; i++ {
		golden[i] = f32(1.5 + float32(i)*0.25)
	}
	m := New()
	gold := append([]uint32(nil), golden...)
	if err := m.Run(prog, 1, 64, gold, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	goldenCycles := m.Cycles()

	r := stats.NewRNG(99)
	for _, mod := range faults.AllModules() {
		masked, sdc, due := 0, 0, 0
		for i := 0; i < 300; i++ {
			g := append([]uint32(nil), golden...)
			m.Inject(Fault{
				Module: mod,
				Bit:    r.Intn(ModuleBits(mod)),
				Cycle:  uint64(r.Intn(int(goldenCycles))),
			})
			err := m.Run(prog, 1, 64, g, 0, goldenCycles*10+1000)
			if err != nil {
				due++
				continue
			}
			diff := false
			for k := range g {
				if g[k] != gold[k] {
					diff = true
					break
				}
			}
			if diff {
				sdc++
			} else {
				masked++
			}
		}
		t.Logf("%s: masked=%d sdc=%d due=%d", mod, masked, sdc, due)
		if masked == 0 {
			t.Errorf("%s: no masked faults in 300 injections (implausible)", mod)
		}
		if mod == faults.ModFP32 && sdc == 0 {
			t.Errorf("FP32: no SDCs in 300 injections during FFMA (implausible)")
		}
	}
}

func TestFaultInjectionDoesNotPersistAcrossRuns(t *testing.T) {
	prog := vecOpProg(t, isa.OpIADD)
	m := New()
	g1 := make([]uint32, 256)
	for i := 0; i < 64; i++ {
		g1[i] = uint32(i)
	}
	m.Inject(Fault{Module: faults.ModINT, Bit: 5, Cycle: 40})
	_ = m.Run(prog, 1, 64, g1, 0, testMaxCycles)

	// Second run without injection must be fault-free.
	g2 := make([]uint32, 256)
	for i := 0; i < 64; i++ {
		g2[i] = uint32(i)
	}
	if err := m.Run(prog, 1, 64, g2, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if g2[192+i] != uint32(i) {
			t.Fatalf("stale fault leaked into clean run at %d", i)
		}
	}
}

func BenchmarkRTLMicrobenchRun(b *testing.B) {
	bb := kasm.New("vecop")
	bb.S2R(rTid, isa.SRTid)
	bb.Gld(rA, rTid, 0)
	bb.Gld(rB, rTid, 64)
	bb.FAdd(rTmp, rA, rB)
	bb.Gst(rTid, 128, rTmp)
	prog, err := bb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	global := make([]uint32, 256)
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(prog, 1, 64, global, 0, testMaxCycles); err != nil {
			b.Fatal(err)
		}
	}
}
