package rtl

import (
	"testing"

	"gpufi/internal/faults"
)

func TestLayoutTotalsMatchTableI(t *testing.T) {
	tests := []struct {
		lay  *Layout
		want int
	}{
		{newFP32Layout(), FFCountFP32},
		{newINTLayout(), FFCountINT},
		{newSFULayout(), FFCountSFU},
		{newSFUCtlLayout(), FFCountSFUCtl},
		{newSchedLayout(), FFCountSched},
		{newPipeLayout(), FFCountPipe},
	}
	for _, tt := range tests {
		if tt.lay.Bits != tt.want {
			t.Errorf("%s layout = %d FFs, want %d (Table I); delta %+d",
				tt.lay.Name, tt.lay.Bits, tt.want, tt.lay.Bits-tt.want)
		}
	}
}

func TestPipeDatapathControlSplit(t *testing.T) {
	// The paper: ~84% of pipeline registers store per-core operands,
	// ~16% are control (§V-B).
	lay := newPipeLayout()
	datapath := 0
	for _, f := range lay.Fields {
		if isPipeDatapathField(f.Name) {
			datapath += f.Width
		}
	}
	frac := float64(datapath) / float64(lay.Bits)
	if frac < 0.80 || frac > 0.88 {
		t.Errorf("pipeline datapath share = %.3f (%d bits), want ~0.84", frac, datapath)
	}
}

func TestModuleSizeOrdering(t *testing.T) {
	// Sanity relations the paper draws on: FP32 is ~3x larger than INT
	// (4451/1542 = 2.89 in Table I; the text rounds to "more than 3x"),
	// which explains the lower FP32 AVF (§V-B).
	if float64(FFCountFP32)/float64(FFCountINT) < 2.5 {
		t.Error("FP32 must be roughly 3x the INT unit")
	}
	if FFCountPipe < FFCountSched {
		t.Error("pipeline registers must dominate")
	}
}

func TestStateGetSetRoundTrip(t *testing.T) {
	lay := newSchedLayout()
	s := NewState(lay)
	pc0 := lay.MustField("w0_pc")
	mask5 := lay.MustField("w5_ibuf")
	phase := lay.MustField("phase")
	s.Set(pc0, 0xBEEF)
	s.Set(mask5, 0x12345678)
	s.Set(phase, 0xF)
	if got := s.Get(pc0); got != 0xBEEF {
		t.Errorf("pc0 = %x", got)
	}
	// Truncation to the 16-bit PC field width.
	s.Set(pc0, 0xDEADBEEF)
	if got := s.Get(pc0); got != 0xBEEF {
		t.Errorf("pc0 after wide write = %x, want truncated 0xBEEF", got)
	}
	if got := s.Get(mask5); got != 0x12345678 {
		t.Errorf("ibuf5 = %x", got)
	}
	if got := s.Get(phase); got != 0xF {
		t.Errorf("phase = %x", got)
	}
	// Truncation to field width.
	s.Set(phase, 0x1F)
	if got := s.Get(phase); got != 0xF {
		t.Errorf("phase truncation failed: %x", got)
	}
}

func TestStateFieldsSpanningWords(t *testing.T) {
	// Construct a layout whose second field straddles a 64-bit boundary.
	lay := NewLayout("straddle", []Field{
		{Name: "a", Width: 40},
		{Name: "b", Width: 48}, // bits 40..87
		{Name: "c", Width: 64}, // bits 88..151
	})
	s := NewState(lay)
	b := lay.MustField("b")
	c := lay.MustField("c")
	s.Set(b, 0xABCDEF012345)
	s.Set(c, 0xFEDCBA9876543210)
	if got := s.Get(b); got != 0xABCDEF012345 {
		t.Errorf("straddling field = %x", got)
	}
	if got := s.Get(c); got != 0xFEDCBA9876543210 {
		t.Errorf("64-bit straddling field = %x", got)
	}
	if got := s.Get(lay.MustField("a")); got != 0 {
		t.Errorf("neighbour overwritten: %x", got)
	}
}

func TestFlipBit(t *testing.T) {
	lay := newINTLayout()
	s := NewState(lay)
	f := lay.MustField("l3_s2_prod")
	s.Set(f, 0)
	bit := lay.Fields[f].Offset + 7
	s.FlipBit(bit)
	if got := s.Get(f); got != 1<<7 {
		t.Errorf("after flip, field = %x", got)
	}
	if s.Bit(bit) != 1 {
		t.Error("Bit readback failed")
	}
	s.FlipBit(bit)
	if s.PopCount() != 0 {
		t.Error("double flip must restore state")
	}
}

func TestFieldAt(t *testing.T) {
	lay := newSFUCtlLayout()
	f := lay.FieldAt(lay.MustFieldOffset("grant1"))
	if f.Name != "grant1" {
		t.Errorf("FieldAt = %s", f.Name)
	}
}

// MustFieldOffset is a test helper.
func (l *Layout) MustFieldOffset(name string) int {
	return l.Fields[l.MustField(name)].Offset
}

func TestAllModuleLayoutsHaveUniqueFieldNames(t *testing.T) {
	// NewLayout panics on duplicates; constructing all layouts is the test.
	for _, lay := range []*Layout{
		newFP32Layout(), newINTLayout(), newSFULayout(),
		newSFUCtlLayout(), newSchedLayout(), newPipeLayout(),
	} {
		if lay.Bits == 0 {
			t.Errorf("%s layout empty", lay.Name)
		}
	}
}

func TestCoverageShareVsRegisterFile(t *testing.T) {
	// The paper: the characterised modules cover ~84% of the FFs involved
	// in computation excluding memories. Here we simply check the total
	// characterised FF count the framework reports.
	if len(faults.AllModules()) != 6 {
		t.Fatal("module inventory changed; update layouts")
	}
	total := 0
	for _, lay := range []*Layout{
		newFP32Layout(), newINTLayout(), newSFULayout(),
		newSFUCtlLayout(), newSchedLayout(), newPipeLayout(),
	} {
		total += lay.Bits
	}
	want := FFCountFP32 + FFCountINT + FFCountSFU + FFCountSFUCtl + FFCountSched + FFCountPipe
	if total != want {
		t.Errorf("characterised FF total = %d, want %d", total, want)
	}
}
