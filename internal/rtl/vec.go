package rtl

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// This file implements bit-parallel fault simulation (the PPSFP trick the
// ROADMAP names): one march simulates up to 63 faulty machines alongside a
// single golden run of the same input draw. Lane 0 is the golden machine;
// lanes 1..63 are faulty variants, each a single-transient Fault.
//
// The engine exploits the same observation dead-site pruning and
// equivalence collapsing already rely on: a transient flip touches one
// flip-flop field, and until the golden dataflow *reads* a location where
// a faulty variant differs, the variant's cycle-by-cycle transition is
// bit-identical to the golden one. So a faulty lane does not need its own
// machine while it is *parked*: it is represented as the golden state plus
// a small set of (location, value) deltas. Per-location divergence planes
// — one uint64 of lane bits per flip-flop state word, register row, predicate
// file, active mask, SIMT stack and memory word — let the golden run's
// every semantic access probe "does any parked lane differ here?" in O(1):
//
//   - A golden *read* of a location with plane bits unparks those lanes:
//     their control/dataflow diverges this cycle, so each is materialised
//     onto a real machine (copy of the golden state, rewound to the cycle
//     start through the march's undo log, deltas applied) and steps in
//     lockstep with the golden machine from then on — the "evicted to the
//     scalar engine" path, except the eviction is usually temporary.
//   - A golden *overwrite* of a location kills the parked deltas there:
//     a still-parked lane saw identical inputs all along, so its own
//     (virtual) write stores the same value and the difference dies. Every
//     read-modify-write site probes the read before the write, so a lane
//     whose delta feeds the written value always unparks first and the
//     kill only ever fires on lanes for which it is sound. A lane whose
//     last delta is killed has provably reconverged with the golden run —
//     classification Masked — without ever simulating a cycle.
//   - A *hot* (materialised) lane periodically attempts to re-park: diff
//     its machine against the golden machine over the locations either
//     wrote since the divergence (plus the deltas it diverged with — the
//     march write log supplies the golden side, the lane tracer its own
//     writes). A small difference set parks the lane again; a large one —
//     the control-diverged case — keeps it hot, with exponential backoff
//     on further attempts, until it finishes on its own.
//
// Permanent faults would break the core invariant (a parked lane's state
// can be reconstructed as golden ⊕ deltas only because the flip happens
// once); they must use the scalar engine.
//
// The march preserves the engine's bit-identity guarantee: every lane's
// trajectory is exactly the scalar faulty run's (same final memory image,
// same DUE error, same trajectory length), because parked spans are
// provably transition-identical and hot spans execute the very same
// stepCycle logic. Only the SimCycles/SkippedCycles split differs, as it
// already does between the scalar engine's modes.

// VecMaxLanes is the faulty-lane capacity of one march: lane 0 is the
// golden machine, leaving 63 lane bits per divergence-plane word.
const VecMaxLanes = 63

const (
	// vecParkMax bounds the delta set a hot lane may park with; a diff
	// larger than this keeps the lane hot (control-diverged lanes would
	// otherwise thrash park/unpark).
	vecParkMax = 48
	// vecMaxCand bounds the candidate locations a park attempt will
	// compare; once a hot span has touched more, attempts fail fast and
	// the lane effectively stays on the scalar path.
	vecMaxCand = 768
	// vecMaxLaneWrites bounds the hot-lane write log; overflow marks the
	// lane as never-parking (de facto scalar eviction).
	vecMaxLaneWrites = 4096
	// vecMaxResync bounds the golden-write span an incremental machine
	// resync will roll forward; beyond it a full CopyFrom is cheaper.
	vecMaxResync = 2048
	// vecParkHorizon is the read-ahead horizon (in golden cycles) of
	// tryPark's schedule heuristic: a lane whose divergence the golden
	// run will read again within this many cycles stays hot — the hot
	// steps cost about as much as the park/unpark round trip the read
	// would force, and parking would buy nothing.
	vecParkHorizon = 6
)

// Location kinds of divergence deltas and write-log entries.
const (
	dFF     uint8 = iota // a = module slot (vecStates order), b = 64-bit word index
	dReg                 // a = warp, b = register, c = lane
	dPred                // a = warp, b = predicate index
	dMask                // a = warp (top-of-stack active mask)
	dStack               // a = warp (whole SIMT stack image)
	dGlobal              // a = word address
	dShared              // a = word address
)

// vdelta is one (location, value) pair. As a lane delta, val/stack hold
// the *lane's* value at the location; as a march write-log entry, they
// hold the golden value *before* the write (the undo image). As a
// hot-lane write record or park candidate, only the location is used.
type vdelta struct {
	kind    uint8
	a, b, c int32
	val     uint64
	stack   []simtEntry
}

// vkey is a vdelta's location, used for park-candidate deduplication.
type vkey struct {
	kind    uint8
	a, b, c int32
}

func (d *vdelta) key() vkey { return vkey{d.kind, d.a, d.b, d.c} }

// vlane is one faulty variant's march state.
type vlane struct {
	bit uint64 // this lane's divergence-plane bit
	idx int    // caller's slot in the March fault/outcome slices

	deltas []vdelta // parked: where (and how) the lane differs from golden
	base   []vdelta // hot: the deltas the lane diverged with (park candidates)
	spare  []vdelta // scratch for the next park attempt (capacity reuse)

	m        *Machine // hot: the lane's materialised machine
	writes   []vdelta // hot: locations the lane wrote (park candidates)
	spanFrom int      // hot: write-log index at materialisation
	nextTry  uint64   // hot: earliest golden cycle for the next park attempt
	tryGap   uint64   // hot: park-attempt backoff
	noPark   bool     // hot: write log overflowed; lane runs to completion

	lastPark uint64 // golden cycle of the last successful park
	thrash   uint32 // consecutive quick park→unpark round trips (see unpark)

	// Last schedule rejection (see tryPark): the module/word (or register
	// row) whose imminent golden re-read blocked the last park attempt.
	// The next attempt re-checks it first; while it still blocks, the
	// attempt costs a word compare and one schedule query.
	rejMod, rejWord int
	rejRow          int
	rejKind         uint8 // 0 none, 1 flip-flop word, 2 register row

	sim        uint64 // cycles actually stepped on a lane machine
	done       bool
	goldenDone bool // reconverged bit-identically with the golden run
	out        VecOutcome
}

// stashed is a delta killed earlier in the current cycle. If its lane
// unparks later in the same cycle, the delta is restored: the lane
// re-executes the whole cycle from its start, where the delta still held.
type stashed struct {
	ln *vlane
	d  vdelta
}

// vecTracer receives every semantic state access of the march's machines
// (see State.vec and Machine.vec). With hot == nil the golden machine is
// stepping: reads probe the divergence planes, writes feed the undo/write
// log and kill parked deltas. With hot set, that lane's machine is
// stepping and only its write locations are recorded.
type vecTracer struct {
	eng *VecEngine
	hot *vlane

	// states/ffFields cache the golden machine's module states and field
	// tables in moduleIndex order for the hook fast paths.
	states   [6]*State
	ffFields [6][]Field

	parked uint64 // lanes currently represented as deltas
	lanes  []*vlane

	// Divergence planes: bit L set means lane L is parked with a delta at
	// the location. Plane bits are always a subset of parked. Flip-flop
	// deltas live at 64-bit *word* granularity (one plane slot per module
	// state word), so park attempts diff module words directly and golden
	// field writes splice-update parked words without field extraction.
	ffPlane     [6][]uint64
	regPlane    [MaxWarps][isa.NumRegs]uint64
	predPlane   [MaxWarps]uint64
	maskPlane   [MaxWarps]uint64
	stackPlane  [MaxWarps]uint64
	globalPlane []uint64
	sharedPlane []uint64

	// wlog is the march's append-only golden write log for everything
	// EXCEPT flip-flop fields: locations with pre-write values.
	// cycleOff[c] is the log length at the start of golden cycle c, so
	// wlog[cycleOff[c]:] applied in reverse rewinds a copy of the
	// end-of-cycle state to the cycle start, and wlog[cycleOff[p]:] lists
	// every location golden wrote since cycle p. Flip-flop writes — the
	// machine's densest kind by an order of magnitude — are not logged:
	// ffSnap holds a copy of the golden module words from the start of
	// the current cycle (the FF rewind image), and park attempts diff
	// module state word-by-word instead of tracking write locations.
	wlog     []vdelta
	cycleOff []int
	ffSnap   [6][]uint64

	mark      uint64 // current golden cycle + 1
	cycleBase uint64 // golden cycle of the march's first step (cycleOff[0])
	stackMark [MaxWarps]uint64

	wake    []*vlane // lanes to materialise at the end of this cycle
	stash   []stashed
	emptied []*vlane // lanes whose last delta a kill removed this cycle

	// rec, when non-nil, is the draw's read schedule under construction:
	// this march is the draw's first, and every golden flip-flop and
	// register read is recorded. sched, when non-nil, is a completed
	// recording from an earlier march of the same draw (the golden run is
	// deterministic, so the schedule is identical), consulted by tryPark's
	// read-ahead heuristic. At most one of the two is set.
	rec   *MarchSched
	sched *MarchSched
}

// vecStates lists a machine's module states in moduleIndex order (the
// same order Liveness uses, so Fault.Module maps with moduleIndex).
func vecStates(m *Machine) [6]*State {
	return [6]*State{m.FP32, m.INT, m.SFU, m.SFUCtl, m.Sched, m.Pipe}
}

// TraceVec attaches t to every module state so the machine's semantic
// accesses reach the march engine; pass nil to detach.
func (m *Machine) TraceVec(t *vecTracer) {
	states := vecStates(m)
	for i, st := range states {
		if t == nil {
			st.vec = nil
		} else {
			st.vec, st.vecMod = t, i
		}
	}
	m.vec = t
}

// CopyFrom overwrites the machine's state with a bit-exact copy of
// another machine's, the Restore analogue for machine-to-machine copies.
// Like Restore it copies raw state and bypasses tracers, bounds the
// register-file copy by the source's dirty high-water mark, and leaves
// the machine with no pending fault or error.
func (m *Machine) CopyFrom(src *Machine) {
	msts, ssts := m.moduleStates(), src.moduleStates()
	for i := range msts {
		copy(msts[i].words, ssts[i].words)
	}
	for w := 0; w < src.hiDirty; w++ {
		m.regs[w] = src.regs[w]
		m.preds[w] = src.preds[w]
		m.stacks[w] = append(m.stacks[w][:0], src.stacks[w]...)
		m.warpMask[w] = src.warpMask[w]
	}
	for w := src.hiDirty; w < m.hiDirty; w++ {
		m.resetWarp(w)
	}
	m.hiDirty = src.hiDirty
	if !m.globalOwned || cap(m.global) < len(src.global) {
		m.global = make([]uint32, len(src.global))
		m.globalOwned = true
	}
	m.global = m.global[:len(src.global)]
	copy(m.global, src.global)
	if cap(m.shared) < len(src.shared) {
		m.shared = make([]uint32, len(src.shared))
	}
	m.shared = m.shared[:len(src.shared)]
	copy(m.shared, src.shared)
	m.prog = src.prog
	m.imem = src.imem
	m.grid, m.block = src.grid, src.block
	m.curBlock = src.curBlock
	m.nwarps = src.nwarps
	m.cycle = src.cycle
	m.maxCycles = src.maxCycles
	m.blockDone = src.blockDone
	m.err = nil
	m.fault = nil
	m.injected = false
	m.machineDone = false
}

// ---- tracer hooks -------------------------------------------------------

func (h *vlane) recordWrite(d vdelta) {
	if len(h.writes) >= vecMaxLaneWrites {
		h.noPark = true
		h.writes = nil
		return
	}
	h.writes = append(h.writes, d)
}

func (t *vecTracer) onFFRead(mod, fi int) {
	if t.hot != nil {
		return
	}
	f := t.ffFields[mod][fi]
	w0 := f.Offset >> 6
	w1 := (f.Offset + f.Width - 1) >> 6
	if t.rec != nil {
		var mask uint64 = ^uint64(0)
		if f.Width < 64 {
			mask = 1<<uint(f.Width) - 1
		}
		b := uint(f.Offset & 63)
		cyc := uint32(t.mark - 1)
		t.rec.recordFF(mod, w0, cyc, mask<<b)
		if w1 != w0 {
			t.rec.recordFF(mod, w1, cyc, uint64(1)<<(uint(f.Width)-(64-b))-1)
		}
	}
	if t.ffPlane[mod][w0] == 0 && (w1 == w0 || t.ffPlane[mod][w1] == 0) {
		return
	}
	t.ffRead(mod, f)
}

// ffRead is onFFRead's slow path. Word-granularity planes alias every
// field packed into the same 64-bit word, so a plane hit is refined to
// field precision before unparking: splice-updates keep a parked delta's
// val current, so the lane's word differs from the golden word exactly in
// delta.val ^ words[w], and only a read overlapping those bits diverges.
func (t *vecTracer) ffRead(mod int, f Field) {
	var mask uint64 = ^uint64(0)
	if f.Width < 64 {
		mask = 1<<uint(f.Width) - 1
	}
	w, b := f.Offset/64, uint(f.Offset%64)
	t.ffProbeWord(mod, w, mask<<b)
	if b+uint(f.Width) > 64 {
		hi := uint(f.Width) - (64 - b)
		t.ffProbeWord(mod, w+1, uint64(1)<<hi-1)
	}
}

func (t *vecTracer) ffProbeWord(mod, w int, bitMask uint64) {
	plane := t.ffPlane[mod][w]
	if plane == 0 {
		return
	}
	gw := t.states[mod].words[w]
	k := vkey{dFF, int32(mod), int32(w), 0}
	for p := plane; p != 0; p &= p - 1 {
		ln := t.lanes[bits.TrailingZeros64(p)-1]
		for i := range ln.deltas {
			if ln.deltas[i].key() == k {
				if (ln.deltas[i].val^gw)&bitMask != 0 {
					t.unpark(ln)
				}
				break
			}
		}
	}
}

// onFFWrite neither logs nor records flip-flop writes (see wlog and
// tryPark: ffSnap is the rewind image, the word diff the park compare).
// In golden mode it splice-updates parked word deltas: a still-parked
// lane's own (virtual) write stores the same v, so its word delta either
// converges to the post-write golden word (the delta dies) or narrows to
// the bits the write left alone. v is the raw value being written.
func (t *vecTracer) onFFWrite(mod, fi int, v uint64) {
	if t.hot != nil {
		return
	}
	f := t.ffFields[mod][fi]
	w0 := f.Offset >> 6
	w1 := (f.Offset + f.Width - 1) >> 6
	if t.rec != nil {
		var mask uint64 = ^uint64(0)
		if f.Width < 64 {
			mask = 1<<uint(f.Width) - 1
		}
		b := uint(f.Offset & 63)
		cyc := uint32(t.mark - 1)
		t.rec.touchFF(mod, w0, cyc, mask<<b)
		if w1 != w0 {
			t.rec.touchFF(mod, w1, cyc, uint64(1)<<(uint(f.Width)-(64-b))-1)
		}
	}
	if t.ffPlane[mod][w0] == 0 && (w1 == w0 || t.ffPlane[mod][w1] == 0) {
		return
	}
	t.ffWrite(mod, f, v)
}

// ffWrite is onFFWrite's slow path: mirror setRaw's word splicing onto
// every parked delta in the written word(s), with the post-write golden
// word as the kill threshold.
func (t *vecTracer) ffWrite(mod int, f Field, v uint64) {
	st := t.states[mod]
	var mask uint64 = ^uint64(0)
	if f.Width < 64 {
		mask = 1<<uint(f.Width) - 1
	}
	v &= mask
	w, b := f.Offset/64, uint(f.Offset%64)
	t.ffUpdateWord(mod, w, mask<<b, v<<b, st.words[w]&^(mask<<b)|v<<b)
	if b+uint(f.Width) > 64 {
		hi := uint(f.Width) - (64 - b)
		himask := uint64(1)<<hi - 1
		t.ffUpdateWord(mod, w+1, himask, v>>(64-b), st.words[w+1]&^himask|v>>(64-b))
	}
}

// ffUpdateWord applies one word's splice to every lane parked there. The
// start-of-cycle delta is stashed once per cycle before the first change:
// a lane that unparks later in the same cycle re-executes the cycle from
// its start, where the original delta still held.
func (t *vecTracer) ffUpdateWord(mod, w int, clearMask, orVal, postGold uint64) {
	plane := &t.ffPlane[mod][w]
	if *plane == 0 {
		return
	}
	k := vkey{dFF, int32(mod), int32(w), 0}
	for p := *plane; p != 0; p &= p - 1 {
		li := bits.TrailingZeros64(p)
		ln := t.lanes[li-1]
		di := -1
		for i := range ln.deltas {
			if ln.deltas[i].key() == k {
				di = i
				break
			}
		}
		if di < 0 {
			continue
		}
		already := false
		for i := range t.stash {
			if t.stash[i].ln == ln && t.stash[i].d.key() == k {
				already = true
				break
			}
		}
		if !already {
			t.stash = append(t.stash, stashed{ln, ln.deltas[di]})
		}
		nv := ln.deltas[di].val&^clearMask | orVal
		if nv == postGold {
			ln.deltas[di] = ln.deltas[len(ln.deltas)-1]
			ln.deltas = ln.deltas[:len(ln.deltas)-1]
			*plane &^= 1 << uint(li)
			if len(ln.deltas) == 0 {
				t.emptied = append(t.emptied, ln)
			}
		} else {
			ln.deltas[di].val = nv
		}
	}
}

func (t *vecTracer) onRegRead(w, r int) {
	if t.hot != nil {
		return
	}
	if t.rec != nil {
		t.rec.recordReg(w*isa.NumRegs+r, uint32(t.mark-1))
	}
	if p := t.regPlane[w][r]; p != 0 {
		t.trigger(p)
	}
}

func (t *vecTracer) onRegWrite(w, r, lane int, old uint32) {
	if h := t.hot; h != nil {
		if !h.noPark {
			h.recordWrite(vdelta{kind: dReg, a: int32(w), b: int32(r), c: int32(lane)})
		}
		return
	}
	if t.rec != nil {
		t.rec.regTouch[w*isa.NumRegs+r] = uint32(t.mark - 1)
	}
	t.wlog = append(t.wlog, vdelta{kind: dReg, a: int32(w), b: int32(r), c: int32(lane), val: uint64(old)})
	if t.regPlane[w][r] != 0 {
		t.killReg(w, r, lane)
	}
}

func (t *vecTracer) onPredRead(w int) {
	if t.hot != nil {
		return
	}
	if t.rec != nil {
		t.rec.predTouch[w] = uint32(t.mark - 1)
	}
	if p := t.predPlane[w]; p != 0 {
		t.trigger(p)
	}
}

// onPredWrite handles the predicate files' read-modify-write updates:
// parked lanes with a delta in the warp's predicate file unpark (their
// virtual RMW may store a different word), and the pre-write word feeds
// the undo log. No kill: the write never fully overwrites the word.
func (t *vecTracer) onPredWrite(w, idx int, old uint32) {
	if h := t.hot; h != nil {
		if !h.noPark {
			h.recordWrite(vdelta{kind: dPred, a: int32(w), b: int32(idx)})
		}
		return
	}
	if t.rec != nil {
		t.rec.predTouch[w] = uint32(t.mark - 1)
	}
	t.wlog = append(t.wlog, vdelta{kind: dPred, a: int32(w), b: int32(idx), val: uint64(old)})
	if p := t.predPlane[w]; p != 0 {
		t.trigger(p)
	}
}

func (t *vecTracer) onMaskRead(w int) {
	if t.hot != nil {
		return
	}
	if t.rec != nil {
		t.rec.maskTouch[w] = uint32(t.mark - 1)
	}
	if p := t.maskPlane[w]; p != 0 {
		t.trigger(p)
	}
}

// onMaskWrite logs the pre-write active mask. Every mask write site reads
// the mask earlier in the same cycle, so lanes with a mask delta have
// already unparked; the extra trigger is a conservative no-op.
func (t *vecTracer) onMaskWrite(w int, old uint32) {
	if h := t.hot; h != nil {
		if !h.noPark {
			h.recordWrite(vdelta{kind: dMask, a: int32(w)})
		}
		return
	}
	if t.rec != nil {
		t.rec.maskTouch[w] = uint32(t.mark - 1)
	}
	t.wlog = append(t.wlog, vdelta{kind: dMask, a: int32(w), val: uint64(old)})
	if p := t.maskPlane[w]; p != 0 {
		t.trigger(p)
	}
}

// onStackTouch handles every SIMT stack access — reads and mutations
// alike, since stack mutations are never whole-value overwrites. The
// first touch of a cycle logs the warp's whole pre-image for the undo
// log; any touch unparks lanes with a stack delta in the warp.
func (t *vecTracer) onStackTouch(w int) {
	if h := t.hot; h != nil {
		if !h.noPark {
			h.recordWrite(vdelta{kind: dStack, a: int32(w)})
		}
		return
	}
	if t.rec != nil {
		t.rec.stackTouch[w] = uint32(t.mark - 1)
	}
	if t.stackMark[w] != t.mark {
		t.stackMark[w] = t.mark
		t.wlog = append(t.wlog, vdelta{kind: dStack, a: int32(w),
			stack: append([]simtEntry(nil), t.eng.golden.stacks[w]...)})
	}
	if p := t.stackPlane[w]; p != 0 {
		t.trigger(p)
	}
}

func (t *vecTracer) onMemRead(shared bool, addr int) {
	if t.hot != nil {
		return
	}
	if t.rec != nil {
		t.rec.touchMem(shared, addr, uint32(t.mark-1))
	}
	plane := t.globalPlane
	if shared {
		plane = t.sharedPlane
	}
	if p := plane[addr]; p != 0 {
		t.trigger(p)
	}
}

func (t *vecTracer) onMemWrite(shared bool, addr int, old uint32) {
	k := dGlobal
	if shared {
		k = dShared
	}
	if h := t.hot; h != nil {
		if !h.noPark {
			h.recordWrite(vdelta{kind: k, a: int32(addr)})
		}
		return
	}
	if t.rec != nil {
		t.rec.touchMem(shared, addr, uint32(t.mark-1))
	}
	t.wlog = append(t.wlog, vdelta{kind: k, a: int32(addr), val: uint64(old)})
	plane := &t.globalPlane[addr]
	if shared {
		plane = &t.sharedPlane[addr]
	}
	if *plane != 0 {
		t.killAt(vkey{k, int32(addr), 0, 0}, plane)
	}
}

// ---- plane bookkeeping --------------------------------------------------

func (t *vecTracer) setPlane(d *vdelta, bit uint64) {
	switch d.kind {
	case dFF:
		t.ffPlane[d.a][d.b] |= bit
	case dReg:
		t.regPlane[d.a][d.b] |= bit
	case dPred:
		t.predPlane[d.a] |= bit
	case dMask:
		t.maskPlane[d.a] |= bit
	case dStack:
		t.stackPlane[d.a] |= bit
	case dGlobal:
		t.globalPlane[d.a] |= bit
	case dShared:
		t.sharedPlane[d.a] |= bit
	}
}

func (t *vecTracer) clearPlane(d *vdelta, bit uint64) {
	switch d.kind {
	case dFF:
		t.ffPlane[d.a][d.b] &^= bit
	case dReg:
		t.regPlane[d.a][d.b] &^= bit
	case dPred:
		t.predPlane[d.a] &^= bit
	case dMask:
		t.maskPlane[d.a] &^= bit
	case dStack:
		t.stackPlane[d.a] &^= bit
	case dGlobal:
		t.globalPlane[d.a] &^= bit
	case dShared:
		t.sharedPlane[d.a] &^= bit
	}
}

// trigger unparks every lane in a plane word: the golden run accessed a
// location where they differ, so their transitions diverge this cycle.
// The lanes are queued for materialisation at the end of the cycle.
func (t *vecTracer) trigger(p uint64) {
	for b := p; b != 0; b &= b - 1 {
		t.unpark(t.lanes[bits.TrailingZeros64(b)-1])
	}
}

func (t *vecTracer) unpark(ln *vlane) {
	// Thrash detection: most unparks land within a cycle or two of the
	// last park — the golden run is re-reading the lane's delta locations
	// in a burst, and every park/unpark round trip costs a materialise.
	// Escalate a hot-dwell penalty so a thrashing lane rides the burst out
	// on its machine; a long quiet gap resets it.
	if ln.lastPark != 0 {
		if t.eng.golden.cycle-ln.lastPark <= 6 {
			if ln.thrash < 8 {
				ln.thrash++
			}
		} else if t.eng.golden.cycle-ln.lastPark > 16 {
			ln.thrash = 0
		}
	}
	for i := range ln.deltas {
		t.clearPlane(&ln.deltas[i], ln.bit)
	}
	// Deltas killed or splice-updated earlier this cycle come back: the
	// lane re-executes the whole cycle from its start, where they still
	// held. An updated delta is still in the list and must be replaced.
	for i := 0; i < len(t.stash); i++ {
		if t.stash[i].ln == ln {
			d := t.stash[i].d
			k := d.key()
			for j := range ln.deltas {
				if ln.deltas[j].key() == k {
					ln.deltas[j] = ln.deltas[len(ln.deltas)-1]
					ln.deltas = ln.deltas[:len(ln.deltas)-1]
					break
				}
			}
			ln.deltas = append(ln.deltas, d)
			t.stash[i] = t.stash[len(t.stash)-1]
			t.stash = t.stash[:len(t.stash)-1]
			i--
		}
	}
	t.parked &^= ln.bit
	t.wake = append(t.wake, ln)
}

// killAt removes the delta at an exactly-matching location (flip-flop
// field or memory word: plane slot == delta location) from every lane in
// the plane word: the golden overwrite makes the still-parked lanes'
// virtual writes store the same value, so the difference dies.
func (t *vecTracer) killAt(k vkey, plane *uint64) {
	for b := *plane; b != 0; b &= b - 1 {
		ln := t.lanes[bits.TrailingZeros64(b)-1]
		for i := range ln.deltas {
			if ln.deltas[i].key() == k {
				t.stash = append(t.stash, stashed{ln, ln.deltas[i]})
				ln.deltas[i] = ln.deltas[len(ln.deltas)-1]
				ln.deltas = ln.deltas[:len(ln.deltas)-1]
				if len(ln.deltas) == 0 {
					t.emptied = append(t.emptied, ln)
				}
				break
			}
		}
	}
	*plane = 0
}

// killReg is killAt for register writes, whose plane is per register row
// while deltas are per lane word: a lane's plane bit survives the kill
// when it still holds another delta in the same row.
func (t *vecTracer) killReg(w, r, lane int) {
	plane := &t.regPlane[w][r]
	for b := *plane; b != 0; b &= b - 1 {
		li := bits.TrailingZeros64(b)
		ln := t.lanes[li-1]
		found, more := -1, false
		for i := range ln.deltas {
			d := &ln.deltas[i]
			if d.kind == dReg && int(d.a) == w && int(d.b) == r {
				if int(d.c) == lane {
					found = i
				} else {
					more = true
				}
			}
		}
		if found < 0 {
			continue
		}
		t.stash = append(t.stash, stashed{ln, ln.deltas[found]})
		ln.deltas[found] = ln.deltas[len(ln.deltas)-1]
		ln.deltas = ln.deltas[:len(ln.deltas)-1]
		if !more {
			*plane &^= 1 << uint(li)
		}
		if len(ln.deltas) == 0 {
			t.emptied = append(t.emptied, ln)
		}
	}
}

// ---- the march engine ---------------------------------------------------

// VecOutcome is one lane's raw faulty-run outcome, the bit-parallel
// equivalent of the scalar engine's final machine state.
// revent is one recorded golden read of a flip-flop state word: the
// cycle it happened and the union of field bits read that cycle.
type revent struct {
	cyc  uint32
	mask uint64
}

// MarchSched is a per-input-draw recording of the golden run's read
// schedule. The first march of a draw records it; later marches of the
// same draw — whose golden runs are cycle-identical, since the engine
// is deterministic — consult it to decide whether parking a hot lane is
// worth the round trip (see tryPark). Passing the same MarchSched to
// marches of *different* draws would only degrade the heuristic, never
// correctness: the schedule gates performance decisions, not state.
type MarchSched struct {
	recorded bool
	ff       [6][][]revent // [module][state word] ascending read events
	reg      [][]uint32    // [warp*NumRegs+reg] ascending read cycles

	// Last-touch tables: the last cycle the golden run reads OR writes
	// each location, at bit precision for flip-flops and at the
	// divergence planes' granularity for everything else. Zero means
	// untouched after the recording march's start cycle. Unlike the read
	// schedule above, these gate correctness, not just performance: a
	// parked delta whose locations are past their last touch provably
	// survives, unread, to the end of the golden run, so its lane's
	// outcome is already decided (see VecEngine retirement in tryPark).
	ffTouch     [6][]uint32 // [module][state word * 64 + bit]
	regTouch    []uint32    // [warp*NumRegs+reg]
	predTouch   []uint32    // [warp]
	maskTouch   []uint32    // [warp]
	stackTouch  []uint32    // [warp]
	globalTouch []uint32    // [word address]
	sharedTouch []uint32    // [word address]
}

// NewMarchSched returns an empty schedule; the first March it is passed
// to records into it.
func NewMarchSched() *MarchSched { return &MarchSched{} }

func (sc *MarchSched) reset() {
	sc.recorded = false
	for i := range sc.ff {
		for w := range sc.ff[i] {
			sc.ff[i][w] = sc.ff[i][w][:0]
		}
	}
	for r := range sc.reg {
		sc.reg[r] = sc.reg[r][:0]
	}
	for i := range sc.ffTouch {
		clearU32(sc.ffTouch[i])
	}
	clearU32(sc.regTouch)
	clearU32(sc.predTouch)
	clearU32(sc.maskTouch)
	clearU32(sc.stackTouch)
	clearU32(sc.globalTouch)
	clearU32(sc.sharedTouch)
}

func clearU32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

func (sc *MarchSched) recordFF(mod, w int, cyc uint32, mask uint64) {
	sc.touchFF(mod, w, cyc, mask)
	evs := sc.ff[mod][w]
	if n := len(evs); n > 0 && evs[n-1].cyc == cyc {
		evs[n-1].mask |= mask
		return
	}
	sc.ff[mod][w] = append(evs, revent{cyc, mask})
}

func (sc *MarchSched) recordReg(row int, cyc uint32) {
	sc.regTouch[row] = cyc
	evs := sc.reg[row]
	if n := len(evs); n > 0 && evs[n-1] == cyc {
		return
	}
	sc.reg[row] = append(evs, cyc)
}

// touchFF stamps the given bits of a flip-flop state word as touched at
// cyc. Touches arrive in cycle order, so each slot ends up holding the
// bit's last touch.
func (sc *MarchSched) touchFF(mod, w int, cyc uint32, mask uint64) {
	tt := sc.ffTouch[mod]
	base := w * 64
	for m := mask; m != 0; m &= m - 1 {
		tt[base+bits.TrailingZeros64(m)] = cyc
	}
}

// touchMem stamps one global or shared memory word as touched at cyc.
func (sc *MarchSched) touchMem(shared bool, addr int, cyc uint32) {
	if shared {
		sc.sharedTouch[addr] = cyc
	} else {
		sc.globalTouch[addr] = cyc
	}
}

// untouchedAfter reports whether the golden run provably never touches
// the delta's differing locations in any cycle > after. diff is the set
// of differing bits for flip-flop deltas and ignored otherwise; non-FF
// kinds are judged at their divergence plane's granularity, which only
// errs conservative.
func (sc *MarchSched) untouchedAfter(d *vdelta, diff uint64, after uint32) bool {
	switch d.kind {
	case dFF:
		tt := sc.ffTouch[d.a]
		base := int(d.b) * 64
		for m := diff; m != 0; m &= m - 1 {
			if tt[base+bits.TrailingZeros64(m)] > after {
				return false
			}
		}
		return true
	case dReg:
		return sc.regTouch[int(d.a)*isa.NumRegs+int(d.b)] <= after
	case dPred:
		return sc.predTouch[d.a] <= after
	case dMask:
		return sc.maskTouch[d.a] <= after
	case dStack:
		return sc.stackTouch[d.a] <= after
	case dGlobal:
		return sc.globalTouch[d.a] <= after
	case dShared:
		return sc.sharedTouch[d.a] <= after
	}
	return false
}

// ffReadSoon reports whether the golden run reads any of the diff bits
// of the given flip-flop word in cycles (after, after+vecParkHorizon].
func (sc *MarchSched) ffReadSoon(mod, w int, after uint32, diff uint64) bool {
	evs := sc.ff[mod][w]
	i, j := 0, len(evs)
	for i < j {
		h := int(uint(i+j) >> 1)
		if evs[h].cyc <= after {
			i = h + 1
		} else {
			j = h
		}
	}
	for ; i < len(evs) && evs[i].cyc <= after+vecParkHorizon; i++ {
		if evs[i].mask&diff != 0 {
			return true
		}
	}
	return false
}

// regReadSoon reports whether the golden run reads the register row in
// cycles (after, after+vecParkHorizon].
func (sc *MarchSched) regReadSoon(row int, after uint32) bool {
	evs := sc.reg[row]
	i, j := 0, len(evs)
	for i < j {
		h := int(uint(i+j) >> 1)
		if evs[h] <= after {
			i = h + 1
		} else {
			j = h
		}
	}
	return i < len(evs) && evs[i] <= after+vecParkHorizon
}

type VecOutcome struct {
	// Global is the final global-memory image; nil when GoldenGlobal is
	// set (the run is bit-identical to the golden run's image) or on DUE.
	Global       []uint32
	GoldenGlobal bool
	Err          error  // the run's DUE error, if any
	Sim          uint64 // cycles actually stepped on a lane machine
	End          uint64 // trajectory end cycle: what the scalar run's Cycles() reports
}

// pooledM is a lane machine awaiting reuse. A machine released by a
// successful park is exactly golden ⊕ deltas as of wlogAt, so within the
// same march (seq) a re-acquire only needs to resync the delta locations
// plus whatever golden wrote since — a tiny fraction of a full CopyFrom.
// wlogAt < 0 marks a machine with untracked divergence (full copy only).
type pooledM struct {
	m      *Machine
	seq    uint64
	wlogAt int
	deltas []vdelta
}

// VecEngine runs bit-parallel marches, reusing its golden machine, lane
// machine pool and tracer buffers across marches. It is single-threaded:
// one engine per campaign worker.
type VecEngine struct {
	golden *Machine
	t      *vecTracer
	pool   []pooledM
	dfree  [][]vdelta // spare pooledM delta buffers
	seq    uint64     // current march sequence number
	hot    []*vlane

	lanes    []vlane
	injOrder []int

	// Early-retirement context for the current march (see MarchOpts):
	// earlyEnd is the draw's golden cycle count (0 disables retirement),
	// finalGlobal its final global-memory image.
	earlyEnd    uint64
	finalGlobal []uint32
}

// NewVecEngine constructs an engine with its golden machine and
// divergence planes instantiated.
func NewVecEngine() *VecEngine {
	e := &VecEngine{golden: New()}
	t := &vecTracer{eng: e}
	for i, st := range vecStates(e.golden) {
		t.states[i] = st
		t.ffFields[i] = st.Lay.Fields
		t.ffPlane[i] = make([]uint64, len(st.words))
		t.ffSnap[i] = make([]uint64, len(st.words))
	}
	e.t = t
	return e
}

// machinePool recycles lane machines across engines: a Machine is a
// quarter-megabyte of register file, so constructing one per concurrent
// hot lane per campaign is a measurable share of a dense campaign's
// wall-clock. Pooled machines carry no campaign state — every acquire
// overwrites them from the golden machine before use.
var machinePool = sync.Pool{New: func() any { return New() }}

// acquire hands out a pool machine (or a fresh one), synced to the golden
// machine's current state: incrementally when the pooled metadata allows,
// by full CopyFrom otherwise.
func (e *VecEngine) acquire() *Machine {
	t := e.t
	if n := len(e.pool); n > 0 {
		p := e.pool[n-1]
		e.pool = e.pool[:n-1]
		if p.deltas != nil {
			e.dfree = append(e.dfree, p.deltas[:0])
		}
		m := p.m
		if p.wlogAt >= 0 && p.seq == e.seq && len(t.wlog)-p.wlogAt <= vecMaxResync {
			e.resync(m, p)
		} else {
			m.CopyFrom(e.golden)
		}
		m.TraceVec(t)
		return m
	}
	m := machinePool.Get().(*Machine)
	m.CopyFrom(e.golden)
	m.TraceVec(t)
	return m
}

// Close returns the engine's pooled lane machines to the shared pool.
// The engine must not be used again after Close.
func (e *VecEngine) Close() {
	for _, p := range e.pool {
		p.m.TraceVec(nil)
		machinePool.Put(p.m)
	}
	e.pool = nil
}

// resync is the incremental CopyFrom: undo the released lane's parked
// deltas and replay golden's writes since the release by setting each
// location to its current golden value. Flip-flop words are skipped —
// materialize overwrites all module words from ffSnap regardless.
func (e *VecEngine) resync(m *Machine, p pooledM) {
	g, t := e.golden, e.t
	apply := func(d *vdelta) {
		switch d.kind {
		case dReg:
			m.regs[d.a][d.b][d.c] = g.regs[d.a][d.b][d.c]
		case dPred:
			m.preds[d.a][d.b] = g.preds[d.a][d.b]
		case dMask:
			m.warpMask[d.a] = g.warpMask[d.a]
		case dStack:
			m.stacks[d.a] = append(m.stacks[d.a][:0], g.stacks[d.a]...)
		case dGlobal:
			m.global[d.a] = g.global[d.a]
		case dShared:
			m.shared[d.a] = g.shared[d.a]
		}
	}
	for i := range p.deltas {
		apply(&p.deltas[i])
	}
	for i := p.wlogAt; i < len(t.wlog); i++ {
		apply(&t.wlog[i])
	}
	m.hiDirty = g.hiDirty
	m.cycle = g.cycle
	m.err = nil
	m.fault = nil
	m.injected = false
	m.machineDone = false
}

// release returns a machine whose divergence from golden is untracked;
// the next acquire must CopyFrom.
func (e *VecEngine) release(m *Machine) {
	m.TraceVec(nil)
	e.pool = append(e.pool, pooledM{m: m, wlogAt: -1})
}

// releaseParked returns a machine that just parked as golden ⊕ deltas,
// recording what the next acquire needs for an incremental resync.
func (e *VecEngine) releaseParked(m *Machine, deltas []vdelta) {
	m.TraceVec(nil)
	var buf []vdelta
	if n := len(e.dfree); n > 0 {
		buf, e.dfree = e.dfree[n-1], e.dfree[:n-1]
	}
	e.pool = append(e.pool, pooledM{
		m:      m,
		seq:    e.seq,
		wlogAt: len(e.t.wlog),
		deltas: append(buf, deltas...),
	})
}

// MarchOpts carries optional cross-march context for one input draw.
// Every field must describe the same draw as the faults passed to March:
// the schedule and the golden-run facts are consulted as ground truth
// about the march's own golden replay.
type MarchOpts struct {
	// Sched is the draw's golden read/touch schedule: nil disables the
	// cross-march heuristics, an unrecorded schedule is recorded by this
	// march, a recorded one is consulted (see MarchSched).
	Sched *MarchSched
	// Start, when non-nil, is a golden checkpoint captured at or before
	// every fault cycle in the march; the golden replay fast-forwards to
	// it instead of re-stepping the prefix from cycle 0.
	Start *Snapshot
	// GoldenCycles and FinalGlobal describe the draw's completed golden
	// run: its cycle count and final global-memory image. When both are
	// set and Sched is recorded, a lane whose parked deltas the golden
	// run provably never touches again retires immediately with its
	// final outcome, and the march ends as soon as every lane is
	// resolved instead of replaying the golden tail.
	GoldenCycles uint64
	FinalGlobal  []uint32
}

// March simulates one group of same-draw transient faults bit-parallel:
// one golden run of prog (grid 1, as every campaign golden runs) with
// each fault as a lane. The returned outcomes are index-aligned with fs
// and bit-identical to what scalar runs of the same faults produce.
func (e *VecEngine) March(prog *kasm.Program, block int, global []uint32, sharedWords int, fs []Fault, budget uint64, opts *MarchOpts) ([]VecOutcome, error) {
	if len(fs) == 0 {
		return nil, nil
	}
	if len(fs) > VecMaxLanes {
		return nil, fmt.Errorf("rtl: march of %d faults exceeds %d lanes", len(fs), VecMaxLanes)
	}
	var sched *MarchSched
	if opts != nil {
		sched = opts.Sched
	}
	g := e.golden
	g.TraceVec(nil)
	gmem := append([]uint32(nil), global...)
	if err := g.launch(prog, 1, block, gmem, sharedWords, budget); err != nil {
		return nil, err
	}
	if opts != nil && opts.Start != nil {
		// Fast-forward the golden replay to the checkpoint; Restore
		// reinstates the snapshot's own cycle budget, so the march's is
		// put back.
		g.Restore(opts.Start)
		g.maxCycles = budget
	}
	e.resetMarch(len(fs), len(gmem), sharedWords)
	t := e.t
	t.cycleBase = g.cycle
	e.earlyEnd, e.finalGlobal = 0, nil
	if opts != nil && opts.GoldenCycles > 0 && opts.FinalGlobal != nil {
		e.earlyEnd, e.finalGlobal = opts.GoldenCycles, opts.FinalGlobal
	}
	t.rec, t.sched = nil, nil
	if sched != nil {
		if sched.recorded {
			t.sched = sched
		} else {
			if sched.ff[0] == nil {
				for i, st := range t.states {
					sched.ff[i] = make([][]revent, len(st.words))
					sched.ffTouch[i] = make([]uint32, len(st.words)*64)
				}
				sched.reg = make([][]uint32, MaxWarps*isa.NumRegs)
				sched.regTouch = make([]uint32, MaxWarps*isa.NumRegs)
				sched.predTouch = make([]uint32, MaxWarps)
				sched.maskTouch = make([]uint32, MaxWarps)
				sched.stackTouch = make([]uint32, MaxWarps)
				sched.globalTouch = make([]uint32, len(gmem))
				sched.sharedTouch = make([]uint32, sharedWords)
			}
			t.rec = sched
		}
	}
	for i := range fs {
		ln := &e.lanes[i]
		// Reset the lane but keep its slices' capacity across marches.
		deltas, spare, writes := ln.deltas[:0], ln.spare[:0], ln.writes[:0]
		*ln = vlane{bit: 1 << uint(i+1), idx: i, deltas: deltas, spare: spare, writes: writes}
		t.lanes = append(t.lanes, ln)
	}
	// Injection order: ascending fault cycle, stable in the input order.
	inj := e.injOrder[:0]
	for i := range fs {
		inj = append(inj, i)
	}
	sort.SliceStable(inj, func(a, b int) bool { return fs[inj[a]].Cycle < fs[inj[b]].Cycle })
	e.injOrder = inj

	g.TraceVec(t)
	gsts := vecStates(g)
	next := 0
	earlyExit := false
	for !g.blockDone && g.err == nil {
		if e.earlyEnd != 0 && t.rec == nil && next == len(inj) && len(e.hot) == 0 {
			if t.parked != 0 {
				e.sweepParked(gsts)
			}
			if t.parked == 0 {
				// Every lane has been resolved (killed, reconverged,
				// finished hot, or retired): the golden tail cannot affect
				// any outcome, so the march is over. Recording marches are
				// excluded — they must observe the full tail for the
				// schedule to be complete.
				earlyExit = true
				break
			}
		}
		if g.cycle >= g.maxCycles {
			g.err = ErrWatchdog
			break
		}
		c := g.cycle
		t.mark = c + 1
		t.cycleOff = append(t.cycleOff, len(t.wlog))
		// The start-of-cycle flip-flop image: materialisations rewind FF
		// state from this copy instead of a per-write undo log.
		for i, st := range gsts {
			copy(t.ffSnap[i], st.words)
		}
		// Faults land at the start of their cycle, exactly where the
		// scalar engine's FlipBit does: the lane starts parked with a
		// single flipped-field delta.
		for next < len(inj) && fs[inj[next]].Cycle == c {
			e.injectLane(t.lanes[inj[next]], fs[inj[next]])
			next++
		}
		t.hot = nil
		g.stepCycle()
		e.endCycle(c)
	}
	g.TraceVec(nil)
	if g.err != nil || next < len(inj) {
		// The golden run failed or ended before every fault cycle — the
		// campaign's prepared draws make both impossible, so give up on
		// the march and let the caller fall back to the scalar engine.
		// A partial recording is discarded with it.
		if t.rec != nil {
			t.rec.reset()
		}
		t.rec, t.sched = nil, nil
		e.abortMarch()
		if g.err != nil {
			return nil, fmt.Errorf("rtl: march golden run failed: %w", g.err)
		}
		return nil, fmt.Errorf("rtl: march golden run ended before every injection cycle")
	}
	if t.rec != nil {
		t.rec.recorded = true
	}
	t.rec, t.sched = nil, nil
	G := g.cycle
	if earlyExit {
		G = e.earlyEnd
	}
	e.finishMarch(G)
	outs := make([]VecOutcome, len(fs))
	for _, ln := range t.lanes {
		outs[ln.idx] = ln.out
	}
	return outs, nil
}

func (e *VecEngine) resetMarch(n, globalWords, sharedWords int) {
	t := e.t
	e.seq++
	t.parked = 0
	t.hot = nil
	t.lanes = t.lanes[:0]
	t.wlog = t.wlog[:0]
	t.cycleOff = t.cycleOff[:0]
	t.mark = 0
	t.stackMark = [MaxWarps]uint64{}
	t.wake = t.wake[:0]
	t.stash = t.stash[:0]
	t.emptied = t.emptied[:0]
	// Planes are all-zero between marches (every delta's bit is cleared
	// when its lane unparks, dies or finalises); only the memory planes'
	// geometry may change across draws. Newly exposed capacity is zero
	// for the same reason.
	if cap(t.globalPlane) < globalWords {
		t.globalPlane = make([]uint64, globalWords)
	}
	t.globalPlane = t.globalPlane[:globalWords]
	if cap(t.sharedPlane) < sharedWords {
		t.sharedPlane = make([]uint64, sharedWords)
	}
	t.sharedPlane = t.sharedPlane[:sharedWords]
	if cap(e.lanes) < n {
		e.lanes = make([]vlane, n)
	}
	e.lanes = e.lanes[:n]
	e.hot = e.hot[:0]
}

// injectLane creates a lane's initial divergence: the golden state word
// with the fault bit flipped, parked at the start of the fault cycle.
func (e *VecEngine) injectLane(ln *vlane, f Fault) {
	t := e.t
	mi := moduleIndex(f.Module)
	st := t.states[mi]
	wi := f.Bit / 64
	val := st.words[wi] ^ 1<<uint(f.Bit%64)
	ln.deltas = append(ln.deltas[:0], vdelta{kind: dFF, a: int32(mi), b: int32(wi), val: val})
	t.ffPlane[mi][wi] |= ln.bit
	t.parked |= ln.bit
}

// endCycle completes golden cycle c for every lane: hot lanes step the
// same cycle in lockstep, lanes the golden run's reads diverged this
// cycle materialise and step it too, kill-emptied lanes finalise as
// reconverged, and hot lanes due for a park attempt diff against golden.
func (e *VecEngine) endCycle(c uint64) {
	g, t := e.golden, e.t

	keep := e.hot[:0]
	for _, ln := range e.hot {
		lm := ln.m
		t.hot = ln
		lm.stepCycle()
		t.hot = nil
		ln.sim++
		if e.finishedHot(ln) {
			continue
		}
		keep = append(keep, ln)
	}
	e.hot = keep

	for _, ln := range t.wake {
		e.materialize(ln, c)
		if e.finishedHot(ln) {
			continue
		}
		if t.sched != nil {
			// With a read schedule, rejected attempts are cheap: retry
			// immediately and let the read-ahead heuristic judge. Hot
			// cycles are the march's dominant cost, so the lane should
			// spend the minimum number of them.
			ln.nextTry = c + 1
			ln.rejKind = 0
		} else {
			ln.nextTry = c + 3 + uint64(1)<<ln.thrash - 1
		}
		ln.tryGap = 1
		e.hot = append(e.hot, ln)
	}
	t.wake = t.wake[:0]

	// A parked lane whose last delta was overwritten is bit-identical to
	// the golden machine from here on: classification Masked, zero
	// further cost. (A lane that unparked after being emptied got its
	// stashed deltas back and is excluded by the parked check.)
	for _, ln := range t.emptied {
		if !ln.done && ln.m == nil && t.parked&ln.bit != 0 && len(ln.deltas) == 0 {
			t.parked &^= ln.bit
			ln.done = true
			ln.goldenDone = true
		}
	}
	t.emptied = t.emptied[:0]
	t.stash = t.stash[:0]

	// No new parks once the golden run is over: parking is sound only
	// while golden has future cycles whose reads test the lane's deltas.
	// The block-done decision was already made when this (final) endCycle
	// runs, so a lane parked here would never have its divergence probed
	// again — finishMarch would declare it golden-equivalent even when its
	// deltas keep the faulty machine running past the golden end (e.g. a
	// corrupted PC whose warp golden already retired). Lanes still hot
	// here run to completion on their own machines instead.
	if len(e.hot) > 0 && !g.blockDone && g.err == nil {
		keep = e.hot[:0]
		for _, ln := range e.hot {
			if g.cycle >= ln.nextTry {
				if e.tryPark(ln) {
					continue
				}
				ln.tryGap *= 2
				if t.sched != nil && ln.tryGap > 4 {
					// Schedule rejections are informed: the divergence is
					// about to be re-read. Re-judge at a short cadence so
					// the lane parks soon after its window opens.
					ln.tryGap = 4
				}
				ln.nextTry = g.cycle + ln.tryGap
			}
			keep = append(keep, ln)
		}
		e.hot = keep
	}
}

// finishedHot finalises a hot lane that erred (DUE) or completed its
// block early; it reports whether the lane is done.
func (e *VecEngine) finishedHot(ln *vlane) bool {
	lm := ln.m
	if lm.err != nil {
		ln.out = VecOutcome{Err: lm.err, Sim: ln.sim, End: lm.cycle}
	} else if lm.blockDone {
		ln.out = VecOutcome{Global: append([]uint32(nil), lm.global...), Sim: ln.sim, End: lm.cycle}
	} else {
		return false
	}
	ln.done = true
	e.release(lm)
	ln.m = nil
	return true
}

// materialize turns a parked lane hot at the end of golden cycle c: copy
// the golden end-of-cycle state, rewind it to the cycle start (flip-flop
// words from the start-of-cycle snapshot, everything else through the
// undo log), apply the lane's deltas, and step the lane through the
// cycle it diverged in.
func (e *VecEngine) materialize(ln *vlane, c uint64) {
	t := e.t
	m := e.acquire()
	for i, st := range vecStates(m) {
		copy(st.words, t.ffSnap[i])
	}
	for i := len(t.wlog) - 1; i >= t.cycleOff[c-t.cycleBase]; i-- {
		en := &t.wlog[i]
		switch en.kind {
		case dReg:
			m.regs[en.a][en.b][en.c] = uint32(en.val)
		case dPred:
			m.preds[en.a][en.b] = uint32(en.val)
		case dMask:
			m.warpMask[en.a] = uint32(en.val)
		case dStack:
			m.stacks[en.a] = append(m.stacks[en.a][:0], en.stack...)
		case dGlobal:
			m.global[en.a] = uint32(en.val)
		case dShared:
			m.shared[en.a] = uint32(en.val)
		}
	}
	m.cycle = c
	m.blockDone = false
	for i := range ln.deltas {
		d := &ln.deltas[i]
		switch d.kind {
		case dFF:
			vecStates(m)[d.a].words[d.b] = d.val
		case dReg:
			m.markWarp(int(d.a))
			m.regs[d.a][d.b][d.c] = uint32(d.val)
		case dPred:
			m.markWarp(int(d.a))
			m.preds[d.a][d.b] = uint32(d.val)
		case dMask:
			m.markWarp(int(d.a))
			m.warpMask[d.a] = uint32(d.val)
		case dStack:
			m.markWarp(int(d.a))
			m.stacks[d.a] = append(m.stacks[d.a][:0], d.stack...)
		case dGlobal:
			m.global[d.a] = uint32(d.val)
		case dShared:
			m.shared[d.a] = uint32(d.val)
		}
	}
	ln.base = ln.deltas
	ln.deltas = nil
	ln.writes = ln.writes[:0]
	ln.spanFrom = t.cycleOff[c-t.cycleBase]
	ln.m = m
	t.hot = ln
	m.stepCycle()
	t.hot = nil
	ln.sim++
}

// sweepParked retires every parked lane whose deltas the golden run
// provably never touches again (see tryPark's retirement for the
// argument). It runs only in the march endgame — all injections placed,
// no hot lanes — where a successful sweep ends the march. A parked
// lane's deltas are kept golden-relative by the kill machinery, so the
// same quiescence test applies.
func (e *VecEngine) sweepParked(gsts [6]*State) {
	g, t := e.golden, e.t
	sc := t.sched
	if sc == nil || sc.ffTouch[0] == nil {
		return
	}
	after := uint32(g.cycle) - 1
	for _, ln := range t.lanes {
		if ln.done || ln.m != nil || t.parked&ln.bit == 0 {
			continue
		}
		if !e.quietFrom(ln.deltas, gsts, after, sc) {
			continue
		}
		var img []uint32
		for i := range ln.deltas {
			d := &ln.deltas[i]
			t.clearPlane(d, ln.bit)
			if d.kind == dGlobal {
				if img == nil {
					img = append([]uint32(nil), e.finalGlobal...)
				}
				img[d.a] = uint32(d.val)
			}
		}
		t.parked &^= ln.bit
		ln.deltas = ln.deltas[:0]
		ln.out = VecOutcome{Global: img, GoldenGlobal: img == nil, Sim: ln.sim, End: e.earlyEnd}
		ln.done = true
	}
}

// quietFrom reports whether every delta's differing locations are past
// their last golden touch (see MarchSched.untouchedAfter).
func (e *VecEngine) quietFrom(deltas []vdelta, gsts [6]*State, after uint32, sc *MarchSched) bool {
	for i := range deltas {
		d := &deltas[i]
		var diff uint64
		if d.kind == dFF {
			diff = d.val ^ gsts[d.a].words[d.b]
		}
		if !sc.untouchedAfter(d, diff, after) {
			return false
		}
	}
	return true
}

// tryPark diffs a hot lane against the golden machine: flip-flop state
// word-by-word across the six module layouts (a bounded, exhaustive
// compare — no FF write tracking needed), everything else over the
// locations either machine touched since the divergence (the lane's
// divergence deltas, its own write log, and the march write log's span).
// A small difference set parks the lane as deltas again (an empty one
// finalises it as reconverged); a large one keeps it hot. Candidate
// locations repeat across cycles, so deltas dedup by linear scan of the
// (≤ vecParkMax) delta list — far cheaper than hashing the candidates.
func (e *VecEngine) tryPark(ln *vlane) bool {
	t := e.t
	if ln.noPark {
		return false
	}
	if len(t.wlog)-ln.spanFrom > vecMaxCand {
		return false
	}
	g, m := e.golden, ln.m
	sc := t.sched
	after := uint32(g.cycle) - 1
	gsts, msts := vecStates(g), vecStates(m)
	// Fast path: if the location that blocked the last attempt still
	// differs and is still about to be re-read, the attempt fails for the
	// same reason at the cost of one compare and one schedule query.
	if sc != nil {
		switch ln.rejKind {
		case 1:
			if diff := gsts[ln.rejMod].words[ln.rejWord] ^ msts[ln.rejMod].words[ln.rejWord]; diff != 0 &&
				sc.ffReadSoon(ln.rejMod, ln.rejWord, after, diff) {
				return false
			}
		case 2:
			a, b := ln.rejRow/isa.NumRegs, ln.rejRow%isa.NumRegs
			if m.regs[a][b] != g.regs[a][b] && sc.regReadSoon(ln.rejRow, after) {
				return false
			}
		}
		ln.rejKind = 0
	}
	deltas := ln.spare[:0]
	full := false
	// The word diff visits each flip-flop word once, so its entries need
	// no deduplication and non-FF candidates can never collide with them.
	// Modules are visited pipeline-first: Pipe, SFU and Sched hold the
	// every-few-cycles re-read state, so a schedule rejection exits after
	// as few words as possible.
	for _, mi := range [6]int{5, 2, 3, 4, 0, 1} {
		if full {
			break
		}
		gw, mw := gsts[mi].words, msts[mi].words
		for wi := range gw {
			if diff := gw[wi] ^ mw[wi]; diff != 0 {
				if sc != nil && sc.ffReadSoon(mi, wi, after, diff) {
					// The golden run reads one of the differing bits within
					// the park horizon; parked, the lane would unpark again
					// almost immediately, so the round trip costs more than
					// the hot steps it would save. Stay hot.
					ln.rejKind, ln.rejMod, ln.rejWord = 1, mi, wi
					ln.spare = deltas[:0]
					return false
				}
				if len(deltas) >= vecParkMax {
					full = true
					break
				}
				deltas = append(deltas, vdelta{kind: dFF, a: int32(mi), b: int32(wi), val: mw[wi]})
			}
		}
	}
	ffCount := len(deltas)
	add := func(d vdelta) {
		k := d.key()
		for i := ffCount; i < len(deltas); i++ {
			if deltas[i].key() == k {
				return
			}
		}
		if len(deltas) >= vecParkMax {
			full = true
			return
		}
		deltas = append(deltas, d)
	}
	hotReject := false
	check := func(cd *vdelta) {
		switch cd.kind {
		case dFF:
			// Covered exhaustively by the module word diff above.
		case dReg:
			if lv := m.regs[cd.a][cd.b][cd.c]; lv != g.regs[cd.a][cd.b][cd.c] {
				if sc != nil && sc.regReadSoon(int(cd.a)*isa.NumRegs+int(cd.b), after) {
					ln.rejKind, ln.rejRow = 2, int(cd.a)*isa.NumRegs+int(cd.b)
					hotReject = true
					full = true
					return
				}
				add(vdelta{kind: dReg, a: cd.a, b: cd.b, c: cd.c, val: uint64(lv)})
			}
		case dPred:
			if lv := m.preds[cd.a][cd.b]; lv != g.preds[cd.a][cd.b] {
				add(vdelta{kind: dPred, a: cd.a, b: cd.b, val: uint64(lv)})
			}
		case dMask:
			if lv := m.warpMask[cd.a]; lv != g.warpMask[cd.a] {
				add(vdelta{kind: dMask, a: cd.a, val: uint64(lv)})
			}
		case dStack:
			if !stackEqual(m.stacks[cd.a], g.stacks[cd.a]) {
				add(vdelta{kind: dStack, a: cd.a,
					stack: append([]simtEntry(nil), m.stacks[cd.a]...)})
			}
		case dGlobal:
			if lv := m.global[cd.a]; lv != g.global[cd.a] {
				add(vdelta{kind: dGlobal, a: cd.a, val: uint64(lv)})
			}
		case dShared:
			if lv := m.shared[cd.a]; lv != g.shared[cd.a] {
				add(vdelta{kind: dShared, a: cd.a, val: uint64(lv)})
			}
		}
	}
	for i := 0; i < len(ln.base) && !full; i++ {
		check(&ln.base[i])
	}
	for i := 0; i < len(ln.writes) && !full; i++ {
		check(&ln.writes[i])
	}
	for i := ln.spanFrom; i < len(t.wlog) && !full; i++ {
		check(&t.wlog[i])
	}
	if hotReject {
		ln.spare = deltas[:0]
		return false
	}
	if full {
		ln.spare = deltas[:0]
		return false
	}
	if len(deltas) > 0 && e.earlyEnd != 0 && sc != nil && sc.ffTouch[0] != nil &&
		e.quietFrom(deltas, gsts, after, sc) {
		// Retirement: the golden run provably never reads or writes any
		// of the differing locations again, so the deltas survive to the
		// end of the run — unread, hence Masked state except for global
		// words — and the lane's outcome is already decided. Finalise it
		// against the draw's known final image without parking.
		var img []uint32
		for i := range deltas {
			d := &deltas[i]
			if d.kind == dGlobal {
				if img == nil {
					img = append([]uint32(nil), e.finalGlobal...)
				}
				img[d.a] = uint32(d.val)
			}
		}
		ln.out = VecOutcome{Global: img, GoldenGlobal: img == nil, Sim: ln.sim, End: e.earlyEnd}
		ln.done = true
		ln.deltas = ln.deltas[:0]
		ln.spare = ln.base[:0]
		ln.base = nil
		ln.writes = ln.writes[:0]
		e.releaseParked(ln.m, deltas)
		ln.m = nil
		return true
	}
	if len(deltas) == 0 {
		ln.done = true
		ln.goldenDone = true
		ln.deltas = deltas
	} else {
		ln.deltas = deltas
		for i := range deltas {
			t.setPlane(&deltas[i], ln.bit)
		}
		t.parked |= ln.bit
	}
	// Recycle the diverged-delta backing as the next attempt's scratch:
	// the two arrays ping-pong across park/unpark rounds.
	ln.lastPark = e.golden.cycle
	ln.spare = ln.base[:0]
	ln.base = nil
	ln.writes = ln.writes[:0]
	e.releaseParked(ln.m, ln.deltas)
	ln.m = nil
	return true
}

// finishMarch finalises every lane once the golden run completed at cycle
// G: a still-parked lane's trajectory is the golden one with its deltas —
// only global-memory deltas are observable, everything else is Masked
// state the block never reads again. Hot lanes run to completion on their
// own machines, exactly like a scalar faulty run.
// G is the golden run's final cycle count: the live golden machine's on
// a full replay, the draw's known goldenCycles on an early exit.
func (e *VecEngine) finishMarch(G uint64) {
	g, t := e.golden, e.t
	for _, ln := range t.lanes {
		if ln.done {
			if ln.goldenDone {
				ln.out = VecOutcome{GoldenGlobal: true, Sim: ln.sim, End: G}
			}
			continue
		}
		if ln.m == nil {
			var img []uint32
			for i := range ln.deltas {
				d := &ln.deltas[i]
				t.clearPlane(d, ln.bit)
				if d.kind == dGlobal {
					if img == nil {
						img = append([]uint32(nil), g.global...)
					}
					img[d.a] = uint32(d.val)
				}
			}
			t.parked &^= ln.bit
			ln.deltas = nil
			ln.out = VecOutcome{Global: img, GoldenGlobal: img == nil, Sim: ln.sim, End: G}
			ln.done = true
			continue
		}
		m := ln.m
		m.TraceVec(nil)
		for !m.blockDone && m.err == nil {
			if m.cycle >= m.maxCycles {
				m.err = ErrWatchdog
				break
			}
			m.stepCycle()
			ln.sim++
		}
		if m.err != nil {
			ln.out = VecOutcome{Err: m.err, Sim: ln.sim, End: m.cycle}
		} else {
			ln.out = VecOutcome{Global: append([]uint32(nil), m.global...), Sim: ln.sim, End: m.cycle}
		}
		ln.done = true
		e.release(m)
		ln.m = nil
	}
}

// abortMarch releases every lane machine and clears every plane bit so
// the engine's buffers are clean for the next march.
func (e *VecEngine) abortMarch() {
	t := e.t
	for _, ln := range t.lanes {
		if ln.m != nil {
			e.release(ln.m)
			ln.m = nil
		}
		for i := range ln.deltas {
			t.clearPlane(&ln.deltas[i], ln.bit)
		}
		ln.deltas = nil
	}
	t.parked = 0
	e.hot = e.hot[:0]
}

func stackEqual(a, b []simtEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
