package rtl

import (
	"errors"
	"fmt"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// RTL failure modes, classified as DUEs by the injection framework.
var (
	ErrIllegalInstr = errors.New("rtl: illegal instruction")
	ErrBadPC        = errors.New("rtl: program counter out of range")
	ErrBadAddress   = errors.New("rtl: memory access out of range")
	ErrWatchdog     = errors.New("rtl: watchdog expired (hang)")
	ErrBadStack     = errors.New("rtl: SIMT stack corruption")
	ErrBadBarrier   = errors.New("rtl: barrier reached by diverged warp")
	ErrBadLaunch    = errors.New("rtl: invalid launch configuration")
)

// reconvNone is the "no reconvergence point" sentinel in the 16-bit
// scheduler reconv field.
const reconvNone = 0xFFFF

// Fault is one single-transient injection: flip bit Bit of module Module
// at the start of cycle Cycle.
type Fault struct {
	Module faults.Module
	Bit    int
	Cycle  uint64
}

// simtEntry is a saved SIMT stack level (kept in RAM below the cached
// top-of-stack, which lives in scheduler flip-flops).
type simtEntry struct {
	pc     uint32
	mask   uint32
	reconv uint32
}

// Machine is the RTL streaming-multiprocessor model.
type Machine struct {
	// Flip-flop state: the injection targets of Table I.
	Sched  *State
	Pipe   *State
	FP32   *State
	INT    *State
	SFU    *State
	SFUCtl *State

	sf schedFields
	pf pipeFields
	xf fpFields
	nf intFields
	uf sfuFields
	cf ctlFields

	// Behavioural memories (ECC-protected in the paper's threat model,
	// therefore not injection targets).
	prog     *kasm.Program
	imem     []isa.Word
	regs     [MaxWarps][isa.NumRegs][WarpSize]uint32
	preds    [MaxWarps][isa.NumPreds]uint32
	stacks   [MaxWarps][]simtEntry
	warpMask [MaxWarps]uint32 // top-of-stack active masks (SRS block RAM)
	global   []uint32
	shared   []uint32

	grid, block int
	curBlock    int
	nwarps      int
	cycle       uint64
	maxCycles   uint64
	fault       *Fault
	injected    bool
	err         error
	blockDone   bool
	machineDone bool
}

// New constructs a machine with all module layouts instantiated.
func New() *Machine {
	m := &Machine{
		Sched:  NewState(newSchedLayout()),
		Pipe:   NewState(newPipeLayout()),
		FP32:   NewState(newFP32Layout()),
		INT:    NewState(newINTLayout()),
		SFU:    NewState(newSFULayout()),
		SFUCtl: NewState(newSFUCtlLayout()),
	}
	m.sf.init(m.Sched.Lay)
	m.pf.init(m.Pipe.Lay)
	m.xf.init(m.FP32.Lay)
	m.nf.init(m.INT.Lay)
	m.uf.init(m.SFU.Lay)
	m.cf.init(m.SFUCtl.Lay)
	return m
}

// ModuleState returns the flip-flop state of one Table I module.
func (m *Machine) ModuleState(mod faults.Module) *State {
	switch mod {
	case faults.ModFP32:
		return m.FP32
	case faults.ModINT:
		return m.INT
	case faults.ModSFU:
		return m.SFU
	case faults.ModSFUCtl:
		return m.SFUCtl
	case faults.ModSched:
		return m.Sched
	default:
		return m.Pipe
	}
}

// ModuleBits returns the flip-flop count of one module (Table I).
func ModuleBits(mod faults.Module) int {
	switch mod {
	case faults.ModFP32:
		return FFCountFP32
	case faults.ModINT:
		return FFCountINT
	case faults.ModSFU:
		return FFCountSFU
	case faults.ModSFUCtl:
		return FFCountSFUCtl
	case faults.ModSched:
		return FFCountSched
	default:
		return FFCountPipe
	}
}

// Inject schedules a single-transient fault for the next Run.
func (m *Machine) Inject(f Fault) { fc := f; m.fault = &fc }

// Cycles returns the cycle count of the last Run.
func (m *Machine) Cycles() uint64 { return m.cycle }

// Run executes prog on a grid of blocks (sequentially, as FlexGripPlus
// maps one block at a time onto its single SM) with the given global
// memory image and per-block shared memory size, until completion, DUE,
// or the cycle budget expires.
func (m *Machine) Run(prog *kasm.Program, grid, block int, global []uint32, sharedWords int, maxCycles uint64) error {
	if prog == nil || len(prog.Instrs) == 0 {
		return fmt.Errorf("%w: empty program", ErrBadLaunch)
	}
	if block <= 0 || block > MaxWarps*WarpSize || grid <= 0 {
		return fmt.Errorf("%w: grid %d block %d", ErrBadLaunch, grid, block)
	}
	m.prog = prog
	m.imem = prog.Words
	m.global = global
	m.shared = make([]uint32, sharedWords)
	m.grid, m.block = grid, block
	m.maxCycles = maxCycles
	m.cycle = 0
	m.err = nil
	m.injected = false
	m.machineDone = false

	m.Sched.Reset()
	m.Pipe.Reset()
	m.FP32.Reset()
	m.INT.Reset()
	m.SFU.Reset()
	m.SFUCtl.Reset()

	for b := 0; b < grid && m.err == nil; b++ {
		m.curBlock = b
		m.initBlock()
		for !m.blockDone && m.err == nil {
			if m.cycle >= m.maxCycles {
				m.err = ErrWatchdog
				break
			}
			m.stepCycle()
		}
	}
	m.machineDone = m.err == nil
	m.fault = nil
	return m.err
}

// initBlock loads the warp table for one block.
func (m *Machine) initBlock() {
	m.blockDone = false
	m.nwarps = (m.block + WarpSize - 1) / WarpSize
	for i := range m.shared {
		m.shared[i] = 0
	}
	for w := 0; w < MaxWarps; w++ {
		m.stacks[w] = m.stacks[w][:0]
		for r := range m.regs[w] {
			for l := range m.regs[w][r] {
				m.regs[w][r][l] = 0
			}
		}
		for p := range m.preds[w] {
			m.preds[w][p] = 0
		}
		m.preds[w][isa.PT] = 0xFFFFFFFF
		if w < m.nwarps {
			lanesLive := m.block - w*WarpSize
			mask := uint32(0xFFFFFFFF)
			if lanesLive < WarpSize {
				mask = 1<<uint(lanesLive) - 1
			}
			m.warpMask[w] = mask
			m.Sched.Set(m.sf.pc[w], 0)
			m.Sched.Set(m.sf.reconv[w], reconvNone)
			m.Sched.Set(m.sf.state[w], stReady)
			m.Sched.Set(m.sf.depth[w], 0)
			m.Sched.Set(m.sf.slot[w], uint64(w))
			m.Sched.Set(m.sf.ibuf[w], 0)
			m.Sched.Set(m.sf.groupen[w], 0xFF)
			m.Sched.Set(m.sf.wctl[w], 0)
		} else {
			m.warpMask[w] = 0
			m.Sched.Set(m.sf.state[w], stEmpty)
			m.Sched.Set(m.sf.groupen[w], 0)
		}
	}
	m.Sched.Set(m.sf.livewarps, uint64(m.nwarps))
	m.Sched.Set(m.sf.barwait, 0)
	m.Sched.Set(m.sf.rrptr, 0)
	m.Sched.Set(m.sf.phase, phSched)
}

// stepCycle advances the machine one clock cycle, applying any scheduled
// fault at the cycle boundary.
func (m *Machine) stepCycle() {
	if m.fault != nil && !m.injected && m.cycle == m.fault.Cycle {
		m.ModuleState(m.fault.Module).FlipBit(m.fault.Bit)
		m.injected = true
	}
	switch m.Sched.Get(m.sf.phase) {
	case phSched:
		m.phaseSched()
	case phFetch:
		m.phaseFetch()
	case phDecode:
		m.phaseDecode()
	case phCollect:
		m.phaseCollect()
	case phIssue:
		m.phaseIssue()
	case phExec:
		m.phaseExec()
	case phGroupWB:
		m.phaseGroupWB()
	case phMemAddr:
		m.phaseMemAddr()
	case phMemAccess:
		m.phaseMemAccess()
	case phWriteback:
		m.phaseWriteback()
	case phCommit:
		m.phaseCommit()
	default:
		// Corrupted phase register: control logic is lost.
		m.err = ErrBadStack
	}
	m.cycle++
	m.Sched.Set(m.sf.cyclectr, uint64(uint32(m.cycle)))
}
