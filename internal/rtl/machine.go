package rtl

import (
	"errors"
	"fmt"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// RTL failure modes, classified as DUEs by the injection framework.
var (
	ErrIllegalInstr = errors.New("rtl: illegal instruction")
	ErrBadPC        = errors.New("rtl: program counter out of range")
	ErrBadAddress   = errors.New("rtl: memory access out of range")
	ErrWatchdog     = errors.New("rtl: watchdog expired (hang)")
	ErrBadStack     = errors.New("rtl: SIMT stack corruption")
	ErrBadBarrier   = errors.New("rtl: barrier reached by diverged warp")
	ErrBadLaunch    = errors.New("rtl: invalid launch configuration")
)

// reconvNone is the "no reconvergence point" sentinel in the 16-bit
// scheduler reconv field.
const reconvNone = 0xFFFF

// Fault is one single-transient injection: flip bit Bit of module Module
// at the start of cycle Cycle.
type Fault struct {
	Module faults.Module
	Bit    int
	Cycle  uint64
}

// simtEntry is a saved SIMT stack level (kept in RAM below the cached
// top-of-stack, which lives in scheduler flip-flops).
type simtEntry struct {
	pc     uint32
	mask   uint32
	reconv uint32
}

// Machine is the RTL streaming-multiprocessor model.
type Machine struct {
	// Flip-flop state: the injection targets of Table I.
	Sched  *State
	Pipe   *State
	FP32   *State
	INT    *State
	SFU    *State
	SFUCtl *State

	sf schedFields
	pf pipeFields
	xf fpFields
	nf intFields
	uf sfuFields
	cf ctlFields

	// Behavioural memories (ECC-protected in the paper's threat model,
	// therefore not injection targets).
	prog     *kasm.Program
	imem     []isa.Word
	regs     [MaxWarps][isa.NumRegs][WarpSize]uint32
	preds    [MaxWarps][isa.NumPreds]uint32
	stacks   [MaxWarps][]simtEntry
	warpMask [MaxWarps]uint32 // top-of-stack active masks (SRS block RAM)
	global   []uint32
	shared   []uint32

	grid, block int
	curBlock    int
	nwarps      int
	cycle       uint64
	maxCycles   uint64
	fault       *Fault
	injected    bool
	err         error
	blockDone   bool
	machineDone bool
	globalOwned bool // global was allocated by Restore, not passed to Run
	pruned      bool // last run stopped early on golden reconvergence
	live        *Liveness
	vec         *vecTracer // march-engine access tracer; nil on scalar machines

	// hiDirty is the per-warp dirty high-water mark: every warp at or
	// above it is in the canonical empty-warp state resetWarp
	// establishes. Snapshot and Restore use it to bound how many of the
	// MaxWarps register-file rows they have to copy — almost always just
	// the block's live warps.
	hiDirty int
}

// New constructs a machine with all module layouts instantiated.
func New() *Machine {
	m := &Machine{
		Sched:  NewState(newSchedLayout()),
		Pipe:   NewState(newPipeLayout()),
		FP32:   NewState(newFP32Layout()),
		INT:    NewState(newINTLayout()),
		SFU:    NewState(newSFULayout()),
		SFUCtl: NewState(newSFUCtlLayout()),
	}
	m.sf.init(m.Sched.Lay)
	m.pf.init(m.Pipe.Lay)
	m.xf.init(m.FP32.Lay)
	m.nf.init(m.INT.Lay)
	m.uf.init(m.SFU.Lay)
	m.cf.init(m.SFUCtl.Lay)
	// A fresh machine has all-zero predicate files, which is NOT the
	// canonical empty-warp state (PT reads as all-ones after initBlock);
	// treat every warp as dirty until the first launch or restore.
	m.hiDirty = MaxWarps
	return m
}

// ModuleState returns the flip-flop state of one Table I module.
func (m *Machine) ModuleState(mod faults.Module) *State {
	switch mod {
	case faults.ModFP32:
		return m.FP32
	case faults.ModINT:
		return m.INT
	case faults.ModSFU:
		return m.SFU
	case faults.ModSFUCtl:
		return m.SFUCtl
	case faults.ModSched:
		return m.Sched
	default:
		return m.Pipe
	}
}

// ModuleBits returns the flip-flop count of one module (Table I).
func ModuleBits(mod faults.Module) int {
	switch mod {
	case faults.ModFP32:
		return FFCountFP32
	case faults.ModINT:
		return FFCountINT
	case faults.ModSFU:
		return FFCountSFU
	case faults.ModSFUCtl:
		return FFCountSFUCtl
	case faults.ModSched:
		return FFCountSched
	default:
		return FFCountPipe
	}
}

// Inject schedules a single-transient fault for the next Run.
func (m *Machine) Inject(f Fault) { fc := f; m.fault = &fc }

// Cycles returns the cycle count of the last Run.
func (m *Machine) Cycles() uint64 { return m.cycle }

// Run executes prog on a grid of blocks (sequentially, as FlexGripPlus
// maps one block at a time onto its single SM) with the given global
// memory image and per-block shared memory size, until completion, DUE,
// or the cycle budget expires.
func (m *Machine) Run(prog *kasm.Program, grid, block int, global []uint32, sharedWords int, maxCycles uint64) error {
	return m.RunCheckpointed(prog, grid, block, global, sharedWords, maxCycles, 0, nil)
}

// RunCheckpointed is Run with a checkpoint sink: when every > 0 and sink
// is non-nil, a Snapshot is captured at every cycle boundary that is a
// multiple of every (including cycle 0, i.e. the post-launch state) and
// handed to sink. The snapshots do not perturb execution; resuming any of
// them with RunFrom replays the remaining cycles bit-identically.
func (m *Machine) RunCheckpointed(prog *kasm.Program, grid, block int, global []uint32, sharedWords int, maxCycles, every uint64, sink func(*Snapshot)) error {
	if err := m.launch(prog, grid, block, global, sharedWords, maxCycles); err != nil {
		return err
	}
	return m.runLoop(every, sink, nil)
}

// launch performs Run's preamble without entering the cycle loop: validate
// the launch geometry, bind the program and memories, reset every module
// and load the first block's warp table. The bit-parallel march engine
// (vec.go) uses it to drive the golden machine cycle by cycle itself.
func (m *Machine) launch(prog *kasm.Program, grid, block int, global []uint32, sharedWords int, maxCycles uint64) error {
	if prog == nil || len(prog.Instrs) == 0 {
		return fmt.Errorf("%w: empty program", ErrBadLaunch)
	}
	if block <= 0 || block > MaxWarps*WarpSize || grid <= 0 {
		return fmt.Errorf("%w: grid %d block %d", ErrBadLaunch, grid, block)
	}
	m.prog = prog
	m.imem = prog.Words
	m.global = global
	m.globalOwned = false
	m.shared = make([]uint32, sharedWords)
	m.grid, m.block = grid, block
	m.maxCycles = maxCycles
	m.cycle = 0
	m.err = nil
	m.injected = false
	m.machineDone = false

	m.Sched.Reset()
	m.Pipe.Reset()
	m.FP32.Reset()
	m.INT.Reset()
	m.SFU.Reset()
	m.SFUCtl.Reset()

	m.curBlock = 0
	m.initBlock()
	return nil
}

// runLoop resumes execution of the current block and any remaining
// blocks until completion, DUE, or watchdog expiry. It assumes initBlock
// has already run for curBlock (Run just did it; RunFrom restored a
// mid-block state). When golden is non-nil, every checkpoint-aligned
// cycle boundary after any injected fault has fired is compared against
// golden(cycle): a bit-identical match proves the rest of the run
// replays the golden tail, so the loop stops there with pruned set.
func (m *Machine) runLoop(every uint64, sink func(*Snapshot), golden func(uint64) *Snapshot) error {
	m.pruned = false
	for {
		for !m.blockDone && m.err == nil {
			if m.cycle >= m.maxCycles {
				m.err = ErrWatchdog
				break
			}
			if every > 0 && m.cycle%every == 0 {
				if sink != nil {
					sink(m.Snapshot())
				}
				if golden != nil && (m.fault == nil || m.injected) {
					if gs := golden(m.cycle); gs != nil && m.matches(gs) {
						m.pruned = true
						m.machineDone = true
						m.fault = nil
						return nil
					}
				}
			}
			m.stepCycle()
		}
		if m.err != nil || m.curBlock+1 >= m.grid {
			break
		}
		m.curBlock++
		m.initBlock()
	}
	m.machineDone = m.err == nil
	m.fault = nil
	return m.err
}

// initBlock loads the warp table for one block.
func (m *Machine) initBlock() {
	m.blockDone = false
	m.nwarps = (m.block + WarpSize - 1) / WarpSize
	for i := range m.shared {
		m.shared[i] = 0
	}
	for w := 0; w < MaxWarps; w++ {
		m.resetWarp(w)
		if w < m.nwarps {
			lanesLive := m.block - w*WarpSize
			mask := uint32(0xFFFFFFFF)
			if lanesLive < WarpSize {
				mask = 1<<uint(lanesLive) - 1
			}
			m.warpMask[w] = mask
			m.Sched.Set(m.sf.pc[w], 0)
			m.Sched.Set(m.sf.reconv[w], reconvNone)
			m.Sched.Set(m.sf.state[w], stReady)
			m.Sched.Set(m.sf.depth[w], 0)
			m.Sched.Set(m.sf.slot[w], uint64(w))
			m.Sched.Set(m.sf.ibuf[w], 0)
			m.Sched.Set(m.sf.groupen[w], 0xFF)
			m.Sched.Set(m.sf.wctl[w], 0)
		} else {
			m.warpMask[w] = 0
			m.Sched.Set(m.sf.state[w], stEmpty)
			m.Sched.Set(m.sf.groupen[w], 0)
		}
	}
	m.Sched.Set(m.sf.livewarps, uint64(m.nwarps))
	m.Sched.Set(m.sf.barwait, 0)
	m.Sched.Set(m.sf.rrptr, 0)
	m.Sched.Set(m.sf.phase, phSched)
	m.hiDirty = m.nwarps
}

// resetWarp returns warp w's behavioural memories to the canonical
// empty-warp state: zero registers, zero predicates with PT reading
// all-ones, an empty SIMT stack and a zero active mask. initBlock
// establishes this state for every warp beyond the block, and Restore
// relies on it for warps above the snapshot's dirty high-water mark.
func (m *Machine) resetWarp(w int) {
	m.regs[w] = [isa.NumRegs][WarpSize]uint32{}
	m.preds[w] = [isa.NumPreds]uint32{}
	m.preds[w][isa.PT] = 0xFFFFFFFF
	m.stacks[w] = m.stacks[w][:0]
	m.warpMask[w] = 0
}

// markWarp records that warp w's behavioural state may be written this
// cycle. Fault-corrupted warp indices can point past the block's live
// warps, so every write path raises the high-water mark.
func (m *Machine) markWarp(w int) {
	if w >= m.hiDirty {
		m.hiDirty = w + 1
	}
}

// stepCycle advances the machine one clock cycle, applying any scheduled
// fault at the cycle boundary.
func (m *Machine) stepCycle() {
	if m.live != nil {
		// Pin this cycle's fault-application point on the liveness
		// sequence axis, exactly where the FlipBit below would land.
		m.live.markCycle(m.cycle)
	}
	if m.fault != nil && !m.injected && m.cycle == m.fault.Cycle {
		m.ModuleState(m.fault.Module).FlipBit(m.fault.Bit)
		m.injected = true
	}
	switch m.Sched.Get(m.sf.phase) {
	case phSched:
		m.phaseSched()
	case phFetch:
		m.phaseFetch()
	case phDecode:
		m.phaseDecode()
	case phCollect:
		m.phaseCollect()
	case phIssue:
		m.phaseIssue()
	case phExec:
		m.phaseExec()
	case phGroupWB:
		m.phaseGroupWB()
	case phMemAddr:
		m.phaseMemAddr()
	case phMemAccess:
		m.phaseMemAccess()
	case phWriteback:
		m.phaseWriteback()
	case phCommit:
		m.phaseCommit()
	default:
		// Corrupted phase register: control logic is lost.
		m.err = ErrBadStack
	}
	m.cycle++
	m.Sched.Set(m.sf.cyclectr, uint64(uint32(m.cycle)))
}
