// Package rtl is the register-transfer-level GPU model — the FlexGripPlus
// analog. It executes the same programs as the functional emulator
// (internal/emu) on a cycle-stepped streaming-multiprocessor model whose
// entire sequential state lives in explicit, named flip-flop bit vectors.
//
// Fault injection at this level is the paper's RTL campaign primitive:
// flip one flip-flop bit of one module at one cycle (a single transient)
// and observe how it propagates through the warp scheduler, the pipeline
// registers, the functional units, and the shared SFUs to the program
// output.
//
// The model follows the G80 organisation FlexGripPlus implements: one SM
// with 8 scalar lanes, so each 32-thread warp instruction issues as four
// groups of 8 threads; two SFUs shared by the 8 lanes through an
// arbitration controller; a warp-scheduler table of up to 24 warps. Module
// flip-flop budgets are field-by-field layouts that sum exactly to the
// sizes reported in Table I of the paper.
package rtl

import (
	"fmt"
	"math/bits"
)

// Field is one named flip-flop group inside a module layout.
type Field struct {
	Name   string
	Width  int // bits
	Offset int // absolute bit offset within the module, filled by NewLayout
}

// Layout is a module's complete flip-flop map.
type Layout struct {
	Name    string
	Fields  []Field
	Bits    int // total flip-flops
	byName  map[string]int
	fieldAt []int32 // absolute bit -> field index
}

// NewLayout builds a layout from (name, width) pairs, assigning offsets in
// declaration order.
func NewLayout(name string, fields []Field) *Layout {
	l := &Layout{Name: name, byName: make(map[string]int, len(fields))}
	off := 0
	for _, f := range fields {
		if f.Width <= 0 || f.Width > 64 {
			panic(fmt.Sprintf("rtl: field %s.%s has invalid width %d", name, f.Name, f.Width))
		}
		if _, dup := l.byName[f.Name]; dup {
			panic(fmt.Sprintf("rtl: duplicate field %s.%s", name, f.Name))
		}
		f.Offset = off
		l.byName[f.Name] = len(l.Fields)
		l.Fields = append(l.Fields, f)
		off += f.Width
	}
	l.Bits = off
	l.fieldAt = make([]int32, l.Bits)
	for i, f := range l.Fields {
		for b := f.Offset; b < f.Offset+f.Width; b++ {
			l.fieldAt[b] = int32(i)
		}
	}
	return l
}

// MustField returns the field index for name, panicking when absent. It is
// used at model construction time to resolve field handles.
func (l *Layout) MustField(name string) int {
	i, ok := l.byName[name]
	if !ok {
		panic(fmt.Sprintf("rtl: layout %s has no field %q", l.Name, name))
	}
	return i
}

// FieldAt returns the field containing absolute bit position, for fault
// reporting and liveness queries.
func (l *Layout) FieldAt(bit int) Field {
	if bit >= 0 && bit < l.Bits {
		return l.Fields[l.fieldAt[bit]]
	}
	return Field{Name: "?", Width: 0, Offset: bit}
}

// State is the live flip-flop contents of one module.
type State struct {
	Lay   *Layout
	words []uint64

	// live, when non-nil, receives every semantic field access (Get, Set,
	// Reset — the only paths model logic uses) for golden-run liveness
	// tracing; liveMod is this module's Liveness slot. Snapshot/Restore
	// copy raw words and deliberately bypass the trace: they capture
	// state, they are not dataflow.
	live    *Liveness
	liveMod int

	// vec, when non-nil, receives the same semantic accesses for the
	// bit-parallel march engine (vec.go): reads probe the lane-divergence
	// planes, writes feed the undo/write log. vecMod mirrors liveMod.
	// Snapshot/Restore/CopyFrom bypass it for the same reason as live.
	vec    *vecTracer
	vecMod int
}

// NewState allocates zeroed flip-flops for a layout.
func NewState(l *Layout) *State {
	return &State{Lay: l, words: make([]uint64, (l.Bits+63)/64)}
}

// Reset clears every flip-flop.
func (s *State) Reset() {
	if s.live != nil {
		s.live.onReset(s.liveMod)
	}
	for i := range s.words {
		s.words[i] = 0
	}
}

// Get reads the field with index fi (from Layout.MustField).
func (s *State) Get(fi int) uint64 {
	if s.live != nil {
		s.live.onRead(s.liveMod, fi)
	}
	if s.vec != nil && s.vec.hot == nil {
		s.vec.onFFRead(s.vecMod, fi)
	}
	return s.getRaw(fi)
}

// getRaw is Get without the tracing hooks: the raw field extraction used
// by the hooks themselves and by the march engine's delta bookkeeping
// (which captures state rather than modelling dataflow).
func (s *State) getRaw(fi int) uint64 {
	f := s.Lay.Fields[fi]
	w, b := f.Offset/64, uint(f.Offset%64)
	v := s.words[w] >> b
	if b+uint(f.Width) > 64 {
		v |= s.words[w+1] << (64 - b)
	}
	if f.Width == 64 {
		return v
	}
	return v & (1<<uint(f.Width) - 1)
}

// Set writes the field with index fi, truncating v to the field width.
func (s *State) Set(fi int, v uint64) {
	if s.live != nil {
		s.live.onWrite(s.liveMod, fi)
	}
	if s.vec != nil && s.vec.hot == nil {
		s.vec.onFFWrite(s.vecMod, fi, v)
	}
	s.setRaw(fi, v)
}

// setRaw is Set without the tracing hooks (see getRaw).
func (s *State) setRaw(fi int, v uint64) {
	f := s.Lay.Fields[fi]
	var mask uint64 = ^uint64(0)
	if f.Width < 64 {
		mask = 1<<uint(f.Width) - 1
	}
	v &= mask
	w, b := f.Offset/64, uint(f.Offset%64)
	s.words[w] = s.words[w]&^(mask<<b) | v<<b
	if b+uint(f.Width) > 64 {
		hi := uint(f.Width) - (64 - b)
		himask := uint64(1)<<hi - 1
		s.words[w+1] = s.words[w+1]&^himask | v>>(64-b)
	}
}

// FlipBit inverts one flip-flop by absolute bit position — the single
// transient fault primitive.
func (s *State) FlipBit(bit int) {
	if bit < 0 || bit >= s.Lay.Bits {
		panic(fmt.Sprintf("rtl: flip bit %d outside %s (%d bits)", bit, s.Lay.Name, s.Lay.Bits))
	}
	s.words[bit/64] ^= 1 << uint(bit%64)
}

// Bit reads one flip-flop by absolute position.
func (s *State) Bit(bit int) uint64 {
	return s.words[bit/64] >> uint(bit%64) & 1
}

// PopCount returns the number of set flip-flops (used in tests).
func (s *State) PopCount() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// lanes returns i consecutive per-lane fields named prefix0..prefix{n-1}.
func lanes(prefix string, n, width int) []Field {
	fs := make([]Field, n)
	for i := range fs {
		fs[i] = Field{Name: fmt.Sprintf("%s%d", prefix, i), Width: width}
	}
	return fs
}

// cat concatenates field groups.
func cat(groups ...[]Field) []Field {
	var out []Field
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
