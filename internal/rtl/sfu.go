package rtl

import (
	"math"

	"gpufi/internal/fp32"
	"gpufi/internal/isa"
)

// SFU operation encodings (2-bit op fields).
const (
	sfuSin uint64 = iota
	sfuExp
	sfuRcp
	sfuRsqrt
)

func sfuOpcode(op isa.Opcode) uint64 {
	switch op {
	case isa.OpFEXP:
		return sfuExp
	case isa.OpFRCP:
		return sfuRcp
	case isa.OpFRSQRT:
		return sfuRsqrt
	default:
		return sfuSin
	}
}

// Micro-sequence lengths per operation (cycles from grant to result).
func sfuSeqLen(op uint64) uint64 {
	switch op {
	case sfuSin:
		return 9
	case sfuExp:
		return 12
	case sfuRcp:
		return 8
	default: // rsqrt
		return 11
	}
}

// stepSFU advances the shared-SFU subsystem one cycle: the controller
// enqueues the group's requests, arbitrates the two units, and routes
// results back to the execute output latch. Because the two units are
// time-shared by all lanes, a single controller fault corrupts several
// threads — the paper's explanation for multi-thread SDCs on FSIN/FEXP
// (§V-B).
func (m *Machine) stepSFU() {
	c, s := &m.cf, m.SFUCtl
	switch s.Get(c.phase) {
	case 0: // enqueue the issued group
		sub := uint32(m.Pipe.Get(m.pf.issSubmask))
		op := sfuOpcode(isa.Opcode(m.Pipe.Get(m.pf.issOp)))
		warp := m.Pipe.Get(m.pf.issWarp)
		group := m.Pipe.Get(m.pf.issGroup)
		for q := 0; q < 8; q++ {
			if sub>>uint(q)&1 == 1 {
				s.Set(c.qLane[q], uint64(q))
				s.Set(c.qOp[q], op)
				s.Set(c.qWarp[q], warp)
				s.Set(c.qValid[q], 1)
				s.Set(c.qGroup[q], group)
			} else {
				s.Set(c.qValid[q], 0)
			}
		}
		s.Set(c.reqMask, uint64(sub))
		// Latch the coefficient ROM contents into both units once per
		// warp instruction (at the first group's enqueue). The latches
		// then serve all 32 lanes time-shared onto the two units, so a
		// single corrupted coefficient bit poisons every subsequent lane
		// on that unit — the paper's multi-thread SFU corruption mode
		// (avg. 8 corrupted threads, §V-B).
		if m.Pipe.Get(m.pf.issGroup) == 0 {
			for u := 0; u < NumSFUs; u++ {
				switch op {
				case sfuSin:
					for i, cv := range fp32.SinCoeffs {
						m.SFU.Set(m.uf.coef[u][i], uint64(math.Float32bits(cv)))
					}
				case sfuExp:
					for i, cv := range fp32.ExpCoeffs {
						m.SFU.Set(m.uf.coef[u][i], uint64(math.Float32bits(cv)))
					}
				}
			}
		}
		s.Set(c.phase, 1)
	default: // arbitrate and step the units
		for u := 0; u < NumSFUs; u++ {
			busyF, cntF, dstF, grantF := c.busy0, c.cnt0, c.dst0, c.grant0
			if u == 1 {
				busyF, cntF, dstF, grantF = c.busy1, c.cnt1, c.dst1, c.grant1
			}
			if s.Get(busyF) == 0 {
				// Grant the lowest pending queue entry.
				for q := 0; q < 8; q++ {
					if s.Get(c.qValid[q]) == 0 {
						continue
					}
					lane := int(s.Get(c.qLane[q])) & 7
					op := s.Get(c.qOp[q])
					s.Set(c.qValid[q], 0)
					s.Set(grantF, uint64(q))
					s.Set(dstF, uint64(lane))
					s.Set(busyF, 1)
					s.Set(cntF, sfuSeqLen(op))
					m.sfuGrant(u, lane, op)
					break
				}
				continue
			}
			// Step a busy unit.
			m.sfuStep(u)
			cnt := s.Get(cntF)
			if cnt > 0 {
				cnt--
			}
			s.Set(cntF, cnt)
			if cnt == 0 {
				dst := int(s.Get(dstF)) & 7
				m.Pipe.Set(m.pf.exout[dst], m.SFU.Get(m.uf.res[u]))
				s.Set(busyF, 0)
				m.SFU.Set(m.uf.valid[u], 0)
			}
		}
		// All served?
		pending := false
		for q := 0; q < 8; q++ {
			if s.Get(c.qValid[q]) == 1 {
				pending = true
			}
		}
		if !pending && s.Get(c.busy0) == 0 && s.Get(c.busy1) == 0 {
			s.Set(c.phase, 0)
			m.Sched.Set(m.sf.phase, phGroupWB)
		}
	}
}

// sfuGrant latches a request into unit u: the operand from the execute
// input latch, the coefficient ROM contents, and the iteration counter.
func (m *Machine) sfuGrant(u, lane int, op uint64) {
	f, s := &m.uf, m.SFU
	x := uint32(m.Pipe.Get(m.pf.exinA[lane]))
	s.Set(f.x[u], uint64(x))
	s.Set(f.op[u], op)
	s.Set(f.lane[u], uint64(lane))
	s.Set(f.valid[u], 1)
	s.Set(f.iter[u], 0)
}

// f32 helpers reading/writing 32-bit float fields.
func (m *Machine) sfuF(fi int) float32       { return math.Float32frombits(uint32(m.SFU.Get(fi))) }
func (m *Machine) sfuSetF(fi int, v float32) { m.SFU.Set(fi, uint64(math.Float32bits(v))) }

// sfuStep executes one micro-sequence step of unit u. The sequences
// replicate fp32.Sin / fp32.Exp / fp32.Rcp / fp32.Rsqrt operation by
// operation, with every intermediate held in an injectable register.
func (m *Machine) sfuStep(u int) {
	f, s := &m.uf, m.SFU
	op := s.Get(f.op[u])
	it := int(s.Get(f.iter[u]))
	s.Set(f.iter[u], uint64(it+1))
	x := m.sfuF(f.x[u])
	coef := func(i int) float32 { return math.Float32frombits(uint32(s.Get(f.coef[u][i]))) }
	pv := func(i int) float32 { return m.sfuF(f.pv[u][i]) }
	pa := func(i int) float32 { return m.sfuF(f.pa[u][i]) }

	switch op {
	case sfuSin:
		// Mirrors fp32.Sin: x2; Horner over 6 coefficients; x*x2; final fma.
		switch it {
		case 0:
			xf := fp32.FTZ(x)
			s.Set(f.x[u], uint64(math.Float32bits(xf)))
			if xf != xf { // NaN passthrough
				m.sfuSetF(f.res[u], xf)
				return
			}
			m.sfuSetF(f.x2[u], fp32.Mul(xf, xf))
		case 1:
			m.sfuSetF(f.pv[u][0], coef(0))
		case 2, 3, 4, 5, 6:
			x2 := m.sfuF(f.x2[u])
			m.sfuSetF(f.pv[u][it-1], fp32.Fma(pv(it-2), x2, coef(it-1)))
		case 7:
			m.sfuSetF(f.pa[u][0], fp32.Mul(x, m.sfuF(f.x2[u])))
		default:
			if m.sfuF(f.x[u]) == m.sfuF(f.x[u]) { // skip if NaN already resolved
				m.sfuSetF(f.res[u], fp32.Fma(pa(0), pv(5), x))
			}
		}
	case sfuExp:
		// Mirrors fp32.Exp.
		switch it {
		case 0:
			xf := fp32.FTZ(x)
			s.Set(f.x[u], uint64(math.Float32bits(xf)))
			switch {
			case xf != xf:
				m.sfuSetF(f.res[u], xf)
			case xf > 88.72284:
				m.sfuSetF(f.res[u], float32(math.Inf(1)))
			case xf < -87.33655:
				m.sfuSetF(f.res[u], 0)
			default:
				m.sfuSetF(f.pv[u][0], fp32.Mul(xf, fp32.Log2E))
			}
		case 1:
			t := pv(0)
			half := float32(0.5)
			if t < 0 {
				half = -0.5
			}
			s.Set(f.n[u], encS(fp32.F2I(fp32.Add(t, half)), 9))
		case 2:
			m.sfuSetF(f.pv[u][1], fp32.I2F(decS(s.Get(f.n[u]), 9)))
		case 3:
			m.sfuSetF(f.fr[u], fp32.Fma(pv(1), -fp32.Ln2Hi, x))
		case 4:
			m.sfuSetF(f.fr[u], fp32.Fma(pv(1), -fp32.Ln2Lo, m.sfuF(f.fr[u])))
		case 5:
			m.sfuSetF(f.pv[u][2], coef(0))
		case 6, 7, 8, 9:
			fr := m.sfuF(f.fr[u])
			m.sfuSetF(f.pv[u][it-3], fp32.Fma(pv(it-4), fr, coef(it-5)))
		case 10:
			fr := m.sfuF(f.fr[u])
			m.sfuSetF(f.pv[u][7], fp32.Fma(pv(6), fr, 1.0))
		default:
			if !m.sfuEarlyOut(u) {
				m.sfuSetF(f.res[u], fp32.Ldexp(pv(7), decS(s.Get(f.n[u]), 9)))
			}
		}
	case sfuRcp:
		// Mirrors fp32.Rcp: magic seed + 3 Newton iterations.
		switch it {
		case 0:
			xf := fp32.FTZ(x)
			s.Set(f.x[u], uint64(math.Float32bits(xf)))
			b := math.Float32bits(xf)
			uv := fp32.Unpack(b)
			switch uv.Cls {
			case fp32.ClsNaN:
				m.sfuSetF(f.res[u], xf)
			case fp32.ClsZero:
				s.Set(f.res[u], uint64(uv.Sign<<31|0x7F800000))
			case fp32.ClsInf:
				s.Set(f.res[u], uint64(uv.Sign<<31))
			default:
				s.Set(f.seed[u], uint64(fp32.RcpMagic-b))
			}
		case 1, 3, 5:
			y := m.sfuF(f.seed[u])
			if it > 1 {
				y = pv((it - 3) / 2)
			}
			m.sfuSetF(f.pa[u][(it-1)/2], fp32.Fma(-m.sfuF(f.x[u]), y, 1.0))
		case 2, 4, 6:
			y := m.sfuF(f.seed[u])
			if it > 2 {
				y = pv(it/2 - 2)
			}
			m.sfuSetF(f.pv[u][it/2-1], fp32.Fma(y, pa(it/2-1), y))
		default:
			if !m.sfuEarlyOut(u) {
				m.sfuSetF(f.res[u], fp32.FTZ(pv(2)))
			}
		}
	default: // rsqrt
		// Mirrors fp32.Rsqrt.
		switch it {
		case 0:
			xf := fp32.FTZ(x)
			s.Set(f.x[u], uint64(math.Float32bits(xf)))
			b := math.Float32bits(xf)
			uv := fp32.Unpack(b)
			switch {
			case uv.Cls == fp32.ClsNaN:
				m.sfuSetF(f.res[u], xf)
			case uv.Cls == fp32.ClsZero:
				s.Set(f.res[u], uint64(uv.Sign<<31|0x7F800000))
			case uv.Sign == 1:
				s.Set(f.res[u], 0x7FC00000)
			case uv.Cls == fp32.ClsInf:
				s.Set(f.res[u], 0)
			default:
				s.Set(f.seed[u], uint64(fp32.RsqrtMagic-b>>1))
				m.sfuSetF(f.halfa[u], fp32.Mul(xf, 0.5))
			}
		case 1, 4, 7: // t = y*y
			y := m.sfuF(f.seed[u])
			if it > 1 {
				y = pv(it/3 - 1)
			}
			m.sfuSetF(f.pa[u][it/3*2], fp32.Mul(y, y))
		case 2, 5, 8: // t = 1.5 - halfa*t
			m.sfuSetF(f.pa[u][(it-2)/3*2+1],
				fp32.Fma(-m.sfuF(f.halfa[u]), pa((it-2)/3*2), 1.5))
		case 3, 6, 9: // y = y*t
			y := m.sfuF(f.seed[u])
			if it > 3 {
				y = pv(it/3 - 2)
			}
			m.sfuSetF(f.pv[u][it/3-1], fp32.Mul(y, pa((it-3)/3*2+1)))
		default:
			if !m.sfuEarlyOut(u) {
				m.sfuSetF(f.res[u], fp32.FTZ(pv(2)))
			}
		}
	}
}

// sfuEarlyOut reports whether the unit resolved a special case at grant
// time (result already latched).
func (m *Machine) sfuEarlyOut(u int) bool {
	x := m.sfuF(m.uf.x[u])
	b := math.Float32bits(x)
	uv := fp32.Unpack(b)
	op := m.SFU.Get(m.uf.op[u])
	switch op {
	case sfuExp:
		return x != x || x > 88.72284 || x < -87.33655
	case sfuRcp:
		return uv.Cls != fp32.ClsNorm
	case sfuRsqrt:
		return uv.Cls != fp32.ClsNorm || uv.Sign == 1
	default:
		return x != x
	}
}
